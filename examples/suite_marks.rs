//! Suite marks: the EEMBC-style scenario from the paper's introduction.
//! A vendor cares about a weighted mix of proprietary telecom programs;
//! the architect receives only the cloned suite — and the suite-level
//! mark must still rank machines the same way.
//!
//! ```sh
//! cargo run --release --example suite_marks
//! ```

use perfclone::suite::{suite_mark, Suite};
use perfclone_repro::prelude::*;
use perfclone_uarch::design_changes;

fn main() {
    // The proprietary suite: telecom mix with vendor-specific weights.
    let mut real = Suite::new("vendor-telemark");
    for (name, weight) in [("crc32", 3.0), ("adpcm_enc", 2.0), ("viterbi", 2.0), ("gsm", 1.0)] {
        let program = perfclone_kernels::by_name(name)
            .expect("kernel exists")
            .build(perfclone_kernels::Scale::Small)
            .program;
        real.push(program, weight).expect("positive weight");
    }

    println!("cloning the {}-member suite ...", real.len());
    let clones = real.clone_suite(&Cloner::new()).expect("clones pass the fidelity gate");

    let mut configs = vec![base_config()];
    configs.extend(design_changes());

    let mut table = Table::new(vec![
        "machine".into(),
        "mark (real suite)".into(),
        "mark (cloned suite)".into(),
        "error".into(),
    ]);
    let mut real_marks = Vec::new();
    let mut clone_marks = Vec::new();
    for config in &configs {
        let r = suite_mark(&real, config, u64::MAX).expect("mark");
        let c = suite_mark(&clones, config, u64::MAX).expect("mark");
        real_marks.push(r.ipc_mark);
        clone_marks.push(c.ipc_mark);
        table.row(vec![
            config.name.to_string(),
            format!("{:.3}", r.ipc_mark),
            format!("{:.3}", c.ipc_mark),
            format!("{:.1}%", 100.0 * ((c.ipc_mark - r.ipc_mark) / r.ipc_mark).abs()),
        ]);
    }
    println!("\nweighted geometric-mean IPC marks:\n\n{}", table.render());
    println!("machine ranking correlation: {:.3}", spearman(&real_marks, &clone_marks));
    println!("(a purchase decision made from the cloned suite picks the same machine)");
}
