//! Cache design study: an embedded-CPU architect sizes an L1 D-cache for a
//! customer's (proprietary) automotive workload using only the synthetic
//! clone — then we check the decision against the real application.
//!
//! ```sh
//! cargo run --release --example cache_design_study
//! ```

use perfclone_repro::prelude::*;
use perfclone_uarch::simulate_dcache;

fn main() {
    let app = perfclone_kernels::by_name("susan")
        .expect("kernel exists")
        .build(perfclone_kernels::Scale::Small)
        .program;
    let clone = Cloner::new().clone_program(&app, u64::MAX).expect("clone").clone;

    let configs = cache_sweep();
    println!("sweeping {} cache configurations with the CLONE only ...", configs.len());
    let clone_mpi: Vec<f64> =
        configs.iter().map(|c| simulate_dcache(&clone, *c, u64::MAX).mpi()).collect();

    // The architect's decision: the smallest configuration within 10% of
    // the best misses-per-instruction.
    let best = clone_mpi.iter().cloned().fold(f64::INFINITY, f64::min);
    let pick = configs
        .iter()
        .zip(&clone_mpi)
        .filter(|(_, &m)| m <= best * 1.1 + 1e-9)
        .min_by_key(|(c, _)| (c.size_bytes, c.ways()))
        .map(|(c, _)| *c)
        .expect("sweep is non-empty");
    println!("clone-based pick: {pick} (smallest within 10% of best MPI)");

    // Validation against the real application.
    let real_mpi: Vec<f64> =
        configs.iter().map(|c| simulate_dcache(&app, *c, u64::MAX).mpi()).collect();
    let real_best = real_mpi.iter().cloned().fold(f64::INFINITY, f64::min);
    let real_pick = configs
        .iter()
        .zip(&real_mpi)
        .filter(|(_, &m)| m <= real_best * 1.1 + 1e-9)
        .min_by_key(|(c, _)| (c.size_bytes, c.ways()))
        .map(|(c, _)| *c)
        .expect("sweep is non-empty");
    println!("real-app pick:    {real_pick}");
    println!("correlation over the sweep: {:.3}", pearson(&real_mpi, &clone_mpi));

    let mut t = Table::new(vec!["config".into(), "MPI (real)".into(), "MPI (clone)".into()]);
    for ((c, r), s) in configs.iter().zip(&real_mpi).zip(&clone_mpi) {
        t.row(vec![c.to_string(), format!("{r:.5}"), format!("{s:.5}")]);
    }
    println!("\n{}", t.render());
}
