//! Timed demonstration of the parallel sweep engine: runs the paper's
//! 28-configuration L1 D-cache sweep serially and then on a 4-worker
//! thread pool, checks the results are bit-identical, and reports the
//! wall-clock speedup.
//!
//! ```text
//! cargo run --release --example parallel_sweep_speedup
//! ```

use std::time::Instant;

use perfclone_kernels::{catalog, Scale};
use perfclone_repro::prelude::*;
use perfclone_uarch::{run_par, sweep_dcache};

fn main() {
    let jobs = 4;
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let configs = cache_sweep();
    let programs: Vec<_> =
        catalog().iter().map(|k| (k.name(), k.build(Scale::Small).program)).collect();
    println!(
        "sweeping {} cache configs over {} kernels, serial vs {jobs} workers ({cores} cores detected)\n",
        configs.len(),
        programs.len()
    );
    if cores < jobs {
        println!("note: fewer cores than workers — CPU-bound speedup is bounded by core count\n");
    }

    let mut table =
        Table::new(vec!["kernel".into(), "serial".into(), "parallel".into(), "speedup".into()]);
    let (mut serial_total, mut par_total) = (0.0f64, 0.0f64);
    for (name, program) in &programs {
        let t0 = Instant::now();
        let serial = sweep_dcache(program, &configs, u64::MAX);
        let ts = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let par = run_par(program, &configs, u64::MAX, jobs);
        let tp = t1.elapsed().as_secs_f64();

        assert_eq!(serial, par, "{name}: parallel sweep diverged from serial");
        serial_total += ts;
        par_total += tp;
        table.row(vec![
            (*name).into(),
            format!("{:.3}s", ts),
            format!("{:.3}s", tp),
            format!("{:.2}x", ts / tp),
        ]);
    }
    let speedup = serial_total / par_total;
    table.row(vec![
        "total".into(),
        format!("{serial_total:.3}s"),
        format!("{par_total:.3}s"),
        format!("{speedup:.2}x"),
    ]);
    println!("{}", table.render());
    println!(
        "\nresults bit-identical at every width; total speedup {speedup:.2}x on {jobs} workers"
    );
}
