//! What-if locality study (§3.1.4): because the clone is generated from an
//! editable profile, an architect can ask "what if the workload's strides
//! doubled?" or "what if its working set quadrupled?" without any access
//! to the application — impossible with a binary, trivial with a profile.
//!
//! ```sh
//! cargo run --release --example whatif_locality
//! ```

use perfclone_repro::prelude::*;

fn main() {
    let app = perfclone_kernels::by_name("epic")
        .expect("kernel exists")
        .build(perfclone_kernels::Scale::Small)
        .program;
    let cloner = Cloner::new();
    let baseline = cloner.clone_program(&app, u64::MAX).expect("clone");

    // What-if A: strides doubled (sparser traversal, same objects).
    let mut sparse = baseline.profile.clone();
    for s in &mut sparse.streams {
        s.dominant_stride *= 2;
        s.max_addr = s.min_addr + 2 * (s.max_addr - s.min_addr);
    }
    sparse.name = format!("{}-sparse", sparse.name);

    // What-if B: working set x4 (longer streams over bigger objects).
    let mut big = baseline.profile.clone();
    for s in &mut big.streams {
        s.mean_run_len *= 4.0;
        s.max_addr = s.min_addr + 4 * (s.max_addr - s.min_addr);
    }
    big.name = format!("{}-bigws", big.name);

    let config = base_config();
    let mut t =
        Table::new(vec!["scenario".into(), "IPC".into(), "L1D miss/instr".into(), "power".into()]);
    for (label, profile) in
        [("baseline clone", &baseline.profile), ("2x strides", &sparse), ("4x working set", &big)]
    {
        let clone = cloner.clone_program_from(profile).expect("synthesize");
        let r = run_timing(&clone, &config, u64::MAX).expect("timing");
        t.row(vec![
            label.into(),
            format!("{:.3}", r.report.ipc()),
            format!("{:.4}", r.report.l1d_mpi()),
            format!("{:.2}", r.power.average_power),
        ]);
    }
    println!("what-if scenarios for `epic` on the base machine:\n");
    println!("{}", t.render());
    println!("(sparser or larger traversals should cost misses, IPC, and energy)");
}
