//! Dissemination: the end-to-end vendor→architect flow. The vendor
//! profiles the proprietary application and ships (a) the JSON profile and
//! (b) the synthesized clone as a C file with inline asm; the architect
//! rebuilds the clone from the profile. The example also demonstrates the
//! code-hiding property: no instruction sequence of the original survives
//! in the clone.
//!
//! ```sh
//! cargo run --release --example dissemination
//! ```

use perfclone_repro::prelude::*;
use perfclone_synth::emit_c;

fn main() {
    let app = perfclone_kernels::by_name("blowfish")
        .expect("kernel exists")
        .build(perfclone_kernels::Scale::Small)
        .program;

    // Vendor side: profile and serialize. Only this JSON leaves the
    // building — never the application.
    let outcome = Cloner::new().clone_program(&app, u64::MAX).expect("clone");
    let json = outcome.profile.to_json().expect("profile serializes");
    println!("disseminated profile: {} bytes of JSON", json.len());

    // Architect side: rebuild the clone from the received profile.
    let received = WorkloadProfile::from_json(&json).expect("profile parses");
    let clone = Cloner::new().clone_program_from(&received).expect("synthesize");

    // Packaging: the clone as compilable C with asm statements.
    let c_source = emit_c(&clone);
    let path = std::env::temp_dir().join("blowfish_clone.c");
    std::fs::write(&path, &c_source).expect("writable temp dir");
    println!("clone source written to {} ({} lines)", path.display(), c_source.lines().count());

    // Code hiding: no 4-instruction window of the original appears in the
    // clone (the paper's dissemination guarantee — same performance,
    // different code).
    let window = 4;
    let leaked = app
        .instrs()
        .windows(window)
        .any(|w_orig| clone.instrs().windows(window).any(|w_clone| w_orig == w_clone));
    println!(
        "code-hiding check: {}",
        if leaked { "LEAK — shared sequence found!" } else { "no shared 4-instruction sequence" }
    );

    // And the performance check that makes the clone useful at all.
    let cmp = validate_pair(&app, &clone, &base_config(), u64::MAX).expect("validate");
    println!(
        "IPC real {:.3} vs clone {:.3} ({:.1}% error) — same behaviour, different code",
        cmp.real.report.ipc(),
        cmp.synth.report.ipc(),
        100.0 * cmp.ipc_error()
    );
}
