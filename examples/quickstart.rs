//! Quickstart: clone a "proprietary" application and check that the clone
//! behaves like the original.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use perfclone_repro::prelude::*;

fn main() {
    // The proprietary application: one of the embedded kernels stands in
    // for a customer workload the vendor will not share.
    let app = perfclone_kernels::by_name("adpcm_enc")
        .expect("kernel exists")
        .build(perfclone_kernels::Scale::Small)
        .program;

    // Step 1 (vendor side): profile microarchitecture-independent
    // characteristics and synthesize the clone.
    let cloner = Cloner::new();
    let outcome = cloner.clone_program(&app, u64::MAX).expect("clone");
    let profile = &outcome.profile;
    println!("profiled {} dynamic instructions", profile.total_instrs);
    println!("  SFG nodes: {}", profile.nodes.len());
    println!("  mean basic-block size: {:.1}", profile.mean_block_size());
    println!("  unique streams: {}", profile.unique_streams());
    println!("  single-stride coverage: {:.1}%", 100.0 * profile.stride_coverage());

    // Step 2 (architect side): use the clone in place of the application.
    let config = base_config();
    let cmp = validate_pair(&app, &outcome.clone, &config, u64::MAX).expect("validate");
    println!("\non the base machine (Table 2):");
    println!(
        "  IPC    real {:.3}  clone {:.3}  (error {:.1}%)",
        cmp.real.report.ipc(),
        cmp.synth.report.ipc(),
        100.0 * cmp.ipc_error()
    );
    println!(
        "  power  real {:.2}  clone {:.2}  (error {:.1}%)",
        cmp.real.power.average_power,
        cmp.synth.power.average_power,
        100.0 * cmp.power_error()
    );
    println!(
        "  L1D miss/instr  real {:.4}  clone {:.4}",
        cmp.real.report.l1d_mpi(),
        cmp.synth.report.l1d_mpi()
    );
    println!(
        "  branch mispredict  real {:.3}  clone {:.3}",
        cmp.real.report.bpred.mispredict_rate(),
        cmp.synth.report.bpred.mispredict_rate()
    );
}
