//! Design-space exploration: pick the best microarchitecture for a
//! telecom workload mix using only clones, optimizing IPC per unit of
//! power — then validate the ranking against the real applications.
//!
//! ```sh
//! cargo run --release --example design_space_exploration
//! ```

use perfclone_repro::prelude::*;
use perfclone_uarch::design_changes;

fn main() {
    let names = ["adpcm_enc", "crc32", "fft", "gsm"];
    let apps: Vec<_> = names
        .iter()
        .map(|n| {
            perfclone_kernels::by_name(n)
                .expect("kernel exists")
                .build(perfclone_kernels::Scale::Small)
                .program
        })
        .collect();
    println!("cloning the telecom mix: {names:?} ...");
    let clones: Vec<_> = apps
        .iter()
        .map(|a| Cloner::new().clone_program(a, u64::MAX).expect("clone").clone)
        .collect();

    let mut configs = vec![base_config()];
    configs.extend(design_changes());

    let efficiency = |programs: &[perfclone_isa::Program], cfg: &MachineConfig| -> f64 {
        let mut sum = 0.0;
        for p in programs {
            let t = run_timing(p, cfg, u64::MAX).expect("timing");
            sum += t.report.ipc() / t.power.average_power;
        }
        sum / programs.len() as f64
    };

    let mut t =
        Table::new(vec!["config".into(), "IPC/power (clone)".into(), "IPC/power (real)".into()]);
    let mut clone_scores = Vec::new();
    let mut real_scores = Vec::new();
    for cfg in &configs {
        let c = efficiency(&clones, cfg);
        let r = efficiency(&apps, cfg);
        clone_scores.push(c);
        real_scores.push(r);
        t.row(vec![cfg.name.to_string(), format!("{c:.4}"), format!("{r:.4}")]);
    }
    println!("\n{}", t.render());

    let pick = |scores: &[f64]| {
        scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| configs[i].name)
            .expect("non-empty")
    };
    println!("clone-based pick: {}", pick(&clone_scores));
    println!("real-app pick:    {}", pick(&real_scores));
    println!("score ranking correlation: {:.3}", spearman(&clone_scores, &real_scores));
}
