//! Top-level crate of the performance-cloning reproduction repository.
//!
//! This crate exists to host the runnable [examples] and the cross-crate
//! integration tests; the library surface simply re-exports the workspace
//! crates so examples can `use perfclone_repro::prelude::*`.
//!
//! [examples]: https://doc.rust-lang.org/cargo/reference/cargo-targets.html#examples

pub use perfclone;
pub use perfclone_isa as isa;
pub use perfclone_kernels as kernels;
pub use perfclone_metrics as metrics;
pub use perfclone_power as power;
pub use perfclone_profile as profile;
pub use perfclone_sim as sim;
pub use perfclone_synth as synth;
pub use perfclone_uarch as uarch;

/// Convenience re-exports for examples and tests.
pub mod prelude {
    pub use perfclone::*;
}
