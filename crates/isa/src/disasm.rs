//! Human-readable disassembly.

use std::fmt::Write as _;

use crate::instr::{Instr, MemRef, MemWidth};
use crate::program::Program;

fn mem_str(mem: &MemRef) -> String {
    match mem {
        MemRef::Base { base, offset } => format!("{offset}({base})"),
        MemRef::Stream(id) => format!("[{id}]"),
    }
}

fn width_suffix(width: MemWidth) -> &'static str {
    match width {
        MemWidth::B1 => "b",
        MemWidth::B4 => "w",
        MemWidth::B8 => "d",
    }
}

/// Renders one instruction as assembly text.
///
/// # Example
///
/// ```
/// use perfclone_isa::{disasm, Instr, Reg, AluOp};
/// let i = Instr::Alu { op: AluOp::Add, rd: Reg::new(1), rs1: Reg::new(2), rs2: Reg::new(3) };
/// assert_eq!(disasm(&i), "add r1, r2, r3");
/// ```
pub fn disasm(instr: &Instr) -> String {
    match instr {
        Instr::Alu { op, rd, rs1, rs2 } => format!("{op} {rd}, {rs1}, {rs2}"),
        Instr::AluImm { op, rd, rs1, imm } => format!("{op}i {rd}, {rs1}, {imm}"),
        Instr::Li { rd, imm } => format!("li {rd}, {imm}"),
        Instr::Mul { rd, rs1, rs2 } => format!("mul {rd}, {rs1}, {rs2}"),
        Instr::Div { rd, rs1, rs2 } => format!("div {rd}, {rs1}, {rs2}"),
        Instr::Rem { rd, rs1, rs2 } => format!("rem {rd}, {rs1}, {rs2}"),
        Instr::Fp { op, fd, fs1, fs2 } => format!("{op} {fd}, {fs1}, {fs2}"),
        Instr::FLi { fd, imm } => format!("fli {fd}, {imm}"),
        Instr::CvtIf { fd, rs } => format!("cvt.i.f {fd}, {rs}"),
        Instr::CvtFi { rd, fs } => format!("cvt.f.i {rd}, {fs}"),
        Instr::FCmpLt { rd, fs1, fs2 } => format!("fcmp.lt {rd}, {fs1}, {fs2}"),
        Instr::Load { rd, mem, width } => {
            format!("l{} {rd}, {}", width_suffix(*width), mem_str(mem))
        }
        Instr::Store { rs, mem, width } => {
            format!("s{} {rs}, {}", width_suffix(*width), mem_str(mem))
        }
        Instr::LoadF { fd, mem } => format!("fld {fd}, {}", mem_str(mem)),
        Instr::StoreF { fs, mem } => format!("fsd {fs}, {}", mem_str(mem)),
        Instr::Branch { cond, rs1, rs2, target } => {
            format!("{cond} {rs1}, {rs2}, @{target}")
        }
        Instr::Jump { target } => format!("j @{target}"),
        Instr::Jal { rd, target } => format!("jal {rd}, @{target}"),
        Instr::Jr { rs } => format!("jr {rs}"),
        Instr::Nop => "nop".to_string(),
        Instr::Halt => "halt".to_string(),
    }
}

/// Renders a whole program as an assembly listing, one instruction per line,
/// prefixed with its pc.
pub fn disasm_program(program: &Program) -> String {
    let mut out = String::new();
    for (pc, instr) in program.instrs().iter().enumerate() {
        let _ = writeln!(out, "{pc:6}: {}", disasm(instr));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::Cond;
    use crate::program::StreamId;
    use crate::reg::{FReg, Reg};

    #[test]
    fn loads_and_stores() {
        let i = Instr::Load {
            rd: Reg::new(3),
            mem: MemRef::Base { base: Reg::new(4), offset: -8 },
            width: MemWidth::B4,
        };
        assert_eq!(disasm(&i), "lw r3, -8(r4)");
        let s = Instr::Store {
            rs: Reg::new(5),
            mem: MemRef::Stream(StreamId::new(2)),
            width: MemWidth::B8,
        };
        assert_eq!(disasm(&s), "sd r5, [s2]");
    }

    #[test]
    fn branches_and_fp() {
        let b = Instr::Branch { cond: Cond::Lt, rs1: Reg::new(1), rs2: Reg::new(2), target: 10 };
        assert_eq!(disasm(&b), "blt r1, r2, @10");
        let f = Instr::Fp {
            op: crate::instr::FpOp::Mul,
            fd: FReg::new(1),
            fs1: FReg::new(2),
            fs2: FReg::new(3),
        };
        assert_eq!(disasm(&f), "fmul f1, f2, f3");
    }

    #[test]
    fn program_listing_has_one_line_per_instr() {
        let mut b = ProgramBuilder::new("t");
        b.nop();
        b.halt();
        let p = b.build();
        let text = disasm_program(&p);
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("halt"));
    }

    #[test]
    fn every_variant_disassembles_distinctly() {
        let r1 = Reg::new(1);
        let f1 = FReg::new(1);
        let mem = MemRef::Base { base: r1, offset: 0 };
        let variants = vec![
            Instr::Alu { op: crate::AluOp::Add, rd: r1, rs1: r1, rs2: r1 },
            Instr::AluImm { op: crate::AluOp::Xor, rd: r1, rs1: r1, imm: 1 },
            Instr::Li { rd: r1, imm: 1 },
            Instr::Mul { rd: r1, rs1: r1, rs2: r1 },
            Instr::Div { rd: r1, rs1: r1, rs2: r1 },
            Instr::Rem { rd: r1, rs1: r1, rs2: r1 },
            Instr::FLi { fd: f1, imm: 1.0 },
            Instr::CvtIf { fd: f1, rs: r1 },
            Instr::CvtFi { rd: r1, fs: f1 },
            Instr::FCmpLt { rd: r1, fs1: f1, fs2: f1 },
            Instr::LoadF { fd: f1, mem },
            Instr::StoreF { fs: f1, mem },
            Instr::Jump { target: 0 },
            Instr::Jal { rd: r1, target: 0 },
            Instr::Jr { rs: r1 },
            Instr::Nop,
            Instr::Halt,
        ];
        let texts: std::collections::HashSet<String> = variants.iter().map(disasm).collect();
        assert_eq!(texts.len(), variants.len());
    }
}
