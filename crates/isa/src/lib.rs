//! # perfclone-isa
//!
//! A small load-store RISC instruction set used by the performance-cloning
//! reproduction as the substrate ISA (substituting for the Alpha ISA used by
//! the original paper).
//!
//! The crate provides:
//!
//! * [`Reg`] / [`FReg`] — the 32 integer and 32 floating-point architectural
//!   registers (`r0` reads as zero),
//! * [`Instr`] — the instruction set itself, with helpers for operand and
//!   class inspection used by the profiler and the timing simulator,
//! * [`Program`] — a fully linked unit: instructions, initial data image and
//!   stride-stream descriptors,
//! * [`ProgramBuilder`] — an assembler DSL with labels, used both by the
//!   hand-written benchmark kernels and by the clone synthesizer,
//! * [`disasm`] — a human-readable disassembler.
//!
//! # Example
//!
//! ```
//! use perfclone_isa::{ProgramBuilder, Reg};
//!
//! // Sum the integers 1..=10 into r3.
//! let mut b = ProgramBuilder::new("sum");
//! let (i, n, acc) = (Reg::new(1), Reg::new(2), Reg::new(3));
//! b.li(i, 1);
//! b.li(n, 10);
//! b.li(acc, 0);
//! let top = b.label();
//! b.bind(top);
//! b.add(acc, acc, i);
//! b.addi(i, i, 1);
//! b.ble(i, n, top);
//! b.halt();
//! let program = b.build();
//! assert_eq!(program.name(), "sum");
//! ```

mod builder;
mod disasm;
mod encode;
mod instr;
mod meta;
mod parse;
mod program;
mod reg;

pub use builder::{Label, ProgramBuilder};
pub use disasm::{disasm, disasm_program};
pub use encode::{decode_instr, decode_program, encode_instr, encode_program, DecodeError};
pub use instr::{AluOp, Cond, FpOp, Instr, InstrClass, MemRef, MemWidth, OperandList, RegRef};
pub use meta::{InstrMeta, InstrMetaTable};
pub use parse::{parse_instr, ParseInstrError};
pub use program::{DataSeg, Program, StreamDesc, StreamId, INSTR_BYTES};
pub use reg::{FReg, Reg};
