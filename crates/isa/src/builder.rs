//! An assembler DSL for constructing [`Program`]s.

use std::fmt;

use crate::instr::{AluOp, Cond, FpOp, Instr, MemRef, MemWidth};
use crate::program::{DataSeg, Program, StreamDesc, StreamId};
use crate::reg::{FReg, Reg};

/// Base address of the builder's data bump allocator.
const DATA_BASE: u64 = 0x1000_0000;

/// A forward-referenceable code label.
///
/// Created with [`ProgramBuilder::label`], bound to the next emitted
/// instruction with [`ProgramBuilder::bind`], and usable as a branch or jump
/// target before or after binding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(u32);

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Builds a [`Program`] instruction by instruction.
///
/// Mnemonic methods (`add`, `li`, `ld`, `beq`, …) append one instruction
/// each. Control-flow targets are [`Label`]s, resolved when [`build`] is
/// called. A bump allocator hands out data addresses; `data_*` helpers
/// allocate *and* initialize memory.
///
/// # Example
///
/// ```
/// use perfclone_isa::{ProgramBuilder, Reg};
/// let mut b = ProgramBuilder::new("copy8");
/// let src = b.data_u64(&[7]);
/// let dst = b.alloc(8);
/// let (t, p) = (Reg::new(1), Reg::new(2));
/// b.li(p, src as i64);
/// b.ld(t, p, 0);
/// b.li(p, dst as i64);
/// b.sd(t, p, 0);
/// b.halt();
/// let prog = b.build();
/// assert_eq!(prog.len(), 5);
/// ```
///
/// [`build`]: ProgramBuilder::build
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    instrs: Vec<Instr>,
    data: Vec<DataSeg>,
    streams: Vec<StreamDesc>,
    labels: Vec<Option<u32>>,
    fixups: Vec<(usize, Label)>,
    next_addr: u64,
}

impl ProgramBuilder {
    /// Creates an empty builder for a program called `name`.
    pub fn new(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            name: name.into(),
            instrs: Vec::new(),
            data: Vec::new(),
            streams: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
            next_addr: DATA_BASE,
        }
    }

    /// Index of the next instruction to be emitted.
    pub fn here(&self) -> u32 {
        self.instrs.len() as u32
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` if no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() as u32 - 1)
    }

    /// Binds `label` to the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        let here = self.here();
        let slot = &mut self.labels[label.0 as usize];
        assert!(slot.is_none(), "label {label} bound twice");
        *slot = Some(here);
    }

    /// Appends a raw instruction.
    pub fn emit(&mut self, instr: Instr) {
        self.instrs.push(instr);
    }

    // ---- data -----------------------------------------------------------

    /// Reserves `bytes` of zero-initialized memory, returning its address.
    /// Allocations are 16-byte aligned.
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let addr = self.next_addr;
        self.next_addr += (bytes + 15) & !15;
        addr
    }

    /// Allocates and initializes raw bytes, returning the address.
    pub fn data_bytes(&mut self, bytes: &[u8]) -> u64 {
        let addr = self.alloc(bytes.len() as u64);
        self.data.push(DataSeg { addr, bytes: bytes.to_vec() });
        addr
    }

    /// Allocates and initializes an array of `u64` words (little-endian).
    pub fn data_u64(&mut self, words: &[u64]) -> u64 {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        self.data_bytes(&bytes)
    }

    /// Allocates and initializes an array of `i64` words (little-endian).
    pub fn data_i64(&mut self, words: &[i64]) -> u64 {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        self.data_bytes(&bytes)
    }

    /// Allocates and initializes an array of `u32` words (little-endian).
    pub fn data_u32(&mut self, words: &[u32]) -> u64 {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        self.data_bytes(&bytes)
    }

    /// Allocates and initializes an array of `f64` values (little-endian).
    pub fn data_f64(&mut self, vals: &[f64]) -> u64 {
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.data_bytes(&bytes)
    }

    /// Registers a stride stream and returns its id, for use with the
    /// `*_stream` load/store helpers.
    pub fn stream(&mut self, desc: StreamDesc) -> StreamId {
        self.streams.push(desc);
        StreamId::new(self.streams.len() as u32 - 1)
    }

    /// Allocates backing storage for a stream and registers it.
    ///
    /// The base is placed so that both positive and negative strides stay in
    /// the allocation.
    pub fn stream_alloc(&mut self, stride: i64, length: u32) -> StreamId {
        let extent = stride.unsigned_abs() * u64::from(length.max(1) - 1) + 8;
        let lo = self.alloc(extent);
        let base = if stride >= 0 { lo } else { lo + extent - 8 };
        self.stream(StreamDesc { base, stride, length })
    }

    // ---- integer ALU ----------------------------------------------------

    /// `rd = rs1 + rs2`
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu { op: AluOp::Add, rd, rs1, rs2 });
    }

    /// `rd = rs1 - rs2`
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu { op: AluOp::Sub, rd, rs1, rs2 });
    }

    /// `rd = rs1 & rs2`
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu { op: AluOp::And, rd, rs1, rs2 });
    }

    /// `rd = rs1 | rs2`
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu { op: AluOp::Or, rd, rs1, rs2 });
    }

    /// `rd = rs1 ^ rs2`
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu { op: AluOp::Xor, rd, rs1, rs2 });
    }

    /// `rd = rs1 << rs2`
    pub fn sll(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu { op: AluOp::Sll, rd, rs1, rs2 });
    }

    /// `rd = rs1 >> rs2` (logical)
    pub fn srl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu { op: AluOp::Srl, rd, rs1, rs2 });
    }

    /// `rd = rs1 >> rs2` (arithmetic)
    pub fn sra(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu { op: AluOp::Sra, rd, rs1, rs2 });
    }

    /// `rd = (rs1 < rs2) as i64` (signed)
    pub fn slt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu { op: AluOp::Slt, rd, rs1, rs2 });
    }

    /// `rd = imm`
    pub fn li(&mut self, rd: Reg, imm: i64) {
        self.emit(Instr::Li { rd, imm });
    }

    /// `rd = rs1 + imm`
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Instr::AluImm { op: AluOp::Add, rd, rs1, imm });
    }

    /// `rd = rs1 & imm`
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Instr::AluImm { op: AluOp::And, rd, rs1, imm });
    }

    /// `rd = rs1 ^ imm`
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Instr::AluImm { op: AluOp::Xor, rd, rs1, imm });
    }

    /// `rd = rs1 | imm`
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Instr::AluImm { op: AluOp::Or, rd, rs1, imm });
    }

    /// `rd = rs1 << imm`
    pub fn slli(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Instr::AluImm { op: AluOp::Sll, rd, rs1, imm });
    }

    /// `rd = rs1 >> imm` (logical)
    pub fn srli(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Instr::AluImm { op: AluOp::Srl, rd, rs1, imm });
    }

    /// `rd = rs1 >> imm` (arithmetic)
    pub fn srai(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Instr::AluImm { op: AluOp::Sra, rd, rs1, imm });
    }

    /// `rd = (rs1 < imm) as i64` (signed)
    pub fn slti(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Instr::AluImm { op: AluOp::Slt, rd, rs1, imm });
    }

    /// `rd = rs` (copy, encoded as `rd = rs + r0`)
    pub fn mv(&mut self, rd: Reg, rs: Reg) {
        self.add(rd, rs, Reg::ZERO);
    }

    /// `rd = rs1 * rs2`
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Mul { rd, rs1, rs2 });
    }

    /// `rd = rs1 / rs2` (signed; 0 on division by zero)
    pub fn div(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Div { rd, rs1, rs2 });
    }

    /// `rd = rs1 % rs2` (signed; `rs1` on remainder by zero)
    pub fn rem(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Rem { rd, rs1, rs2 });
    }

    /// `nop`
    pub fn nop(&mut self) {
        self.emit(Instr::Nop);
    }

    // ---- floating point --------------------------------------------------

    /// `fd = fs1 + fs2`
    pub fn fadd(&mut self, fd: FReg, fs1: FReg, fs2: FReg) {
        self.emit(Instr::Fp { op: FpOp::Add, fd, fs1, fs2 });
    }

    /// `fd = fs1 - fs2`
    pub fn fsub(&mut self, fd: FReg, fs1: FReg, fs2: FReg) {
        self.emit(Instr::Fp { op: FpOp::Sub, fd, fs1, fs2 });
    }

    /// `fd = fs1 * fs2`
    pub fn fmul(&mut self, fd: FReg, fs1: FReg, fs2: FReg) {
        self.emit(Instr::Fp { op: FpOp::Mul, fd, fs1, fs2 });
    }

    /// `fd = fs1 / fs2`
    pub fn fdiv(&mut self, fd: FReg, fs1: FReg, fs2: FReg) {
        self.emit(Instr::Fp { op: FpOp::Div, fd, fs1, fs2 });
    }

    /// `fd = sqrt(fs)`
    pub fn fsqrt(&mut self, fd: FReg, fs: FReg) {
        self.emit(Instr::Fp { op: FpOp::Sqrt, fd, fs1: fs, fs2: fs });
    }

    /// `fd = imm`
    pub fn fli(&mut self, fd: FReg, imm: f64) {
        self.emit(Instr::FLi { fd, imm });
    }

    /// `fd = rs as f64`
    pub fn cvt_i_f(&mut self, fd: FReg, rs: Reg) {
        self.emit(Instr::CvtIf { fd, rs });
    }

    /// `rd = fs as i64` (truncating)
    pub fn cvt_f_i(&mut self, rd: Reg, fs: FReg) {
        self.emit(Instr::CvtFi { rd, fs });
    }

    /// `rd = (fs1 < fs2) as i64`
    pub fn fcmp_lt(&mut self, rd: Reg, fs1: FReg, fs2: FReg) {
        self.emit(Instr::FCmpLt { rd, fs1, fs2 });
    }

    /// `fd = fs` (copy, encoded as `fd = fmin(fs, fs)`)
    pub fn fmv(&mut self, fd: FReg, fs: FReg) {
        self.emit(Instr::Fp { op: FpOp::Min, fd, fs1: fs, fs2: fs });
    }

    // ---- memory -----------------------------------------------------------

    /// 8-byte load: `rd = mem[rs1 + offset]`
    pub fn ld(&mut self, rd: Reg, base: Reg, offset: i32) {
        self.emit(Instr::Load { rd, mem: MemRef::Base { base, offset }, width: MemWidth::B8 });
    }

    /// 4-byte load (sign-extended).
    pub fn lw(&mut self, rd: Reg, base: Reg, offset: i32) {
        self.emit(Instr::Load { rd, mem: MemRef::Base { base, offset }, width: MemWidth::B4 });
    }

    /// 1-byte load (zero-extended).
    pub fn lb(&mut self, rd: Reg, base: Reg, offset: i32) {
        self.emit(Instr::Load { rd, mem: MemRef::Base { base, offset }, width: MemWidth::B1 });
    }

    /// 8-byte store.
    pub fn sd(&mut self, rs: Reg, base: Reg, offset: i32) {
        self.emit(Instr::Store { rs, mem: MemRef::Base { base, offset }, width: MemWidth::B8 });
    }

    /// 4-byte store.
    pub fn sw(&mut self, rs: Reg, base: Reg, offset: i32) {
        self.emit(Instr::Store { rs, mem: MemRef::Base { base, offset }, width: MemWidth::B4 });
    }

    /// 1-byte store.
    pub fn sb(&mut self, rs: Reg, base: Reg, offset: i32) {
        self.emit(Instr::Store { rs, mem: MemRef::Base { base, offset }, width: MemWidth::B1 });
    }

    /// 8-byte FP load.
    pub fn fld(&mut self, fd: FReg, base: Reg, offset: i32) {
        self.emit(Instr::LoadF { fd, mem: MemRef::Base { base, offset } });
    }

    /// 8-byte FP store.
    pub fn fsd(&mut self, fs: FReg, base: Reg, offset: i32) {
        self.emit(Instr::StoreF { fs, mem: MemRef::Base { base, offset } });
    }

    /// Auto-stride load from stream `id`.
    pub fn ld_stream(&mut self, rd: Reg, id: StreamId, width: MemWidth) {
        self.emit(Instr::Load { rd, mem: MemRef::Stream(id), width });
    }

    /// Auto-stride store to stream `id`.
    pub fn sd_stream(&mut self, rs: Reg, id: StreamId, width: MemWidth) {
        self.emit(Instr::Store { rs, mem: MemRef::Stream(id), width });
    }

    /// Auto-stride FP load from stream `id`.
    pub fn fld_stream(&mut self, fd: FReg, id: StreamId) {
        self.emit(Instr::LoadF { fd, mem: MemRef::Stream(id) });
    }

    /// Auto-stride FP store to stream `id`.
    pub fn fsd_stream(&mut self, fs: FReg, id: StreamId) {
        self.emit(Instr::StoreF { fs, mem: MemRef::Stream(id) });
    }

    // ---- control flow -----------------------------------------------------

    fn branch(&mut self, cond: Cond, rs1: Reg, rs2: Reg, target: Label) {
        self.fixups.push((self.instrs.len(), target));
        self.emit(Instr::Branch { cond, rs1, rs2, target: u32::MAX });
    }

    /// Branch to `target` when `rs1 == rs2`.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(Cond::Eq, rs1, rs2, target);
    }

    /// Branch to `target` when `rs1 != rs2`.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(Cond::Ne, rs1, rs2, target);
    }

    /// Branch to `target` when `rs1 < rs2` (signed).
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(Cond::Lt, rs1, rs2, target);
    }

    /// Branch to `target` when `rs1 >= rs2` (signed).
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(Cond::Ge, rs1, rs2, target);
    }

    /// Branch to `target` when `rs1 <= rs2` (signed).
    pub fn ble(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(Cond::Le, rs1, rs2, target);
    }

    /// Branch to `target` when `rs1 > rs2` (signed).
    pub fn bgt(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(Cond::Gt, rs1, rs2, target);
    }

    /// Branch to `target` when `rs != 0`.
    pub fn bnez(&mut self, rs: Reg, target: Label) {
        self.branch(Cond::Ne, rs, Reg::ZERO, target);
    }

    /// Branch to `target` when `rs == 0`.
    pub fn beqz(&mut self, rs: Reg, target: Label) {
        self.branch(Cond::Eq, rs, Reg::ZERO, target);
    }

    /// Unconditional jump to `target`.
    pub fn j(&mut self, target: Label) {
        self.fixups.push((self.instrs.len(), target));
        self.emit(Instr::Jump { target: u32::MAX });
    }

    /// Call: `rd = return pc`, jump to `target`.
    pub fn jal(&mut self, rd: Reg, target: Label) {
        self.fixups.push((self.instrs.len(), target));
        self.emit(Instr::Jal { rd, target: u32::MAX });
    }

    /// Indirect jump (return) through `rs`.
    pub fn jr(&mut self, rs: Reg) {
        self.emit(Instr::Jr { rs });
    }

    /// Stops the program.
    pub fn halt(&mut self) {
        self.emit(Instr::Halt);
    }

    // ---- finalization ------------------------------------------------------

    /// Resolves all label references and produces the [`Program`].
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    pub fn build(self) -> Program {
        let ProgramBuilder { name, mut instrs, data, streams, labels, fixups, .. } = self;
        for (idx, label) in fixups {
            let pc = labels[label.0 as usize]
                .unwrap_or_else(|| panic!("label {label} referenced but never bound"));
            match &mut instrs[idx] {
                Instr::Branch { target, .. }
                | Instr::Jump { target }
                | Instr::Jal { target, .. } => {
                    *target = pc;
                }
                other => unreachable!("fixup on non-control instruction {other:?}"),
            }
        }
        Program::from_parts(name, instrs, 0, data, streams)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut b = ProgramBuilder::new("t");
        let fwd = b.label();
        let back = b.label();
        b.bind(back);
        b.nop();
        b.j(fwd); // forward reference
        b.nop();
        b.bind(fwd);
        b.beqz(Reg::new(1), back); // backward reference
        b.halt();
        let p = b.build();
        assert_eq!(p.fetch(1), Instr::Jump { target: 3 });
        match p.fetch(3) {
            Instr::Branch { target, .. } => assert_eq!(target, 0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut b = ProgramBuilder::new("t");
        let l = b.label();
        b.j(l);
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new("t");
        let l = b.label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn data_allocation_is_aligned_and_disjoint() {
        let mut b = ProgramBuilder::new("t");
        let a = b.alloc(3);
        let c = b.alloc(40);
        let d = b.data_u64(&[1, 2, 3]);
        assert_eq!(a % 16, 0);
        assert_eq!(c % 16, 0);
        assert!(c >= a + 3);
        assert!(d >= c + 40);
        let prog = b.build();
        assert_eq!(prog.data().len(), 1);
        assert_eq!(prog.data()[0].bytes.len(), 24);
    }

    #[test]
    fn stream_alloc_places_negative_stride_at_top() {
        let mut b = ProgramBuilder::new("t");
        let id = b.stream_alloc(-16, 4);
        b.halt();
        let p = b.build();
        let s = p.stream(id);
        assert_eq!(s.stride, -16);
        // Walking the whole stream must stay at or above the allocation base.
        let lo = s.base - 16 * 3;
        for k in 0..4 {
            assert!(s.address(k) >= lo && s.address(k) <= s.base);
        }
    }

    #[test]
    fn mv_is_add_zero() {
        let mut b = ProgramBuilder::new("t");
        b.mv(Reg::new(2), Reg::new(3));
        let p = b.build();
        assert_eq!(
            p.fetch(0),
            Instr::Alu { op: AluOp::Add, rd: Reg::new(2), rs1: Reg::new(3), rs2: Reg::ZERO }
        );
    }
}
