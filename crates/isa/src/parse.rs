//! Parsing of the assembly text produced by [`disasm`](crate::disasm) —
//! the inverse direction, so program listings round-trip.

use std::error::Error;
use std::fmt;

use crate::instr::{AluOp, Cond, FpOp, Instr, MemRef, MemWidth};
use crate::program::StreamId;
use crate::reg::{FReg, Reg};

/// Error produced when assembly text cannot be parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseInstrError {
    text: String,
    reason: String,
}

impl ParseInstrError {
    fn new(text: &str, reason: impl Into<String>) -> ParseInstrError {
        ParseInstrError { text: text.to_string(), reason: reason.into() }
    }
}

impl fmt::Display for ParseInstrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot parse {:?}: {}", self.text, self.reason)
    }
}

impl Error for ParseInstrError {}

fn parse_reg(s: &str) -> Result<Reg, String> {
    let idx = s
        .strip_prefix('r')
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|&n| n < 32)
        .ok_or_else(|| format!("bad integer register {s:?}"))?;
    Ok(Reg::new(idx))
}

fn parse_freg(s: &str) -> Result<FReg, String> {
    let idx = s
        .strip_prefix('f')
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|&n| n < 32)
        .ok_or_else(|| format!("bad fp register {s:?}"))?;
    Ok(FReg::new(idx))
}

fn parse_target(s: &str) -> Result<u32, String> {
    s.strip_prefix('@')
        .and_then(|n| n.parse::<u32>().ok())
        .ok_or_else(|| format!("bad target {s:?}"))
}

/// Parses `off(rN)` or `[sN]` memory operands.
fn parse_mem(s: &str) -> Result<MemRef, String> {
    if let Some(inner) = s.strip_prefix('[').and_then(|x| x.strip_suffix(']')) {
        let id = inner
            .strip_prefix('s')
            .and_then(|n| n.parse::<u32>().ok())
            .ok_or_else(|| format!("bad stream ref {s:?}"))?;
        return Ok(MemRef::Stream(StreamId::new(id)));
    }
    let open = s.find('(').ok_or_else(|| format!("bad memory operand {s:?}"))?;
    let close = s.rfind(')').ok_or_else(|| format!("bad memory operand {s:?}"))?;
    let offset: i32 = s[..open].parse().map_err(|_| format!("bad offset in {s:?}"))?;
    let base = parse_reg(&s[open + 1..close])?;
    Ok(MemRef::Base { base, offset })
}

fn alu_op(mnemonic: &str) -> Option<AluOp> {
    Some(match mnemonic {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "sll" => AluOp::Sll,
        "srl" => AluOp::Srl,
        "sra" => AluOp::Sra,
        "slt" => AluOp::Slt,
        "sltu" => AluOp::Sltu,
        _ => return None,
    })
}

fn fp_op(mnemonic: &str) -> Option<FpOp> {
    Some(match mnemonic {
        "fadd" => FpOp::Add,
        "fsub" => FpOp::Sub,
        "fmul" => FpOp::Mul,
        "fdiv" => FpOp::Div,
        "fsqrt" => FpOp::Sqrt,
        "fmin" => FpOp::Min,
        "fmax" => FpOp::Max,
        _ => return None,
    })
}

fn cond(mnemonic: &str) -> Option<Cond> {
    Some(match mnemonic {
        "beq" => Cond::Eq,
        "bne" => Cond::Ne,
        "blt" => Cond::Lt,
        "bge" => Cond::Ge,
        "ble" => Cond::Le,
        "bgt" => Cond::Gt,
        _ => return None,
    })
}

/// Parses one line of assembly in [`disasm`](crate::disasm)'s syntax.
///
/// # Example
///
/// ```
/// use perfclone_isa::{parse_instr, disasm, Instr, Reg, AluOp};
/// let i = Instr::AluImm { op: AluOp::Xor, rd: Reg::new(1), rs1: Reg::new(2), imm: -5 };
/// assert_eq!(parse_instr(&disasm(&i)).unwrap(), i);
/// ```
///
/// # Errors
///
/// Returns [`ParseInstrError`] for unknown mnemonics or malformed operands.
pub fn parse_instr(line: &str) -> Result<Instr, ParseInstrError> {
    let text = line.trim();
    let err = |reason: String| ParseInstrError::new(text, reason);
    let (mnemonic, rest) = match text.split_once(' ') {
        Some((m, r)) => (m, r.trim()),
        None => (text, ""),
    };
    let ops: Vec<&str> =
        if rest.is_empty() { Vec::new() } else { rest.split(',').map(str::trim).collect() };
    let want = |n: usize| -> Result<(), ParseInstrError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(format!("expected {n} operands, got {}", ops.len())))
        }
    };

    // Register-register ALU.
    if let Some(op) = alu_op(mnemonic) {
        want(3)?;
        return Ok(Instr::Alu {
            op,
            rd: parse_reg(ops[0]).map_err(err)?,
            rs1: parse_reg(ops[1]).map_err(err)?,
            rs2: parse_reg(ops[2]).map_err(err)?,
        });
    }
    // Register-immediate ALU: mnemonic ends with 'i'.
    if let Some(op) = mnemonic.strip_suffix('i').and_then(alu_op) {
        want(3)?;
        return Ok(Instr::AluImm {
            op,
            rd: parse_reg(ops[0]).map_err(err)?,
            rs1: parse_reg(ops[1]).map_err(err)?,
            imm: ops[2].parse().map_err(|_| err(format!("bad immediate {:?}", ops[2])))?,
        });
    }
    if let Some(op) = fp_op(mnemonic) {
        if op == FpOp::Sqrt {
            // disasm prints both sources even though sqrt reads one.
            want(3)?;
        } else {
            want(3)?;
        }
        return Ok(Instr::Fp {
            op,
            fd: parse_freg(ops[0]).map_err(err)?,
            fs1: parse_freg(ops[1]).map_err(err)?,
            fs2: parse_freg(ops[2]).map_err(err)?,
        });
    }
    if let Some(c) = cond(mnemonic) {
        want(3)?;
        return Ok(Instr::Branch {
            cond: c,
            rs1: parse_reg(ops[0]).map_err(err)?,
            rs2: parse_reg(ops[1]).map_err(err)?,
            target: parse_target(ops[2]).map_err(err)?,
        });
    }
    match mnemonic {
        "li" => {
            want(2)?;
            Ok(Instr::Li {
                rd: parse_reg(ops[0]).map_err(err)?,
                imm: ops[1].parse().map_err(|_| err(format!("bad immediate {:?}", ops[1])))?,
            })
        }
        "fli" => {
            want(2)?;
            Ok(Instr::FLi {
                fd: parse_freg(ops[0]).map_err(err)?,
                imm: ops[1].parse().map_err(|_| err(format!("bad fp immediate {:?}", ops[1])))?,
            })
        }
        "mul" | "div" | "rem" => {
            want(3)?;
            let rd = parse_reg(ops[0]).map_err(err)?;
            let rs1 = parse_reg(ops[1]).map_err(err)?;
            let rs2 = parse_reg(ops[2]).map_err(err)?;
            Ok(match mnemonic {
                "mul" => Instr::Mul { rd, rs1, rs2 },
                "div" => Instr::Div { rd, rs1, rs2 },
                _ => Instr::Rem { rd, rs1, rs2 },
            })
        }
        "cvt.i.f" => {
            want(2)?;
            Ok(Instr::CvtIf {
                fd: parse_freg(ops[0]).map_err(err)?,
                rs: parse_reg(ops[1]).map_err(err)?,
            })
        }
        "cvt.f.i" => {
            want(2)?;
            Ok(Instr::CvtFi {
                rd: parse_reg(ops[0]).map_err(err)?,
                fs: parse_freg(ops[1]).map_err(err)?,
            })
        }
        "fcmp.lt" => {
            want(3)?;
            Ok(Instr::FCmpLt {
                rd: parse_reg(ops[0]).map_err(err)?,
                fs1: parse_freg(ops[1]).map_err(err)?,
                fs2: parse_freg(ops[2]).map_err(err)?,
            })
        }
        "lb" | "lw" | "ld" => {
            want(2)?;
            let width = match mnemonic {
                "lb" => MemWidth::B1,
                "lw" => MemWidth::B4,
                _ => MemWidth::B8,
            };
            Ok(Instr::Load {
                rd: parse_reg(ops[0]).map_err(err)?,
                mem: parse_mem(ops[1]).map_err(err)?,
                width,
            })
        }
        "sb" | "sw" | "sd" => {
            want(2)?;
            let width = match mnemonic {
                "sb" => MemWidth::B1,
                "sw" => MemWidth::B4,
                _ => MemWidth::B8,
            };
            Ok(Instr::Store {
                rs: parse_reg(ops[0]).map_err(err)?,
                mem: parse_mem(ops[1]).map_err(err)?,
                width,
            })
        }
        "fld" => {
            want(2)?;
            Ok(Instr::LoadF {
                fd: parse_freg(ops[0]).map_err(err)?,
                mem: parse_mem(ops[1]).map_err(err)?,
            })
        }
        "fsd" => {
            want(2)?;
            Ok(Instr::StoreF {
                fs: parse_freg(ops[0]).map_err(err)?,
                mem: parse_mem(ops[1]).map_err(err)?,
            })
        }
        "j" => {
            want(1)?;
            Ok(Instr::Jump { target: parse_target(ops[0]).map_err(err)? })
        }
        "jal" => {
            want(2)?;
            Ok(Instr::Jal {
                rd: parse_reg(ops[0]).map_err(err)?,
                target: parse_target(ops[1]).map_err(err)?,
            })
        }
        "jr" => {
            want(1)?;
            Ok(Instr::Jr { rs: parse_reg(ops[0]).map_err(err)? })
        }
        "nop" => {
            want(0)?;
            Ok(Instr::Nop)
        }
        "halt" => {
            want(0)?;
            Ok(Instr::Halt)
        }
        other => Err(err(format!("unknown mnemonic {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::disasm;
    use proptest::prelude::*;

    fn reg_strategy() -> impl Strategy<Value = Reg> {
        (0u8..32).prop_map(Reg::new)
    }

    fn freg_strategy() -> impl Strategy<Value = FReg> {
        (0u8..32).prop_map(FReg::new)
    }

    fn mem_strategy() -> impl Strategy<Value = MemRef> {
        prop_oneof![
            (reg_strategy(), -4096i32..4096)
                .prop_map(|(base, offset)| MemRef::Base { base, offset }),
            (0u32..64).prop_map(|i| MemRef::Stream(StreamId::new(i))),
        ]
    }

    fn instr_strategy() -> impl Strategy<Value = Instr> {
        let alu = prop_oneof![
            Just(AluOp::Add),
            Just(AluOp::Sub),
            Just(AluOp::And),
            Just(AluOp::Or),
            Just(AluOp::Xor),
            Just(AluOp::Sll),
            Just(AluOp::Srl),
            Just(AluOp::Sra),
            Just(AluOp::Slt),
            Just(AluOp::Sltu),
        ];
        let conds = prop_oneof![
            Just(Cond::Eq),
            Just(Cond::Ne),
            Just(Cond::Lt),
            Just(Cond::Ge),
            Just(Cond::Le),
            Just(Cond::Gt),
        ];
        let widths = prop_oneof![Just(MemWidth::B1), Just(MemWidth::B4), Just(MemWidth::B8)];
        prop_oneof![
            (alu.clone(), reg_strategy(), reg_strategy(), reg_strategy())
                .prop_map(|(op, rd, rs1, rs2)| Instr::Alu { op, rd, rs1, rs2 }),
            (alu, reg_strategy(), reg_strategy(), -1000i32..1000)
                .prop_map(|(op, rd, rs1, imm)| Instr::AluImm { op, rd, rs1, imm }),
            (reg_strategy(), -1_000_000i64..1_000_000).prop_map(|(rd, imm)| Instr::Li { rd, imm }),
            (reg_strategy(), reg_strategy(), reg_strategy())
                .prop_map(|(rd, rs1, rs2)| Instr::Mul { rd, rs1, rs2 }),
            (reg_strategy(), reg_strategy(), reg_strategy())
                .prop_map(|(rd, rs1, rs2)| Instr::Div { rd, rs1, rs2 }),
            (reg_strategy(), reg_strategy(), reg_strategy())
                .prop_map(|(rd, rs1, rs2)| Instr::Rem { rd, rs1, rs2 }),
            (freg_strategy(), freg_strategy(), freg_strategy())
                .prop_map(|(fd, fs1, fs2)| Instr::Fp { op: FpOp::Mul, fd, fs1, fs2 }),
            (reg_strategy(), mem_strategy(), widths.clone())
                .prop_map(|(rd, mem, width)| Instr::Load { rd, mem, width }),
            (reg_strategy(), mem_strategy(), widths).prop_map(|(rs, mem, width)| Instr::Store {
                rs,
                mem,
                width
            }),
            (freg_strategy(), mem_strategy()).prop_map(|(fd, mem)| Instr::LoadF { fd, mem }),
            (freg_strategy(), mem_strategy()).prop_map(|(fs, mem)| Instr::StoreF { fs, mem }),
            (conds, reg_strategy(), reg_strategy(), 0u32..10_000)
                .prop_map(|(cond, rs1, rs2, target)| Instr::Branch { cond, rs1, rs2, target }),
            (0u32..10_000).prop_map(|target| Instr::Jump { target }),
            (reg_strategy(), 0u32..10_000).prop_map(|(rd, target)| Instr::Jal { rd, target }),
            reg_strategy().prop_map(|rs| Instr::Jr { rs }),
            Just(Instr::Nop),
            Just(Instr::Halt),
        ]
    }

    proptest! {
        /// Every instruction round-trips through disassembly and parsing.
        #[test]
        fn disasm_parse_round_trip(i in instr_strategy()) {
            let text = disasm(&i);
            let back = parse_instr(&text).expect("parses");
            prop_assert_eq!(back, i);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_instr("frobnicate r1, r2").is_err());
        assert!(parse_instr("add r1, r2").is_err()); // too few operands
        assert!(parse_instr("add r1, r2, r99").is_err()); // bad register
        assert!(parse_instr("ld r1, nonsense").is_err());
        assert!(parse_instr("beq r1, r2, 12").is_err()); // missing '@'
    }

    #[test]
    fn parse_examples() {
        assert_eq!(
            parse_instr("lw r3, -8(r4)").unwrap(),
            Instr::Load {
                rd: Reg::new(3),
                mem: MemRef::Base { base: Reg::new(4), offset: -8 },
                width: MemWidth::B4
            }
        );
        assert_eq!(
            parse_instr("sd r5, [s2]").unwrap(),
            Instr::Store {
                rs: Reg::new(5),
                mem: MemRef::Stream(StreamId::new(2)),
                width: MemWidth::B8
            }
        );
        assert_eq!(parse_instr("halt").unwrap(), Instr::Halt);
    }

    #[test]
    fn error_display_mentions_input() {
        let e = parse_instr("bogus r1").unwrap_err();
        assert!(e.to_string().contains("bogus"));
    }
}
