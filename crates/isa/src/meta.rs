//! Flat per-instruction static metadata, interned once per [`Program`].
//!
//! The timing pipeline asks the same questions of every retired record:
//! which functional-unit class, which source/destination registers (as
//! [`RegRef::flat_index`] slots in the rename table), whether the record
//! carries a memory access, and whether it is a conditional branch. On the
//! replay hot path those answers are static — they depend only on the
//! instruction at the record's pc — yet the enum-matching accessors on
//! [`Instr`] re-derive them per dynamic record.
//!
//! [`InstrMeta`] caches the answers in a flat `Copy` struct and
//! [`InstrMetaTable`] interns one per pc in a dense, pc-indexed `Vec` built
//! once per program. Replay paths (batched and record-at-a-time oracle)
//! index the table by pc; paths without a stable pc→instr mapping (statsim's
//! synthetic traces shuffle block bodies, so one pc can denote different
//! instructions across records) derive the same struct per record via
//! [`InstrMeta::of`], keeping a single derivation of the metadata semantics.
//!
//! Every field is computed *through* the existing `Instr` accessors
//! (`class`, `uses`, `defs`, `mem_ref`, `is_cond_branch`, `is_control`), so
//! the interned answers are identical to the unintermed ones by
//! construction — the bit-identity property the replay oracle tests rely on.

use crate::instr::{Instr, InstrClass};
use crate::program::Program;

/// Maximum operands in an [`OperandList`](crate::OperandList); mirrored here
/// so the fixed arrays below cannot silently truncate.
const MAX_OPERANDS: usize = 3;

/// Cached static answers for one instruction. `Copy` and 16 bytes, so a
/// pc-indexed table of these stays cache-resident for real programs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InstrMeta {
    /// Functional-unit class (`Instr::class`).
    pub class: InstrClass,
    /// `Instr::is_cond_branch()`.
    pub cond_branch: bool,
    /// `Instr::is_control()`.
    pub control: bool,
    /// The instruction performs a memory access (`Instr::mem_ref().is_some()`).
    pub has_mem: bool,
    /// Number of valid entries in `use_idx`.
    pub num_uses: u8,
    /// Number of valid entries in `def_idx`.
    pub num_defs: u8,
    /// `RegRef::flat_index` of each source operand, in `Instr::uses` order
    /// (order matters: dependence lists dedup in first-seen order).
    pub use_idx: [u8; MAX_OPERANDS],
    /// `RegRef::flat_index` of each destination operand, in `Instr::defs` order.
    pub def_idx: [u8; MAX_OPERANDS],
}

impl InstrMeta {
    /// Derives the metadata for one instruction via the canonical `Instr`
    /// accessors. This is the *only* derivation in the workspace; interned
    /// tables and per-record paths both go through it.
    pub fn of(instr: &Instr) -> InstrMeta {
        let uses = instr.uses();
        let defs = instr.defs();
        let mut use_idx = [0u8; MAX_OPERANDS];
        let mut def_idx = [0u8; MAX_OPERANDS];
        for (slot, reg) in use_idx.iter_mut().zip(uses.iter()) {
            *slot = reg.flat_index() as u8;
        }
        for (slot, reg) in def_idx.iter_mut().zip(defs.iter()) {
            *slot = reg.flat_index() as u8;
        }
        InstrMeta {
            class: instr.class(),
            cond_branch: instr.is_cond_branch(),
            control: instr.is_control(),
            has_mem: instr.mem_ref().is_some(),
            num_uses: uses.len() as u8,
            num_defs: defs.len() as u8,
            use_idx,
            def_idx,
        }
    }

    /// Valid source-operand flat indices, in `Instr::uses` order.
    #[inline]
    pub fn uses(&self) -> &[u8] {
        &self.use_idx[..self.num_uses as usize]
    }

    /// Valid destination-operand flat indices, in `Instr::defs` order.
    #[inline]
    pub fn defs(&self) -> &[u8] {
        &self.def_idx[..self.num_defs as usize]
    }
}

/// Dense pc-indexed table of [`InstrMeta`], built once per [`Program`] and
/// shared by every replay of that program (the `WorkloadCache` memoizes one
/// per workload). Indexing by pc replaces four-plus enum matches per retired
/// record with one 16-byte load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstrMetaTable {
    metas: Vec<InstrMeta>,
}

impl InstrMetaTable {
    /// Interns metadata for every instruction of `program`, in pc order.
    pub fn new(program: &Program) -> InstrMetaTable {
        Self::of_instrs(program.instrs())
    }

    /// Interns metadata for a raw instruction slice (pc = slice index).
    pub fn of_instrs(instrs: &[Instr]) -> InstrMetaTable {
        InstrMetaTable { metas: instrs.iter().map(InstrMeta::of).collect() }
    }

    /// Number of interned entries (== program length).
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// True when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// The entry for `pc`. Panics if `pc` is outside the program, same as
    /// resolving the instruction itself would.
    #[inline]
    pub fn at(&self, pc: u32) -> &InstrMeta {
        &self.metas[pc as usize]
    }

    /// The whole table as a pc-indexed slice.
    #[inline]
    pub fn as_slice(&self) -> &[InstrMeta] {
        &self.metas
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::reg::{FReg, Reg};

    fn sample_program() -> Program {
        let mut b = ProgramBuilder::new("meta-sample");
        let (a, i, n) = (Reg::new(1), Reg::new(2), Reg::new(3));
        b.li(a, 7);
        b.li(i, 0);
        b.li(n, 4);
        let top = b.label();
        b.bind(top);
        b.add(a, a, i);
        b.lw(Reg::new(4), a, 0);
        b.sw(Reg::new(4), a, 8);
        b.fadd(FReg::new(1), FReg::new(2), FReg::new(3));
        b.addi(i, i, 1);
        b.ble(i, n, top);
        b.j(top);
        b.halt();
        b.build()
    }

    #[test]
    fn meta_matches_instr_accessors_for_every_pc() {
        let program = sample_program();
        let table = InstrMetaTable::new(&program);
        assert_eq!(table.len(), program.len());
        for (pc, instr) in program.instrs().iter().enumerate() {
            let m = table.at(pc as u32);
            assert_eq!(m.class, instr.class());
            assert_eq!(m.cond_branch, instr.is_cond_branch());
            assert_eq!(m.control, instr.is_control());
            assert_eq!(m.has_mem, instr.mem_ref().is_some());
            let uses: Vec<u8> = instr.uses().iter().map(|r| r.flat_index() as u8).collect();
            let defs: Vec<u8> = instr.defs().iter().map(|r| r.flat_index() as u8).collect();
            assert_eq!(m.uses(), uses.as_slice(), "uses order must match at pc {pc}");
            assert_eq!(m.defs(), defs.as_slice(), "defs order must match at pc {pc}");
        }
    }

    #[test]
    fn meta_is_compact() {
        // The table is indexed per retired record; keep the entry small
        // enough that real programs stay in L1/L2.
        assert!(std::mem::size_of::<InstrMeta>() <= 16);
    }
}
