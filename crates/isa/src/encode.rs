//! Fixed-width binary encoding of instructions.
//!
//! Every instruction encodes to one 64-bit word (the ISA's
//! [`INSTR_BYTES`](crate::INSTR_BYTES)): an 8-bit opcode, three 8-bit
//! register/selector fields, and a 32-bit immediate. Large `li` immediates
//! that exceed 32 bits are the one variable exception — they are encoded
//! as an opcode marker plus the full value in a trailing word by
//! [`encode_program`], mirroring how fixed-width ISAs split large
//! constants across instruction pairs.

use std::error::Error;
use std::fmt;

use crate::instr::{AluOp, Cond, FpOp, Instr, MemRef, MemWidth};
use crate::program::StreamId;
use crate::reg::{FReg, Reg};

/// Error produced when a word does not decode to an instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError {
    word: u64,
    reason: &'static str,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode {:#018x}: {}", self.word, self.reason)
    }
}

impl Error for DecodeError {}

// Opcode space.
const OP_ALU: u8 = 0x01; // a = AluOp discriminant
const OP_ALU_IMM: u8 = 0x02;
const OP_LI: u8 = 0x03; // imm32 sign-extended
const OP_LI_WIDE: u8 = 0x04; // value in the following word
const OP_MUL: u8 = 0x05;
const OP_DIV: u8 = 0x06;
const OP_REM: u8 = 0x07;
const OP_FP: u8 = 0x08; // a = FpOp discriminant
const OP_FLI: u8 = 0x09; // f64 bits in the following word
const OP_CVT_IF: u8 = 0x0a;
const OP_CVT_FI: u8 = 0x0b;
const OP_FCMP_LT: u8 = 0x0c;
const OP_LOAD: u8 = 0x0d; // c = width code; imm = offset
const OP_STORE: u8 = 0x0e;
const OP_LOAD_STREAM: u8 = 0x0f; // imm = stream id
const OP_STORE_STREAM: u8 = 0x10;
const OP_LOADF: u8 = 0x11;
const OP_STOREF: u8 = 0x12;
const OP_LOADF_STREAM: u8 = 0x13;
const OP_STOREF_STREAM: u8 = 0x14;
const OP_BRANCH: u8 = 0x15; // a = Cond discriminant; imm = target
const OP_JUMP: u8 = 0x16;
const OP_JAL: u8 = 0x17;
const OP_JR: u8 = 0x18;
const OP_NOP: u8 = 0x19;
const OP_HALT: u8 = 0x1a;

fn pack(op: u8, a: u8, b: u8, c: u8, imm: u32) -> u64 {
    (u64::from(op) << 56)
        | (u64::from(a) << 48)
        | (u64::from(b) << 40)
        | (u64::from(c) << 32)
        | u64::from(imm)
}

fn fields(word: u64) -> (u8, u8, u8, u8, u32) {
    ((word >> 56) as u8, (word >> 48) as u8, (word >> 40) as u8, (word >> 32) as u8, word as u32)
}

fn alu_code(op: AluOp) -> u8 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::And => 2,
        AluOp::Or => 3,
        AluOp::Xor => 4,
        AluOp::Sll => 5,
        AluOp::Srl => 6,
        AluOp::Sra => 7,
        AluOp::Slt => 8,
        AluOp::Sltu => 9,
    }
}

fn alu_from(code: u8) -> Option<AluOp> {
    Some(match code {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::And,
        3 => AluOp::Or,
        4 => AluOp::Xor,
        5 => AluOp::Sll,
        6 => AluOp::Srl,
        7 => AluOp::Sra,
        8 => AluOp::Slt,
        9 => AluOp::Sltu,
        _ => return None,
    })
}

fn fp_code(op: FpOp) -> u8 {
    match op {
        FpOp::Add => 0,
        FpOp::Sub => 1,
        FpOp::Mul => 2,
        FpOp::Div => 3,
        FpOp::Sqrt => 4,
        FpOp::Min => 5,
        FpOp::Max => 6,
    }
}

fn fp_from(code: u8) -> Option<FpOp> {
    Some(match code {
        0 => FpOp::Add,
        1 => FpOp::Sub,
        2 => FpOp::Mul,
        3 => FpOp::Div,
        4 => FpOp::Sqrt,
        5 => FpOp::Min,
        6 => FpOp::Max,
        _ => return None,
    })
}

fn cond_code(c: Cond) -> u8 {
    match c {
        Cond::Eq => 0,
        Cond::Ne => 1,
        Cond::Lt => 2,
        Cond::Ge => 3,
        Cond::Le => 4,
        Cond::Gt => 5,
    }
}

fn cond_from(code: u8) -> Option<Cond> {
    Some(match code {
        0 => Cond::Eq,
        1 => Cond::Ne,
        2 => Cond::Lt,
        3 => Cond::Ge,
        4 => Cond::Le,
        5 => Cond::Gt,
        _ => return None,
    })
}

fn width_code(w: MemWidth) -> u8 {
    match w {
        MemWidth::B1 => 0,
        MemWidth::B4 => 1,
        MemWidth::B8 => 2,
    }
}

fn width_from(code: u8) -> Option<MemWidth> {
    Some(match code {
        0 => MemWidth::B1,
        1 => MemWidth::B4,
        2 => MemWidth::B8,
        _ => return None,
    })
}

/// Encodes one instruction to a word, plus an optional trailing word for
/// wide immediates (`li` beyond ±2³¹, and every `fli`).
pub fn encode_instr(instr: &Instr) -> (u64, Option<u64>) {
    match *instr {
        Instr::Alu { op, rd, rs1, rs2 } => {
            (pack(OP_ALU, alu_code(op), rd.index(), rs1.index(), u32::from(rs2.index())), None)
        }
        Instr::AluImm { op, rd, rs1, imm } => {
            (pack(OP_ALU_IMM, alu_code(op), rd.index(), rs1.index(), imm as u32), None)
        }
        Instr::Li { rd, imm } => {
            if i64::from(imm as i32) == imm {
                (pack(OP_LI, rd.index(), 0, 0, imm as u32), None)
            } else {
                (pack(OP_LI_WIDE, rd.index(), 0, 0, 0), Some(imm as u64))
            }
        }
        Instr::Mul { rd, rs1, rs2 } => {
            (pack(OP_MUL, rd.index(), rs1.index(), rs2.index(), 0), None)
        }
        Instr::Div { rd, rs1, rs2 } => {
            (pack(OP_DIV, rd.index(), rs1.index(), rs2.index(), 0), None)
        }
        Instr::Rem { rd, rs1, rs2 } => {
            (pack(OP_REM, rd.index(), rs1.index(), rs2.index(), 0), None)
        }
        Instr::Fp { op, fd, fs1, fs2 } => {
            (pack(OP_FP, fp_code(op), fd.index(), fs1.index(), u32::from(fs2.index())), None)
        }
        Instr::FLi { fd, imm } => (pack(OP_FLI, fd.index(), 0, 0, 0), Some(imm.to_bits())),
        Instr::CvtIf { fd, rs } => (pack(OP_CVT_IF, fd.index(), rs.index(), 0, 0), None),
        Instr::CvtFi { rd, fs } => (pack(OP_CVT_FI, rd.index(), fs.index(), 0, 0), None),
        Instr::FCmpLt { rd, fs1, fs2 } => {
            (pack(OP_FCMP_LT, rd.index(), fs1.index(), fs2.index(), 0), None)
        }
        Instr::Load { rd, mem, width } => match mem {
            MemRef::Base { base, offset } => {
                (pack(OP_LOAD, rd.index(), base.index(), width_code(width), offset as u32), None)
            }
            MemRef::Stream(id) => {
                (pack(OP_LOAD_STREAM, rd.index(), 0, width_code(width), id.index()), None)
            }
        },
        Instr::Store { rs, mem, width } => match mem {
            MemRef::Base { base, offset } => {
                (pack(OP_STORE, rs.index(), base.index(), width_code(width), offset as u32), None)
            }
            MemRef::Stream(id) => {
                (pack(OP_STORE_STREAM, rs.index(), 0, width_code(width), id.index()), None)
            }
        },
        Instr::LoadF { fd, mem } => match mem {
            MemRef::Base { base, offset } => {
                (pack(OP_LOADF, fd.index(), base.index(), 0, offset as u32), None)
            }
            MemRef::Stream(id) => (pack(OP_LOADF_STREAM, fd.index(), 0, 0, id.index()), None),
        },
        Instr::StoreF { fs, mem } => match mem {
            MemRef::Base { base, offset } => {
                (pack(OP_STOREF, fs.index(), base.index(), 0, offset as u32), None)
            }
            MemRef::Stream(id) => (pack(OP_STOREF_STREAM, fs.index(), 0, 0, id.index()), None),
        },
        Instr::Branch { cond, rs1, rs2, target } => {
            (pack(OP_BRANCH, cond_code(cond), rs1.index(), rs2.index(), target), None)
        }
        Instr::Jump { target } => (pack(OP_JUMP, 0, 0, 0, target), None),
        Instr::Jal { rd, target } => (pack(OP_JAL, rd.index(), 0, 0, target), None),
        Instr::Jr { rs } => (pack(OP_JR, rs.index(), 0, 0, 0), None),
        Instr::Nop => (pack(OP_NOP, 0, 0, 0, 0), None),
        Instr::Halt => (pack(OP_HALT, 0, 0, 0, 0), None),
    }
}

/// Decodes one word (plus the optional trailing word when the opcode
/// demands one) back to an instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] for unknown opcodes, out-of-range fields, or a
/// missing trailing word.
pub fn decode_instr(word: u64, trailing: Option<u64>) -> Result<Instr, DecodeError> {
    let err = |reason: &'static str| DecodeError { word, reason };
    let reg = |i: u8| -> Result<Reg, DecodeError> {
        if i < 32 {
            Ok(Reg::new(i))
        } else {
            Err(err("register field out of range"))
        }
    };
    let freg = |i: u8| -> Result<FReg, DecodeError> {
        if i < 32 {
            Ok(FReg::new(i))
        } else {
            Err(err("fp register field out of range"))
        }
    };
    let (op, a, b, c, imm) = fields(word);
    Ok(match op {
        OP_ALU => Instr::Alu {
            op: alu_from(a).ok_or_else(|| err("bad alu op"))?,
            rd: reg(b)?,
            rs1: reg(c)?,
            rs2: reg(imm as u8)?,
        },
        OP_ALU_IMM => Instr::AluImm {
            op: alu_from(a).ok_or_else(|| err("bad alu op"))?,
            rd: reg(b)?,
            rs1: reg(c)?,
            imm: imm as i32,
        },
        OP_LI => Instr::Li { rd: reg(a)?, imm: i64::from(imm as i32) },
        OP_LI_WIDE => Instr::Li {
            rd: reg(a)?,
            imm: trailing.ok_or_else(|| err("missing wide immediate"))? as i64,
        },
        OP_MUL => Instr::Mul { rd: reg(a)?, rs1: reg(b)?, rs2: reg(c)? },
        OP_DIV => Instr::Div { rd: reg(a)?, rs1: reg(b)?, rs2: reg(c)? },
        OP_REM => Instr::Rem { rd: reg(a)?, rs1: reg(b)?, rs2: reg(c)? },
        OP_FP => Instr::Fp {
            op: fp_from(a).ok_or_else(|| err("bad fp op"))?,
            fd: freg(b)?,
            fs1: freg(c)?,
            fs2: freg(imm as u8)?,
        },
        OP_FLI => Instr::FLi {
            fd: freg(a)?,
            imm: f64::from_bits(trailing.ok_or_else(|| err("missing fp immediate"))?),
        },
        OP_CVT_IF => Instr::CvtIf { fd: freg(a)?, rs: reg(b)? },
        OP_CVT_FI => Instr::CvtFi { rd: reg(a)?, fs: freg(b)? },
        OP_FCMP_LT => Instr::FCmpLt { rd: reg(a)?, fs1: freg(b)?, fs2: freg(c)? },
        OP_LOAD => Instr::Load {
            rd: reg(a)?,
            mem: MemRef::Base { base: reg(b)?, offset: imm as i32 },
            width: width_from(c).ok_or_else(|| err("bad width"))?,
        },
        OP_STORE => Instr::Store {
            rs: reg(a)?,
            mem: MemRef::Base { base: reg(b)?, offset: imm as i32 },
            width: width_from(c).ok_or_else(|| err("bad width"))?,
        },
        OP_LOAD_STREAM => Instr::Load {
            rd: reg(a)?,
            mem: MemRef::Stream(StreamId::new(imm)),
            width: width_from(c).ok_or_else(|| err("bad width"))?,
        },
        OP_STORE_STREAM => Instr::Store {
            rs: reg(a)?,
            mem: MemRef::Stream(StreamId::new(imm)),
            width: width_from(c).ok_or_else(|| err("bad width"))?,
        },
        OP_LOADF => {
            Instr::LoadF { fd: freg(a)?, mem: MemRef::Base { base: reg(b)?, offset: imm as i32 } }
        }
        OP_STOREF => {
            Instr::StoreF { fs: freg(a)?, mem: MemRef::Base { base: reg(b)?, offset: imm as i32 } }
        }
        OP_LOADF_STREAM => Instr::LoadF { fd: freg(a)?, mem: MemRef::Stream(StreamId::new(imm)) },
        OP_STOREF_STREAM => Instr::StoreF { fs: freg(a)?, mem: MemRef::Stream(StreamId::new(imm)) },
        OP_BRANCH => Instr::Branch {
            cond: cond_from(a).ok_or_else(|| err("bad condition"))?,
            rs1: reg(b)?,
            rs2: reg(c)?,
            target: imm,
        },
        OP_JUMP => Instr::Jump { target: imm },
        OP_JAL => Instr::Jal { rd: reg(a)?, target: imm },
        OP_JR => Instr::Jr { rs: reg(a)? },
        OP_NOP => Instr::Nop,
        OP_HALT => Instr::Halt,
        _ => return Err(err("unknown opcode")),
    })
}

/// Encodes a whole instruction sequence (wide immediates expand to two
/// words).
pub fn encode_program(instrs: &[Instr]) -> Vec<u64> {
    let mut out = Vec::with_capacity(instrs.len());
    for i in instrs {
        let (w, trailing) = encode_instr(i);
        out.push(w);
        if let Some(t) = trailing {
            out.push(t);
        }
    }
    out
}

/// Decodes a word stream produced by [`encode_program`].
///
/// # Errors
///
/// Returns the first [`DecodeError`] encountered.
pub fn decode_program(words: &[u64]) -> Result<Vec<Instr>, DecodeError> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < words.len() {
        let word = words[i];
        let (op, ..) = fields(word);
        let needs_trailing = op == OP_LI_WIDE || op == OP_FLI;
        let trailing = if needs_trailing {
            i += 1;
            Some(*words.get(i).ok_or(DecodeError { word, reason: "truncated stream" })?)
        } else {
            None
        };
        out.push(decode_instr(word, trailing)?);
        i += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::reg::Reg;

    #[test]
    fn round_trip_simple_ops() {
        let cases = [
            Instr::Alu { op: AluOp::Xor, rd: Reg::new(1), rs1: Reg::new(2), rs2: Reg::new(3) },
            Instr::AluImm { op: AluOp::Sra, rd: Reg::new(4), rs1: Reg::new(5), imm: -12 },
            Instr::Li { rd: Reg::new(6), imm: -1 },
            Instr::Branch { cond: Cond::Le, rs1: Reg::new(7), rs2: Reg::new(8), target: 9999 },
            Instr::Halt,
        ];
        for i in cases {
            let (w, t) = encode_instr(&i);
            assert_eq!(decode_instr(w, t).unwrap(), i, "{i:?}");
        }
    }

    #[test]
    fn wide_immediates_take_two_words() {
        let big = Instr::Li { rd: Reg::new(1), imm: 0x1234_5678_9abc };
        let (w, t) = encode_instr(&big);
        assert!(t.is_some());
        assert_eq!(decode_instr(w, t).unwrap(), big);
        let fp = Instr::FLi { fd: FReg::new(2), imm: -0.125 };
        let (w, t) = encode_instr(&fp);
        assert_eq!(decode_instr(w, t).unwrap(), fp);
    }

    #[test]
    fn whole_kernel_round_trips() {
        // A real program with every addressing mode.
        let mut b = ProgramBuilder::new("rt");
        let id = b.stream(crate::program::StreamDesc { base: 0x100, stride: 4, length: 9 });
        b.li(Reg::new(1), 1 << 40);
        b.fli(FReg::new(0), 3.5);
        b.ld_stream(Reg::new(2), id, MemWidth::B4);
        b.sd(Reg::new(2), Reg::new(1), -16);
        let l = b.label();
        b.bind(l);
        b.bne(Reg::new(1), Reg::new(2), l);
        b.halt();
        let p = b.build();
        let words = encode_program(p.instrs());
        assert!(words.len() > p.len()); // wide imms expanded
        let back = decode_program(&words).unwrap();
        assert_eq!(back, p.instrs());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_instr(u64::MAX, None).is_err());
        assert!(decode_instr(pack(OP_ALU, 99, 1, 2, 3), None).is_err());
        assert!(decode_instr(pack(OP_LI_WIDE, 1, 0, 0, 0), None).is_err());
        assert!(decode_program(&[pack(OP_FLI, 1, 0, 0, 0)]).is_err()); // truncated
        let e = decode_instr(u64::MAX, None).unwrap_err();
        assert!(e.to_string().contains("cannot decode"));
    }
}
