//! Linked programs: instructions, initial data image, stream descriptors.

use std::fmt;

use crate::instr::Instr;

/// Bytes occupied by one instruction in the instruction address space, as
/// seen by the I-cache.
pub const INSTR_BYTES: u64 = 8;

/// Identifier of a stride stream owned by a [`Program`].
///
/// Every static load/store emitted by the clone synthesizer references its own
/// stream, realizing the paper's "each static memory access instruction is one
/// stream of accesses" model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId(u32);

impl StreamId {
    /// Creates a stream id from a raw index.
    #[inline]
    pub fn new(index: u32) -> StreamId {
        StreamId(index)
    }

    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Descriptor of an arithmetic-progression access stream.
///
/// The `k`-th access of the stream touches
/// `base + (k mod length) * stride` bytes; after `length` accesses the walk
/// wraps to the start, bounding the data footprint (paper §3.2 step 11).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StreamDesc {
    /// First byte address of the stream.
    pub base: u64,
    /// Signed byte stride between consecutive accesses.
    pub stride: i64,
    /// Number of accesses before the walk resets (must be ≥ 1).
    pub length: u32,
}

impl StreamDesc {
    /// Effective address of the `k`-th dynamic access of this stream.
    ///
    /// # Example
    ///
    /// ```
    /// use perfclone_isa::StreamDesc;
    /// let s = StreamDesc { base: 0x1000, stride: 16, length: 4 };
    /// assert_eq!(s.address(0), 0x1000);
    /// assert_eq!(s.address(3), 0x1030);
    /// assert_eq!(s.address(4), 0x1000); // wrapped
    /// ```
    #[inline]
    pub fn address(&self, k: u64) -> u64 {
        let pos = (k % u64::from(self.length.max(1))) as i64;
        (self.base as i64).wrapping_add(pos.wrapping_mul(self.stride)) as u64
    }

    /// The byte extent touched by one full walk of the stream
    /// (`|stride| * (length - 1) + 1` start bytes).
    pub fn footprint_bytes(&self) -> u64 {
        self.stride.unsigned_abs() * u64::from(self.length.saturating_sub(1)) + 1
    }
}

/// An initialized data segment in the program's initial memory image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataSeg {
    /// First byte address.
    pub addr: u64,
    /// Initial contents.
    pub bytes: Vec<u8>,
}

/// A fully linked program: code, entry point, initial data, stream table.
///
/// Built with [`ProgramBuilder`](crate::ProgramBuilder); executed by
/// `perfclone-sim`.
#[derive(Clone, Debug)]
pub struct Program {
    name: String,
    instrs: Vec<Instr>,
    entry: u32,
    data: Vec<DataSeg>,
    streams: Vec<StreamDesc>,
}

impl Program {
    pub(crate) fn from_parts(
        name: String,
        instrs: Vec<Instr>,
        entry: u32,
        data: Vec<DataSeg>,
        streams: Vec<StreamDesc>,
    ) -> Program {
        Program { name, instrs, entry, data, streams }
    }

    /// The program's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction sequence; program counters index into this slice.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Fetches the instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is outside the program.
    #[inline]
    pub fn fetch(&self, pc: u32) -> Instr {
        self.instrs[pc as usize]
    }

    /// The entry program counter.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The initialized data segments.
    pub fn data(&self) -> &[DataSeg] {
        &self.data
    }

    /// The stream descriptor table referenced by `MemRef::Stream` operands.
    pub fn streams(&self) -> &[StreamDesc] {
        &self.streams
    }

    /// Looks up a stream descriptor.
    ///
    /// # Panics
    ///
    /// Panics if the id is not in the table.
    #[inline]
    pub fn stream(&self, id: StreamId) -> StreamDesc {
        self.streams[id.index() as usize]
    }

    /// Byte address of the instruction at `pc` in the I-cache address space.
    #[inline]
    pub fn instr_addr(pc: u32) -> u64 {
        u64::from(pc) * INSTR_BYTES
    }

    /// Replaces the instruction at `pc` — the back-patching hook program
    /// generators use to fix up values (e.g. loop trip counts) only known
    /// after layout.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is outside the program.
    pub fn patch_instr(&mut self, pc: u32, instr: Instr) {
        self.instrs[pc as usize] = instr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;

    #[test]
    fn stream_negative_stride() {
        let s = StreamDesc { base: 0x1000, stride: -8, length: 3 };
        assert_eq!(s.address(0), 0x1000);
        assert_eq!(s.address(1), 0xff8);
        assert_eq!(s.address(2), 0xff0);
        assert_eq!(s.address(3), 0x1000);
        assert_eq!(s.footprint_bytes(), 17);
    }

    #[test]
    fn stream_zero_stride() {
        let s = StreamDesc { base: 0x40, stride: 0, length: 1 };
        for k in 0..5 {
            assert_eq!(s.address(k), 0x40);
        }
        assert_eq!(s.footprint_bytes(), 1);
    }

    #[test]
    fn program_accessors() {
        let p = Program::from_parts(
            "t".into(),
            vec![Instr::Nop, Instr::Halt],
            0,
            vec![DataSeg { addr: 16, bytes: vec![1, 2] }],
            vec![StreamDesc { base: 0, stride: 4, length: 2 }],
        );
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.fetch(1), Instr::Halt);
        assert_eq!(p.data().len(), 1);
        assert_eq!(p.stream(StreamId::new(0)).stride, 4);
        assert_eq!(Program::instr_addr(3), 24);
    }
}
