//! The instruction set.

use std::fmt;

use crate::program::StreamId;
use crate::reg::{FReg, Reg};

/// Integer ALU operation selector for [`Instr::Alu`] / [`Instr::AluImm`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Two's-complement addition.
    Add,
    /// Two's-complement subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (shift amount taken modulo 64).
    Sll,
    /// Logical shift right (shift amount taken modulo 64).
    Srl,
    /// Arithmetic shift right (shift amount taken modulo 64).
    Sra,
    /// Set-if-less-than, signed: `rd = (rs1 < rs2) as i64`.
    Slt,
    /// Set-if-less-than, unsigned.
    Sltu,
}

impl AluOp {
    /// Returns the assembly mnemonic for this operation.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Floating-point operation selector for [`Instr::Fp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FpOp {
    /// IEEE-754 double addition.
    Add,
    /// IEEE-754 double subtraction.
    Sub,
    /// IEEE-754 double multiplication.
    Mul,
    /// IEEE-754 double division.
    Div,
    /// Square root of the first source (second source ignored).
    Sqrt,
    /// Minimum of the two sources.
    Min,
    /// Maximum of the two sources.
    Max,
}

impl FpOp {
    /// Returns the assembly mnemonic for this operation.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpOp::Add => "fadd",
            FpOp::Sub => "fsub",
            FpOp::Mul => "fmul",
            FpOp::Div => "fdiv",
            FpOp::Sqrt => "fsqrt",
            FpOp::Min => "fmin",
            FpOp::Max => "fmax",
        }
    }
}

impl fmt::Display for FpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Branch condition codes, evaluated over two signed integer registers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Taken when `rs1 == rs2`.
    Eq,
    /// Taken when `rs1 != rs2`.
    Ne,
    /// Taken when `rs1 < rs2` (signed).
    Lt,
    /// Taken when `rs1 >= rs2` (signed).
    Ge,
    /// Taken when `rs1 <= rs2` (signed).
    Le,
    /// Taken when `rs1 > rs2` (signed).
    Gt,
}

impl Cond {
    /// Evaluates the condition over two signed operands.
    #[inline]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
        }
    }

    /// Returns the assembly mnemonic (`beq`, `bne`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "beq",
            Cond::Ne => "bne",
            Cond::Lt => "blt",
            Cond::Ge => "bge",
            Cond::Le => "ble",
            Cond::Gt => "bgt",
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Memory access width in bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// One byte (zero-extended on load).
    B1,
    /// Four bytes (sign-extended on load).
    B4,
    /// Eight bytes.
    B8,
}

impl MemWidth {
    /// Returns the access size in bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::B1 => 1,
            MemWidth::B4 => 4,
            MemWidth::B8 => 8,
        }
    }
}

/// The addressing mode of a load or store.
///
/// `Base` is conventional base-plus-displacement addressing used by the
/// hand-written kernels. `Stream` is the auto-stride (post-increment with
/// wrap) mode used by the clone synthesizer: the effective address walks a
/// fixed-stride, fixed-length stream described by a [`StreamDesc`] in the
/// owning [`Program`] — the executable realization of the paper's
/// per-static-instruction stream model (§3.1.4).
///
/// [`StreamDesc`]: crate::StreamDesc
/// [`Program`]: crate::Program
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemRef {
    /// `[base + offset]`.
    Base {
        /// Base address register.
        base: Reg,
        /// Signed byte displacement.
        offset: i32,
    },
    /// Next address of the program-owned stride stream `id`.
    Stream(StreamId),
}

/// One machine instruction.
///
/// Program counters are instruction indices; every instruction occupies
/// [`INSTR_BYTES`](crate::INSTR_BYTES) bytes in the instruction address space
/// seen by the I-cache.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Instr {
    /// Three-register integer ALU operation: `rd = op(rs1, rs2)`.
    Alu { op: AluOp, rd: Reg, rs1: Reg, rs2: Reg },
    /// Register-immediate integer ALU operation: `rd = op(rs1, imm)`.
    AluImm { op: AluOp, rd: Reg, rs1: Reg, imm: i32 },
    /// Load immediate: `rd = imm` (classes as integer ALU).
    Li { rd: Reg, imm: i64 },
    /// Integer multiply: `rd = rs1 * rs2` (wrapping).
    Mul { rd: Reg, rs1: Reg, rs2: Reg },
    /// Integer divide: `rd = rs1 / rs2`; division by zero yields 0.
    Div { rd: Reg, rs1: Reg, rs2: Reg },
    /// Integer remainder: `rd = rs1 % rs2`; remainder by zero yields `rs1`.
    Rem { rd: Reg, rs1: Reg, rs2: Reg },
    /// Floating-point operation: `fd = op(fs1, fs2)`.
    Fp { op: FpOp, fd: FReg, fs1: FReg, fs2: FReg },
    /// Load FP immediate: `fd = imm` (classes as FP ALU).
    FLi { fd: FReg, imm: f64 },
    /// Convert integer to double: `fd = rs as f64` (classes as FP ALU).
    CvtIf { fd: FReg, rs: Reg },
    /// Convert double to integer (truncating): `rd = fs as i64` (FP ALU).
    CvtFi { rd: Reg, fs: FReg },
    /// FP compare: `rd = (fs1 < fs2) as i64` (classes as FP ALU).
    FCmpLt { rd: Reg, fs1: FReg, fs2: FReg },
    /// Integer load.
    Load { rd: Reg, mem: MemRef, width: MemWidth },
    /// Integer store.
    Store { rs: Reg, mem: MemRef, width: MemWidth },
    /// FP load (width is always 8 bytes).
    LoadF { fd: FReg, mem: MemRef },
    /// FP store (width is always 8 bytes).
    StoreF { fs: FReg, mem: MemRef },
    /// Conditional branch to the absolute instruction index `target`.
    Branch { cond: Cond, rs1: Reg, rs2: Reg, target: u32 },
    /// Unconditional jump to the absolute instruction index `target`.
    Jump { target: u32 },
    /// Jump and link: `rd = pc + 1`, then jump to `target`.
    Jal { rd: Reg, target: u32 },
    /// Indirect jump to the instruction index held in `rs`.
    Jr { rs: Reg },
    /// No operation (classes as integer ALU).
    Nop,
    /// Stops the program.
    Halt,
}

/// Instruction classes used for the paper's instruction-mix attribute and for
/// functional-unit assignment in the timing simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InstrClass {
    /// Integer arithmetic/logic (including `li` and `nop`).
    IntAlu,
    /// Integer multiplication.
    IntMul,
    /// Integer division/remainder.
    IntDiv,
    /// FP add/sub/compare/convert.
    FpAlu,
    /// FP multiplication.
    FpMul,
    /// FP division/square-root.
    FpDiv,
    /// Memory load (integer or FP).
    Load,
    /// Memory store (integer or FP).
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional control transfer (`jump`, `jal`, `jr`, `halt`).
    Jump,
}

impl InstrClass {
    /// All classes, in display order.
    pub const ALL: [InstrClass; 10] = [
        InstrClass::IntAlu,
        InstrClass::IntMul,
        InstrClass::IntDiv,
        InstrClass::FpAlu,
        InstrClass::FpMul,
        InstrClass::FpDiv,
        InstrClass::Load,
        InstrClass::Store,
        InstrClass::Branch,
        InstrClass::Jump,
    ];

    /// A short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            InstrClass::IntAlu => "int_alu",
            InstrClass::IntMul => "int_mul",
            InstrClass::IntDiv => "int_div",
            InstrClass::FpAlu => "fp_alu",
            InstrClass::FpMul => "fp_mul",
            InstrClass::FpDiv => "fp_div",
            InstrClass::Load => "load",
            InstrClass::Store => "store",
            InstrClass::Branch => "branch",
            InstrClass::Jump => "jump",
        }
    }

    /// Index of this class within [`InstrClass::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for InstrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A reference to an architectural register, integer or floating-point.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RegRef {
    /// An integer register.
    Int(Reg),
    /// A floating-point register.
    Fp(FReg),
}

impl RegRef {
    /// A dense index in `0..64` (ints first), for flat lookup tables.
    #[inline]
    pub fn flat_index(self) -> usize {
        match self {
            RegRef::Int(r) => r.index() as usize,
            RegRef::Fp(f) => 32 + f.index() as usize,
        }
    }
}

impl fmt::Display for RegRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegRef::Int(r) => write!(f, "{r}"),
            RegRef::Fp(r) => write!(f, "{r}"),
        }
    }
}

/// A fixed-capacity (max 3) list of register references, returned by
/// [`Instr::defs`] and [`Instr::uses`] without heap allocation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OperandList {
    items: [Option<RegRef>; 3],
    len: u8,
}

impl OperandList {
    /// Creates an empty list.
    pub fn new() -> OperandList {
        OperandList::default()
    }

    fn push(&mut self, r: RegRef) {
        // The zero register is never a real dependence.
        if matches!(r, RegRef::Int(reg) if reg.is_zero()) {
            return;
        }
        self.items[self.len as usize] = Some(r);
        self.len += 1;
    }

    /// Number of operands in the list.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Returns `true` when the list holds no operands.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the operands.
    pub fn iter(&self) -> impl Iterator<Item = RegRef> + '_ {
        self.items.iter().take(self.len as usize).filter_map(|o| *o)
    }
}

impl IntoIterator for OperandList {
    type Item = RegRef;
    type IntoIter = std::iter::Flatten<std::array::IntoIter<Option<RegRef>, 3>>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter().flatten()
    }
}

impl Instr {
    /// Returns the instruction's class for mix accounting and FU assignment.
    pub fn class(&self) -> InstrClass {
        match self {
            Instr::Alu { .. } | Instr::AluImm { .. } | Instr::Li { .. } | Instr::Nop => {
                InstrClass::IntAlu
            }
            Instr::Mul { .. } => InstrClass::IntMul,
            Instr::Div { .. } | Instr::Rem { .. } => InstrClass::IntDiv,
            Instr::Fp { op, .. } => match op {
                FpOp::Mul => InstrClass::FpMul,
                FpOp::Div | FpOp::Sqrt => InstrClass::FpDiv,
                _ => InstrClass::FpAlu,
            },
            Instr::FLi { .. }
            | Instr::CvtIf { .. }
            | Instr::CvtFi { .. }
            | Instr::FCmpLt { .. } => InstrClass::FpAlu,
            Instr::Load { .. } | Instr::LoadF { .. } => InstrClass::Load,
            Instr::Store { .. } | Instr::StoreF { .. } => InstrClass::Store,
            Instr::Branch { .. } => InstrClass::Branch,
            Instr::Jump { .. } | Instr::Jal { .. } | Instr::Jr { .. } | Instr::Halt => {
                InstrClass::Jump
            }
        }
    }

    /// Registers written by this instruction (the hardwired zero register is
    /// never reported).
    pub fn defs(&self) -> OperandList {
        let mut out = OperandList::new();
        match *self {
            Instr::Alu { rd, .. }
            | Instr::AluImm { rd, .. }
            | Instr::Li { rd, .. }
            | Instr::Mul { rd, .. }
            | Instr::Div { rd, .. }
            | Instr::Rem { rd, .. }
            | Instr::CvtFi { rd, .. }
            | Instr::FCmpLt { rd, .. }
            | Instr::Load { rd, .. }
            | Instr::Jal { rd, .. } => out.push(RegRef::Int(rd)),
            Instr::Fp { fd, .. } | Instr::FLi { fd, .. } | Instr::CvtIf { fd, .. } => {
                out.push(RegRef::Fp(fd))
            }
            Instr::LoadF { fd, .. } => out.push(RegRef::Fp(fd)),
            Instr::Store { .. }
            | Instr::StoreF { .. }
            | Instr::Branch { .. }
            | Instr::Jump { .. }
            | Instr::Jr { .. }
            | Instr::Nop
            | Instr::Halt => {}
        }
        out
    }

    /// Registers read by this instruction (the hardwired zero register is
    /// never reported). Address base registers of loads/stores are included.
    pub fn uses(&self) -> OperandList {
        let mut out = OperandList::new();
        let push_mem = |out: &mut OperandList, mem: &MemRef| {
            if let MemRef::Base { base, .. } = mem {
                out.push(RegRef::Int(*base));
            }
        };
        match self {
            Instr::Alu { rs1, rs2, .. } => {
                out.push(RegRef::Int(*rs1));
                out.push(RegRef::Int(*rs2));
            }
            Instr::AluImm { rs1, .. } => out.push(RegRef::Int(*rs1)),
            Instr::Li { .. } | Instr::FLi { .. } | Instr::Nop | Instr::Halt => {}
            Instr::Mul { rs1, rs2, .. }
            | Instr::Div { rs1, rs2, .. }
            | Instr::Rem { rs1, rs2, .. } => {
                out.push(RegRef::Int(*rs1));
                out.push(RegRef::Int(*rs2));
            }
            Instr::Fp { op, fs1, fs2, .. } => {
                out.push(RegRef::Fp(*fs1));
                if !matches!(op, FpOp::Sqrt) {
                    out.push(RegRef::Fp(*fs2));
                }
            }
            Instr::CvtIf { rs, .. } => out.push(RegRef::Int(*rs)),
            Instr::CvtFi { fs, .. } => out.push(RegRef::Fp(*fs)),
            Instr::FCmpLt { fs1, fs2, .. } => {
                out.push(RegRef::Fp(*fs1));
                out.push(RegRef::Fp(*fs2));
            }
            Instr::Load { mem, .. } => push_mem(&mut out, mem),
            Instr::LoadF { mem, .. } => push_mem(&mut out, mem),
            Instr::Store { rs, mem, .. } => {
                out.push(RegRef::Int(*rs));
                push_mem(&mut out, mem);
            }
            Instr::StoreF { fs, mem } => {
                out.push(RegRef::Fp(*fs));
                push_mem(&mut out, mem);
            }
            Instr::Branch { rs1, rs2, .. } => {
                out.push(RegRef::Int(*rs1));
                out.push(RegRef::Int(*rs2));
            }
            Instr::Jump { .. } | Instr::Jal { .. } => {}
            Instr::Jr { rs } => out.push(RegRef::Int(*rs)),
        }
        out
    }

    /// Returns the memory reference for loads/stores, `None` otherwise.
    pub fn mem_ref(&self) -> Option<(MemRef, MemWidth, bool)> {
        match *self {
            Instr::Load { mem, width, .. } => Some((mem, width, false)),
            Instr::LoadF { mem, .. } => Some((mem, MemWidth::B8, false)),
            Instr::Store { mem, width, .. } => Some((mem, width, true)),
            Instr::StoreF { mem, .. } => Some((mem, MemWidth::B8, true)),
            _ => None,
        }
    }

    /// Returns `true` for instructions that may redirect control flow
    /// (conditional branches and all jumps, but not `halt`).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Branch { .. } | Instr::Jump { .. } | Instr::Jal { .. } | Instr::Jr { .. }
        )
    }

    /// Returns `true` for conditional branches.
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Instr::Branch { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn classes() {
        assert_eq!(Instr::Nop.class(), InstrClass::IntAlu);
        assert_eq!(Instr::Mul { rd: r(1), rs1: r(2), rs2: r(3) }.class(), InstrClass::IntMul);
        assert_eq!(
            Instr::Fp { op: FpOp::Mul, fd: FReg::new(0), fs1: FReg::new(1), fs2: FReg::new(2) }
                .class(),
            InstrClass::FpMul
        );
        assert_eq!(
            Instr::Fp { op: FpOp::Sqrt, fd: FReg::new(0), fs1: FReg::new(1), fs2: FReg::new(1) }
                .class(),
            InstrClass::FpDiv
        );
        assert_eq!(Instr::Halt.class(), InstrClass::Jump);
    }

    #[test]
    fn class_index_matches_all() {
        for (i, c) in InstrClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn defs_and_uses() {
        let i = Instr::Alu { op: AluOp::Add, rd: r(1), rs1: r(2), rs2: r(3) };
        assert_eq!(i.defs().iter().collect::<Vec<_>>(), vec![RegRef::Int(r(1))]);
        assert_eq!(i.uses().iter().collect::<Vec<_>>(), vec![RegRef::Int(r(2)), RegRef::Int(r(3))]);
    }

    #[test]
    fn zero_register_is_invisible() {
        let i = Instr::Alu { op: AluOp::Add, rd: Reg::ZERO, rs1: Reg::ZERO, rs2: r(3) };
        assert!(i.defs().is_empty());
        assert_eq!(i.uses().len(), 1);
    }

    #[test]
    fn store_uses_value_and_base() {
        let i = Instr::Store {
            rs: r(4),
            mem: MemRef::Base { base: r(5), offset: 8 },
            width: MemWidth::B8,
        };
        assert!(i.defs().is_empty());
        assert_eq!(i.uses().len(), 2);
        let (mem, width, is_store) = i.mem_ref().unwrap();
        assert_eq!(width.bytes(), 8);
        assert!(is_store);
        assert_eq!(mem, MemRef::Base { base: r(5), offset: 8 });
    }

    #[test]
    fn stream_memref_has_no_register_uses() {
        let i =
            Instr::Load { rd: r(1), mem: MemRef::Stream(StreamId::new(0)), width: MemWidth::B4 };
        assert!(i.uses().is_empty());
    }

    #[test]
    fn cond_eval() {
        assert!(Cond::Eq.eval(3, 3));
        assert!(Cond::Ne.eval(3, 4));
        assert!(Cond::Lt.eval(-1, 0));
        assert!(Cond::Ge.eval(0, 0));
        assert!(Cond::Le.eval(-5, -5));
        assert!(Cond::Gt.eval(7, 6));
        assert!(!Cond::Gt.eval(6, 7));
    }

    #[test]
    fn sqrt_uses_single_source() {
        let i =
            Instr::Fp { op: FpOp::Sqrt, fd: FReg::new(0), fs1: FReg::new(1), fs2: FReg::new(2) };
        assert_eq!(i.uses().len(), 1);
    }

    #[test]
    fn flat_index_is_dense() {
        assert_eq!(RegRef::Int(Reg::new(0)).flat_index(), 0);
        assert_eq!(RegRef::Int(Reg::new(31)).flat_index(), 31);
        assert_eq!(RegRef::Fp(FReg::new(0)).flat_index(), 32);
        assert_eq!(RegRef::Fp(FReg::new(31)).flat_index(), 63);
    }
}
