//! Architectural register names.

use std::fmt;

/// Number of integer architectural registers.
pub const NUM_INT_REGS: usize = 32;
/// Number of floating-point architectural registers.
pub const NUM_FP_REGS: usize = 32;

/// An integer architectural register, `r0`–`r31`.
///
/// `r0` is hardwired to zero: writes to it are discarded and reads always
/// return 0, as in MIPS/RISC-V.
///
/// # Example
///
/// ```
/// use perfclone_isa::Reg;
/// let r5 = Reg::new(5);
/// assert_eq!(r5.index(), 5);
/// assert_eq!(r5.to_string(), "r5");
/// assert!(Reg::ZERO.is_zero());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired zero register `r0`.
    pub const ZERO: Reg = Reg(0);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[inline]
    pub const fn new(index: u8) -> Reg {
        assert!((index as usize) < NUM_INT_REGS, "integer register index out of range");
        Reg(index)
    }

    /// Returns the register index in `0..32`.
    #[inline]
    pub fn index(self) -> u8 {
        self.0
    }

    /// Returns `true` for the hardwired zero register.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over all 32 integer registers, `r0` first.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_INT_REGS as u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A floating-point architectural register, `f0`–`f31`.
///
/// Unlike [`Reg`], `f0` is an ordinary register.
///
/// # Example
///
/// ```
/// use perfclone_isa::FReg;
/// assert_eq!(FReg::new(7).to_string(), "f7");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(u8);

impl FReg {
    /// Creates a floating-point register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[inline]
    pub const fn new(index: u8) -> FReg {
        assert!((index as usize) < NUM_FP_REGS, "fp register index out of range");
        FReg(index)
    }

    /// Returns the register index in `0..32`.
    #[inline]
    pub fn index(self) -> u8 {
        self.0
    }

    /// Iterates over all 32 floating-point registers, `f0` first.
    pub fn all() -> impl Iterator<Item = FReg> {
        (0..NUM_FP_REGS as u8).map(FReg)
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::new(1).is_zero());
        assert_eq!(Reg::ZERO, Reg::new(0));
    }

    #[test]
    fn display() {
        assert_eq!(Reg::new(31).to_string(), "r31");
        assert_eq!(FReg::new(0).to_string(), "f0");
    }

    #[test]
    fn all_yields_each_register_once() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), NUM_INT_REGS);
        assert_eq!(regs[0], Reg::ZERO);
        let fregs: Vec<FReg> = FReg::all().collect();
        assert_eq!(fregs.len(), NUM_FP_REGS);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = Reg::new(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fp_out_of_range_panics() {
        let _ = FReg::new(32);
    }
}
