//! # perfclone-bench
//!
//! Shared machinery for the bench targets that regenerate every table and
//! figure of the paper's evaluation (§5). Each `benches/*.rs` binary is a
//! plain `harness = false` main that builds the benchmark population,
//! clones it, runs the experiment, and prints the same rows/series the
//! paper reports.
//!
//! Environment knobs:
//!
//! * `PERFCLONE_SCALE` — `tiny` (fast smoke runs) or `small` (default; the
//!   paper-scale inputs, ~0.5-2 M dynamic instructions per kernel),
//! * `PERFCLONE_KERNELS` — comma-separated kernel names to restrict the
//!   population (default: all 23),
//! * `PERFCLONE_JOBS` — worker threads for the parallel experiment paths
//!   (default: all cores; results are identical at any thread count),
//! * `PERFCLONE_SEED` — root seed from which each kernel's synthesis seed
//!   is derived (default: the synthesizer's default seed),
//! * `PERFCLONE_REPORT` — destination for a machine-readable [`RunReport`]
//!   of the experiment (`-` = stdout); same schema as the CLI's `--report`.

use perfclone::{
    derive_cell_seed, run_timing_trace, Cloner, MachineConfig, SynthesisParams, TimingResult,
    WorkloadCache, WorkloadProfile,
};
use perfclone_isa::Program;
use perfclone_kernels::{catalog, Kernel, Scale};
use perfclone_obs::{Metric, RunReport};

/// One prepared benchmark: the original program, its profile, and its
/// synthesized clone.
pub struct PreparedBench {
    /// The kernel descriptor.
    pub kernel: &'static Kernel,
    /// The original ("proprietary") program.
    pub program: Program,
    /// The microarchitecture-independent profile.
    pub profile: WorkloadProfile,
    /// The synthetic benchmark clone.
    pub clone: Program,
}

/// Reads the input scale from `PERFCLONE_SCALE` (default: small).
pub fn scale_from_env() -> Scale {
    match std::env::var("PERFCLONE_SCALE").as_deref() {
        Ok("tiny") | Ok("Tiny") | Ok("TINY") => Scale::Tiny,
        _ => Scale::Small,
    }
}

/// Reads the worker-thread count from `PERFCLONE_JOBS` (default: the
/// machine's available parallelism).
pub fn jobs_from_env() -> usize {
    std::env::var("PERFCLONE_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Reads the experiments' root seed from `PERFCLONE_SEED` (default: the
/// synthesizer's default seed). Per-kernel seeds are derived from it.
pub fn root_seed_from_env() -> u64 {
    std::env::var("PERFCLONE_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(SynthesisParams::default().seed)
}

/// Makes `PERFCLONE_JOBS` the ambient parallelism for the experiment run.
/// Call once at the top of a bench `main`.
pub fn init_parallelism() {
    let _ = rayon::ThreadPoolBuilder::new().num_threads(jobs_from_env()).build_global();
}

/// The kernel population, optionally restricted via `PERFCLONE_KERNELS`.
pub fn kernels_from_env() -> Vec<&'static Kernel> {
    match std::env::var("PERFCLONE_KERNELS") {
        Ok(list) if !list.trim().is_empty() => {
            let wanted: Vec<&str> = list.split(',').map(str::trim).collect();
            catalog().iter().filter(|k| wanted.contains(&k.name())).collect()
        }
        _ => catalog().iter().collect(),
    }
}

/// The replay benches' shared configuration set: base, the five Table-3
/// design changes, and six further single-parameter variants — 12
/// configurations, the shape of a real design-space exploration.
pub fn design_sweep_configs() -> Vec<MachineConfig> {
    let base = perfclone::base_config();
    let mut configs = vec![base];
    configs.extend(perfclone::design_changes());
    configs.extend([
        MachineConfig { name: "4x-window", rob_size: 64, lsq_size: 32, ..base },
        MachineConfig { name: "slow-mem", mem_latency: 80, ..base },
        MachineConfig { name: "wide-bus", mem_bus_bytes: 16, ..base },
        MachineConfig { name: "2-mem-ports", mem_ports: 2, ..base },
        MachineConfig {
            name: "3x-width",
            fetch_width: 3,
            decode_width: 3,
            issue_width: 3,
            commit_width: 3,
            ..base
        },
        MachineConfig { name: "fast-l2", l2_latency: 2, ..base },
    ]);
    configs
}

/// The scale's lowercase label, for bench records and reports.
pub fn scale_label(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
    }
}

/// Synthesis parameters used by the experiments: clone dynamic length
/// matched to the original's.
pub fn experiment_params(profile_len: u64) -> SynthesisParams {
    SynthesisParams {
        target_dynamic: profile_len.clamp(100_000, 2_500_000),
        ..SynthesisParams::default()
    }
}

/// Builds, profiles, and clones one kernel.
pub fn prepare(
    kernel: &'static Kernel,
    scale: Scale,
    params_of: &dyn Fn(u64) -> SynthesisParams,
) -> PreparedBench {
    let program = kernel.build(scale).program;
    let profile =
        perfclone::profile_program(&program, u64::MAX).expect("bundled kernels profile cleanly");
    let params = params_of(profile.total_instrs);
    let clone = Cloner::with_params(params)
        .clone_program_from(&profile)
        .expect("bundled kernel profiles synthesize cleanly");
    PreparedBench { kernel, program, profile, clone }
}

/// Builds the whole population with the default experiment parameters,
/// printing progress to stderr.
pub fn prepare_all() -> Vec<PreparedBench> {
    let scale = scale_from_env();
    kernels_from_env()
        .into_iter()
        .map(|k| {
            eprintln!("  preparing {} ...", k.name());
            prepare(k, scale, &experiment_params)
        })
        .collect()
}

/// Parallel [`prepare_all`]: kernels fan over the ambient thread pool
/// (see [`init_parallelism`]), each profiled and synthesized with a seed
/// derived from the root seed and the kernel's name. Per-kernel seeds
/// depend only on the (root, kernel) cell, and results come back in
/// catalog order, so the population is identical at any thread count.
pub fn prepare_all_par() -> Vec<PreparedBench> {
    use rayon::prelude::*;
    let scale = scale_from_env();
    let root = root_seed_from_env();
    let kernels = kernels_from_env();
    kernels
        .par_iter()
        .map(|k| {
            eprintln!("  preparing {} ...", k.name());
            prepare(k, scale, &|profile_len| SynthesisParams {
                seed: derive_cell_seed(root, k.name(), 0),
                ..experiment_params(profile_len)
            })
        })
        .collect()
}

/// Times every (benchmark × configuration) cell of a two-configuration
/// study in parallel. For each prepared benchmark the four cells are
/// `[real@base, real@alt, clone@base, clone@alt]`; the flat cell list
/// fans over the ambient thread pool and results reassemble in benchmark
/// order, bit-identical at any thread count. Each program's retired
/// stream is captured once as a packed trace through a shared
/// [`WorkloadCache`] and replayed by both configurations' cells
/// (re-interpreting instead when a capture would exceed
/// `PERFCLONE_TRACE_CAP` — same results either way).
pub fn grid_timing_par(
    benches: &[PreparedBench],
    base: &MachineConfig,
    alt: &MachineConfig,
) -> Vec<[TimingResult; 4]> {
    use rayon::prelude::*;
    let cache = WorkloadCache::new();
    let cells: Vec<(usize, usize)> =
        (0..benches.len()).flat_map(|b| (0..4).map(move |c| (b, c))).collect();
    let results: Vec<TimingResult> = cells
        .par_iter()
        .map(|&(b, c)| {
            let bench = &benches[b];
            let name = bench.kernel.name();
            let (key, program, config) = match c {
                0 => (name.to_string(), &bench.program, base),
                1 => (name.to_string(), &bench.program, alt),
                2 => (format!("{name}.clone"), &bench.clone, base),
                _ => (format!("{name}.clone"), &bench.clone, alt),
            };
            run_timing_trace(&key, program, config, u64::MAX, &cache)
                .expect("bundled kernels run cleanly")
        })
        .collect();
    results
        .chunks_exact(4)
        .map(|c| [c[0].clone(), c[1].clone(), c[2].clone(), c[3].clone()])
        .collect()
}

/// Emits this experiment's [`RunReport`] when `PERFCLONE_REPORT` names a
/// destination (`-` = stdout): the current telemetry snapshot plus the
/// experiment's headline numbers as metric rows. Benches and the CLI
/// share one schema, so the same tooling consumes both. A missing or
/// empty variable is a no-op; write failures are reported to stderr
/// rather than failing the experiment.
pub fn emit_run_report(command: &str, workload: &str, metrics: &[(String, f64)]) {
    let dest = match std::env::var("PERFCLONE_REPORT") {
        Ok(d) if !d.trim().is_empty() => d,
        _ => return,
    };
    let mut report = RunReport::from_snapshot(command, workload, perfclone_obs::snapshot());
    report.metrics =
        metrics.iter().map(|(name, value)| Metric { name: name.clone(), value: *value }).collect();
    match report.to_json() {
        Ok(json) if dest == "-" => println!("{json}"),
        Ok(json) => match std::fs::write(&dest, &json) {
            Ok(()) => eprintln!("run report -> {dest}"),
            Err(e) => eprintln!("perfclone-bench: cannot write {dest}: {e}"),
        },
        Err(e) => eprintln!("perfclone-bench: cannot serialize run report: {e}"),
    }
}

/// Geometric-free arithmetic mean helper.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        // Not setting the variables yields the full population at Small.
        std::env::remove_var("PERFCLONE_KERNELS");
        assert_eq!(kernels_from_env().len(), 23);
    }

    #[test]
    fn experiment_params_clamp() {
        assert_eq!(experiment_params(10).target_dynamic, 100_000);
        assert_eq!(experiment_params(10_000_000).target_dynamic, 2_500_000);
        assert_eq!(experiment_params(500_000).target_dynamic, 500_000);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn parallel_knob_defaults() {
        std::env::remove_var("PERFCLONE_JOBS");
        std::env::remove_var("PERFCLONE_SEED");
        assert!(jobs_from_env() >= 1);
        assert_eq!(root_seed_from_env(), SynthesisParams::default().seed);
    }

    #[test]
    fn seeded_prepare_is_deterministic() {
        let k = catalog().iter().find(|k| k.name() == "crc32").expect("crc32 exists");
        let params_of = |len: u64| SynthesisParams {
            seed: derive_cell_seed(7, "crc32", 0),
            ..experiment_params(len)
        };
        let a = prepare(k, Scale::Tiny, &params_of);
        let b = prepare(k, Scale::Tiny, &params_of);
        assert_eq!(format!("{:?}", a.clone), format!("{:?}", b.clone));
    }
}
