//! # perfclone-bench
//!
//! Shared machinery for the bench targets that regenerate every table and
//! figure of the paper's evaluation (§5). Each `benches/*.rs` binary is a
//! plain `harness = false` main that builds the benchmark population,
//! clones it, runs the experiment, and prints the same rows/series the
//! paper reports.
//!
//! Environment knobs:
//!
//! * `PERFCLONE_SCALE` — `tiny` (fast smoke runs) or `small` (default; the
//!   paper-scale inputs, ~0.5-2 M dynamic instructions per kernel),
//! * `PERFCLONE_KERNELS` — comma-separated kernel names to restrict the
//!   population (default: all 23).

use perfclone::{Cloner, SynthesisParams, WorkloadProfile};
use perfclone_isa::Program;
use perfclone_kernels::{catalog, Kernel, Scale};

/// One prepared benchmark: the original program, its profile, and its
/// synthesized clone.
pub struct PreparedBench {
    /// The kernel descriptor.
    pub kernel: &'static Kernel,
    /// The original ("proprietary") program.
    pub program: Program,
    /// The microarchitecture-independent profile.
    pub profile: WorkloadProfile,
    /// The synthetic benchmark clone.
    pub clone: Program,
}

/// Reads the input scale from `PERFCLONE_SCALE` (default: small).
pub fn scale_from_env() -> Scale {
    match std::env::var("PERFCLONE_SCALE").as_deref() {
        Ok("tiny") | Ok("Tiny") | Ok("TINY") => Scale::Tiny,
        _ => Scale::Small,
    }
}

/// The kernel population, optionally restricted via `PERFCLONE_KERNELS`.
pub fn kernels_from_env() -> Vec<&'static Kernel> {
    match std::env::var("PERFCLONE_KERNELS") {
        Ok(list) if !list.trim().is_empty() => {
            let wanted: Vec<&str> = list.split(',').map(str::trim).collect();
            catalog().iter().filter(|k| wanted.contains(&k.name())).collect()
        }
        _ => catalog().iter().collect(),
    }
}

/// Synthesis parameters used by the experiments: clone dynamic length
/// matched to the original's.
pub fn experiment_params(profile_len: u64) -> SynthesisParams {
    SynthesisParams {
        target_dynamic: profile_len.clamp(100_000, 2_500_000),
        ..SynthesisParams::default()
    }
}

/// Builds, profiles, and clones one kernel.
pub fn prepare(kernel: &'static Kernel, scale: Scale, params_of: &dyn Fn(u64) -> SynthesisParams)
    -> PreparedBench
{
    let program = kernel.build(scale).program;
    let profile = perfclone::profile_program(&program, u64::MAX);
    let params = params_of(profile.total_instrs);
    let clone = Cloner::with_params(params).clone_program_from(&profile);
    PreparedBench { kernel, program, profile, clone }
}

/// Builds the whole population with the default experiment parameters,
/// printing progress to stderr.
pub fn prepare_all() -> Vec<PreparedBench> {
    let scale = scale_from_env();
    kernels_from_env()
        .into_iter()
        .map(|k| {
            eprintln!("  preparing {} ...", k.name());
            prepare(k, scale, &experiment_params)
        })
        .collect()
}

/// Geometric-free arithmetic mean helper.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        // Not setting the variables yields the full population at Small.
        std::env::remove_var("PERFCLONE_KERNELS");
        assert_eq!(kernels_from_env().len(), 23);
    }

    #[test]
    fn experiment_params_clamp() {
        assert_eq!(experiment_params(10).target_dynamic, 100_000);
        assert_eq!(experiment_params(10_000_000).target_dynamic, 2_500_000);
        assert_eq!(experiment_params(500_000).target_dynamic, 500_000);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
