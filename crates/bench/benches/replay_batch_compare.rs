//! Headline benchmark for the batched SoA replay front end: a 24-cell
//! design sweep (2 programs × 12 configurations) evaluated by the
//! record-at-a-time oracle (`Pipeline::run` pulling `DynInstr`s from
//! `PackedTrace::replay`) versus the batched decoder (`Pipeline::
//! run_batched` draining SoA chunks from `replay_batched` through the
//! interned `InstrMetaTable`). Every cell's `PipelineReport` and
//! `PowerReport` are asserted bit-identical between the two paths
//! *before* any number is reported; the headline line then prints the
//! wall-clock speedup the batched decode delivers on the identical work.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use perfclone::{
    estimate_power, InstrMetaTable, MachineConfig, PackedTrace, Pipeline, TimingResult,
};
use perfclone_bench::{design_sweep_configs, experiment_params, prepare, scale_from_env};
use perfclone_isa::Program;
use perfclone_kernels::by_name;

const KERNEL: &str = "susan";

/// One program's replay material: the captured trace and its interned
/// static-resolution table (both built once, outside the timed region —
/// exactly how the sweep engine amortizes them).
struct Prepped<'a> {
    program: &'a Program,
    trace: PackedTrace,
    meta: InstrMetaTable,
}

/// The oracle: record-at-a-time replay per cell.
fn sweep_oracle(prepped: &[Prepped<'_>], configs: &[MachineConfig]) -> Vec<TimingResult> {
    prepped
        .iter()
        .flat_map(|p| {
            configs.iter().map(|c| {
                let mut replay = p.trace.replay(p.program);
                let report = Pipeline::new(*c).run(&mut replay);
                let power = estimate_power(c, &report);
                TimingResult { report, power }
            })
        })
        .collect()
}

/// The batched path: chunked SoA decode per cell over the shared table.
fn sweep_batched(prepped: &[Prepped<'_>], configs: &[MachineConfig]) -> Vec<TimingResult> {
    prepped
        .iter()
        .flat_map(|p| {
            configs.iter().map(|c| {
                let replay = p.trace.replay_batched(p.program, &p.meta);
                let report = Pipeline::new(*c).run_batched(replay);
                let power = estimate_power(c, &report);
                TimingResult { report, power }
            })
        })
        .collect()
}

fn bench_batched_vs_oracle(c: &mut Criterion) {
    let kernel = by_name(KERNEL).expect("kernel exists");
    let bench = prepare(kernel, scale_from_env(), &experiment_params);
    let configs = design_sweep_configs();
    let prepped: Vec<Prepped<'_>> = [&bench.program, &bench.clone]
        .into_iter()
        .map(|program| Prepped {
            program,
            trace: PackedTrace::capture(program, u64::MAX),
            meta: InstrMetaTable::new(program),
        })
        .collect();

    // Correctness gate first: no number is reported unless every cell is
    // bit-identical across the two decode paths.
    let oracle = sweep_oracle(&prepped, &configs);
    let batched = sweep_batched(&prepped, &configs);
    assert_eq!(oracle.len(), batched.len());
    for (i, (a, b)) in oracle.iter().zip(&batched).enumerate() {
        assert_eq!(a.report, b.report, "cell {i}: PipelineReport must be bit-identical");
        assert_eq!(
            a.power.total_energy.to_bits(),
            b.power.total_energy.to_bits(),
            "cell {i}: total_energy must be bit-identical"
        );
        assert_eq!(
            a.power.average_power.to_bits(),
            b.power.average_power.to_bits(),
            "cell {i}: average_power must be bit-identical"
        );
        assert_eq!(
            a.power.energy_per_instr.to_bits(),
            b.power.energy_per_instr.to_bits(),
            "cell {i}: energy_per_instr must be bit-identical"
        );
    }

    let mut group = c.benchmark_group(format!("batch24/{KERNEL}"));
    group.sample_size(10);
    group
        .bench_function("record_at_a_time_oracle", |b| b.iter(|| sweep_oracle(&prepped, &configs)));
    group.bench_function("batched_soa", |b| b.iter(|| sweep_batched(&prepped, &configs)));
    group.finish();

    // Headline: best-of-three timed runs per arm (minima are robust
    // against interference on shared machines), printed for
    // EXPERIMENTS.md / CI logs.
    let cells = oracle.len();
    let best_of = |sweep: &dyn Fn() -> Vec<TimingResult>| {
        (0..3)
            .map(|_| {
                let t = Instant::now();
                std::hint::black_box(sweep().len());
                t.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let oracle_s = best_of(&|| sweep_oracle(&prepped, &configs));
    let batched_s = best_of(&|| sweep_batched(&prepped, &configs));
    println!(
        "\n{KERNEL}: {cells}-cell sweep  record-at-a-time {oracle_s:.3}s  batched {batched_s:.3}s  \
         speedup {:.2}x  (reports bit-identical)",
        oracle_s / batched_s,
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_batched_vs_oracle
}
criterion_main!(benches);
