//! Telemetry overhead gate: the susan 28-config L1 D-cache sweep (the
//! hottest instrumented path — trace extraction plus the single-pass
//! stack-distance engine) timed with the registry enabled versus disabled
//! at runtime, and with event tracing (per-thread rings) on top. The
//! instrumentation batches its publishes once per stage, so the
//! acceptance bound is < 3 % overhead — for metrics alone and for
//! metrics + tracing; the measured numbers are recorded in
//! EXPERIMENTS.md ("Telemetry overhead").

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use perfclone_kernels::{by_name, Scale};
use perfclone_uarch::{cache_sweep, sweep_dcache};

const KERNEL: &str = "susan";

fn bench_enabled_vs_disabled(c: &mut Criterion) {
    let program = by_name(KERNEL).expect("kernel exists").build(Scale::Small).program;
    let configs = cache_sweep();

    perfclone_obs::set_enabled(true);
    let on = sweep_dcache(&program, &configs, u64::MAX);
    perfclone_obs::set_enabled(false);
    let off = sweep_dcache(&program, &configs, u64::MAX);
    assert_eq!(on, off, "telemetry must not change sweep results");
    perfclone_obs::set_enabled(true);

    let mut group = c.benchmark_group(format!("obs_overhead/{KERNEL}"));
    group.sample_size(10);
    group.bench_function("sweep28_telemetry_on", |b| {
        perfclone_obs::set_enabled(true);
        b.iter(|| sweep_dcache(&program, &configs, u64::MAX))
    });
    group.bench_function("sweep28_telemetry_off", |b| {
        perfclone_obs::set_enabled(false);
        b.iter(|| sweep_dcache(&program, &configs, u64::MAX))
    });
    group.bench_function("sweep28_telemetry_and_tracing_on", |b| {
        perfclone_obs::set_enabled(true);
        perfclone_obs::set_trace_enabled(true);
        b.iter(|| sweep_dcache(&program, &configs, u64::MAX));
        perfclone_obs::set_trace_enabled(false);
    });
    group.finish();

    // Headline numbers: best-of-3 each way, printed for EXPERIMENTS.md
    // and CI logs. Best-of damps scheduler noise on shared runners.
    let time_best = |enabled: bool, tracing: bool| -> f64 {
        perfclone_obs::set_enabled(enabled);
        perfclone_obs::set_trace_enabled(tracing);
        let best = (0..3)
            .map(|_| {
                let t = Instant::now();
                let _ = sweep_dcache(&program, &configs, u64::MAX);
                t.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min);
        perfclone_obs::set_trace_enabled(false);
        best
    };
    let on_s = time_best(true, false);
    let trace_s = time_best(true, true);
    let off_s = time_best(false, false);
    perfclone_obs::set_enabled(true);
    let overhead = (on_s - off_s) / off_s * 100.0;
    let trace_overhead = (trace_s - off_s) / off_s * 100.0;
    println!(
        "\n{KERNEL}: 28-config sweep  telemetry-on {on_s:.3}s  +tracing {trace_s:.3}s  \
         telemetry-off {off_s:.3}s  overhead {overhead:+.2}%  \
         tracing overhead {trace_overhead:+.2}%  (acceptance: < 3% each)"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_enabled_vs_disabled
}
criterion_main!(benches);
