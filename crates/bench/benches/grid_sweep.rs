//! Out-of-core design-space sweep at scale: a 10 240-cell grid
//! (`GridAxes::dense`) swept shard-by-shard through `run_grid`, timing
//! wall clock and recording peak RSS (`VmHWM`) to demonstrate that the
//! sweep's memory footprint stays flat when the packed trace spills to
//! disk. Writes the headline numbers to `BENCH_grid.json` at the
//! workspace root so the trajectory is checked in per PR.
//!
//! Run with `PERFCLONE_TRACE_CAP=4096` to force the out-of-core path
//! (`trace_spilled: true` in the emitted JSON); without a cap the trace
//! stays in memory and the sweep measures the in-core baseline.

use std::path::Path;
use std::time::Instant;

use perfclone::{pareto_frontier, run_grid, GridAxes, GridSpec, WorkloadCache};
use perfclone_kernels::{by_name, Scale};
use perfclone_obs::rss::peak_rss_kib;

const KERNEL: &str = "crc32";
const LIMIT: u64 = 20_000;
const SHARD: u64 = 64;

fn main() {
    let program = by_name(KERNEL).expect("kernel exists").build(Scale::Tiny).program;
    let spec = GridSpec {
        workload: KERNEL.into(),
        scale: "tiny".into(),
        limit: LIMIT,
        axes: GridAxes::dense(),
        max_cells: u64::MAX,
        shard_size: SHARD,
    };
    let journal = std::env::temp_dir().join(format!("perfclone-bench-grid-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&journal);

    let cache = WorkloadCache::new();
    let t0 = Instant::now();
    let outcome = run_grid(&program, &spec, &journal, &cache, |_| {}).expect("sweep succeeds");
    let elapsed = t0.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&journal);

    assert_eq!(outcome.rows.len() as u64, spec.cells(), "every cell must produce a row");
    let pareto = pareto_frontier(&outcome.rows);
    let rss_kib = peak_rss_kib().unwrap_or(0);
    let cells = spec.cells();

    println!(
        "\n{KERNEL}: {cells}-cell grid sweep ({} shards of {SHARD})  {elapsed:.2}s  \
         {:.0} cells/s  peak RSS {:.1} MiB  trace {}  pareto {} points",
        spec.shard_count(),
        cells as f64 / elapsed,
        rss_kib as f64 / 1024.0,
        if outcome.spilled_trace { "spilled to disk" } else { "in memory" },
        pareto.len()
    );

    // Hand-rolled JSON keeps the bench crate dependency-free; every value
    // is a number, bool, or fixed string.
    let json = format!(
        "{{\n  \"bench\": \"grid_sweep\",\n  \"workload\": \"{KERNEL}\",\n  \
         \"scale\": \"tiny\",\n  \"limit\": {LIMIT},\n  \"cells\": {cells},\n  \
         \"shard_size\": {SHARD},\n  \"shards\": {},\n  \"trace_spilled\": {},\n  \
         \"elapsed_s\": {elapsed:.3},\n  \"cells_per_s\": {:.1},\n  \
         \"peak_rss_kib\": {rss_kib},\n  \"pareto_points\": {}\n}}\n",
        spec.shard_count(),
        outcome.spilled_trace,
        cells as f64 / elapsed,
        pareto.len()
    );
    let dest = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_grid.json");
    match std::fs::write(&dest, &json) {
        Ok(()) => println!("bench record -> {}", dest.display()),
        Err(e) => eprintln!("perfclone-bench: cannot write {}: {e}", dest.display()),
    }
}
