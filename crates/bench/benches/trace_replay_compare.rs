//! Engineering comparison behind the Table-3/Figure-8 runtimes: a
//! 12-configuration design-change timing sweep evaluated by per-config
//! re-interpretation (`run_timing`: one functional execution *per cell*,
//! the pre-trace path and correctness oracle) versus record-once/
//! replay-many (`PackedTrace::capture` once per program +
//! `run_timing_replay` per cell). Asserts bit-identical `PipelineReport`
//! and `PowerReport` values before timing, and prints the wall-clock
//! speedup replay delivers, plus the stream-regeneration microcosts
//! (interpret vs replay) that drive it.

use std::path::Path;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use perfclone::{run_timing, run_timing_replay, MachineConfig, PackedTrace, TimingResult};
use perfclone_bench::{
    design_sweep_configs, experiment_params, prepare, scale_from_env, scale_label,
};
use perfclone_isa::Program;
use perfclone_kernels::by_name;
use perfclone_obs::rss::peak_rss_kib;

const KERNEL: &str = "susan";

/// The oracle: one functional execution per (program × config) cell.
fn sweep_interpret(programs: &[&Program], configs: &[MachineConfig]) -> Vec<TimingResult> {
    programs
        .iter()
        .flat_map(|p| configs.iter().map(|c| run_timing(p, c, u64::MAX).expect("timing")))
        .collect()
}

/// Record-once/replay-many: one capture per program, one replay per cell.
fn sweep_replay(programs: &[&Program], configs: &[MachineConfig]) -> Vec<TimingResult> {
    programs
        .iter()
        .flat_map(|p| {
            let trace = PackedTrace::capture(p, u64::MAX);
            configs
                .iter()
                .map(|c| run_timing_replay(p, &trace, c).expect("timing"))
                .collect::<Vec<_>>()
        })
        .collect()
}

fn bench_replay_vs_interpret(c: &mut Criterion) {
    let kernel = by_name(KERNEL).expect("kernel exists");
    let scale = scale_from_env();
    let bench = prepare(kernel, scale, &experiment_params);
    let programs = [&bench.program, &bench.clone];
    let configs = design_sweep_configs();

    // Correctness gate first: every cell's PipelineReport and PowerReport
    // must be bit-identical between the two paths.
    let interp = sweep_interpret(&programs, &configs);
    let replay = sweep_replay(&programs, &configs);
    assert_eq!(interp.len(), replay.len());
    for (i, (a, b)) in interp.iter().zip(&replay).enumerate() {
        assert_eq!(a.report, b.report, "cell {i}: PipelineReport must be bit-identical");
        assert_eq!(
            a.power.average_power.to_bits(),
            b.power.average_power.to_bits(),
            "cell {i}: PowerReport must be bit-identical"
        );
    }

    let mut group = c.benchmark_group(format!("dsweep12/{KERNEL}"));
    group.sample_size(10);
    group.bench_function("per_config_interpret", |b| {
        b.iter(|| sweep_interpret(&programs, &configs))
    });
    group.bench_function("capture_once_replay", |b| b.iter(|| sweep_replay(&programs, &configs)));
    // The stream-regeneration microcosts that the sweep amortizes away.
    group.bench_function("interpret_stream_only", |b| {
        b.iter(|| perfclone_sim::Simulator::trace(&bench.program, u64::MAX).count())
    });
    let trace = PackedTrace::capture(&bench.program, u64::MAX);
    group.bench_function("replay_stream_only", |b| b.iter(|| trace.replay(&bench.program).count()));
    group.finish();

    // Headline numbers: one timed run each, so the harness prints explicit
    // speedup lines for EXPERIMENTS.md / CI logs.
    //
    // (1) Trace supply across the sweep: what replay replaces. The
    // interpreter path regenerates the dynamic stream once per config; the
    // replay path captures once and re-decodes per config.
    let n = configs.len();
    let t0 = Instant::now();
    let mut sink = 0usize;
    for _ in 0..n {
        sink += perfclone_sim::Simulator::trace(&bench.program, u64::MAX).count();
    }
    let supply_interp_s = std::hint::black_box(t0.elapsed().as_secs_f64());
    let t1 = Instant::now();
    let packed = PackedTrace::capture(&bench.program, u64::MAX);
    for _ in 0..n {
        sink += packed.replay(&bench.program).count();
    }
    let supply_replay_s = t1.elapsed().as_secs_f64();
    assert_eq!(sink, 2 * n * packed.len() as usize);

    // (2) End-to-end sweep wall clock (timing-model-bound: the pipeline
    // dominates, so this ratio is far smaller than the supply ratio).
    let t2 = Instant::now();
    let a = sweep_interpret(&programs, &configs);
    let interp_s = t2.elapsed().as_secs_f64();
    let t3 = Instant::now();
    let b = sweep_replay(&programs, &configs);
    let replay_s = t3.elapsed().as_secs_f64();
    assert_eq!(a.len(), b.len());
    println!(
        "\n{KERNEL}: {n}-config trace supply  interpret {:.1}ms  capture+replay {:.1}ms  \
         speedup {:.1}x  ({} instrs, packed {} B = {:.2} B/instr)",
        supply_interp_s * 1e3,
        supply_replay_s * 1e3,
        supply_interp_s / supply_replay_s,
        packed.len(),
        packed.packed_bytes(),
        packed.packed_bytes() as f64 / packed.len() as f64
    );
    println!(
        "{KERNEL}: {n}-config end-to-end sweep  interpret {interp_s:.3}s  replay {replay_s:.3}s  \
         speedup {:.2}x  (pipeline-model-bound)",
        interp_s / replay_s,
    );

    // Trajectory record: the replay-path wall clock and memory footprint
    // for the 12-configuration sweep, checked in per PR and regression-
    // gated in CI (same scheme as `BENCH_grid.json`). Hand-rolled JSON
    // keeps the bench crate dependency-free.
    let rss_kib = peak_rss_kib().unwrap_or(0);
    let json = format!(
        "{{\n  \"bench\": \"trace_replay_compare\",\n  \"workload\": \"{KERNEL}\",\n  \
         \"scale\": \"{}\",\n  \"configs\": {n},\n  \"cells\": {},\n  \
         \"interpret_s\": {interp_s:.3},\n  \"elapsed_s\": {replay_s:.3},\n  \
         \"sweep_speedup\": {:.2},\n  \"supply_speedup\": {:.1},\n  \
         \"peak_rss_kib\": {rss_kib}\n}}\n",
        scale_label(scale),
        2 * n,
        interp_s / replay_s,
        supply_interp_s / supply_replay_s,
    );
    let dest = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_replay.json");
    match std::fs::write(&dest, &json) {
        Ok(()) => println!("bench record -> {}", dest.display()),
        Err(e) => eprintln!("perfclone-bench: cannot write {}: {e}", dest.display()),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_replay_vs_interpret
}
criterion_main!(benches);
