//! Figure 3: percentage of dynamic memory references that exhibit a stride
//! pattern with a single stride value, per benchmark — the validation of
//! the paper's per-static-op stride model (§3.1.4). Also prints the
//! Table-1 population (name + domain) and each program's unique-stream
//! count (the paper quotes 66 for its worst case vs an 18 average).

use perfclone::Table;
use perfclone_bench::{kernels_from_env, mean, scale_from_env};
use perfclone_profile::profile_program;

fn main() {
    let scale = scale_from_env();
    let mut table = Table::new(vec![
        "benchmark".into(),
        "domain".into(),
        "single-stride refs".into(),
        "unique streams".into(),
    ]);
    let mut coverages = Vec::new();
    let mut streams = Vec::new();
    for kernel in kernels_from_env() {
        let program = kernel.build(scale).program;
        let profile = profile_program(&program, u64::MAX).expect("profile");
        let cov = profile.stride_coverage();
        coverages.push(cov);
        streams.push(profile.unique_streams() as f64);
        table.row(vec![
            kernel.name().into(),
            kernel.domain().to_string(),
            format!("{:.1}%", 100.0 * cov),
            profile.unique_streams().to_string(),
        ]);
    }
    table.row(vec![
        "average".into(),
        "-".into(),
        format!("{:.1}%", 100.0 * mean(&coverages)),
        format!("{:.1}", mean(&streams)),
    ]);
    println!("\nFigure 3 — dynamic memory references covered by a single stride per static op\n");
    println!("{}", table.render());
    println!(
        "(paper: >=90% for most MiBench/MediaBench programs; our population contains\n\
         more data-dependent table lookups, so irregular ops fall back to the\n\
         footprint walker during synthesis — see DESIGN.md)"
    );
}
