//! Ablation A3: stream-count sensitivity. The paper attributes its worst
//! cache-correlation result (0.80, ghostscript) to that benchmark needing
//! 66 unique streams vs an average of 18 — more streams create more
//! inter-stream interleavings the first-order model cannot capture. This
//! ablation reports (unique streams, cache correlation) pairs sorted by
//! stream count so the trend is visible.

use perfclone::experiments::cache_sweep_pair;
use perfclone::{cache_sweep, pearson, Table};
use perfclone_bench::prepare_all;

fn main() {
    let configs = cache_sweep();
    let mut rows: Vec<(usize, f64, String)> = Vec::new();
    for bench in prepare_all() {
        let sweep = cache_sweep_pair(&bench.program, &bench.clone, &configs, u64::MAX);
        rows.push((
            bench.profile.unique_streams(),
            sweep.correlation(),
            bench.kernel.name().to_string(),
        ));
    }
    rows.sort_by_key(|r| r.0);
    let mut table =
        Table::new(vec!["benchmark".into(), "unique streams".into(), "pearson r".into()]);
    for (streams, r, name) in &rows {
        table.row(vec![name.clone(), streams.to_string(), format!("{r:.3}")]);
    }
    println!("\nAblation A3 — cache correlation vs number of unique streams\n");
    println!("{}", table.render());
    let xs: Vec<f64> = rows.iter().map(|r| r.0 as f64).collect();
    let ys: Vec<f64> = rows.iter().map(|r| r.1).collect();
    println!("correlation(streams, r) = {:.3}", pearson(&xs, &ys));
    println!("(paper: programs needing more unique streams clone less accurately)");
}
