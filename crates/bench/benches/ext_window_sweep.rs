//! Extension E2: instruction-window sweep. Table 3's design change 1
//! doubles the ROB once; here we sweep ROB sizes 8–128 (LSQ scaled at
//! half) and check the clone tracks the IPC-vs-window curve — the ILP
//! profile the dependency-distance model is supposed to carry.

use perfclone::{pearson, run_timing, Table};
use perfclone_bench::{mean, prepare_all};
use perfclone_uarch::{base_config, MachineConfig};

fn window_configs() -> Vec<MachineConfig> {
    [8u32, 16, 32, 64, 128]
        .iter()
        .map(|&rob| MachineConfig {
            name: "window-sweep",
            rob_size: rob,
            lsq_size: (rob / 2).max(4),
            ..base_config()
        })
        .collect()
}

fn main() {
    let configs = window_configs();
    let mut table = Table::new(vec!["benchmark".into(), "pearson r".into(), "max IPC err".into()]);
    let mut rs = Vec::new();
    let mut worst = Vec::new();
    for bench in prepare_all() {
        let real: Vec<f64> = configs
            .iter()
            .map(|c| run_timing(&bench.program, c, u64::MAX).expect("timing").report.ipc())
            .collect();
        let synth: Vec<f64> = configs
            .iter()
            .map(|c| run_timing(&bench.clone, c, u64::MAX).expect("timing").report.ipc())
            .collect();
        let r = pearson(&real, &synth);
        let w = real.iter().zip(&synth).map(|(a, b)| ((a - b) / a).abs()).fold(0.0f64, f64::max);
        rs.push(r);
        worst.push(w);
        table.row(vec![
            bench.kernel.name().into(),
            format!("{r:.3}"),
            format!("{:.1}%", 100.0 * w),
        ]);
    }
    table.row(vec![
        "average".into(),
        format!("{:.3}", mean(&rs)),
        format!("{:.1}%", 100.0 * mean(&worst)),
    ]);
    println!("\nExtension E2 — IPC tracking across ROB sizes 8-128\n");
    println!("{}", table.render());
}
