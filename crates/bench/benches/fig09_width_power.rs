//! Figure 9: fraction by which power consumption increases for every
//! benchmark and its clone in response to doubling the fetch, decode, and
//! issue width.

use perfclone::{base_config, Table};
use perfclone_bench::{grid_timing_par, init_parallelism, mean, prepare_all_par};
use perfclone_uarch::config::change_double_width;

fn main() {
    init_parallelism();
    let base = base_config();
    let wide = change_double_width();
    let mut table = Table::new(vec![
        "benchmark".into(),
        "power increase (real)".into(),
        "power increase (clone)".into(),
    ]);
    let mut real_inc = Vec::new();
    let mut synth_inc = Vec::new();
    let benches = prepare_all_par();
    for (bench, [rb, rw, sb, sw]) in benches.iter().zip(grid_timing_par(&benches, &base, &wide)) {
        let rb = rb.power.average_power;
        let rw = rw.power.average_power;
        let sb = sb.power.average_power;
        let sw = sw.power.average_power;
        let (ri, si) = (rw / rb - 1.0, sw / sb - 1.0);
        real_inc.push(ri);
        synth_inc.push(si);
        table.row(vec![
            bench.kernel.name().into(),
            format!("{:.1}%", 100.0 * ri),
            format!("{:.1}%", 100.0 * si),
        ]);
    }
    table.row(vec![
        "average".into(),
        format!("{:.1}%", 100.0 * mean(&real_inc)),
        format!("{:.1}%", 100.0 * mean(&synth_inc)),
    ]);
    println!("\nFigure 9 — power increase from doubling fetch/decode/issue width\n");
    println!("{}", table.render());
    println!("(paper: clones track the per-benchmark power increase closely)");
}
