//! Extension E3: out-of-population check. The synthesis models were
//! calibrated against the paper's 23-kernel population; this bench clones
//! the five *extended* kernels (sobel, viterbi, huffman, typeset,
//! tiff_median — algorithm shapes the main set under-represents) and
//! reports the Figure-6-style IPC/power errors. Comparable errors mean
//! the models generalize rather than overfit.

use perfclone::{base_config, run_timing, Cloner, SynthesisParams, Table};
use perfclone_bench::{mean, scale_from_env};
use perfclone_kernels::{catalog, catalog_extended};

fn main() {
    let base = base_config();
    let extended: Vec<_> = catalog_extended().iter().skip(catalog().len()).collect();
    let mut table = Table::new(vec![
        "kernel".into(),
        "IPC (real)".into(),
        "IPC (clone)".into(),
        "IPC err".into(),
        "power err".into(),
    ]);
    let mut ipc_errs = Vec::new();
    let mut pow_errs = Vec::new();
    for kernel in extended {
        eprintln!("  cloning {} ...", kernel.name());
        let program = kernel.build(scale_from_env()).program;
        let profile = perfclone::profile_program(&program, u64::MAX).expect("profile");
        let params = SynthesisParams {
            target_dynamic: profile.total_instrs.clamp(100_000, 2_500_000),
            ..SynthesisParams::default()
        };
        let clone = Cloner::with_params(params).clone_program_from(&profile).expect("synthesize");
        let real = run_timing(&program, &base, u64::MAX).expect("timing");
        let synth = run_timing(&clone, &base, u64::MAX).expect("timing");
        let ie = ((synth.report.ipc() - real.report.ipc()) / real.report.ipc()).abs();
        let pe = ((synth.power.average_power - real.power.average_power)
            / real.power.average_power)
            .abs();
        ipc_errs.push(ie);
        pow_errs.push(pe);
        table.row(vec![
            kernel.name().into(),
            format!("{:.3}", real.report.ipc()),
            format!("{:.3}", synth.report.ipc()),
            format!("{:.1}%", 100.0 * ie),
            format!("{:.1}%", 100.0 * pe),
        ]);
    }
    table.row(vec![
        "average".into(),
        "-".into(),
        "-".into(),
        format!("{:.2}%", 100.0 * mean(&ipc_errs)),
        format!("{:.2}%", 100.0 * mean(&pow_errs)),
    ]);
    println!("\nExtension E3 — clone quality on the out-of-population kernels\n");
    println!("{}", table.render());
    println!("(models were never tuned against these five; errors comparable to Fig. 6\n means the microarchitecture-independent models generalize)");
}
