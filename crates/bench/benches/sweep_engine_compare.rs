//! Engineering comparison behind the Figure-4/5 runtimes: the 28-config
//! L1 D-cache sweep evaluated by per-configuration functional replay
//! (`sweep_dcache_replay`, the pre-engine path and correctness oracle)
//! versus the single-pass stack-distance engine (`sweep_dcache`: one trace
//! extraction + one Mattson/Hill–Smith pass), plus the engine's two halves
//! in isolation. Asserts bit-identical miss counts before timing, and
//! prints the wall-clock speedup the engine delivers.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use perfclone_kernels::{by_name, Scale};
use perfclone_uarch::{cache_sweep, sweep_dcache, sweep_dcache_replay, sweep_trace, AddressTrace};

const KERNEL: &str = "susan";

fn bench_engine_vs_replay(c: &mut Criterion) {
    let program = by_name(KERNEL).expect("kernel exists").build(Scale::Small).program;
    let configs = cache_sweep();

    let engine = sweep_dcache(&program, &configs, u64::MAX);
    let replay = sweep_dcache_replay(&program, &configs, u64::MAX);
    assert_eq!(engine, replay, "engine must be bit-identical to per-config replay");

    let mut group = c.benchmark_group(format!("sweep28/{KERNEL}"));
    group.sample_size(10);
    group.bench_function("per_config_replay", |b| {
        b.iter(|| sweep_dcache_replay(&program, &configs, u64::MAX))
    });
    group.bench_function("single_pass_engine", |b| {
        b.iter(|| sweep_dcache(&program, &configs, u64::MAX))
    });
    group.bench_function("trace_extraction_only", |b| {
        b.iter(|| AddressTrace::extract(&program, u64::MAX))
    });
    let trace = AddressTrace::extract(&program, u64::MAX);
    group.bench_function("stack_pass_only", |b| b.iter(|| sweep_trace(&trace, &configs)));
    group.finish();

    // Headline number: one timed run each, so the harness prints an
    // explicit speedup line for CHANGES.md / CI logs.
    let t0 = Instant::now();
    let r = sweep_dcache_replay(&program, &configs, u64::MAX);
    let replay_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let e = sweep_dcache(&program, &configs, u64::MAX);
    let engine_s = t1.elapsed().as_secs_f64();
    assert_eq!(r, e);
    println!(
        "\n{KERNEL}: 28-config sweep  replay {replay_s:.3}s  engine {engine_s:.3}s  \
         speedup {:.1}x  ({} refs, {} instrs)",
        replay_s / engine_s,
        e[0].accesses,
        e[0].instrs
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_engine_vs_replay
}
criterion_main!(benches);
