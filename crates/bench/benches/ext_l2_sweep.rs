//! Extension E1: L2-cache sweep. The paper sweeps the L1 D-cache
//! (Figures 4/5); the same relative-accuracy question applies one level
//! down. With the Table-2 L1 fixed, we sweep unified-L2 capacities
//! 32 KB–512 KB × {2, 4, 8}-way and correlate real-vs-clone L2 misses per
//! instruction.

use perfclone::{pearson, Table};
use perfclone_bench::{mean, prepare_all};
use perfclone_uarch::{base_config, simulate_hierarchy_trace, AddressTrace, Assoc, CacheConfig};

fn l2_sweep() -> Vec<CacheConfig> {
    let mut out = Vec::new();
    let mut size = 32 * 1024u64;
    while size <= 512 * 1024 {
        for ways in [2u32, 4, 8] {
            out.push(CacheConfig::new(size, Assoc::Ways(ways), 64));
        }
        size *= 2;
    }
    out
}

fn main() {
    let l1 = base_config().l1d;
    let configs = l2_sweep();
    let mut table = Table::new(vec!["benchmark".into(), "pearson r".into(), "sweep MAE".into()]);
    let mut rs = Vec::new();
    for bench in prepare_all() {
        // One functional simulation per program; every (L1, L2) pair
        // replays the same extracted trace.
        let real_trace = AddressTrace::extract(&bench.program, u64::MAX);
        let synth_trace = AddressTrace::extract(&bench.clone, u64::MAX);
        let real: Vec<f64> = configs
            .iter()
            .map(|c| simulate_hierarchy_trace(&real_trace, l1, *c).l2_mpi())
            .collect();
        let synth: Vec<f64> = configs
            .iter()
            .map(|c| simulate_hierarchy_trace(&synth_trace, l1, *c).l2_mpi())
            .collect();
        let (lo, hi) = real.iter().fold((f64::INFINITY, 0.0f64), |(l, h), &v| (l.min(v), h.max(v)));
        let flat = hi <= 1e-9 || (hi - lo) / hi < 0.15;
        let mae: f64 =
            real.iter().zip(&synth).map(|(r, s)| (r - s).abs()).sum::<f64>() / real.len() as f64;
        let r_text = if flat {
            "flat".into()
        } else {
            let r = pearson(&real, &synth);
            rs.push(r);
            format!("{r:.3}")
        };
        table.row(vec![bench.kernel.name().into(), r_text, format!("{mae:.5}")]);
    }
    table.row(vec!["average (non-flat)".into(), format!("{:.3}", mean(&rs)), "-".into()]);
    println!("\nExtension E1 — L2 sweep ({} configurations, L1 fixed at Table 2)\n", configs.len());
    println!("{}", table.render());
}
