//! Ablation A1: the paper's central claim — clones built from
//! *microarchitecture-dependent* attributes (prior work: match a target
//! cache miss rate and a taken-rate-only branch realization, both
//! calibrated on one reference configuration) break when the configuration
//! changes, while the microarchitecture-independent models keep tracking.
//!
//! For every kernel we synthesize both clones, sweep the 28 cache
//! configurations, and compare Pearson correlations; we also compare the
//! misprediction-rate error under the base GAp predictor.

use perfclone::experiments::cache_sweep_pair;
use perfclone::{
    base_config, cache_sweep, run_timing, BranchModel, Cloner, MemoryModel, SynthesisParams, Table,
};
use perfclone_bench::{mean, prepare_all};
use perfclone_uarch::{simulate_dcache, CacheConfig};

fn main() {
    let configs = cache_sweep();
    let base = base_config();
    let reference: CacheConfig = base.l1d;
    let mut table = Table::new(vec![
        "benchmark".into(),
        "r (uarch-indep)".into(),
        "r (uarch-dep)".into(),
        "bp err indep".into(),
        "bp err dep".into(),
    ]);
    let mut r_indep = Vec::new();
    let mut r_dep = Vec::new();
    let mut bp_indep = Vec::new();
    let mut bp_dep = Vec::new();
    for bench in prepare_all() {
        // Calibrate the prior-work baseline on the reference cache.
        let ref_point = simulate_dcache(&bench.program, reference, u64::MAX);
        let miss_rate = if ref_point.accesses == 0 {
            0.0
        } else {
            ref_point.misses as f64 / ref_point.accesses as f64
        };
        let dep_params = SynthesisParams {
            memory_model: MemoryModel::MissRateTarget {
                miss_rate,
                line_bytes: reference.line_bytes,
            },
            branch_model: BranchModel::TakenRateOnly,
            target_dynamic: bench.profile.total_instrs.clamp(100_000, 2_500_000),
            ..SynthesisParams::default()
        };
        let dep_clone =
            Cloner::with_params(dep_params).clone_program_from(&bench.profile).expect("synthesize");

        let sweep_i = cache_sweep_pair(&bench.program, &bench.clone, &configs, u64::MAX);
        let sweep_d = cache_sweep_pair(&bench.program, &dep_clone, &configs, u64::MAX);
        r_indep.push(sweep_i.correlation());
        r_dep.push(sweep_d.correlation());

        let real_bp = run_timing(&bench.program, &base, u64::MAX)
            .expect("timing")
            .report
            .bpred
            .mispredict_rate();
        let indep_bp = run_timing(&bench.clone, &base, u64::MAX)
            .expect("timing")
            .report
            .bpred
            .mispredict_rate();
        let dep_bp =
            run_timing(&dep_clone, &base, u64::MAX).expect("timing").report.bpred.mispredict_rate();
        bp_indep.push((indep_bp - real_bp).abs());
        bp_dep.push((dep_bp - real_bp).abs());

        table.row(vec![
            bench.kernel.name().into(),
            format!("{:.3}", sweep_i.correlation()),
            format!("{:.3}", sweep_d.correlation()),
            format!("{:.3}", (indep_bp - real_bp).abs()),
            format!("{:.3}", (dep_bp - real_bp).abs()),
        ]);
    }
    table.row(vec![
        "average".into(),
        format!("{:.3}", mean(&r_indep)),
        format!("{:.3}", mean(&r_dep)),
        format!("{:.3}", mean(&bp_indep)),
        format!("{:.3}", mean(&bp_dep)),
    ]);
    println!("\nAblation A1 — microarchitecture-independent vs -dependent clone models\n");
    println!("{}", table.render());
    println!(
        "(the paper's motivation: workloads generated from microarchitecture-dependent\n\
         attributes yield large errors when cache/branch configurations change)"
    );
}
