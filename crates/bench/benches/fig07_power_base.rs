//! Figure 7: total power consumption of the original benchmark and of the
//! synthetic clone on the Table-2 base configuration (Wattch-style model,
//! arbitrary units). The paper reports an average absolute power error of
//! 6.44 %.

use perfclone::{base_config, run_timing, Table};
use perfclone_bench::{emit_run_report, mean, prepare_all};

fn main() {
    let config = base_config();
    let mut table = Table::new(vec![
        "benchmark".into(),
        "power (real)".into(),
        "power (clone)".into(),
        "abs error".into(),
    ]);
    let mut errors = Vec::new();
    let mut metrics = Vec::new();
    for bench in prepare_all() {
        let real = run_timing(&bench.program, &config, u64::MAX).expect("timing");
        let synth = run_timing(&bench.clone, &config, u64::MAX).expect("timing");
        let (rp, sp) = (real.power.average_power, synth.power.average_power);
        let err = ((sp - rp) / rp).abs();
        errors.push(err);
        metrics.push((format!("fig07.power.err.{}", bench.kernel.name()), err));
        table.row(vec![
            bench.kernel.name().into(),
            format!("{rp:.2}"),
            format!("{sp:.2}"),
            format!("{:.1}%", 100.0 * err),
        ]);
    }
    table.row(vec![
        "average".into(),
        "-".into(),
        "-".into(),
        format!("{:.2}%", 100.0 * mean(&errors)),
    ]);
    println!("\nFigure 7 — power on the base configuration, real vs synthetic clone\n");
    println!("{}", table.render());
    println!("(paper: average absolute power error 6.44%)");
    metrics.push(("fig07.power.err.mean".into(), mean(&errors)));
    emit_run_report("bench.fig07", "suite", &metrics);
}
