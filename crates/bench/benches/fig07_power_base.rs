//! Figure 7: total power consumption of the original benchmark and of the
//! synthetic clone on the Table-2 base configuration (Wattch-style model,
//! arbitrary units). The paper reports an average absolute power error of
//! 6.44 %.

use perfclone::{base_config, run_timing_trace, PairComparison, Table, WorkloadCache};
use perfclone_bench::{emit_run_report, mean, prepare_all};

fn main() {
    let config = base_config();
    // Shared trace cache: capture once per program, replay for the timing
    // run (identical results to per-config re-interpretation).
    let cache = WorkloadCache::new();
    let mut table = Table::new(vec![
        "benchmark".into(),
        "power (real)".into(),
        "power (clone)".into(),
        "abs error".into(),
    ]);
    let mut errors = Vec::new();
    let mut metrics = Vec::new();
    for bench in prepare_all() {
        let name = bench.kernel.name();
        let real =
            run_timing_trace(name, &bench.program, &config, u64::MAX, &cache).expect("timing");
        let synth =
            run_timing_trace(&format!("{name}.clone"), &bench.clone, &config, u64::MAX, &cache)
                .expect("timing");
        let cmp = PairComparison { real, synth };
        let (rp, sp) = (cmp.real.power.average_power, cmp.synth.power.average_power);
        let rendered = match cmp.power_error_checked() {
            Some(err) => {
                errors.push(err);
                metrics.push((format!("fig07.power.err.{name}"), err));
                format!("{:.1}%", 100.0 * err)
            }
            None => "n/a (degenerate baseline)".to_string(),
        };
        table.row(vec![name.into(), format!("{rp:.2}"), format!("{sp:.2}"), rendered]);
    }
    table.row(vec![
        "average".into(),
        "-".into(),
        "-".into(),
        format!("{:.2}%", 100.0 * mean(&errors)),
    ]);
    println!("\nFigure 7 — power on the base configuration, real vs synthetic clone\n");
    println!("{}", table.render());
    println!("(paper: average absolute power error 6.44%)");
    metrics.push(("fig07.power.err.mean".into(), mean(&errors)));
    emit_run_report("bench.fig07", "suite", &metrics);
}
