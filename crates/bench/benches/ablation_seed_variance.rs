//! Ablation A6: seed sensitivity. Synthesis is randomized (SFG walk,
//! block shuffles, dependency sampling); a credible cloning tool must
//! produce statistically equivalent clones for any seed. This bench
//! synthesizes five clones per benchmark under different seeds and
//! reports the spread of their base-configuration IPC against the real
//! program.

use perfclone::{base_config, run_timing, Cloner, SynthesisParams, Table};
use perfclone_bench::{kernels_from_env, mean, scale_from_env};

fn main() {
    let base = base_config();
    let seeds = [1u64, 7, 42, 1234, 99999];
    let mut table = Table::new(vec![
        "benchmark".into(),
        "IPC (real)".into(),
        "clone IPC mean".into(),
        "clone IPC stddev".into(),
        "seed spread".into(),
    ]);
    let mut spreads = Vec::new();
    for kernel in kernels_from_env() {
        eprintln!("  seeding {} ...", kernel.name());
        let program = kernel.build(scale_from_env()).program;
        let profile = perfclone::profile_program(&program, u64::MAX).expect("profile");
        let real = run_timing(&program, &base, u64::MAX).expect("timing").report.ipc();
        let ipcs: Vec<f64> = seeds
            .iter()
            .map(|&seed| {
                let params = SynthesisParams {
                    seed,
                    target_dynamic: profile.total_instrs.clamp(100_000, 1_000_000),
                    ..SynthesisParams::default()
                };
                let clone =
                    Cloner::with_params(params).clone_program_from(&profile).expect("synthesize");
                run_timing(&clone, &base, u64::MAX).expect("timing").report.ipc()
            })
            .collect();
        let m = mean(&ipcs);
        let var = ipcs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / ipcs.len() as f64;
        let sd = var.sqrt();
        let spread = (ipcs.iter().cloned().fold(0.0f64, f64::max)
            - ipcs.iter().cloned().fold(f64::INFINITY, f64::min))
            / m;
        spreads.push(spread);
        table.row(vec![
            kernel.name().into(),
            format!("{real:.3}"),
            format!("{m:.3}"),
            format!("{sd:.4}"),
            format!("{:.1}%", 100.0 * spread),
        ]);
    }
    table.row(vec![
        "average".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        format!("{:.2}%", 100.0 * mean(&spreads)),
    ]);
    println!("\nAblation A6 — clone IPC spread over 5 synthesis seeds\n");
    println!("{}", table.render());
    println!("(a small spread means results do not hinge on one lucky seed)");
}
