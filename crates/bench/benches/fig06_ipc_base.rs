//! Figure 6: absolute IPC of the original benchmark and of the synthetic
//! clone on the Table-2 base configuration. The paper reports an average
//! absolute IPC error of 8.73 %.

use perfclone::{base_config, run_timing_trace, PairComparison, Table, WorkloadCache};
use perfclone_bench::{emit_run_report, mean, prepare_all};

fn main() {
    let config = base_config();
    // Each program's retired stream is captured once as a packed trace and
    // replayed here (and by any other experiment sharing the cache).
    let cache = WorkloadCache::new();
    let mut table = Table::new(vec![
        "benchmark".into(),
        "IPC (real)".into(),
        "IPC (clone)".into(),
        "abs error".into(),
    ]);
    let mut errors = Vec::new();
    let mut metrics = Vec::new();
    for bench in prepare_all() {
        let name = bench.kernel.name();
        let real =
            run_timing_trace(name, &bench.program, &config, u64::MAX, &cache).expect("timing");
        let synth =
            run_timing_trace(&format!("{name}.clone"), &bench.clone, &config, u64::MAX, &cache)
                .expect("timing");
        let cmp = PairComparison { real, synth };
        let (ri, si) = (cmp.real.report.ipc(), cmp.synth.report.ipc());
        let rendered = match cmp.ipc_error_checked() {
            Some(err) => {
                errors.push(err);
                metrics.push((format!("fig06.ipc.err.{name}"), err));
                format!("{:.1}%", 100.0 * err)
            }
            // A zero/non-finite baseline cannot anchor a relative error;
            // keep it out of the average instead of poisoning it.
            None => "n/a (degenerate baseline)".to_string(),
        };
        table.row(vec![name.into(), format!("{ri:.3}"), format!("{si:.3}"), rendered]);
    }
    table.row(vec![
        "average".into(),
        "-".into(),
        "-".into(),
        format!("{:.2}%", 100.0 * mean(&errors)),
    ]);
    println!("\nFigure 6 — IPC on the base configuration, real vs synthetic clone\n");
    println!("{}", table.render());
    println!("(paper: average absolute IPC error 8.73%)");
    metrics.push(("fig06.ipc.err.mean".into(), mean(&errors)));
    emit_run_report("bench.fig06", "suite", &metrics);
}
