//! Figure 6: absolute IPC of the original benchmark and of the synthetic
//! clone on the Table-2 base configuration. The paper reports an average
//! absolute IPC error of 8.73 %.

use perfclone::{base_config, run_timing, Table};
use perfclone_bench::{emit_run_report, mean, prepare_all};

fn main() {
    let config = base_config();
    let mut table = Table::new(vec![
        "benchmark".into(),
        "IPC (real)".into(),
        "IPC (clone)".into(),
        "abs error".into(),
    ]);
    let mut errors = Vec::new();
    let mut metrics = Vec::new();
    for bench in prepare_all() {
        let real = run_timing(&bench.program, &config, u64::MAX).expect("timing");
        let synth = run_timing(&bench.clone, &config, u64::MAX).expect("timing");
        let (ri, si) = (real.report.ipc(), synth.report.ipc());
        let err = ((si - ri) / ri).abs();
        errors.push(err);
        metrics.push((format!("fig06.ipc.err.{}", bench.kernel.name()), err));
        table.row(vec![
            bench.kernel.name().into(),
            format!("{ri:.3}"),
            format!("{si:.3}"),
            format!("{:.1}%", 100.0 * err),
        ]);
    }
    table.row(vec![
        "average".into(),
        "-".into(),
        "-".into(),
        format!("{:.2}%", 100.0 * mean(&errors)),
    ]);
    println!("\nFigure 6 — IPC on the base configuration, real vs synthetic clone\n");
    println!("{}", table.render());
    println!("(paper: average absolute IPC error 8.73%)");
    metrics.push(("fig06.ipc.err.mean".into(), mean(&errors)));
    emit_run_report("bench.fig06", "suite", &metrics);
}
