//! Figure 4: Pearson correlation coefficient between real benchmark and
//! synthetic clone misses-per-instruction across the 28 L1 D-cache
//! configurations (256 B–16 KB × {DM, 2-way, 4-way, FA}, 32 B lines, LRU).
//! The paper reports an average of 0.93 with a 0.80 worst case.

use perfclone::experiments::cache_sweep_pair_par;
use perfclone::{cache_sweep, Table};
use perfclone_bench::{init_parallelism, mean, prepare_all_par};

fn main() {
    init_parallelism();
    let configs = cache_sweep();
    let mut table = Table::new(vec![
        "benchmark".into(),
        "pearson r".into(),
        "sweep MAE".into(),
        "unique streams".into(),
    ]);
    let mut rs = Vec::new();
    let mut maes = Vec::new();
    for bench in prepare_all_par() {
        let sweep = cache_sweep_pair_par(&bench.program, &bench.clone, &configs, u64::MAX);
        // A benchmark whose real MPI barely varies over the sweep (pure
        // streaming working sets) makes Pearson numerically meaningless;
        // mark those rows "flat" and judge them by the mean absolute MPI
        // error instead. The paper's population was chosen to be cache-
        // sensitive over this sweep, so every one of its points is the
        // correlated kind.
        let (lo, hi) =
            sweep.real_mpi.iter().fold((f64::INFINITY, 0.0f64), |(l, h), &v| (l.min(v), h.max(v)));
        let flat = hi <= 1e-9 || (hi - lo) / hi < 0.15;
        let mae: f64 =
            sweep.real_mpi.iter().zip(&sweep.synth_mpi).map(|(r, s)| (r - s).abs()).sum::<f64>()
                / sweep.real_mpi.len() as f64;
        maes.push(mae);
        let r_text = if flat {
            "flat".to_string()
        } else {
            let r = sweep.correlation();
            rs.push(r);
            format!("{r:.3}")
        };
        table.row(vec![
            bench.kernel.name().into(),
            r_text,
            format!("{mae:.5}"),
            bench.profile.unique_streams().to_string(),
        ]);
    }
    table.row(vec![
        "average (non-flat)".into(),
        format!("{:.3}", mean(&rs)),
        format!("{:.5}", mean(&maes)),
        "-".into(),
    ]);
    println!("\nFigure 4 — Pearson correlation of real vs clone MPI over 28 cache configs\n");
    println!("{}", table.render());
    println!("(paper: average 0.93, minimum 0.80 on its worst benchmark)");
}
