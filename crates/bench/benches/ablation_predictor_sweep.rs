//! Ablation A5: branch-predictor sweep — the §3.1.5 claim checked
//! directly. If the clone carries the original's control-flow
//! predictability (not just its taken rate), its misprediction rate must
//! track the original's across predictor designs of very different
//! strengths, exactly as the cache sweep tracks misses.

use perfclone::{pearson, Table};
use perfclone_bench::{mean, prepare_all};
use perfclone_isa::Program;
use perfclone_sim::Simulator;
use perfclone_uarch::{BranchPredictor, PredictorKind};

/// The predictor population swept, weakest to strongest.
fn predictors() -> Vec<PredictorKind> {
    vec![
        PredictorKind::NotTaken,
        PredictorKind::Taken,
        PredictorKind::Bimodal { table_bits: 6 },
        PredictorKind::Bimodal { table_bits: 9 },
        PredictorKind::Bimodal { table_bits: 12 },
        PredictorKind::Gshare { history_bits: 8 },
        PredictorKind::Gshare { history_bits: 12 },
        PredictorKind::TwoLevelGAp { history_bits: 6, addr_bits: 4 },
        PredictorKind::TwoLevelGAp { history_bits: 8, addr_bits: 4 },
        PredictorKind::TwoLevelGAp { history_bits: 10, addr_bits: 6 },
    ]
}

/// Misprediction rate of one program under one predictor (functional
/// replay; the predictor sweep needs no pipeline).
fn mispredict_rate(program: &Program, kind: PredictorKind) -> f64 {
    let mut bp = BranchPredictor::new(kind);
    for d in Simulator::trace(program, u64::MAX) {
        if d.instr.is_cond_branch() {
            bp.predict_and_update(d.pc, d.taken);
        }
    }
    bp.stats().mispredict_rate()
}

fn main() {
    let kinds = predictors();
    let mut table =
        Table::new(vec!["benchmark".into(), "pearson r".into(), "mean |delta| mispredict".into()]);
    let mut rs = Vec::new();
    let mut deltas = Vec::new();
    for bench in prepare_all() {
        let real: Vec<f64> = kinds.iter().map(|k| mispredict_rate(&bench.program, *k)).collect();
        let synth: Vec<f64> = kinds.iter().map(|k| mispredict_rate(&bench.clone, *k)).collect();
        let r = pearson(&real, &synth);
        let d =
            real.iter().zip(&synth).map(|(a, b)| (a - b).abs()).sum::<f64>() / real.len() as f64;
        rs.push(r);
        deltas.push(d);
        table.row(vec![bench.kernel.name().into(), format!("{r:.3}"), format!("{d:.4}")]);
    }
    table.row(vec!["average".into(), format!("{:.3}", mean(&rs)), format!("{:.4}", mean(&deltas))]);
    println!("\nAblation A5 — misprediction tracking across 10 branch predictor designs\n");
    println!("{}", table.render());
    println!("(the clone must track the original across predictors, §3.1.5)");
}
