//! Ablation A2: statistical-flow-graph context granularity. The paper
//! (§3.1.1) gathers workload characteristics per unique (predecessor,
//! successor) basic-block pair, arguing the context improves modeling
//! accuracy. This ablation compares base-configuration IPC error of
//! clones synthesized with per-context dependency statistics vs per-block
//! merged statistics.

use perfclone::{base_config, run_timing, Cloner, SynthesisParams, Table};
use perfclone_bench::{mean, prepare_all};

fn main() {
    let base = base_config();
    let mut table =
        Table::new(vec!["benchmark".into(), "IPC err (context)".into(), "IPC err (merged)".into()]);
    let mut ctx_errs = Vec::new();
    let mut merged_errs = Vec::new();
    for bench in prepare_all() {
        let merged_params = SynthesisParams {
            context_sensitive: false,
            target_dynamic: bench.profile.total_instrs.clamp(100_000, 2_500_000),
            ..SynthesisParams::default()
        };
        let merged_clone = Cloner::with_params(merged_params)
            .clone_program_from(&bench.profile)
            .expect("synthesize");

        let real = run_timing(&bench.program, &base, u64::MAX).expect("timing").report.ipc();
        let ctx = run_timing(&bench.clone, &base, u64::MAX).expect("timing").report.ipc();
        let merged = run_timing(&merged_clone, &base, u64::MAX).expect("timing").report.ipc();
        let ce = ((ctx - real) / real).abs();
        let me = ((merged - real) / real).abs();
        ctx_errs.push(ce);
        merged_errs.push(me);
        table.row(vec![
            bench.kernel.name().into(),
            format!("{:.1}%", 100.0 * ce),
            format!("{:.1}%", 100.0 * me),
        ]);
    }
    table.row(vec![
        "average".into(),
        format!("{:.2}%", 100.0 * mean(&ctx_errs)),
        format!("{:.2}%", 100.0 * mean(&merged_errs)),
    ]);
    println!("\nAblation A2 — per-(pred,succ) context vs merged dependency statistics\n");
    println!("{}", table.render());
}
