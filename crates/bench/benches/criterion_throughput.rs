//! Criterion throughput benchmarks of the simulation stack itself:
//! functional simulation, profiling, synthesis, cache replay, and the
//! timing pipeline — the engineering numbers behind the experiment
//! runtimes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use perfclone::{base_config, profile_program, synthesize, Pipeline, SynthesisParams};
use perfclone_kernels::{by_name, Scale};
use perfclone_sim::Simulator;
use perfclone_uarch::{simulate_dcache, Assoc, CacheConfig};

fn bench_stack(c: &mut Criterion) {
    let kb = by_name("crc32").expect("kernel exists").build(Scale::Tiny);
    let program = kb.program;
    let dynamic = {
        let mut sim = Simulator::new(&program);
        sim.run(u64::MAX).expect("kernel runs").retired
    };
    let profile = profile_program(&program, u64::MAX).expect("profile");
    let params = SynthesisParams { target_dynamic: 100_000, ..SynthesisParams::default() };

    let mut group = c.benchmark_group("stack");
    group.throughput(Throughput::Elements(dynamic));
    group.bench_function("functional_sim", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&program);
            sim.run(u64::MAX).expect("runs")
        })
    });
    group.bench_function("profiler", |b| b.iter(|| profile_program(&program, u64::MAX)));
    group.bench_function("dcache_replay", |b| {
        let cfg = CacheConfig::new(16 * 1024, Assoc::Ways(2), 32);
        b.iter(|| simulate_dcache(&program, cfg, u64::MAX))
    });
    group.bench_function("pipeline", |b| {
        b.iter(|| Pipeline::new(base_config()).run(Simulator::trace(&program, u64::MAX)))
    });
    group.finish();

    c.bench_function("synthesize", |b| b.iter(|| synthesize(&profile, &params)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_stack
}
criterion_main!(benches);
