//! Figure 8: relative IPC speedup of every benchmark and of its clone in
//! response to doubling the fetch, decode, and issue width — the design
//! change with the largest average speedup (1.72× in the paper).

use perfclone::{base_config, Table};
use perfclone_bench::{grid_timing_par, init_parallelism, mean, prepare_all_par};
use perfclone_uarch::config::change_double_width;

fn main() {
    init_parallelism();
    let base = base_config();
    let wide = change_double_width();
    let mut table =
        Table::new(vec!["benchmark".into(), "speedup (real)".into(), "speedup (clone)".into()]);
    let mut real_sp = Vec::new();
    let mut synth_sp = Vec::new();
    let benches = prepare_all_par();
    for (bench, [rb, rw, sb, sw]) in benches.iter().zip(grid_timing_par(&benches, &base, &wide)) {
        let (rb, rw) = (rb.report.ipc(), rw.report.ipc());
        let (sb, sw) = (sb.report.ipc(), sw.report.ipc());
        real_sp.push(rw / rb);
        synth_sp.push(sw / sb);
        table.row(vec![
            bench.kernel.name().into(),
            format!("{:.3}", rw / rb),
            format!("{:.3}", sw / sb),
        ]);
    }
    table.row(vec![
        "average".into(),
        format!("{:.3}", mean(&real_sp)),
        format!("{:.3}", mean(&synth_sp)),
    ]);
    println!("\nFigure 8 — IPC speedup from doubling fetch/decode/issue width\n");
    println!("{}", table.render());
    println!("(paper: average real speedup 1.72, tracked closely by the clones)");
}
