//! Figure 8: relative IPC speedup of every benchmark and of its clone in
//! response to doubling the fetch, decode, and issue width — the design
//! change with the largest average speedup (1.72× in the paper).

use perfclone::{base_config, run_timing, Table};
use perfclone_bench::{mean, prepare_all};
use perfclone_uarch::config::change_double_width;

fn main() {
    let base = base_config();
    let wide = change_double_width();
    let mut table = Table::new(vec![
        "benchmark".into(),
        "speedup (real)".into(),
        "speedup (clone)".into(),
    ]);
    let mut real_sp = Vec::new();
    let mut synth_sp = Vec::new();
    for bench in prepare_all() {
        let rb = run_timing(&bench.program, &base, u64::MAX).report.ipc();
        let rw = run_timing(&bench.program, &wide, u64::MAX).report.ipc();
        let sb = run_timing(&bench.clone, &base, u64::MAX).report.ipc();
        let sw = run_timing(&bench.clone, &wide, u64::MAX).report.ipc();
        real_sp.push(rw / rb);
        synth_sp.push(sw / sb);
        table.row(vec![
            bench.kernel.name().into(),
            format!("{:.3}", rw / rb),
            format!("{:.3}", sw / sb),
        ]);
    }
    table.row(vec![
        "average".into(),
        format!("{:.3}", mean(&real_sp)),
        format!("{:.3}", mean(&synth_sp)),
    ]);
    println!("\nFigure 8 — IPC speedup from doubling fetch/decode/issue width\n");
    println!("{}", table.render());
    println!("(paper: average real speedup 1.72, tracked closely by the clones)");
}
