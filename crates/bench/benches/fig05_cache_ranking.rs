//! Figure 5: scatter of cache-configuration rankings — for each of the 28
//! configurations, the average rank (1 = fewest misses per instruction)
//! assigned by the real benchmarks vs by their synthetic clones. Perfect
//! relative accuracy puts every point on the 45° line.

use perfclone::experiments::cache_sweep_pair_par;
use perfclone::{cache_sweep, rank, spearman, Table};
use perfclone_bench::{init_parallelism, prepare_all_par};

fn main() {
    init_parallelism();
    let configs = cache_sweep();
    let n = configs.len();
    let mut real_rank_sum = vec![0.0f64; n];
    let mut synth_rank_sum = vec![0.0f64; n];
    let mut benchmarks = 0usize;
    for bench in prepare_all_par() {
        let sweep = cache_sweep_pair_par(&bench.program, &bench.clone, &configs, u64::MAX);
        let (rr, rs) = sweep.rankings();
        for i in 0..n {
            real_rank_sum[i] += rr[i];
            synth_rank_sum[i] += rs[i];
        }
        benchmarks += 1;
    }
    let real_avg: Vec<f64> = real_rank_sum.iter().map(|s| s / benchmarks as f64).collect();
    let synth_avg: Vec<f64> = synth_rank_sum.iter().map(|s| s / benchmarks as f64).collect();
    // Re-rank the averages so both axes are 1..=28 as in the figure.
    let real_final = rank(&real_avg);
    let synth_final = rank(&synth_avg);

    let mut table = Table::new(vec![
        "cache config".into(),
        "rank (real)".into(),
        "rank (clone)".into(),
        "|delta|".into(),
    ]);
    let mut max_delta = 0.0f64;
    for i in 0..n {
        let d = (real_final[i] - synth_final[i]).abs();
        max_delta = max_delta.max(d);
        table.row(vec![
            configs[i].to_string(),
            format!("{:.1}", real_final[i]),
            format!("{:.1}", synth_final[i]),
            format!("{d:.1}"),
        ]);
    }
    println!("\nFigure 5 — cache-configuration ranking, real vs clone (45-degree scatter)\n");
    println!("{}", table.render());
    println!(
        "rank correlation (spearman): {:.3}   max rank deviation: {:.1}",
        spearman(&real_final, &synth_final),
        max_delta
    );
    println!("(paper: all points close to the 45-degree line through the origin)");
}
