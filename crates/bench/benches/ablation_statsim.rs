//! Ablation A4: performance cloning vs statistical simulation (the §2
//! foundation technique). Both consume the same workload profile; the
//! clone is an executable program, the statistical simulation a synthetic
//! trace. This bench compares their base-configuration IPC errors and
//! their tracking of the doubled-width design change.

use perfclone::{base_config, run_timing, Table};
use perfclone_bench::{mean, prepare_all};
use perfclone_sim::Simulator;
use perfclone_statsim::{synth_trace, TraceParams};
use perfclone_uarch::{config::change_double_width, Pipeline};

fn main() {
    let base = base_config();
    let wide = change_double_width();
    let mut table = Table::new(vec![
        "benchmark".into(),
        "IPC err (clone)".into(),
        "IPC err (statsim)".into(),
        "speedup err (clone)".into(),
        "speedup err (statsim)".into(),
    ]);
    let mut clone_errs = Vec::new();
    let mut trace_errs = Vec::new();
    let mut clone_sp_errs = Vec::new();
    let mut trace_sp_errs = Vec::new();
    for bench in prepare_all() {
        let params =
            TraceParams { length: bench.profile.total_instrs.clamp(100_000, 1_000_000), seed: 11 };
        let trace = synth_trace(&bench.profile, &params).expect("trace");

        let real_b = run_timing(&bench.program, &base, u64::MAX).expect("timing").report.ipc();
        let real_w = run_timing(&bench.program, &wide, u64::MAX).expect("timing").report.ipc();
        let clone_b = run_timing(&bench.clone, &base, u64::MAX).expect("timing").report.ipc();
        let clone_w = run_timing(&bench.clone, &wide, u64::MAX).expect("timing").report.ipc();
        let trace_b = Pipeline::new(base).run(trace.iter().copied()).ipc();
        let trace_w = Pipeline::new(wide).run(trace.iter().copied()).ipc();
        let _ = Simulator::trace; // (explicit: programs vs raw traces)

        let ce = ((clone_b - real_b) / real_b).abs();
        let te = ((trace_b - real_b) / real_b).abs();
        let cse = ((clone_w / clone_b) - (real_w / real_b)).abs() / (real_w / real_b);
        let tse = ((trace_w / trace_b) - (real_w / real_b)).abs() / (real_w / real_b);
        clone_errs.push(ce);
        trace_errs.push(te);
        clone_sp_errs.push(cse);
        trace_sp_errs.push(tse);
        table.row(vec![
            bench.kernel.name().into(),
            format!("{:.1}%", 100.0 * ce),
            format!("{:.1}%", 100.0 * te),
            format!("{:.1}%", 100.0 * cse),
            format!("{:.1}%", 100.0 * tse),
        ]);
    }
    table.row(vec![
        "average".into(),
        format!("{:.2}%", 100.0 * mean(&clone_errs)),
        format!("{:.2}%", 100.0 * mean(&trace_errs)),
        format!("{:.2}%", 100.0 * mean(&clone_sp_errs)),
        format!("{:.2}%", 100.0 * mean(&trace_sp_errs)),
    ]);
    println!("\nAblation A4 — executable clone vs statistical-simulation trace\n");
    println!("{}", table.render());
    println!(
        "(both consume the same profile; the clone is compilable and shippable,\n\
         the trace is simulator-only — the paper's positioning in its section 2)"
    );
}
