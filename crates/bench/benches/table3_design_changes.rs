//! Table 3: average relative error in IPC and power of the synthetic
//! clone, per the paper's §5.2 formula, in response to the five design
//! changes: (1) 2× ROB+LSQ, (2) ½ L1-D, (3) 2× fetch/decode/issue width,
//! (4) GAp → not-taken predictor, (5) out-of-order → in-order issue.
//!
//! The paper reports average relative errors of 5.81/1.48/5.41/6.51/3.26 %
//! for IPC and 3.41/0.39/4.59/1.80/1.22 % for power, averaging 4.49 % IPC
//! and 2.28 % power.

use perfclone::experiments::design_change_sweep_par;
use perfclone::{base_config, Table};
use perfclone_bench::{init_parallelism, mean, prepare_all_par};

fn main() {
    init_parallelism();
    let base = base_config();
    let benches = prepare_all_par();
    let mut ipc_errs = vec![Vec::new(); 5];
    let mut pow_errs = vec![Vec::new(); 5];
    let mut names = vec![String::new(); 5];
    for bench in &benches {
        eprintln!("  sweeping {} ...", bench.kernel.name());
        let sweep =
            design_change_sweep_par(&bench.program, &bench.clone, &base, u64::MAX).expect("timing");
        for i in 0..5 {
            ipc_errs[i].push(sweep.ipc_relative_error(i));
            pow_errs[i].push(sweep.power_relative_error(i));
            names[i] = sweep.changes[i].config.name.to_string();
        }
    }
    let mut table = Table::new(vec![
        "design change".into(),
        "avg rel. error IPC".into(),
        "avg rel. error power".into(),
    ]);
    let labels = [
        "1. double ROB + LSQ entries",
        "2. halve L1 D-cache",
        "3. double fetch/decode/issue width",
        "4. 2-level GAp -> not-taken predictor",
        "5. out-of-order -> in-order issue",
    ];
    let mut all_ipc = Vec::new();
    let mut all_pow = Vec::new();
    for i in 0..5 {
        let (mi, mp) = (mean(&ipc_errs[i]), mean(&pow_errs[i]));
        all_ipc.push(mi);
        all_pow.push(mp);
        table.row(vec![
            format!("{} ({})", labels[i], names[i]),
            format!("{:.2}%", 100.0 * mi),
            format!("{:.2}%", 100.0 * mp),
        ]);
    }
    table.row(vec![
        "average".into(),
        format!("{:.2}%", 100.0 * mean(&all_ipc)),
        format!("{:.2}%", 100.0 * mean(&all_pow)),
    ]);
    println!("\nTable 3 — relative error of the clone under five design changes\n");
    println!("{}", table.render());
    println!("(paper: IPC 5.81/1.48/5.41/6.51/3.26%, avg 4.49%; power 3.41/0.39/4.59/1.80/1.22%, avg 2.28%)");
}
