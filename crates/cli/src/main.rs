//! `perfclone` — command-line front end for the performance-cloning
//! toolchain.
//!
//! ```text
//! perfclone list
//! perfclone profile  <kernel> [--scale tiny|small] [-o profile.json]
//! perfclone synth    <profile.json> [-o clone.c] [--asm clone.s] [--seed N] [--dynamic N]
//! perfclone clone    <kernel> [--scale tiny|small] [-o clone.c] [--report out.json|-]
//! perfclone validate <kernel> [--scale tiny|small] [--config NAME]
//! perfclone sweep    <kernel> [--scale tiny|small]
//! perfclone disasm   <kernel> [--scale tiny|small]
//! perfclone report   <kernel|report.json> [--scale tiny|small]
//! perfclone configs
//! ```
//!
//! Any command accepts `--report FILE|-` to emit a machine-readable
//! [`RunReport`](perfclone_obs::RunReport) of the run.

use std::process::ExitCode;

mod args;
mod cmd;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match cmd::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // Contract: every failure is exactly one stderr line (plus a
            // nonzero exit), so scripts and CI can capture it verbatim.
            eprintln!(
                "perfclone: error: {} (run `perfclone help` for usage)",
                e.replace('\n', " | ")
            );
            ExitCode::FAILURE
        }
    }
}
