//! Subcommand implementations.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use perfclone::experiments::{cache_sweep_pair_par, design_change_sweep_par};
use perfclone::{
    base_config, cache_sweep, env_fault_injector, faultfs, pareto_frontier, parse_fault_injector,
    run_grid, run_grid_with, run_timing, run_timing_store, run_timing_trace, CellRow, Cloner,
    Error, Fault, FaultPlan, Gate, GridAxes, GridOutcome, GridPolicy, GridSpec, PairComparison,
    SynthesisParams, Table, ValidationReport, Verdict, WorkloadCache, WorkloadProfile,
};
use perfclone_isa::Program;
use perfclone_obs::{
    DegradedCoverage, GateAttribute, Metric, QuarantinedCell, RunReport, Sampler, SamplerConfig,
    SweepStats, Timeline, TraceSummary,
};
use perfclone_uarch::{design_changes, MachineConfig};

use crate::args::{parse, Parsed};

const USAGE: &str = "\
perfclone — performance cloning toolchain (IISWC 2006 reproduction)

USAGE:
  perfclone list                                  list the benchmark kernels
  perfclone configs                               list machine configurations
  perfclone profile <kernel> [opts]               profile to JSON
  perfclone synth <profile.json> [opts]           synthesize a clone
  perfclone clone <kernel> [opts]                 profile + synth + gate
  perfclone validate <kernel> [opts]              clone + side-by-side timing
  perfclone sweep <kernel> [opts]                 28-config cache sweep
  perfclone dsweep <kernel> [opts]                Table-3 design-change timing
                                                  sweep (record-once/replay-many)
  perfclone grid <kernel> [opts]                  sharded, resumable design-space
                                                  sweep with journaled shards and
                                                  an IPC-vs-power Pareto frontier
  perfclone disasm <kernel> [opts]                disassemble a kernel
  perfclone report <kernel|report.json> [opts]    characterization report, or
                                                  pretty-print a saved run report
  perfclone statsim <kernel> [opts]               statistical-simulation IPC
  perfclone selfcheck [kernel...] [opts]          fault-injection self-check
  perfclone chaos [kernel] [opts]                 resilience self-check: runs a
                                                  --keep-going grid sweep under
                                                  injected cell faults and filesystem
                                                  chaos, asserting retry, quarantine,
                                                  and recovery invariants

OPTIONS:
  --scale tiny|small      input scale (default small)
  -o, --out FILE          output file (profile JSON / clone C source)
  --asm FILE              also write the clone as assembly text
  --seed N                synthesis seed
  --dynamic N             clone dynamic-instruction target
  --config NAME           machine config for validate (default base)
  --allow-degraded        downgrade fidelity-gate failures to warnings
                          (validate still prints the full report)
  --report FILE|-         write a machine-readable run report (stage
                          timings, cache hit rates, gate distances) as
                          JSON; `-` streams it to stdout and moves the
                          human output to stderr
  -j, --jobs N            worker threads for sweeps (default: all cores;
                          results are identical at any thread count)
  --grid small|dense      grid axes preset (default small: 32 cells;
                          dense: 10240 cells)
  --cells N               truncate the grid to its first N cells
  --shard N               cells per journaled shard (default 8)
  --limit N               instruction limit per grid cell (default all)
  --journal DIR           journal directory for grid sweeps (default
                          <tmp>/perfclone-grid-<kernel>); rerunning with
                          the same journal resumes, skipping completed
                          shards bit-identically
  --stream                stream grid rows as JSON lines to stdout as
                          shards complete (human output moves to stderr)
  --max-retries N         transient-failure retries per grid cell
                          (default 2; backoff is seeded and exponential)
  --cell-deadline N       pipeline cycle budget per grid cell; a cell over
                          budget fails permanently (default: unbounded)
  --keep-going            quarantine permanently-failing grid cells (typed
                          quarantine-*.json records in the journal) and
                          complete the sweep with degraded coverage
                          instead of aborting on the first failure
  --trace-out FILE        record span begin/end and instant events in
                          per-thread ring buffers and write them as Chrome
                          Trace Format JSON (open in Perfetto via
                          https://ui.perfetto.dev) when the command ends;
                          works with every verb
  --heartbeat MS          grid only: cadence of the live JSONL heartbeat
                          records the sampler thread emits on stderr
                          (cells/s, ETA, retries, RSS; default 1000,
                          0 disables); stdout is never touched

ENVIRONMENT:
  PERFCLONE_TRACE_RING    per-thread event-ring capacity for --trace-out
                          (default 16384; the oldest events are dropped,
                          and counted, when a ring wraps)
  PERFCLONE_TRACE_CAP     byte budget for in-memory packed dynamic traces
                          (default 1 GiB); over-cap captures spill to disk
                          and replay via mmap with identical results
  PERFCLONE_SPILL         set to 0 to disable spilling (over-cap workloads
                          then fall back to per-config re-interpretation)
  PERFCLONE_SPILL_DIR     directory for spilled traces (default: tmp)
  PERFCLONE_FAULTFS       arm the deterministic I/O chaos shim, e.g.
                          `seed=7,enospc=13,short=19,torn=11,corrupt=17,
                          scope=grid-journal` (rates are 1-in-N per
                          operation; scope is a path substring filter)
  PERFCLONE_GRID_FAULTS   inject deterministic grid cell faults, e.g.
                          `5=perm,9=trans:2` (cell 5 always fails, cell 9
                          fails its first two attempts)
";

/// When set, human-readable output goes to stderr so `--report -` can own
/// stdout for the JSON document.
static HUMAN_TO_STDERR: AtomicBool = AtomicBool::new(false);

/// Prints human-readable command output — to stdout normally, to stderr
/// while `--report -` owns stdout.
macro_rules! say {
    ($($t:tt)*) => {{
        if HUMAN_TO_STDERR.load(Ordering::Relaxed) {
            eprintln!($($t)*);
        } else {
            println!($($t)*);
        }
    }};
}

/// Structured results the subcommands contribute to a pending `--report`
/// document: rows the telemetry registry cannot derive on its own.
#[derive(Default)]
struct ReportExtras {
    workload: Option<String>,
    gate: Vec<GateAttribute>,
    sweep: Option<SweepStats>,
    degraded: Option<DegradedCoverage>,
    metrics: Vec<Metric>,
    timeline: Option<Timeline>,
}

/// Pending report extras; `Some` only while a `--report` run is active.
static EXTRAS: Mutex<Option<ReportExtras>> = Mutex::new(None);

fn extras_lock() -> std::sync::MutexGuard<'static, Option<ReportExtras>> {
    match EXTRAS.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn note_workload(name: &str) {
    if let Some(e) = extras_lock().as_mut() {
        e.workload = Some(name.to_string());
    }
}

fn note_gate(report: &ValidationReport) {
    if let Some(e) = extras_lock().as_mut() {
        e.gate = report
            .attributes
            .iter()
            .map(|a| GateAttribute {
                attribute: a.attribute.label().to_string(),
                delta: a.delta,
                warn_at: a.warn_at,
                fail_at: a.fail_at,
                verdict: a.verdict.label().to_string(),
            })
            .collect();
    }
}

fn note_sweep(configs: u64, wall_ns: u64, instrs: u64) {
    if let Some(e) = extras_lock().as_mut() {
        let secs = (wall_ns as f64 / 1e9).max(1e-9);
        e.sweep = Some(SweepStats {
            configs,
            wall_ns,
            configs_per_sec: configs as f64 / secs,
            instrs,
            instrs_per_sec: instrs as f64 / secs,
        });
    }
}

fn note_metric(name: &str, value: f64) {
    if let Some(e) = extras_lock().as_mut() {
        e.metrics.push(Metric { name: name.to_string(), value });
    }
}

/// Contributes the sampler's down-sampled series to a pending report
/// (dropped when the sampler recorded nothing).
fn note_timeline(timeline: Timeline) {
    if timeline.points.is_empty() {
        return;
    }
    if let Some(e) = extras_lock().as_mut() {
        e.timeline = Some(timeline);
    }
}

/// Maps a sweep's quarantine records into the report's degraded-coverage
/// section (a no-op for healthy sweeps).
fn note_degraded(outcome: &GridOutcome) {
    if outcome.quarantined.is_empty() {
        return;
    }
    if let Some(e) = extras_lock().as_mut() {
        e.degraded = Some(DegradedCoverage {
            total_cells: outcome.cells,
            covered_cells: outcome.rows.len() as u64,
            retries: outcome.retries,
            quarantined: outcome
                .quarantined
                .iter()
                .map(|q| QuarantinedCell {
                    cell: q.cell,
                    id: q.id.clone(),
                    kind: q.kind.clone(),
                    reason: q.reason.clone(),
                    attempts: q.attempts,
                })
                .collect(),
        });
    }
}

/// Assembles the run report from the telemetry snapshot plus whatever the
/// subcommand contributed, and writes it to `dest` (`-` = stdout).
fn write_report(cmd: &str, dest: &str) -> Result<(), String> {
    let extras = extras_lock().take().unwrap_or_default();
    let workload = extras.workload.unwrap_or_else(|| "-".to_string());
    let mut report = RunReport::from_snapshot(cmd, &workload, perfclone_obs::snapshot());
    report.gate = extras.gate;
    report.sweep = extras.sweep;
    report.degraded = extras.degraded;
    report.metrics = extras.metrics;
    report.timeline = extras.timeline;
    if perfclone_obs::trace_enabled() {
        let stats = perfclone_obs::trace_stats();
        report.trace = Some(TraceSummary {
            events: stats.events,
            dropped: stats.dropped,
            threads: stats.threads,
        });
    }
    let json = report.to_json().map_err(|e| format!("serializing report: {e}"))?;
    if dest == "-" {
        println!("{json}");
    } else {
        std::fs::write(dest, &json).map_err(|e| format!("writing {dest}: {e}"))?;
        say!("run report -> {dest}");
    }
    Ok(())
}

/// Writes the recorded event trace as Chrome Trace Format JSON to `dest`
/// and prints a one-line accounting of what landed in it.
fn write_trace(dest: &str) -> Result<(), String> {
    let json = perfclone_obs::chrome_trace();
    std::fs::write(dest, &json).map_err(|e| format!("writing {dest}: {e}"))?;
    let stats = perfclone_obs::trace_stats();
    say!(
        "event trace -> {dest} ({} events across {} thread(s), {} dropped to ring wrap); \
         open in Perfetto: https://ui.perfetto.dev",
        stats.events,
        stats.threads,
        stats.dropped
    );
    Ok(())
}

/// Dispatches a parsed command line.
///
/// # Errors
///
/// Returns a human-readable message for unknown commands, bad options, or
/// I/O failures.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let Some(cmd) = argv.first().map(String::as_str) else {
        println!("{USAGE}");
        return Ok(());
    };
    let rest = parse(&argv[1..])?;
    let report_dest = rest.report_dest().map(str::to_string);
    let trace_dest = rest.trace_out().map(str::to_string);
    if report_dest.is_some() || trace_dest.is_some() {
        // Start from a clean registry (and rewound event rings) so the
        // report and trace cover exactly this command.
        perfclone_obs::reset();
    }
    if report_dest.is_some() {
        *extras_lock() = Some(ReportExtras::default());
        HUMAN_TO_STDERR.store(report_dest.as_deref() == Some("-"), Ordering::Relaxed);
    }
    if trace_dest.is_some() {
        perfclone_obs::set_trace_enabled(true);
    }
    // Make `--jobs` the ambient parallelism for whatever the subcommand
    // fans out (currently the cache sweeps).
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(rest.jobs()?)
        .build()
        .map_err(|e| format!("building thread pool: {e}"))?;
    let result = pool.install(|| match cmd {
        "help" | "--help" | "-h" => {
            say!("{USAGE}");
            Ok(())
        }
        "list" => list(),
        "configs" => configs(),
        "profile" => profile(&rest),
        "synth" => synth(&rest),
        "clone" => clone_kernel(&rest),
        "validate" => validate(&rest),
        "sweep" => sweep(&rest),
        "dsweep" => dsweep(&rest),
        "grid" => grid(&rest),
        "disasm" => disasm(&rest),
        "report" => report(&rest),
        "statsim" => statsim(&rest),
        "selfcheck" => selfcheck(&rest),
        "chaos" => chaos(&rest),
        other => Err(format!("unknown command {other:?}")),
    });
    // Export the trace before the report so the report's `trace` summary
    // describes exactly what the file holds; disable tracing after the
    // report is written (it reads the enabled flag).
    let result = match &trace_dest {
        Some(dest) => result.and_then(|()| write_trace(dest)),
        None => result,
    };
    let result = if let Some(dest) = report_dest {
        let write_result = result.and_then(|()| write_report(cmd, &dest));
        HUMAN_TO_STDERR.store(false, Ordering::Relaxed);
        *extras_lock() = None;
        write_result
    } else {
        result
    };
    if trace_dest.is_some() {
        perfclone_obs::set_trace_enabled(false);
    }
    result
}

fn kernel_program(parsed: &Parsed, pos: usize) -> Result<(String, Program), String> {
    let name = parsed.positional.get(pos).ok_or_else(|| "missing kernel name".to_string())?;
    let kernel = perfclone_kernels::by_name(name)
        .ok_or_else(|| format!("unknown kernel {name:?} (see `perfclone list`)"))?;
    note_workload(name);
    Ok((name.clone(), kernel.build(parsed.scale()?).program))
}

/// Renders the per-stage wall-time footer `validate` / `selfcheck` /
/// `clone` print: every duration comes from the span registry, so a
/// `--jobs N` run reports the same stages (with pool fan-out folded into
/// the driving span) at any thread count.
fn stage_footer() -> Option<String> {
    let snap = perfclone_obs::snapshot();
    if snap.spans.is_empty() {
        return None;
    }
    let stages = RunReport::from_snapshot("", "", snap).stages;
    let parts: Vec<String> = stages
        .iter()
        .map(|s| {
            if s.calls == 1 {
                format!("{} {}", s.name, perfclone_obs::fmt_ns(s.total_ns))
            } else {
                format!("{} {} ({} calls)", s.name, perfclone_obs::fmt_ns(s.total_ns), s.calls)
            }
        })
        .collect();
    Some(format!("stage timings: {}", parts.join(" · ")))
}

fn list() -> Result<(), String> {
    let paper = perfclone_kernels::catalog().len();
    let mut t = Table::new(vec!["kernel".into(), "domain".into(), "population".into()]);
    for (i, k) in perfclone_kernels::catalog_extended().iter().enumerate() {
        let tag = if i < paper { "paper (Table 1)" } else { "extended" };
        t.row(vec![k.name().into(), k.domain().to_string(), tag.into()]);
    }
    say!("{}", t.render());
    Ok(())
}

fn all_configs() -> Vec<MachineConfig> {
    let mut v = vec![base_config()];
    v.extend(design_changes());
    v
}

fn configs() -> Result<(), String> {
    for c in all_configs() {
        say!("{c}");
    }
    Ok(())
}

fn profile(parsed: &Parsed) -> Result<(), String> {
    let (name, program) = kernel_program(parsed, 0)?;
    let profile = perfclone::profile_program(&program, u64::MAX).map_err(|e| e.to_string())?;
    let json = profile.to_json().map_err(|e| e.to_string())?;
    let out = parsed.opt(&["-o", "--out"]).map(str::to_string).unwrap_or(format!("{name}.json"));
    std::fs::write(&out, &json).map_err(|e| format!("writing {out}: {e}"))?;
    say!(
        "profiled {name}: {} instrs, {} SFG nodes, {} streams, {} branches -> {out}",
        profile.total_instrs,
        profile.nodes.len(),
        profile.streams.len(),
        profile.branches.len()
    );
    Ok(())
}

fn synth_params(parsed: &Parsed, profile: &WorkloadProfile) -> Result<SynthesisParams, String> {
    let mut params = SynthesisParams {
        target_dynamic: profile.total_instrs.clamp(100_000, 2_500_000),
        ..SynthesisParams::default()
    };
    if let Some(seed) = parsed.opt_u64(&["--seed"])? {
        params.seed = seed;
    }
    if let Some(dynamic) = parsed.opt_u64(&["--dynamic"])? {
        params.target_dynamic = dynamic;
    }
    Ok(params)
}

fn synth(parsed: &Parsed) -> Result<(), String> {
    let path = parsed.positional.first().ok_or_else(|| "missing profile path".to_string())?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let profile = WorkloadProfile::from_json(&json).map_err(|e| format!("parsing {path}: {e}"))?;
    let params = synth_params(parsed, &profile)?;
    let clone =
        Cloner::with_params(params).clone_program_from(&profile).map_err(|e| e.to_string())?;
    let c_out =
        parsed.opt(&["-o", "--out"]).map(str::to_string).unwrap_or(format!("{}.c", profile.name));
    std::fs::write(&c_out, perfclone::emit_c(&clone))
        .map_err(|e| format!("writing {c_out}: {e}"))?;
    say!(
        "synthesized {}: {} static instrs, {} streams -> {c_out}",
        clone.name(),
        clone.len(),
        clone.streams().len()
    );
    if let Some(asm) = parsed.opt(&["--asm"]) {
        std::fs::write(asm, perfclone_isa::disasm_program(&clone))
            .map_err(|e| format!("writing {asm}: {e}"))?;
        say!("assembly listing -> {asm}");
    }
    Ok(())
}

fn validate(parsed: &Parsed) -> Result<(), String> {
    let span = perfclone_obs::span!("cli.validate");
    let (name, program) = kernel_program(parsed, 0)?;
    let config = match parsed.opt(&["--config"]) {
        None => base_config(),
        Some(wanted) => all_configs()
            .into_iter()
            .find(|c| c.name == wanted)
            .ok_or_else(|| format!("unknown config {wanted:?} (see `perfclone configs`)"))?,
    };
    let cache = WorkloadCache::new();
    let profile = cache.profile(&name, &program, u64::MAX).map_err(|e| e.to_string())?;
    let params = synth_params(parsed, &profile)?;
    let clone =
        Cloner::with_params(params).clone_program_from(&profile).map_err(|e| e.to_string())?;
    // Fidelity gate first: re-profile the clone and compare the five
    // attribute families before the (microarchitecture-dependent)
    // side-by-side timing run. The clone's retired stream is captured once
    // as a packed trace (spilled to disk and mmapped back when over-cap);
    // the gate re-profiles by replaying it, and — when the capture
    // completed (halted within budget) — the same trace drives the timing
    // run below. Only a disabled or failed spill falls back to the direct
    // interpreter path, with identical results.
    let gate = Gate::default();
    let clone_key = format!("{name}.clone");
    let gate_trace = match cache.packed_trace(&clone_key, &clone, gate.profile_budget) {
        Ok(store) => Some(store),
        Err(e) if e.is_trace_fallback() => {
            eprintln!("perfclone: {e}; gating via direct re-profiling");
            None
        }
        Err(e) => return Err(e.to_string()),
    };
    let report = match &gate_trace {
        Some(store) => gate.report_store(&profile, &clone, store),
        None => gate.report(&profile, &clone),
    }
    .map_err(|e| e.to_string())?;
    note_gate(&report);
    say!("{}", report.render());
    if report.verdict() == Verdict::Fail {
        if parsed.allow_degraded() {
            eprintln!(
                "perfclone: warning: {} (continuing: --allow-degraded)",
                report.failure_summary()
            );
        } else {
            return Err(format!(
                "{} (rerun with --allow-degraded to continue)",
                report.failure_summary()
            ));
        }
    }
    // Side-by-side timing: the real program's trace goes through the
    // shared cache (captured once, replayed for whatever config was
    // picked); a completed gate trace is replayed directly for the clone.
    let real =
        run_timing_trace(&name, &program, &config, u64::MAX, &cache).map_err(|e| e.to_string())?;
    let synth = match gate_trace.as_ref().filter(|t| t.halted()) {
        Some(store) => run_timing_store(&clone, store, &config),
        None => run_timing_trace(&clone_key, &clone, &config, u64::MAX, &cache),
    }
    .map_err(|e| e.to_string())?;
    let cmp = PairComparison { real, synth };
    let fmt_rel = |e: Option<f64>| match e {
        Some(v) => format!("{:.1}%", 100.0 * v),
        None => "n/a (degenerate baseline)".to_string(),
    };
    let mut t = Table::new(vec!["metric".into(), "real".into(), "clone".into(), "error".into()]);
    t.row(vec![
        "IPC".into(),
        format!("{:.3}", cmp.real.report.ipc()),
        format!("{:.3}", cmp.synth.report.ipc()),
        fmt_rel(cmp.ipc_error_checked()),
    ]);
    t.row(vec![
        "power".into(),
        format!("{:.2}", cmp.real.power.average_power),
        format!("{:.2}", cmp.synth.power.average_power),
        fmt_rel(cmp.power_error_checked()),
    ]);
    t.row(vec![
        "L1D miss/instr".into(),
        format!("{:.4}", cmp.real.report.l1d_mpi()),
        format!("{:.4}", cmp.synth.report.l1d_mpi()),
        "-".into(),
    ]);
    t.row(vec![
        "bpred mispredict".into(),
        format!("{:.3}", cmp.real.report.bpred.mispredict_rate()),
        format!("{:.3}", cmp.synth.report.bpred.mispredict_rate()),
        "-".into(),
    ]);
    say!("{name} on {} :\n\n{}", config.name, t.render());
    // Durations come from the span registry (satisfying the same clock as
    // `--report`), so a `--jobs N` run prints consistent stage times.
    drop(span);
    if let Some(footer) = stage_footer() {
        say!("{footer}");
    }
    Ok(())
}

fn sweep(parsed: &Parsed) -> Result<(), String> {
    let (name, program) = kernel_program(parsed, 0)?;
    let profile = perfclone::profile_program(&program, u64::MAX).map_err(|e| e.to_string())?;
    let params = synth_params(parsed, &profile)?;
    let target_dynamic = params.target_dynamic;
    let clone =
        Cloner::with_params(params).clone_program_from(&profile).map_err(|e| e.to_string())?;
    let mut t = Table::new(vec!["config".into(), "MPI (real)".into(), "MPI (clone)".into()]);
    // Single-pass engine: each program's data trace is extracted once (the
    // two extractions fan over the installed `--jobs` pool) and all 28
    // configurations are evaluated by one stack-distance pass; the rows
    // come back in configuration order regardless of the thread count.
    let sweep_span = perfclone_obs::span!("cli.sweep");
    let start = std::time::Instant::now();
    let cmp = cache_sweep_pair_par(&program, &clone, &cache_sweep(), u64::MAX);
    let wall_ns = start.elapsed().as_nanos() as u64;
    drop(sweep_span);
    let configs = cmp.configs.len() as u64;
    // Each config re-evaluates both programs' reference streams, so the
    // sweep "represents" (real + clone) dynamic instructions per config.
    note_sweep(configs, wall_ns, (profile.total_instrs + target_dynamic) * configs);
    for ((cfg, r), s) in cmp.configs.iter().zip(&cmp.real_mpi).zip(&cmp.synth_mpi) {
        t.row(vec![cfg.to_string(), format!("{r:.5}"), format!("{s:.5}")]);
    }
    let pearson = perfclone::pearson(&cmp.real_mpi, &cmp.synth_mpi);
    note_metric("sweep.mpi.pearson", pearson);
    say!("{name} cache sweep:\n\n{}", t.render());
    say!("pearson r = {pearson:.3}");
    Ok(())
}

/// `perfclone dsweep <kernel>`: the Table-3 design-change timing sweep —
/// real program vs clone on the base machine and every single-parameter
/// design change. Both retired streams are captured once as packed traces
/// and replayed per configuration over the `--jobs` pool; when a capture
/// exceeds `PERFCLONE_TRACE_CAP` the engine re-interprets per config with
/// bit-identical results (the CI fallback smoke runs this command under a
/// deliberately tiny cap).
fn dsweep(parsed: &Parsed) -> Result<(), String> {
    let (name, program) = kernel_program(parsed, 0)?;
    let profile = perfclone::profile_program(&program, u64::MAX).map_err(|e| e.to_string())?;
    let params = synth_params(parsed, &profile)?;
    let target_dynamic = params.target_dynamic;
    let clone =
        Cloner::with_params(params).clone_program_from(&profile).map_err(|e| e.to_string())?;
    let sweep_span = perfclone_obs::span!("cli.dsweep");
    let start = std::time::Instant::now();
    let sweep = design_change_sweep_par(&program, &clone, &base_config(), u64::MAX)
        .map_err(|e| e.to_string())?;
    let wall_ns = start.elapsed().as_nanos() as u64;
    drop(sweep_span);
    let configs = 1 + sweep.changes.len() as u64;
    note_sweep(configs, wall_ns, (profile.total_instrs + target_dynamic) * configs);
    let fmt_rel = |e: Option<f64>| match e {
        Some(v) => format!("{:.1}%", 100.0 * v),
        None => "n/a".to_string(),
    };
    let mut t = Table::new(vec![
        "config".into(),
        "IPC (real)".into(),
        "IPC (clone)".into(),
        "IPC err".into(),
        "power err".into(),
    ]);
    let mut rows = vec![(base_config(), &sweep.base_real, &sweep.base_synth)];
    rows.extend(sweep.changes.iter().map(|c| (c.config, &c.real, &c.synth)));
    for (config, real, synth) in rows {
        let cmp = PairComparison { real: real.clone(), synth: synth.clone() };
        t.row(vec![
            config.name.into(),
            format!("{:.3}", cmp.real.report.ipc()),
            format!("{:.3}", cmp.synth.report.ipc()),
            fmt_rel(cmp.ipc_error_checked()),
            fmt_rel(cmp.power_error_checked()),
        ]);
    }
    say!("{name} design-change sweep ({configs} configs):\n\n{}", t.render());
    if let Some(footer) = stage_footer() {
        say!("{footer}");
    }
    Ok(())
}

/// Restores the prior `HUMAN_TO_STDERR` value on drop (so `--stream`'s
/// stdout takeover never leaks past the subcommand).
struct HumanToStderrGuard(bool);

impl Drop for HumanToStderrGuard {
    fn drop(&mut self) {
        HUMAN_TO_STDERR.store(self.0, Ordering::Relaxed);
    }
}

/// `perfclone grid <kernel>`: the sharded, resumable design-space sweep.
/// Cells of the `--grid` axes product are timed by replaying the
/// workload's packed trace (spilled to disk and mmapped back when it
/// outgrows `PERFCLONE_TRACE_CAP`), shards are journaled atomically in
/// `--journal` as they complete, and rerunning with the same journal
/// resumes bit-identically, re-executing only incomplete shards. Rows
/// stream to stdout as JSON lines under `--stream`; the IPC-vs-power
/// Pareto frontier is updated per shard and printed at the end.
fn grid(parsed: &Parsed) -> Result<(), String> {
    use std::io::Write as _;
    let span = perfclone_obs::span!("cli.grid");
    let (name, program) = kernel_program(parsed, 0)?;
    let axes = match parsed.opt(&["--grid"]) {
        None | Some("small") => GridAxes::small(),
        Some("dense") => GridAxes::dense(),
        Some(other) => return Err(format!("unknown grid {other:?} (use small or dense)")),
    };
    let scale = match parsed.scale()? {
        perfclone_kernels::Scale::Tiny => "tiny",
        perfclone_kernels::Scale::Small => "small",
    };
    let spec = GridSpec {
        workload: name.clone(),
        scale: scale.to_string(),
        limit: parsed.opt_u64(&["--limit"])?.unwrap_or(u64::MAX),
        axes,
        max_cells: parsed.opt_u64(&["--cells"])?.unwrap_or(u64::MAX),
        shard_size: parsed.opt_u64(&["--shard"])?.unwrap_or(8),
    };
    let journal_dir = match parsed.opt(&["--journal"]) {
        Some(dir) => std::path::PathBuf::from(dir),
        None => std::env::temp_dir().join(format!("perfclone-grid-{name}")),
    };
    let mut policy = GridPolicy {
        keep_going: parsed.keep_going(),
        cell_deadline: parsed.opt_u64(&["--cell-deadline"])?,
        seed: parsed.opt_u64(&["--seed"])?.unwrap_or(0),
        ..GridPolicy::default()
    };
    if let Some(retries) = parsed.opt_u64(&["--max-retries"])? {
        policy.max_retries =
            u32::try_from(retries).map_err(|_| "--max-retries is too large".to_string())?;
    }
    // The chaos harness's hook: deterministic per-cell faults from the
    // environment, None in ordinary runs.
    let injector = env_fault_injector();
    let stream = parsed.opt(&["--stream"]).is_some();
    let _stdout_guard =
        stream.then(|| HumanToStderrGuard(HUMAN_TO_STDERR.swap(true, Ordering::Relaxed)));
    let total_shards = spec.shard_count();
    say!(
        "{name} grid sweep: {} cells / {total_shards} shards (spec g{:016x}, journal {})",
        spec.cells(),
        spec.spec_hash(),
        journal_dir.display()
    );
    let cache = WorkloadCache::new();
    // Live telemetry: the sampler thread heartbeats JSONL on stderr and
    // accumulates the report's timeline. Stdout is untouched either way.
    let heartbeat_ms = parsed.heartbeat_ms()?;
    let sampler = (heartbeat_ms > 0).then(|| {
        Sampler::start(SamplerConfig {
            interval: std::time::Duration::from_millis(heartbeat_ms),
            emit_heartbeats: true,
            ..SamplerConfig::default()
        })
    });
    // (shards seen, rows so far) for progress lines and the running
    // frontier; shards land in arbitrary order, the merge is ordered.
    let progress = Mutex::new((0u64, Vec::<CellRow>::new()));
    let start = std::time::Instant::now();
    let outcome =
        run_grid_with(&program, &spec, &journal_dir, &cache, &policy, injector.as_deref(), |ev| {
            if stream {
                let mut out = std::io::stdout().lock();
                for row in ev.rows {
                    if let Ok(json) = serde_json::to_string(row) {
                        let _ = writeln!(out, "{json}");
                    }
                }
            }
            let mut g = match progress.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            g.0 += 1;
            g.1.extend_from_slice(ev.rows);
            let frontier = pareto_frontier(&g.1);
            let tag = if ev.resumed { "resumed" } else { "done" };
            say!(
                "shard {:>3}/{total_shards} {tag} (cells {}..{}); running pareto: {} points",
                g.0,
                ev.start,
                ev.end,
                frontier.len()
            );
        })
        .map_err(|e| e.to_string())?;
    let wall_ns = start.elapsed().as_nanos() as u64;
    if let Some(sampler) = sampler {
        note_timeline(sampler.stop());
    }
    note_sweep(outcome.cells, wall_ns, outcome.rows.iter().map(|r| r.instrs).sum());
    note_metric("grid.shards.executed", outcome.executed_shards as f64);
    note_metric("grid.shards.skipped", outcome.skipped_shards as f64);
    note_metric("grid.pareto.points", outcome.pareto.len() as f64);
    note_metric("grid.trace.spilled", if outcome.spilled_trace { 1.0 } else { 0.0 });
    note_metric("grid.retries", outcome.retries as f64);
    note_metric("grid.quarantined", outcome.quarantined.len() as f64);
    note_metric("grid.shards.recovered", outcome.recovered_shards as f64);
    note_degraded(&outcome);
    if let Some(out) = parsed.opt(&["-o", "--out"]) {
        let mut text = String::new();
        for row in &outcome.rows {
            text.push_str(&serde_json::to_string(row).map_err(|e| e.to_string())?);
            text.push('\n');
        }
        std::fs::write(out, &text).map_err(|e| format!("writing {out}: {e}"))?;
        say!("merged rows -> {out}");
    }
    let mut t = Table::new(vec!["cell".into(), "id".into(), "IPC".into(), "power (W)".into()]);
    for p in &outcome.pareto {
        t.row(vec![
            p.cell.to_string(),
            p.id.clone(),
            format!("{:.3}", p.ipc),
            format!("{:.2}", p.power),
        ]);
    }
    say!(
        "{name} grid: {} cells ({} shards executed, {} resumed from journal{}).\n\n\
         IPC-vs-power Pareto frontier ({} points):\n\n{}",
        outcome.cells,
        outcome.executed_shards,
        outcome.skipped_shards,
        if outcome.spilled_trace { "; trace spilled to disk, replayed via mmap" } else { "" },
        outcome.pareto.len(),
        t.render()
    );
    if outcome.retries > 0 || outcome.recovered_shards > 0 {
        say!(
            "resilience: {} transient retr{} · {} journal record(s) recovered",
            outcome.retries,
            if outcome.retries == 1 { "y" } else { "ies" },
            outcome.recovered_shards
        );
    }
    if !outcome.quarantined.is_empty() {
        let mut q = Table::new(vec![
            "cell".into(),
            "id".into(),
            "kind".into(),
            "attempts".into(),
            "reason".into(),
        ]);
        for rec in &outcome.quarantined {
            q.row(vec![
                rec.cell.to_string(),
                rec.id.clone(),
                rec.kind.clone(),
                rec.attempts.to_string(),
                rec.reason.clone(),
            ]);
        }
        say!(
            "degraded coverage: {}/{} cells have rows; {} quarantined \
             (delete the journal's quarantine-*.json records to retry):\n\n{}",
            outcome.rows.len(),
            outcome.cells,
            outcome.quarantined.len(),
            q.render()
        );
    }
    drop(span);
    if let Some(footer) = stage_footer() {
        say!("{footer}");
    }
    Ok(())
}

fn disasm(parsed: &Parsed) -> Result<(), String> {
    let (_, program) = kernel_program(parsed, 0)?;
    say!("{}", perfclone_isa::disasm_program(&program));
    Ok(())
}

fn report(parsed: &Parsed) -> Result<(), String> {
    // File-path positional: pretty-print a saved `--report` document.
    // Kernel name: the workload characterization report, as before.
    if let Some(arg) = parsed.positional.first() {
        if std::path::Path::new(arg).is_file() {
            let json = std::fs::read_to_string(arg).map_err(|e| format!("reading {arg}: {e}"))?;
            let run = RunReport::from_json(&json).map_err(|e| format!("parsing {arg}: {e}"))?;
            say!("{}", run.render());
            return Ok(());
        }
    }
    let (_, program) = kernel_program(parsed, 0)?;
    let profile = perfclone::profile_program(&program, u64::MAX).map_err(|e| e.to_string())?;
    say!("{}", perfclone_profile::render_report(&profile));
    Ok(())
}

/// `perfclone clone <kernel>`: the dissemination flow end-to-end through
/// the shared [`WorkloadCache`] — profile, synthesize, and judge the clone
/// with the fidelity gate — optionally emitting the clone as C (`-o`) and
/// the run report (`--report`).
fn clone_kernel(parsed: &Parsed) -> Result<(), String> {
    let span = perfclone_obs::span!("cli.clone");
    let (name, program) = kernel_program(parsed, 0)?;
    let cache = WorkloadCache::new();
    let profile = cache.profile(&name, &program, u64::MAX).map_err(|e| e.to_string())?;
    let params = synth_params(parsed, &profile)?;
    // Routes through the cache's clone memo (which re-requests the profile
    // internally), so `--report` documents real hit rates.
    let clone =
        cache.clone_program(&name, &program, u64::MAX, &params).map_err(|e| e.to_string())?;
    let gate = Gate::default();
    let report = gate.report(&profile, &clone).map_err(|e| e.to_string())?;
    note_gate(&report);
    say!("{}", report.render());
    if let Some(out) = parsed.opt(&["-o", "--out"]) {
        std::fs::write(out, perfclone::emit_c(&clone))
            .map_err(|e| format!("writing {out}: {e}"))?;
        say!("clone C source -> {out}");
    }
    if report.verdict() == Verdict::Fail && !parsed.allow_degraded() {
        return Err(format!(
            "{} (rerun with --allow-degraded to continue)",
            report.failure_summary()
        ));
    }
    drop(span);
    if let Some(footer) = stage_footer() {
        say!("{footer}");
    }
    Ok(())
}

fn statsim(parsed: &Parsed) -> Result<(), String> {
    use perfclone_statsim::{synth_trace, TraceParams};
    let (name, program) = kernel_program(parsed, 0)?;
    let profile = perfclone::profile_program(&program, u64::MAX).map_err(|e| e.to_string())?;
    let mut tp = TraceParams {
        length: profile.total_instrs.clamp(100_000, 1_000_000),
        ..TraceParams::default()
    };
    if let Some(n) = parsed.opt_u64(&["--dynamic"])? {
        tp.length = n;
    }
    if let Some(s) = parsed.opt_u64(&["--seed"])? {
        tp.seed = s;
    }
    let trace = synth_trace(&profile, &tp).map_err(|e| e.to_string())?;
    let config = base_config();
    let real = run_timing(&program, &config, u64::MAX).map_err(|e| e.to_string())?;
    let synth = perfclone_uarch::Pipeline::new(config).run(trace);
    let mut t = Table::new(vec!["metric".into(), "real".into(), "statsim trace".into()]);
    t.row(vec!["IPC".into(), format!("{:.3}", real.report.ipc()), format!("{:.3}", synth.ipc())]);
    t.row(vec![
        "L1D miss/instr".into(),
        format!("{:.4}", real.report.l1d_mpi()),
        format!("{:.4}", synth.l1d_mpi()),
    ]);
    say!(
        "{name} statistical simulation ({} synthetic instrs):

{}",
        tp.length,
        t.render()
    );
    Ok(())
}

/// Fault-injection self-check: for every kernel named on the command line
/// (default `crc32`), applies each [`Fault`] to the kernel's profile and
/// verifies the pipeline's contract — structure-breaking faults are
/// rejected with a typed error, structure-preserving ones synthesize a
/// clone whose fidelity-gate verdict against the pristine profile is
/// reported. Exits nonzero if any fault violates the contract.
fn selfcheck(parsed: &Parsed) -> Result<(), String> {
    let span = perfclone_obs::span!("cli.selfcheck");
    let names: Vec<String> = if parsed.positional.is_empty() {
        vec!["crc32".to_string()]
    } else {
        parsed.positional.clone()
    };
    let seed = parsed.opt_u64(&["--seed"])?.unwrap_or(0xC10_5E1F);
    let mut t = Table::new(vec!["kernel".into(), "fault".into(), "outcome".into()]);
    let mut violations = Vec::new();
    for name in &names {
        let kernel = perfclone_kernels::by_name(name)
            .ok_or_else(|| format!("unknown kernel {name:?} (see `perfclone list`)"))?;
        let program = kernel.build(parsed.scale()?).program;
        let profile = perfclone::profile_program(&program, u64::MAX).map_err(|e| e.to_string())?;
        let params = synth_params(parsed, &profile)?;
        let cloner = Cloner::with_params(params);
        let gate = Gate::default();
        for fault in Fault::ALL {
            let perturbed = FaultPlan::single(seed, fault).apply(&profile);
            let outcome = match cloner.clone_program_from(&perturbed) {
                Err(e) if fault.breaks_structure() => format!("rejected: {e}"),
                Err(e) => {
                    violations.push(format!("{name}/{}: unexpected rejection: {e}", fault.label()));
                    format!("UNEXPECTED rejection: {e}")
                }
                Ok(_) if fault.breaks_structure() => {
                    violations.push(format!(
                        "{name}/{}: structurally broken profile was accepted",
                        fault.label()
                    ));
                    "ACCEPTED broken profile".to_string()
                }
                Ok(clone) => match gate.report(&profile, &clone) {
                    Ok(report) => format!("clone gated: {}", report.verdict().label()),
                    Err(e) => format!("clone gated: {e}"),
                },
            };
            t.row(vec![name.clone(), fault.label().into(), outcome]);
        }
    }
    say!("{}", t.render());
    drop(span);
    if let Some(footer) = stage_footer() {
        say!("{footer}");
    }
    if violations.is_empty() {
        say!("selfcheck passed: every fault handled without a panic");
        Ok(())
    } else {
        Err(format!("selfcheck failed: {}", violations.join("; ")))
    }
}

/// Resilience self-check (`perfclone chaos [kernel]`): drives the sweep
/// supervisor and the journal durability layer through every failure path
/// — transient retry, permanent quarantine, degraded resume, typed abort
/// without `--keep-going`, truncated-record recovery, and row identity
/// against a fault-free run — under a deterministic injected cell-fault
/// schedule, with the seeded FaultFs chaos shim armed against the sweep's
/// own journal directory. Exits nonzero if any invariant is violated.
fn chaos(parsed: &Parsed) -> Result<(), String> {
    let span = perfclone_obs::span!("cli.chaos");
    let name = parsed.positional.first().cloned().unwrap_or_else(|| "crc32".to_string());
    let kernel = perfclone_kernels::by_name(&name)
        .ok_or_else(|| format!("unknown kernel {name:?} (see `perfclone list`)"))?;
    note_workload(&name);
    let program = kernel.build(parsed.scale()?).program;
    let seed = parsed.opt_u64(&["--seed"])?.unwrap_or(0xC7A0_5EED);
    let pid = std::process::id();
    let faulty_tag = format!("perfclone-chaos-faulty-{name}-{pid}");
    let faulty_dir = std::env::temp_dir().join(&faulty_tag);
    let clean_dir = std::env::temp_dir().join(format!("perfclone-chaos-clean-{name}-{pid}"));
    let _ = std::fs::remove_dir_all(&faulty_dir);
    let _ = std::fs::remove_dir_all(&clean_dir);

    // Arm the I/O chaos shim against the faulty journal only. Install is
    // process-global and first-wins: an ambient PERFCLONE_FAULTFS plan
    // keeps precedence, and the supervisor invariants below hold either
    // way (the shim exercises *extra* recovery paths, never different
    // results).
    let installed = faultfs::install(faultfs::FaultFsPlan {
        seed,
        enospc: 11,
        short: 13,
        torn: 7,
        corrupt: 9,
        scope: Some(faulty_tag.clone()),
    });
    if !installed && faultfs::active() {
        eprintln!("perfclone: chaos: a FaultFs plan is already installed; using it");
    }

    let scale = match parsed.scale()? {
        perfclone_kernels::Scale::Tiny => "tiny",
        perfclone_kernels::Scale::Small => "small",
    };
    let spec = GridSpec {
        workload: name.clone(),
        scale: scale.to_string(),
        limit: parsed.opt_u64(&["--limit"])?.unwrap_or(20_000),
        axes: GridAxes::small(),
        max_cells: parsed.opt_u64(&["--cells"])?.unwrap_or(12),
        shard_size: parsed.opt_u64(&["--shard"])?.unwrap_or(4),
    };
    // Deterministic cell-fault schedule: cells 2 and 9 fail permanently,
    // cell 5 needs two retries, cell 11 one — so the sweep must retry
    // exactly 3 times and quarantine exactly 2 cells.
    let schedule = "2=perm,5=trans:2,9=perm,11=trans";
    let injector =
        parse_fault_injector(schedule).ok_or("internal: chaos fault schedule did not parse")?;
    let expected_quarantined: Vec<u64> = vec![2, 9];
    let expected_retries = 3;
    // Extra retry headroom absorbs injected ENOSPC bursts on journal
    // writes; 1 ms backoff keeps the check fast while still sleeping.
    let policy = GridPolicy {
        keep_going: true,
        max_retries: 5,
        backoff_base_ms: 1,
        seed,
        ..GridPolicy::default()
    };
    let cache = WorkloadCache::new();
    let sweep = |dir: &std::path::Path, inject: bool| {
        run_grid_with(
            &program,
            &spec,
            dir,
            &cache,
            &policy,
            inject.then_some(injector.as_ref()),
            |_| {},
        )
    };
    let quarantined_cells =
        |o: &GridOutcome| o.quarantined.iter().map(|q| q.cell).collect::<Vec<u64>>();

    let mut checks: Vec<(&str, bool, String)> = Vec::new();

    // 1. A fresh keep-going sweep under faults completes with degraded
    //    coverage: every healthy cell has a row, every permanent failure
    //    a typed quarantine record, every transient fault a retry.
    let first = sweep(&faulty_dir, true).map_err(|e| format!("chaos sweep aborted: {e}"))?;
    checks.push((
        "keep-going completes with degraded coverage",
        first.rows.len() as u64 == spec.cells() - expected_quarantined.len() as u64,
        format!("{}/{} rows", first.rows.len(), spec.cells()),
    ));
    checks.push((
        "permanent faults quarantined with typed reasons",
        quarantined_cells(&first) == expected_quarantined
            && first.quarantined.iter().all(|q| q.kind == "injected" && q.attempts == 1),
        format!(
            "cells {:?}, kinds {:?}",
            quarantined_cells(&first),
            first.quarantined.iter().map(|q| q.kind.as_str()).collect::<Vec<_>>()
        ),
    ));
    checks.push((
        "transient faults retried to success",
        first.retries == expected_retries,
        format!("{} retries (expected {expected_retries})", first.retries),
    ));
    // 2. Resuming the degraded journal honours the quarantine records and
    //    reproduces the merged rows bit-identically (records the chaos
    //    shim tore or corrupted are demoted and re-executed en route).
    let resumed = sweep(&faulty_dir, true).map_err(|e| format!("chaos resume aborted: {e}"))?;
    checks.push((
        "degraded resume is bit-identical",
        resumed.rows == first.rows && quarantined_cells(&resumed) == expected_quarantined,
        format!(
            "{} rows, {} re-executed, {} recovered",
            resumed.rows.len(),
            resumed.executed_shards,
            resumed.recovered_shards
        ),
    ));

    // 3. Quarantine records converge to durable journal files. A torn
    //    rename may eat a freshly published record, but every supervised
    //    resume re-executes the affected shard and re-publishes it, so a
    //    handful of resumes must leave both records on disk.
    let records_persisted = |dir: &std::path::Path| {
        expected_quarantined.iter().all(|c| dir.join(format!("quarantine-{c:06}.json")).is_file())
    };
    let mut persist_resumes = 0u32;
    while !records_persisted(&faulty_dir) && persist_resumes < 6 {
        sweep(&faulty_dir, true).map_err(|e| format!("chaos republish aborted: {e}"))?;
        persist_resumes += 1;
    }
    checks.push((
        "quarantine records published to the journal",
        records_persisted(&faulty_dir),
        format!("durable after {persist_resumes} extra resume(s)"),
    ));

    // 4. Without --keep-going, a quarantined journal is a typed abort,
    //    not a silent partial result.
    let strict = run_grid(&program, &spec, &faulty_dir, &cache, |_| {});
    checks.push((
        "quarantined journal without --keep-going aborts typed",
        matches!(strict, Err(Error::DegradedJournal { .. })),
        match &strict {
            Err(e) => format!("error kind: {}", e.kind()),
            Ok(_) => "unexpectedly succeeded".to_string(),
        },
    ));

    // 5. A truncated shard record (torn rename, bit rot) demotes to
    //    pending and re-executes instead of poisoning the journal. When
    //    the chaos shim already tore the record away entirely, plant a
    //    half-written one so the demotion path always runs.
    let victim = faulty_dir.join("shard-000000.json");
    let torn_bytes = match std::fs::read(&victim) {
        Ok(bytes) => bytes[..bytes.len() / 2].to_vec(),
        Err(_) => b"{\"spec_hash\":".to_vec(),
    };
    std::fs::write(&victim, &torn_bytes)
        .map_err(|e| format!("truncating {}: {e}", victim.display()))?;
    let recovered_run =
        sweep(&faulty_dir, true).map_err(|e| format!("chaos recovery aborted: {e}"))?;
    checks.push((
        "truncated record demoted and re-executed",
        recovered_run.recovered_shards >= 1 && recovered_run.rows == first.rows,
        format!("{} record(s) recovered", recovered_run.recovered_shards),
    ));

    // 6. The degraded sweep's surviving rows match a fault-free sweep
    //    exactly: supervision never perturbs what it does not quarantine.
    let clean = sweep(&clean_dir, false).map_err(|e| format!("clean sweep aborted: {e}"))?;
    let clean_subset: Vec<CellRow> =
        clean.rows.iter().filter(|r| !expected_quarantined.contains(&r.cell)).cloned().collect();
    checks.push((
        "non-quarantined rows match a fault-free sweep",
        clean.quarantined.is_empty() && clean_subset == first.rows,
        format!("{} clean rows compared", clean_subset.len()),
    ));

    let mut t = Table::new(vec!["invariant".into(), "verdict".into(), "detail".into()]);
    let mut violations = Vec::new();
    for (label, pass, detail) in &checks {
        t.row(vec![
            (*label).to_string(),
            if *pass { "ok".into() } else { "VIOLATED".into() },
            detail.clone(),
        ]);
        if !pass {
            violations.push(format!("{label} ({detail})"));
        }
    }
    let counts = faultfs::injected();
    say!("{name} chaos self-check:\n\n{}", t.render());
    say!(
        "faultfs: {} · {} enospc, {} short writes, {} torn renames, {} corruptions injected",
        if faultfs::active() { "armed" } else { "inert" },
        counts.enospc,
        counts.short,
        counts.torn,
        counts.corrupt
    );
    note_degraded(&first);
    note_metric("chaos.retries", first.retries as f64);
    note_metric("chaos.quarantined", first.quarantined.len() as f64);
    note_metric("chaos.violations", violations.len() as f64);
    drop(span);
    if let Some(footer) = stage_footer() {
        say!("{footer}");
    }
    if violations.is_empty() {
        let _ = std::fs::remove_dir_all(&faulty_dir);
        let _ = std::fs::remove_dir_all(&clean_dir);
        say!("chaos passed: every resilience invariant held");
        Ok(())
    } else {
        Err(format!(
            "chaos failed: {} (journal kept at {})",
            violations.join("; "),
            faulty_dir.display()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<(), String> {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        dispatch(&argv)
    }

    #[test]
    fn help_and_list_work() {
        run(&["help"]).unwrap();
        run(&["list"]).unwrap();
        run(&["configs"]).unwrap();
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&["frobnicate"]).is_err());
        assert!(run(&["validate", "not-a-kernel"]).is_err());
    }

    #[test]
    fn profile_synth_round_trip() {
        let dir = std::env::temp_dir();
        let json = dir.join("cli_test_profile.json");
        let c = dir.join("cli_test_clone.c");
        let asm = dir.join("cli_test_clone.s");
        run(&["profile", "crc32", "--scale", "tiny", "-o", json.to_str().unwrap()]).unwrap();
        run(&[
            "synth",
            json.to_str().unwrap(),
            "-o",
            c.to_str().unwrap(),
            "--asm",
            asm.to_str().unwrap(),
            "--dynamic",
            "20000",
        ])
        .unwrap();
        let c_text = std::fs::read_to_string(&c).unwrap();
        assert!(c_text.contains("asm volatile"));
        let asm_text = std::fs::read_to_string(&asm).unwrap();
        assert!(asm_text.contains("halt"));
    }

    #[test]
    fn validate_runs_on_tiny_kernel() {
        run(&["validate", "bitcount", "--scale", "tiny", "--dynamic", "20000"]).unwrap();
    }

    #[test]
    fn dsweep_runs_on_tiny_kernel() {
        run(&["dsweep", "crc32", "--scale", "tiny", "--dynamic", "20000", "--jobs", "2"]).unwrap();
        assert!(run(&["dsweep", "not-a-kernel"]).is_err());
    }

    #[test]
    fn sweep_runs_with_explicit_jobs() {
        run(&["sweep", "crc32", "--scale", "tiny", "--dynamic", "20000", "--jobs", "2"]).unwrap();
        let e = run(&["sweep", "crc32", "--scale", "tiny", "--jobs", "0"]).unwrap_err();
        assert!(e.contains("--jobs"));
    }

    #[test]
    fn report_and_statsim_run_on_tiny_kernels() {
        run(&["report", "susan", "--scale", "tiny"]).unwrap();
        run(&["statsim", "crc32", "--scale", "tiny", "--dynamic", "20000"]).unwrap();
    }

    #[test]
    fn extended_kernels_are_reachable() {
        run(&["validate", "viterbi", "--scale", "tiny", "--dynamic", "20000"]).unwrap();
        run(&["disasm", "sobel", "--scale", "tiny"]).unwrap();
    }

    /// `--report` runs reset the process-global telemetry registry and
    /// share the extras slot, so they serialize on this lock.
    fn report_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::OnceLock<Mutex<()>> = std::sync::OnceLock::new();
        match LOCK.get_or_init(|| Mutex::new(())).lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn clone_writes_a_parseable_run_report() {
        let _g = report_lock();
        let path = std::env::temp_dir().join("cli_test_clone_report.json");
        run(&[
            "clone",
            "crc32",
            "--scale",
            "tiny",
            "--dynamic",
            "20000",
            "--report",
            path.to_str().unwrap(),
        ])
        .unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        let report = RunReport::from_json(&json).unwrap();
        assert_eq!(report.command, "clone");
        assert_eq!(report.workload, "crc32");
        let stage = |n: &str| report.stages.iter().any(|s| s.name == n);
        assert!(stage("profile.collect"), "stages: {:?}", report.stages);
        assert!(stage("synth.gen"));
        assert!(stage("validate.gate"));
        // The clone memo re-requests the profile, so the profile cache
        // sees a hit.
        let profile_cache = report.caches.iter().find(|c| c.name == "profile").unwrap();
        assert!(profile_cache.lookups > profile_cache.computes);
        assert_eq!(report.gate.len(), 5, "gate: {:?}", report.gate);
        assert!(report.gate.iter().all(|a| a.delta.is_finite()));
        // And the saved document pretty-prints through `perfclone report`.
        run(&["report", path.to_str().unwrap()]).unwrap();
    }

    #[test]
    fn report_to_stdout_and_sweep_stats() {
        let _g = report_lock();
        run(&["clone", "crc32", "--scale", "tiny", "--dynamic", "20000", "--report", "-"]).unwrap();
        let path = std::env::temp_dir().join("cli_test_sweep_report.json");
        run(&[
            "sweep",
            "crc32",
            "--scale",
            "tiny",
            "--dynamic",
            "20000",
            "--jobs",
            "2",
            "--report",
            path.to_str().unwrap(),
        ])
        .unwrap();
        let report = RunReport::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let sweep = report.sweep.expect("sweep stats populated");
        assert_eq!(sweep.configs, 28);
        assert!(sweep.configs_per_sec > 0.0);
        assert!(report.metrics.iter().any(|m| m.name == "sweep.mpi.pearson"));
    }

    #[test]
    fn grid_sweeps_and_resumes_bit_identically() {
        let pid = std::process::id();
        let journal = std::env::temp_dir().join(format!("cli_test_grid_journal-{pid}"));
        let _ = std::fs::remove_dir_all(&journal);
        let out1 = std::env::temp_dir().join(format!("cli_test_grid_rows1-{pid}.jsonl"));
        let out2 = std::env::temp_dir().join(format!("cli_test_grid_rows2-{pid}.jsonl"));
        let args = |out: &std::path::Path| {
            vec![
                "grid".to_string(),
                "crc32".to_string(),
                "--scale".into(),
                "tiny".into(),
                "--limit".into(),
                "20000".into(),
                "--cells".into(),
                "8".into(),
                "--shard".into(),
                "3".into(),
                "--jobs".into(),
                "2".into(),
                "--journal".into(),
                journal.to_str().unwrap().into(),
                "-o".into(),
                out.to_str().unwrap().into(),
            ]
        };
        dispatch(&args(&out1)).unwrap();
        // Second run resumes from the full journal: every shard skipped,
        // merged rows byte-identical.
        dispatch(&args(&out2)).unwrap();
        let a = std::fs::read(&out1).unwrap();
        let b = std::fs::read(&out2).unwrap();
        assert!(!a.is_empty());
        assert_eq!(a, b, "resumed rows must be bit-identical");
        assert_eq!(a.iter().filter(|&&c| c == b'\n').count(), 8, "one JSONL row per cell");
        let _ = std::fs::remove_dir_all(&journal);
        let _ = std::fs::remove_file(&out1);
        let _ = std::fs::remove_file(&out2);
    }

    #[test]
    fn chaos_selfcheck_passes() {
        // The chaos verb's supervisor invariants are deterministic even
        // when another test in this process already claimed the global
        // FaultFs plan slot (install is first-wins), so this holds at any
        // test interleaving.
        let _g = report_lock();
        run(&["chaos", "crc32", "--scale", "tiny"]).unwrap();
        assert!(run(&["chaos", "not-a-kernel"]).is_err());
    }

    #[test]
    fn selfcheck_handles_every_fault() {
        run(&["selfcheck", "crc32", "--scale", "tiny", "--dynamic", "20000"]).unwrap();
        assert!(run(&["selfcheck", "not-a-kernel"]).is_err());
    }

    #[test]
    fn bad_config_name_is_reported() {
        let e =
            run(&["validate", "crc32", "--scale", "tiny", "--config", "warp-drive"]).unwrap_err();
        assert!(e.contains("warp-drive"));
    }
}
