//! Minimal dependency-free option parsing.

use std::collections::HashMap;

/// Parsed command-line tail: positional arguments plus `--key value` /
/// `-k value` options (flags without values are stored as empty strings).
#[derive(Debug, Default)]
pub struct Parsed {
    pub positional: Vec<String>,
    options: HashMap<String, String>,
}

/// Option keys that take a value; everything else starting with `-` is a
/// bare flag.
const VALUED: &[&str] = &[
    "-o",
    "--out",
    "--asm",
    "--scale",
    "--seed",
    "--dynamic",
    "--config",
    "-j",
    "--jobs",
    "--report",
    "--grid",
    "--cells",
    "--shard",
    "--journal",
    "--limit",
    "--max-retries",
    "--cell-deadline",
    "--trace-out",
    "--heartbeat",
];

/// Splits `argv` into positionals and options.
///
/// # Errors
///
/// Returns an error when a valued option is missing its value.
pub fn parse(argv: &[String]) -> Result<Parsed, String> {
    let mut out = Parsed::default();
    let mut it = argv.iter().peekable();
    while let Some(a) = it.next() {
        if a.starts_with('-') {
            if VALUED.contains(&a.as_str()) {
                let v = it.next().ok_or_else(|| format!("option {a} requires a value"))?;
                out.options.insert(a.clone(), v.clone());
            } else {
                out.options.insert(a.clone(), String::new());
            }
        } else {
            out.positional.push(a.clone());
        }
    }
    Ok(out)
}

impl Parsed {
    /// Returns the value of the first present key among `keys`.
    pub fn opt(&self, keys: &[&str]) -> Option<&str> {
        keys.iter().find_map(|k| self.options.get(*k)).map(String::as_str)
    }

    /// Parses an integer option.
    ///
    /// # Errors
    ///
    /// Returns an error when the value is present but not an integer.
    pub fn opt_u64(&self, keys: &[&str]) -> Result<Option<u64>, String> {
        match self.opt(keys) {
            None => Ok(None),
            Some(v) => v
                .parse::<u64>()
                .map(Some)
                .map_err(|_| format!("expected an integer for {}, got {v:?}", keys[0])),
        }
    }

    /// Returns the worker-thread count selected by `-j`/`--jobs`
    /// (default: the machine's available parallelism).
    ///
    /// # Errors
    ///
    /// Returns an error when the value is not a positive integer.
    pub fn jobs(&self) -> Result<usize, String> {
        match self.opt(&["-j", "--jobs"]) {
            None => Ok(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)),
            Some(v) => match v.parse::<usize>() {
                Ok(n) if n >= 1 => Ok(n),
                _ => Err(format!("expected a positive integer for --jobs, got {v:?}")),
            },
        }
    }

    /// Whether `--allow-degraded` was passed: fidelity-gate failures are
    /// downgraded to warnings instead of aborting the command.
    pub fn allow_degraded(&self) -> bool {
        self.opt(&["--allow-degraded"]).is_some()
    }

    /// Whether `--keep-going` was passed: permanently-failing sweep cells
    /// are quarantined (with typed records in the journal) instead of
    /// aborting the sweep.
    pub fn keep_going(&self) -> bool {
        self.opt(&["--keep-going"]).is_some()
    }

    /// Destination of the machine-readable run report selected by
    /// `--report` (`-` streams the JSON to stdout), or `None` when no
    /// report was requested.
    pub fn report_dest(&self) -> Option<&str> {
        self.opt(&["--report"])
    }

    /// Destination file of the Chrome Trace Format event trace selected
    /// by `--trace-out`, or `None` when tracing was not requested.
    pub fn trace_out(&self) -> Option<&str> {
        self.opt(&["--trace-out"])
    }

    /// Heartbeat cadence in milliseconds selected by `--heartbeat`
    /// (default 1000; 0 disables the sampler).
    ///
    /// # Errors
    ///
    /// Returns an error when the value is not an integer.
    pub fn heartbeat_ms(&self) -> Result<u64, String> {
        Ok(self.opt_u64(&["--heartbeat"])?.unwrap_or(1000))
    }

    /// Returns the input scale selected by `--scale` (default small).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown scale names.
    pub fn scale(&self) -> Result<perfclone_kernels::Scale, String> {
        match self.opt(&["--scale"]) {
            None | Some("small") => Ok(perfclone_kernels::Scale::Small),
            Some("tiny") => Ok(perfclone_kernels::Scale::Tiny),
            Some(other) => Err(format!("unknown scale {other:?} (use tiny or small)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn positionals_and_options() {
        let p = parse(&argv(&["profile", "crc32", "--scale", "tiny", "-o", "x.json"])).unwrap();
        assert_eq!(p.positional, vec!["profile", "crc32"]);
        assert_eq!(p.opt(&["--scale"]), Some("tiny"));
        assert_eq!(p.opt(&["-o", "--out"]), Some("x.json"));
        assert_eq!(p.opt(&["--missing"]), None);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&argv(&["synth", "--seed"])).is_err());
    }

    #[test]
    fn scale_parses() {
        let p = parse(&argv(&["x", "--scale", "tiny"])).unwrap();
        assert_eq!(p.scale().unwrap(), perfclone_kernels::Scale::Tiny);
        let q = parse(&argv(&["x"])).unwrap();
        assert_eq!(q.scale().unwrap(), perfclone_kernels::Scale::Small);
        let r = parse(&argv(&["x", "--scale", "huge"])).unwrap();
        assert!(r.scale().is_err());
    }

    #[test]
    fn jobs_option() {
        let p = parse(&argv(&["sweep", "crc32", "--jobs", "3"])).unwrap();
        assert_eq!(p.jobs().unwrap(), 3);
        let q = parse(&argv(&["sweep", "crc32", "-j", "1"])).unwrap();
        assert_eq!(q.jobs().unwrap(), 1);
        let d = parse(&argv(&["sweep", "crc32"])).unwrap();
        assert!(d.jobs().unwrap() >= 1);
        let bad = parse(&argv(&["sweep", "crc32", "--jobs", "0"])).unwrap();
        assert!(bad.jobs().is_err());
        let worse = parse(&argv(&["sweep", "crc32", "--jobs", "many"])).unwrap();
        assert!(worse.jobs().is_err());
    }

    #[test]
    fn allow_degraded_flag() {
        let p = parse(&argv(&["validate", "crc32", "--allow-degraded"])).unwrap();
        assert!(p.allow_degraded());
        let q = parse(&argv(&["validate", "crc32"])).unwrap();
        assert!(!q.allow_degraded());
    }

    #[test]
    fn report_destination() {
        let p = parse(&argv(&["clone", "crc32", "--report", "out.json"])).unwrap();
        assert_eq!(p.report_dest(), Some("out.json"));
        let q = parse(&argv(&["clone", "crc32", "--report", "-"])).unwrap();
        assert_eq!(q.report_dest(), Some("-"));
        let r = parse(&argv(&["clone", "crc32"])).unwrap();
        assert_eq!(r.report_dest(), None);
        assert!(parse(&argv(&["clone", "crc32", "--report"])).is_err());
    }

    #[test]
    fn supervision_options() {
        let p = parse(&argv(&[
            "grid",
            "crc32",
            "--keep-going",
            "--max-retries",
            "4",
            "--cell-deadline",
            "500000",
        ]))
        .unwrap();
        assert!(p.keep_going());
        assert_eq!(p.opt_u64(&["--max-retries"]).unwrap(), Some(4));
        assert_eq!(p.opt_u64(&["--cell-deadline"]).unwrap(), Some(500_000));
        let q = parse(&argv(&["grid", "crc32"])).unwrap();
        assert!(!q.keep_going());
        assert_eq!(q.opt_u64(&["--max-retries"]).unwrap(), None);
    }

    #[test]
    fn trace_and_heartbeat_options() {
        let p = parse(&argv(&["grid", "crc32", "--trace-out", "t.json", "--heartbeat", "250"]))
            .unwrap();
        assert_eq!(p.trace_out(), Some("t.json"));
        assert_eq!(p.heartbeat_ms().unwrap(), 250);
        let q = parse(&argv(&["grid", "crc32"])).unwrap();
        assert_eq!(q.trace_out(), None);
        assert_eq!(q.heartbeat_ms().unwrap(), 1000, "heartbeats default on at 1 s");
        assert!(parse(&argv(&["grid", "--trace-out"])).is_err());
        let z = parse(&argv(&["grid", "crc32", "--heartbeat", "0"])).unwrap();
        assert_eq!(z.heartbeat_ms().unwrap(), 0);
    }

    #[test]
    fn u64_option() {
        let p = parse(&argv(&["x", "--seed", "42"])).unwrap();
        assert_eq!(p.opt_u64(&["--seed"]).unwrap(), Some(42));
        let q = parse(&argv(&["x", "--seed", "nope"])).unwrap();
        assert!(q.opt_u64(&["--seed"]).is_err());
    }
}
