//! Crash/kill harness for the sharded sweep engine: a `perfclone grid`
//! child process is SIGKILLed mid-sweep, then resumed against the same
//! journal, and the merged results must be byte-identical to an
//! uninterrupted run — with only the incomplete shards re-executed.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_perfclone");

/// 16 cells / shard 2 = 8 shards: enough granularity that a mid-sweep
/// kill reliably leaves some shards journaled and some not.
const SHARDS: usize = 8;

fn grid_cmd(journal: &Path, out: &Path) -> Command {
    let mut cmd = Command::new(BIN);
    cmd.args([
        "grid", "crc32", "--scale", "tiny", "--limit", "20000", "--cells", "16", "--shard", "2",
        "--jobs", "1",
    ]);
    cmd.arg("--journal").arg(journal);
    cmd.arg("-o").arg(out);
    cmd.stdout(Stdio::piped()).stderr(Stdio::piped());
    cmd
}

fn shard_files(journal: &Path) -> Vec<String> {
    let Ok(entries) = std::fs::read_dir(journal) else { return Vec::new() };
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("shard-") && n.ends_with(".json"))
        .collect();
    names.sort();
    names
}

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("perfclone-grid-resume-{}-{name}", std::process::id()))
}

#[test]
fn killed_sweep_resumes_bit_identically() {
    let ref_journal = temp("ref-journal");
    let crash_journal = temp("crash-journal");
    let ref_out = temp("ref.jsonl");
    let resumed_out = temp("resumed.jsonl");
    let _ = std::fs::remove_dir_all(&ref_journal);
    let _ = std::fs::remove_dir_all(&crash_journal);

    // Uninterrupted reference run.
    let output = grid_cmd(&ref_journal, &ref_out).output().expect("run reference sweep");
    assert!(output.status.success(), "reference sweep failed: {output:?}");
    let reference = std::fs::read(&ref_out).expect("reference rows exist");
    assert_eq!(shard_files(&ref_journal).len(), SHARDS);

    // Crash run: stretch each shard so the kill lands mid-sweep, wait for
    // at least two journaled shards, then SIGKILL the child.
    let mut child = grid_cmd(&crash_journal, &temp("crash.jsonl"))
        .env("PERFCLONE_GRID_SHARD_DELAY_MS", "300")
        .spawn()
        .expect("spawn crash sweep");
    let deadline = Instant::now() + Duration::from_secs(60);
    while shard_files(&crash_journal).len() < 2 {
        assert!(Instant::now() < deadline, "no shards journaled before deadline");
        if let Some(status) = child.try_wait().expect("poll child") {
            panic!("sweep finished before it could be killed: {status:?}");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().expect("SIGKILL the sweep");
    let status = child.wait().expect("reap the sweep");
    assert!(!status.success(), "killed sweep must not exit cleanly");
    let journaled = shard_files(&crash_journal).len();
    assert!(
        (2..SHARDS).contains(&journaled),
        "kill must land mid-sweep: {journaled}/{SHARDS} shards journaled"
    );

    // Resume against the half-written journal (no delay this time).
    let output = grid_cmd(&crash_journal, &resumed_out).output().expect("run resumed sweep");
    assert!(output.status.success(), "resumed sweep failed: {output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("resumed"),
        "resume must report journal-skipped shards, got:\n{stdout}"
    );
    assert_eq!(shard_files(&crash_journal).len(), SHARDS);

    let resumed = std::fs::read(&resumed_out).expect("resumed rows exist");
    assert!(!reference.is_empty());
    assert_eq!(reference, resumed, "resumed merge must be bit-identical to the uninterrupted run");

    let _ = std::fs::remove_dir_all(&ref_journal);
    let _ = std::fs::remove_dir_all(&crash_journal);
    let _ = std::fs::remove_file(&ref_out);
    let _ = std::fs::remove_file(&resumed_out);
    let _ = std::fs::remove_file(temp("crash.jsonl"));
}

/// A journal written by one grid spec must refuse to resume another.
#[test]
fn journal_refuses_a_different_spec() {
    let journal = temp("mismatch-journal");
    let _ = std::fs::remove_dir_all(&journal);
    let out = temp("mismatch.jsonl");
    let output = grid_cmd(&journal, &out).output().expect("seed the journal");
    assert!(output.status.success(), "seed sweep failed: {output:?}");

    // Same journal, different limit → different spec hash.
    let mut cmd = Command::new(BIN);
    cmd.args([
        "grid", "crc32", "--scale", "tiny", "--limit", "10000", "--cells", "16", "--shard", "2",
    ]);
    cmd.arg("--journal").arg(&journal);
    let output = cmd.output().expect("run mismatched sweep");
    assert!(!output.status.success(), "mismatched spec must be rejected");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("grid spec"), "typed mismatch error expected, got:\n{stderr}");

    let _ = std::fs::remove_dir_all(&journal);
    let _ = std::fs::remove_file(&out);
}
