//! Stdout purity under machine-readable output: when `perfclone grid`
//! runs with `--stream --report -`, stdout carries *only* JSON (one row
//! per line plus the final run report) while progress chatter, the
//! Pareto table, and telemetry heartbeats all route to stderr. A single
//! stray human line would corrupt downstream `| jq` pipelines, so every
//! stdout line is parsed here.

use serde::Value;
use std::path::PathBuf;
use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_perfclone");

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("perfclone-stdout-json-{}-{name}", std::process::id()))
}

/// Looks up a key in an `Obj` value.
fn field<'v>(v: &'v Value, key: &str) -> Option<&'v Value> {
    match v {
        Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, fv)| fv),
        _ => None,
    }
}

#[test]
fn streamed_grid_stdout_is_pure_json() {
    let journal = temp("journal");
    let trace = temp("trace.json");
    let _ = std::fs::remove_dir_all(&journal);
    let _ = std::fs::remove_file(&trace);

    let mut cmd = Command::new(BIN);
    cmd.args([
        "grid",
        "crc32",
        "--scale",
        "tiny",
        "--limit",
        "20000",
        "--cells",
        "16",
        "--shard",
        "4",
        "--jobs",
        "2",
        "--stream",
        "--report",
        "-",
        "--heartbeat",
        "25",
    ]);
    cmd.arg("--trace-out").arg(&trace);
    cmd.arg("--journal").arg(&journal);
    cmd.stdout(Stdio::piped()).stderr(Stdio::piped());
    let output = cmd.output().expect("run streamed grid sweep");
    assert!(output.status.success(), "grid sweep failed: {output:?}");

    // Every stdout line must parse as JSON: cell rows first, exactly one
    // trailing run report.
    let stdout = String::from_utf8(output.stdout).expect("stdout is UTF-8");
    let lines: Vec<&str> = stdout.lines().filter(|l| !l.trim().is_empty()).collect();
    assert!(!lines.is_empty(), "streamed sweep produced no stdout");
    let mut rows = 0u64;
    let mut reports = 0u64;
    for (i, line) in lines.iter().enumerate() {
        let value: Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("stdout line {} is not JSON ({e}): {line:?}", i + 1));
        assert!(
            matches!(value, Value::Obj(_)),
            "stdout line {} is not a JSON object: {line:?}",
            i + 1
        );
        if let Some(version) = field(&value, "report_version") {
            reports += 1;
            assert_eq!(i, lines.len() - 1, "run report must be the final stdout line");
            assert_eq!(*version, Value::U64(2));
            assert!(
                matches!(field(&value, "timeline"), Some(Value::Obj(_))),
                "report should carry the sampled timeline"
            );
            assert!(
                matches!(field(&value, "trace"), Some(Value::Obj(_))),
                "report should carry the trace summary"
            );
        } else {
            rows += 1;
            assert!(
                field(&value, "cell").is_some(),
                "row line {} lacks a cell index: {line:?}",
                i + 1
            );
        }
    }
    assert_eq!(rows, 16, "one JSON line per swept cell");
    assert_eq!(reports, 1, "exactly one run report on stdout");

    // Heartbeats land on stderr — never stdout — and are themselves JSONL.
    let stderr = String::from_utf8_lossy(&output.stderr);
    let heartbeats: Vec<&str> =
        stderr.lines().filter(|l| l.contains("\"type\":\"heartbeat\"")).collect();
    assert!(!heartbeats.is_empty(), "25 ms cadence must produce heartbeats on stderr");
    for hb in &heartbeats {
        let value: Value = serde_json::from_str(hb)
            .unwrap_or_else(|e| panic!("heartbeat is not JSON ({e}): {hb:?}"));
        assert_eq!(field(&value, "type"), Some(&Value::Str("heartbeat".into())));
        assert!(
            matches!(field(&value, "cells_total"), Some(Value::U64(_))),
            "heartbeat lacks cells_total: {hb:?}"
        );
    }
    assert!(
        stderr.contains("running pareto"),
        "progress chatter must still reach the operator on stderr"
    );

    // The trace file is valid Chrome Trace Format JSON.
    let trace_text = std::fs::read_to_string(&trace).expect("trace file written");
    let trace_json: Value = serde_json::from_str(&trace_text).expect("trace file is valid JSON");
    match field(&trace_json, "traceEvents") {
        Some(Value::Arr(events)) => assert!(!events.is_empty(), "trace must contain events"),
        other => panic!("traceEvents must be an array, got {other:?}"),
    }

    let _ = std::fs::remove_dir_all(&journal);
    let _ = std::fs::remove_file(&trace);
}
