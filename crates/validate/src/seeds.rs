//! Deterministic per-cell seed derivation for parallel sweeps.
//!
//! A parallel experiment fans (workload × configuration) cells over a
//! thread pool. Every cell that needs randomness (clone synthesis,
//! statistical trace generation) must get a seed that is a pure function
//! of the experiment's root seed and the cell's identity — never of
//! scheduling order — so the whole sweep is bit-identical whether it runs
//! on one thread or sixteen.

/// SplitMix64 finalizer: a bijective avalanche mix over `u64`.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the RNG seed for one (workload × configuration) cell of a
/// sweep.
///
/// The result is a pure function of `(root, workload, config_index)`:
/// the same triple always yields the same seed, and the derivation chain
/// folds in the workload name's length and bytes so that distinct cells
/// get distinct seeds (up to the negligible 2⁻⁶⁴ mixing collisions).
pub fn derive_cell_seed(root: u64, workload: &str, config_index: u64) -> u64 {
    let mut state = mix(root);
    state = mix(state ^ workload.len() as u64);
    for b in workload.bytes() {
        state = mix(state ^ u64::from(b));
    }
    mix(state ^ config_index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_cells_are_distinct() {
        let kernels = ["crc32", "susan", "qsort", "bitcount", "adpcm_enc"];
        let mut seen = std::collections::HashSet::new();
        for root in [0u64, 1, 0x5EED] {
            for k in kernels {
                for idx in 0..28u64 {
                    assert!(
                        seen.insert(derive_cell_seed(root, k, idx)),
                        "collision at root={root} kernel={k} idx={idx}"
                    );
                }
            }
        }
    }

    proptest! {
        #[test]
        fn pure_function_of_inputs(root: u64, idx in 0u64..1024, pick in 0usize..4) {
            let names = ["crc32", "fft", "dijkstra", "sha"];
            let name = names[pick];
            prop_assert_eq!(
                derive_cell_seed(root, name, idx),
                derive_cell_seed(root, name, idx)
            );
        }

        #[test]
        fn distinct_config_indices_get_distinct_seeds(
            root: u64,
            a in 0u64..10_000,
            b in 0u64..10_000,
        ) {
            prop_assume!(a != b);
            prop_assert_ne!(
                derive_cell_seed(root, "kernel", a),
                derive_cell_seed(root, "kernel", b)
            );
        }

        #[test]
        fn distinct_workloads_get_distinct_seeds(
            root: u64,
            idx in 0u64..64,
            a in 0usize..5,
            b in 0usize..5,
        ) {
            let names = ["crc32", "fft", "dijkstra", "sha", "susan"];
            prop_assume!(a != b);
            prop_assert_ne!(
                derive_cell_seed(root, names[a], idx),
                derive_cell_seed(root, names[b], idx)
            );
        }

        #[test]
        fn root_seed_perturbs_every_cell(
            r1: u64,
            r2: u64,
            idx in 0u64..64,
        ) {
            prop_assume!(r1 != r2);
            prop_assert_ne!(
                derive_cell_seed(r1, "kernel", idx),
                derive_cell_seed(r2, "kernel", idx)
            );
        }
    }
}
