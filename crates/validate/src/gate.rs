//! The clone fidelity gate.
//!
//! After synthesis, the clone is re-profiled with the same collector that
//! measured the source application, and the five §3.1 attribute families
//! are compared under per-attribute tolerances. The result is a
//! [`ValidationReport`]: one [`AttributeCheck`] per family with the
//! observed delta, the thresholds it was judged against, and a
//! pass/warn/fail [`Verdict`]. Suites and the CLI consult the report
//! before accepting a clone.

use std::fmt;
use std::fmt::Write as _;

use perfclone_isa::{InstrClass, Program};
use perfclone_profile::{DepHistogram, Profiler, WorkloadProfile};
use perfclone_sim::{Observer as _, PackedReplay, PackedTrace, SimError, Simulator, TraceStore};

use crate::error::ValidateError;

/// One attribute family's warn/fail thresholds on its delta metric.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tolerance {
    /// Deltas at or above this are flagged as warnings.
    pub warn: f64,
    /// Deltas at or above this fail the gate.
    pub fail: f64,
}

impl Tolerance {
    fn judge(&self, delta: f64) -> Verdict {
        if delta >= self.fail {
            Verdict::Fail
        } else if delta >= self.warn {
            Verdict::Warn
        } else {
            Verdict::Pass
        }
    }
}

/// Per-attribute tolerances for the fidelity gate.
///
/// The defaults are calibrated so that every bundled kernel's clone passes
/// while gross corruption (zeroed streams, scrambled instruction classes)
/// fails; see DESIGN.md for the delta metrics they apply to.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tolerances {
    /// Total-variation distance between global instruction mixes.
    pub mix: Tolerance,
    /// Total-variation distance between merged register dependency-distance
    /// bucket distributions.
    pub deps: Tolerance,
    /// Folded log2 ratio of stream footprint *rates* (bytes touched per
    /// dynamic instruction). Shrinkage counts double: a clone whose
    /// footprint rate collapses has lost the stream structure outright,
    /// while growth is bounded by the synthesizer's streaming-walk cap.
    pub streams: Tolerance,
    /// Absolute delta of dynamic-weighted branch taken rates.
    pub taken: Tolerance,
    /// Absolute delta of dynamic-weighted branch transition rates.
    pub transition: Tolerance,
}

impl Default for Tolerances {
    fn default() -> Tolerances {
        Tolerances {
            mix: Tolerance { warn: 0.10, fail: 0.30 },
            deps: Tolerance { warn: 0.25, fail: 0.55 },
            streams: Tolerance { warn: 6.0, fail: 9.0 },
            taken: Tolerance { warn: 0.10, fail: 0.25 },
            transition: Tolerance { warn: 0.15, fail: 0.35 },
        }
    }
}

/// The five §3.1 attribute families the gate compares.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Attribute {
    /// Global dynamic instruction mix (§3.1.2).
    InstructionMix,
    /// Register dependency-distance distribution (§3.1.3).
    DependencyDistances,
    /// Stride-stream footprint (§3.1.4).
    StrideStreams,
    /// Dynamic-weighted branch taken rate (§3.1.5).
    BranchTakenRate,
    /// Dynamic-weighted branch transition rate (§3.1.5).
    BranchTransitionRate,
}

impl Attribute {
    /// Short human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            Attribute::InstructionMix => "instruction mix",
            Attribute::DependencyDistances => "dependency distances",
            Attribute::StrideStreams => "stride streams",
            Attribute::BranchTakenRate => "branch taken rate",
            Attribute::BranchTransitionRate => "branch transition rate",
        }
    }
}

/// Outcome of one attribute comparison, and of the report as a whole.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// Delta below the warn threshold.
    Pass,
    /// Delta at or above warn but below fail.
    Warn,
    /// Delta at or above the failure threshold.
    Fail,
}

impl Verdict {
    /// Lowercase label for rendering.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Warn => "warn",
            Verdict::Fail => "FAIL",
        }
    }
}

/// One attribute family's comparison result.
#[derive(Clone, Debug, PartialEq)]
pub struct AttributeCheck {
    /// Which family was compared.
    pub attribute: Attribute,
    /// The observed delta under the family's metric.
    pub delta: f64,
    /// The warn threshold the delta was judged against.
    pub warn_at: f64,
    /// The fail threshold the delta was judged against.
    pub fail_at: f64,
    /// The verdict.
    pub verdict: Verdict,
    /// Human-readable summary of the underlying values.
    pub detail: String,
}

/// Structured result of gating one clone against its source profile.
#[derive(Clone, Debug, PartialEq)]
pub struct ValidationReport {
    /// Name of the source workload.
    pub name: String,
    /// Instructions retired while re-profiling the clone.
    pub clone_instrs: u64,
    /// One check per §3.1 attribute family.
    pub attributes: Vec<AttributeCheck>,
}

impl ValidationReport {
    /// The report's overall verdict: the worst attribute verdict.
    pub fn verdict(&self) -> Verdict {
        self.attributes.iter().map(|a| a.verdict).max().unwrap_or(Verdict::Pass)
    }

    /// The first failing attribute check, if any.
    pub fn first_failure(&self) -> Option<&AttributeCheck> {
        self.attributes.iter().find(|a| a.verdict == Verdict::Fail)
    }

    /// One-line summary naming every violated attribute (for error
    /// messages).
    pub fn failure_summary(&self) -> String {
        let failed: Vec<&str> = self
            .attributes
            .iter()
            .filter(|a| a.verdict == Verdict::Fail)
            .map(|a| a.attribute.label())
            .collect();
        if failed.is_empty() {
            format!("{}: all attributes within tolerance", self.name)
        } else {
            format!("{}: {} out of tolerance", self.name, failed.join(", "))
        }
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fidelity gate: {} (clone re-profiled over {} instructions)",
            self.name, self.clone_instrs
        );
        let _ = writeln!(
            out,
            "  {:<24} {:>8} {:>8} {:>8}  {:<7} detail",
            "attribute", "delta", "warn", "fail", "verdict"
        );
        for a in &self.attributes {
            let _ = writeln!(
                out,
                "  {:<24} {:>8.3} {:>8.3} {:>8.3}  {:<7} {}",
                a.attribute.label(),
                a.delta,
                a.warn_at,
                a.fail_at,
                a.verdict.label(),
                a.detail
            );
        }
        let _ = writeln!(out, "  overall: {}", self.verdict().label());
        out
    }

    /// Converts the report into a result: `Err(GateFailed)` carrying the
    /// report when any attribute failed, `Ok(report)` otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError::GateFailed`] when the overall verdict is
    /// [`Verdict::Fail`].
    pub fn into_result(self) -> Result<ValidationReport, ValidateError> {
        if self.verdict() == Verdict::Fail {
            Err(ValidateError::GateFailed(Box::new(self)))
        } else {
            Ok(self)
        }
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// The fidelity gate: tolerances plus the re-profiling instruction budget.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Gate {
    /// Per-attribute tolerances.
    pub tolerances: Tolerances,
    /// Instruction budget for re-profiling the clone. A clone that does not
    /// halt within this budget is rejected with
    /// [`ValidateError::BudgetExhausted`].
    pub profile_budget: u64,
}

impl Default for Gate {
    fn default() -> Gate {
        // Clones target ~1M dynamic instructions (the CLI clamps to 2.5M);
        // 32M gives an order of magnitude of headroom while still bounding
        // a runaway clone to well under a second of functional simulation.
        Gate { tolerances: Tolerances::default(), profile_budget: 32_000_000 }
    }
}

impl Gate {
    /// Creates a gate with the given tolerances and the default budget.
    pub fn with_tolerances(tolerances: Tolerances) -> Gate {
        Gate { tolerances, ..Gate::default() }
    }

    /// Re-profiles `clone` and compares it against `source`, returning the
    /// report regardless of verdict.
    ///
    /// # Errors
    ///
    /// * [`ValidateError::Source`] — `source` is structurally invalid;
    /// * [`ValidateError::CloneFaulted`] — the clone escaped its text
    ///   section while being re-profiled;
    /// * [`ValidateError::BudgetExhausted`] — the clone did not halt within
    ///   [`profile_budget`](Gate::profile_budget) instructions.
    pub fn report(
        &self,
        source: &WorkloadProfile,
        clone: &Program,
    ) -> Result<ValidationReport, ValidateError> {
        let _gate_span = perfclone_obs::span!("validate.gate");
        source.check().map_err(ValidateError::Source)?;
        let mut profiler = Profiler::new(clone.name());
        let mut sim = Simulator::new(clone);
        let outcome = {
            let _s = perfclone_obs::span!("validate.reprofile");
            match sim.run_budget_with(self.profile_budget, &mut profiler) {
                Ok(out) => out,
                Err(SimError::BudgetExhausted { budget }) => {
                    return Err(ValidateError::BudgetExhausted { budget })
                }
                Err(e) => return Err(ValidateError::CloneFaulted(e)),
            }
        };
        let cp = profiler.finish();
        Ok(self.judge_profiles(source, &cp, outcome.retired))
    }

    /// Like [`report`](Gate::report), but re-profiles the clone from a
    /// previously captured [`PackedTrace`] instead of re-interpreting it —
    /// the record-once/replay-many path. The trace must belong to `clone`
    /// (checked by [`PackedTrace::replay`]) and must have been captured
    /// with a limit of at least
    /// [`profile_budget`](Gate::profile_budget); the trace's carried fault
    /// and halt status then reproduce exactly the verdicts and errors of
    /// the direct path.
    ///
    /// # Errors
    ///
    /// * [`ValidateError::Source`] — `source` is structurally invalid;
    /// * [`ValidateError::CloneFaulted`] — the trace carries a fault that
    ///   the direct path would have hit within budget;
    /// * [`ValidateError::BudgetExhausted`] — the trace shows the clone
    ///   not halting within the budget. Also returned (with the trace
    ///   length as the reported budget) when a truncated trace — captured
    ///   with a limit below the profile budget — ends before either
    ///   halting or covering the budget, which a correctly captured trace
    ///   never does.
    pub fn report_replay(
        &self,
        source: &WorkloadProfile,
        clone: &Program,
        trace: &PackedTrace,
    ) -> Result<ValidationReport, ValidateError> {
        self.report_replayed(
            source,
            clone,
            trace.len(),
            trace.halted(),
            trace.fault(),
            trace.replay(clone),
        )
    }

    /// [`report_replay`](Gate::report_replay) over either storage class
    /// of a capture — in-memory or spilled to disk and mmapped back. Both
    /// decode through the same replay machinery, so the verdicts are
    /// identical to the in-memory path's.
    ///
    /// # Errors
    ///
    /// Same as [`report_replay`](Gate::report_replay).
    pub fn report_store(
        &self,
        source: &WorkloadProfile,
        clone: &Program,
        store: &TraceStore,
    ) -> Result<ValidationReport, ValidateError> {
        self.report_replayed(
            source,
            clone,
            store.len(),
            store.halted(),
            store.fault(),
            store.replay(clone),
        )
    }

    /// Shared tail of [`report_replay`](Gate::report_replay) and
    /// [`report_store`](Gate::report_store): judge a capture by its
    /// carried length/halt/fault, then re-profile from the replay stream.
    fn report_replayed(
        &self,
        source: &WorkloadProfile,
        clone: &Program,
        len: u64,
        halted: bool,
        fault: Option<&SimError>,
        replay: PackedReplay<'_>,
    ) -> Result<ValidationReport, ValidateError> {
        let _gate_span = perfclone_obs::span!("validate.gate");
        source.check().map_err(ValidateError::Source)?;
        if len > self.profile_budget || (len == self.profile_budget && !halted) {
            // The direct path stops at the budget before reaching any
            // fault beyond it, so exhaustion wins over a carried fault.
            return Err(ValidateError::BudgetExhausted { budget: self.profile_budget });
        }
        if len < self.profile_budget {
            if let Some(f) = fault {
                return Err(ValidateError::CloneFaulted(f.clone()));
            }
            if !halted {
                return Err(ValidateError::BudgetExhausted { budget: len });
            }
        }
        let mut profiler = Profiler::new(clone.name());
        {
            let _s = perfclone_obs::span!("validate.reprofile");
            for d in replay {
                profiler.on_retire(&d);
            }
        }
        let cp = profiler.finish();
        Ok(self.judge_profiles(source, &cp, len))
    }

    /// Like [`accept`](Gate::accept) over a captured trace: everything
    /// [`report_replay`](Gate::report_replay) returns, with a failing
    /// report converted to [`ValidateError::GateFailed`].
    ///
    /// # Errors
    ///
    /// Everything [`report_replay`](Gate::report_replay) returns, plus
    /// [`ValidateError::GateFailed`] carrying the report.
    pub fn accept_replay(
        &self,
        source: &WorkloadProfile,
        clone: &Program,
        trace: &PackedTrace,
    ) -> Result<ValidationReport, ValidateError> {
        self.report_replay(source, clone, trace)?.into_result()
    }

    /// Like [`accept`](Gate::accept) over a [`TraceStore`]: everything
    /// [`report_store`](Gate::report_store) returns, with a failing
    /// report converted to [`ValidateError::GateFailed`].
    ///
    /// # Errors
    ///
    /// Everything [`report_store`](Gate::report_store) returns, plus
    /// [`ValidateError::GateFailed`] carrying the report.
    pub fn accept_store(
        &self,
        source: &WorkloadProfile,
        clone: &Program,
        store: &TraceStore,
    ) -> Result<ValidationReport, ValidateError> {
        self.report_store(source, clone, store)?.into_result()
    }

    /// Judges the five attribute families of a re-profiled clone against
    /// the source profile — shared tail of the interpret and replay paths.
    fn judge_profiles(
        &self,
        source: &WorkloadProfile,
        cp: &WorkloadProfile,
        retired: u64,
    ) -> ValidationReport {
        let t = &self.tolerances;
        // Each family judged under its own span, so reports break out
        // per-attribute judge time next to the verdict counters.
        let attributes = vec![
            judged(perfclone_obs::span!("validate.attr.mix"), check_mix(source, cp, t.mix)),
            judged(perfclone_obs::span!("validate.attr.deps"), check_deps(source, cp, t.deps)),
            judged(
                perfclone_obs::span!("validate.attr.streams"),
                check_streams(source, cp, t.streams),
            ),
            judged(perfclone_obs::span!("validate.attr.taken"), check_taken(source, cp, t.taken)),
            judged(
                perfclone_obs::span!("validate.attr.transition"),
                check_transition(source, cp, t.transition),
            ),
        ];
        perfclone_obs::count!("validate.gates", 1);
        match attributes.iter().map(|a| a.verdict).max().unwrap_or(Verdict::Pass) {
            Verdict::Pass => perfclone_obs::count!("validate.verdict.pass", 1),
            Verdict::Warn => perfclone_obs::count!("validate.verdict.warn", 1),
            Verdict::Fail => perfclone_obs::count!("validate.verdict.fail", 1),
        }
        ValidationReport { name: source.name.clone(), clone_instrs: retired, attributes }
    }

    /// Like [`report`](Gate::report), but additionally rejects a failing
    /// clone: a report whose overall verdict is [`Verdict::Fail`] becomes
    /// [`ValidateError::GateFailed`].
    ///
    /// # Errors
    ///
    /// Everything [`report`](Gate::report) returns, plus
    /// [`ValidateError::GateFailed`] carrying the report.
    pub fn accept(
        &self,
        source: &WorkloadProfile,
        clone: &Program,
    ) -> Result<ValidationReport, ValidateError> {
        self.report(source, clone)?.into_result()
    }
}

/// Closes a span opened just before its paired check expression was
/// evaluated (Rust evaluates arguments left to right), so the span's
/// wall time covers exactly that attribute's judging.
fn judged(span: perfclone_obs::Span, check: AttributeCheck) -> AttributeCheck {
    drop(span);
    check
}

fn check(attribute: Attribute, delta: f64, tol: Tolerance, detail: String) -> AttributeCheck {
    AttributeCheck {
        attribute,
        delta,
        warn_at: tol.warn,
        fail_at: tol.fail,
        verdict: tol.judge(delta),
        detail,
    }
}

/// Total-variation distance between two discrete distributions.
fn tv_distance(a: &[f64], b: &[f64]) -> f64 {
    0.5 * a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum::<f64>()
}

fn check_mix(source: &WorkloadProfile, clone: &WorkloadProfile, tol: Tolerance) -> AttributeCheck {
    let (sm, cm) = (source.global_mix(), clone.global_mix());
    let delta = tv_distance(&sm, &cm);
    // Name the class with the largest share drift in the detail column.
    let worst = InstrClass::ALL
        .iter()
        .max_by(|a, b| {
            let da = (sm[a.index()] - cm[a.index()]).abs();
            let db = (sm[b.index()] - cm[b.index()]).abs();
            da.total_cmp(&db)
        })
        .copied();
    let detail = match worst {
        Some(c) => {
            format!("worst class {}: {:.3} vs {:.3}", c.label(), sm[c.index()], cm[c.index()])
        }
        None => String::new(),
    };
    check(Attribute::InstructionMix, delta, tol, detail)
}

fn merged_reg_deps(p: &WorkloadProfile) -> DepHistogram {
    let mut merged = DepHistogram::new();
    for c in &p.contexts {
        merged.merge(&c.reg_deps);
    }
    merged
}

fn check_deps(source: &WorkloadProfile, clone: &WorkloadProfile, tol: Tolerance) -> AttributeCheck {
    let (sh, ch) = (merged_reg_deps(source), merged_reg_deps(clone));
    if sh.total() == 0 {
        // No register dependencies in the source: nothing to reproduce.
        return check(
            Attribute::DependencyDistances,
            0.0,
            tol,
            "no register dependencies in source".into(),
        );
    }
    let delta = tv_distance(&sh.probabilities(), &ch.probabilities());
    let detail = format!("{} vs {} recorded deps", sh.total(), ch.total());
    check(Attribute::DependencyDistances, delta, tol, detail)
}

/// Total stream footprint: sum of per-stream address spans, in bytes.
fn footprint(p: &WorkloadProfile) -> u64 {
    p.streams.iter().filter(|s| s.execs > 0).fold(0u64, |acc, s| {
        acc.saturating_add(s.max_addr.saturating_sub(s.min_addr).saturating_add(u64::from(s.width)))
    })
}

fn check_streams(
    source: &WorkloadProfile,
    clone: &WorkloadProfile,
    tol: Tolerance,
) -> AttributeCheck {
    if source.streams.is_empty() {
        return check(Attribute::StrideStreams, 0.0, tol, "no memory streams in source".into());
    }
    // Footprints scale with dynamic length (the clone's pacing loop rarely
    // matches the original's iteration count exactly), so compare footprint
    // *rates* — bytes touched per dynamic instruction. Shrinkage is the
    // pathological direction (the clone stopped touching new memory), so it
    // counts double; growth is bounded by the streaming-walk cap.
    let (sf, cf) = (footprint(source), footprint(clone));
    let (si, ci) = (source.total_instrs.max(1), clone.total_instrs.max(1));
    let norm = (((cf + 1) as f64 / ci as f64) / ((sf + 1) as f64 / si as f64)).log2();
    let delta = if norm >= 0.0 { norm } else { -2.0 * norm };
    let detail = format!("footprint {sf} B / {si} instrs vs {cf} B / {ci} instrs");
    check(Attribute::StrideStreams, delta, tol, detail)
}

fn weighted_rates(p: &WorkloadProfile) -> Option<(f64, f64)> {
    let execs: u64 = p.branches.iter().map(|b| b.execs).sum();
    if execs == 0 {
        return None;
    }
    let taken: u64 = p.branches.iter().map(|b| b.taken).sum();
    let transitions: u64 = p.branches.iter().map(|b| b.transitions).sum();
    Some((taken as f64 / execs as f64, transitions as f64 / execs as f64))
}

fn check_taken(
    source: &WorkloadProfile,
    clone: &WorkloadProfile,
    tol: Tolerance,
) -> AttributeCheck {
    match (weighted_rates(source), weighted_rates(clone)) {
        (Some((st, _)), Some((ct, _))) => {
            let detail = format!("{st:.3} vs {ct:.3}");
            check(Attribute::BranchTakenRate, (st - ct).abs(), tol, detail)
        }
        (None, _) => {
            // A branch-free source still yields a clone with its pacing
            // loop; the loop branch is scaffolding, not drift.
            check(Attribute::BranchTakenRate, 0.0, tol, "no branches in source".into())
        }
        (Some(_), None) => {
            check(Attribute::BranchTakenRate, tol.fail, tol, "clone lost all branches".into())
        }
    }
}

fn check_transition(
    source: &WorkloadProfile,
    clone: &WorkloadProfile,
    tol: Tolerance,
) -> AttributeCheck {
    match (weighted_rates(source), weighted_rates(clone)) {
        (Some((_, st)), Some((_, ct))) => {
            let detail = format!("{st:.3} vs {ct:.3}");
            check(Attribute::BranchTransitionRate, (st - ct).abs(), tol, detail)
        }
        (None, _) => {
            check(Attribute::BranchTransitionRate, 0.0, tol, "no branches in source".into())
        }
        (Some(_), None) => {
            check(Attribute::BranchTransitionRate, tol.fail, tol, "clone lost all branches".into())
        }
    }
}
