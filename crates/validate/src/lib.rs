//! # perfclone-validate
//!
//! Clone validation for the performance-cloning pipeline: the missing
//! closed-loop stage between synthesis and dissemination.
//!
//! The paper's premise is that a synthetic clone can stand in for the
//! proprietary application — which only holds if, for every clone the
//! pipeline emits, the microarchitecture-independent attributes of §3.1
//! survived synthesis. This crate provides the three pieces that make the
//! pipeline trustworthy:
//!
//! * a **fidelity gate** ([`gate`]) — re-profiles an emitted clone with the
//!   `perfclone-profile` collector and compares all five §3.1 attribute
//!   families (instruction mix, dependency distances, stride streams,
//!   branch taken rate, branch transition rate) against the source profile
//!   under configurable per-attribute tolerances, producing a structured
//!   [`ValidationReport`];
//! * a **deterministic fault injector** ([`fault`]) — a seeded [`FaultPlan`]
//!   that perturbs workload profiles at defined points (truncated traces,
//!   un-normalized SFG transition probabilities, zeroed stride streams,
//!   out-of-range dependency distances, corrupted register classes) so
//!   tests can prove every stage returns a typed error or a
//!   degraded-but-flagged result instead of panicking;
//! * **deterministic seed derivation** ([`seeds`]) — the per-cell seed
//!   function parallel sweeps and the fault injector share, so results are
//!   bit-identical at any thread count.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod error;
pub mod fault;
pub mod gate;
pub mod seeds;

pub use error::ValidateError;
pub use fault::{Fault, FaultPlan};
pub use gate::{Attribute, AttributeCheck, Gate, Tolerance, Tolerances, ValidationReport, Verdict};
pub use seeds::derive_cell_seed;
