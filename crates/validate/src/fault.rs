//! Deterministic profile fault injection.
//!
//! A [`FaultPlan`] perturbs a [`WorkloadProfile`] at defined points so
//! tests can prove that every downstream stage — structural validation,
//! synthesis, statistical simulation, the fidelity gate — returns a typed
//! error or a degraded-but-flagged result instead of panicking. Every
//! perturbation is a pure function of the plan's root seed, the profile's
//! name, and the fault's position in the plan (via
//! [`derive_cell_seed`](crate::seeds::derive_cell_seed)), so fault-injected
//! runs are bit-identical at any thread count.

use perfclone_profile::{DepHistogram, EdgeProfile, WorkloadProfile, NUM_DEP_BUCKETS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::seeds::derive_cell_seed;

/// One input perturbation the injector can apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Models a truncated trace: the tail half of the SFG nodes is dropped
    /// while edges and contexts keep referencing them, leaving dangling
    /// cross-references that structural validation must reject.
    TruncateNodes,
    /// Scales a pseudo-random subset of SFG edge counts by a million, so
    /// transition probabilities are only meaningful after renormalization.
    /// Downstream stages must renormalize (they do) — a degraded-but-valid
    /// input, not a rejection.
    UnnormalizedEdges,
    /// Zeroes every stream's dominant stride and collapses its footprint —
    /// a structurally valid profile whose memory behavior is gone. The
    /// fidelity gate must flag the resulting clone.
    ZeroStrideStreams,
    /// Blows every dependency-distance histogram up to near-`u64::MAX`
    /// bucket counts, exercising the saturating arithmetic on every path
    /// that merges or totals histograms.
    OutOfRangeDepDistances,
    /// Scrambles each block's per-class instruction counts, so the block
    /// composition no longer matches its size or terminator. Synthesis must
    /// survive; the fidelity gate must flag the mix drift.
    CorruptRegisterClasses,
}

impl Fault {
    /// Every fault kind, for exhaustive harness sweeps.
    pub const ALL: [Fault; 5] = [
        Fault::TruncateNodes,
        Fault::UnnormalizedEdges,
        Fault::ZeroStrideStreams,
        Fault::OutOfRangeDepDistances,
        Fault::CorruptRegisterClasses,
    ];

    /// Short human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            Fault::TruncateNodes => "truncated trace",
            Fault::UnnormalizedEdges => "un-normalized edges",
            Fault::ZeroStrideStreams => "zeroed stride streams",
            Fault::OutOfRangeDepDistances => "out-of-range dep distances",
            Fault::CorruptRegisterClasses => "corrupted register classes",
        }
    }

    /// `true` when the perturbed profile is structurally invalid and must
    /// be rejected by [`WorkloadProfile::check`]; `false` when it stays
    /// structurally valid and downstream stages must instead degrade
    /// gracefully (and the fidelity gate must flag the damage).
    pub fn breaks_structure(&self) -> bool {
        matches!(self, Fault::TruncateNodes)
    }
}

/// A seeded, deterministic sequence of faults to apply to a profile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    root: u64,
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// Creates an empty plan with the given root seed.
    pub fn new(root: u64) -> FaultPlan {
        FaultPlan { root, faults: Vec::new() }
    }

    /// Creates a single-fault plan.
    pub fn single(root: u64, fault: Fault) -> FaultPlan {
        FaultPlan::new(root).with(fault)
    }

    /// Appends a fault to the plan.
    #[must_use]
    pub fn with(mut self, fault: Fault) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// The faults in application order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Applies the plan to a copy of `profile`. Pure: the same plan and
    /// profile always yield the same perturbed profile, regardless of
    /// thread count or call order.
    pub fn apply(&self, profile: &WorkloadProfile) -> WorkloadProfile {
        let mut p = profile.clone();
        for (i, f) in self.faults.iter().enumerate() {
            let seed = derive_cell_seed(self.root, &p.name, i as u64);
            let mut rng = StdRng::seed_from_u64(seed);
            apply_fault(*f, &mut p, &mut rng);
        }
        p
    }
}

fn apply_fault(fault: Fault, p: &mut WorkloadProfile, rng: &mut StdRng) {
    match fault {
        Fault::TruncateNodes => {
            let keep = (p.nodes.len() / 2).max(1);
            p.nodes.truncate(keep);
            // Guarantee at least one dangling reference even for tiny SFGs
            // whose surviving edges all stay in range.
            let dangles = p.edges.iter().any(|e| e.from as usize >= keep || e.to as usize >= keep);
            if !dangles {
                p.edges.push(EdgeProfile { from: 0, to: keep as u32, count: 1 });
            }
        }
        Fault::UnnormalizedEdges => {
            for e in &mut p.edges {
                if rng.gen_bool(0.5) {
                    e.count = e.count.saturating_mul(1_000_000);
                }
            }
        }
        Fault::ZeroStrideStreams => {
            for s in &mut p.streams {
                s.dominant_stride = 0;
                s.dominant_count = 0;
                s.mean_run_len = 1.0;
                s.distinct_strides = 1;
                s.max_addr = s.min_addr;
                s.fwd_breaks = 0;
                s.back_breaks = 0;
                s.mean_back_jump = 0.0;
            }
        }
        Fault::OutOfRangeDepDistances => {
            for c in &mut p.contexts {
                let mut counts = [0u64; NUM_DEP_BUCKETS];
                for b in counts.iter_mut() {
                    *b = u64::MAX - rng.gen_range(0u64..1024);
                }
                c.reg_deps = DepHistogram::from_counts(counts);
                c.mem_deps = DepHistogram::from_counts(counts);
            }
        }
        Fault::CorruptRegisterClasses => {
            for n in &mut p.nodes {
                let r = rng.gen_range(1usize..10);
                n.class_counts.rotate_left(r);
                // Inflate one class so the counts no longer sum to the
                // block size.
                let i = rng.gen_range(0usize..10);
                n.class_counts[i] = n.class_counts[i].saturating_add(7);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfclone_kernels::by_name;
    use perfclone_kernels::Scale;
    use perfclone_profile::profile_program;

    fn crc32_profile() -> WorkloadProfile {
        let build = by_name("crc32").expect("bundled kernel").build(Scale::Tiny);
        profile_program(&build.program, u64::MAX).expect("kernel profiles cleanly")
    }

    #[test]
    fn apply_is_deterministic() {
        let profile = crc32_profile();
        let plan = FaultPlan::new(0xFA_017)
            .with(Fault::UnnormalizedEdges)
            .with(Fault::CorruptRegisterClasses)
            .with(Fault::OutOfRangeDepDistances);
        let a = plan.apply(&profile);
        let b = plan.apply(&profile);
        assert_eq!(a.to_json().expect("json"), b.to_json().expect("json"));
    }

    #[test]
    fn truncate_nodes_breaks_structure() {
        let profile = crc32_profile();
        let bad = FaultPlan::single(1, Fault::TruncateNodes).apply(&profile);
        assert!(bad.check().is_err());
        assert!(Fault::TruncateNodes.breaks_structure());
    }

    #[test]
    fn value_faults_keep_structure() {
        let profile = crc32_profile();
        for f in [
            Fault::UnnormalizedEdges,
            Fault::ZeroStrideStreams,
            Fault::OutOfRangeDepDistances,
            Fault::CorruptRegisterClasses,
        ] {
            let bad = FaultPlan::single(2, f).apply(&profile);
            assert!(bad.check().is_ok(), "{} should stay structurally valid", f.label());
            assert!(!f.breaks_structure());
        }
    }

    #[test]
    fn zeroed_streams_collapse_footprint() {
        let profile = crc32_profile();
        let bad = FaultPlan::single(3, Fault::ZeroStrideStreams).apply(&profile);
        for s in &bad.streams {
            assert_eq!(s.dominant_stride, 0);
            assert_eq!(s.max_addr, s.min_addr);
        }
    }
}
