//! Typed errors for the fidelity gate.

use std::error::Error as StdError;
use std::fmt;

use perfclone_profile::ProfileError;
use perfclone_sim::SimError;

use crate::gate::ValidationReport;

/// Errors surfaced while validating an emitted clone against its source
/// profile.
#[derive(Clone, Debug, PartialEq)]
pub enum ValidateError {
    /// The source profile itself is structurally invalid; nothing can be
    /// compared against it.
    Source(ProfileError),
    /// The clone faulted (escaped its text section) while being re-profiled.
    CloneFaulted(SimError),
    /// The clone did not halt within the gate's re-profiling instruction
    /// budget — the runaway guard for pathological synthetic programs.
    BudgetExhausted {
        /// The instruction budget that was exhausted.
        budget: u64,
    },
    /// One or more attribute families drifted past their failure tolerance.
    /// The carried report names every violated attribute.
    GateFailed(Box<ValidationReport>),
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::Source(e) => write!(f, "source profile invalid: {e}"),
            ValidateError::CloneFaulted(e) => write!(f, "clone faulted during re-profiling: {e}"),
            ValidateError::BudgetExhausted { budget } => {
                write!(f, "clone did not halt within the {budget}-instruction gate budget")
            }
            ValidateError::GateFailed(report) => {
                write!(f, "fidelity gate failed: {}", report.failure_summary())
            }
        }
    }
}

impl StdError for ValidateError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            ValidateError::Source(e) => Some(e),
            ValidateError::CloneFaulted(e) => Some(e),
            _ => None,
        }
    }
}
