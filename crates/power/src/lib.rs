//! # perfclone-power
//!
//! An activity-based, Wattch-style architectural power model.
//!
//! Like Wattch, the model assigns each microarchitectural structure a
//! per-access energy that scales with the structure's capacity (cache
//! arrays with size and associativity, window structures with entry count,
//! functional units with operation complexity), multiplies by the activity
//! counts the pipeline collected, and adds a conditional-clock-gating
//! residue: an idle structure still burns a fixed fraction of its active
//! power each cycle. Absolute numbers are arbitrary units; the experiments
//! only compare *relative* power across configurations and between a
//! benchmark and its clone, exactly as the paper does.
//!
//! # Example
//!
//! ```
//! use perfclone_isa::{ProgramBuilder, Reg};
//! use perfclone_sim::Simulator;
//! use perfclone_uarch::{base_config, Pipeline};
//! use perfclone_power::estimate_power;
//!
//! let mut b = ProgramBuilder::new("p");
//! b.li(Reg::new(1), 1);
//! b.halt();
//! let p = b.build();
//! let report = Pipeline::new(base_config()).run(Simulator::trace(&p, u64::MAX));
//! let power = estimate_power(&base_config(), &report);
//! assert!(power.average_power > 0.0);
//! ```

use perfclone_uarch::{CacheConfig, MachineConfig, PipelineReport, PredictorKind};

/// Fraction of a unit's active per-cycle power consumed while idle
/// (conditional clock gating, Wattch's `cc3` style).
const CLOCK_GATE_RESIDUE: f64 = 0.15;

/// Named per-unit energy totals.
#[derive(Clone, Debug, PartialEq)]
pub struct PowerBreakdown {
    /// Fetch + decode logic.
    pub frontend: f64,
    /// Branch predictor arrays.
    pub bpred: f64,
    /// Reorder buffer / instruction window.
    pub rob: f64,
    /// Load/store queue.
    pub lsq: f64,
    /// Architectural register file.
    pub regfile: f64,
    /// Integer and FP functional units.
    pub alus: f64,
    /// L1 instruction cache.
    pub l1i: f64,
    /// L1 data cache.
    pub l1d: f64,
    /// Unified L2.
    pub l2: f64,
    /// Global clock network.
    pub clock: f64,
}

impl PowerBreakdown {
    /// Sum of every component.
    pub fn total(&self) -> f64 {
        self.frontend
            + self.bpred
            + self.rob
            + self.lsq
            + self.regfile
            + self.alus
            + self.l1i
            + self.l1d
            + self.l2
            + self.clock
    }
}

/// A power estimate for one pipeline run.
#[derive(Clone, Debug, PartialEq)]
pub struct PowerReport {
    /// Total energy over the run (arbitrary units).
    pub total_energy: f64,
    /// Mean power (energy per cycle).
    pub average_power: f64,
    /// Energy per committed instruction.
    pub energy_per_instr: f64,
    /// Per-unit energy totals.
    pub breakdown: PowerBreakdown,
}

/// Per-access energy of a cache array: decoder + wordline/bitline terms
/// scaling with capacity and associativity, as in Wattch's array model.
fn cache_access_energy(c: &CacheConfig) -> f64 {
    0.4 + 0.00012 * (c.size_bytes as f64).sqrt() * (c.ways() as f64).sqrt() + 0.02 * c.ways() as f64
}

fn bpred_access_energy(kind: PredictorKind) -> f64 {
    let entries = match kind {
        PredictorKind::NotTaken | PredictorKind::Taken => 0u64,
        PredictorKind::Bimodal { table_bits } => 1 << table_bits,
        PredictorKind::TwoLevelGAp { history_bits, addr_bits } => 1 << (history_bits + addr_bits),
        PredictorKind::Gshare { history_bits } => 1 << history_bits,
        PredictorKind::TwoLevelPAp { history_bits, addr_bits } => {
            (1 << (history_bits + addr_bits)) + (1 << addr_bits)
        }
        PredictorKind::Tournament { history_bits, table_bits } => {
            (1 << history_bits) + 2 * (1 << table_bits)
        }
    };
    0.05 + 0.0004 * (entries as f64).sqrt()
}

/// CAM/RAM-style window structure: energy per access scales with entry
/// count.
fn window_access_energy(entries: u32) -> f64 {
    0.2 + 0.03 * f64::from(entries).sqrt()
}

/// Estimates power for a finished pipeline run under `config` — the
/// Wattch-equivalent step of the evaluation flow.
pub fn estimate_power(config: &MachineConfig, report: &PipelineReport) -> PowerReport {
    let a = &report.activity;
    let cycles = report.cycles.max(1) as f64;

    // Per-access energies.
    let e_frontend = 0.3 + 0.15 * f64::from(config.fetch_width + config.decode_width);
    let e_bpred = bpred_access_energy(config.predictor);
    let e_rob = window_access_energy(config.rob_size);
    let e_lsq = window_access_energy(config.lsq_size);
    let e_regfile = 0.15;
    let e_l1i = cache_access_energy(&config.l1i);
    let e_l1d = cache_access_energy(&config.l1d);
    let e_l2 = cache_access_energy(&config.l2);
    let e_int_alu = 0.5;
    let e_int_mul = 1.6;
    let e_fp_alu = 1.1;
    let e_fp_mul = 2.2;

    // Active energy = accesses x per-access energy. ROB is touched at
    // dispatch, issue (wakeup/select) and commit.
    let active_frontend = (a.fetches + a.dispatches) as f64 * e_frontend;
    let active_bpred = report.bpred.lookups as f64 * e_bpred;
    let active_rob = (a.dispatches + a.issues + a.commits) as f64 * e_rob;
    let lsq_ops = report.l1d.accesses as f64;
    let active_lsq = lsq_ops * e_lsq;
    let active_regfile = (a.regfile_reads as f64 + a.regfile_writes as f64) * e_regfile;
    let active_alus = a.int_alu_ops as f64 * e_int_alu
        + a.int_mul_ops as f64 * e_int_mul
        + a.fp_alu_ops as f64 * e_fp_alu
        + a.fp_mul_ops as f64 * e_fp_mul;
    let active_l1i = report.l1i.accesses as f64 * e_l1i;
    let active_l1d = report.l1d.accesses as f64 * e_l1d;
    let active_l2 = report.l2.accesses as f64 * e_l2;

    // Conditional clock gating: each unit burns a residue fraction of its
    // peak per-cycle energy every cycle, whether used or not.
    let unit_peaks = [
        e_frontend * f64::from(config.fetch_width),
        e_bpred,
        e_rob * f64::from(config.issue_width),
        e_lsq,
        e_regfile * 3.0,
        e_int_alu * f64::from(config.int_alu)
            + e_int_mul * f64::from(config.int_mul)
            + e_fp_alu * f64::from(config.fp_alu)
            + e_fp_mul * f64::from(config.fp_mul),
        e_l1i,
        e_l1d,
        e_l2,
    ];
    let idle_per_cycle: f64 = unit_peaks.iter().sum::<f64>() * CLOCK_GATE_RESIDUE;

    // Clock network scales with total clocked capacity.
    let capacity = unit_peaks.iter().sum::<f64>();
    let clock_per_cycle = 0.25 * capacity;

    let breakdown = PowerBreakdown {
        frontend: active_frontend + idle_per_cycle * cycles * frac(unit_peaks[0], capacity),
        bpred: active_bpred + idle_per_cycle * cycles * frac(unit_peaks[1], capacity),
        rob: active_rob + idle_per_cycle * cycles * frac(unit_peaks[2], capacity),
        lsq: active_lsq + idle_per_cycle * cycles * frac(unit_peaks[3], capacity),
        regfile: active_regfile + idle_per_cycle * cycles * frac(unit_peaks[4], capacity),
        alus: active_alus + idle_per_cycle * cycles * frac(unit_peaks[5], capacity),
        l1i: active_l1i + idle_per_cycle * cycles * frac(unit_peaks[6], capacity),
        l1d: active_l1d + idle_per_cycle * cycles * frac(unit_peaks[7], capacity),
        l2: active_l2 + idle_per_cycle * cycles * frac(unit_peaks[8], capacity),
        clock: clock_per_cycle * cycles,
    };
    let total_energy = breakdown.total();
    PowerReport {
        total_energy,
        average_power: total_energy / cycles,
        energy_per_instr: total_energy / report.instrs.max(1) as f64,
        breakdown,
    }
}

fn frac(part: f64, whole: f64) -> f64 {
    if whole == 0.0 {
        0.0
    } else {
        part / whole
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfclone_isa::{ProgramBuilder, Reg};
    use perfclone_sim::Simulator;
    use perfclone_uarch::{base_config, design_changes, Pipeline};

    fn busy_program(n: i64) -> perfclone_isa::Program {
        let mut b = ProgramBuilder::new("busy");
        let (i, lim) = (Reg::new(1), Reg::new(2));
        b.li(i, 0);
        b.li(lim, n);
        let top = b.label();
        b.bind(top);
        b.mul(Reg::new(3), i, i);
        b.addi(Reg::new(4), Reg::new(4), 7);
        b.addi(i, i, 1);
        b.blt(i, lim, top);
        b.halt();
        b.build()
    }

    fn power_of(config: perfclone_uarch::MachineConfig) -> f64 {
        let p = busy_program(500);
        let rep = Pipeline::new(config).run(Simulator::trace(&p, u64::MAX));
        estimate_power(&config, &rep).average_power
    }

    #[test]
    fn power_is_positive_and_breakdown_sums() {
        let p = busy_program(100);
        let cfg = base_config();
        let rep = Pipeline::new(cfg).run(Simulator::trace(&p, u64::MAX));
        let pow = estimate_power(&cfg, &rep);
        assert!(pow.average_power > 0.0);
        assert!((pow.breakdown.total() - pow.total_energy).abs() < 1e-9);
        assert!(pow.energy_per_instr > 0.0);
    }

    #[test]
    fn wider_machine_burns_more_power() {
        let base = power_of(base_config());
        let wide = power_of(perfclone_uarch::config::change_double_width());
        assert!(wide > base, "wide {wide} <= base {base}");
    }

    #[test]
    fn bigger_window_burns_more_power() {
        let base = power_of(base_config());
        let big = power_of(perfclone_uarch::config::change_double_window());
        assert!(big > base, "big {big} <= base {base}");
    }

    #[test]
    fn smaller_l1d_reduces_cache_energy_per_access() {
        let small = cache_access_energy(&perfclone_uarch::config::change_half_l1d().l1d);
        let base = cache_access_energy(&base_config().l1d);
        assert!(small < base);
    }

    #[test]
    fn all_design_changes_produce_finite_power() {
        for cfg in design_changes() {
            let p = power_of(cfg);
            assert!(p.is_finite() && p > 0.0, "{}: {p}", cfg.name);
        }
    }
}
