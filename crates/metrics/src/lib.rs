//! # perfclone-metrics
//!
//! The statistics and reporting utilities the evaluation uses:
//!
//! * [`pearson`] — the linear correlation coefficient of Figure 4,
//! * [`rank`] — average rankings (ties shared) for the Figure-5 scatter,
//! * [`relative_error`] — the paper's §5.2 relative-accuracy formula
//!   `RE_X = |(M_XS/M_YS − M_XR/M_YR)| / (M_XR/M_YR)`,
//! * [`mean_abs_pct_error`] — the Figure-6/7 absolute-accuracy metric,
//! * [`Table`] — plain-text table rendering for the bench binaries.

use std::fmt::Write as _;

/// Pearson's linear correlation coefficient between two equal-length
/// samples. Returns 0 for degenerate inputs (length < 2 or zero variance).
///
/// # Example
///
/// ```
/// use perfclone_metrics::pearson;
/// let r = pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]);
/// assert!((r - 1.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "pearson requires equal-length samples");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let mx = x.iter().sum::<f64>() / n as f64;
    let my = y.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y.iter()) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
        syy += (b - my) * (b - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx.sqrt() * syy.sqrt())
}

/// Ranks the values ascending (rank 1 = smallest), averaging tied ranks —
/// the ranking used for the Figure-5 cache-configuration scatter.
///
/// # Example
///
/// ```
/// use perfclone_metrics::rank;
/// assert_eq!(rank(&[10.0, 30.0, 20.0]), vec![1.0, 3.0, 2.0]);
/// assert_eq!(rank(&[1.0, 1.0, 2.0]), vec![1.5, 1.5, 3.0]);
/// ```
pub fn rank(values: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut ranks = vec![0.0; values.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman rank correlation (Pearson over ranks).
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    pearson(&rank(x), &rank(y))
}

/// Kendall's tau-a rank correlation: concordant minus discordant pairs
/// over all pairs — the ranking metric least sensitive to outliers.
///
/// # Example
///
/// ```
/// use perfclone_metrics::kendall_tau;
/// assert!((kendall_tau(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]) - 1.0).abs() < 1e-12);
/// assert!((kendall_tau(&[1.0, 2.0, 3.0], &[30.0, 20.0, 10.0]) + 1.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn kendall_tau(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "kendall_tau requires equal-length samples");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in i + 1..n {
            let sx = (x[i] - x[j]).signum();
            let sy = (y[i] - y[j]).signum();
            let s = sx * sy;
            if s > 0.0 {
                concordant += 1;
            } else if s < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

/// Geometric mean of positive samples (the EEMBC/SPEC aggregation).
///
/// # Panics
///
/// Panics if the slice is empty or contains non-positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of nothing");
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean requires positive samples");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// Root-mean-square error between paired samples.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    assert!(!a.is_empty());
    let ss: f64 = a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum();
    (ss / a.len() as f64).sqrt()
}

/// The paper's relative-error formula (§5.2): the error of the *ratio*
/// predicted by the synthetic clone when moving from design point Y to
/// design point X, relative to the real benchmark's ratio.
///
/// `RE_X = | M_XS/M_YS − M_XR/M_YR | / (M_XR/M_YR)`
///
/// # Example
///
/// ```
/// use perfclone_metrics::relative_error;
/// // Real speedup 2.0, clone speedup 1.9 -> 5% relative error.
/// let re = relative_error(1.9, 1.0, 2.0, 1.0);
/// assert!((re - 0.05).abs() < 1e-12);
/// ```
pub fn relative_error(m_x_synth: f64, m_y_synth: f64, m_x_real: f64, m_y_real: f64) -> f64 {
    let real_ratio = m_x_real / m_y_real;
    let synth_ratio = m_x_synth / m_y_synth;
    ((synth_ratio - real_ratio) / real_ratio).abs()
}

/// Mean of `|synth − real| / real` over paired samples — the average
/// absolute error metric of Figures 6 and 7.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mean_abs_pct_error(synth: &[f64], real: &[f64]) -> f64 {
    assert_eq!(synth.len(), real.len());
    assert!(!real.is_empty());
    let sum: f64 = synth.iter().zip(real.iter()).map(|(s, r)| ((s - r) / r).abs()).sum();
    sum / real.len() as f64
}

/// A minimal plain-text table renderer for the bench harness output.
///
/// # Example
///
/// ```
/// use perfclone_metrics::Table;
/// let mut t = Table::new(vec!["benchmark".into(), "IPC".into()]);
/// t.row(vec!["crc32".into(), "0.82".into()]);
/// let text = t.render();
/// assert!(text.contains("crc32"));
/// assert!(text.contains("benchmark"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Table {
        Table { headers, rows: Vec::new() }
    }

    /// Appends one row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:>width$}", cell, width = widths[c]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

/// Formats a float with 3 decimal places (helper for bench output).
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a fraction as a percentage with 2 decimals.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", 100.0 * v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pearson_anticorrelation() {
        let r = pearson(&[1.0, 2.0, 3.0, 4.0], &[8.0, 6.0, 4.0, 2.0]);
        assert!((r + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_inputs() {
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn pearson_of_noisy_line_is_high() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + ((v * 7.7).sin())).collect();
        assert!(pearson(&x, &y) > 0.999);
    }

    #[test]
    fn spearman_is_rank_invariant() {
        // A monotone but nonlinear relation: spearman 1.0.
        let x: Vec<f64> = (1..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v.exp2().min(1e30)).collect();
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn relative_error_exact_prediction_is_zero() {
        assert_eq!(relative_error(2.0, 1.0, 4.0, 2.0), 0.0);
    }

    #[test]
    fn mape_basic() {
        let m = mean_abs_pct_error(&[1.1, 0.9], &[1.0, 1.0]);
        assert!((m - 0.1).abs() < 1e-12);
    }

    #[test]
    fn table_renders_all_rows() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.render();
        assert_eq!(s.lines().count(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn kendall_handles_partial_agreement() {
        // One swapped pair of four: tau = (5 - 1) / 6.
        let t = kendall_tau(&[1.0, 2.0, 3.0, 4.0], &[1.0, 2.0, 4.0, 3.0]);
        assert!((t - 4.0 / 6.0).abs() < 1e-12, "{t}");
    }

    #[test]
    fn geomean_matches_hand_value() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rmse_basics() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn kendall_bounded_and_antisymmetric(
            v in proptest::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 2..30)
        ) {
            let x: Vec<f64> = v.iter().map(|p| p.0).collect();
            let y: Vec<f64> = v.iter().map(|p| p.1).collect();
            let t = kendall_tau(&x, &y);
            prop_assert!((-1.0..=1.0).contains(&t));
            let neg: Vec<f64> = y.iter().map(|v| -v).collect();
            let tn = kendall_tau(&x, &neg);
            prop_assert!((t + tn).abs() < 1e-9, "tau {t} vs negated {tn}");
        }

        #[test]
        fn geomean_between_min_and_max(xs in proptest::collection::vec(0.1f64..1e3, 1..20)) {
            let g = geomean(&xs);
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(0.0f64, f64::max);
            prop_assert!(g >= lo - 1e-9 && g <= hi + 1e-9);
        }

        #[test]
        fn pearson_is_symmetric_and_bounded(
            v in proptest::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 2..50)
        ) {
            let x: Vec<f64> = v.iter().map(|p| p.0).collect();
            let y: Vec<f64> = v.iter().map(|p| p.1).collect();
            let r1 = pearson(&x, &y);
            let r2 = pearson(&y, &x);
            prop_assert!((r1 - r2).abs() < 1e-9);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r1));
        }

        #[test]
        fn ranks_are_a_permutation_mean(vals in proptest::collection::vec(-1e9f64..1e9, 1..40)) {
            let r = rank(&vals);
            let sum: f64 = r.iter().sum();
            let n = vals.len() as f64;
            prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
        }

        #[test]
        fn pearson_invariant_under_affine(
            v in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..30),
            a in 0.1f64..10.0,
            b in -100.0f64..100.0
        ) {
            let x: Vec<f64> = v.iter().map(|p| p.0).collect();
            let y: Vec<f64> = v.iter().map(|p| p.1).collect();
            let xt: Vec<f64> = x.iter().map(|v| a * v + b).collect();
            let r1 = pearson(&x, &y);
            let r2 = pearson(&xt, &y);
            prop_assert!((r1 - r2).abs() < 1e-6);
        }
    }
}
