//! Clone generation (paper §3.2 steps 2-5, 10-12).

use std::collections::{HashMap, VecDeque};

use perfclone_isa::{AluOp, FReg, Instr, MemWidth, Program, ProgramBuilder, Reg, StreamDesc};
use perfclone_profile::{BranchProfile, DepHistogram, StreamProfile, WorkloadProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::walk::walk_sfg;
use crate::{BranchModel, MemoryModel, SynthError, SynthesisParams};

/// Loop iteration counter.
const ITER: Reg = Reg::new(1);
/// Branch-realization scratch registers.
const TMP: Reg = Reg::new(2);
const TP: Reg = Reg::new(3);
const TT: Reg = Reg::new(4);
/// Loop bound.
const BOUND: Reg = Reg::new(5);
/// Per-iteration random value (splitmix64 of the iteration counter), the
/// entropy source for unpredictable branch realizations.
const RAND: Reg = Reg::new(30);
/// Rotating integer destination pool (paper step 10's register assignment).
const INT_POOL: [Reg; 24] = {
    let mut pool = [Reg::ZERO; 24];
    let mut i = 0;
    while i < 24 {
        pool[i] = Reg::new(6 + i as u8);
        i += 1;
    }
    pool
};
/// Rotating FP destination pool.
const FP_POOL: [FReg; 30] = {
    let mut pool = [FReg::new(0); 30];
    let mut i = 0;
    while i < 30 {
        pool[i] = FReg::new(i as u8);
        i += 1;
    }
    pool
};

/// Maximum per-stream footprint (bytes); streams longer than this are
/// truncated to bound the clone's data segment.
const MAX_STREAM_FOOTPRINT: u64 = 4 << 20;
/// Maximum stream length in accesses.
const MAX_STREAM_LEN: u32 = 1 << 20;

/// Register-assignment state: the most recent producers per type, capped
/// at the pool size so entries are exactly the live registers.
struct Assigner {
    recent_int: VecDeque<(u64, Reg)>,
    recent_fp: VecDeque<(u64, FReg)>,
    int_rr: usize,
    fp_rr: usize,
    pos: u64,
}

impl Assigner {
    fn new() -> Assigner {
        let mut a = Assigner {
            recent_int: VecDeque::new(),
            recent_fp: VecDeque::new(),
            int_rr: 0,
            fp_rr: 0,
            pos: 0,
        };
        // The prologue initializes every pool register; seed the live sets.
        for &r in &INT_POOL {
            a.recent_int.push_back((0, r));
        }
        for &f in &FP_POOL {
            a.recent_fp.push_back((0, f));
        }
        a
    }

    fn next_int_dest(&mut self) -> Reg {
        let r = INT_POOL[self.int_rr % INT_POOL.len()];
        self.int_rr += 1;
        self.recent_int.push_back((self.pos, r));
        while self.recent_int.len() > INT_POOL.len() {
            self.recent_int.pop_front();
        }
        r
    }

    fn next_fp_dest(&mut self) -> FReg {
        let f = FP_POOL[self.fp_rr % FP_POOL.len()];
        self.fp_rr += 1;
        self.recent_fp.push_back((self.pos, f));
        while self.recent_fp.len() > FP_POOL.len() {
            self.recent_fp.pop_front();
        }
        f
    }

    /// Picks the live integer register whose producer position is closest
    /// to `pos - distance` — realizing the sampled dependency distance as
    /// faithfully as the live window allows (step 10).
    fn int_source(&self, distance: u64) -> Reg {
        let desired = self.pos.saturating_sub(distance);
        self.recent_int
            .iter()
            .min_by_key(|(p, _)| p.abs_diff(desired))
            .map(|&(_, r)| r)
            .unwrap_or(INT_POOL[0])
    }

    fn fp_source(&self, distance: u64) -> FReg {
        let desired = self.pos.saturating_sub(distance);
        self.recent_fp
            .iter()
            .min_by_key(|(p, _)| p.abs_diff(desired))
            .map(|&(_, f)| f)
            .unwrap_or(FP_POOL[0])
    }
}

/// Samples a dependency distance from a histogram (bucket by probability,
/// then the bucket's representative distance).
fn sample_distance(hist: &DepHistogram, rng: &mut StdRng) -> u64 {
    let total = hist.total();
    if total == 0 {
        return 1;
    }
    let mut x = rng.gen_range(0..total);
    for (i, &c) in hist.counts().iter().enumerate() {
        if x < c {
            return DepHistogram::representative(i);
        }
        x -= c;
    }
    DepHistogram::representative(hist.counts().len() - 1)
}

fn width_of(w: u8) -> MemWidth {
    match w {
        1 => MemWidth::B1,
        4 => MemWidth::B4,
        _ => MemWidth::B8,
    }
}

/// Returns `true` when a profiled static op is well represented by its
/// single dominant stride (the paper's Figure-3 test, per op).
fn regular(s: &StreamProfile) -> bool {
    if s.execs < 8 {
        return true;
    }
    s.dominant_count as f64 / (s.execs - 1).max(1) as f64 >= 0.5
}

/// Builds the clone's stream table from the profile's per-static-op stride
/// statistics (steps 4 and 11).
///
/// Streams are keyed by the *original* static instruction, so the clone
/// needs exactly as many unique streams as the profile reports — the
/// paper's "unique streams" count (its explanation for the ghostscript
/// outlier: 66 streams vs an average of 18). Two refinements keep the
/// model microarchitecture-independent while preserving working-set size:
///
/// * static ops whose observed address footprints **overlap** touched the
///   same data object in the original; their clone streams are laid into
///   one shared region with their intra-object offsets preserved, so the
///   clone's aggregate footprint matches the original's instead of
///   multiplying per static op;
/// * an op whose dominant stride covers < 50 % of its references (a
///   data-dependent table lookup, say) gets a **weak-stride fallback**: a
///   sub-line-stride walk over the whole shared region, approximating the
///   irregular reuse the single-stride model cannot express. Fallback ops
///   of one region share a walker.
fn plan_streams(b: &mut ProgramBuilder, profile: &WorkloadProfile) -> Vec<perfclone_isa::StreamId> {
    // Group ops by overlapping [min_addr, max_addr] footprints.
    let mut order: Vec<usize> = (0..profile.streams.len()).collect();
    order.sort_by_key(|&i| profile.streams[i].min_addr);
    let mut groups: Vec<(u64, u64, Vec<usize>)> = Vec::new();
    for &i in &order {
        let s = &profile.streams[i];
        // Closed intervals; adjacency (one object ending exactly where the
        // next begins) is NOT overlap — merging adjacent objects would
        // wildly inflate the footprint irregular ops walk.
        let (lo, hi) = (s.min_addr, s.max_addr);
        match groups.last_mut() {
            Some((_, gmax, members)) if lo < *gmax => {
                *gmax = (*gmax).max(hi);
                members.push(i);
            }
            _ => groups.push((lo, hi, vec![i])),
        }
    }

    // Mirror the original data segment: one allocation spanning every
    // stream footprint, with each object at its original offset. Relative
    // placement and alignment determine conflict behaviour, and both are
    // properties of the program's address space, not of any cache.
    let global_min = profile.streams.iter().map(|s| s.min_addr).min().unwrap_or(0);
    let global_max = profile.streams.iter().map(|s| s.max_addr).max().unwrap_or(0);
    let cluster_span = (global_max - global_min + 64).min(16 << 20);
    let raw = b.alloc(cluster_span + 8192);
    let cluster_base = raw + (global_min.wrapping_sub(raw) & 4095);

    let mut plan: Vec<Option<perfclone_isa::StreamId>> = vec![None; profile.streams.len()];
    let mut regular_ops = 0u64;
    let mut fallback_ops = 0u64;
    for (gmin, gmax, members) in groups {
        let gspan = (gmax - gmin + 8).clamp(8, MAX_STREAM_FOOTPRINT);
        let gbase = cluster_base + (gmin - global_min).min(cluster_span - 1);
        let mut fallback_walker: Option<perfclone_isa::StreamId> = None;
        // Streaming members of one group walked the same object in the
        // original; they share one open-ended region (offsets preserved)
        // so their walks share cache lines exactly as the originals did.
        let mut streaming_base: Option<u64> = None;
        for i in members {
            let s = &profile.streams[i];
            let is_regular = regular(s);
            if is_regular {
                regular_ops += 1;
            } else {
                fallback_ops += 1;
            }
            let id = if is_regular {
                let stride = s.dominant_stride;
                let unit = stride.unsigned_abs().max(1);
                // Stream length controls the wrap point and therefore the
                // op's temporal-reuse distance. Run-boundary jumps tell the
                // two cases apart: mostly-forward breaks mean the op keeps
                // progressing through its object (wrap at the whole
                // footprint); mostly-backward breaks mean it returns to
                // re-walk a region of roughly (mean back jump + one run).
                let op_span = s.max_addr - s.min_addr + u64::from(s.width);
                let run = s.mean_run_len.round().max(1.0) as u64;
                // How many times did the original op lap its footprint?
                let laps = (s.execs.saturating_mul(unit)) / op_span.max(1);
                let wrap_bytes = if s.back_breaks > s.fwd_breaks {
                    // Returning op: reuse region = mean back jump + one run.
                    (s.mean_back_jump as u64).saturating_add(run * unit).min(op_span.max(1))
                } else if laps < 2 {
                    // Single-pass streaming op: it never revisited its
                    // data, so the clone must not either — let the walk
                    // run to the footprint cap instead of wrapping.
                    MAX_STREAM_FOOTPRINT
                } else {
                    op_span.max(run * unit)
                };
                let streaming = s.back_breaks <= s.fwd_breaks && laps < 2;
                let mut length = (wrap_bytes / unit)
                    .max(run)
                    .max(1)
                    .min(MAX_STREAM_FOOTPRINT / unit)
                    .min(u64::from(MAX_STREAM_LEN)) as u32;
                let base = if streaming {
                    // A streaming walk must be free to run past the
                    // original footprint (the clone re-executes the op
                    // more often than the original did); the group's
                    // shared streaming region keeps it off the mirrored
                    // cluster while preserving intra-object offsets and
                    // the original alignment.
                    let sbase = *streaming_base.get_or_insert_with(|| {
                        let raw = b.alloc(MAX_STREAM_FOOTPRINT + 8192);
                        raw + (gmin.wrapping_sub(raw) & 4095)
                    });
                    sbase + (s.min_addr - gmin).min(MAX_STREAM_FOOTPRINT - 1)
                } else {
                    // Keep the walk inside the shared region, at the op's
                    // own offset within it.
                    let offset = (s.min_addr - gmin).min(gspan - 1);
                    let avail = gspan - offset;
                    length = length.min((avail / unit).max(1) as u32).max(1);
                    if stride >= 0 {
                        gbase + offset
                    } else {
                        gbase + offset + u64::from(length - 1) * unit
                    }
                };
                b.stream(StreamDesc { base, stride, length })
            } else {
                *fallback_walker.get_or_insert_with(|| {
                    let stride = 16i64;
                    let length = (gspan / 16).clamp(1, u64::from(MAX_STREAM_LEN)) as u32;
                    b.stream(StreamDesc { base: gbase, stride, length })
                })
            };
            plan[i] = Some(id);
        }
    }
    perfclone_obs::count!("synth.streams.regular", regular_ops);
    perfclone_obs::count!("synth.streams.fallback", fallback_ops);
    // The grouping above covers every stream index; the degenerate
    // single-slot stream is the harmless total fallback should that
    // invariant ever break.
    plan.into_iter()
        .map(|p| p.unwrap_or_else(|| b.stream(StreamDesc { base: 0x1000, stride: 0, length: 1 })))
        .collect()
}

/// Generates the synthetic benchmark clone from a workload profile —
/// the paper's §3.2 algorithm.
///
/// # Errors
///
/// Returns [`SynthError::InvalidProfile`] when the profile fails structural
/// validation ([`WorkloadProfile::check`]) — empty, dangling
/// cross-references, inconsistent counts — and
/// [`SynthError::WalkBudgetExhausted`] if the SFG walk outruns its
/// instance budget.
pub fn synthesize(
    profile: &WorkloadProfile,
    params: &SynthesisParams,
) -> Result<Program, SynthError> {
    let _span = perfclone_obs::span!("synth.gen");
    // All indexing below (streams, branches, nodes) relies on the
    // cross-references this validates.
    profile.check()?;
    let mut rng = StdRng::seed_from_u64(params.seed);
    let (target_blocks, body_budget) = if params.target_blocks == 0 {
        // Static-footprint parity: the clone's body should occupy about as
        // much instruction memory as the original program (a program
        // property), with a floor for statistical coverage of tiny loops.
        // Dynamic blocks overlap (shared suffixes), so the extent of the
        // profiled pc range estimates the original size, not the sum of
        // block sizes.
        let extent: u32 = profile
            .nodes
            .iter()
            .map(|n| n.start_pc + n.size)
            .max()
            .unwrap_or(0)
            .saturating_sub(profile.nodes.iter().map(|n| n.start_pc).min().unwrap_or(0));
        (
            (profile.nodes.len() as u32 * 4).clamp(24, 400),
            (extent + 2 * profile.nodes.len() as u32).max(300),
        )
    } else {
        (params.target_blocks, u32::MAX)
    };
    let instances = walk_sfg(profile, target_blocks, body_budget, &mut rng)?;
    if std::env::var("PERFCLONE_SYNTH_DEBUG").is_ok() {
        eprintln!(
            "synth debug: target_blocks={target_blocks} body_budget={body_budget} instances={}",
            instances.len()
        );
        let mut counts: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for inst in &instances {
            *counts.entry(inst.node).or_default() += 1;
        }
        let mut v: Vec<_> = counts.into_iter().collect();
        v.sort();
        for (node, n) in v {
            let np = &profile.nodes[node as usize];
            eprintln!(
                "  node {node} (pc {} size {} execs {} mem_ops {:?} branch {:?}): {n} instances",
                np.start_pc, np.size, np.execs, np.mem_ops, np.branch
            );
        }
    }

    // Context-sensitive dependency lookup (§3.1.1): per (pred, node),
    // falling back to per-node merged statistics.
    let mut ctx_map: HashMap<(u32, u32), (DepHistogram, DepHistogram)> = HashMap::new();
    let mut node_merged: HashMap<u32, (DepHistogram, DepHistogram)> = HashMap::new();
    for c in &profile.contexts {
        ctx_map.insert((c.pred, c.node), (c.reg_deps, c.mem_deps));
        let e = node_merged.entry(c.node).or_default();
        e.0.merge(&c.reg_deps);
        e.1.merge(&c.mem_deps);
    }
    let deps_for = |pred: u32, node: u32| -> DepHistogram {
        if params.context_sensitive {
            if let Some((reg, _)) = ctx_map.get(&(pred, node)) {
                return *reg;
            }
        }
        node_merged.get(&node).map(|(reg, _)| *reg).unwrap_or_default()
    };

    let mut b = ProgramBuilder::new(format!("{}-clone", profile.name));

    // ---- prologue: initialize pools, loop counter (steps 10, 11) -------
    for (i, &r) in INT_POOL.iter().enumerate() {
        b.li(r, (i as i64 + 1) * 3 + 1);
    }
    for (i, &f) in FP_POOL.iter().enumerate() {
        b.fli(f, 1.0 + i as f64 * 0.0625);
    }
    b.li(ITER, 0);
    // Loop bound patched below once the body length is known.
    let bound_patch_at = b.here();
    b.li(BOUND, 1);

    let top = b.label();
    b.bind(top);

    // Per-iteration entropy: RAND = splitmix64(ITER). Quasi-periodic
    // iteration hashes are learnable by history predictors; a full mixer
    // is not.
    b.li(TP, 0x9E37_79B9_7F4A_7C15u64 as i64);
    b.mul(TMP, ITER, TP);
    b.srli(TT, TMP, 30);
    b.xor(TMP, TMP, TT);
    b.li(TP, 0xBF58_476D_1CE4_E5B9u64 as i64);
    b.mul(TMP, TMP, TP);
    b.srli(TT, TMP, 27);
    b.xor(TMP, TMP, TT);
    b.li(TP, 0x94D0_49BB_1331_11EBu64 as i64);
    b.mul(TMP, TMP, TP);
    b.srli(TT, TMP, 31);
    b.xor(RAND, TMP, TT);

    // Per-instance labels; the terminator of instance i targets label i+1,
    // the last one targets the loop tail.
    let labels: Vec<_> = (0..instances.len() + 1).map(|_| b.label()).collect();
    let body_start = b.here();

    let mut asg = Assigner::new();
    let alu_ops = [AluOp::Add, AluOp::Sub, AluOp::Xor, AluOp::Or, AluOp::And];
    let mut alu_rr = 0usize;
    let mut fp_toggle = false;
    let stream_plan = plan_streams(&mut b, profile);

    for (idx, inst) in instances.iter().enumerate() {
        b.bind(labels[idx]);
        let node = &profile.nodes[inst.node as usize];
        let reg_deps = deps_for(inst.pred, inst.node);

        // ---- step 2: populate the block per its instruction mix --------
        let mut counts = node.class_counts;
        let branch_stats: Option<&BranchProfile> =
            node.branch.map(|bi| &profile.branches[bi as usize]);
        let has_branch_term =
            branch_stats.is_some() && counts[perfclone_isa::InstrClass::Branch.index()] > 0;
        if has_branch_term {
            counts[perfclone_isa::InstrClass::Branch.index()] -= 1;
        }
        let has_jump_term = !has_branch_term && counts[perfclone_isa::InstrClass::Jump.index()] > 0;
        if has_jump_term {
            counts[perfclone_isa::InstrClass::Jump.index()] -= 1;
        }

        // Expand the class multiset and shuffle it (mix-preserving order).
        let mut body: Vec<perfclone_isa::InstrClass> = Vec::new();
        for class in perfclone_isa::InstrClass::ALL {
            for _ in 0..counts[class.index()] {
                body.push(class);
            }
        }
        for i in (1..body.len()).rev() {
            body.swap(i, rng.gen_range(0..=i));
        }

        // ---- steps 3, 4: emit instructions with deps and streams -------
        let mut mem_idx = 0usize;
        for class in body {
            use perfclone_isa::InstrClass as C;
            match class {
                C::IntAlu | C::Branch | C::Jump => {
                    // Extra control-class counts inside a body (possible
                    // only for truncated tail blocks) degrade to ALU ops.
                    let op = alu_ops[alu_rr % alu_ops.len()];
                    alu_rr += 1;
                    let rs1 = asg.int_source(sample_distance(&reg_deps, &mut rng));
                    let rs2 = asg.int_source(sample_distance(&reg_deps, &mut rng));
                    let rd = asg.next_int_dest();
                    b.emit(Instr::Alu { op, rd, rs1, rs2 });
                }
                C::IntMul => {
                    let rs1 = asg.int_source(sample_distance(&reg_deps, &mut rng));
                    let rs2 = asg.int_source(sample_distance(&reg_deps, &mut rng));
                    let rd = asg.next_int_dest();
                    b.emit(Instr::Mul { rd, rs1, rs2 });
                }
                C::IntDiv => {
                    let rs1 = asg.int_source(sample_distance(&reg_deps, &mut rng));
                    let rs2 = asg.int_source(sample_distance(&reg_deps, &mut rng));
                    let rd = asg.next_int_dest();
                    b.emit(Instr::Div { rd, rs1, rs2 });
                }
                C::FpAlu => {
                    let fs1 = asg.fp_source(sample_distance(&reg_deps, &mut rng));
                    let fs2 = asg.fp_source(sample_distance(&reg_deps, &mut rng));
                    let fd = asg.next_fp_dest();
                    let op =
                        if fp_toggle { perfclone_isa::FpOp::Add } else { perfclone_isa::FpOp::Sub };
                    fp_toggle = !fp_toggle;
                    b.emit(Instr::Fp { op, fd, fs1, fs2 });
                }
                C::FpMul => {
                    let fs1 = asg.fp_source(sample_distance(&reg_deps, &mut rng));
                    let fs2 = asg.fp_source(sample_distance(&reg_deps, &mut rng));
                    let fd = asg.next_fp_dest();
                    b.emit(Instr::Fp { op: perfclone_isa::FpOp::Mul, fd, fs1, fs2 });
                }
                C::FpDiv => {
                    let fs1 = asg.fp_source(sample_distance(&reg_deps, &mut rng));
                    let fs2 = asg.fp_source(sample_distance(&reg_deps, &mut rng));
                    let fd = asg.next_fp_dest();
                    b.emit(Instr::Fp { op: perfclone_isa::FpOp::Div, fd, fs1, fs2 });
                }
                C::Load | C::Store => {
                    let sp_idx = node.mem_ops.get(mem_idx % node.mem_ops.len().max(1)).copied();
                    let sp = sp_idx.map(|i| (i, &profile.streams[i as usize]));
                    mem_idx += 1;
                    let (id, width) = match (params.memory_model, sp) {
                        (MemoryModel::StrideStreams, Some((i, s))) => {
                            (stream_plan[i as usize], width_of(s.width))
                        }
                        (MemoryModel::StrideStreams, None) => (b.stream_alloc(8, 64), MemWidth::B8),
                        (MemoryModel::MissRateTarget { miss_rate, line_bytes }, s) => {
                            let width = s.map(|(_, s)| width_of(s.width)).unwrap_or(MemWidth::B8);
                            if rng.gen::<f64>() < miss_rate {
                                // Streaming region: a new line every access.
                                (b.stream_alloc(i64::from(line_bytes), MAX_STREAM_LEN), width)
                            } else {
                                // Hot slot: always the same line.
                                (
                                    b.stream(StreamDesc {
                                        base: 0x2000_0000,
                                        stride: 0,
                                        length: 1,
                                    }),
                                    width,
                                )
                            }
                        }
                    };
                    if class == C::Load {
                        let rd = asg.next_int_dest();
                        b.ld_stream(rd, id, width);
                    } else {
                        let rs = asg.int_source(sample_distance(&reg_deps, &mut rng));
                        b.sd_stream(rs, id, width);
                    }
                }
            }
            asg.pos += 1;
        }

        // ---- step 5: terminator realizing the branch statistics --------
        let next = labels[idx + 1];
        match branch_stats {
            Some(stats) if has_branch_term => {
                emit_branch(&mut b, &mut asg, stats, params.branch_model, next, &mut rng);
            }
            _ => {
                b.j(next);
                asg.pos += 1;
            }
        }
    }
    b.bind(labels[instances.len()]);

    // ---- step 11: the big loop --------------------------------------
    let body_len = (b.here() - body_start) as u64 + 2;
    b.addi(ITER, ITER, 1);
    b.blt(ITER, BOUND, top);
    b.halt();

    let iterations = (params.target_dynamic / body_len.max(1)).max(1);
    let mut program = b.build();
    patch_bound(&mut program, bound_patch_at, iterations as i64);
    perfclone_obs::count!("synth.clones", 1);
    perfclone_obs::count!("synth.instances", instances.len() as u64);
    perfclone_obs::gauge!("synth.target_dynamic", params.target_dynamic);
    perfclone_obs::record!("synth.static_instrs", program.instrs().len() as u64);
    Ok(program)
}

/// Realizes one conditional branch's direction statistics (step 5).
fn emit_branch(
    b: &mut ProgramBuilder,
    asg: &mut Assigner,
    stats: &BranchProfile,
    model: BranchModel,
    next: perfclone_isa::Label,
    rng: &mut StdRng,
) {
    let t = stats.taken_rate();
    let r = stats.transition_rate();
    match model {
        BranchModel::TransitionRate => {
            if r <= 0.05 {
                // Strongly biased: a statically-resolvable compare.
                if t >= 0.5 {
                    b.bge(Reg::ZERO, Reg::ZERO, next); // always taken
                } else {
                    b.bne(Reg::ZERO, Reg::ZERO, next); // never taken
                }
                asg.pos += 1;
            } else if blend_random(stats, rng) {
                // The direction sequence carries less structure than a
                // periodic pattern would: realize this instance as a
                // pseudo-random sequence with the right taken rate. The
                // blend fraction across instances matches the measured
                // predictability (see `blend_random`).
                emit_hash_branch(b, asg, t, next, rng);
            } else if r >= 0.95 {
                // Alternating every iteration.
                b.andi(TMP, ITER, 1);
                b.beq(TMP, Reg::ZERO, next);
                asg.pos += 2;
            } else {
                // Periodic pattern: taken for the first T of every P
                // iterations -> transition rate 2/P, taken rate T/P. P is
                // rounded to a power of two so the modulo is a single AND —
                // the paper's shift-based modulo mechanism (step 5).
                let p = 1i64 << ((2.0 / r).round().clamp(2.0, 64.0) as u64).ilog2();
                let t_run = ((t * p as f64).round() as i64).clamp(1, p - 1);
                let phase = rng.gen_range(0..p) as i32;
                b.addi(TMP, ITER, phase);
                b.andi(TMP, TMP, (p - 1) as i32);
                b.li(TT, t_run);
                b.blt(TMP, TT, next);
                asg.pos += 4;
            }
        }
        BranchModel::TakenRateOnly => {
            // Prior-work baseline: match the taken rate with a pseudo-
            // random (hash-of-iteration) sequence - right bias, none of
            // the sequence predictability.
            emit_hash_branch(b, asg, t, next, rng);
        }
    }
}

/// Decides whether this instance of a branch should get the pseudo-random
/// realization. The fraction of random instances is chosen so the clone's
/// aggregate misprediction difficulty matches the branch's measured
/// global-history predictability: a periodic pattern costs roughly
/// `0.75 * transition_rate`, a patternless sequence `2 t (1 - t)`, and the
/// target is `1 - predictability`.
fn blend_random(stats: &BranchProfile, rng: &mut StdRng) -> bool {
    let t = stats.taken_rate();
    let r = stats.transition_rate();
    let target = (1.0 - stats.predictability()).max(0.0);
    let mr_periodic = 0.75 * r.min(0.5);
    let mr_random = 2.0 * t * (1.0 - t);
    if mr_random <= mr_periodic + 1e-9 {
        return false;
    }
    let f = ((target - mr_periodic) / (mr_random - mr_periodic)).clamp(0.0, 1.0);
    rng.gen::<f64>() < f
}

/// Emits a branch taken with probability `t` on a pseudo-random
/// (hash-of-iteration) schedule.
fn emit_hash_branch(
    b: &mut ProgramBuilder,
    asg: &mut Assigner,
    t: f64,
    next: perfclone_isa::Label,
    rng: &mut StdRng,
) {
    // Derive this branch's predicate from the shared per-iteration random
    // value with a private odd multiplier, so branches are mutually
    // decorrelated and the sequence is patternless to any history
    // predictor.
    let mult = (rng.gen::<u64>() | 1) as i64;
    let t_scaled = (t * 1024.0).round() as i64;
    b.li(TP, mult);
    b.mul(TMP, RAND, TP);
    b.srli(TMP, TMP, 40);
    b.andi(TMP, TMP, 1023);
    b.li(TT, t_scaled);
    b.blt(TMP, TT, next);
    asg.pos += 6;
}

/// Replaces the placeholder loop bound with the computed trip count.
fn patch_bound(program: &mut Program, at: u32, iterations: i64) {
    // Program is immutable by design; rebuild the single instruction via
    // the public API would be heavy, so the builder leaves `li BOUND, 1`
    // and we swap the instruction here through a crate-internal hook.
    program.patch_instr(at, Instr::Li { rd: BOUND, imm: iterations });
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfclone_profile::profile_program;
    use perfclone_sim::Simulator;

    fn original_program() -> Program {
        // A loop with a load stream, a store stream, FP work, and a
        // biased branch plus an alternating branch.
        let mut b = ProgramBuilder::new("orig");
        let ld_id = b.stream(StreamDesc { base: 0x8000, stride: 16, length: 512 });
        let st_id = b.stream(StreamDesc { base: 0x20000, stride: 8, length: 256 });
        let (i, n, t) = (Reg::new(1), Reg::new(2), Reg::new(3));
        let f0 = FReg::new(0);
        let f1 = FReg::new(1);
        b.li(i, 0);
        b.li(n, 3000);
        b.fli(f0, 1.5);
        b.fli(f1, 0.5);
        let top = b.label();
        let skip = b.label();
        b.bind(top);
        b.ld_stream(Reg::new(4), ld_id, MemWidth::B8);
        b.add(Reg::new(5), Reg::new(4), i);
        b.fmul(f0, f0, f1);
        b.sd_stream(Reg::new(5), st_id, MemWidth::B8);
        b.andi(t, i, 1);
        b.bnez(t, skip); // alternating branch
        b.addi(Reg::new(6), Reg::new(6), 1);
        b.bind(skip);
        b.addi(i, i, 1);
        b.blt(i, n, top); // biased branch
        b.halt();
        b.build()
    }

    fn make_clone(params: &SynthesisParams) -> (Program, perfclone_profile::WorkloadProfile) {
        let orig = original_program();
        let profile = profile_program(&orig, u64::MAX).unwrap();
        (synthesize(&profile, params).unwrap(), profile)
    }

    #[test]
    fn clone_runs_to_completion() {
        let params =
            SynthesisParams { target_blocks: 50, target_dynamic: 50_000, ..Default::default() };
        let (clone, _) = make_clone(&params);
        let mut sim = Simulator::new(&clone);
        let out = sim.run(10_000_000).expect("clone must not fault");
        assert!(out.halted, "clone did not halt");
        // Dynamic length lands near the target.
        assert!(
            out.retired > 25_000 && out.retired < 100_000,
            "retired {} not near target",
            out.retired
        );
    }

    #[test]
    fn clone_is_deterministic() {
        let params =
            SynthesisParams { target_blocks: 30, target_dynamic: 10_000, ..Default::default() };
        let (c1, _) = make_clone(&params);
        let (c2, _) = make_clone(&params);
        assert_eq!(c1.instrs(), c2.instrs());
    }

    #[test]
    fn clone_mix_tracks_original() {
        let params =
            SynthesisParams { target_blocks: 150, target_dynamic: 200_000, ..Default::default() };
        let (clone, orig_profile) = make_clone(&params);
        let clone_profile = profile_program(&clone, u64::MAX).unwrap();
        let orig_mix = orig_profile.global_mix();
        let clone_mix = clone_profile.global_mix();
        use perfclone_isa::InstrClass as C;
        for class in [C::Load, C::Store, C::FpMul] {
            let (o, c) = (orig_mix[class.index()], clone_mix[class.index()]);
            assert!((o - c).abs() < 0.06, "{class}: original {o:.3} clone {c:.3}");
        }
    }

    #[test]
    fn clone_reproduces_dominant_strides() {
        let params =
            SynthesisParams { target_blocks: 120, target_dynamic: 150_000, ..Default::default() };
        let (clone, orig_profile) = make_clone(&params);
        // Clone static ops share one stream walker per original static op,
        // so the walker table (not the per-op profile, whose per-op stride
        // is the interleaved multiple) must carry the original's dominant
        // strides.
        let orig_strides: std::collections::HashSet<i64> =
            orig_profile.streams.iter().map(|s| s.dominant_stride).collect();
        let clone_strides: std::collections::HashSet<i64> =
            clone.streams().iter().map(|d| d.stride).collect();
        for s in &orig_strides {
            assert!(clone_strides.contains(s), "stride {s} missing from clone");
        }
    }

    #[test]
    fn clone_branch_statistics_track_original() {
        let params =
            SynthesisParams { target_blocks: 150, target_dynamic: 200_000, ..Default::default() };
        let (clone, orig_profile) = make_clone(&params);
        let clone_profile = profile_program(&clone, u64::MAX).unwrap();
        // Dynamic-weighted mean taken rate and transition rate must be
        // close.
        let weighted = |p: &perfclone_profile::WorkloadProfile| -> (f64, f64) {
            let total: u64 = p.branches.iter().map(|b| b.execs).sum();
            let taken: u64 = p.branches.iter().map(|b| b.taken).sum();
            let trans: u64 = p.branches.iter().map(|b| b.transitions).sum();
            (taken as f64 / total as f64, trans as f64 / total as f64)
        };
        let (ot, otr) = weighted(&orig_profile);
        let (ct, ctr) = weighted(&clone_profile);
        assert!((ot - ct).abs() < 0.12, "taken rate: orig {ot:.3} clone {ct:.3}");
        assert!((otr - ctr).abs() < 0.12, "transition rate: orig {otr:.3} clone {ctr:.3}");
    }

    #[test]
    fn clone_hides_the_original_code() {
        // The dissemination property: no basic-block of the clone matches
        // any block of the original instruction-for-instruction.
        let params =
            SynthesisParams { target_blocks: 40, target_dynamic: 20_000, ..Default::default() };
        let orig = original_program();
        let (clone, _) = make_clone(&params);
        let window = 4;
        for w_orig in orig.instrs().windows(window) {
            for w_clone in clone.instrs().windows(window) {
                if w_orig == w_clone {
                    panic!("clone leaks a {window}-instruction sequence of the original");
                }
            }
        }
    }

    #[test]
    fn baseline_models_produce_runnable_clones() {
        let params = SynthesisParams {
            target_blocks: 40,
            target_dynamic: 30_000,
            memory_model: MemoryModel::MissRateTarget { miss_rate: 0.2, line_bytes: 32 },
            branch_model: BranchModel::TakenRateOnly,
            ..Default::default()
        };
        let (clone, _) = make_clone(&params);
        let mut sim = Simulator::new(&clone);
        let out = sim.run(10_000_000).unwrap();
        assert!(out.halted);
    }

    #[test]
    fn corrupted_profile_yields_typed_error() {
        let orig = original_program();
        let mut profile = profile_program(&orig, u64::MAX).unwrap();
        // Truncating the node table leaves edges/contexts dangling — the
        // shape a truncated trace produces.
        profile.nodes.truncate(1);
        let err = synthesize(&profile, &SynthesisParams::default()).unwrap_err();
        assert!(matches!(err, SynthError::InvalidProfile(_)), "got {err:?}");
    }

    #[test]
    fn context_insensitive_clone_still_runs() {
        let params = SynthesisParams {
            target_blocks: 40,
            target_dynamic: 30_000,
            context_sensitive: false,
            ..Default::default()
        };
        let (clone, _) = make_clone(&params);
        let mut sim = Simulator::new(&clone);
        assert!(sim.run(10_000_000).unwrap().halted);
    }
}
