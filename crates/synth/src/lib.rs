//! # perfclone-synth
//!
//! The synthetic benchmark clone generator — the paper's core contribution
//! (§3.2), together with the prior-work *microarchitecture-dependent*
//! baseline the paper improves on, and a C-with-inline-asm emitter for the
//! dissemination artifact.
//!
//! Given a [`WorkloadProfile`](perfclone_profile::WorkloadProfile),
//! [`synthesize`] walks the statistical flow
//! graph by its cumulative distribution (steps 1, 6, 8, 9), populates each
//! generated basic block per the node's instruction mix (step 2), realizes
//! dependency distances through rotating register pools (steps 3, 10),
//! binds every static load/store to its own fixed-stride fixed-length
//! stream (steps 4, 11), realizes each branch's taken and transition rate
//! with a modulo-of-iteration-counter test (step 5), wraps the body in one
//! big loop (step 11), and links the result into an executable
//! [`Program`](perfclone_isa::Program) (step 12). [`emit_c`] renders the
//! same program as C code
//! with `asm volatile` statements.
//!
//! # Example
//!
//! ```
//! use perfclone_isa::{ProgramBuilder, Reg};
//! use perfclone_profile::profile_program;
//! use perfclone_synth::{synthesize, SynthesisParams};
//!
//! let mut b = ProgramBuilder::new("loop");
//! let (i, n) = (Reg::new(1), Reg::new(2));
//! b.li(i, 0);
//! b.li(n, 1000);
//! let top = b.label();
//! b.bind(top);
//! b.addi(i, i, 1);
//! b.blt(i, n, top);
//! b.halt();
//! let original = b.build();
//!
//! let profile = profile_program(&original, u64::MAX)?;
//! let clone = synthesize(&profile, &SynthesisParams::default())?;
//! assert!(clone.name().contains("clone"));
//! assert!(!clone.is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::error::Error as StdError;
use std::fmt;

use perfclone_profile::ProfileError;

mod emit;
mod gen;
mod walk;

pub use emit::emit_c;
pub use gen::synthesize;

/// Errors surfaced by clone synthesis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SynthError {
    /// The input profile failed structural validation
    /// ([`WorkloadProfile::check`](perfclone_profile::WorkloadProfile::check));
    /// synthesizing from it would index out of bounds.
    InvalidProfile(ProfileError),
    /// The SFG walk exceeded its instance budget without consuming its
    /// node quotas — the runaway guard for degenerate flow graphs.
    WalkBudgetExhausted {
        /// Instances produced when the budget tripped.
        instances: usize,
        /// The instance budget.
        budget: usize,
    },
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::InvalidProfile(e) => write!(f, "cannot synthesize from profile: {e}"),
            SynthError::WalkBudgetExhausted { instances, budget } => {
                write!(
                    f,
                    "SFG walk produced {instances} instances, exceeding its budget of {budget}"
                )
            }
        }
    }
}

impl StdError for SynthError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            SynthError::InvalidProfile(e) => Some(e),
            SynthError::WalkBudgetExhausted { .. } => None,
        }
    }
}

impl From<ProfileError> for SynthError {
    fn from(e: ProfileError) -> SynthError {
        SynthError::InvalidProfile(e)
    }
}

/// How the clone models data locality.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MemoryModel {
    /// The paper's microarchitecture-independent model: every static
    /// load/store walks its own fixed-stride, fixed-length stream taken
    /// from the profile (§3.1.4).
    StrideStreams,
    /// Prior-work baseline (Bell & John): generate accesses calibrated to
    /// hit a target L1 miss ratio measured on one reference configuration.
    /// Memory ops are split between a cache-resident hot buffer and a
    /// large conflict-free streaming region so that the expected dynamic
    /// miss ratio matches the target on the *reference* cache — and, as
    /// the paper shows, on little else.
    MissRateTarget {
        /// Target L1-D miss ratio on the reference configuration.
        miss_rate: f64,
        /// Line size of the reference cache (bytes).
        line_bytes: u32,
    },
}

/// How the clone models control-flow predictability.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BranchModel {
    /// The paper's model: realize each branch's taken rate *and*
    /// transition rate with a modulo-of-iteration test (§3.1.5).
    TransitionRate,
    /// Prior-work baseline: match only the taken rate, with a
    /// pseudo-random direction sequence (the strawman of §3.1.5 — same
    /// taken rate, none of the predictability).
    TakenRateOnly,
}

/// Parameters of clone synthesis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SynthesisParams {
    /// RNG seed; the same profile + params yields the same clone.
    pub seed: u64,
    /// Number of basic-block instances to instantiate from the SFG
    /// (paper step 9's "target number of basic blocks"). `0` selects the
    /// automatic size: four instances per SFG node, clamped to [24, 400] —
    /// enough for statistical coverage while keeping the clone's static
    /// footprint (and thus its I-cache and branch-aliasing behaviour)
    /// commensurate with the original.
    pub target_blocks: u32,
    /// Desired dynamic instruction count; sets the outer-loop trip count
    /// (paper step 11; statistical simulation practice is ~1 M).
    pub target_dynamic: u64,
    /// Memory model (the paper's, or the prior-work baseline).
    pub memory_model: MemoryModel,
    /// Branching model (the paper's, or the prior-work baseline).
    pub branch_model: BranchModel,
    /// Use per-(predecessor, block) dependency statistics (§3.1.1). When
    /// false, dependency distances are drawn from per-block merged
    /// statistics — the granularity ablation.
    pub context_sensitive: bool,
}

impl Default for SynthesisParams {
    fn default() -> SynthesisParams {
        SynthesisParams {
            seed: 0x5EED,
            target_blocks: 0,
            target_dynamic: 1_000_000,
            memory_model: MemoryModel::StrideStreams,
            branch_model: BranchModel::TransitionRate,
            context_sensitive: true,
        }
    }
}
