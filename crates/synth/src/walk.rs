//! The statistical-flow-graph walk (paper §3.2 steps 1, 6, 8, 9).

use perfclone_profile::{ProfileError, WorkloadProfile};
use rand::rngs::StdRng;
use rand::Rng;

use crate::SynthError;

/// One basic-block instance produced by the walk: which SFG node to
/// instantiate and which node preceded it (for context-sensitive
/// dependency statistics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct BlockInstance {
    /// SFG node index.
    pub node: u32,
    /// Predecessor node index, `u32::MAX` when the instance was (re)seeded
    /// from the occurrence CDF.
    pub pred: u32,
}

/// Walks the SFG: seed a node from the occurrence-frequency CDF (step 1),
/// follow outgoing-edge probabilities (step 8), decrement occurrences
/// (step 6), and reseed whenever a node has no successors (step 8), until
/// `target_blocks` instances exist (step 9).
///
/// # Errors
///
/// Returns [`SynthError::InvalidProfile`] for an empty profile and
/// [`SynthError::WalkBudgetExhausted`] if the walk somehow outruns its
/// instance budget (the runaway guard for degenerate flow graphs).
pub(crate) fn walk_sfg(
    profile: &WorkloadProfile,
    target_blocks: u32,
    body_budget: u32,
    rng: &mut StdRng,
) -> Result<Vec<BlockInstance>, SynthError> {
    if profile.nodes.is_empty() {
        return Err(SynthError::InvalidProfile(ProfileError::Empty { name: profile.name.clone() }));
    }
    // Scale each node's occurrence count to the clone's size (step 6 only
    // works if the counts are commensurate with the number of blocks being
    // generated): node i gets a quota proportional to its execution
    // frequency, with at least one instance, sized so the total body fits
    // the instruction budget.
    let total_execs: f64 = profile.nodes.iter().map(|n| n.execs as f64).sum();
    let mean_size: f64 =
        profile.nodes.iter().map(|n| n.execs as f64 * f64::from(n.size.max(1))).sum::<f64>()
            / total_execs.max(1.0);
    let slots = if body_budget == u32::MAX {
        u64::from(target_blocks)
    } else {
        ((f64::from(body_budget) / mean_size.max(1.0)) as u64).clamp(1, u64::from(target_blocks))
    };
    let mut remaining: Vec<f64> = profile
        .nodes
        .iter()
        .map(|n| ((n.execs as f64 / total_execs.max(1.0)) * slots as f64).round().max(1.0))
        .collect();
    // Pre-resolve successor lists.
    let succs: Vec<Vec<(u32, f64)>> =
        (0..profile.nodes.len()).map(|i| profile.successors(i as u32)).collect();

    // Every iteration consumes one unit of some node's quota, so the
    // instance count is bounded by the quota total. The explicit budget is
    // the runaway backstop should that invariant ever break (e.g. a future
    // edit that forgets to decrement) — better a typed error than a hang.
    let instance_budget = (remaining.iter().map(|&r| r as usize).sum::<usize>()).saturating_add(16);

    let mut out = Vec::new();
    let mut body = 0u32;
    let mut reseeds = 0u64;
    let mut cur: Option<(u32, u32)> = None; // (node, pred)
    loop {
        if out.len() >= instance_budget {
            return Err(SynthError::WalkBudgetExhausted {
                instances: out.len(),
                budget: instance_budget,
            });
        }
        let (node, pred) = match cur.take() {
            Some(np) if remaining[np.0 as usize] > 0.0 => np,
            _ => {
                if remaining.iter().all(|&r| r <= 0.0) {
                    break;
                }
                reseeds += 1;
                (sample_cdf(&remaining, rng), u32::MAX)
            }
        };
        // The instruction budget keeps the clone's static footprint (and
        // thus its I-cache behaviour) commensurate with the original even
        // when blocks are huge (unrolled crypto rounds, say).
        let size = profile.nodes[node as usize].size.max(1);
        // Quotas already total about one budget; the hard stop at twice
        // the budget is a backstop against quota-floor inflation on
        // profiles with very many rarely-executed nodes.
        if !out.is_empty() && body.saturating_add(size) > body_budget.saturating_mul(2) {
            break;
        }
        body = body.saturating_add(size);
        out.push(BlockInstance { node, pred });
        remaining[node as usize] -= 1.0;

        let outgoing = &succs[node as usize];
        if outgoing.is_empty() {
            continue; // reseed next iteration (step 8)
        }
        let next = sample_edges(outgoing, rng);
        cur = Some((next, node));
    }
    // Published once per walk (the loop itself stays telemetry-free).
    perfclone_obs::count!("synth.walk.steps", out.len() as u64);
    perfclone_obs::count!("synth.walk.reseeds", reseeds);
    perfclone_obs::count!("synth.walk.body_instrs", u64::from(body));
    perfclone_obs::gauge!("synth.walk.instance_budget", instance_budget as u64);
    Ok(out)
}

fn sample_cdf(weights: &[f64], rng: &mut StdRng) -> u32 {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        // All occurrences consumed: fall back to uniform.
        return rng.gen_range(0..weights.len()) as u32;
    }
    let mut x = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i as u32;
        }
    }
    weights.len() as u32 - 1
}

fn sample_edges(edges: &[(u32, f64)], rng: &mut StdRng) -> u32 {
    let mut x = rng.gen::<f64>();
    for (to, p) in edges {
        x -= p;
        if x <= 0.0 {
            return *to;
        }
    }
    // Callers only reach here with a non-empty edge list; node 0 is the
    // harmless reseed target should that ever change.
    edges.last().map(|e| e.0).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfclone_profile::{BlockProfile, EdgeProfile};
    use rand::SeedableRng;

    fn two_node_profile(bias: u64) -> WorkloadProfile {
        let block = |pc: u32, execs: u64| BlockProfile {
            start_pc: pc,
            size: 4,
            execs,
            class_counts: [0; 10],
            mem_ops: vec![],
            branch: None,
        };
        WorkloadProfile {
            name: "t".into(),
            total_instrs: 0,
            nodes: vec![block(0, bias), block(10, 100)],
            edges: vec![
                EdgeProfile { from: 0, to: 0, count: bias },
                EdgeProfile { from: 0, to: 1, count: bias / 9 },
                EdgeProfile { from: 1, to: 0, count: 100 },
            ],
            contexts: vec![],
            streams: vec![],
            branches: vec![],
        }
    }

    #[test]
    fn walk_produces_requested_count() {
        let p = two_node_profile(900);
        let mut rng = StdRng::seed_from_u64(1);
        let w = walk_sfg(&p, 200, u32::MAX, &mut rng).unwrap();
        // Quota rounding may move the count by a node or two.
        assert!((195..=205).contains(&w.len()), "got {} instances", w.len());
    }

    #[test]
    fn walk_respects_frequencies() {
        let p = two_node_profile(900);
        let mut rng = StdRng::seed_from_u64(2);
        let w = walk_sfg(&p, 500, u32::MAX, &mut rng).unwrap();
        let hot = w.iter().filter(|b| b.node == 0).count();
        // Node 0 executes 9x more often; the walk should reflect that.
        assert!(hot > 300, "hot node visited only {hot}/500 times");
    }

    #[test]
    fn predecessors_follow_edges() {
        let p = two_node_profile(900);
        let mut rng = StdRng::seed_from_u64(3);
        let w = walk_sfg(&p, 300, u32::MAX, &mut rng).unwrap();
        for pair in w.windows(2) {
            if pair[1].pred != u32::MAX {
                assert_eq!(pair[1].pred, pair[0].node);
            }
        }
    }

    #[test]
    fn walk_is_deterministic_per_seed() {
        let p = two_node_profile(900);
        let a = walk_sfg(&p, 100, u32::MAX, &mut StdRng::seed_from_u64(7)).unwrap();
        let b = walk_sfg(&p, 100, u32::MAX, &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_profile_yields_typed_error() {
        let mut p = two_node_profile(900);
        p.nodes.clear();
        let err = walk_sfg(&p, 100, u32::MAX, &mut StdRng::seed_from_u64(8)).unwrap_err();
        assert!(matches!(err, SynthError::InvalidProfile(_)), "got {err:?}");
    }
}
