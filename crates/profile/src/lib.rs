//! # perfclone-profile
//!
//! Microarchitecture-independent workload profiling (paper §3.1).
//!
//! The profiler consumes the retired-instruction stream of a program (via
//! `perfclone-sim`'s [`Observer`](perfclone_sim::Observer) hook) and builds a
//! [`WorkloadProfile`] containing exactly the attribute families the paper
//! measures:
//!
//! * the **statistical flow graph** — dynamic basic blocks, execution
//!   frequencies and transition counts (§3.1.1),
//! * the **instruction mix** per block (§3.1.2),
//! * **data dependency distance distributions**, for registers and memory,
//!   per (predecessor, block) context (§3.1.3),
//! * **per-static-load/store stride streams** — dominant stride, stream
//!   length, coverage (§3.1.4),
//! * **per-static-branch taken rate and transition rate** (§3.1.5).
//!
//! Everything in the profile is a function of the program's architectural
//! execution only; no cache, predictor, or pipeline state is consulted. The
//! profile is serializable — it is the artifact a vendor would disseminate
//! instead of the proprietary binary.
//!
//! # Example
//!
//! ```
//! use perfclone_isa::{ProgramBuilder, Reg};
//! use perfclone_profile::profile_program;
//!
//! let mut b = ProgramBuilder::new("loop");
//! let (i, n) = (Reg::new(1), Reg::new(2));
//! b.li(i, 0);
//! b.li(n, 100);
//! let top = b.label();
//! b.bind(top);
//! b.addi(i, i, 1);
//! b.blt(i, n, top);
//! b.halt();
//! let p = b.build();
//!
//! let profile = profile_program(&p, 10_000)?;
//! assert_eq!(profile.total_instrs, 2 + 200 + 1);
//! assert!(!profile.nodes.is_empty());
//! # Ok::<(), perfclone_profile::ProfileError>(())
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod collect;
mod error;
mod hist;
mod model;
mod report;

pub use collect::{profile_program, Profiler};
pub use error::ProfileError;
pub use hist::{DepHistogram, DEP_BUCKET_EDGES, NUM_DEP_BUCKETS};
pub use model::{
    BlockProfile, BranchProfile, ContextProfile, EdgeProfile, StreamProfile, WorkloadProfile,
};
pub use report::render_report;
