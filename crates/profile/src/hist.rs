//! Dependency-distance histograms (paper §3.1.3).

use serde::{Deserialize, Serialize};

/// Upper edges of the dependency-distance buckets used by the paper:
/// distance 1, ≤2, ≤4, ≤6, ≤8, ≤16, ≤32, and >32.
pub const DEP_BUCKET_EDGES: [u64; 7] = [1, 2, 4, 6, 8, 16, 32];

/// Number of dependency-distance buckets (the seven edges plus ">32").
pub const NUM_DEP_BUCKETS: usize = 8;

/// A histogram over producer→consumer dependency distances, bucketed as in
/// the paper (§3.1.3).
///
/// # Example
///
/// ```
/// use perfclone_profile::DepHistogram;
/// let mut h = DepHistogram::new();
/// h.record(1);
/// h.record(3);
/// h.record(100);
/// assert_eq!(h.total(), 3);
/// assert_eq!(h.counts()[0], 1); // distance 1
/// assert_eq!(h.counts()[2], 1); // distance <= 4
/// assert_eq!(h.counts()[7], 1); // distance > 32
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepHistogram {
    counts: [u64; NUM_DEP_BUCKETS],
}

impl DepHistogram {
    /// Creates an empty histogram.
    pub fn new() -> DepHistogram {
        DepHistogram::default()
    }

    /// Builds a histogram directly from bucket counts — for deserialized,
    /// synthetic, or fault-injected data.
    pub fn from_counts(counts: [u64; NUM_DEP_BUCKETS]) -> DepHistogram {
        DepHistogram { counts }
    }

    /// Bucket index for a dependency distance (`distance >= 1`).
    #[inline]
    pub fn bucket(distance: u64) -> usize {
        match DEP_BUCKET_EDGES.iter().position(|&e| distance <= e) {
            Some(i) => i,
            None => NUM_DEP_BUCKETS - 1,
        }
    }

    /// Records one dependency of the given distance.
    #[inline]
    pub fn record(&mut self, distance: u64) {
        self.counts[Self::bucket(distance)] += 1;
    }

    /// The raw bucket counts.
    pub fn counts(&self) -> &[u64; NUM_DEP_BUCKETS] {
        &self.counts
    }

    /// Total recorded dependencies. Saturates instead of overflowing so
    /// corrupted (absurdly large) bucket counts stay panic-free.
    pub fn total(&self) -> u64 {
        self.counts.iter().fold(0u64, |acc, c| acc.saturating_add(*c))
    }

    /// Merges another histogram into this one, saturating on overflow.
    pub fn merge(&mut self, other: &DepHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
    }

    /// Samples a representative distance for bucket `idx` — the bucket's
    /// upper edge, or 48 for the overflow bucket (the synthesizer's
    /// realization choice).
    pub fn representative(idx: usize) -> u64 {
        if idx < DEP_BUCKET_EDGES.len() {
            DEP_BUCKET_EDGES[idx]
        } else {
            48
        }
    }

    /// The bucket probabilities (empty histogram yields all zeros).
    pub fn probabilities(&self) -> [f64; NUM_DEP_BUCKETS] {
        let total = self.total();
        let mut out = [0.0; NUM_DEP_BUCKETS];
        if total > 0 {
            for (o, c) in out.iter_mut().zip(self.counts.iter()) {
                *o = *c as f64 / total as f64;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(DepHistogram::bucket(1), 0);
        assert_eq!(DepHistogram::bucket(2), 1);
        assert_eq!(DepHistogram::bucket(3), 2);
        assert_eq!(DepHistogram::bucket(4), 2);
        assert_eq!(DepHistogram::bucket(5), 3);
        assert_eq!(DepHistogram::bucket(8), 4);
        assert_eq!(DepHistogram::bucket(16), 5);
        assert_eq!(DepHistogram::bucket(32), 6);
        assert_eq!(DepHistogram::bucket(33), 7);
        assert_eq!(DepHistogram::bucket(1_000_000), 7);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = DepHistogram::new();
        a.record(1);
        let mut b = DepHistogram::new();
        b.record(1);
        b.record(40);
        a.merge(&b);
        assert_eq!(a.counts()[0], 2);
        assert_eq!(a.counts()[7], 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut h = DepHistogram::new();
        for d in [1, 2, 2, 7, 30, 99] {
            h.record(d);
        }
        let sum: f64 = h.probabilities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn representatives_fall_in_their_bucket() {
        for idx in 0..NUM_DEP_BUCKETS {
            let r = DepHistogram::representative(idx);
            assert_eq!(DepHistogram::bucket(r), idx);
        }
    }
}
