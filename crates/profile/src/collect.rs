//! The online profile collector.
//!
//! Hot-path note: every per-retired-instruction table — the `(pred, cur)`
//! context map, the edge map, the per-stream stride/run maps, and above
//! all the store-chunk `mem_writer` table — is keyed by small integers
//! the profiler itself produces, never by attacker-controlled data, so
//! they use the deterministic multiply-rotate [`FxHashMap`] instead of
//! `std`'s SipHash map. Profile output is unaffected: every map either
//! has hash-independent insertion logic or is sorted (or reduced by a
//! total order) before it reaches the [`WorkloadProfile`].

use rustc_hash::FxHashMap;

use perfclone_isa::{Instr, Program};
use perfclone_sim::{DynInstr, Observer, Simulator};

use crate::error::ProfileError;
use crate::hist::DepHistogram;
use crate::model::{
    BlockProfile, BranchProfile, ContextProfile, EdgeProfile, StreamProfile, WorkloadProfile,
};

/// Cap on distinct strides tracked per static memory instruction; a real
/// profiler bounds its tables the same way.
const MAX_STRIDES: usize = 128;

const ENTRY: u32 = u32::MAX;

#[derive(Debug, Default)]
struct NodeCollect {
    start_pc: u32,
    size: u32,
    execs: u64,
    class_counts: [u32; 10],
    mem_ops: Vec<u32>,
    branch: Option<u32>,
    collecting: bool,
}

#[derive(Debug, Default)]
struct CtxCollect {
    count: u64,
    reg_deps: DepHistogram,
    mem_deps: DepHistogram,
}

#[derive(Debug)]
struct StreamCollect {
    pc: u32,
    is_store: bool,
    width: u8,
    execs: u64,
    last_addr: Option<u64>,
    min_addr: u64,
    max_addr: u64,
    stride_counts: FxHashMap<i64, u64>,
    overflow: u64,
    cur_stride: Option<i64>,
    cur_run: u64,
    run_stats: FxHashMap<i64, (u64, u64)>,
    fwd_breaks: u64,
    back_breaks: u64,
    back_jump_sum: u64,
}

impl StreamCollect {
    fn new(pc: u32, is_store: bool, width: u8) -> StreamCollect {
        StreamCollect {
            pc,
            is_store,
            width,
            execs: 0,
            last_addr: None,
            min_addr: u64::MAX,
            max_addr: 0,
            stride_counts: FxHashMap::default(),
            overflow: 0,
            cur_stride: None,
            cur_run: 0,
            run_stats: FxHashMap::default(),
            fwd_breaks: 0,
            back_breaks: 0,
            back_jump_sum: 0,
        }
    }

    fn access(&mut self, addr: u64) {
        self.execs += 1;
        self.min_addr = self.min_addr.min(addr);
        self.max_addr = self.max_addr.max(addr);
        if let Some(last) = self.last_addr {
            let stride = addr.wrapping_sub(last) as i64;
            if self.stride_counts.len() < MAX_STRIDES || self.stride_counts.contains_key(&stride) {
                *self.stride_counts.entry(stride).or_insert(0) += 1;
            } else {
                self.overflow += 1;
            }
            match self.cur_stride {
                Some(s) if s == stride => self.cur_run += 1,
                _ => {
                    // A run break: classify the breaking jump's direction.
                    // Singleton runs are excursions (e.g. the jump itself);
                    // exiting one back onto the dominant stride is a resume,
                    // not a structural break, so only multi-access runs
                    // classify.
                    if self.cur_stride.is_some() && self.cur_run > 1 {
                        if stride < 0 {
                            self.back_breaks += 1;
                            self.back_jump_sum += stride.unsigned_abs();
                        } else {
                            self.fwd_breaks += 1;
                        }
                    }
                    self.end_run();
                    self.cur_stride = Some(stride);
                    self.cur_run = 1;
                }
            }
        }
        self.last_addr = Some(addr);
    }

    fn end_run(&mut self) {
        if let Some(s) = self.cur_stride.take() {
            let e = self.run_stats.entry(s).or_insert((0, 0));
            e.0 += 1;
            e.1 += self.cur_run;
            self.cur_run = 0;
        }
    }

    fn finish(mut self) -> StreamProfile {
        self.end_run();
        // Total order: highest count, then smallest magnitude, then
        // positive before negative — so profiles are deterministic even
        // when stride counts tie (e.g. a length-2 ping-pong stream).
        let (dominant_stride, dominant_count) = self
            .stride_counts
            .iter()
            .max_by_key(|(s, c)| (**c, std::cmp::Reverse(s.unsigned_abs()), **s >= 0))
            .map(|(s, c)| (*s, *c))
            .unwrap_or((0, 0));
        let mean_run_len = match self.run_stats.get(&dominant_stride) {
            Some(&(runs, len_sum)) if runs > 0 => len_sum as f64 / runs as f64,
            _ => 1.0,
        };
        StreamProfile {
            pc: self.pc,
            is_store: self.is_store,
            execs: self.execs,
            dominant_stride,
            dominant_count,
            mean_run_len,
            distinct_strides: self.stride_counts.len() as u32,
            width: self.width,
            min_addr: if self.min_addr == u64::MAX { 0 } else { self.min_addr },
            max_addr: self.max_addr,
            fwd_breaks: self.fwd_breaks,
            back_breaks: self.back_breaks,
            mean_back_jump: if self.back_breaks > 0 {
                self.back_jump_sum as f64 / self.back_breaks as f64
            } else {
                0.0
            },
        }
    }
}

#[derive(Debug)]
struct BranchCollect {
    pc: u32,
    execs: u64,
    taken: u64,
    transitions: u64,
    last_dir: Option<bool>,
    counters: Vec<u8>,
    history_hits: u64,
}

impl Default for BranchCollect {
    fn default() -> BranchCollect {
        BranchCollect {
            pc: 0,
            execs: 0,
            taken: 0,
            transitions: 0,
            last_dir: None,
            counters: vec![1; 256],
            history_hits: 0,
        }
    }
}

/// An [`Observer`] that builds a [`WorkloadProfile`] from the retired
/// instruction stream — the paper's "workload profiler" box (Figure 1).
#[derive(Debug)]
pub struct Profiler {
    name: String,
    pos: u64,
    node_ids: FxHashMap<u32, u32>,
    nodes: Vec<NodeCollect>,
    edges: FxHashMap<(u32, u32), u64>,
    contexts: FxHashMap<(u32, u32), CtxCollect>,
    cur_node: Option<u32>,
    prev_node: u32,
    cur_ctx: (u32, u32),
    reg_writer: [u64; 64],
    mem_writer: FxHashMap<u64, u64>,
    stream_ids: FxHashMap<u32, u32>,
    streams: Vec<StreamCollect>,
    branch_ids: FxHashMap<u32, u32>,
    branches: Vec<BranchCollect>,
    global_history: u8,
}

impl Profiler {
    /// Creates a profiler for a program with the given name.
    pub fn new(name: impl Into<String>) -> Profiler {
        Profiler {
            name: name.into(),
            pos: 0,
            node_ids: FxHashMap::default(),
            nodes: Vec::new(),
            edges: FxHashMap::default(),
            contexts: FxHashMap::default(),
            cur_node: None,
            prev_node: ENTRY,
            cur_ctx: (ENTRY, ENTRY),
            reg_writer: [0; 64],
            mem_writer: FxHashMap::default(),
            stream_ids: FxHashMap::default(),
            streams: Vec::new(),
            branch_ids: FxHashMap::default(),
            branches: Vec::new(),
            global_history: 0,
        }
    }

    fn intern_node(&mut self, start_pc: u32) -> u32 {
        if let Some(&id) = self.node_ids.get(&start_pc) {
            return id;
        }
        let id = self.nodes.len() as u32;
        self.node_ids.insert(start_pc, id);
        self.nodes.push(NodeCollect { start_pc, collecting: true, ..NodeCollect::default() });
        id
    }

    fn intern_stream(&mut self, pc: u32, is_store: bool, width: u8) -> u32 {
        if let Some(&id) = self.stream_ids.get(&pc) {
            return id;
        }
        let id = self.streams.len() as u32;
        self.stream_ids.insert(pc, id);
        self.streams.push(StreamCollect::new(pc, is_store, width));
        id
    }

    fn intern_branch(&mut self, pc: u32) -> u32 {
        if let Some(&id) = self.branch_ids.get(&pc) {
            return id;
        }
        let id = self.branches.len() as u32;
        self.branch_ids.insert(pc, id);
        self.branches.push(BranchCollect { pc, ..BranchCollect::default() });
        id
    }

    /// Finalizes collection into a [`WorkloadProfile`].
    pub fn finish(self) -> WorkloadProfile {
        let nodes = self
            .nodes
            .into_iter()
            .map(|n| BlockProfile {
                start_pc: n.start_pc,
                size: n.size,
                execs: n.execs,
                class_counts: n.class_counts,
                mem_ops: n.mem_ops,
                branch: n.branch,
            })
            .collect();
        let mut edges: Vec<EdgeProfile> = self
            .edges
            .into_iter()
            .map(|((from, to), count)| EdgeProfile { from, to, count })
            .collect();
        edges.sort_by_key(|e| (e.from, e.to));
        let mut contexts: Vec<ContextProfile> = self
            .contexts
            .into_iter()
            .map(|((pred, node), c)| ContextProfile {
                pred,
                node,
                count: c.count,
                reg_deps: c.reg_deps,
                mem_deps: c.mem_deps,
            })
            .collect();
        contexts.sort_by_key(|c| (c.node, c.pred));
        let streams = self.streams.into_iter().map(StreamCollect::finish).collect();
        let branches = self
            .branches
            .into_iter()
            .map(|b| BranchProfile {
                pc: b.pc,
                execs: b.execs,
                taken: b.taken,
                transitions: b.transitions,
                history_hits: b.history_hits,
            })
            .collect();
        WorkloadProfile {
            name: self.name,
            total_instrs: self.pos,
            nodes,
            edges,
            contexts,
            streams,
            branches,
        }
    }
}

impl Observer for Profiler {
    fn on_retire(&mut self, d: &DynInstr) {
        // Block entry.
        let node = match self.cur_node {
            Some(n) => n,
            None => {
                let n = self.intern_node(d.pc);
                self.cur_node = Some(n);
                self.nodes[n as usize].execs += 1;
                if self.prev_node != ENTRY {
                    *self.edges.entry((self.prev_node, n)).or_insert(0) += 1;
                }
                self.cur_ctx = (self.prev_node, n);
                self.contexts.entry(self.cur_ctx).or_default().count += 1;
                n
            }
        };
        let collecting = self.nodes[node as usize].collecting;

        // Static block composition (first complete visit only).
        let mut stream_id = None;
        if let Some((_, width, is_store)) = d.instr.mem_ref() {
            stream_id = Some(self.intern_stream(d.pc, is_store, width.bytes() as u8));
        }
        if collecting {
            let n = &mut self.nodes[node as usize];
            n.size += 1;
            n.class_counts[d.instr.class().index()] += 1;
            if let Some(sid) = stream_id {
                n.mem_ops.push(sid);
            }
        }

        // Dependency distances (per context). The context was interned at
        // block entry; `or_default` keeps this total without an `expect`.
        let pos = self.pos + 1; // 1-based writer positions; 0 = none
        {
            let ctx = self.contexts.entry(self.cur_ctx).or_default();
            for u in d.instr.uses() {
                let w = self.reg_writer[u.flat_index()];
                if w != 0 {
                    ctx.reg_deps.record(pos - w);
                }
            }
            if let Some(m) = d.mem {
                if !m.is_store {
                    if let Some(&w) = self.mem_writer.get(&(m.addr >> 3)) {
                        ctx.mem_deps.record(pos - w);
                    }
                }
            }
        }
        for def in d.instr.defs() {
            self.reg_writer[def.flat_index()] = pos;
        }
        if let Some(m) = d.mem {
            if m.is_store {
                let first = m.addr >> 3;
                let last = (m.addr + u64::from(m.bytes) - 1) >> 3;
                for chunk in first..=last {
                    self.mem_writer.insert(chunk, pos);
                }
            }
            // Stream stride tracking.
            if let Some(sid) = stream_id {
                self.streams[sid as usize].access(m.addr);
            }
        }

        // Branch direction statistics.
        if d.instr.is_cond_branch() {
            let bid = self.intern_branch(d.pc);
            if collecting {
                self.nodes[node as usize].branch = Some(bid);
            }
            let b = &mut self.branches[bid as usize];
            b.execs += 1;
            if d.taken {
                b.taken += 1;
            }
            if let Some(prev) = b.last_dir {
                if prev != d.taken {
                    b.transitions += 1;
                }
            }
            b.last_dir = Some(d.taken);
            // Global-history direction model (a sequence-structure
            // attribute, not a hardware predictor): predict each branch
            // from the last eight directions of *any* branch, capturing
            // both self-structure and inter-branch correlation (the two
            // predictability sources of paper 3.1.5); then update.
            let idx = self.global_history as usize;
            let predicted = b.counters[idx] >= 2;
            if predicted == d.taken {
                b.history_hits += 1;
            }
            let c = &mut b.counters[idx];
            *c = if d.taken { (*c + 1).min(3) } else { c.saturating_sub(1) };
            self.global_history = self.global_history.wrapping_shl(1) | u8::from(d.taken);
        }

        // Block end.
        let ends = d.instr.is_control() || matches!(d.instr, Instr::Halt);
        if ends {
            self.nodes[node as usize].collecting = false;
            self.prev_node = node;
            self.cur_node = None;
        }

        self.pos += 1;
    }
}

/// Profiles a program for up to `limit` retired instructions — the
/// convenience entry point combining the functional simulator and the
/// [`Profiler`].
///
/// # Errors
///
/// Returns [`ProfileError::Fault`] if the program faults (escapes its text
/// section) and [`ProfileError::Empty`] if nothing retired (e.g. a zero
/// `limit` or an empty program), so no stage downstream ever sees a profile
/// without SFG nodes.
pub fn profile_program(program: &Program, limit: u64) -> Result<WorkloadProfile, ProfileError> {
    let _span = perfclone_obs::span!("profile.collect");
    let mut profiler = Profiler::new(program.name());
    let mut sim = Simulator::new(program);
    sim.run_with(limit, &mut profiler)?;
    let profile = profiler.finish();
    if profile.nodes.is_empty() {
        return Err(ProfileError::Empty { name: profile.name });
    }
    // Telemetry is published once per profile, never per retired
    // instruction, to keep the collector loop clean.
    perfclone_obs::count!("profile.instrs", profile.total_instrs);
    perfclone_obs::count!("profile.blocks", profile.nodes.len() as u64);
    perfclone_obs::count!("profile.edges", profile.edges.len() as u64);
    perfclone_obs::count!("profile.streams", profile.streams.len() as u64);
    perfclone_obs::count!("profile.branches", profile.branches.len() as u64);
    if perfclone_obs::enabled() {
        for n in &profile.nodes {
            perfclone_obs::record!("profile.block_size", u64::from(n.size));
        }
    }
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfclone_isa::{MemWidth, ProgramBuilder, Reg, StreamDesc};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    /// A loop with one strided load, one biased branch.
    fn strided_loop(n: i64, stride: i64) -> Program {
        let mut b = ProgramBuilder::new("strided");
        let id = b.stream(StreamDesc { base: 0x8000, stride, length: 10_000 });
        let (i, lim, x) = (r(1), r(2), r(3));
        b.li(i, 0);
        b.li(lim, n);
        let top = b.label();
        b.bind(top);
        b.ld_stream(x, id, MemWidth::B8);
        b.add(x, x, i);
        b.addi(i, i, 1);
        b.blt(i, lim, top);
        b.halt();
        b.build()
    }

    #[test]
    fn sfg_structure_of_simple_loop() {
        let p = strided_loop(100, 16);
        let prof = profile_program(&p, 100_000).unwrap();
        // Nodes: entry block (li,li,ld,add,addi,blt), loop body (ld..blt),
        // and the halt block.
        assert_eq!(prof.nodes.len(), 3);
        let body = prof.nodes.iter().find(|n| n.start_pc == 2).expect("loop body node");
        assert_eq!(body.execs, 99);
        assert_eq!(body.size, 4);
        // Self-edge dominates.
        let self_edge = prof.edges.iter().find(|e| {
            prof.nodes[e.from as usize].start_pc == 2 && prof.nodes[e.to as usize].start_pc == 2
        });
        assert_eq!(self_edge.unwrap().count, 98);
    }

    #[test]
    fn stride_detection() {
        let p = strided_loop(200, 24);
        let prof = profile_program(&p, 100_000).unwrap();
        assert_eq!(prof.streams.len(), 1);
        let s = &prof.streams[0];
        assert_eq!(s.dominant_stride, 24);
        assert_eq!(s.execs, 200);
        assert_eq!(s.dominant_count, 199);
        assert!((prof.stride_coverage() - 1.0).abs() < 1e-12);
        assert_eq!(s.distinct_strides, 1);
    }

    #[test]
    fn branch_statistics() {
        let p = strided_loop(100, 8);
        let prof = profile_program(&p, 100_000).unwrap();
        assert_eq!(prof.branches.len(), 1);
        let b = &prof.branches[0];
        assert_eq!(b.execs, 100);
        assert_eq!(b.taken, 99);
        // Directions: 99 taken then 1 not-taken -> one transition.
        assert_eq!(b.transitions, 1);
        assert!(b.taken_rate() > 0.98);
        assert!(b.transition_rate() < 0.02);
    }

    #[test]
    fn alternating_branch_has_high_transition_rate() {
        // Branch taken iff i is even.
        let mut b = ProgramBuilder::new("alt");
        let (i, lim, t) = (r(1), r(2), r(3));
        b.li(i, 0);
        b.li(lim, 100);
        let top = b.label();
        let skip = b.label();
        b.bind(top);
        b.andi(t, i, 1);
        b.bnez(t, skip);
        b.nop();
        b.bind(skip);
        b.addi(i, i, 1);
        b.blt(i, lim, top);
        b.halt();
        let prof = profile_program(&b.build(), 100_000).unwrap();
        let alt = prof.branches.iter().find(|br| br.pc == 3).unwrap();
        assert!(alt.transition_rate() > 0.95, "rate = {}", alt.transition_rate());
        assert!((alt.taken_rate() - 0.5).abs() < 0.02);
    }

    #[test]
    fn register_dependency_distances() {
        // add consumes the value produced by the instruction 1 earlier.
        let mut b = ProgramBuilder::new("dep");
        b.li(r(1), 5);
        b.addi(r(2), r(1), 1); // distance 1
        b.nop();
        b.nop();
        b.add(r(3), r(2), r(1)); // distances 3 and 4
        b.halt();
        let prof = profile_program(&b.build(), 100).unwrap();
        let mut merged = DepHistogram::new();
        for c in &prof.contexts {
            merged.merge(&c.reg_deps);
        }
        assert_eq!(merged.total(), 3);
        assert_eq!(merged.counts()[0], 1); // distance 1
        assert_eq!(merged.counts()[2], 2); // distances 3, 4 in <=4 bucket
    }

    #[test]
    fn memory_dependency_distances() {
        let mut b = ProgramBuilder::new("memdep");
        let a = b.alloc(8);
        b.li(r(1), a as i64);
        b.li(r(2), 42);
        b.sd(r(2), r(1), 0);
        b.nop();
        b.ld(r(3), r(1), 0); // store->load distance 2
        b.halt();
        let prof = profile_program(&b.build(), 100).unwrap();
        let mut merged = DepHistogram::new();
        for c in &prof.contexts {
            merged.merge(&c.mem_deps);
        }
        assert_eq!(merged.total(), 1);
        assert_eq!(merged.counts()[1], 1); // <=2 bucket
    }

    #[test]
    fn profile_counts_all_instructions() {
        let p = strided_loop(10, 8);
        let prof = profile_program(&p, 100_000).unwrap();
        // 2 setup + 10 * 4 loop + halt
        assert_eq!(prof.total_instrs, 2 + 40 + 1);
        let execs_weighted: u64 = prof.nodes.iter().map(|n| u64::from(n.size) * n.execs).sum();
        assert_eq!(execs_weighted, prof.total_instrs);
    }

    #[test]
    fn zero_limit_yields_typed_error() {
        let p = strided_loop(10, 8);
        assert!(matches!(profile_program(&p, 0), Err(ProfileError::Empty { .. })));
    }

    #[test]
    fn faulting_program_yields_typed_error() {
        let mut b = ProgramBuilder::new("fall");
        b.nop(); // no halt: falls off the end
        let err = profile_program(&b.build(), 100).unwrap_err();
        assert!(matches!(err, ProfileError::Fault(_)));
        assert!(err.to_string().contains("faulted"));
    }

    #[test]
    fn mean_block_size_is_weighted() {
        let p = strided_loop(100, 8);
        let prof = profile_program(&p, 100_000).unwrap();
        let m = prof.mean_block_size();
        assert!(m > 3.0 && m < 7.0, "mean block size {m}");
    }
}
