//! Typed errors for profile collection and structural validation.

use std::error::Error as StdError;
use std::fmt;

use perfclone_sim::SimError;

/// Errors surfaced by profile collection ([`profile_program`]) and by
/// structural validation ([`WorkloadProfile::check`]).
///
/// The structural variants exist so that a corrupted, truncated, or
/// hand-edited profile is rejected with a description of the first broken
/// cross-reference instead of panicking on an out-of-bounds index somewhere
/// downstream in the synthesizer.
///
/// [`profile_program`]: crate::profile_program
/// [`WorkloadProfile::check`]: crate::WorkloadProfile::check
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProfileError {
    /// The profiled program faulted during execution.
    Fault(SimError),
    /// The run retired no instructions, so the profile has no SFG nodes.
    Empty {
        /// Name of the profiled program.
        name: String,
    },
    /// An SFG edge references a node index outside `nodes`.
    EdgeNodeOutOfRange {
        /// Index of the offending edge.
        edge: usize,
        /// The dangling node index.
        node: u32,
        /// Number of nodes in the profile.
        nodes: usize,
    },
    /// A dependency context references a node index outside `nodes`.
    ContextNodeOutOfRange {
        /// Index of the offending context.
        context: usize,
        /// The dangling node index.
        node: u32,
        /// Number of nodes in the profile.
        nodes: usize,
    },
    /// A block's `mem_ops` entry references a stream outside `streams`.
    StreamIndexOutOfRange {
        /// Index of the offending node.
        node: usize,
        /// The dangling stream index.
        index: u32,
        /// Number of streams in the profile.
        streams: usize,
    },
    /// A block's `branch` field references a branch outside `branches`.
    BranchIndexOutOfRange {
        /// Index of the offending node.
        node: usize,
        /// The dangling branch index.
        index: u32,
        /// Number of branches in the profile.
        branches: usize,
    },
    /// A branch's `taken`/`transitions`/`history_hits` counts exceed its
    /// execution count.
    BranchCountsInconsistent {
        /// Index of the offending branch.
        branch: usize,
    },
    /// A stream's address bounds are inverted or its statistics are
    /// non-finite.
    StreamStatsInvalid {
        /// Index of the offending stream.
        stream: usize,
    },
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Fault(e) => write!(f, "program faulted during profiling: {e}"),
            ProfileError::Empty { name } => {
                write!(f, "profile of {name:?} is empty (no instructions retired)")
            }
            ProfileError::EdgeNodeOutOfRange { edge, node, nodes } => {
                write!(f, "SFG edge {edge} references node {node} of {nodes}")
            }
            ProfileError::ContextNodeOutOfRange { context, node, nodes } => {
                write!(f, "dependency context {context} references node {node} of {nodes}")
            }
            ProfileError::StreamIndexOutOfRange { node, index, streams } => {
                write!(f, "node {node} references stream {index} of {streams}")
            }
            ProfileError::BranchIndexOutOfRange { node, index, branches } => {
                write!(f, "node {node} references branch {index} of {branches}")
            }
            ProfileError::BranchCountsInconsistent { branch } => {
                write!(f, "branch {branch} has direction counts exceeding its executions")
            }
            ProfileError::StreamStatsInvalid { stream } => {
                write!(f, "stream {stream} has inverted bounds or non-finite statistics")
            }
        }
    }
}

impl StdError for ProfileError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            ProfileError::Fault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for ProfileError {
    fn from(e: SimError) -> ProfileError {
        ProfileError::Fault(e)
    }
}
