//! Human-readable characterization reports — the §3.1 attributes rendered
//! the way a workload-characterization study would present them.

use std::fmt::Write as _;

use perfclone_isa::InstrClass;

use crate::model::WorkloadProfile;

/// Renders a multi-section text report of a profile: run summary,
/// instruction mix, basic-block statistics, dependency distances, stream
/// table, and branch table.
///
/// # Example
///
/// ```
/// use perfclone_isa::{ProgramBuilder, Reg};
/// use perfclone_profile::{profile_program, render_report};
///
/// let mut b = ProgramBuilder::new("tiny");
/// b.li(Reg::new(1), 1);
/// b.halt();
/// let report = render_report(&profile_program(&b.build(), 1_000)?);
/// assert!(report.contains("instruction mix"));
/// # Ok::<(), perfclone_profile::ProfileError>(())
/// ```
pub fn render_report(profile: &WorkloadProfile) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "workload profile: {}", profile.name);
    let _ = writeln!(out, "  dynamic instructions : {}", profile.total_instrs);
    let _ =
        writeln!(out, "  SFG nodes / edges    : {} / {}", profile.nodes.len(), profile.edges.len());
    let _ = writeln!(out, "  contexts             : {}", profile.contexts.len());
    let _ = writeln!(out, "  mean basic block     : {:.2} instructions", profile.mean_block_size());
    let _ = writeln!(out, "  unique streams       : {}", profile.unique_streams());
    let _ = writeln!(
        out,
        "  single-stride coverage (Fig. 3 metric): {:.1}%",
        100.0 * profile.stride_coverage()
    );

    let _ = writeln!(out, "\ninstruction mix:");
    let mix = profile.global_mix();
    for class in InstrClass::ALL {
        let share = mix[class.index()];
        if share > 0.0005 {
            let bar = "#".repeat((share * 60.0).round() as usize);
            let _ = writeln!(out, "  {:8} {:5.1}%  {}", class.label(), 100.0 * share, bar);
        }
    }

    let _ = writeln!(out, "\ndependency distances (register, dynamic-weighted):");
    let mut merged = crate::hist::DepHistogram::new();
    for c in &profile.contexts {
        merged.merge(&c.reg_deps);
    }
    let probs = merged.probabilities();
    let labels = ["=1", "<=2", "<=4", "<=6", "<=8", "<=16", "<=32", ">32"];
    for (label, p) in labels.iter().zip(probs.iter()) {
        let bar = "#".repeat((p * 60.0).round() as usize);
        let _ = writeln!(out, "  {:4} {:5.1}%  {}", label, 100.0 * p, bar);
    }

    let _ = writeln!(out, "\ntop streams (by dynamic references):");
    let mut streams: Vec<_> = profile.streams.iter().collect();
    streams.sort_by_key(|s| std::cmp::Reverse(s.execs));
    for s in streams.iter().take(12) {
        let _ = writeln!(
            out,
            "  pc {:6} {:5} stride {:6} x{:<9} run {:8.1} footprint {:8} B",
            s.pc,
            if s.is_store { "store" } else { "load" },
            s.dominant_stride,
            s.execs,
            s.mean_run_len,
            s.max_addr - s.min_addr + u64::from(s.width)
        );
    }

    let _ = writeln!(out, "\ntop branches (by executions):");
    let mut branches: Vec<_> = profile.branches.iter().collect();
    branches.sort_by_key(|b| std::cmp::Reverse(b.execs));
    for b in branches.iter().take(12) {
        let _ = writeln!(
            out,
            "  pc {:6} x{:<9} taken {:5.1}%  transition {:5.1}%  predictability {:5.1}%",
            b.pc,
            b.execs,
            100.0 * b.taken_rate(),
            100.0 * b.transition_rate(),
            100.0 * b.predictability()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::profile_program;
    use perfclone_isa::{MemWidth, ProgramBuilder, Reg, StreamDesc};

    #[test]
    fn report_contains_all_sections() {
        let mut b = ProgramBuilder::new("rpt");
        let id = b.stream(StreamDesc { base: 0x1000, stride: 8, length: 64 });
        let (i, n) = (Reg::new(1), Reg::new(2));
        b.li(i, 0);
        b.li(n, 50);
        let top = b.label();
        b.bind(top);
        b.ld_stream(Reg::new(3), id, MemWidth::B8);
        b.addi(i, i, 1);
        b.blt(i, n, top);
        b.halt();
        let profile = profile_program(&b.build(), u64::MAX).unwrap();
        let text = render_report(&profile);
        for needle in [
            "workload profile: rpt",
            "instruction mix",
            "dependency distances",
            "top streams",
            "top branches",
            "single-stride coverage",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in report");
        }
    }

    #[test]
    fn report_orders_streams_by_references() {
        // Two loops with different trip counts: the hotter static load
        // must be listed first.
        let mut b = ProgramBuilder::new("two");
        let hot = b.stream(StreamDesc { base: 0x1000, stride: 8, length: 16 });
        let cold = b.stream(StreamDesc { base: 0x9000, stride: 8, length: 16 });
        let (i, n) = (Reg::new(1), Reg::new(2));
        b.li(i, 0);
        b.li(n, 80);
        let top1 = b.label();
        b.bind(top1);
        b.ld_stream(Reg::new(3), hot, MemWidth::B8);
        b.addi(i, i, 1);
        b.blt(i, n, top1);
        b.li(i, 0);
        b.li(n, 40);
        let top2 = b.label();
        b.bind(top2);
        b.ld_stream(Reg::new(5), cold, MemWidth::B8);
        b.addi(i, i, 1);
        b.blt(i, n, top2);
        b.halt();
        let profile = profile_program(&b.build(), u64::MAX).unwrap();
        let text = render_report(&profile);
        let hot_pos = text.find("x80").expect("hot stream listed");
        let cold_pos = text.find("x40").expect("cold stream listed");
        assert!(hot_pos < cold_pos, "hot stream should come first");
    }
}
