//! The serializable workload-profile model — the artifact a vendor
//! disseminates in place of the proprietary application.

#[allow(unused_imports)] // referenced by intra-doc links
use perfclone_isa::InstrClass;
use serde::{Deserialize, Serialize};

use crate::error::ProfileError;
use crate::hist::DepHistogram;

/// Profile of one node (dynamic basic block) of the statistical flow graph.
///
/// A block is identified by its start pc and runs to the first control
/// transfer at or after it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BlockProfile {
    /// Start pc of the block (identifies the node).
    pub start_pc: u32,
    /// Number of instructions in the block.
    pub size: u32,
    /// Dynamic execution count of the block.
    pub execs: u64,
    /// Static instruction-class counts over the block body, indexed by
    /// [`InstrClass::index`].
    pub class_counts: [u32; 10],
    /// Indices into [`WorkloadProfile::streams`] for the block's static
    /// loads/stores, in program order.
    pub mem_ops: Vec<u32>,
    /// Index into [`WorkloadProfile::branches`] when the block ends in a
    /// conditional branch.
    pub branch: Option<u32>,
}

impl BlockProfile {
    /// The block's instruction-mix fractions.
    pub fn mix(&self) -> [f64; 10] {
        let total: u32 = self.class_counts.iter().sum();
        let mut out = [0.0; 10];
        if total > 0 {
            for (o, c) in out.iter_mut().zip(self.class_counts.iter()) {
                *o = f64::from(*c) / f64::from(total);
            }
        }
        out
    }
}

/// One edge of the statistical flow graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeProfile {
    /// Source node index.
    pub from: u32,
    /// Destination node index.
    pub to: u32,
    /// Number of times the transition was observed.
    pub count: u64,
}

/// Dependency-distance statistics for one (predecessor, block) context
/// (§3.1.1: characteristics are kept per unique predecessor/successor pair).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ContextProfile {
    /// Predecessor node index (`u32::MAX` for the program entry).
    pub pred: u32,
    /// Node index.
    pub node: u32,
    /// Times this context executed.
    pub count: u64,
    /// Register producer→consumer distance histogram.
    pub reg_deps: DepHistogram,
    /// Memory (store→load) distance histogram.
    pub mem_deps: DepHistogram,
}

/// Stride statistics for one static load or store (§3.1.4).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StreamProfile {
    /// The static instruction's pc.
    pub pc: u32,
    /// `true` when the instruction is a store.
    pub is_store: bool,
    /// Dynamic executions.
    pub execs: u64,
    /// The most frequently observed stride (bytes). Zero when the
    /// instruction executed fewer than twice.
    pub dominant_stride: i64,
    /// Dynamic references (after the first) using the dominant stride.
    pub dominant_count: u64,
    /// Mean run length of constant-stride runs at the dominant stride.
    pub mean_run_len: f64,
    /// Number of distinct strides observed (capped during collection).
    pub distinct_strides: u32,
    /// Access width in bytes.
    pub width: u8,
    /// Lowest byte address touched.
    pub min_addr: u64,
    /// Highest byte address touched.
    pub max_addr: u64,
    /// Run breaks whose jump moved forward (continuing through the data
    /// object).
    pub fwd_breaks: u64,
    /// Run breaks whose jump moved backward (returning to re-walk a
    /// region).
    pub back_breaks: u64,
    /// Mean backward-jump magnitude in bytes (0 when none occurred).
    pub mean_back_jump: f64,
}

/// Direction statistics for one static conditional branch (§3.1.5).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BranchProfile {
    /// The branch's pc.
    pub pc: u32,
    /// Dynamic executions.
    pub execs: u64,
    /// Times the branch was taken.
    pub taken: u64,
    /// Times the branch switched direction relative to its previous
    /// execution.
    pub transitions: u64,
    /// Times a per-branch order-4 direction-history model predicted the
    /// next direction correctly — an information-theoretic measure of the
    /// direction sequence's structure (microarchitecture independent; it
    /// is a property of the sequence, like the transition rate, not of
    /// any hardware predictor).
    pub history_hits: u64,
}

impl BranchProfile {
    /// Fraction of executions that were taken.
    pub fn taken_rate(&self) -> f64 {
        if self.execs == 0 {
            0.0
        } else {
            self.taken as f64 / self.execs as f64
        }
    }

    /// Fraction of executions that switched direction (Haungs et al.).
    pub fn transition_rate(&self) -> f64 {
        if self.execs == 0 {
            0.0
        } else {
            self.transitions as f64 / self.execs as f64
        }
    }

    /// Fraction of executions the order-4 history model anticipated — near
    /// 1.0 for structured sequences (biased, alternating, periodic), near
    /// `max(t, 1-t)` for patternless ones.
    pub fn predictability(&self) -> f64 {
        if self.execs == 0 {
            1.0
        } else {
            self.history_hits as f64 / self.execs as f64
        }
    }
}

/// A complete microarchitecture-independent workload profile.
///
/// Produced by [`Profiler`](crate::Profiler); consumed by the
/// `perfclone-synth` clone generator and by the Figure-3 style
/// characterization reports.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Name of the profiled program.
    pub name: String,
    /// Total retired instructions profiled.
    pub total_instrs: u64,
    /// Statistical-flow-graph nodes.
    pub nodes: Vec<BlockProfile>,
    /// Statistical-flow-graph edges (transition counts).
    pub edges: Vec<EdgeProfile>,
    /// Per-(predecessor, node) dependency statistics.
    pub contexts: Vec<ContextProfile>,
    /// Per-static-load/store stream statistics.
    pub streams: Vec<StreamProfile>,
    /// Per-static-branch direction statistics.
    pub branches: Vec<BranchProfile>,
}

impl WorkloadProfile {
    /// Global dynamic instruction mix over the whole run.
    pub fn global_mix(&self) -> [f64; 10] {
        let mut counts = [0u64; 10];
        for node in &self.nodes {
            for (i, c) in node.class_counts.iter().enumerate() {
                counts[i] += u64::from(*c) * node.execs;
            }
        }
        let total: u64 = counts.iter().sum();
        let mut out = [0.0; 10];
        if total > 0 {
            for (o, c) in out.iter_mut().zip(counts.iter()) {
                *o = *c as f64 / total as f64;
            }
        }
        out
    }

    /// Fraction of dynamic memory references covered by approximating each
    /// static load/store with its single most frequent stride — the metric
    /// of the paper's Figure 3.
    pub fn stride_coverage(&self) -> f64 {
        let mut covered = 0u64;
        let mut total = 0u64;
        for s in &self.streams {
            // The first access of a static op has no stride; count it as
            // covered, as the stream model reproduces it exactly.
            covered += s.dominant_count + 1;
            total += s.execs.max(1);
        }
        if total == 0 {
            1.0
        } else {
            (covered as f64 / total as f64).min(1.0)
        }
    }

    /// Number of unique streams (static memory instructions) the stride
    /// model needs for this program — the paper's "unique streams" count.
    pub fn unique_streams(&self) -> usize {
        self.streams.len()
    }

    /// Total dynamic conditional-branch executions.
    pub fn total_branches(&self) -> u64 {
        self.branches.iter().map(|b| b.execs).sum()
    }

    /// Dynamic-execution-weighted mean basic-block size.
    pub fn mean_block_size(&self) -> f64 {
        let (mut wsum, mut w) = (0.0, 0.0);
        for n in &self.nodes {
            wsum += f64::from(n.size) * n.execs as f64;
            w += n.execs as f64;
        }
        if w == 0.0 {
            0.0
        } else {
            wsum / w
        }
    }

    /// Serializes the profile to JSON.
    ///
    /// # Errors
    ///
    /// Returns any underlying `serde_json` error.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Deserializes a profile from JSON.
    ///
    /// # Errors
    ///
    /// Returns any underlying `serde_json` error.
    pub fn from_json(s: &str) -> Result<WorkloadProfile, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Structurally validates the profile's cross-references and statistics.
    ///
    /// Synthesis stages call this before indexing `streams`, `branches`, or
    /// `nodes`, so a corrupted, truncated, or hand-edited profile surfaces a
    /// typed [`ProfileError`] naming the first broken invariant instead of
    /// panicking on an out-of-bounds index downstream.
    ///
    /// # Errors
    ///
    /// Returns the first structural violation found: an empty node list,
    /// dangling edge/context/stream/branch references, direction counts
    /// exceeding executions, or non-finite stream statistics.
    pub fn check(&self) -> Result<(), ProfileError> {
        if self.nodes.is_empty() {
            return Err(ProfileError::Empty { name: self.name.clone() });
        }
        let nodes = self.nodes.len();
        for (i, e) in self.edges.iter().enumerate() {
            for node in [e.from, e.to] {
                if node as usize >= nodes {
                    return Err(ProfileError::EdgeNodeOutOfRange { edge: i, node, nodes });
                }
            }
        }
        for (i, c) in self.contexts.iter().enumerate() {
            if c.node as usize >= nodes {
                return Err(ProfileError::ContextNodeOutOfRange {
                    context: i,
                    node: c.node,
                    nodes,
                });
            }
            // `u32::MAX` is the entry-context sentinel, not a node index.
            if c.pred != u32::MAX && c.pred as usize >= nodes {
                return Err(ProfileError::ContextNodeOutOfRange {
                    context: i,
                    node: c.pred,
                    nodes,
                });
            }
        }
        for (ni, n) in self.nodes.iter().enumerate() {
            for &sid in &n.mem_ops {
                if sid as usize >= self.streams.len() {
                    return Err(ProfileError::StreamIndexOutOfRange {
                        node: ni,
                        index: sid,
                        streams: self.streams.len(),
                    });
                }
            }
            if let Some(bi) = n.branch {
                if bi as usize >= self.branches.len() {
                    return Err(ProfileError::BranchIndexOutOfRange {
                        node: ni,
                        index: bi,
                        branches: self.branches.len(),
                    });
                }
            }
        }
        for (i, b) in self.branches.iter().enumerate() {
            if b.taken > b.execs || b.transitions > b.execs || b.history_hits > b.execs {
                return Err(ProfileError::BranchCountsInconsistent { branch: i });
            }
        }
        for (i, s) in self.streams.iter().enumerate() {
            let finite = s.mean_run_len.is_finite() && s.mean_back_jump.is_finite();
            if s.min_addr > s.max_addr || !finite || s.mean_run_len < 0.0 {
                return Err(ProfileError::StreamStatsInvalid { stream: i });
            }
        }
        Ok(())
    }

    /// Outgoing edges of `node`, with transition probabilities.
    pub fn successors(&self, node: u32) -> Vec<(u32, f64)> {
        let total: u64 = self.edges.iter().filter(|e| e.from == node).map(|e| e.count).sum();
        if total == 0 {
            return Vec::new();
        }
        self.edges
            .iter()
            .filter(|e| e.from == node)
            .map(|e| (e.to, e.count as f64 / total as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_profile() -> WorkloadProfile {
        WorkloadProfile {
            name: "t".into(),
            total_instrs: 30,
            nodes: vec![BlockProfile {
                start_pc: 0,
                size: 3,
                execs: 10,
                class_counts: {
                    let mut c = [0u32; 10];
                    c[InstrClass::IntAlu.index()] = 2;
                    c[InstrClass::Branch.index()] = 1;
                    c
                },
                mem_ops: vec![],
                branch: Some(0),
            }],
            edges: vec![EdgeProfile { from: 0, to: 0, count: 9 }],
            contexts: vec![],
            streams: vec![StreamProfile {
                pc: 1,
                is_store: false,
                execs: 10,
                dominant_stride: 8,
                dominant_count: 9,
                mean_run_len: 9.0,
                distinct_strides: 1,
                width: 8,
                min_addr: 0x8000,
                max_addr: 0x8000 + 9 * 8,
                fwd_breaks: 0,
                back_breaks: 0,
                mean_back_jump: 0.0,
            }],
            branches: vec![BranchProfile {
                pc: 2,
                execs: 10,
                taken: 9,
                transitions: 2,
                history_hits: 8,
            }],
        }
    }

    #[test]
    fn mix_sums_to_one() {
        let p = tiny_profile();
        let sum: f64 = p.nodes[0].mix().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        let gsum: f64 = p.global_mix().iter().sum();
        assert!((gsum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stride_coverage_counts_first_access() {
        let p = tiny_profile();
        assert!((p.stride_coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn branch_rates() {
        let b = BranchProfile { pc: 0, execs: 10, taken: 9, transitions: 2, history_hits: 8 };
        assert!((b.taken_rate() - 0.9).abs() < 1e-12);
        assert!((b.transition_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn json_round_trip() {
        let p = tiny_profile();
        let s = p.to_json().unwrap();
        let q = WorkloadProfile::from_json(&s).unwrap();
        assert_eq!(q.name, "t");
        assert_eq!(q.nodes.len(), 1);
        assert_eq!(q.streams[0].dominant_stride, 8);
    }

    #[test]
    fn check_accepts_valid_and_names_violations() {
        let p = tiny_profile();
        assert!(p.check().is_ok());
        let mut q = p.clone();
        q.nodes[0].mem_ops = vec![7];
        assert!(matches!(q.check(), Err(ProfileError::StreamIndexOutOfRange { index: 7, .. })));
        let mut q = p.clone();
        q.edges[0].to = 9;
        assert!(matches!(q.check(), Err(ProfileError::EdgeNodeOutOfRange { node: 9, .. })));
        let mut q = p.clone();
        q.branches[0].taken = 99;
        assert!(matches!(q.check(), Err(ProfileError::BranchCountsInconsistent { .. })));
        let mut q = p.clone();
        q.streams[0].min_addr = q.streams[0].max_addr + 1;
        assert!(matches!(q.check(), Err(ProfileError::StreamStatsInvalid { stream: 0 })));
        let mut q = p;
        q.nodes.clear();
        assert!(matches!(q.check(), Err(ProfileError::Empty { .. })));
    }

    #[test]
    fn successors_normalize() {
        let mut p = tiny_profile();
        p.edges = vec![
            EdgeProfile { from: 0, to: 0, count: 3 },
            EdgeProfile { from: 0, to: 1, count: 1 },
        ];
        let succ = p.successors(0);
        let total: f64 = succ.iter().map(|(_, pr)| pr).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(p.successors(42).is_empty());
    }
}
