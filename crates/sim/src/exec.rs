//! The functional interpreter.

use std::error::Error;
use std::fmt;

use perfclone_isa::{AluOp, FpOp, Instr, MemRef, MemWidth, Program};

use crate::mem::Memory;
use crate::state::ArchState;
use crate::trace::{DynInstr, MemAccess, Observer, Trace};

/// Errors surfaced by functional execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The program counter left the program text.
    PcOutOfRange {
        /// The offending program counter.
        pc: u32,
        /// Number of instructions in the program.
        len: usize,
    },
    /// A [`run_budget`](Simulator::run_budget) call retired its whole
    /// instruction budget without the program halting — the runaway guard for
    /// pathological (non-terminating) synthetic programs.
    BudgetExhausted {
        /// The instruction budget that was exhausted.
        budget: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::PcOutOfRange { pc, len } => {
                write!(f, "program counter {pc} outside program of {len} instructions")
            }
            SimError::BudgetExhausted { budget } => {
                write!(f, "program did not halt within the {budget}-instruction budget")
            }
        }
    }
}

impl Error for SimError {}

/// Result of a bounded [`Simulator::run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// Instructions retired during this run.
    pub retired: u64,
    /// `true` when the program executed `halt`.
    pub halted: bool,
}

/// A functional simulator executing one [`Program`].
///
/// The simulator borrows the program and owns the memory image and
/// architectural state. Use [`step`](Simulator::step) for single-instruction
/// control, [`run`](Simulator::run)/[`run_with`](Simulator::run_with) for
/// bounded execution, or [`Program`]-level convenience [`trace`] for an
/// iterator view.
///
/// [`trace`]: Simulator::trace
#[derive(Clone, Debug)]
pub struct Simulator<'p> {
    program: &'p Program,
    state: ArchState,
    mem: Memory,
    halted: bool,
}

impl<'p> Simulator<'p> {
    /// Creates a simulator with the program's initial data image loaded.
    pub fn new(program: &'p Program) -> Simulator<'p> {
        let mut mem = Memory::new();
        for seg in program.data() {
            mem.write_bytes(seg.addr, &seg.bytes);
        }
        Simulator {
            program,
            state: ArchState::new(program.entry(), program.streams().len()),
            mem,
            halted: false,
        }
    }

    /// Creates a trace iterator that retires at most `limit` instructions.
    pub fn trace(program: &'p Program, limit: u64) -> Trace<'p> {
        Trace::new(Simulator::new(program), limit)
    }

    /// The architectural state.
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// The memory image.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to the memory image (e.g. to poke inputs).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// `true` once the program has executed `halt`.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Executes one instruction and returns its retirement record, or
    /// `Ok(None)` if the program has already halted.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::PcOutOfRange`] if control flow escapes the
    /// program text.
    pub fn step(&mut self) -> Result<Option<DynInstr>, SimError> {
        if self.halted {
            return Ok(None);
        }
        let pc = self.state.pc();
        if pc as usize >= self.program.len() {
            return Err(SimError::PcOutOfRange { pc, len: self.program.len() });
        }
        let instr = self.program.fetch(pc);
        let mut next_pc = pc.wrapping_add(1);
        let mut taken = false;
        let mut mem_access = None;

        match instr {
            Instr::Alu { op, rd, rs1, rs2 } => {
                let v = alu(op, self.state.reg(rs1), self.state.reg(rs2));
                self.state.set_reg(rd, v);
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                let v = alu(op, self.state.reg(rs1), i64::from(imm));
                self.state.set_reg(rd, v);
            }
            Instr::Li { rd, imm } => self.state.set_reg(rd, imm),
            Instr::Mul { rd, rs1, rs2 } => {
                let v = self.state.reg(rs1).wrapping_mul(self.state.reg(rs2));
                self.state.set_reg(rd, v);
            }
            Instr::Div { rd, rs1, rs2 } => {
                let (a, b) = (self.state.reg(rs1), self.state.reg(rs2));
                self.state.set_reg(rd, if b == 0 { 0 } else { a.wrapping_div(b) });
            }
            Instr::Rem { rd, rs1, rs2 } => {
                let (a, b) = (self.state.reg(rs1), self.state.reg(rs2));
                self.state.set_reg(rd, if b == 0 { a } else { a.wrapping_rem(b) });
            }
            Instr::Fp { op, fd, fs1, fs2 } => {
                let v = fp(op, self.state.freg(fs1), self.state.freg(fs2));
                self.state.set_freg(fd, v);
            }
            Instr::FLi { fd, imm } => self.state.set_freg(fd, imm),
            Instr::CvtIf { fd, rs } => {
                let v = self.state.reg(rs) as f64;
                self.state.set_freg(fd, v);
            }
            Instr::CvtFi { rd, fs } => {
                let v = self.state.freg(fs) as i64;
                self.state.set_reg(rd, v);
            }
            Instr::FCmpLt { rd, fs1, fs2 } => {
                let v = i64::from(self.state.freg(fs1) < self.state.freg(fs2));
                self.state.set_reg(rd, v);
            }
            Instr::Load { rd, mem, width } => {
                let addr = self.effective_address(mem);
                let v = match width {
                    MemWidth::B1 => i64::from(self.mem.read_u8(addr)),
                    MemWidth::B4 => i64::from(self.mem.read_u32(addr) as i32),
                    MemWidth::B8 => self.mem.read_u64(addr) as i64,
                };
                self.state.set_reg(rd, v);
                mem_access = Some(MemAccess { addr, bytes: width.bytes() as u8, is_store: false });
            }
            Instr::Store { rs, mem, width } => {
                let addr = self.effective_address(mem);
                let v = self.state.reg(rs);
                match width {
                    MemWidth::B1 => self.mem.write_u8(addr, v as u8),
                    MemWidth::B4 => self.mem.write_u32(addr, v as u32),
                    MemWidth::B8 => self.mem.write_u64(addr, v as u64),
                }
                mem_access = Some(MemAccess { addr, bytes: width.bytes() as u8, is_store: true });
            }
            Instr::LoadF { fd, mem } => {
                let addr = self.effective_address(mem);
                let v = self.mem.read_f64(addr);
                self.state.set_freg(fd, v);
                mem_access = Some(MemAccess { addr, bytes: 8, is_store: false });
            }
            Instr::StoreF { fs, mem } => {
                let addr = self.effective_address(mem);
                self.mem.write_f64(addr, self.state.freg(fs));
                mem_access = Some(MemAccess { addr, bytes: 8, is_store: true });
            }
            Instr::Branch { cond, rs1, rs2, target } => {
                taken = cond.eval(self.state.reg(rs1), self.state.reg(rs2));
                if taken {
                    next_pc = target;
                }
            }
            Instr::Jump { target } => next_pc = target,
            Instr::Jal { rd, target } => {
                self.state.set_reg(rd, i64::from(pc) + 1);
                next_pc = target;
            }
            Instr::Jr { rs } => next_pc = self.state.reg(rs) as u32,
            Instr::Nop => {}
            Instr::Halt => {
                self.halted = true;
                next_pc = pc;
            }
        }

        self.state.set_pc(next_pc);
        Ok(Some(DynInstr { pc, instr, next_pc, taken, mem: mem_access }))
    }

    /// Runs until `halt` or until `limit` instructions have retired.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from [`step`](Simulator::step).
    pub fn run(&mut self, limit: u64) -> Result<RunOutcome, SimError> {
        self.run_with(limit, &mut crate::trace::NullObserver)
    }

    /// Runs like [`run`](Simulator::run), invoking `observer` for every
    /// retired instruction.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from [`step`](Simulator::step).
    pub fn run_with<O: Observer>(
        &mut self,
        limit: u64,
        observer: &mut O,
    ) -> Result<RunOutcome, SimError> {
        let mut retired = 0;
        while retired < limit {
            match self.step()? {
                Some(d) => {
                    retired += 1;
                    observer.on_retire(&d);
                }
                None => break,
            }
        }
        Ok(RunOutcome { retired, halted: self.halted })
    }

    /// Runs like [`run`](Simulator::run) but treats an exhausted budget as an
    /// error: the program must execute `halt` within `budget` instructions.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BudgetExhausted`] when `budget` instructions retire
    /// without the program halting, in addition to the faults surfaced by
    /// [`step`](Simulator::step).
    pub fn run_budget(&mut self, budget: u64) -> Result<RunOutcome, SimError> {
        self.run_budget_with(budget, &mut crate::trace::NullObserver)
    }

    /// Runs like [`run_budget`](Simulator::run_budget), invoking `observer`
    /// for every retired instruction.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BudgetExhausted`] when `budget` instructions retire
    /// without the program halting, in addition to the faults surfaced by
    /// [`step`](Simulator::step).
    pub fn run_budget_with<O: Observer>(
        &mut self,
        budget: u64,
        observer: &mut O,
    ) -> Result<RunOutcome, SimError> {
        let out = self.run_with(budget, observer)?;
        if !out.halted && out.retired >= budget {
            return Err(SimError::BudgetExhausted { budget });
        }
        Ok(out)
    }

    fn effective_address(&mut self, mem: MemRef) -> u64 {
        match mem {
            MemRef::Base { base, offset } => {
                (self.state.reg(base)).wrapping_add(i64::from(offset)) as u64
            }
            MemRef::Stream(id) => {
                let desc = self.program.stream(id);
                let k = self.state.next_stream_pos(id.index() as usize);
                desc.address(k)
            }
        }
    }
}

fn alu(op: AluOp, a: i64, b: i64) -> i64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Sll => ((a as u64) << (b as u64 & 63)) as i64,
        AluOp::Srl => ((a as u64) >> (b as u64 & 63)) as i64,
        AluOp::Sra => a >> (b as u64 & 63),
        AluOp::Slt => i64::from(a < b),
        AluOp::Sltu => i64::from((a as u64) < (b as u64)),
    }
}

fn fp(op: FpOp, a: f64, b: f64) -> f64 {
    match op {
        FpOp::Add => a + b,
        FpOp::Sub => a - b,
        FpOp::Mul => a * b,
        FpOp::Div => a / b,
        FpOp::Sqrt => a.abs().sqrt(),
        FpOp::Min => a.min(b),
        FpOp::Max => a.max(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::CountingObserver;
    use perfclone_isa::{MemWidth, ProgramBuilder, Reg, StreamDesc};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn loop_sums_correctly() {
        let mut b = ProgramBuilder::new("sum");
        let (i, n, acc) = (r(1), r(2), r(3));
        b.li(i, 1);
        b.li(n, 100);
        b.li(acc, 0);
        let top = b.label();
        b.bind(top);
        b.add(acc, acc, i);
        b.addi(i, i, 1);
        b.ble(i, n, top);
        b.halt();
        let p = b.build();
        let mut sim = Simulator::new(&p);
        let out = sim.run(10_000).unwrap();
        assert!(out.halted);
        assert_eq!(sim.state().reg(acc), 5050);
        // 3 setup + 100 iterations of 3 + halt
        assert_eq!(out.retired, 3 + 300 + 1);
    }

    #[test]
    fn memory_program_reads_initial_data() {
        let mut b = ProgramBuilder::new("mem");
        let table = b.data_u64(&[10, 20, 30]);
        let ptr = r(1);
        let acc = r(2);
        let tmp = r(3);
        b.li(ptr, table as i64);
        b.ld(tmp, ptr, 0);
        b.add(acc, acc, tmp);
        b.ld(tmp, ptr, 8);
        b.add(acc, acc, tmp);
        b.ld(tmp, ptr, 16);
        b.add(acc, acc, tmp);
        b.halt();
        let p = b.build();
        let mut sim = Simulator::new(&p);
        sim.run(100).unwrap();
        assert_eq!(sim.state().reg(acc), 60);
    }

    #[test]
    fn stream_addressing_walks_and_wraps() {
        let mut b = ProgramBuilder::new("stream");
        let id = b.stream(StreamDesc { base: 0x2000, stride: 8, length: 3 });
        for _ in 0..4 {
            b.ld_stream(r(1), id, MemWidth::B8);
        }
        b.halt();
        let p = b.build();
        let addrs: Vec<u64> =
            Simulator::trace(&p, 100).filter_map(|d| d.mem.map(|m| m.addr)).collect();
        assert_eq!(addrs, vec![0x2000, 0x2008, 0x2010, 0x2000]);
    }

    #[test]
    fn branch_taken_flag_and_observer_counts() {
        let mut b = ProgramBuilder::new("br");
        let (i, n) = (r(1), r(2));
        b.li(i, 0);
        b.li(n, 10);
        let top = b.label();
        b.bind(top);
        b.addi(i, i, 1);
        b.blt(i, n, top); // taken 9 times, not taken once
        b.halt();
        let p = b.build();
        let mut sim = Simulator::new(&p);
        let mut counter = CountingObserver::default();
        sim.run_with(1_000, &mut counter).unwrap();
        assert_eq!(counter.branches, 10);
        assert_eq!(counter.taken_branches, 9);
    }

    #[test]
    fn call_and_return() {
        let mut b = ProgramBuilder::new("call");
        let ra = r(31);
        let func = b.label();
        let done = b.label();
        b.jal(ra, func);
        b.j(done);
        b.bind(func);
        b.li(r(1), 42);
        b.jr(ra);
        b.bind(done);
        b.halt();
        let p = b.build();
        let mut sim = Simulator::new(&p);
        let out = sim.run(100).unwrap();
        assert!(out.halted);
        assert_eq!(sim.state().reg(r(1)), 42);
    }

    #[test]
    fn pc_out_of_range_is_an_error() {
        let mut b = ProgramBuilder::new("fall");
        b.nop(); // no halt: falls off the end
        let p = b.build();
        let mut sim = Simulator::new(&p);
        assert!(sim.step().unwrap().is_some());
        assert!(matches!(sim.step(), Err(SimError::PcOutOfRange { pc: 1, .. })));
        let err = SimError::PcOutOfRange { pc: 1, len: 1 };
        assert!(err.to_string().contains("outside program"));
    }

    #[test]
    fn run_respects_limit() {
        let mut b = ProgramBuilder::new("spin");
        let top = b.label();
        b.bind(top);
        b.j(top);
        let p = b.build();
        let mut sim = Simulator::new(&p);
        let out = sim.run(17).unwrap();
        assert_eq!(out.retired, 17);
        assert!(!out.halted);
    }

    #[test]
    fn run_budget_errors_on_nonhalting_program() {
        let mut b = ProgramBuilder::new("spin");
        let top = b.label();
        b.bind(top);
        b.j(top);
        let p = b.build();
        let mut sim = Simulator::new(&p);
        let err = sim.run_budget(1_000).unwrap_err();
        assert_eq!(err, SimError::BudgetExhausted { budget: 1_000 });
        assert!(err.to_string().contains("budget"));
    }

    #[test]
    fn run_budget_accepts_halting_program() {
        let mut b = ProgramBuilder::new("h");
        b.nop();
        b.halt();
        let p = b.build();
        let mut sim = Simulator::new(&p);
        let out = sim.run_budget(2).unwrap();
        assert!(out.halted);
        assert_eq!(out.retired, 2);
    }

    #[test]
    fn trace_records_fault_on_early_stop() {
        let mut b = ProgramBuilder::new("fall");
        b.nop(); // no halt: falls off the end
        let p = b.build();
        let mut trace = Simulator::trace(&p, 100);
        assert_eq!(trace.by_ref().count(), 1);
        assert!(matches!(trace.fault(), Some(SimError::PcOutOfRange { pc: 1, .. })));
        // A clean halt leaves no fault behind.
        let mut b = ProgramBuilder::new("h");
        b.halt();
        let p = b.build();
        let mut trace = Simulator::trace(&p, 100);
        assert_eq!(trace.by_ref().count(), 1);
        assert!(trace.fault().is_none());
    }

    #[test]
    fn division_by_zero_is_defined() {
        let mut b = ProgramBuilder::new("div0");
        b.li(r(1), 5);
        b.li(r(2), 0);
        b.div(r(3), r(1), r(2));
        b.rem(r(4), r(1), r(2));
        b.halt();
        let p = b.build();
        let mut sim = Simulator::new(&p);
        sim.run(100).unwrap();
        assert_eq!(sim.state().reg(r(3)), 0);
        assert_eq!(sim.state().reg(r(4)), 5);
    }

    #[test]
    fn byte_and_word_width_semantics() {
        let mut b = ProgramBuilder::new("widths");
        let addr = b.data_u64(&[0xffff_ffff_ffff_ffff]);
        b.li(r(1), addr as i64);
        b.lb(r(2), r(1), 0); // zero-extended byte
        b.lw(r(3), r(1), 0); // sign-extended word
        b.halt();
        let p = b.build();
        let mut sim = Simulator::new(&p);
        sim.run(100).unwrap();
        assert_eq!(sim.state().reg(r(2)), 0xff);
        assert_eq!(sim.state().reg(r(3)), -1);
    }

    #[test]
    fn halted_sim_steps_to_none() {
        let mut b = ProgramBuilder::new("h");
        b.halt();
        let p = b.build();
        let mut sim = Simulator::new(&p);
        assert!(sim.step().unwrap().is_some());
        assert!(sim.is_halted());
        assert!(sim.step().unwrap().is_none());
    }
}
