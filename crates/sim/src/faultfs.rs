//! Deterministic filesystem fault injection — the chaos half of the
//! sweep resilience layer.
//!
//! Production code never calls `fs::write`/`fs::rename` directly on the
//! durability-critical paths (journal records, spill files); it routes
//! through this shim. When a [`FaultFsPlan`] is installed — explicitly
//! via [`install`] or from the `PERFCLONE_FAULTFS` environment variable —
//! the shim deterministically injects the I/O failure modes a long sweep
//! meets in the wild:
//!
//! * **ENOSPC** (`enospc` rate): the write or rename fails loudly with an
//!   out-of-space error. Callers see an `Io` error and retry or fall back.
//! * **Short write** (`short` rate): only a prefix of the bytes lands,
//!   and the call *succeeds* — the torn record is discovered on the next
//!   read, exercising truncated-record recovery.
//! * **Torn rename** (`torn` rate): the file is truncated before the
//!   rename publishes it, modeling a writeback filesystem reordering data
//!   against the rename durability barrier across a power loss.
//! * **Corruption** (`corrupt` rate): one byte is flipped before publish,
//!   and the call succeeds — exercising checksum/validation paths.
//!
//! Every decision is a pure function of the plan seed, the fault kind,
//! and a per-process operation counter, so a given run's fault schedule
//! is reproducible. Rates are "1 in N" (`0` disables a kind). A plan may
//! be scoped to paths containing a substring (`scope=`), which keeps
//! concurrent tests from injecting faults into each other's files.
//!
//! Journal `spec.json` identity records are always exempt: chaos targets
//! the *append* path. Corrupting the identity of a whole journal is a
//! different failure (covered by the spec-mismatch tests), and injecting
//! it here would only make a chaos run refuse to resume for the wrong
//! reason.

use std::fs;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// One fault-injection plan: a seed, four "1 in N" rates, and an optional
/// path scope.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultFsPlan {
    /// Seed for the deterministic fault schedule.
    pub seed: u64,
    /// Inject an out-of-space failure on 1 in `enospc` operations
    /// (0 = never).
    pub enospc: u32,
    /// Write only a prefix (silently) on 1 in `short` writes (0 = never).
    pub short: u32,
    /// Truncate the source before 1 in `torn` renames (0 = never).
    pub torn: u32,
    /// Flip one byte before 1 in `corrupt` publishes (0 = never).
    pub corrupt: u32,
    /// Only inject into paths whose string form contains this substring
    /// (`None` = every guarded path).
    pub scope: Option<String>,
}

impl FaultFsPlan {
    /// A plan that never injects (useful as a parse fallback).
    pub fn inert() -> FaultFsPlan {
        FaultFsPlan { seed: 0, enospc: 0, short: 0, torn: 0, corrupt: 0, scope: None }
    }

    /// `true` when at least one fault kind has a non-zero rate.
    pub fn armed(&self) -> bool {
        self.enospc != 0 || self.short != 0 || self.torn != 0 || self.corrupt != 0
    }

    /// Parses the `PERFCLONE_FAULTFS` format: comma-separated `key=value`
    /// pairs, e.g. `seed=7,enospc=13,torn=11,corrupt=17,scope=chaos`.
    /// Unknown keys and unparsable values are ignored (the corresponding
    /// field keeps its inert default), so a typo degrades to "no faults"
    /// rather than a crash.
    pub fn parse(s: &str) -> FaultFsPlan {
        let mut plan = FaultFsPlan::inert();
        for pair in s.split(',') {
            let Some((key, value)) = pair.split_once('=') else { continue };
            let (key, value) = (key.trim(), value.trim());
            match key {
                "seed" => plan.seed = value.parse().unwrap_or(plan.seed),
                "enospc" => plan.enospc = value.parse().unwrap_or(plan.enospc),
                "short" => plan.short = value.parse().unwrap_or(plan.short),
                "torn" => plan.torn = value.parse().unwrap_or(plan.torn),
                "corrupt" => plan.corrupt = value.parse().unwrap_or(plan.corrupt),
                "scope" => {
                    plan.scope = if value.is_empty() { None } else { Some(value.to_string()) }
                }
                _ => {}
            }
        }
        plan
    }
}

/// Per-kind totals of faults injected so far in this process.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultFsCounts {
    /// ENOSPC failures injected.
    pub enospc: u64,
    /// Short writes injected.
    pub short: u64,
    /// Torn renames injected.
    pub torn: u64,
    /// Byte corruptions injected.
    pub corrupt: u64,
}

static ENOSPC_INJECTED: AtomicU64 = AtomicU64::new(0);
static SHORT_INJECTED: AtomicU64 = AtomicU64::new(0);
static TORN_INJECTED: AtomicU64 = AtomicU64::new(0);
static CORRUPT_INJECTED: AtomicU64 = AtomicU64::new(0);

/// Totals of faults injected so far (for selfcheck output and tests).
pub fn injected() -> FaultFsCounts {
    FaultFsCounts {
        enospc: ENOSPC_INJECTED.load(Ordering::Relaxed),
        short: SHORT_INJECTED.load(Ordering::Relaxed),
        torn: TORN_INJECTED.load(Ordering::Relaxed),
        corrupt: CORRUPT_INJECTED.load(Ordering::Relaxed),
    }
}

/// The process-wide plan, set once: explicitly via [`install`], or lazily
/// from `PERFCLONE_FAULTFS` on first guarded operation.
static PLAN: OnceLock<Option<FaultFsPlan>> = OnceLock::new();

/// Guarded operations performed so far — the schedule's time axis.
static OPS: AtomicU64 = AtomicU64::new(0);

/// Installs `plan` as the process-wide fault plan. Returns `false` when a
/// plan (or the absence of one) was already fixed — the first of
/// [`install`] / first guarded operation wins, and the choice is
/// permanent for the life of the process.
pub fn install(plan: FaultFsPlan) -> bool {
    PLAN.set(Some(plan)).is_ok()
}

fn plan() -> Option<&'static FaultFsPlan> {
    PLAN.get_or_init(|| std::env::var("PERFCLONE_FAULTFS").ok().map(|s| FaultFsPlan::parse(&s)))
        .as_ref()
        .filter(|p| p.armed())
}

/// `true` when an armed plan is active for this process.
pub fn active() -> bool {
    plan().is_some()
}

/// SplitMix64 finalizer — the same avalanche construction the seed
/// derivation uses, duplicated locally so the sim crate stays leaf-level.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const TAG_ENOSPC: u64 = 0xE05C;
const TAG_SHORT: u64 = 0x5047;
const TAG_TORN: u64 = 0x7042;
const TAG_CORRUPT: u64 = 0xC042;

fn hit(p: &FaultFsPlan, rate: u32, tag: u64, op: u64) -> bool {
    rate != 0 && mix(p.seed ^ tag.rotate_left(32) ^ op).is_multiple_of(u64::from(rate))
}

fn in_scope(p: &FaultFsPlan, path: &Path) -> bool {
    let s = path.to_string_lossy();
    if s.contains("spec.json") {
        return false; // identity records are exempt; see module docs.
    }
    match &p.scope {
        Some(needle) => s.contains(needle.as_str()),
        None => true,
    }
}

fn enospc(path: &Path) -> io::Error {
    ENOSPC_INJECTED.fetch_add(1, Ordering::Relaxed);
    io::Error::other(format!(
        "injected fault: no space left on device, writing '{}'",
        path.display()
    ))
}

/// Flips one deterministically chosen byte of the file at `path`
/// (best-effort: a failure to corrupt is ignored — the op then behaves
/// as a clean pass-through).
fn flip_byte(p: &FaultFsPlan, path: &Path, op: u64) {
    let Ok(mut bytes) = fs::read(path) else { return };
    if bytes.is_empty() {
        return;
    }
    let at = (mix(p.seed ^ op ^ 0xF11B) % bytes.len() as u64) as usize;
    bytes[at] ^= 0x01;
    if fs::write(path, &bytes).is_ok() {
        CORRUPT_INJECTED.fetch_add(1, Ordering::Relaxed);
    }
}

/// Truncates the file at `path` to half its length (best-effort).
fn truncate_half(path: &Path) {
    let Ok(bytes) = fs::read(path) else { return };
    if fs::write(path, &bytes[..bytes.len() / 2]).is_ok() {
        TORN_INJECTED.fetch_add(1, Ordering::Relaxed);
    }
}

/// `fs::write` with fault injection: may fail with ENOSPC, silently write
/// a prefix, or silently corrupt one byte.
///
/// # Errors
///
/// The underlying OS error, or an injected out-of-space failure.
pub fn write_file(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let Some(p) = plan().filter(|p| in_scope(p, path)) else {
        return fs::write(path, bytes);
    };
    let op = OPS.fetch_add(1, Ordering::Relaxed);
    if hit(p, p.enospc, TAG_ENOSPC, op) {
        return Err(enospc(path));
    }
    if hit(p, p.short, TAG_SHORT, op) && !bytes.is_empty() {
        SHORT_INJECTED.fetch_add(1, Ordering::Relaxed);
        return fs::write(path, &bytes[..bytes.len() / 2]);
    }
    if hit(p, p.corrupt, TAG_CORRUPT, op) && !bytes.is_empty() {
        let mut twisted = bytes.to_vec();
        let at = (mix(p.seed ^ op ^ 0xF11B) % twisted.len() as u64) as usize;
        twisted[at] ^= 0x01;
        CORRUPT_INJECTED.fetch_add(1, Ordering::Relaxed);
        return fs::write(path, &twisted);
    }
    fs::write(path, bytes)
}

/// `fs::rename` with fault injection: may fail with ENOSPC, or silently
/// truncate/corrupt `from` before publishing it at `to`.
///
/// # Errors
///
/// The underlying OS error, or an injected out-of-space failure.
pub fn rename(from: &Path, to: &Path) -> io::Result<()> {
    let Some(p) = plan().filter(|p| in_scope(p, to)) else {
        return fs::rename(from, to);
    };
    let op = OPS.fetch_add(1, Ordering::Relaxed);
    if hit(p, p.enospc, TAG_ENOSPC, op) {
        return Err(enospc(to));
    }
    if hit(p, p.torn, TAG_TORN, op) {
        truncate_half(from);
    } else if hit(p, p.corrupt, TAG_CORRUPT, op) {
        flip_byte(p, from, op);
    }
    fs::rename(from, to)
}

/// ENOSPC gate for streaming writers that manage their own file handles
/// (spill sinks and segment writers call this once per file created).
///
/// # Errors
///
/// An injected out-of-space failure; never fails otherwise.
pub fn check_write(path: &Path) -> io::Result<()> {
    let Some(p) = plan().filter(|p| in_scope(p, path)) else {
        return Ok(());
    };
    let op = OPS.fetch_add(1, Ordering::Relaxed);
    if hit(p, p.enospc, TAG_ENOSPC, op) {
        return Err(enospc(path));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_reads_rates_seed_and_scope() {
        let p = FaultFsPlan::parse("seed=7, enospc=13,torn=11,corrupt=17,scope=chaos,junk=1");
        assert_eq!(p.seed, 7);
        assert_eq!(p.enospc, 13);
        assert_eq!(p.short, 0);
        assert_eq!(p.torn, 11);
        assert_eq!(p.corrupt, 17);
        assert_eq!(p.scope.as_deref(), Some("chaos"));
        assert!(p.armed());
        assert!(!FaultFsPlan::parse("seed=9").armed());
        assert!(!FaultFsPlan::parse("garbage").armed());
    }

    #[test]
    fn schedule_is_deterministic_in_seed_tag_and_op() {
        let p = FaultFsPlan { enospc: 3, ..FaultFsPlan::inert() };
        for op in 0..64 {
            assert_eq!(
                hit(&p, p.enospc, TAG_ENOSPC, op),
                hit(&p, p.enospc, TAG_ENOSPC, op),
                "decision for op {op} must be pure"
            );
        }
        // A 1-in-1 rate always fires; a zero rate never does.
        let always = FaultFsPlan { torn: 1, ..FaultFsPlan::inert() };
        assert!((0..32).all(|op| hit(&always, always.torn, TAG_TORN, op)));
        assert!((0..32).all(|op| !hit(&always, 0, TAG_TORN, op)));
    }

    /// Behavioral test for every injection path. One test function (not
    /// several) because the plan is process-global: installing it once and
    /// scoping it to this test's directory keeps the other tests in this
    /// binary fault-free.
    #[test]
    fn injection_behaviors_under_installed_plan() {
        let dir =
            std::env::temp_dir().join(format!("perfclone-faultfs-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let installed = install(FaultFsPlan {
            seed: 42,
            enospc: 0,
            short: 1,
            torn: 1,
            corrupt: 0,
            scope: Some("perfclone-faultfs-test".into()),
        });
        // If another test initialized the plan first (env-less → None),
        // injection is off; only assert behaviors when our plan took.
        if installed {
            assert!(active());
            // Short write: only a prefix lands, but the call succeeds.
            let f = dir.join("short.bin");
            write_file(&f, &[1u8; 64]).unwrap();
            assert_eq!(fs::read(&f).unwrap().len(), 32);
            // Torn rename: the published file is truncated.
            let src = dir.join("rec.tmp-1");
            let dst = dir.join("rec.json");
            fs::write(&src, [2u8; 64]).unwrap();
            rename(&src, &dst).unwrap();
            assert_eq!(fs::read(&dst).unwrap().len(), 32);
            assert!(injected().short > 0);
            assert!(injected().torn > 0);
        }
        // Out-of-scope paths are always clean (and spec.json is exempt
        // even in scope).
        let outside = std::env::temp_dir()
            .join(format!("perfclone-faultfs-outside-{}.bin", std::process::id()));
        write_file(&outside, &[3u8; 64]).unwrap();
        assert_eq!(fs::read(&outside).unwrap().len(), 64);
        let spec = dir.join("spec.json");
        write_file(&spec, &[4u8; 64]).unwrap();
        assert_eq!(fs::read(&spec).unwrap().len(), 64);
        let _ = fs::remove_file(&outside);
        let _ = fs::remove_dir_all(&dir);
    }
}
