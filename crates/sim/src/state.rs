//! Architectural register state.

use perfclone_isa::{FReg, Reg};

/// The architectural state of one hardware context: 32 integer registers,
/// 32 floating-point registers, the program counter, and the per-stream
/// access counters used by auto-stride addressing.
///
/// `r0` reads as zero and ignores writes.
#[derive(Clone, Debug)]
pub struct ArchState {
    iregs: [i64; 32],
    fregs: [f64; 32],
    pc: u32,
    stream_pos: Vec<u64>,
}

impl ArchState {
    /// Creates a zeroed state with `num_streams` stream cursors, starting at
    /// instruction index `entry`.
    pub fn new(entry: u32, num_streams: usize) -> ArchState {
        ArchState { iregs: [0; 32], fregs: [0.0; 32], pc: entry, stream_pos: vec![0; num_streams] }
    }

    /// Current program counter (instruction index).
    #[inline]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Sets the program counter.
    #[inline]
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// Reads an integer register (`r0` reads as 0).
    #[inline]
    pub fn reg(&self, r: Reg) -> i64 {
        self.iregs[r.index() as usize]
    }

    /// Writes an integer register (writes to `r0` are ignored).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, value: i64) {
        if !r.is_zero() {
            self.iregs[r.index() as usize] = value;
        }
    }

    /// Reads a floating-point register.
    #[inline]
    pub fn freg(&self, r: FReg) -> f64 {
        self.fregs[r.index() as usize]
    }

    /// Writes a floating-point register.
    #[inline]
    pub fn set_freg(&mut self, r: FReg, value: f64) {
        self.fregs[r.index() as usize] = value;
    }

    /// Returns the access counter of stream `idx` and advances it by one.
    #[inline]
    pub fn next_stream_pos(&mut self, idx: usize) -> u64 {
        let pos = self.stream_pos[idx];
        self.stream_pos[idx] += 1;
        pos
    }

    /// Current access counter of stream `idx` without advancing.
    #[inline]
    pub fn stream_pos(&self, idx: usize) -> u64 {
        self.stream_pos[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_semantics() {
        let mut s = ArchState::new(0, 0);
        s.set_reg(Reg::ZERO, 99);
        assert_eq!(s.reg(Reg::ZERO), 0);
        s.set_reg(Reg::new(7), -5);
        assert_eq!(s.reg(Reg::new(7)), -5);
    }

    #[test]
    fn stream_cursors_advance_independently() {
        let mut s = ArchState::new(0, 2);
        assert_eq!(s.next_stream_pos(0), 0);
        assert_eq!(s.next_stream_pos(0), 1);
        assert_eq!(s.next_stream_pos(1), 0);
        assert_eq!(s.stream_pos(0), 2);
    }

    #[test]
    fn fp_registers_are_ordinary() {
        let mut s = ArchState::new(3, 0);
        assert_eq!(s.pc(), 3);
        s.set_freg(FReg::new(0), 2.5);
        assert_eq!(s.freg(FReg::new(0)), 2.5);
    }
}
