//! Disk spill for packed traces: the out-of-core half of the
//! record-once/replay-many discipline.
//!
//! When a capture's packed encoding outgrows its memory budget
//! (`PERFCLONE_TRACE_CAP`), the recorder streams the encoding's completed
//! prefix to per-section segment files instead of abandoning the capture,
//! then seals everything into a single spill file that
//! [`SpilledTrace::open`] memory-maps back for replay. A spilled trace
//! replays through the *same* [`PackedReplay`] iterator as an in-memory
//! [`PackedTrace`] — the two backings hand the decoder identical raw
//! slices, so replay equivalence holds by construction.
//!
//! # File format (`PCSPILL1`, little-endian throughout)
//!
//! ```text
//! offset size field
//!      0    8 magic  b"PCSPILL1"
//!      8    4 version (currently 1)
//!     12    4 flags: bit 0 = halted, bit 1 = fault present
//!     16    4 start_pc
//!     20    4 name_len        (program-name bytes)
//!     24    8 program_len     (static instruction count)
//!     32    8 len             (dynamic records)
//!     40    8 n_words         (= ceil(len / 64) bitset words)
//!     48    8 n_targets       (zigzag-LEB128 target-delta bytes)
//!     56    8 n_mem           (memory records)
//!     64    8 fault_len       (encoded-fault bytes; 0 when none)
//!     72    8 checksum        (FNV-1a 64 over every byte after the header)
//!     80      program name, encoded fault, zero padding to 8 alignment
//!      …      redirect_bits  n_words × 8
//!      …      taken_bits     n_words × 8
//!      …      mem_addrs      n_mem × 8
//!      …      targets        n_targets
//!      …      mem_sizes      n_mem
//! ```
//!
//! The `u64` sections precede the byte sections so every word array sits at
//! an 8-aligned file offset, letting the mapped bytes be reinterpreted as
//! `&[u64]` directly.
//!
//! # Atomicity and cleanup
//!
//! Every file is written to a `…tmp-<pid>` sibling and `rename`d into
//! place only once complete, so a `SIGKILL` at any instant leaves either
//! no file or a whole file — never a torn one that poisons a resumed
//! sweep. Segment and unrenamed temp files are removed on `Drop`, and
//! [`SpilledTrace::open`] verifies magic, version, geometry, and checksum
//! before trusting a byte, returning a typed [`TraceError`] (never
//! panicking) on anything short of a pristine file.

use std::fmt;
use std::fs::{self, File};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use perfclone_isa::{InstrMetaTable, Program};

use crate::exec::SimError;
use crate::faultfs;
use crate::packed::{
    batch_replay_parts, replay_parts, BatchReplay, PackedRecorder, PackedReplay, PackedTrace,
    TraceParts,
};
use crate::trace::DynInstr;

/// Magic bytes opening every spill file.
pub const SPILL_MAGIC: [u8; 8] = *b"PCSPILL1";
/// Current spill format version.
pub const SPILL_VERSION: u32 = 1;
const HEADER_LEN: usize = 80;
const FAULT_ENC_LEN: usize = 17;

/// Typed error for spill-file I/O and validation. Corrupted or truncated
/// files surface here — opening a spill file never panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// An operating-system I/O operation failed.
    Io {
        /// File the operation targeted.
        path: PathBuf,
        /// The operation (`"open"`, `"read"`, `"write"`, `"rename"`, …).
        op: &'static str,
        /// The OS error text.
        detail: String,
    },
    /// The file does not start with the spill magic.
    BadMagic {
        /// The offending file.
        path: PathBuf,
    },
    /// The file's format version is not [`SPILL_VERSION`].
    BadVersion {
        /// The offending file.
        path: PathBuf,
        /// The version the file claims.
        version: u32,
    },
    /// The file is structurally inconsistent (bad geometry, truncated
    /// sections, checksum mismatch, undecodable fault, …).
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What failed to validate.
        detail: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io { path, op, detail } => {
                write!(f, "spill {op} of '{}' failed: {detail}", path.display())
            }
            TraceError::BadMagic { path } => {
                write!(f, "'{}' is not a spill file (bad magic)", path.display())
            }
            TraceError::BadVersion { path, version } => write!(
                f,
                "'{}' has unsupported spill version {version} (expected {SPILL_VERSION})",
                path.display()
            ),
            TraceError::Corrupt { path, detail } => {
                write!(f, "spill file '{}' is corrupt: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for TraceError {}

fn io_at<'a>(path: &'a Path, op: &'static str) -> impl FnOnce(io::Error) -> TraceError + 'a {
    move |e| TraceError::Io { path: path.to_path_buf(), op, detail: e.to_string() }
}

fn corrupt(path: &Path, detail: impl Into<String>) -> TraceError {
    TraceError::Corrupt { path: path.to_path_buf(), detail: detail.into() }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut acc: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        acc ^= u64::from(b);
        acc = acc.wrapping_mul(FNV_PRIME);
    }
    acc
}

fn align8(n: usize) -> usize {
    n.div_ceil(8) * 8
}

/// Removes `path` when dropped unless disarmed — the guard that keeps a
/// killed or failed writer from leaving temp files behind.
struct TempGuard {
    path: PathBuf,
    armed: bool,
}

impl TempGuard {
    fn new(path: PathBuf) -> TempGuard {
        TempGuard { path, armed: true }
    }

    fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for TempGuard {
    fn drop(&mut self) {
        if self.armed {
            let _ = fs::remove_file(&self.path);
        }
    }
}

/// Sibling temp path for an atomic write of `path`: same directory, with a
/// `.tmp-<pid>` suffix so concurrent processes never collide and resume
/// sweeps can recognize (and reap) strays.
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(format!(".tmp-{}", std::process::id()));
    path.with_file_name(name)
}

/// Extracts the owning pid from a spill artifact's file name, or `None`
/// when the name is not one of the shapes this crate produces:
///
/// * unrenamed temps — `<anything>.tmp-<pid>` (sink temps and
///   `.seg.tmp-<pid>` segment files);
/// * sealed capture spills — `perfclone-<name>-<pid>-<seq>.spill`, the
///   stem [`capture`](crate::SpillingRecorder) builds, which are private
///   to their process (delete-on-drop) and stranded by a `SIGKILL`.
fn stray_pid(name: &str) -> Option<u32> {
    if let Some((_, pid)) = name.rsplit_once(".tmp-") {
        return pid.parse().ok();
    }
    let stem = name.strip_suffix(".spill")?;
    let mut parts = stem.rsplitn(3, '-');
    let _seq: u64 = parts.next()?.parse().ok()?;
    let pid: u32 = parts.next()?.parse().ok()?;
    parts.next()?; // the sanitized program name must be present too.
    Some(pid)
}

/// `true` when `pid` is a live process. Only Linux has a cheap, portable
/// answer (`/proc/<pid>`); elsewhere every pid is conservatively treated
/// as alive, so nothing is ever reaped by mistake.
fn pid_alive(pid: u32) -> bool {
    if pid == std::process::id() {
        return true;
    }
    #[cfg(target_os = "linux")]
    {
        Path::new(&format!("/proc/{pid}")).exists()
    }
    #[cfg(not(target_os = "linux"))]
    {
        true
    }
}

/// Reaps spill artifacts stranded in `dir` by dead processes, returning
/// how many files were removed.
///
/// Segment files and unrenamed sink temps are normally removed on `Drop`,
/// and sealed capture spills on [`SpilledTrace`] drop — but a `SIGKILL`
/// (the crash/kill harness, an OOM kill, a cancelled CI job) runs no
/// destructors, stranding `PCSPILL1` files in the spill directory forever.
/// This sweep mirrors the journal's stray-temp reaping: it removes only
/// files whose name matches a shape this crate writes (`perfclone-` stems
/// and `.tmp-<pid>` temps), whose embedded pid parses, and whose owning
/// process is provably dead. Files owned by live processes — including
/// this one — are never touched.
pub fn reap_stray_spills(dir: &Path) -> u64 {
    let Ok(entries) = fs::read_dir(dir) else {
        return 0;
    };
    let mut reaped = 0;
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with("perfclone-") {
            continue;
        }
        let Some(pid) = stray_pid(&name) else { continue };
        if pid_alive(pid) {
            continue;
        }
        if fs::remove_file(entry.path()).is_ok() {
            reaped += 1;
        }
    }
    reaped
}

/// Fixed-size spill-file header (see the module docs for the layout).
#[derive(Clone, Copy, Debug)]
struct Header {
    flags: u32,
    start_pc: u32,
    name_len: u32,
    program_len: u64,
    len: u64,
    n_words: u64,
    n_targets: u64,
    n_mem: u64,
    fault_len: u64,
    checksum: u64,
}

const FLAG_HALTED: u32 = 1;
const FLAG_FAULT: u32 = 2;

impl Header {
    fn encode(&self) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        out[0..8].copy_from_slice(&SPILL_MAGIC);
        out[8..12].copy_from_slice(&SPILL_VERSION.to_le_bytes());
        out[12..16].copy_from_slice(&self.flags.to_le_bytes());
        out[16..20].copy_from_slice(&self.start_pc.to_le_bytes());
        out[20..24].copy_from_slice(&self.name_len.to_le_bytes());
        out[24..32].copy_from_slice(&self.program_len.to_le_bytes());
        out[32..40].copy_from_slice(&self.len.to_le_bytes());
        out[40..48].copy_from_slice(&self.n_words.to_le_bytes());
        out[48..56].copy_from_slice(&self.n_targets.to_le_bytes());
        out[56..64].copy_from_slice(&self.n_mem.to_le_bytes());
        out[64..72].copy_from_slice(&self.fault_len.to_le_bytes());
        out[72..80].copy_from_slice(&self.checksum.to_le_bytes());
        out
    }

    fn decode(path: &Path, b: &[u8; HEADER_LEN]) -> Result<Header, TraceError> {
        let u32_at = |at: usize| u32::from_le_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]]);
        let u64_at = |at: usize| {
            let mut w = [0u8; 8];
            w.copy_from_slice(&b[at..at + 8]);
            u64::from_le_bytes(w)
        };
        if b[0..8] != SPILL_MAGIC {
            return Err(TraceError::BadMagic { path: path.to_path_buf() });
        }
        let version = u32_at(8);
        if version != SPILL_VERSION {
            return Err(TraceError::BadVersion { path: path.to_path_buf(), version });
        }
        Ok(Header {
            flags: u32_at(12),
            start_pc: u32_at(16),
            name_len: u32_at(20),
            program_len: u64_at(24),
            len: u64_at(32),
            n_words: u64_at(40),
            n_targets: u64_at(48),
            n_mem: u64_at(56),
            fault_len: u64_at(64),
            checksum: u64_at(72),
        })
    }
}

fn encode_fault(f: &SimError) -> [u8; FAULT_ENC_LEN] {
    let (tag, a, b) = match *f {
        SimError::PcOutOfRange { pc, len } => (1u8, u64::from(pc), len as u64),
        SimError::BudgetExhausted { budget } => (2u8, budget, 0u64),
    };
    let mut out = [0u8; FAULT_ENC_LEN];
    out[0] = tag;
    out[1..9].copy_from_slice(&a.to_le_bytes());
    out[9..17].copy_from_slice(&b.to_le_bytes());
    out
}

fn decode_fault(path: &Path, bytes: &[u8]) -> Result<SimError, TraceError> {
    if bytes.len() != FAULT_ENC_LEN {
        return Err(corrupt(
            path,
            format!("fault record is {} bytes, expected {FAULT_ENC_LEN}", bytes.len()),
        ));
    }
    let word = |at: usize| {
        let mut w = [0u8; 8];
        w.copy_from_slice(&bytes[at..at + 8]);
        u64::from_le_bytes(w)
    };
    let (a, b) = (word(1), word(9));
    match bytes[0] {
        1 => Ok(SimError::PcOutOfRange {
            pc: u32::try_from(a).map_err(|_| corrupt(path, "fault pc out of u32 range"))?,
            len: usize::try_from(b).map_err(|_| corrupt(path, "fault len out of range"))?,
        }),
        2 => Ok(SimError::BudgetExhausted { budget: a }),
        t => Err(corrupt(path, format!("unknown fault tag {t}"))),
    }
}

/// Streaming writer for a spill file: header placeholder first, every
/// subsequent byte checksummed on the way through, header patched with the
/// final checksum, then an atomic rename into place.
struct SpillSink {
    w: io::BufWriter<File>,
    final_path: PathBuf,
    guard: TempGuard,
    hash: u64,
}

impl SpillSink {
    fn create(final_path: &Path) -> Result<SpillSink, TraceError> {
        let tmp = tmp_sibling(final_path);
        faultfs::check_write(&tmp).map_err(io_at(&tmp, "create"))?;
        let file = File::create(&tmp).map_err(io_at(&tmp, "create"))?;
        let guard = TempGuard::new(tmp);
        let mut w = io::BufWriter::new(file);
        w.write_all(&[0u8; HEADER_LEN]).map_err(io_at(final_path, "write"))?;
        Ok(SpillSink { w, final_path: final_path.to_path_buf(), guard, hash: FNV_OFFSET })
    }

    fn write(&mut self, bytes: &[u8]) -> Result<(), TraceError> {
        self.hash = fnv1a(self.hash, bytes);
        self.w.write_all(bytes).map_err(io_at(&self.final_path, "write"))
    }

    fn write_words(&mut self, words: &[u64]) -> Result<(), TraceError> {
        for word in words {
            self.write(&word.to_le_bytes())?;
        }
        Ok(())
    }

    fn finish(mut self, mut header: Header) -> Result<(), TraceError> {
        header.checksum = self.hash;
        self.w.flush().map_err(io_at(&self.final_path, "flush"))?;
        let mut file = self.w.into_inner().map_err(|e| TraceError::Io {
            path: self.final_path.clone(),
            op: "flush",
            detail: e.to_string(),
        })?;
        file.seek(SeekFrom::Start(0)).map_err(io_at(&self.final_path, "seek"))?;
        file.write_all(&header.encode()).map_err(io_at(&self.final_path, "write"))?;
        file.sync_all().map_err(io_at(&self.final_path, "sync"))?;
        drop(file);
        faultfs::rename(&self.guard.path, &self.final_path)
            .map_err(io_at(&self.final_path, "rename"))?;
        self.guard.disarm();
        Ok(())
    }
}

#[allow(clippy::too_many_arguments)]
fn meta_header(
    program_name: &str,
    program_len: usize,
    start_pc: u32,
    len: u64,
    halted: bool,
    fault: Option<&SimError>,
    n_words: u64,
    n_targets: u64,
    n_mem: u64,
) -> Header {
    let mut flags = 0u32;
    if halted {
        flags |= FLAG_HALTED;
    }
    if fault.is_some() {
        flags |= FLAG_FAULT;
    }
    Header {
        flags,
        start_pc,
        name_len: program_name.len() as u32,
        program_len: program_len as u64,
        len,
        n_words,
        n_targets,
        n_mem,
        fault_len: if fault.is_some() { FAULT_ENC_LEN as u64 } else { 0 },
        checksum: 0,
    }
}

/// Writes name, fault, and alignment padding — the variable-length metadata
/// between the header and the sections.
fn write_meta(
    sink: &mut SpillSink,
    program_name: &str,
    fault: Option<&SimError>,
) -> Result<(), TraceError> {
    sink.write(program_name.as_bytes())?;
    let mut meta_len = program_name.len();
    if let Some(f) = fault {
        sink.write(&encode_fault(f))?;
        meta_len += FAULT_ENC_LEN;
    }
    let pad = align8(HEADER_LEN + meta_len) - (HEADER_LEN + meta_len);
    sink.write(&[0u8; 8][..pad])
}

impl PackedTrace {
    /// Writes this trace to `path` in the spill format, atomically
    /// (write-then-rename).
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError::Io`] if any filesystem operation fails; the
    /// temp file is removed on the error path.
    pub fn spill_to(&self, path: &Path) -> Result<(), TraceError> {
        let header = meta_header(
            &self.program_name,
            self.program_len,
            self.start_pc,
            self.len,
            self.halted,
            self.fault.as_ref(),
            self.redirect_bits.len() as u64,
            self.targets.len() as u64,
            self.mem_addrs.len() as u64,
        );
        let mut sink = SpillSink::create(path)?;
        write_meta(&mut sink, &self.program_name, self.fault.as_ref())?;
        sink.write_words(&self.redirect_bits)?;
        sink.write_words(&self.taken_bits)?;
        sink.write_words(&self.mem_addrs)?;
        sink.write(&self.targets)?;
        sink.write(&self.mem_sizes)?;
        sink.finish(header)
    }
}

/// A packed trace whose encoding lives in a spill file, replayed through a
/// read-only memory mapping (with an owned-buffer fallback on platforms
/// without `mmap`). Opened by [`SpilledTrace::open`] or produced by
/// [`SpillingRecorder::finish`].
#[derive(Debug)]
pub struct SpilledTrace {
    path: PathBuf,
    program_name: String,
    program_len: usize,
    start_pc: u32,
    len: u64,
    halted: bool,
    fault: Option<SimError>,
    n_words: usize,
    n_targets: usize,
    n_mem: usize,
    /// Byte offset of `redirect_bits` within the file.
    sections_at: usize,
    file_bytes: u64,
    backing: Backing,
    delete_on_drop: bool,
}

#[derive(Debug)]
enum Backing {
    /// The whole file, memory-mapped; section slices borrow the mapping.
    #[cfg(unix)]
    Map(map::Mmap),
    /// Typed copies of the sections (non-unix platforms, or when the
    /// mapping fails); semantics identical to `Map`.
    Owned {
        redirect_bits: Vec<u64>,
        taken_bits: Vec<u64>,
        mem_addrs: Vec<u64>,
        targets: Vec<u8>,
        mem_sizes: Vec<u8>,
    },
}

impl SpilledTrace {
    /// Opens and validates a spill file, memory-mapping its sections.
    ///
    /// Validation covers magic, version, section geometry against the file
    /// size, UTF-8 of the program name, the fault record, and the FNV-1a
    /// checksum of the whole payload — a corrupted or truncated file
    /// yields a typed error, never a panic, and a file that passes cannot
    /// take replay out of bounds.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] on filesystem failure, [`TraceError::BadMagic`] /
    /// [`TraceError::BadVersion`] / [`TraceError::Corrupt`] on validation
    /// failure.
    pub fn open(path: &Path) -> Result<SpilledTrace, TraceError> {
        let mut file = File::open(path).map_err(io_at(path, "open"))?;
        let file_bytes = file.metadata().map_err(io_at(path, "stat"))?.len();
        let mut hdr_bytes = [0u8; HEADER_LEN];
        file.read_exact(&mut hdr_bytes).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                corrupt(path, format!("file is {file_bytes} bytes, shorter than the header"))
            } else {
                io_at(path, "read")(e)
            }
        })?;
        let h = Header::decode(path, &hdr_bytes)?;

        let name_len = usize::try_from(h.name_len).unwrap_or(usize::MAX);
        let fault_len = usize::try_from(h.fault_len).unwrap_or(usize::MAX);
        let n_words =
            usize::try_from(h.n_words).map_err(|_| corrupt(path, "word count out of range"))?;
        let n_targets =
            usize::try_from(h.n_targets).map_err(|_| corrupt(path, "target count out of range"))?;
        let n_mem =
            usize::try_from(h.n_mem).map_err(|_| corrupt(path, "mem count out of range"))?;
        if name_len > 1 << 16 {
            return Err(corrupt(path, format!("implausible program-name length {name_len}")));
        }
        if h.flags & FLAG_FAULT != 0 && fault_len != FAULT_ENC_LEN {
            return Err(corrupt(path, format!("fault flag set but fault_len is {fault_len}")));
        }
        if h.flags & FLAG_FAULT == 0 && fault_len != 0 {
            return Err(corrupt(path, "fault_len set without the fault flag"));
        }
        if h.n_words != h.len.div_ceil(64) {
            return Err(corrupt(
                path,
                format!("{} bitset words inconsistent with {} records", h.n_words, h.len),
            ));
        }
        if h.n_mem > h.len {
            return Err(corrupt(path, "more memory records than records"));
        }
        let sections_at = align8(HEADER_LEN + name_len + fault_len);
        let expected = (sections_at as u64)
            .checked_add(h.n_words.saturating_mul(16))
            .and_then(|x| x.checked_add(h.n_mem.checked_mul(8)?))
            .and_then(|x| x.checked_add(h.n_targets))
            .and_then(|x| x.checked_add(h.n_mem))
            .ok_or_else(|| corrupt(path, "section sizes overflow"))?;
        if expected != file_bytes {
            return Err(corrupt(
                path,
                format!("file is {file_bytes} bytes, geometry implies {expected}"),
            ));
        }

        let mut meta = vec![0u8; name_len + fault_len];
        file.read_exact(&mut meta).map_err(io_at(path, "read"))?;
        let program_name = std::str::from_utf8(&meta[..name_len])
            .map_err(|_| corrupt(path, "program name is not UTF-8"))?
            .to_string();
        let fault =
            if fault_len == 0 { None } else { Some(decode_fault(path, &meta[name_len..])?) };
        let program_len = usize::try_from(h.program_len)
            .map_err(|_| corrupt(path, "program length out of range"))?;

        let file_len =
            usize::try_from(file_bytes).map_err(|_| corrupt(path, "file too large to map"))?;
        let backing =
            Self::map_or_read(path, &mut file, file_len, sections_at, n_words, n_targets, n_mem)?;
        let payload_hash = match &backing {
            #[cfg(unix)]
            Backing::Map(m) => fnv1a(FNV_OFFSET, &m.bytes()[HEADER_LEN..]),
            Backing::Owned { .. } => {
                // Owned backing re-reads the payload to hash it exactly as
                // written (sections were parsed from the same buffer).
                file.seek(SeekFrom::Start(HEADER_LEN as u64)).map_err(io_at(path, "seek"))?;
                let mut payload = Vec::new();
                file.read_to_end(&mut payload).map_err(io_at(path, "read"))?;
                fnv1a(FNV_OFFSET, &payload)
            }
        };
        if payload_hash != h.checksum {
            return Err(corrupt(
                path,
                format!(
                    "checksum mismatch: stored {:#018x}, computed {payload_hash:#018x}",
                    h.checksum
                ),
            ));
        }

        Ok(SpilledTrace {
            path: path.to_path_buf(),
            program_name,
            program_len,
            start_pc: h.start_pc,
            len: h.len,
            halted: h.flags & FLAG_HALTED != 0,
            fault,
            n_words,
            n_targets,
            n_mem,
            sections_at,
            file_bytes,
            backing,
            delete_on_drop: false,
        })
    }

    /// Maps the file read-only, falling back to reading typed section
    /// copies when mapping is unavailable or misaligned.
    fn map_or_read(
        path: &Path,
        file: &mut File,
        file_len: usize,
        sections_at: usize,
        n_words: usize,
        n_targets: usize,
        n_mem: usize,
    ) -> Result<Backing, TraceError> {
        #[cfg(unix)]
        {
            if let Some(m) = map::Mmap::map(file, file_len) {
                // Word sections sit at 8-aligned offsets from a
                // page-aligned base; double-check before reinterpreting.
                if (m.bytes().as_ptr() as usize + sections_at).is_multiple_of(8) {
                    return Ok(Backing::Map(m));
                }
            }
        }
        file.seek(SeekFrom::Start(sections_at as u64)).map_err(io_at(path, "seek"))?;
        let mut read_words = |n: usize| -> Result<Vec<u64>, TraceError> {
            let mut buf = vec![0u8; n * 8];
            file.read_exact(&mut buf).map_err(io_at(path, "read"))?;
            Ok(buf
                .chunks_exact(8)
                .map(|c| {
                    let mut w = [0u8; 8];
                    w.copy_from_slice(c);
                    u64::from_le_bytes(w)
                })
                .collect())
        };
        let redirect_bits = read_words(n_words)?;
        let taken_bits = read_words(n_words)?;
        let mem_addrs = read_words(n_mem)?;
        let mut targets = vec![0u8; n_targets];
        file.read_exact(&mut targets).map_err(io_at(path, "read"))?;
        let mut mem_sizes = vec![0u8; n_mem];
        file.read_exact(&mut mem_sizes).map_err(io_at(path, "read"))?;
        let _ = file_len;
        Ok(Backing::Owned { redirect_bits, taken_bits, mem_addrs, targets, mem_sizes })
    }

    #[cfg(unix)]
    fn mapped_words(&self, m: &map::Mmap, offset: usize, n: usize) -> &[u64] {
        // Safety: `open` validated that [offset, offset + n*8) lies inside
        // the mapping and that the address is 8-aligned; u64 has no
        // invalid bit patterns, and the mapping is private and read-only.
        unsafe { std::slice::from_raw_parts(m.bytes().as_ptr().add(offset).cast::<u64>(), n) }
    }

    fn redirect_bits(&self) -> &[u64] {
        match &self.backing {
            #[cfg(unix)]
            Backing::Map(m) => self.mapped_words(m, self.sections_at, self.n_words),
            Backing::Owned { redirect_bits, .. } => redirect_bits,
        }
    }

    fn taken_bits(&self) -> &[u64] {
        match &self.backing {
            #[cfg(unix)]
            Backing::Map(m) => {
                self.mapped_words(m, self.sections_at + self.n_words * 8, self.n_words)
            }
            Backing::Owned { taken_bits, .. } => taken_bits,
        }
    }

    fn mem_addrs(&self) -> &[u64] {
        match &self.backing {
            #[cfg(unix)]
            Backing::Map(m) => {
                self.mapped_words(m, self.sections_at + self.n_words * 16, self.n_mem)
            }
            Backing::Owned { mem_addrs, .. } => mem_addrs,
        }
    }

    fn targets(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            Backing::Map(m) => {
                let at = self.sections_at + self.n_words * 16 + self.n_mem * 8;
                &m.bytes()[at..at + self.n_targets]
            }
            Backing::Owned { targets, .. } => targets,
        }
    }

    fn mem_sizes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            Backing::Map(m) => {
                let at = self.sections_at + self.n_words * 16 + self.n_mem * 8 + self.n_targets;
                &m.bytes()[at..at + self.n_mem]
            }
            Backing::Owned { mem_sizes, .. } => mem_sizes,
        }
    }

    /// Number of retired instructions recorded.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when no instructions were recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` when the capture ended with the program executing `halt` —
    /// see [`PackedTrace::halted`].
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// The fault that ended the capture early, if any — see
    /// [`PackedTrace::fault`].
    pub fn fault(&self) -> Option<&SimError> {
        self.fault.as_ref()
    }

    /// Name of the program this trace was captured from.
    pub fn program_name(&self) -> &str {
        &self.program_name
    }

    /// The spill file backing this trace.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Size of the spill file in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.file_bytes
    }

    /// `true` when the sections are served from a memory mapping (as
    /// opposed to the owned-buffer fallback).
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(unix)]
            Backing::Map(_) => true,
            Backing::Owned { .. } => false,
        }
    }

    /// Arranges for the spill file to be removed when this value drops —
    /// the lifecycle for capture-produced spills, whose file is an
    /// implementation detail of one process's cache.
    pub fn delete_on_drop(&mut self, yes: bool) {
        self.delete_on_drop = yes;
    }

    /// Replays the spilled stream through the same decoder as
    /// [`PackedTrace::replay`], reading sections straight from the mapping.
    ///
    /// # Panics
    ///
    /// Panics if `program` is not the program the trace was captured from
    /// (checked by name and text length), exactly like
    /// [`PackedTrace::replay`].
    pub fn replay<'a>(&'a self, program: &'a Program) -> PackedReplay<'a> {
        replay_parts(self.parts(), program, None)
    }

    /// Like [`replay`](SpilledTrace::replay), but resolving per-record
    /// static questions from an interned [`InstrMetaTable`] — the spilled
    /// analogue of [`PackedTrace::replay_interned`].
    pub fn replay_interned<'a>(
        &'a self,
        program: &'a Program,
        meta: &'a InstrMetaTable,
    ) -> PackedReplay<'a> {
        assert!(
            meta.len() == program.len(),
            "interned metadata of {} instrs replayed against {:?} ({} instrs)",
            meta.len(),
            program.name(),
            program.len(),
        );
        replay_parts(self.parts(), program, Some(meta.as_slice()))
    }

    /// Batched decoder over the memory-mapped encoding — the spilled
    /// analogue of [`PackedTrace::replay_batched`]. Both backings feed the
    /// same raw slices to the same decoder, so batched replay of a spilled
    /// trace is equivalent by construction.
    pub fn replay_batched<'a>(
        &'a self,
        program: &'a Program,
        meta: &'a InstrMetaTable,
    ) -> BatchReplay<'a> {
        batch_replay_parts(self.parts(), program, meta)
    }

    fn parts(&self) -> TraceParts<'_> {
        TraceParts {
            program_name: &self.program_name,
            program_len: self.program_len,
            start_pc: self.start_pc,
            len: self.len,
            redirect_bits: self.redirect_bits(),
            taken_bits: self.taken_bits(),
            targets: self.targets(),
            mem_addrs: self.mem_addrs(),
            mem_sizes: self.mem_sizes(),
            fault: self.fault.as_ref(),
        }
    }
}

impl Drop for SpilledTrace {
    fn drop(&mut self) {
        if self.delete_on_drop {
            let _ = fs::remove_file(&self.path);
        }
    }
}

/// Where a capture's packed trace ended up: in memory when it fit the
/// budget, or in a spill file replayed via mmap when it did not. Both
/// variants replay identically; holders never need to care which they got.
#[derive(Debug)]
pub enum TraceStore {
    /// The encoding fit the memory budget.
    Mem(PackedTrace),
    /// The encoding was spilled to disk.
    Spilled(SpilledTrace),
}

impl TraceStore {
    /// Number of retired instructions recorded.
    pub fn len(&self) -> u64 {
        match self {
            TraceStore::Mem(t) => t.len(),
            TraceStore::Spilled(t) => t.len(),
        }
    }

    /// `true` when no instructions were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when the capture ended with the program executing `halt`.
    pub fn halted(&self) -> bool {
        match self {
            TraceStore::Mem(t) => t.halted(),
            TraceStore::Spilled(t) => t.halted(),
        }
    }

    /// The fault that ended the capture early, if any.
    pub fn fault(&self) -> Option<&SimError> {
        match self {
            TraceStore::Mem(t) => t.fault(),
            TraceStore::Spilled(t) => t.fault(),
        }
    }

    /// Name of the program the trace was captured from.
    pub fn program_name(&self) -> &str {
        match self {
            TraceStore::Mem(t) => t.program_name(),
            TraceStore::Spilled(t) => t.program_name(),
        }
    }

    /// Bytes the encoding occupies — heap bytes for the in-memory variant,
    /// file bytes for the spilled one.
    pub fn stored_bytes(&self) -> u64 {
        match self {
            TraceStore::Mem(t) => t.packed_bytes() as u64,
            TraceStore::Spilled(t) => t.file_bytes(),
        }
    }

    /// `true` for the spilled variant.
    pub fn is_spilled(&self) -> bool {
        matches!(self, TraceStore::Spilled(_))
    }

    /// The spill file path, when spilled.
    pub fn spill_path(&self) -> Option<&Path> {
        match self {
            TraceStore::Mem(_) => None,
            TraceStore::Spilled(t) => Some(t.path()),
        }
    }

    /// Replays the recorded stream — dispatches to
    /// [`PackedTrace::replay`] or [`SpilledTrace::replay`].
    ///
    /// # Panics
    ///
    /// Panics if `program` is not the program the trace was captured from,
    /// exactly like [`PackedTrace::replay`].
    pub fn replay<'a>(&'a self, program: &'a Program) -> PackedReplay<'a> {
        match self {
            TraceStore::Mem(t) => t.replay(program),
            TraceStore::Spilled(t) => t.replay(program),
        }
    }

    /// Record-at-a-time replay with interned per-pc metadata — dispatches
    /// to [`PackedTrace::replay_interned`] or
    /// [`SpilledTrace::replay_interned`].
    pub fn replay_interned<'a>(
        &'a self,
        program: &'a Program,
        meta: &'a InstrMetaTable,
    ) -> PackedReplay<'a> {
        match self {
            TraceStore::Mem(t) => t.replay_interned(program, meta),
            TraceStore::Spilled(t) => t.replay_interned(program, meta),
        }
    }

    /// Batched decoder over the recorded stream — dispatches to
    /// [`PackedTrace::replay_batched`] or [`SpilledTrace::replay_batched`],
    /// so in-memory and spilled traces batch-decode identically.
    pub fn replay_batched<'a>(
        &'a self,
        program: &'a Program,
        meta: &'a InstrMetaTable,
    ) -> BatchReplay<'a> {
        match self {
            TraceStore::Mem(t) => t.replay_batched(program, meta),
            TraceStore::Spilled(t) => t.replay_batched(program, meta),
        }
    }
}

/// One append-only section segment of an in-progress spill. Removes its
/// file on drop; [`SpillingRecorder::finish`] copies the segments into the
/// final spill file while they are still alive.
struct SegWriter {
    w: io::BufWriter<File>,
    path: PathBuf,
}

impl SegWriter {
    fn create(dir: &Path, stem: &str, kind: &str) -> Result<SegWriter, TraceError> {
        let path = dir.join(format!("{stem}.{kind}.seg.tmp-{}", std::process::id()));
        faultfs::check_write(&path).map_err(io_at(&path, "create"))?;
        let file = File::create(&path).map_err(io_at(&path, "create"))?;
        Ok(SegWriter { w: io::BufWriter::new(file), path })
    }

    fn write_words(&mut self, words: &[u64]) -> Result<(), TraceError> {
        for word in words {
            self.w.write_all(&word.to_le_bytes()).map_err(io_at(&self.path, "write"))?;
        }
        Ok(())
    }

    fn write_bytes(&mut self, bytes: &[u8]) -> Result<(), TraceError> {
        self.w.write_all(bytes).map_err(io_at(&self.path, "write"))
    }

    /// Flushes buffered data and streams the segment's bytes into `sink`.
    fn copy_into(&mut self, sink: &mut SpillSink) -> Result<(), TraceError> {
        self.w.flush().map_err(io_at(&self.path, "flush"))?;
        let mut f = File::open(&self.path).map_err(io_at(&self.path, "open"))?;
        let mut buf = vec![0u8; 1 << 16];
        loop {
            let n = f.read(&mut buf).map_err(io_at(&self.path, "read"))?;
            if n == 0 {
                return Ok(());
            }
            sink.write(&buf[..n])?;
        }
    }
}

impl Drop for SegWriter {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

struct Segments {
    redirect: SegWriter,
    taken: SegWriter,
    addrs: SegWriter,
    targets: SegWriter,
    sizes: SegWriter,
}

impl Segments {
    fn create(dir: &Path, stem: &str) -> Result<Segments, TraceError> {
        Ok(Segments {
            redirect: SegWriter::create(dir, stem, "redirect")?,
            taken: SegWriter::create(dir, stem, "taken")?,
            addrs: SegWriter::create(dir, stem, "addrs")?,
            targets: SegWriter::create(dir, stem, "targets")?,
            sizes: SegWriter::create(dir, stem, "sizes")?,
        })
    }
}

/// A [`PackedRecorder`] with an out-of-core overflow path: records pack
/// into memory up to `mem_budget` bytes, after which the encoding's
/// completed prefix drains to segment files in `dir`, keeping resident
/// memory bounded by the budget regardless of stream length.
/// [`finish`](SpillingRecorder::finish) returns [`TraceStore::Mem`] when
/// everything fit, or assembles the segments into a spill file and returns
/// [`TraceStore::Spilled`].
pub struct SpillingRecorder {
    rec: PackedRecorder,
    mem_budget: usize,
    dir: PathBuf,
    stem: String,
    final_path: PathBuf,
    segs: Option<Segments>,
    words_flushed: usize,
    targets_flushed: u64,
    mem_flushed: u64,
}

impl SpillingRecorder {
    /// Creates a recorder that spills to `dir/<stem>.spill` when the
    /// packed encoding exceeds `mem_budget` bytes.
    pub fn new(mem_budget: usize, dir: &Path, stem: &str) -> SpillingRecorder {
        SpillingRecorder {
            rec: PackedRecorder::new(),
            mem_budget,
            dir: dir.to_path_buf(),
            stem: stem.to_string(),
            final_path: dir.join(format!("{stem}.spill")),
            segs: None,
            words_flushed: 0,
            targets_flushed: 0,
            mem_flushed: 0,
        }
    }

    /// Number of records packed so far.
    pub fn len(&self) -> u64 {
        self.rec.len
    }

    /// `true` when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.rec.len == 0
    }

    /// `true` once any part of the encoding has been drained to disk.
    pub fn spilled(&self) -> bool {
        self.segs.is_some()
    }

    /// Packs one retired instruction, draining to disk if the in-memory
    /// encoding has outgrown the budget.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError::Io`] if the drain's filesystem writes fail;
    /// segment files already created are removed when the recorder drops.
    pub fn push(&mut self, d: &DynInstr) -> Result<(), TraceError> {
        self.rec.push(d);
        if self.rec.packed_bytes() > self.mem_budget {
            self.drain(false)?;
        }
        Ok(())
    }

    /// Drains the encoding's completed prefix (or, at `finish`, everything
    /// including the partial trailing bitset word) to the segments.
    fn drain(&mut self, all: bool) -> Result<(), TraceError> {
        if self.segs.is_none() {
            fs::create_dir_all(&self.dir).map_err(io_at(&self.dir, "create_dir"))?;
            self.segs = Some(Segments::create(&self.dir, &self.stem)?);
        }
        let Some(segs) = self.segs.as_mut() else {
            return Ok(());
        };
        // Only fully populated bitset words may leave memory early; the
        // trailing word is still accumulating bits.
        let complete = usize::try_from(self.rec.len / 64).unwrap_or(usize::MAX);
        let n = if all {
            self.rec.redirect_bits.len()
        } else {
            complete.saturating_sub(self.words_flushed)
        };
        segs.redirect.write_words(&self.rec.redirect_bits[..n])?;
        segs.taken.write_words(&self.rec.taken_bits[..n])?;
        self.rec.redirect_bits.drain(..n);
        self.rec.taken_bits.drain(..n);
        self.words_flushed += n;
        segs.addrs.write_words(&self.rec.mem_addrs)?;
        self.mem_flushed += self.rec.mem_addrs.len() as u64;
        self.rec.mem_addrs.clear();
        segs.targets.write_bytes(&self.rec.targets)?;
        self.targets_flushed += self.rec.targets.len() as u64;
        self.rec.targets.clear();
        segs.sizes.write_bytes(&self.rec.mem_sizes)?;
        self.rec.mem_sizes.clear();
        Ok(())
    }

    /// Seals the recording: an in-memory [`PackedTrace`] when nothing was
    /// drained, otherwise the assembled spill file opened back as a
    /// [`SpilledTrace`] (marked delete-on-drop — the file is this
    /// capture's private storage).
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] if assembling, renaming, or re-opening the
    /// spill file fails. All temp files are cleaned up on every path.
    pub fn finish(
        mut self,
        program: &Program,
        halted: bool,
        fault: Option<SimError>,
    ) -> Result<TraceStore, TraceError> {
        if self.segs.is_none() {
            let rec = std::mem::take(&mut self.rec);
            return Ok(TraceStore::Mem(rec.finish(program, halted, fault)));
        }
        self.drain(true)?;
        let header = meta_header(
            program.name(),
            program.len(),
            self.rec.start_pc,
            self.rec.len,
            halted,
            fault.as_ref(),
            self.words_flushed as u64,
            self.targets_flushed,
            self.mem_flushed,
        );
        let mut sink = SpillSink::create(&self.final_path)?;
        write_meta(&mut sink, program.name(), fault.as_ref())?;
        // Segment drop (end of this function, success or error) removes
        // the temp files; copy while they are alive.
        let Some(mut segs) = self.segs.take() else {
            return Err(corrupt(&self.final_path, "spill segments vanished"));
        };
        segs.redirect.copy_into(&mut sink)?;
        segs.taken.copy_into(&mut sink)?;
        segs.addrs.copy_into(&mut sink)?;
        segs.targets.copy_into(&mut sink)?;
        segs.sizes.copy_into(&mut sink)?;
        sink.finish(header)?;
        drop(segs);
        let mut spilled = SpilledTrace::open(&self.final_path)?;
        spilled.delete_on_drop(true);
        Ok(TraceStore::Spilled(spilled))
    }
}

#[cfg(unix)]
mod map {
    //! Minimal read-only `mmap` wrapper. The workspace builds offline
    //! without the `libc` crate, so the two symbols are declared directly;
    //! `std` already links the platform C library on unix.

    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    extern "C" {
        fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
        fn munmap(addr: *mut u8, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    /// A private read-only mapping of a whole file, unmapped on drop.
    #[derive(Debug)]
    pub struct Mmap {
        ptr: *const u8,
        len: usize,
    }

    // Safety: the mapping is immutable (PROT_READ, MAP_PRIVATE) for its
    // whole lifetime, so shared references from any thread are sound.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        /// Maps `len` bytes of `file` read-only; `None` when the kernel
        /// refuses (callers fall back to owned reads).
        pub fn map(file: &File, len: usize) -> Option<Mmap> {
            if len == 0 {
                return None;
            }
            let ptr = unsafe {
                mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0)
            };
            if ptr.is_null() || ptr as isize == -1 {
                None
            } else {
                Some(Mmap { ptr, len })
            }
        }

        /// The mapped bytes.
        pub fn bytes(&self) -> &[u8] {
            // Safety: ptr/len come from a successful mmap that lives as
            // long as self.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            // Safety: ptr/len are the exact values a successful mmap
            // returned; the mapping is unmapped exactly once.
            unsafe {
                munmap(self.ptr.cast_mut(), self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Simulator;
    use perfclone_isa::{MemWidth, ProgramBuilder, Reg, StreamDesc};

    fn busy_program() -> Program {
        let mut b = ProgramBuilder::new("busy");
        let table = b.data_u64(&[1, 2, 3, 4]);
        let id = b.stream(StreamDesc { base: 0x4000, stride: 16, length: 8 });
        let (i, n, acc, ptr) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(4));
        b.li(i, 0);
        b.li(n, 40);
        b.li(ptr, table as i64);
        let top = b.label();
        b.bind(top);
        b.ld_stream(acc, id, MemWidth::B8);
        b.sb(acc, ptr, 16);
        b.addi(i, i, 1);
        b.blt(i, n, top);
        b.halt();
        b.build()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("perfclone-spill-test-{}-{tag}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn stray_pid_parses_only_this_crates_shapes() {
        assert_eq!(stray_pid("perfclone-crc32-123-0.spill"), Some(123));
        assert_eq!(stray_pid("perfclone-a_b-9-17.spill"), Some(9));
        assert_eq!(stray_pid("perfclone-crc32-123-0.spill.tmp-456"), Some(456));
        assert_eq!(stray_pid("perfclone-crc32-123-0.addrs.seg.tmp-456"), Some(456));
        assert_eq!(stray_pid("perfclone-noseq.spill"), None);
        assert_eq!(stray_pid("perfclone-crc32-x-0.spill"), None);
        assert_eq!(stray_pid("busy.spill"), None);
        assert_eq!(stray_pid("shard-000001.json"), None);
    }

    #[test]
    fn reap_removes_dead_pid_strays_and_keeps_live_ones() {
        let dir = tmp_dir("reap");
        // A pid above the kernel's pid_max (4 194 304 on Linux) can never
        // be alive, so these strays are provably dead.
        let dead = 4_000_000_000u32;
        let dead_spill = dir.join(format!("perfclone-crc32-{dead}-0.spill"));
        let dead_seg = dir.join(format!("perfclone-crc32-{dead}-1.addrs.seg.tmp-{dead}"));
        let dead_tmp = dir.join(format!("perfclone-crc32-{dead}-2.spill.tmp-{dead}"));
        let live = dir.join(format!("perfclone-crc32-{}-0.spill", std::process::id()));
        let unrelated = dir.join("busy.spill");
        for f in [&dead_spill, &dead_seg, &dead_tmp, &live, &unrelated] {
            fs::write(f, b"x").unwrap();
        }
        let reaped = reap_stray_spills(&dir);
        if cfg!(target_os = "linux") {
            assert_eq!(reaped, 3);
            assert!(!dead_spill.exists() && !dead_seg.exists() && !dead_tmp.exists());
        } else {
            // Without a pid-liveness oracle nothing is reaped.
            assert_eq!(reaped, 0);
        }
        assert!(live.exists(), "live-pid spill must survive");
        assert!(unrelated.exists(), "non-perfclone files must never be touched");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spill_round_trips_and_maps() {
        let p = busy_program();
        let packed = PackedTrace::capture(&p, u64::MAX);
        let dir = tmp_dir("roundtrip");
        let path = dir.join("busy.spill");
        packed.spill_to(&path).unwrap();
        let spilled = SpilledTrace::open(&path).unwrap();
        assert_eq!(spilled.len(), packed.len());
        assert_eq!(spilled.halted(), packed.halted());
        assert_eq!(spilled.fault(), packed.fault());
        let direct: Vec<DynInstr> = packed.replay(&p).collect();
        let mapped: Vec<DynInstr> = spilled.replay(&p).collect();
        assert_eq!(direct, mapped);
        assert!(spilled.is_mapped(), "unix CI should serve spills via mmap");
        drop(spilled);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spilled_batched_decode_matches_in_memory_oracle() {
        let p = busy_program();
        let meta = InstrMetaTable::new(&p);
        let packed = PackedTrace::capture(&p, u64::MAX);
        let dir = tmp_dir("batched");
        let path = dir.join("busy.spill");
        packed.spill_to(&path).unwrap();
        let spilled = SpilledTrace::open(&path).unwrap();
        let oracle: Vec<DynInstr> = packed.replay(&p).collect();
        let interned: Vec<DynInstr> = spilled.replay_interned(&p, &meta).collect();
        assert_eq!(oracle, interned);
        let mut batched = spilled.replay_batched(&p, &meta);
        let mut chunk = crate::ReplayChunk::new();
        let mut out = Vec::new();
        while batched.fill(&mut chunk) > 0 {
            out.extend(chunk.records(p.instrs()));
        }
        assert_eq!(oracle, out, "mmap-backed batched decode must match");
        assert_eq!(batched.fault(), packed.fault());
        drop(spilled);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spilling_recorder_stays_in_memory_under_budget() {
        let p = busy_program();
        let dir = tmp_dir("mem");
        let mut rec = SpillingRecorder::new(usize::MAX, &dir, "busy");
        let mut trace = Simulator::trace(&p, u64::MAX);
        for d in &mut trace {
            rec.push(&d).unwrap();
        }
        let halted = {
            let fault = trace.fault().cloned();
            assert!(fault.is_none());
            trace.into_inner().is_halted()
        };
        let store = rec.finish(&p, halted, None).unwrap();
        assert!(!store.is_spilled());
        assert_eq!(store.len(), PackedTrace::capture(&p, u64::MAX).len());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spilling_recorder_matches_direct_capture() {
        let p = busy_program();
        let dir = tmp_dir("spill");
        // A budget far below the encoding size forces many drain cycles.
        let mut rec = SpillingRecorder::new(160, &dir, "busy");
        let mut trace = Simulator::trace(&p, u64::MAX);
        for d in &mut trace {
            rec.push(&d).unwrap();
        }
        let fault = trace.fault().cloned();
        let halted = trace.into_inner().is_halted();
        let store = rec.finish(&p, halted, fault).unwrap();
        assert!(store.is_spilled());
        let direct: Vec<DynInstr> = PackedTrace::capture(&p, u64::MAX).replay(&p).collect();
        let replayed: Vec<DynInstr> = store.replay(&p).collect();
        assert_eq!(direct, replayed);
        // Only the final spill file remains — segments are gone.
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["busy.spill".to_string()], "leftovers: {names:?}");
        let path = store.spill_path().unwrap().to_path_buf();
        drop(store);
        assert!(!path.exists(), "capture-produced spill should delete on drop");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn faulted_trace_round_trips_through_spill() {
        let mut b = ProgramBuilder::new("fall");
        b.nop(); // no halt: falls off the end
        let p = b.build();
        let packed = PackedTrace::capture(&p, 100);
        assert!(packed.fault().is_some());
        let dir = tmp_dir("fault");
        let path = dir.join("fall.spill");
        packed.spill_to(&path).unwrap();
        let spilled = SpilledTrace::open(&path).unwrap();
        assert_eq!(spilled.fault(), packed.fault());
        assert!(!spilled.halted());
        let a: Vec<DynInstr> = packed.replay(&p).collect();
        let b2: Vec<DynInstr> = spilled.replay(&p).collect();
        assert_eq!(a, b2);
        drop(spilled);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_files_yield_typed_errors() {
        let p = busy_program();
        let packed = PackedTrace::capture(&p, u64::MAX);
        let dir = tmp_dir("corrupt");
        let path = dir.join("busy.spill");
        packed.spill_to(&path).unwrap();
        let pristine = fs::read(&path).unwrap();

        // Flipped payload byte: checksum mismatch.
        let mut bad = pristine.clone();
        let mid = HEADER_LEN + (bad.len() - HEADER_LEN) / 2;
        bad[mid] ^= 0xff;
        fs::write(&path, &bad).unwrap();
        assert!(matches!(SpilledTrace::open(&path), Err(TraceError::Corrupt { .. })));

        // Truncated file: geometry mismatch.
        fs::write(&path, &pristine[..pristine.len() - 3]).unwrap();
        assert!(matches!(SpilledTrace::open(&path), Err(TraceError::Corrupt { .. })));

        // Bad magic.
        let mut bad = pristine.clone();
        bad[0] = b'X';
        fs::write(&path, &bad).unwrap();
        assert!(matches!(SpilledTrace::open(&path), Err(TraceError::BadMagic { .. })));

        // Unsupported version.
        let mut bad = pristine.clone();
        bad[8] = 99;
        fs::write(&path, &bad).unwrap();
        assert!(matches!(
            SpilledTrace::open(&path),
            Err(TraceError::BadVersion { version: 99, .. })
        ));

        // Shorter than a header.
        fs::write(&path, &pristine[..10]).unwrap();
        assert!(matches!(SpilledTrace::open(&path), Err(TraceError::Corrupt { .. })));

        fs::remove_dir_all(&dir).unwrap();
    }
}
