//! Dynamic-instruction trace records and instrumentation hooks.

use perfclone_isa::Instr;

/// One dynamic memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemAccess {
    /// Effective byte address.
    pub addr: u64,
    /// Access size in bytes.
    pub bytes: u8,
    /// `true` for stores.
    pub is_store: bool,
}

/// One retired dynamic instruction, as surfaced to [`Observer`]s and yielded
/// by [`Trace`](crate::Trace).
///
/// This is the interchange record between the functional core, the workload
/// profiler, and the timing simulator: it carries everything a trace-driven
/// microarchitecture model needs (control-flow outcome and effective
/// address) without exposing register *values*.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DynInstr {
    /// Program counter of the instruction (instruction index).
    pub pc: u32,
    /// The static instruction.
    pub instr: Instr,
    /// Program counter of the next retired instruction.
    pub next_pc: u32,
    /// For conditional branches: whether the branch was taken.
    pub taken: bool,
    /// For loads/stores: the dynamic access.
    pub mem: Option<MemAccess>,
}

impl DynInstr {
    /// Returns `true` when control did not fall through to `pc + 1`.
    #[inline]
    pub fn redirected(&self) -> bool {
        self.next_pc != self.pc.wrapping_add(1)
    }
}

/// Instrumentation hook invoked once per retired instruction, in program
/// order — the ATOM/PIN analysis-routine analogue (paper §3.1).
pub trait Observer {
    /// Called after `d` retires.
    fn on_retire(&mut self, d: &DynInstr);
}

/// An [`Observer`] that ignores every event.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    #[inline]
    fn on_retire(&mut self, _d: &DynInstr) {}
}

/// An [`Observer`] that counts retired instructions by kind — handy in tests
/// and as a usage example for custom observers.
#[derive(Clone, Copy, Debug, Default)]
pub struct CountingObserver {
    /// Total retired instructions.
    pub instrs: u64,
    /// Retired loads.
    pub loads: u64,
    /// Retired stores.
    pub stores: u64,
    /// Retired conditional branches.
    pub branches: u64,
    /// Taken conditional branches.
    pub taken_branches: u64,
}

impl Observer for CountingObserver {
    fn on_retire(&mut self, d: &DynInstr) {
        self.instrs += 1;
        if let Some(m) = d.mem {
            if m.is_store {
                self.stores += 1;
            } else {
                self.loads += 1;
            }
        }
        if d.instr.is_cond_branch() {
            self.branches += 1;
            if d.taken {
                self.taken_branches += 1;
            }
        }
    }
}

impl<O: Observer + ?Sized> Observer for &mut O {
    #[inline]
    fn on_retire(&mut self, d: &DynInstr) {
        (**self).on_retire(d);
    }
}

/// An iterator over the dynamic instruction stream of a program.
///
/// Wraps a [`Simulator`](crate::Simulator) and yields one [`DynInstr`] per
/// retired instruction until the program halts, the instruction budget is
/// exhausted, or the program faults.
#[derive(Debug)]
pub struct Trace<'p> {
    sim: crate::Simulator<'p>,
    remaining: u64,
    fault: Option<crate::SimError>,
}

impl<'p> Trace<'p> {
    pub(crate) fn new(sim: crate::Simulator<'p>, limit: u64) -> Trace<'p> {
        Trace { sim, remaining: limit, fault: None }
    }

    /// The fault that ended the trace early, if any. A faulting program
    /// truncates the iterator; callers that must distinguish a clean stop
    /// from a crash check this after exhausting the iterator.
    pub fn fault(&self) -> Option<&crate::SimError> {
        self.fault.as_ref()
    }

    /// Consumes the trace, returning the underlying simulator (for state
    /// inspection after the walk).
    pub fn into_inner(self) -> crate::Simulator<'p> {
        self.sim
    }
}

impl Iterator for Trace<'_> {
    type Item = DynInstr;

    fn next(&mut self) -> Option<DynInstr> {
        if self.remaining == 0 || self.fault.is_some() {
            return None;
        }
        self.remaining -= 1;
        match self.sim.step() {
            Ok(d) => d,
            Err(e) => {
                self.fault = Some(e);
                None
            }
        }
    }
}
