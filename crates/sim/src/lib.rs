//! # perfclone-sim
//!
//! Functional (instruction-accurate) simulator for the `perfclone-isa`
//! instruction set, with instrumentation hooks.
//!
//! This crate plays the role SimpleScalar's `sim-safe` plus an ATOM/PIN-style
//! instrumentation layer play in the original paper: it executes a
//! [`Program`](perfclone_isa::Program) and surfaces every retired instruction
//! as a [`DynInstr`] record to an [`Observer`] — the raw material from which
//! `perfclone-profile` measures the microarchitecture-independent workload
//! attributes and which `perfclone-uarch` replays through its timing model.
//!
//! # Example
//!
//! ```
//! use perfclone_isa::{ProgramBuilder, Reg};
//! use perfclone_sim::Simulator;
//!
//! let mut b = ProgramBuilder::new("answer");
//! b.li(Reg::new(1), 6);
//! b.li(Reg::new(2), 7);
//! b.mul(Reg::new(3), Reg::new(1), Reg::new(2));
//! b.halt();
//! let program = b.build();
//!
//! let mut sim = Simulator::new(&program);
//! let outcome = sim.run(1_000)?;
//! assert!(outcome.halted);
//! assert_eq!(sim.state().reg(Reg::new(3)), 42);
//! # Ok::<(), perfclone_sim::SimError>(())
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod exec;
pub mod faultfs;
mod mem;
mod packed;
mod spill;
mod state;
mod trace;

pub use exec::{RunOutcome, SimError, Simulator};
pub use faultfs::FaultFsPlan;
pub use mem::Memory;
pub use packed::{BatchReplay, PackedRecorder, PackedReplay, PackedTrace, ReplayChunk, CHUNK_LEN};
pub use spill::{reap_stray_spills, SpilledTrace, SpillingRecorder, TraceError, TraceStore};
pub use state::ArchState;
pub use trace::{CountingObserver, DynInstr, MemAccess, NullObserver, Observer, Trace};
