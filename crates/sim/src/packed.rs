//! Record-once/replay-many packed dynamic traces.
//!
//! A design-space sweep replays the *same* retired-instruction stream
//! through many timing configurations, yet [`Simulator::trace`] regenerates
//! it with a full functional execution per run. [`PackedTrace`] records the
//! stream once, in a compact structure-of-arrays encoding, and
//! [`PackedTrace::replay`] reconstructs it as [`DynInstr`] records with a
//! zero-allocation iterator — the record-once/replay-many discipline of
//! trace-driven simulators (SimpleScalar's `sim-outorder` trace mode).
//!
//! # Encoding
//!
//! The functional core retires a *contiguous* correct-path stream: record
//! `i + 1` always starts at record `i`'s `next_pc`, and `halt` ends the
//! stream. Only deviations from fall-through need storing, so per record
//! the trace keeps:
//!
//! * one *redirect* bit — set when `next_pc != pc + 1`;
//! * one *taken* bit — conditional-branch outcome (a taken branch whose
//!   target is `pc + 1` is taken but not redirected, so this cannot be
//!   derived from the redirect bit);
//! * for redirected records only, the signed pc delta `next_pc − pc`,
//!   zigzag + LEB128 varint encoded (loop back-edges are 1–2 bytes);
//! * for memory records only, the effective address (SoA `u64` array) and
//!   the access size with the store flag folded into the top bit.
//!
//! The static [`Instr`] is *not* copied per dynamic record: replay resolves
//! it by pc from the owning [`Program`], which also decides whether a
//! record carries a memory access. Bundled kernels pack to ~2–3 bytes per
//! dynamic instruction versus the 64 of a materialized `Vec<DynInstr>`.
//!
//! # Fault carry-through
//!
//! A program that faults mid-capture produces a trace holding every record
//! retired *before* the fault plus the typed [`SimError`]; replay yields
//! the same truncated stream and surfaces the same fault from
//! [`PackedTrace::fault`], mirroring [`Trace::fault`](crate::Trace::fault).
//! [`PackedTrace::halted`] distinguishes a clean `halt` from a capture that
//! stopped at its instruction limit.

use perfclone_isa::{Instr, InstrMeta, InstrMetaTable, Program};

use crate::exec::{SimError, Simulator};
use crate::trace::{DynInstr, MemAccess, Observer};

/// A compact recording of one program's retired-instruction stream,
/// replayable any number of times without re-running the functional
/// interpreter. See the [module docs](self) for the encoding.
#[derive(Clone, Debug, PartialEq)]
pub struct PackedTrace {
    pub(crate) program_name: String,
    pub(crate) program_len: usize,
    pub(crate) start_pc: u32,
    pub(crate) len: u64,
    /// Bit `i`: record `i` did not fall through (`next_pc != pc + 1`).
    pub(crate) redirect_bits: Vec<u64>,
    /// Bit `i`: record `i` is a taken conditional branch.
    pub(crate) taken_bits: Vec<u64>,
    /// Zigzag-LEB128 `next_pc − pc` deltas, one per redirected record,
    /// in stream order.
    pub(crate) targets: Vec<u8>,
    /// Effective addresses of memory records, in stream order.
    pub(crate) mem_addrs: Vec<u64>,
    /// Access sizes of memory records; bit 7 carries the store flag.
    pub(crate) mem_sizes: Vec<u8>,
    pub(crate) halted: bool,
    pub(crate) fault: Option<SimError>,
}

impl PackedTrace {
    /// Captures the dynamic stream of `program` (at most `limit`
    /// instructions) in one functional execution.
    ///
    /// A mid-stream fault is carried through: the returned trace holds the
    /// records retired before the fault and reports it from
    /// [`fault`](PackedTrace::fault). Like [`Simulator::trace`], a
    /// non-halting program with `limit == u64::MAX` does not terminate.
    pub fn capture(program: &Program, limit: u64) -> PackedTrace {
        let mut rec = PackedRecorder::new();
        let mut trace = Simulator::trace(program, limit);
        for d in &mut trace {
            rec.push(&d);
        }
        let fault = trace.fault().cloned();
        let halted = trace.into_inner().is_halted();
        rec.finish(program, halted, fault)
    }

    /// Like [`capture`](PackedTrace::capture), but aborts — returning
    /// `None`, never a silently truncated trace — as soon as the packed
    /// encoding would exceed `cap_bytes`. Callers fall back to direct
    /// interpretation when capped out.
    pub fn capture_capped(program: &Program, limit: u64, cap_bytes: usize) -> Option<PackedTrace> {
        let mut rec = PackedRecorder::new();
        let mut trace = Simulator::trace(program, limit);
        for d in &mut trace {
            rec.push(&d);
            if rec.packed_bytes() > cap_bytes {
                return None;
            }
        }
        let fault = trace.fault().cloned();
        let halted = trace.into_inner().is_halted();
        Some(rec.finish(program, halted, fault))
    }

    /// Number of retired instructions recorded.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when no instructions were recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` when the capture ended with the program executing `halt`
    /// (as opposed to hitting its instruction limit or faulting) — the
    /// recorded stream is the program's *complete* execution.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// The fault that ended the capture early, if any. Replay yields the
    /// records retired before the fault; callers that must distinguish a
    /// clean stop from a crash check this after exhausting the iterator,
    /// exactly as with [`Trace::fault`](crate::Trace::fault).
    pub fn fault(&self) -> Option<&SimError> {
        self.fault.as_ref()
    }

    /// Name of the program this trace was captured from.
    pub fn program_name(&self) -> &str {
        &self.program_name
    }

    /// Approximate heap footprint of the packed encoding, in bytes.
    pub fn packed_bytes(&self) -> usize {
        std::mem::size_of::<PackedTrace>()
            + self.program_name.len()
            + (self.redirect_bits.len() + self.taken_bits.len() + self.mem_addrs.len()) * 8
            + self.targets.len()
            + self.mem_sizes.len()
    }

    /// A zero-allocation iterator reconstructing the recorded
    /// [`DynInstr`] stream, resolving each static [`Instr`] from
    /// `program`.
    ///
    /// # Panics
    ///
    /// Panics if `program` is not the program the trace was captured from
    /// (checked by name and text length) — replaying against different
    /// code would silently decode garbage.
    pub fn replay<'a>(&'a self, program: &'a Program) -> PackedReplay<'a> {
        replay_parts(self.parts(), program, None)
    }

    /// Like [`replay`](PackedTrace::replay), but resolves per-record static
    /// questions (does this pc carry a memory access?) from an interned
    /// [`InstrMetaTable`] instead of re-matching the instruction enum per
    /// record. Decoded stream is identical; only the per-record cost drops.
    ///
    /// # Panics
    ///
    /// Panics if `program` does not match the capture, or if `meta` was not
    /// built for `program` (checked by length).
    pub fn replay_interned<'a>(
        &'a self,
        program: &'a Program,
        meta: &'a InstrMetaTable,
    ) -> PackedReplay<'a> {
        assert_meta_matches(meta, program);
        replay_parts(self.parts(), program, Some(meta.as_slice()))
    }

    /// A batched decoder over this trace: [`BatchReplay::fill`] decodes up
    /// to [`CHUNK_LEN`] records at a time into a reusable [`ReplayChunk`]
    /// using word-at-a-time scans of the redirect/taken bitsets. Yields the
    /// exact record stream of [`replay`](PackedTrace::replay) (the
    /// property-tested oracle), chunked.
    ///
    /// # Panics
    ///
    /// Same identity checks as [`replay_interned`](PackedTrace::replay_interned).
    pub fn replay_batched<'a>(
        &'a self,
        program: &'a Program,
        meta: &'a InstrMetaTable,
    ) -> BatchReplay<'a> {
        batch_replay_parts(self.parts(), program, meta)
    }

    fn parts(&self) -> TraceParts<'_> {
        TraceParts {
            program_name: &self.program_name,
            program_len: self.program_len,
            start_pc: self.start_pc,
            len: self.len,
            redirect_bits: &self.redirect_bits,
            taken_bits: &self.taken_bits,
            targets: &self.targets,
            mem_addrs: &self.mem_addrs,
            mem_sizes: &self.mem_sizes,
            fault: self.fault.as_ref(),
        }
    }
}

/// Borrowed view of a packed trace's raw encoding — the common currency
/// between an in-memory [`PackedTrace`] and a memory-mapped spill file
/// (see [`crate::spill`]); both replay through the same iterator.
#[derive(Clone, Copy, Debug)]
pub(crate) struct TraceParts<'a> {
    pub program_name: &'a str,
    pub program_len: usize,
    pub start_pc: u32,
    pub len: u64,
    pub redirect_bits: &'a [u64],
    pub taken_bits: &'a [u64],
    pub targets: &'a [u8],
    pub mem_addrs: &'a [u64],
    pub mem_sizes: &'a [u8],
    pub fault: Option<&'a SimError>,
}

/// Asserts the program identity (name and text length) matches the capture.
fn assert_program_matches(parts: &TraceParts<'_>, program: &Program) {
    assert!(
        program.name() == parts.program_name && program.len() == parts.program_len,
        "packed trace of {:?} ({} instrs) replayed against {:?} ({} instrs)",
        parts.program_name,
        parts.program_len,
        program.name(),
        program.len(),
    );
}

/// Asserts an interned metadata table was built for `program`.
fn assert_meta_matches(meta: &InstrMetaTable, program: &Program) {
    assert!(
        meta.len() == program.len(),
        "interned metadata of {} instrs replayed against {:?} ({} instrs)",
        meta.len(),
        program.name(),
        program.len(),
    );
}

/// Builds the replay iterator for a raw trace encoding, asserting the
/// program identity (name and text length) matches the capture. With
/// `meta`, per-record static questions come from the interned table.
pub(crate) fn replay_parts<'a>(
    parts: TraceParts<'a>,
    program: &'a Program,
    meta: Option<&'a [InstrMeta]>,
) -> PackedReplay<'a> {
    assert_program_matches(&parts, program);
    PackedReplay {
        len: parts.len,
        redirect_bits: parts.redirect_bits,
        taken_bits: parts.taken_bits,
        targets: parts.targets,
        mem_addrs: parts.mem_addrs,
        mem_sizes: parts.mem_sizes,
        fault: parts.fault,
        code: program.instrs(),
        meta,
        idx: 0,
        pc: parts.start_pc,
        target_cursor: 0,
        mem_cursor: 0,
    }
}

/// Builds the batched decoder for a raw trace encoding, asserting both the
/// program identity and that `meta` was interned for that program.
pub(crate) fn batch_replay_parts<'a>(
    parts: TraceParts<'a>,
    program: &'a Program,
    meta: &'a InstrMetaTable,
) -> BatchReplay<'a> {
    assert_program_matches(&parts, program);
    assert_meta_matches(meta, program);
    BatchReplay {
        len: parts.len,
        redirect_bits: parts.redirect_bits,
        taken_bits: parts.taken_bits,
        targets: parts.targets,
        mem_addrs: parts.mem_addrs,
        mem_sizes: parts.mem_sizes,
        fault: parts.fault,
        meta: meta.as_slice(),
        idx: 0,
        pc: parts.start_pc,
        target_cursor: 0,
        mem_cursor: 0,
    }
}

/// Incremental builder for a [`PackedTrace`] — an [`Observer`] that packs
/// each retired instruction as it streams past, so capture can be fused
/// with profiling or any other single-pass analysis.
///
/// The pushed records must form one contiguous correct-path stream (each
/// record's `pc` equal to its predecessor's `next_pc`), which is what any
/// [`Simulator`]-driven run produces; this is debug-asserted.
#[derive(Clone, Debug, Default)]
pub struct PackedRecorder {
    pub(crate) start_pc: u32,
    expect_pc: u32,
    pub(crate) len: u64,
    pub(crate) redirect_bits: Vec<u64>,
    pub(crate) taken_bits: Vec<u64>,
    pub(crate) targets: Vec<u8>,
    pub(crate) mem_addrs: Vec<u64>,
    pub(crate) mem_sizes: Vec<u8>,
}

impl PackedRecorder {
    /// Creates an empty recorder.
    pub fn new() -> PackedRecorder {
        PackedRecorder::default()
    }

    /// Number of records packed so far.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current packed size in bytes (the [`PackedTrace::packed_bytes`] of
    /// the trace [`finish`](PackedRecorder::finish) would build now,
    /// excluding the program-name string).
    pub fn packed_bytes(&self) -> usize {
        std::mem::size_of::<PackedTrace>()
            + (self.redirect_bits.len() + self.taken_bits.len() + self.mem_addrs.len()) * 8
            + self.targets.len()
            + self.mem_sizes.len()
    }

    /// Packs one retired instruction.
    pub fn push(&mut self, d: &DynInstr) {
        if self.len == 0 {
            self.start_pc = d.pc;
        } else {
            debug_assert_eq!(
                d.pc, self.expect_pc,
                "packed capture requires a contiguous retired stream"
            );
        }
        if self.len.is_multiple_of(64) {
            self.redirect_bits.push(0);
            self.taken_bits.push(0);
        }
        let bit = 1u64 << (self.len % 64);
        if let (Some(r), Some(t)) = (self.redirect_bits.last_mut(), self.taken_bits.last_mut()) {
            if d.redirected() {
                *r |= bit;
                let delta = i64::from(d.next_pc) - i64::from(d.pc);
                encode_zigzag(delta, &mut self.targets);
            }
            if d.taken {
                *t |= bit;
            }
        }
        if let Some(m) = d.mem {
            self.mem_addrs.push(m.addr);
            self.mem_sizes.push(m.bytes | if m.is_store { 0x80 } else { 0 });
        }
        self.expect_pc = d.next_pc;
        self.len += 1;
    }

    /// Seals the recording into a [`PackedTrace`] owned by `program`'s
    /// stream, with the run's end state: whether the program halted and
    /// the fault (if any) that cut the stream short.
    pub fn finish(self, program: &Program, halted: bool, fault: Option<SimError>) -> PackedTrace {
        PackedTrace {
            program_name: program.name().to_string(),
            program_len: program.len(),
            start_pc: self.start_pc,
            len: self.len,
            redirect_bits: self.redirect_bits,
            taken_bits: self.taken_bits,
            targets: self.targets,
            mem_addrs: self.mem_addrs,
            mem_sizes: self.mem_sizes,
            halted,
            fault,
        }
    }
}

impl Observer for PackedRecorder {
    #[inline]
    fn on_retire(&mut self, d: &DynInstr) {
        self.push(d);
    }
}

/// Iterator over a packed trace's encoding, yielding the recorded
/// [`DynInstr`] stream without allocating. Created by
/// [`PackedTrace::replay`] (in-memory) or
/// [`SpilledTrace::replay`](crate::SpilledTrace::replay) (memory-mapped);
/// both feed it the same raw slices, so the two backings decode
/// identically by construction.
#[derive(Clone, Debug)]
pub struct PackedReplay<'a> {
    len: u64,
    redirect_bits: &'a [u64],
    taken_bits: &'a [u64],
    targets: &'a [u8],
    mem_addrs: &'a [u64],
    mem_sizes: &'a [u8],
    fault: Option<&'a SimError>,
    code: &'a [Instr],
    /// Interned per-pc metadata (from [`PackedTrace::replay_interned`]);
    /// `None` falls back to per-record enum inspection.
    meta: Option<&'a [InstrMeta]>,
    idx: u64,
    pc: u32,
    target_cursor: usize,
    mem_cursor: usize,
}

impl PackedReplay<'_> {
    /// The fault recorded at capture time, if any — the replay analogue of
    /// [`Trace::fault`](crate::Trace::fault): the iterator ends after the
    /// last cleanly retired record and this names what stopped it.
    pub fn fault(&self) -> Option<&SimError> {
        self.fault
    }
}

impl Iterator for PackedReplay<'_> {
    type Item = DynInstr;

    #[inline]
    fn next(&mut self) -> Option<DynInstr> {
        if self.idx == self.len {
            return None;
        }
        let pc = self.pc;
        let instr = self.code[pc as usize];
        let word = (self.idx / 64) as usize;
        let bit = 1u64 << (self.idx % 64);
        let taken = self.taken_bits[word] & bit != 0;
        let next_pc = if self.redirect_bits[word] & bit != 0 {
            let delta = decode_zigzag(self.targets, &mut self.target_cursor);
            i64::from(pc).wrapping_add(delta) as u32
        } else {
            pc.wrapping_add(1)
        };
        // The program decides whether this record carries a memory access;
        // the SoA arrays only hold the dynamic half (address, size, store).
        let has_mem = match self.meta {
            Some(metas) => metas[pc as usize].has_mem,
            None => instr.mem_ref().is_some(),
        };
        let mem = if has_mem {
            let addr = self.mem_addrs[self.mem_cursor];
            let sz = self.mem_sizes[self.mem_cursor];
            self.mem_cursor += 1;
            Some(MemAccess { addr, bytes: sz & 0x7f, is_store: sz & 0x80 != 0 })
        } else {
            None
        };
        self.idx += 1;
        self.pc = next_pc;
        Some(DynInstr { pc, instr, next_pc, taken, mem })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = usize::try_from(self.len - self.idx).unwrap_or(usize::MAX);
        (left, Some(left))
    }
}

/// Records per [`ReplayChunk`]: 256 keeps the chunk's SoA arrays (~4.6 KiB)
/// L1-resident while amortizing refill overhead, and is a multiple of 64 so
/// chunk boundaries align with bitset words.
pub const CHUNK_LEN: usize = 256;

/// A reusable structure-of-arrays batch of decoded trace records, filled by
/// [`BatchReplay::fill`]. Consumers index the parallel arrays directly
/// instead of materializing one [`DynInstr`] per record; the static
/// instruction is recovered from `pcs[i]` via the program text or an
/// interned [`InstrMetaTable`].
///
/// `mem_sizes[i] == 0` means record `i` carries no memory access (real
/// accesses are 1/4/8 bytes, with the store flag in bit 7, so 0 is free as
/// a sentinel); `mem_addrs[i]` is only meaningful when `mem_sizes[i] != 0`.
#[derive(Clone, Debug)]
pub struct ReplayChunk {
    len: usize,
    pcs: [u32; CHUNK_LEN],
    next_pcs: [u32; CHUNK_LEN],
    taken: [bool; CHUNK_LEN],
    mem_addrs: [u64; CHUNK_LEN],
    mem_sizes: [u8; CHUNK_LEN],
}

impl Default for ReplayChunk {
    fn default() -> ReplayChunk {
        ReplayChunk::new()
    }
}

impl ReplayChunk {
    /// An empty chunk, ready to be passed to [`BatchReplay::fill`].
    pub fn new() -> ReplayChunk {
        ReplayChunk {
            len: 0,
            pcs: [0; CHUNK_LEN],
            next_pcs: [0; CHUNK_LEN],
            taken: [false; CHUNK_LEN],
            mem_addrs: [0; CHUNK_LEN],
            mem_sizes: [0; CHUNK_LEN],
        }
    }

    /// Number of decoded records in the chunk (0 once the stream is drained).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the last fill decoded nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// pc of record `i`.
    #[inline]
    pub fn pc(&self, i: usize) -> u32 {
        self.pcs[i]
    }

    /// next_pc of record `i`.
    #[inline]
    pub fn next_pc(&self, i: usize) -> u32 {
        self.next_pcs[i]
    }

    /// Taken-conditional-branch flag of record `i`.
    #[inline]
    pub fn taken(&self, i: usize) -> bool {
        self.taken[i]
    }

    /// Memory access of record `i`, if it carries one.
    #[inline]
    pub fn mem(&self, i: usize) -> Option<MemAccess> {
        let sz = self.mem_sizes[i];
        (sz != 0).then(|| MemAccess {
            addr: self.mem_addrs[i],
            bytes: sz & 0x7f,
            is_store: sz & 0x80 != 0,
        })
    }

    /// Reassembles record `i` as a [`DynInstr`], resolving the static
    /// instruction from `code` — the bridge back to the record-at-a-time
    /// currency, used by the batched-vs-oracle equivalence tests.
    pub fn record(&self, i: usize, code: &[Instr]) -> DynInstr {
        assert!(i < self.len, "record {i} out of chunk (len {})", self.len);
        let pc = self.pcs[i];
        DynInstr {
            pc,
            instr: code[pc as usize],
            next_pc: self.next_pcs[i],
            taken: self.taken[i],
            mem: self.mem(i),
        }
    }

    /// Iterates the chunk's records as [`DynInstr`]s (test/oracle bridge).
    pub fn records<'a>(&'a self, code: &'a [Instr]) -> impl Iterator<Item = DynInstr> + 'a {
        (0..self.len).map(move |i| self.record(i, code))
    }
}

/// Batched decoder over a packed trace: each [`fill`](BatchReplay::fill)
/// decodes up to [`CHUNK_LEN`] records into a caller-owned [`ReplayChunk`].
///
/// Unlike [`PackedReplay`]'s per-record probing, the decoder loads each
/// 64-record redirect/taken bitset word once and walks runs of fall-through
/// records with `u64::trailing_zeros` — within a run, `next_pc` is just
/// `pc + 1` and no varint is decoded. Per-pc static questions come from the
/// interned [`InstrMetaTable`] rather than instruction-enum matching.
///
/// Fault/halted state carries through chunk boundaries exactly as in the
/// record-at-a-time path: the decoder stops after the last cleanly retired
/// record (wherever that falls relative to a chunk edge) and
/// [`fault`](BatchReplay::fault) names what stopped the capture.
#[derive(Clone, Debug)]
pub struct BatchReplay<'a> {
    len: u64,
    redirect_bits: &'a [u64],
    taken_bits: &'a [u64],
    targets: &'a [u8],
    mem_addrs: &'a [u64],
    mem_sizes: &'a [u8],
    fault: Option<&'a SimError>,
    meta: &'a [InstrMeta],
    idx: u64,
    pc: u32,
    target_cursor: usize,
    mem_cursor: usize,
}

impl<'a> BatchReplay<'a> {
    /// Decodes the next batch of records into `chunk`, returning how many
    /// were decoded (0 once the stream is drained). The chunk is fully
    /// overwritten up to the returned length; earlier contents past it are
    /// stale.
    pub fn fill(&mut self, chunk: &mut ReplayChunk) -> usize {
        let metas = self.meta;
        let mut slot = 0usize;
        let mut pc = self.pc;
        while slot < CHUNK_LEN && self.idx < self.len {
            // One bitset word covers 64 records; clamp the span to the
            // stream end and the space left in the chunk, then scan the
            // word instead of probing bit-by-bit.
            let word = (self.idx / 64) as usize;
            let off = (self.idx % 64) as u32;
            let span = (64 - u64::from(off)).min(self.len - self.idx).min((CHUNK_LEN - slot) as u64)
                as u32;
            let rword = self.redirect_bits[word] >> off;
            let tword = self.taken_bits[word] >> off;
            let mut i = 0u32;
            while i < span {
                // trailing_zeros finds the entire run of fall-through
                // records at once; within it pc just increments.
                let run = (rword >> i).trailing_zeros().min(span - i);
                for j in i..i + run {
                    chunk.pcs[slot] = pc;
                    chunk.taken[slot] = (tword >> j) & 1 != 0;
                    chunk.mem_sizes[slot] = if metas[pc as usize].has_mem {
                        chunk.mem_addrs[slot] = self.mem_addrs[self.mem_cursor];
                        let sz = self.mem_sizes[self.mem_cursor];
                        self.mem_cursor += 1;
                        sz
                    } else {
                        0
                    };
                    pc = pc.wrapping_add(1);
                    chunk.next_pcs[slot] = pc;
                    slot += 1;
                }
                i += run;
                if i < span {
                    // Redirected record: the only place a varint is decoded.
                    chunk.pcs[slot] = pc;
                    chunk.taken[slot] = (tword >> i) & 1 != 0;
                    chunk.mem_sizes[slot] = if metas[pc as usize].has_mem {
                        chunk.mem_addrs[slot] = self.mem_addrs[self.mem_cursor];
                        let sz = self.mem_sizes[self.mem_cursor];
                        self.mem_cursor += 1;
                        sz
                    } else {
                        0
                    };
                    let delta = decode_zigzag(self.targets, &mut self.target_cursor);
                    pc = i64::from(pc).wrapping_add(delta) as u32;
                    chunk.next_pcs[slot] = pc;
                    slot += 1;
                    i += 1;
                }
            }
            self.idx += u64::from(span);
        }
        self.pc = pc;
        chunk.len = slot;
        slot
    }

    /// Total records in the stream.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when the stream holds no records at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Records not yet decoded into a chunk.
    pub fn remaining(&self) -> u64 {
        self.len - self.idx
    }

    /// The fault recorded at capture time, if any — surfaced after the
    /// last chunk drains, mirroring [`PackedReplay::fault`].
    pub fn fault(&self) -> Option<&SimError> {
        self.fault
    }

    /// The interned per-pc metadata this decoder resolves against.
    #[inline]
    pub fn meta(&self) -> &'a [InstrMeta] {
        self.meta
    }
}

/// Appends `v` as a zigzag-mapped LEB128 varint.
fn encode_zigzag(v: i64, out: &mut Vec<u8>) {
    let mut zz = ((v << 1) ^ (v >> 63)) as u64;
    loop {
        let byte = (zz & 0x7f) as u8;
        zz >>= 7;
        if zz == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one zigzag-mapped LEB128 varint starting at `*cursor`, advancing
/// the cursor past it.
#[inline]
fn decode_zigzag(bytes: &[u8], cursor: &mut usize) -> i64 {
    let mut zz = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = bytes[*cursor];
        *cursor += 1;
        zz |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            break;
        }
        shift += 7;
    }
    ((zz >> 1) as i64) ^ -((zz & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfclone_isa::{MemWidth, ProgramBuilder, Reg, StreamDesc};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    /// A kernel-shaped program: loop with a conditional back-edge, loads,
    /// stores, a call/return pair, and a halt.
    fn busy_program() -> perfclone_isa::Program {
        let mut b = ProgramBuilder::new("busy");
        let table = b.data_u64(&[1, 2, 3, 4]);
        let id = b.stream(StreamDesc { base: 0x4000, stride: 16, length: 8 });
        let (i, n, acc, ptr, ra) = (r(1), r(2), r(3), r(4), r(31));
        b.li(i, 0);
        b.li(n, 25);
        b.li(ptr, table as i64);
        let func = b.label();
        let top = b.label();
        let done = b.label();
        b.j(top);
        b.bind(func);
        b.ld(acc, ptr, 8);
        b.jr(ra);
        b.bind(top);
        b.ld_stream(acc, id, MemWidth::B8);
        b.sb(acc, ptr, 16);
        b.jal(ra, func);
        b.addi(i, i, 1);
        b.blt(i, n, top);
        b.bind(done);
        b.halt();
        b.build()
    }

    fn assert_replay_equals_trace(p: &perfclone_isa::Program, limit: u64) {
        let direct: Vec<DynInstr> = Simulator::trace(p, limit).collect();
        let packed = PackedTrace::capture(p, limit);
        let replayed: Vec<DynInstr> = packed.replay(p).collect();
        assert_eq!(direct, replayed);
        let mut direct_trace = Simulator::trace(p, limit);
        let n = direct_trace.by_ref().count();
        assert_eq!(packed.len(), n as u64);
        assert_eq!(packed.fault(), direct_trace.fault());
    }

    #[test]
    fn replay_reproduces_the_interpreter_stream() {
        let p = busy_program();
        for limit in [0, 1, 7, 64, 65, 1_000, u64::MAX] {
            assert_replay_equals_trace(&p, limit);
        }
    }

    #[test]
    fn faulting_program_carries_its_fault_through() {
        let mut b = ProgramBuilder::new("fall");
        b.nop(); // no halt: falls off the end
        let p = b.build();
        let packed = PackedTrace::capture(&p, 100);
        assert_eq!(packed.len(), 1);
        assert!(!packed.halted());
        assert!(matches!(packed.fault(), Some(SimError::PcOutOfRange { pc: 1, .. })));
        assert_replay_equals_trace(&p, 100);
    }

    #[test]
    fn halted_flag_distinguishes_clean_stop_from_limit() {
        let p = busy_program();
        assert!(PackedTrace::capture(&p, u64::MAX).halted());
        let truncated = PackedTrace::capture(&p, 5);
        assert!(!truncated.halted());
        assert!(truncated.fault().is_none());
        assert_eq!(truncated.len(), 5);
    }

    #[test]
    fn taken_branch_to_fallthrough_is_preserved() {
        // A taken conditional branch whose target *is* pc + 1: taken must
        // round-trip independently of the redirect bit.
        let mut b = ProgramBuilder::new("tft");
        let (x,) = (r(1),);
        b.li(x, 1);
        let next = b.label();
        b.bgt(x, r(0), next); // taken, target == pc + 1
        b.bind(next);
        b.halt();
        let p = b.build();
        let direct: Vec<DynInstr> = Simulator::trace(&p, 100).collect();
        assert!(direct.iter().any(|d| d.taken && !d.redirected()));
        assert_replay_equals_trace(&p, 100);
    }

    #[test]
    fn recorder_is_an_observer() {
        let p = busy_program();
        let mut rec = PackedRecorder::new();
        let mut sim = Simulator::new(&p);
        let out = sim.run_with(u64::MAX, &mut rec).unwrap();
        let packed = rec.finish(&p, out.halted, None);
        let direct: Vec<DynInstr> = Simulator::trace(&p, u64::MAX).collect();
        let replayed: Vec<DynInstr> = packed.replay(&p).collect();
        assert_eq!(direct, replayed);
        assert!(packed.halted());
    }

    #[test]
    fn cap_aborts_instead_of_truncating() {
        let p = busy_program();
        let full = PackedTrace::capture(&p, u64::MAX);
        assert!(PackedTrace::capture_capped(&p, u64::MAX, full.packed_bytes()).is_some());
        assert_eq!(PackedTrace::capture_capped(&p, u64::MAX, 64), None);
        let generous = PackedTrace::capture_capped(&p, u64::MAX, usize::MAX);
        assert_eq!(generous.as_ref(), Some(&full));
    }

    #[test]
    fn packing_is_compact() {
        let p = busy_program();
        let packed = PackedTrace::capture(&p, u64::MAX);
        let materialized = packed.len() as usize * std::mem::size_of::<DynInstr>();
        assert!(
            packed.packed_bytes() * 4 < materialized,
            "packed {} B vs materialized {} B over {} instrs",
            packed.packed_bytes(),
            materialized,
            packed.len()
        );
    }

    #[test]
    fn zigzag_round_trips() {
        let mut buf = Vec::new();
        let values = [0i64, 1, -1, 2, -2, 63, -64, 8_191, -8_192, i64::from(u32::MAX), -(1 << 31)];
        for v in values {
            encode_zigzag(v, &mut buf);
        }
        let mut cursor = 0;
        for v in values {
            assert_eq!(decode_zigzag(&buf, &mut cursor), v);
        }
        assert_eq!(cursor, buf.len());
    }

    #[test]
    #[should_panic(expected = "replayed against")]
    fn replay_against_wrong_program_panics() {
        let p = busy_program();
        let packed = PackedTrace::capture(&p, 100);
        let mut b = ProgramBuilder::new("other");
        b.halt();
        let other = b.build();
        let _ = packed.replay(&other).count();
    }

    /// Drains `packed` through the batched decoder, reassembling
    /// [`DynInstr`]s, and checks the stream (and fault) against the
    /// record-at-a-time oracle — both plain and interned.
    fn assert_batched_equals_oracle(p: &perfclone_isa::Program, limit: u64) {
        let packed = PackedTrace::capture(p, limit);
        let meta = InstrMetaTable::new(p);
        let oracle: Vec<DynInstr> = packed.replay(p).collect();
        let interned: Vec<DynInstr> = packed.replay_interned(p, &meta).collect();
        assert_eq!(oracle, interned, "interned oracle diverged at limit {limit}");
        let mut batched = packed.replay_batched(p, &meta);
        let mut chunk = ReplayChunk::new();
        let mut out = Vec::new();
        while batched.fill(&mut chunk) > 0 {
            out.extend(chunk.records(p.instrs()));
        }
        assert_eq!(oracle, out, "batched decode diverged at limit {limit}");
        assert_eq!(batched.remaining(), 0);
        assert_eq!(batched.fault(), packed.fault());
        assert_eq!(batched.fill(&mut chunk), 0, "drained decoder must stay drained");
    }

    #[test]
    fn batched_decode_matches_oracle_across_limits() {
        let p = busy_program();
        // Limits straddle bitset-word (64) and chunk (256) boundaries.
        for limit in [0, 1, 7, 63, 64, 65, 255, 256, 257, 511, 512, 1_000, u64::MAX] {
            assert_batched_equals_oracle(&p, limit);
        }
    }

    #[test]
    fn batched_decode_carries_fault_across_chunk_boundary() {
        // A program that falls off its own end after exactly CHUNK_LEN
        // retired records: the fault lands precisely on a chunk boundary.
        let mut b = ProgramBuilder::new("edge");
        for _ in 0..CHUNK_LEN {
            b.nop();
        }
        let p = b.build();
        let packed = PackedTrace::capture(&p, u64::MAX);
        assert_eq!(packed.len(), CHUNK_LEN as u64);
        assert!(packed.fault().is_some());
        assert_batched_equals_oracle(&p, u64::MAX);
    }

    #[test]
    #[should_panic(expected = "replayed against")]
    fn batched_replay_against_wrong_program_panics() {
        let p = busy_program();
        let packed = PackedTrace::capture(&p, 100);
        let mut b = ProgramBuilder::new("other");
        b.halt();
        let other = b.build();
        let meta = InstrMetaTable::new(&other);
        let _ = packed.replay_batched(&other, &meta);
    }

    #[test]
    #[should_panic(expected = "interned metadata")]
    fn batched_replay_with_mismatched_meta_panics() {
        let p = busy_program();
        let packed = PackedTrace::capture(&p, 100);
        let mut b = ProgramBuilder::new("other");
        b.halt();
        let other = b.build();
        let wrong_meta = InstrMetaTable::new(&other);
        let _ = packed.replay_batched(&p, &wrong_meta);
    }

    #[test]
    fn empty_capture_is_well_formed() {
        let p = busy_program();
        let packed = PackedTrace::capture(&p, 0);
        assert!(packed.is_empty());
        assert!(!packed.halted());
        assert!(packed.fault().is_none());
        assert_eq!(packed.replay(&p).count(), 0);
    }
}
