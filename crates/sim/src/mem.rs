//! Sparse, paged, little-endian byte-addressable memory.

use rustc_hash::FxHashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// A sparse 64-bit byte-addressable memory.
///
/// Pages are allocated on first write; reads of untouched memory return
/// zero. All multi-byte accesses are little-endian and may straddle page
/// boundaries. The page table sits on the simulator's innermost loop and
/// is keyed by page numbers the simulator computes itself, so it uses the
/// deterministic fast [`FxHashMap`] rather than `std`'s SipHash map.
///
/// # Example
///
/// ```
/// use perfclone_sim::Memory;
/// let mut m = Memory::new();
/// m.write_u64(0xfff_0000, 0xdead_beef);
/// assert_eq!(m.read_u64(0xfff_0000), 0xdead_beef);
/// assert_eq!(m.read_u8(0x42), 0); // untouched reads as zero
/// ```
#[derive(Clone, Debug, Default)]
pub struct Memory {
    pages: FxHashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Number of 4 KiB pages currently allocated.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte, allocating the page if needed.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page =
            self.pages.entry(addr >> PAGE_SHIFT).or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads `N` little-endian bytes starting at `addr`.
    pub fn read_bytes<const N: usize>(&self, addr: u64) -> [u8; N] {
        let mut out = [0u8; N];
        // Fast path: access within one page.
        let off = (addr & PAGE_MASK) as usize;
        if off + N <= PAGE_SIZE {
            if let Some(page) = self.pages.get(&(addr >> PAGE_SHIFT)) {
                out.copy_from_slice(&page[off..off + N]);
            }
            return out;
        }
        for (i, b) in out.iter_mut().enumerate() {
            *b = self.read_u8(addr.wrapping_add(i as u64));
        }
        out
    }

    /// Writes `N` little-endian bytes starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let off = (addr & PAGE_MASK) as usize;
        if off + bytes.len() <= PAGE_SIZE {
            let page =
                self.pages.entry(addr >> PAGE_SHIFT).or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            page[off..off + bytes.len()].copy_from_slice(bytes);
            return;
        }
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), *b);
        }
    }

    /// Reads a little-endian `u32`.
    #[inline]
    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.read_bytes::<4>(addr))
    }

    /// Writes a little-endian `u32`.
    #[inline]
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian `u64`.
    #[inline]
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read_bytes::<8>(addr))
    }

    /// Writes a little-endian `u64`.
    #[inline]
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads an IEEE-754 double.
    #[inline]
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an IEEE-754 double.
    #[inline]
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_initialized() {
        let m = Memory::new();
        assert_eq!(m.read_u64(0), 0);
        assert_eq!(m.read_u8(u64::MAX), 0);
        assert_eq!(m.page_count(), 0);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = (1 << PAGE_SHIFT) - 3; // straddles first/second page
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn float_round_trip() {
        let mut m = Memory::new();
        m.write_f64(64, -1234.5e-6);
        assert_eq!(m.read_f64(64), -1234.5e-6);
    }

    #[test]
    fn overlapping_writes_are_little_endian() {
        let mut m = Memory::new();
        m.write_u32(0, 0xaabbccdd);
        assert_eq!(m.read_u8(0), 0xdd);
        assert_eq!(m.read_u8(3), 0xaa);
    }

    proptest! {
        #[test]
        fn u64_round_trip(addr in 0u64..(1 << 40), value: u64) {
            let mut m = Memory::new();
            m.write_u64(addr, value);
            prop_assert_eq!(m.read_u64(addr), value);
        }

        #[test]
        fn byte_writes_compose(addr in 0u64..(1 << 30), bytes in proptest::collection::vec(any::<u8>(), 1..64)) {
            let mut m = Memory::new();
            m.write_bytes(addr, &bytes);
            for (i, b) in bytes.iter().enumerate() {
                prop_assert_eq!(m.read_u8(addr + i as u64), *b);
            }
        }

        #[test]
        fn disjoint_writes_do_not_interfere(a in 0u64..1_000_000, b in 0u64..1_000_000, x: u64, y: u64) {
            prop_assume!(a.abs_diff(b) >= 8);
            let mut m = Memory::new();
            m.write_u64(a, x);
            m.write_u64(b, y);
            prop_assert_eq!(m.read_u64(a), x);
            prop_assert_eq!(m.read_u64(b), y);
        }
    }
}
