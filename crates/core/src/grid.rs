//! Sharded, resumable, fault-tolerant design-space sweeps over a
//! [`GridAxes`] product.
//!
//! A [`GridSpec`] names a workload, an instruction limit, and the axes of
//! a design-space grid; [`run_grid`] enumerates the grid's cells in
//! shards, times each cell by replaying the workload's packed trace
//! (spilled to disk and mmapped back when over-cap), journals every
//! completed shard, and streams rows to the caller as shards finish.
//!
//! # Per-cell supervision
//!
//! [`run_grid_with`] wraps every cell execution in a supervisor governed
//! by a [`GridPolicy`]: failures classified
//! [`Transient`](crate::ErrorClass::Transient) (operating-system I/O, not
//! the cell's own physics) are retried up to `max_retries` times with
//! seeded exponential backoff — the jitter derives from
//! [`derive_cell_seed`], so a retry schedule is a pure function of
//! `(seed, workload, cell, attempt)` and reproducible across thread
//! counts. [`Permanent`](crate::ErrorClass::Permanent) failures abort the
//! sweep, or — under `keep_going` — quarantine the cell: a typed
//! `quarantine-NNNNNN.json` record lands in the journal, the shard's row
//! set legitimately omits that cell, and the sweep completes with
//! degraded coverage reported in [`GridOutcome::quarantined`]. A resumed
//! sweep honours existing quarantine records instead of re-deriving the
//! same failure; delete the records to force a retry. An optional
//! [`FaultInjector`] (or `PERFCLONE_GRID_FAULTS`, see
//! [`env_fault_injector`]) injects deterministic per-cell faults for
//! chaos testing the supervisor itself.
//!
//! # Cell-ID stability contract
//!
//! A cell's identity is `g<spec-hash>-c<index>`, where the spec hash
//! covers the workload name, scale label, instruction limit, and the
//! [canonical](GridAxes::canonical) axes encoding — and deliberately
//! *excludes* `shard_size` and `max_cells`. Re-sharding a sweep or
//! truncating it with `--cells` therefore never renames the cells both
//! runs share; only changing what a cell *measures* (workload, limit,
//! axes) changes its ID. The journal separately refuses to resume across
//! a `shard_size` or cell-count change (see
//! [`Journal::open`](crate::journal::Journal::open)), because shard
//! records are keyed by shard index.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::sync::OnceLock;
use std::time::Duration;

use perfclone_isa::{InstrMetaTable, Program};
use perfclone_sim::TraceStore;
use perfclone_uarch::{GridAxes, MachineConfig};
use perfclone_validate::derive_cell_seed;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::cache::WorkloadCache;
use crate::error::ErrorClass;
use crate::journal::{Journal, JournalError, QuarantineRecord};
use crate::{
    run_timing, run_timing_budgeted, run_timing_store_interned, run_timing_store_interned_budgeted,
    Error, TimingResult,
};

/// One design-space sweep: a workload, an instruction limit, the grid
/// axes, and the sharding geometry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GridSpec {
    /// Cache/journal key naming the workload (must be unique per
    /// program, as with every [`WorkloadCache`] entry).
    pub workload: String,
    /// Human-readable scale label (recorded in the journal spec; part of
    /// the cell-ID hash so differently-scaled sweeps never collide).
    pub scale: String,
    /// Instruction limit per timing run.
    pub limit: u64,
    /// The design-space axes.
    pub axes: GridAxes,
    /// Enumerate at most this many cells (truncates the grid; use
    /// `u64::MAX` for the full product). Not part of the cell-ID hash.
    pub max_cells: u64,
    /// Cells per shard (clamped to at least 1). Not part of the cell-ID
    /// hash, but a journal is bound to one value.
    pub shard_size: u64,
}

impl GridSpec {
    /// Number of cells this sweep enumerates: the axes product, truncated
    /// to `max_cells`.
    pub fn cells(&self) -> u64 {
        self.axes.cells().min(self.max_cells)
    }

    /// Cells per shard, clamped to at least 1.
    pub fn shard_cells(&self) -> u64 {
        self.shard_size.max(1)
    }

    /// Number of shards ([`cells`](GridSpec::cells) divided into
    /// [`shard_cells`](GridSpec::shard_cells)-sized work units).
    pub fn shard_count(&self) -> u64 {
        self.cells().div_ceil(self.shard_cells())
    }

    /// The half-open cell range `[start, end)` of shard `shard`, or
    /// `None` when the shard index is out of range.
    pub fn shard_range(&self, shard: u64) -> Option<(u64, u64)> {
        if shard >= self.shard_count() {
            return None;
        }
        let start = shard * self.shard_cells();
        let end = (start + self.shard_cells()).min(self.cells());
        Some((start, end))
    }

    /// FNV-1a hash of the spec's identity: workload, scale, limit, and
    /// canonical axes — *not* `shard_size` or `max_cells` (see the
    /// module docs for the stability contract).
    pub fn spec_hash(&self) -> u64 {
        fnv1a(
            format!(
                "workload={};scale={};limit={};axes={}",
                self.workload,
                self.scale,
                self.limit,
                self.axes.canonical()
            )
            .as_bytes(),
        )
    }

    /// The stable identity of cell `index` under this spec.
    pub fn cell_id(&self, index: u64) -> CellId {
        CellId { spec: self.spec_hash(), index }
    }
}

/// A cell's stable identity: grid-spec hash plus linear cell index,
/// rendered `g<hash>-c<index>`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CellId {
    /// The owning spec's [`GridSpec::spec_hash`].
    pub spec: u64,
    /// The cell's linear index in enumeration order.
    pub index: u64,
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{:016x}-c{}", self.spec, self.index)
    }
}

/// One cell's journaled metrics row (the RunReport-schema unit the `grid`
/// CLI verb streams).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellRow {
    /// Linear cell index.
    pub cell: u64,
    /// Stable cell ID (`g<spec-hash>-c<index>`).
    pub id: String,
    /// Pipeline cycles.
    pub cycles: u64,
    /// Instructions committed.
    pub instrs: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Average power (Watts, Wattch-style model).
    pub power: f64,
    /// L1-D misses per committed instruction.
    pub l1d_mpi: f64,
}

impl CellRow {
    fn of(spec: &GridSpec, cell: u64, timing: &TimingResult) -> CellRow {
        CellRow {
            cell,
            id: spec.cell_id(cell).to_string(),
            cycles: timing.report.cycles,
            instrs: timing.report.instrs,
            ipc: timing.report.ipc(),
            power: timing.power.average_power,
            l1d_mpi: timing.report.l1d_mpi(),
        }
    }
}

/// One point on the IPC-vs-power Pareto frontier.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// The cell's linear index.
    pub cell: u64,
    /// The cell's stable ID.
    pub id: String,
    /// The cell's IPC (maximized).
    pub ipc: f64,
    /// The cell's average power (minimized).
    pub power: f64,
}

/// The IPC-vs-power Pareto frontier of `rows`: every cell no other cell
/// dominates (higher-or-equal IPC *and* lower-or-equal power, with at
/// least one strict). Deterministic for a given row set regardless of
/// input order — ties collapse to the lowest cell index — and returned
/// sorted by cell index. Non-finite rows are excluded.
pub fn pareto_frontier(rows: &[CellRow]) -> Vec<ParetoPoint> {
    let mut pts: Vec<&CellRow> =
        rows.iter().filter(|r| r.ipc.is_finite() && r.power.is_finite()).collect();
    pts.sort_by(|a, b| {
        b.ipc.total_cmp(&a.ipc).then(a.power.total_cmp(&b.power)).then(a.cell.cmp(&b.cell))
    });
    let mut frontier = Vec::new();
    let mut best_power = f64::INFINITY;
    for r in pts {
        if r.power < best_power {
            frontier.push(ParetoPoint {
                cell: r.cell,
                id: r.id.clone(),
                ipc: r.ipc,
                power: r.power,
            });
            best_power = r.power;
        }
    }
    frontier.sort_by_key(|p| p.cell);
    frontier
}

/// One shard's completion, streamed to [`run_grid`]'s callback.
#[derive(Clone, Copy, Debug)]
pub struct ShardEvent<'a> {
    /// The shard index.
    pub shard: u64,
    /// First cell of the shard.
    pub start: u64,
    /// One past the last cell of the shard.
    pub end: u64,
    /// `true` when the shard's rows came from the journal (a resumed
    /// sweep skipping completed work) rather than fresh execution.
    pub resumed: bool,
    /// The shard's metric rows, in cell order (cells quarantined under
    /// `keep_going` are omitted here and listed in
    /// [`quarantined`](ShardEvent::quarantined)).
    pub rows: &'a [CellRow],
    /// Cells of this shard quarantined under `keep_going`, in cell order.
    pub quarantined: &'a [QuarantineRecord],
}

/// A completed sweep's merged results.
#[derive(Clone, Debug)]
pub struct GridOutcome {
    /// Every non-quarantined cell's row, in cell order (journaled and
    /// fresh merged).
    pub rows: Vec<CellRow>,
    /// Cells enumerated ([`GridSpec::cells`]).
    pub cells: u64,
    /// Shards executed by this run.
    pub executed_shards: u64,
    /// Shards skipped because the journal already held them.
    pub skipped_shards: u64,
    /// `true` when the workload's packed trace lives on disk (spilled
    /// over `PERFCLONE_TRACE_CAP` and replayed via mmap).
    pub spilled_trace: bool,
    /// The IPC-vs-power Pareto frontier of [`rows`](GridOutcome::rows).
    pub pareto: Vec<ParetoPoint>,
    /// Cells quarantined under `keep_going` (this run's and prior runs'
    /// merged), in cell order. Empty on a fully healthy sweep.
    pub quarantined: Vec<QuarantineRecord>,
    /// Transient-failure retries the supervisor performed this run.
    pub retries: u64,
    /// Journal records demoted to pending (truncated/corrupt) and
    /// re-executed by this run.
    pub recovered_shards: u64,
}

impl GridOutcome {
    /// `true` when every enumerated cell has a row (nothing quarantined).
    pub fn full_coverage(&self) -> bool {
        self.quarantined.is_empty()
    }
}

/// Supervision policy for per-cell execution: retry budget, backoff
/// shape, per-cell deadline, and whether permanent failures quarantine
/// (`keep_going`) or abort.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GridPolicy {
    /// Transient-failure retries per cell (0 = fail fast).
    pub max_retries: u32,
    /// Backoff base in milliseconds; attempt `n` sleeps
    /// `min(cap, base·2ⁿ + jitter)` where `jitter < base`. 0 disables
    /// sleeping entirely (tests).
    pub backoff_base_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub backoff_cap_ms: u64,
    /// Per-cell pipeline cycle budget: a cell that exceeds it fails with
    /// [`Error::BudgetExhausted`] (permanent). `None` = unbounded.
    pub cell_deadline: Option<u64>,
    /// `true`: quarantine permanently-failing cells and complete the
    /// sweep with degraded coverage. `false` (default): abort on the
    /// first permanent failure.
    pub keep_going: bool,
    /// Root seed for backoff jitter (derive with the sweep's seed so
    /// retry schedules are reproducible).
    pub seed: u64,
}

impl Default for GridPolicy {
    fn default() -> GridPolicy {
        GridPolicy {
            max_retries: 2,
            backoff_base_ms: 25,
            backoff_cap_ms: 1_000,
            cell_deadline: None,
            keep_going: false,
            seed: 0,
        }
    }
}

impl GridPolicy {
    /// The backoff before retry `attempt` of `cell`: exponential in the
    /// attempt, capped at `backoff_cap_ms`, with deterministic jitter
    /// derived via [`derive_cell_seed`] from `(seed, workload, cell,
    /// attempt)` — a pure function, so retry schedules are bit-identical
    /// across thread counts and resumed runs.
    pub fn backoff(&self, workload: &str, cell: u64, attempt: u32) -> Duration {
        if self.backoff_base_ms == 0 {
            return Duration::ZERO;
        }
        let exp =
            self.backoff_base_ms.saturating_mul(1u64 << attempt.min(16)).min(self.backoff_cap_ms);
        let cell_seed = derive_cell_seed(self.seed, workload, cell);
        let jitter =
            derive_cell_seed(cell_seed, "retry-backoff", u64::from(attempt)) % self.backoff_base_ms;
        Duration::from_millis(exp.saturating_add(jitter).min(self.backoff_cap_ms))
    }
}

/// A deterministic per-cell fault source for chaos testing: called before
/// every execution attempt with `(cell, attempt)`; returning `Some(err)`
/// makes that attempt fail with `err` instead of running the cell.
pub type FaultInjector = dyn Fn(u64, u32) -> Option<Error> + Sync;

/// Parses a fault schedule into a [`FaultInjector`]. The spec is
/// comma-separated `CELL=KIND` entries where `KIND` is `perm` (every
/// attempt fails permanently) or `trans[:K]` (attempts `0..K` fail
/// transiently, then the cell succeeds; bare `trans` means `K = 1`).
/// Malformed entries are ignored; returns `None` when nothing parses.
///
/// Example: `"5=perm,9=trans:2"` — cell 5 always fails, cell 9 fails its
/// first two attempts.
pub fn parse_fault_injector(spec: &str) -> Option<Box<FaultInjector>> {
    let mut plan: BTreeMap<u64, (bool, u32)> = BTreeMap::new();
    for entry in spec.split(',') {
        let Some((cell, kind)) = entry.trim().split_once('=') else { continue };
        let Ok(cell) = cell.trim().parse::<u64>() else { continue };
        match kind.trim() {
            "perm" => {
                plan.insert(cell, (false, u32::MAX));
            }
            "trans" => {
                plan.insert(cell, (true, 1));
            }
            k => {
                if let Some(n) = k.strip_prefix("trans:").and_then(|n| n.parse::<u32>().ok()) {
                    plan.insert(cell, (true, n.max(1)));
                }
            }
        }
    }
    if plan.is_empty() {
        return None;
    }
    Some(Box::new(move |cell, attempt| {
        let &(transient, failing) = plan.get(&cell)?;
        (attempt < failing).then_some(Error::Injected { cell, attempt, transient })
    }))
}

/// [`parse_fault_injector`] over the `PERFCLONE_GRID_FAULTS` environment
/// variable — the chaos harness's hook for injecting cell faults into an
/// otherwise ordinary `perfclone grid` invocation.
pub fn env_fault_injector() -> Option<Box<FaultInjector>> {
    parse_fault_injector(&std::env::var("PERFCLONE_GRID_FAULTS").ok()?)
}

/// Per-shard artificial delay (`PERFCLONE_GRID_SHARD_DELAY_MS`), parsed
/// once. Exists for the crash/kill harness: stretching shard execution
/// makes "killed mid-sweep" reproducible.
fn shard_delay() -> Option<Duration> {
    static DELAY: OnceLock<Option<Duration>> = OnceLock::new();
    *DELAY.get_or_init(|| {
        std::env::var("PERFCLONE_GRID_SHARD_DELAY_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&ms| ms > 0)
            .map(Duration::from_millis)
    })
}

/// Times one cell, honouring the policy's per-cell deadline. The trace
/// path replays batched through the sweep-wide interned `meta` table, so
/// every cell skips per-record static resolution.
fn time_cell(
    program: &Program,
    trace: Option<(&TraceStore, &InstrMetaTable)>,
    config: &MachineConfig,
    limit: u64,
    deadline: Option<u64>,
) -> Result<TimingResult, Error> {
    match (trace, deadline) {
        (Some((store, meta)), Some(cycles)) => {
            run_timing_store_interned_budgeted(program, store, meta, config, cycles)
        }
        (Some((store, meta)), None) => run_timing_store_interned(program, store, meta, config),
        (None, Some(cycles)) => run_timing_budgeted(program, config, limit, cycles),
        (None, None) => run_timing(program, config, limit),
    }
}

/// Executes one cell under supervision: transient failures (see
/// [`Error::classify`]) are retried with seeded backoff up to the
/// policy's budget. Returns the timing plus the retries spent, or the
/// final error plus the attempts made (≥ 1).
fn supervise_cell(
    program: &Program,
    trace: Option<(&TraceStore, &InstrMetaTable)>,
    spec: &GridSpec,
    policy: &GridPolicy,
    injector: Option<&FaultInjector>,
    cell: u64,
    config: &MachineConfig,
) -> Result<(TimingResult, u64), (Error, u32)> {
    let mut attempt: u32 = 0;
    loop {
        let outcome = match injector.and_then(|inject| inject(cell, attempt)) {
            Some(err) => Err(err),
            None => time_cell(program, trace, config, spec.limit, policy.cell_deadline),
        };
        match outcome {
            Ok(timing) => return Ok((timing, u64::from(attempt))),
            Err(err) => {
                if err.classify() == ErrorClass::Transient && attempt < policy.max_retries {
                    perfclone_obs::count!("grid.retries", 1);
                    perfclone_obs::instant!("grid.cell.retry");
                    eprintln!(
                        "perfclone: cell {cell} failed transiently ({err}); \
                         retry {}/{}",
                        attempt + 1,
                        policy.max_retries
                    );
                    std::thread::sleep(policy.backoff(&spec.workload, cell, attempt));
                    attempt += 1;
                } else {
                    return Err((err, attempt + 1));
                }
            }
        }
    }
}

/// Runs `op` (a journal write), retrying transient I/O failures with the
/// policy's backoff (keyed on `cell` so concurrent shards don't sleep in
/// lockstep). Non-I/O journal errors propagate immediately.
fn retry_journal<T>(
    policy: &GridPolicy,
    workload: &str,
    cell: u64,
    mut op: impl FnMut() -> Result<T, JournalError>,
) -> Result<T, Error> {
    let mut attempt: u32 = 0;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e @ JournalError::Io { .. }) if attempt < policy.max_retries => {
                perfclone_obs::count!("grid.journal.retries", 1);
                eprintln!("perfclone: journal write failed transiently ({e}); retrying");
                std::thread::sleep(policy.backoff(workload, cell, attempt));
                attempt += 1;
            }
            Err(e) => return Err(Error::Journal(e)),
        }
    }
}

/// Runs (or resumes) the sharded design-space sweep `spec` describes,
/// under the default [`GridPolicy`] (fail-fast, 2 transient retries) and
/// no fault injection. See [`run_grid_with`].
///
/// # Errors
///
/// As [`run_grid_with`].
pub fn run_grid(
    program: &Program,
    spec: &GridSpec,
    journal_dir: &Path,
    cache: &WorkloadCache,
    on_shard: impl Fn(ShardEvent<'_>) + Sync,
) -> Result<GridOutcome, Error> {
    run_grid_with(program, spec, journal_dir, cache, &GridPolicy::default(), None, on_shard)
}

/// Runs (or resumes) the sharded design-space sweep `spec` describes,
/// with per-cell supervision.
///
/// The workload's packed dynamic trace is captured once through `cache`
/// — spilling to disk and replaying via mmap when it outgrows
/// `PERFCLONE_TRACE_CAP` — and every cell replays it under that cell's
/// decoded configuration, wrapped in the retry supervisor `policy`
/// configures (see the module docs). Shards fan over the ambient rayon
/// pool; each completed shard is journaled atomically in `journal_dir`
/// and streamed to `on_shard` as it lands (journaled shards of a resumed
/// sweep are streamed first, in shard order, with `resumed = true`). The
/// merged row set is assembled in cell order, so a resumed sweep returns
/// rows bit-identical to an uninterrupted one.
///
/// `injector`, when given, is consulted before every execution attempt
/// and can fail cells deterministically — the chaos harness's hook.
///
/// # Errors
///
/// [`Error::EmptyGrid`] when the spec enumerates no cells,
/// [`Error::Journal`] when the journal cannot be opened (including
/// [`JournalError::SpecMismatch`](crate::journal::JournalError) — the
/// directory belongs to a different sweep) or appended to,
/// [`Error::DegradedJournal`] when the journal quarantines cells but
/// `policy.keep_going` is off, plus everything the timing path returns
/// ([`Error::Sim`] for faulting cells, [`Error::BudgetExhausted`] for
/// cells over the deadline) unless `keep_going` quarantines it.
/// Trace-capture fallbacks ([`Error::is_trace_fallback`]) are handled
/// internally by re-interpreting per cell.
pub fn run_grid_with(
    program: &Program,
    spec: &GridSpec,
    journal_dir: &Path,
    cache: &WorkloadCache,
    policy: &GridPolicy,
    injector: Option<&FaultInjector>,
    on_shard: impl Fn(ShardEvent<'_>) + Sync,
) -> Result<GridOutcome, Error> {
    let _span = perfclone_obs::span!("grid.sweep");
    if spec.cells() == 0 {
        return Err(Error::EmptyGrid { workload: spec.workload.clone() });
    }
    perfclone_obs::gauge!("grid.cells", spec.cells());

    // One capture for the whole sweep; a fallback (cap hit with spill
    // disabled, or spill failure) re-interprets per cell instead.
    let trace = match cache.packed_trace(&spec.workload, program, spec.limit) {
        Ok(store) => Some(store),
        Err(e) if e.is_trace_fallback() => None,
        Err(e) => return Err(e),
    };
    let spilled_trace = trace.as_deref().is_some_and(|t| t.is_spilled());
    // One interned static-resolution table for the whole sweep: every
    // cell's batched replay indexes it instead of re-resolving per record.
    let meta = cache.instr_meta(&spec.workload, program);

    let (journal, load) = Journal::open(journal_dir, spec)?;
    if !policy.keep_going && !load.quarantined.is_empty() {
        return Err(Error::DegradedJournal {
            workload: spec.workload.clone(),
            quarantined: load.quarantined.len() as u64,
        });
    }
    let recovered_shards = load.recovered;
    let done = load.shards;
    let prior_quarantined = load.quarantined;
    let skipped_shards = done.len() as u64;
    for (&shard, rows) in &done {
        // Journal::open validated the range; a missing range here would
        // mean the spec changed underneath us mid-call.
        let Some((start, end)) = spec.shard_range(shard) else { continue };
        perfclone_obs::count!("grid.shards.skipped", 1);
        // Resumed cells count as done so live progress/ETA covers them.
        perfclone_obs::count!("grid.cells.done", rows.len() as u64);
        let quars: Vec<QuarantineRecord> =
            prior_quarantined.range(start..end).map(|(_, rec)| rec.clone()).collect();
        on_shard(ShardEvent { shard, start, end, resumed: true, rows, quarantined: &quars });
    }

    let pending: Vec<u64> = (0..spec.shard_count()).filter(|s| !done.contains_key(s)).collect();
    let executed_shards = pending.len() as u64;
    // Rayon workers start span-free; carry the sweep span's id across the
    // pool so per-shard spans (and their trace events) nest under it.
    let sweep_span = perfclone_obs::current();
    type ShardDone = (u64, Vec<CellRow>, Vec<QuarantineRecord>, u64);
    let fresh: Vec<Result<ShardDone, Error>> = pending
        .par_iter()
        .map(|&shard| {
            let _shard_span = perfclone_obs::Span::child_of(sweep_span, "grid.shard");
            // In range by construction: shard < shard_count().
            let (start, end) = spec
                .shard_range(shard)
                .ok_or_else(|| Error::EmptyGrid { workload: spec.workload.clone() })?;
            if let Some(delay) = shard_delay() {
                std::thread::sleep(delay);
            }
            let mut rows = Vec::with_capacity((end - start) as usize);
            let mut quars: Vec<QuarantineRecord> = Vec::new();
            let mut retries: u64 = 0;
            for cell in start..end {
                if let Some(prior) = prior_quarantined.get(&cell) {
                    // Quarantined by an earlier run: honour the record
                    // instead of re-deriving the same failure (delete the
                    // quarantine-*.json file to force a retry).
                    quars.push(prior.clone());
                    perfclone_obs::count!("grid.cells.done", 1);
                    continue;
                }
                // In range by construction: cell < cells() ≤ axes.cells().
                let config = spec
                    .axes
                    .config(cell)
                    .ok_or_else(|| Error::EmptyGrid { workload: spec.workload.clone() })?;
                perfclone_obs::instant!("grid.cell.start");
                match supervise_cell(
                    program,
                    trace.as_deref().map(|t| (t, &*meta)),
                    spec,
                    policy,
                    injector,
                    cell,
                    &config,
                ) {
                    Ok((timing, cell_retries)) => {
                        retries += cell_retries;
                        rows.push(CellRow::of(spec, cell, &timing));
                        perfclone_obs::instant!("grid.cell.finish");
                        perfclone_obs::count!("grid.cells.done", 1);
                    }
                    Err((err, attempts)) => {
                        retries += u64::from(attempts.saturating_sub(1));
                        if !policy.keep_going {
                            return Err(err);
                        }
                        let rec = QuarantineRecord {
                            cell,
                            id: spec.cell_id(cell).to_string(),
                            kind: err.kind().to_string(),
                            reason: err.to_string(),
                            attempts,
                        };
                        retry_journal(policy, &spec.workload, cell, || {
                            journal.record_quarantine(&rec)
                        })?;
                        perfclone_obs::count!("grid.quarantined", 1);
                        // Quarantined cells are processed work: count them
                        // done so live progress/ETA still converges.
                        perfclone_obs::count!("grid.cells.done", 1);
                        perfclone_obs::instant!("grid.cell.quarantine");
                        eprintln!(
                            "perfclone: cell {cell} ({}) failed permanently ({err}); \
                             quarantined after {attempts} attempt(s)",
                            rec.id
                        );
                        quars.push(rec);
                    }
                }
            }
            retry_journal(policy, &spec.workload, start, || {
                journal.record_shard(shard, start, end, &rows)
            })?;
            perfclone_obs::count!("grid.shards.executed", 1);
            on_shard(ShardEvent {
                shard,
                start,
                end,
                resumed: false,
                rows: &rows,
                quarantined: &quars,
            });
            Ok((shard, rows, quars, retries))
        })
        .collect();

    let mut merged = done;
    let mut quarantined = prior_quarantined;
    let mut retries: u64 = 0;
    for result in fresh {
        let (shard, rows, quars, shard_retries) = result?;
        merged.insert(shard, rows);
        for rec in quars {
            quarantined.insert(rec.cell, rec);
        }
        retries += shard_retries;
    }
    let mut rows = Vec::with_capacity(spec.cells() as usize);
    for shard_rows in merged.into_values() {
        rows.extend(shard_rows);
    }
    let pareto = pareto_frontier(&rows);
    Ok(GridOutcome {
        rows,
        cells: spec.cells(),
        executed_shards,
        skipped_shards,
        spilled_trace,
        pareto,
        quarantined: quarantined.into_values().collect(),
        retries,
        recovered_shards,
    })
}

/// FNV-1a over `bytes` (the same construction the spill codec and seed
/// derivation use; duplicated because it is four lines and keeping the
/// grid hash self-contained makes the stability contract auditable).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> GridSpec {
        GridSpec {
            workload: "crc32".into(),
            scale: "tiny".into(),
            limit: 100_000,
            axes: GridAxes::small(),
            max_cells: u64::MAX,
            shard_size: 5,
        }
    }

    #[test]
    fn shards_tile_the_grid_exactly() {
        let s = spec();
        assert_eq!(s.cells(), 32);
        assert_eq!(s.shard_count(), 7);
        let mut next = 0;
        for shard in 0..s.shard_count() {
            let (start, end) = s.shard_range(shard).unwrap();
            assert_eq!(start, next, "shard {shard} must start where the last ended");
            assert!(end > start);
            next = end;
        }
        assert_eq!(next, s.cells());
        assert_eq!(s.shard_range(s.shard_count()), None);
    }

    #[test]
    fn spec_hash_ignores_sharding_but_not_identity() {
        let a = spec();
        let resharded = GridSpec { shard_size: 11, max_cells: 10, ..a.clone() };
        assert_eq!(a.spec_hash(), resharded.spec_hash());
        assert_ne!(a.spec_hash(), GridSpec { limit: 1, ..a.clone() }.spec_hash());
        assert_ne!(a.spec_hash(), GridSpec { workload: "x".into(), ..a.clone() }.spec_hash());
        assert_ne!(a.spec_hash(), GridSpec { axes: GridAxes::dense(), ..a.clone() }.spec_hash());
    }

    #[test]
    fn cell_ids_render_hash_and_index() {
        let s = spec();
        let id = s.cell_id(7);
        assert_eq!(id.to_string(), format!("g{:016x}-c7", s.spec_hash()));
    }

    #[test]
    fn pareto_keeps_only_undominated_cells() {
        let row = |cell, ipc, power| CellRow {
            cell,
            id: format!("c{cell}"),
            cycles: 1,
            instrs: 1,
            ipc,
            power,
            l1d_mpi: 0.0,
        };
        let rows = vec![
            row(0, 1.0, 5.0),      // frontier: cheapest
            row(1, 2.0, 7.0),      // frontier
            row(2, 1.5, 8.0),      // dominated by 1 (less IPC, more power)
            row(3, 2.0, 9.0),      // dominated by 1 (same IPC, more power)
            row(4, 3.0, 12.0),     // frontier: fastest
            row(5, f64::NAN, 1.0), // non-finite: excluded
        ];
        let frontier = pareto_frontier(&rows);
        let cells: Vec<u64> = frontier.iter().map(|p| p.cell).collect();
        assert_eq!(cells, vec![0, 1, 4]);
        let mut shuffled = rows.clone();
        shuffled.reverse();
        assert_eq!(pareto_frontier(&shuffled), frontier, "input order must not matter");
    }

    #[test]
    fn backoff_is_deterministic_capped_and_seeded() {
        let p = GridPolicy { seed: 7, ..Default::default() };
        assert_eq!(p.backoff("crc32", 3, 1), p.backoff("crc32", 3, 1));
        // Jitter varies with the cell (collisions are possible modulo the
        // base, but not across 20 consecutive cells).
        let base = p.backoff("crc32", 3, 1);
        assert!(
            (0..20).any(|cell| p.backoff("crc32", cell, 1) != base),
            "jitter must depend on the cell"
        );
        let cap = Duration::from_millis(p.backoff_cap_ms);
        for attempt in 0..40 {
            assert!(p.backoff("crc32", 3, attempt) <= cap);
        }
        let zero = GridPolicy { backoff_base_ms: 0, ..Default::default() };
        assert_eq!(zero.backoff("crc32", 0, 0), Duration::ZERO);
    }

    #[test]
    fn fault_injector_spec_parses_perm_and_transient() {
        let inject = parse_fault_injector("5=perm, 9=trans:2, 11=trans").unwrap();
        assert!(matches!(inject(5, 0), Some(Error::Injected { transient: false, .. })));
        assert!(matches!(inject(5, 9), Some(Error::Injected { transient: false, .. })));
        assert!(matches!(inject(9, 0), Some(Error::Injected { transient: true, .. })));
        assert!(matches!(inject(9, 1), Some(Error::Injected { transient: true, .. })));
        assert!(inject(9, 2).is_none(), "trans:2 succeeds on the third attempt");
        assert!(inject(11, 0).is_some() && inject(11, 1).is_none(), "bare trans = trans:1");
        assert!(inject(4, 0).is_none(), "unlisted cells are healthy");
        assert!(parse_fault_injector("").is_none());
        assert!(parse_fault_injector("bogus, 3=nope").is_none());
    }
}
