//! Sharded, resumable design-space sweeps over a [`GridAxes`] product.
//!
//! A [`GridSpec`] names a workload, an instruction limit, and the axes of
//! a design-space grid; [`run_grid`] enumerates the grid's cells in
//! shards, times each cell by replaying the workload's packed trace
//! (spilled to disk and mmapped back when over-cap), journals every
//! completed shard, and streams rows to the caller as shards finish.
//!
//! # Cell-ID stability contract
//!
//! A cell's identity is `g<spec-hash>-c<index>`, where the spec hash
//! covers the workload name, scale label, instruction limit, and the
//! [canonical](GridAxes::canonical) axes encoding — and deliberately
//! *excludes* `shard_size` and `max_cells`. Re-sharding a sweep or
//! truncating it with `--cells` therefore never renames the cells both
//! runs share; only changing what a cell *measures* (workload, limit,
//! axes) changes its ID. The journal separately refuses to resume across
//! a `shard_size` or cell-count change (see
//! [`Journal::open`](crate::journal::Journal::open)), because shard
//! records are keyed by shard index.

use std::fmt;
use std::path::Path;
use std::sync::OnceLock;

use perfclone_isa::Program;
use perfclone_uarch::GridAxes;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::cache::WorkloadCache;
use crate::journal::Journal;
use crate::{run_timing, run_timing_store, Error, TimingResult};

/// One design-space sweep: a workload, an instruction limit, the grid
/// axes, and the sharding geometry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GridSpec {
    /// Cache/journal key naming the workload (must be unique per
    /// program, as with every [`WorkloadCache`] entry).
    pub workload: String,
    /// Human-readable scale label (recorded in the journal spec; part of
    /// the cell-ID hash so differently-scaled sweeps never collide).
    pub scale: String,
    /// Instruction limit per timing run.
    pub limit: u64,
    /// The design-space axes.
    pub axes: GridAxes,
    /// Enumerate at most this many cells (truncates the grid; use
    /// `u64::MAX` for the full product). Not part of the cell-ID hash.
    pub max_cells: u64,
    /// Cells per shard (clamped to at least 1). Not part of the cell-ID
    /// hash, but a journal is bound to one value.
    pub shard_size: u64,
}

impl GridSpec {
    /// Number of cells this sweep enumerates: the axes product, truncated
    /// to `max_cells`.
    pub fn cells(&self) -> u64 {
        self.axes.cells().min(self.max_cells)
    }

    /// Cells per shard, clamped to at least 1.
    pub fn shard_cells(&self) -> u64 {
        self.shard_size.max(1)
    }

    /// Number of shards ([`cells`](GridSpec::cells) divided into
    /// [`shard_cells`](GridSpec::shard_cells)-sized work units).
    pub fn shard_count(&self) -> u64 {
        self.cells().div_ceil(self.shard_cells())
    }

    /// The half-open cell range `[start, end)` of shard `shard`, or
    /// `None` when the shard index is out of range.
    pub fn shard_range(&self, shard: u64) -> Option<(u64, u64)> {
        if shard >= self.shard_count() {
            return None;
        }
        let start = shard * self.shard_cells();
        let end = (start + self.shard_cells()).min(self.cells());
        Some((start, end))
    }

    /// FNV-1a hash of the spec's identity: workload, scale, limit, and
    /// canonical axes — *not* `shard_size` or `max_cells` (see the
    /// module docs for the stability contract).
    pub fn spec_hash(&self) -> u64 {
        fnv1a(
            format!(
                "workload={};scale={};limit={};axes={}",
                self.workload,
                self.scale,
                self.limit,
                self.axes.canonical()
            )
            .as_bytes(),
        )
    }

    /// The stable identity of cell `index` under this spec.
    pub fn cell_id(&self, index: u64) -> CellId {
        CellId { spec: self.spec_hash(), index }
    }
}

/// A cell's stable identity: grid-spec hash plus linear cell index,
/// rendered `g<hash>-c<index>`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CellId {
    /// The owning spec's [`GridSpec::spec_hash`].
    pub spec: u64,
    /// The cell's linear index in enumeration order.
    pub index: u64,
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{:016x}-c{}", self.spec, self.index)
    }
}

/// One cell's journaled metrics row (the RunReport-schema unit the `grid`
/// CLI verb streams).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellRow {
    /// Linear cell index.
    pub cell: u64,
    /// Stable cell ID (`g<spec-hash>-c<index>`).
    pub id: String,
    /// Pipeline cycles.
    pub cycles: u64,
    /// Instructions committed.
    pub instrs: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Average power (Watts, Wattch-style model).
    pub power: f64,
    /// L1-D misses per committed instruction.
    pub l1d_mpi: f64,
}

impl CellRow {
    fn of(spec: &GridSpec, cell: u64, timing: &TimingResult) -> CellRow {
        CellRow {
            cell,
            id: spec.cell_id(cell).to_string(),
            cycles: timing.report.cycles,
            instrs: timing.report.instrs,
            ipc: timing.report.ipc(),
            power: timing.power.average_power,
            l1d_mpi: timing.report.l1d_mpi(),
        }
    }
}

/// One point on the IPC-vs-power Pareto frontier.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// The cell's linear index.
    pub cell: u64,
    /// The cell's stable ID.
    pub id: String,
    /// The cell's IPC (maximized).
    pub ipc: f64,
    /// The cell's average power (minimized).
    pub power: f64,
}

/// The IPC-vs-power Pareto frontier of `rows`: every cell no other cell
/// dominates (higher-or-equal IPC *and* lower-or-equal power, with at
/// least one strict). Deterministic for a given row set regardless of
/// input order — ties collapse to the lowest cell index — and returned
/// sorted by cell index. Non-finite rows are excluded.
pub fn pareto_frontier(rows: &[CellRow]) -> Vec<ParetoPoint> {
    let mut pts: Vec<&CellRow> =
        rows.iter().filter(|r| r.ipc.is_finite() && r.power.is_finite()).collect();
    pts.sort_by(|a, b| {
        b.ipc.total_cmp(&a.ipc).then(a.power.total_cmp(&b.power)).then(a.cell.cmp(&b.cell))
    });
    let mut frontier = Vec::new();
    let mut best_power = f64::INFINITY;
    for r in pts {
        if r.power < best_power {
            frontier.push(ParetoPoint {
                cell: r.cell,
                id: r.id.clone(),
                ipc: r.ipc,
                power: r.power,
            });
            best_power = r.power;
        }
    }
    frontier.sort_by_key(|p| p.cell);
    frontier
}

/// One shard's completion, streamed to [`run_grid`]'s callback.
#[derive(Clone, Copy, Debug)]
pub struct ShardEvent<'a> {
    /// The shard index.
    pub shard: u64,
    /// First cell of the shard.
    pub start: u64,
    /// One past the last cell of the shard.
    pub end: u64,
    /// `true` when the shard's rows came from the journal (a resumed
    /// sweep skipping completed work) rather than fresh execution.
    pub resumed: bool,
    /// The shard's metric rows, in cell order.
    pub rows: &'a [CellRow],
}

/// A completed sweep's merged results.
#[derive(Clone, Debug)]
pub struct GridOutcome {
    /// Every cell's row, in cell order (journaled and fresh merged).
    pub rows: Vec<CellRow>,
    /// Cells enumerated ([`GridSpec::cells`]).
    pub cells: u64,
    /// Shards executed by this run.
    pub executed_shards: u64,
    /// Shards skipped because the journal already held them.
    pub skipped_shards: u64,
    /// `true` when the workload's packed trace lives on disk (spilled
    /// over `PERFCLONE_TRACE_CAP` and replayed via mmap).
    pub spilled_trace: bool,
    /// The IPC-vs-power Pareto frontier of [`rows`](GridOutcome::rows).
    pub pareto: Vec<ParetoPoint>,
}

/// Per-shard artificial delay (`PERFCLONE_GRID_SHARD_DELAY_MS`), parsed
/// once. Exists for the crash/kill harness: stretching shard execution
/// makes "killed mid-sweep" reproducible.
fn shard_delay() -> Option<std::time::Duration> {
    static DELAY: OnceLock<Option<std::time::Duration>> = OnceLock::new();
    *DELAY.get_or_init(|| {
        std::env::var("PERFCLONE_GRID_SHARD_DELAY_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&ms| ms > 0)
            .map(std::time::Duration::from_millis)
    })
}

/// Runs (or resumes) the sharded design-space sweep `spec` describes.
///
/// The workload's packed dynamic trace is captured once through `cache`
/// — spilling to disk and replaying via mmap when it outgrows
/// `PERFCLONE_TRACE_CAP` — and every cell replays it under that cell's
/// decoded configuration. Shards fan over the ambient rayon pool; each
/// completed shard is journaled atomically in `journal_dir` and streamed
/// to `on_shard` as it lands (journaled shards of a resumed sweep are
/// streamed first, in shard order, with `resumed = true`). The merged
/// row set is assembled in cell order, so a resumed sweep returns rows
/// bit-identical to an uninterrupted one.
///
/// # Errors
///
/// [`Error::EmptyGrid`] when the spec enumerates no cells,
/// [`Error::Journal`] when the journal cannot be opened (including
/// [`JournalError::SpecMismatch`](crate::journal::JournalError) — the
/// directory belongs to a different sweep) or appended to, plus
/// everything the timing path returns ([`Error::Sim`] for faulting
/// cells). Trace-capture fallbacks ([`Error::is_trace_fallback`]) are
/// handled internally by re-interpreting per cell.
pub fn run_grid(
    program: &Program,
    spec: &GridSpec,
    journal_dir: &Path,
    cache: &WorkloadCache,
    on_shard: impl Fn(ShardEvent<'_>) + Sync,
) -> Result<GridOutcome, Error> {
    let _span = perfclone_obs::span!("grid.sweep");
    if spec.cells() == 0 {
        return Err(Error::EmptyGrid { workload: spec.workload.clone() });
    }
    perfclone_obs::gauge!("grid.cells", spec.cells());

    // One capture for the whole sweep; a fallback (cap hit with spill
    // disabled, or spill failure) re-interprets per cell instead.
    let trace = match cache.packed_trace(&spec.workload, program, spec.limit) {
        Ok(store) => Some(store),
        Err(e) if e.is_trace_fallback() => None,
        Err(e) => return Err(e),
    };
    let spilled_trace = trace.as_deref().is_some_and(|t| t.is_spilled());

    let (journal, done) = Journal::open(journal_dir, spec)?;
    let skipped_shards = done.len() as u64;
    for (&shard, rows) in &done {
        // Journal::open validated the range; a missing range here would
        // mean the spec changed underneath us mid-call.
        let Some((start, end)) = spec.shard_range(shard) else { continue };
        perfclone_obs::count!("grid.shards.skipped", 1);
        on_shard(ShardEvent { shard, start, end, resumed: true, rows });
    }

    let pending: Vec<u64> = (0..spec.shard_count()).filter(|s| !done.contains_key(s)).collect();
    let executed_shards = pending.len() as u64;
    let fresh: Vec<Result<(u64, Vec<CellRow>), Error>> = pending
        .par_iter()
        .map(|&shard| {
            // In range by construction: shard < shard_count().
            let (start, end) = spec
                .shard_range(shard)
                .ok_or_else(|| Error::EmptyGrid { workload: spec.workload.clone() })?;
            if let Some(delay) = shard_delay() {
                std::thread::sleep(delay);
            }
            let mut rows = Vec::with_capacity((end - start) as usize);
            for cell in start..end {
                // In range by construction: cell < cells() ≤ axes.cells().
                let config = spec
                    .axes
                    .config(cell)
                    .ok_or_else(|| Error::EmptyGrid { workload: spec.workload.clone() })?;
                let timing = match trace.as_deref() {
                    Some(store) => run_timing_store(program, store, &config)?,
                    None => run_timing(program, &config, spec.limit)?,
                };
                rows.push(CellRow::of(spec, cell, &timing));
            }
            journal.record_shard(shard, start, end, &rows)?;
            perfclone_obs::count!("grid.shards.executed", 1);
            on_shard(ShardEvent { shard, start, end, resumed: false, rows: &rows });
            Ok((shard, rows))
        })
        .collect();

    let mut merged = done;
    for result in fresh {
        let (shard, rows) = result?;
        merged.insert(shard, rows);
    }
    let mut rows = Vec::with_capacity(spec.cells() as usize);
    for shard_rows in merged.into_values() {
        rows.extend(shard_rows);
    }
    let pareto = pareto_frontier(&rows);
    Ok(GridOutcome {
        rows,
        cells: spec.cells(),
        executed_shards,
        skipped_shards,
        spilled_trace,
        pareto,
    })
}

/// FNV-1a over `bytes` (the same construction the spill codec and seed
/// derivation use; duplicated because it is four lines and keeping the
/// grid hash self-contained makes the stability contract auditable).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> GridSpec {
        GridSpec {
            workload: "crc32".into(),
            scale: "tiny".into(),
            limit: 100_000,
            axes: GridAxes::small(),
            max_cells: u64::MAX,
            shard_size: 5,
        }
    }

    #[test]
    fn shards_tile_the_grid_exactly() {
        let s = spec();
        assert_eq!(s.cells(), 32);
        assert_eq!(s.shard_count(), 7);
        let mut next = 0;
        for shard in 0..s.shard_count() {
            let (start, end) = s.shard_range(shard).unwrap();
            assert_eq!(start, next, "shard {shard} must start where the last ended");
            assert!(end > start);
            next = end;
        }
        assert_eq!(next, s.cells());
        assert_eq!(s.shard_range(s.shard_count()), None);
    }

    #[test]
    fn spec_hash_ignores_sharding_but_not_identity() {
        let a = spec();
        let resharded = GridSpec { shard_size: 11, max_cells: 10, ..a.clone() };
        assert_eq!(a.spec_hash(), resharded.spec_hash());
        assert_ne!(a.spec_hash(), GridSpec { limit: 1, ..a.clone() }.spec_hash());
        assert_ne!(a.spec_hash(), GridSpec { workload: "x".into(), ..a.clone() }.spec_hash());
        assert_ne!(a.spec_hash(), GridSpec { axes: GridAxes::dense(), ..a.clone() }.spec_hash());
    }

    #[test]
    fn cell_ids_render_hash_and_index() {
        let s = spec();
        let id = s.cell_id(7);
        assert_eq!(id.to_string(), format!("g{:016x}-c7", s.spec_hash()));
    }

    #[test]
    fn pareto_keeps_only_undominated_cells() {
        let row = |cell, ipc, power| CellRow {
            cell,
            id: format!("c{cell}"),
            cycles: 1,
            instrs: 1,
            ipc,
            power,
            l1d_mpi: 0.0,
        };
        let rows = vec![
            row(0, 1.0, 5.0),      // frontier: cheapest
            row(1, 2.0, 7.0),      // frontier
            row(2, 1.5, 8.0),      // dominated by 1 (less IPC, more power)
            row(3, 2.0, 9.0),      // dominated by 1 (same IPC, more power)
            row(4, 3.0, 12.0),     // frontier: fastest
            row(5, f64::NAN, 1.0), // non-finite: excluded
        ];
        let frontier = pareto_frontier(&rows);
        let cells: Vec<u64> = frontier.iter().map(|p| p.cell).collect();
        assert_eq!(cells, vec![0, 1, 4]);
        let mut shuffled = rows.clone();
        shuffled.reverse();
        assert_eq!(pareto_frontier(&shuffled), frontier, "input order must not matter");
    }
}
