//! The unified error taxonomy for the cloning pipeline.
//!
//! Every fallible stage — functional simulation, profiling, synthesis,
//! statistical trace generation, the fidelity gate — has its own typed
//! error; [`Error`] folds them into one enum so facade-level APIs
//! ([`Cloner`](crate::Cloner), [`run_timing`](crate::run_timing), the
//! suite and experiment drivers) return a single error type. Runaway
//! guards from any layer fold into [`Error::BudgetExhausted`], so "this
//! did not terminate within its budget" looks the same to a caller no
//! matter which stage tripped it.

use std::error::Error as StdError;
use std::fmt;

use perfclone_profile::ProfileError;
use perfclone_sim::SimError;
use perfclone_sim::TraceError as SpillError;
use perfclone_statsim::TraceError;
use perfclone_synth::SynthError;
use perfclone_uarch::PipelineError;
use perfclone_validate::ValidateError;

use crate::journal::JournalError;

/// Any error the cloning pipeline can surface.
#[derive(Clone, Debug)]
pub enum Error {
    /// The functional simulator faulted (escaped its text section,
    /// divided by zero, ...).
    Sim(SimError),
    /// Profiling failed, or a profile failed structural validation.
    Profile(ProfileError),
    /// Clone synthesis failed.
    Synth(SynthError),
    /// Statistical trace generation failed.
    Trace(TraceError),
    /// The fidelity gate rejected a clone (or could not evaluate it).
    Validate(ValidateError),
    /// A stage's runaway guard tripped: the named stage did not terminate
    /// within its instruction/cycle/instance budget.
    BudgetExhausted {
        /// Which stage exhausted its budget (`"sim"`, `"synth"`,
        /// `"pipeline"`, `"validate"`).
        stage: &'static str,
        /// The budget that was exhausted (instructions, cycles, or
        /// instances, per stage).
        budget: u64,
    },
    /// A packed-trace capture would exceed the `PERFCLONE_TRACE_CAP` byte
    /// budget. Callers (the timing drivers) treat this as a signal to fall
    /// back to direct interpretation; it never silently truncates a trace.
    TraceCapExceeded {
        /// The byte budget that would have been exceeded.
        cap: usize,
        /// Instructions recorded when the capture was abandoned.
        at_instrs: u64,
    },
    /// A suite operation needs at least one member.
    EmptySuite {
        /// The suite's name.
        name: String,
    },
    /// A suite member's weight must be positive.
    NonPositiveWeight {
        /// The offending program's name.
        name: String,
        /// The rejected weight.
        weight: f64,
    },
    /// Spilling an over-cap packed trace to disk (or reading it back)
    /// failed. Like [`Error::TraceCapExceeded`], the timing drivers treat
    /// this as a signal to fall back to direct interpretation.
    Spill(SpillError),
    /// A sweep journal could not be opened, read, or appended to.
    Journal(JournalError),
    /// A design-space grid has no cells (an empty axis, or `max_cells`
    /// of zero).
    EmptyGrid {
        /// The workload the grid was built for.
        workload: String,
    },
    /// A sweep journal holds quarantined cells, but the resuming run did
    /// not opt into degraded coverage (`--keep-going`).
    DegradedJournal {
        /// The workload the journal belongs to.
        workload: String,
        /// How many cells the journal quarantines.
        quarantined: u64,
    },
    /// A deterministically injected fault from the chaos harness (the
    /// grid fault injector / `PERFCLONE_GRID_FAULTS`). Classified by its
    /// `transient` flag; never produced outside fault-injection runs.
    Injected {
        /// The grid cell the fault was injected into.
        cell: u64,
        /// The per-cell attempt the fault failed (0 = first try).
        attempt: u32,
        /// `true` when the injection models a transient fault.
        transient: bool,
    },
}

/// Whether an [`Error`] is worth retrying.
///
/// The per-cell sweep supervisor consults this for every failure: a
/// `Transient` error is retried with seeded exponential backoff, a
/// `Permanent` one aborts the sweep (or quarantines the cell under
/// `--keep-going`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorClass {
    /// Environmental and likely to pass on retry: I/O failures from the
    /// journal or spill layers, and injected faults flagged transient.
    Transient,
    /// Deterministic for the cell's inputs: retrying re-derives the same
    /// failure (simulator faults, budget exhaustion, validation, corrupt
    /// records, spec mismatches, …).
    Permanent,
}

impl Error {
    /// `true` for the errors the timing drivers answer by falling back to
    /// direct interpretation: the packed capture was abandoned at its cap
    /// with spill disabled, or the spill path itself failed.
    pub fn is_trace_fallback(&self) -> bool {
        matches!(self, Error::TraceCapExceeded { .. } | Error::Spill(_))
    }

    /// Classifies the error for the retry supervisor (see [`ErrorClass`]).
    ///
    /// Only operating-system I/O failures — which depend on the machine's
    /// state, not the cell's inputs — and transient-flagged injected
    /// faults classify as [`ErrorClass::Transient`]. Corruption and
    /// validation failures are deliberately `Permanent` even when they
    /// arrived via the filesystem: re-reading the same corrupt bytes
    /// cannot succeed, and the journal layer has its own recovery path
    /// (demote and re-execute) for them.
    pub fn classify(&self) -> ErrorClass {
        match self {
            Error::Journal(JournalError::Io { .. }) | Error::Spill(SpillError::Io { .. }) => {
                ErrorClass::Transient
            }
            Error::Injected { transient, .. } => {
                if *transient {
                    ErrorClass::Transient
                } else {
                    ErrorClass::Permanent
                }
            }
            _ => ErrorClass::Permanent,
        }
    }

    /// A short, stable tag naming the error's variant — the `kind` field
    /// of quarantine records, so degraded-coverage reports can be grouped
    /// without parsing prose.
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Sim(_) => "sim",
            Error::Profile(_) => "profile",
            Error::Synth(_) => "synth",
            Error::Trace(_) => "trace",
            Error::Validate(_) => "validate",
            Error::BudgetExhausted { .. } => "budget-exhausted",
            Error::TraceCapExceeded { .. } => "trace-cap",
            Error::EmptySuite { .. } => "empty-suite",
            Error::NonPositiveWeight { .. } => "non-positive-weight",
            Error::Spill(_) => "spill",
            Error::Journal(_) => "journal",
            Error::EmptyGrid { .. } => "empty-grid",
            Error::DegradedJournal { .. } => "degraded-journal",
            Error::Injected { .. } => "injected",
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Sim(e) => write!(f, "simulation failed: {e}"),
            Error::Profile(e) => write!(f, "profiling failed: {e}"),
            Error::Synth(e) => write!(f, "synthesis failed: {e}"),
            Error::Trace(e) => write!(f, "trace generation failed: {e}"),
            Error::Validate(e) => write!(f, "validation failed: {e}"),
            Error::BudgetExhausted { stage, budget } => {
                write!(f, "{stage} stage did not terminate within its budget of {budget}")
            }
            Error::TraceCapExceeded { cap, at_instrs } => {
                write!(
                    f,
                    "packed trace would exceed the {cap}-byte cap \
                     (abandoned after {at_instrs} instructions)"
                )
            }
            Error::EmptySuite { name } => write!(f, "suite '{name}' has no members"),
            Error::NonPositiveWeight { name, weight } => {
                write!(f, "suite member '{name}' has non-positive weight {weight}")
            }
            Error::Spill(e) => write!(f, "trace spill failed: {e}"),
            Error::Journal(e) => write!(f, "sweep journal failed: {e}"),
            Error::EmptyGrid { workload } => {
                write!(f, "design-space grid for '{workload}' has no cells")
            }
            Error::DegradedJournal { workload, quarantined } => write!(
                f,
                "the sweep journal for '{workload}' quarantines {quarantined} cell(s); \
                 resume with --keep-going to accept degraded coverage, or delete the \
                 quarantine-*.json records to retry those cells"
            ),
            Error::Injected { cell, attempt, transient } => write!(
                f,
                "injected {} fault at cell {cell} (attempt {attempt})",
                if *transient { "transient" } else { "permanent" }
            ),
        }
    }
}

impl StdError for Error {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Error::Sim(e) => Some(e),
            Error::Profile(e) => Some(e),
            Error::Synth(e) => Some(e),
            Error::Trace(e) => Some(e),
            Error::Validate(e) => Some(e),
            Error::Spill(e) => Some(e),
            Error::Journal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for Error {
    fn from(e: SimError) -> Error {
        match e {
            SimError::BudgetExhausted { budget } => Error::BudgetExhausted { stage: "sim", budget },
            other => Error::Sim(other),
        }
    }
}

impl From<ProfileError> for Error {
    fn from(e: ProfileError) -> Error {
        match e {
            ProfileError::Fault(SimError::BudgetExhausted { budget }) => {
                Error::BudgetExhausted { stage: "sim", budget }
            }
            other => Error::Profile(other),
        }
    }
}

impl From<SynthError> for Error {
    fn from(e: SynthError) -> Error {
        match e {
            SynthError::WalkBudgetExhausted { budget, .. } => {
                Error::BudgetExhausted { stage: "synth", budget: budget as u64 }
            }
            other => Error::Synth(other),
        }
    }
}

impl From<TraceError> for Error {
    fn from(e: TraceError) -> Error {
        Error::Trace(e)
    }
}

impl From<SpillError> for Error {
    fn from(e: SpillError) -> Error {
        Error::Spill(e)
    }
}

impl From<JournalError> for Error {
    fn from(e: JournalError) -> Error {
        Error::Journal(e)
    }
}

impl From<ValidateError> for Error {
    fn from(e: ValidateError) -> Error {
        match e {
            ValidateError::BudgetExhausted { budget } => {
                Error::BudgetExhausted { stage: "validate", budget }
            }
            other => Error::Validate(other),
        }
    }
}

impl From<PipelineError> for Error {
    fn from(e: PipelineError) -> Error {
        match e {
            PipelineError::BudgetExhausted { max_cycles, .. } => {
                Error::BudgetExhausted { stage: "pipeline", budget: max_cycles }
            }
        }
    }
}
