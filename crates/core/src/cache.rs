//! Shared workload cache for parallel experiments.
//!
//! A design-space sweep runs the same workload against many machine
//! configurations. Profiling the workload, synthesizing its clone,
//! generating its statistical trace, and capturing its packed dynamic
//! trace (the [`PackedTrace`] record-once/replay-many artifact that
//! `run_timing_trace` replays per configuration) are
//! configuration-independent, so repeating them per cell wastes most of
//! the sweep's time. A [`WorkloadCache`] computes each artifact once — on
//! whichever thread asks first — and hands every subsequent requester the
//! same [`Arc`]-shared value. Each memo reports `cache.<memo>.lookups` /
//! `cache.<memo>.computes` counters (`profile`, `clone`, `statsim`,
//! `trace`, ...) so run reports show real hit rates.
//!
//! Concurrency: the key→slot map sits behind a [`Mutex`] held only long
//! enough to find or insert a slot; the (expensive) computation itself
//! runs inside the slot's [`OnceLock`], outside the map lock, so two
//! threads asking for *different* workloads never serialize on each
//! other, and two threads asking for the *same* workload compute it
//! exactly once.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use std::path::PathBuf;

use perfclone_isa::{InstrMetaTable, Program};
use perfclone_profile::{profile_program, WorkloadProfile};
use perfclone_sim::{DynInstr, PackedRecorder, Simulator, SpillingRecorder, TraceStore};
use perfclone_statsim::{synth_trace, TraceParams};
use perfclone_synth::{synthesize, MemoryModel, SynthesisParams};
use perfclone_uarch::AddressTrace;

use crate::Error;

/// Default `PERFCLONE_TRACE_CAP`: 1 GiB of packed trace per capture. The
/// bundled kernels pack to a few MB, so the cap only bites on
/// multi-hundred-million-instruction captures.
pub const DEFAULT_TRACE_CAP: usize = 1 << 30;

/// The process-wide packed-trace byte budget: `PERFCLONE_TRACE_CAP` parsed
/// once (unset or unparsable falls back to [`DEFAULT_TRACE_CAP`]; `0`
/// disables packing, forcing every timing run onto the interpreter path).
pub fn trace_cap() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("PERFCLONE_TRACE_CAP")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_TRACE_CAP)
    })
}

/// Total packed bytes held by every capture in the process, mirrored into
/// the `trace.bytes` gauge for run reports.
static PACKED_BYTES_TOTAL: AtomicUsize = AtomicUsize::new(0);

/// Total bytes of spilled trace files produced by this process, mirrored
/// into the `trace.spill.bytes` gauge.
static SPILL_BYTES_TOTAL: AtomicU64 = AtomicU64::new(0);

/// Distinguishes spill stems across captures within one process.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Where over-cap captures spill, or `None` when spilling is disabled.
///
/// `PERFCLONE_SPILL=0` (or `off`/`false`) disables spilling, restoring the
/// interpreter-fallback behavior of [`Error::TraceCapExceeded`];
/// `PERFCLONE_SPILL_DIR` overrides the directory (default: the system
/// temp dir). Parsed once per process.
pub(crate) fn spill_dir() -> Option<&'static PathBuf> {
    static DIR: OnceLock<Option<PathBuf>> = OnceLock::new();
    DIR.get_or_init(|| {
        if let Ok(v) = std::env::var("PERFCLONE_SPILL") {
            let v = v.trim().to_ascii_lowercase();
            if v == "0" || v == "off" || v == "false" {
                return None;
            }
        }
        let dir = match std::env::var("PERFCLONE_SPILL_DIR") {
            Ok(dir) if !dir.trim().is_empty() => PathBuf::from(dir),
            _ => std::env::temp_dir(),
        };
        // Reap spill files orphaned by dead processes (a SIGKILL
        // mid-capture leaves both sealed spills and `.tmp-<pid>` segment
        // temps behind; Drop never ran). Once per process, on first use.
        let reaped = perfclone_sim::reap_stray_spills(&dir);
        if reaped > 0 {
            perfclone_obs::count!("trace.spill.reaped", reaped);
            eprintln!(
                "perfclone: reaped {reaped} stray spill file(s) from dead processes in '{}'",
                dir.display()
            );
        }
        Some(dir)
    })
    .as_ref()
}

/// A filesystem-safe stem for one capture's spill file, unique within the
/// process.
fn spill_stem(program: &Program) -> String {
    let name: String = program
        .name()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
        .collect();
    format!("perfclone-{name}-{}-{}", std::process::id(), SPILL_SEQ.fetch_add(1, Ordering::Relaxed))
}

/// Captures the packed trace of `program` under the `cap_bytes` memory
/// budget, publishing the `trace.bytes` gauge on success.
///
/// An over-cap capture spills to disk and is replayed via mmap
/// (`trace.spills` counter, `trace.spill.bytes` gauge, plus a stderr
/// note); when spilling is disabled (`PERFCLONE_SPILL=0`) or the spill
/// itself fails, the capture is abandoned whole — never truncated — with
/// the `trace.fallbacks` counter and a stderr note, and callers fall back
/// to direct interpretation.
///
/// This is the one capture choke point: the [`WorkloadCache`] memo and the
/// capture-per-call experiment drivers both route through it.
///
/// # Errors
///
/// Returns [`Error::TraceCapExceeded`] when the encoding outgrows
/// `cap_bytes` with spilling disabled, or [`Error::Spill`] when the spill
/// path fails; both satisfy [`Error::is_trace_fallback`].
pub(crate) fn capture_packed(
    program: &Program,
    limit: u64,
    cap_bytes: usize,
) -> Result<TraceStore, Error> {
    let _span = perfclone_obs::span!("sim.trace.capture");
    match spill_dir() {
        Some(dir) => {
            let stem = spill_stem(program);
            let mut rec = SpillingRecorder::new(cap_bytes, dir, &stem);
            let mut trace = Simulator::trace(program, limit);
            let mut result = Ok(());
            for d in &mut trace {
                if let Err(e) = rec.push(&d) {
                    result = Err(e);
                    break;
                }
            }
            let store = result.and_then(|()| {
                let fault = trace.fault().cloned();
                let halted = trace.into_inner().is_halted();
                rec.finish(program, halted, fault)
            });
            match store {
                Ok(store) => {
                    publish_capture(program, &store, cap_bytes);
                    Ok(store)
                }
                Err(e) => {
                    perfclone_obs::count!("trace.fallbacks", 1);
                    eprintln!(
                        "perfclone: spilling over-cap packed trace of '{}' failed ({e}); \
                         falling back to direct interpretation",
                        program.name()
                    );
                    Err(Error::Spill(e))
                }
            }
        }
        None => {
            // Spilling disabled: the capture aborts at the cap and the
            // caller re-interprets, the pre-spill contract.
            let mut rec = PackedRecorder::new();
            let mut trace = Simulator::trace(program, limit);
            for d in &mut trace {
                rec.push(&d);
                if rec.packed_bytes() > cap_bytes {
                    perfclone_obs::count!("trace.fallbacks", 1);
                    eprintln!(
                        "perfclone: packed trace of '{}' exceeded PERFCLONE_TRACE_CAP \
                         ({cap_bytes} B) after {} instructions; falling back to direct \
                         interpretation (spill disabled)",
                        program.name(),
                        rec.len()
                    );
                    return Err(Error::TraceCapExceeded { cap: cap_bytes, at_instrs: rec.len() });
                }
            }
            let fault = trace.fault().cloned();
            let halted = trace.into_inner().is_halted();
            let store = TraceStore::Mem(rec.finish(program, halted, fault));
            publish_capture(program, &store, cap_bytes);
            Ok(store)
        }
    }
}

/// Publishes a successful capture's counters/gauges and, for spills, the
/// stderr announcement (the cap must never *silently* change a run's
/// storage class).
fn publish_capture(program: &Program, store: &TraceStore, cap_bytes: usize) {
    perfclone_obs::count!("trace.captures", 1);
    perfclone_obs::count!("trace.capture.instrs", store.len());
    match store {
        TraceStore::Mem(packed) => {
            let total = PACKED_BYTES_TOTAL.fetch_add(packed.packed_bytes(), Ordering::Relaxed)
                + packed.packed_bytes();
            perfclone_obs::gauge!("trace.bytes", total);
        }
        TraceStore::Spilled(spilled) => {
            perfclone_obs::count!("trace.spills", 1);
            // The spill file was just sealed (written, synced, renamed).
            perfclone_obs::instant!("trace.spill.seal");
            let total = SPILL_BYTES_TOTAL.fetch_add(spilled.file_bytes(), Ordering::Relaxed)
                + spilled.file_bytes();
            perfclone_obs::gauge!("trace.spill.bytes", total);
            eprintln!(
                "perfclone: packed trace of '{}' exceeded PERFCLONE_TRACE_CAP ({cap_bytes} B); \
                 spilled {} B to '{}' and replaying via mmap",
                program.name(),
                spilled.file_bytes(),
                spilled.path().display()
            );
        }
    }
}

/// One memoization table: key → lazily-computed `Result<Arc<V>, Error>`.
/// Failed computations are memoized too — a corrupt workload fails once
/// and every later requester gets the same (cloned) error instead of
/// re-running the doomed computation.
/// A memoized computation slot: filled exactly once, then shared.
type Slot<V> = Arc<OnceLock<Result<Arc<V>, Error>>>;

struct Memo<K, V> {
    map: Mutex<HashMap<K, Slot<V>>>,
    lookups: AtomicU64,
    computes: AtomicU64,
    /// Global registry mirrors (`cache.<name>.lookups` / `.computes`),
    /// resolved once at construction. The per-instance atomics above stay
    /// authoritative for [`WorkloadCache::snapshot`]; the mirrors feed
    /// run reports, which aggregate across every cache in the process.
    g_lookups: &'static perfclone_obs::Counter,
    g_computes: &'static perfclone_obs::Counter,
}

impl<K: Eq + Hash, V> Memo<K, V> {
    fn new(name: &str) -> Memo<K, V> {
        Memo {
            map: Mutex::new(HashMap::new()),
            lookups: AtomicU64::new(0),
            computes: AtomicU64::new(0),
            g_lookups: perfclone_obs::counter(&format!("cache.{name}.lookups")),
            g_computes: perfclone_obs::counter(&format!("cache.{name}.computes")),
        }
    }

    fn get_or_compute(
        &self,
        key: K,
        compute: impl FnOnce() -> Result<V, Error>,
    ) -> Result<Arc<V>, Error> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        self.g_lookups.incr();
        let slot = {
            // A thread that panicked while holding this lock only held it
            // across HashMap::entry (computations run outside the lock),
            // so the map itself is never left half-updated: recover it.
            let mut map = match self.map.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            map.entry(key).or_default().clone()
        };
        let mut computed = false;
        let result = slot
            .get_or_init(|| {
                computed = true;
                self.computes.fetch_add(1, Ordering::Relaxed);
                self.g_computes.incr();
                compute().map(Arc::new)
            })
            .clone();
        if !computed {
            // Served from an already-filled slot: a cache hit.
            perfclone_obs::instant!("cache.hit");
        }
        result
    }
}

/// A [`SynthesisParams`] image with `Eq + Hash` (the params struct holds
/// an `f64` miss-rate target, hashed here by bit pattern).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct ParamsKey {
    seed: u64,
    target_blocks: u32,
    target_dynamic: u64,
    memory_model: (u8, u64, u32),
    branch_model: u8,
    context_sensitive: bool,
}

impl ParamsKey {
    fn of(p: &SynthesisParams) -> ParamsKey {
        ParamsKey {
            seed: p.seed,
            target_blocks: p.target_blocks,
            target_dynamic: p.target_dynamic,
            memory_model: match p.memory_model {
                MemoryModel::StrideStreams => (0, 0, 0),
                MemoryModel::MissRateTarget { miss_rate, line_bytes } => {
                    (1, miss_rate.to_bits(), line_bytes)
                }
            },
            branch_model: p.branch_model as u8,
            context_sensitive: p.context_sensitive,
        }
    }
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct ProfileKey {
    workload: String,
    limit: u64,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct CloneKey {
    workload: String,
    limit: u64,
    params: ParamsKey,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct AddrTraceKey {
    workload: String,
    limit: u64,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct TraceKey {
    workload: String,
    limit: u64,
    length: u64,
    seed: u64,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct PackedKey {
    workload: String,
    limit: u64,
}

/// Keyed by workload *and* program length: the table is pc-indexed, so a
/// caller that reuses a workload name for a re-synthesized program of a
/// different length must not be served the stale table.
#[derive(Clone, PartialEq, Eq, Hash)]
struct MetaKey {
    workload: String,
    program_len: usize,
}

/// Hit/compute counters of a [`WorkloadCache`], for observability and
/// tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkloadCacheStats {
    /// Profile lookups served.
    pub profile_lookups: u64,
    /// Profiles actually computed (lookups − computes = hits).
    pub profile_computes: u64,
    /// Clone lookups served.
    pub clone_lookups: u64,
    /// Clones actually synthesized.
    pub clone_computes: u64,
    /// Statistical-trace lookups served.
    pub trace_lookups: u64,
    /// Statistical traces actually generated.
    pub trace_computes: u64,
    /// Address-trace (cache-sweep input) lookups served.
    pub addr_trace_lookups: u64,
    /// Address traces actually extracted.
    pub addr_trace_computes: u64,
    /// Packed dynamic-trace (timing-replay input) lookups served.
    pub packed_trace_lookups: u64,
    /// Packed dynamic traces actually captured (cap-exceeded attempts
    /// count too: the outcome — including the fallback signal — is
    /// memoized).
    pub packed_trace_computes: u64,
    /// Interned per-pc instruction-metadata table lookups served.
    pub meta_lookups: u64,
    /// Metadata tables actually built.
    pub meta_computes: u64,
}

/// Memoizes the per-workload artifacts a sweep re-uses across cells: the
/// microarchitecture-independent profile, the synthesized clone program,
/// and the statistical-simulation trace.
///
/// Entries are keyed by a caller-chosen workload name plus every input
/// that affects the artifact (profiling limit, synthesis parameters,
/// trace parameters) — the caller must use distinct names for distinct
/// programs. The cache is `Sync`; share one instance by reference across
/// a sweep's worker threads.
pub struct WorkloadCache {
    profiles: Memo<ProfileKey, WorkloadProfile>,
    clones: Memo<CloneKey, Program>,
    traces: Memo<TraceKey, Vec<DynInstr>>,
    addr_traces: Memo<AddrTraceKey, AddressTrace>,
    packed_traces: Memo<PackedKey, TraceStore>,
    metas: Memo<MetaKey, InstrMetaTable>,
}

impl Default for WorkloadCache {
    fn default() -> WorkloadCache {
        WorkloadCache {
            profiles: Memo::new("profile"),
            clones: Memo::new("clone"),
            traces: Memo::new("statsim"),
            addr_traces: Memo::new("addr_trace"),
            packed_traces: Memo::new("trace"),
            metas: Memo::new("meta"),
        }
    }
}

impl WorkloadCache {
    /// Creates an empty cache.
    pub fn new() -> WorkloadCache {
        WorkloadCache::default()
    }

    /// The profile of `program` (up to `limit` instructions), computed on
    /// first request and shared thereafter.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Sim`] / [`Error::Profile`] if profiling fails; the
    /// failure is memoized like a success, so a corrupt workload is
    /// profiled (and fails) exactly once.
    pub fn profile(
        &self,
        workload: &str,
        program: &Program,
        limit: u64,
    ) -> Result<Arc<WorkloadProfile>, Error> {
        let key = ProfileKey { workload: workload.to_string(), limit };
        self.profiles.get_or_compute(key, || Ok(profile_program(program, limit)?))
    }

    /// The synthesized clone of `program` under `params`, built from the
    /// cached profile.
    ///
    /// # Errors
    ///
    /// Everything [`profile`](WorkloadCache::profile) returns, plus
    /// [`Error::Synth`] if synthesis fails.
    pub fn clone_program(
        &self,
        workload: &str,
        program: &Program,
        limit: u64,
        params: &SynthesisParams,
    ) -> Result<Arc<Program>, Error> {
        let key = CloneKey { workload: workload.to_string(), limit, params: ParamsKey::of(params) };
        self.clones.get_or_compute(key, || {
            let profile = self.profile(workload, program, limit)?;
            Ok(synthesize(&profile, params)?)
        })
    }

    /// The statistical-simulation trace of `program` under `trace_params`,
    /// generated from the cached profile. Replay it with
    /// `trace.iter().copied()`.
    ///
    /// # Errors
    ///
    /// Everything [`profile`](WorkloadCache::profile) returns, plus
    /// [`Error::Trace`] if trace generation fails.
    pub fn statsim_trace(
        &self,
        workload: &str,
        program: &Program,
        limit: u64,
        trace_params: &TraceParams,
    ) -> Result<Arc<Vec<DynInstr>>, Error> {
        let key = TraceKey {
            workload: workload.to_string(),
            limit,
            length: trace_params.length,
            seed: trace_params.seed,
        };
        self.traces.get_or_compute(key, || {
            let profile = self.profile(workload, program, limit)?;
            Ok(synth_trace(&profile, trace_params)?)
        })
    }

    /// The data-reference trace of `program` (up to `limit`
    /// instructions) — the single-pass cache-sweep engine's input —
    /// extracted on first request and shared thereafter, so a design-space
    /// sweep pays one functional simulation per workload no matter how
    /// many cache geometries (or hierarchy pairs) it evaluates.
    pub fn address_trace(
        &self,
        workload: &str,
        program: &Program,
        limit: u64,
    ) -> Arc<AddressTrace> {
        let key = AddrTraceKey { workload: workload.to_string(), limit };
        self.addr_traces
            .get_or_compute(key, || Ok(AddressTrace::extract(program, limit)))
            // Extraction is infallible, so the Err arm is unreachable;
            // recomputing (uncached) keeps this API infallible too.
            .unwrap_or_else(|_| Arc::new(AddressTrace::extract(program, limit)))
    }

    /// The packed dynamic trace of `program` (up to `limit` instructions)
    /// — the record-once/replay-many input of
    /// [`run_timing_trace`](crate::run_timing_trace) — captured on first
    /// request under the process-wide [`trace_cap`] memory budget and
    /// shared thereafter, so a timing sweep pays one functional execution
    /// per `(workload, limit)` no matter how many machine configurations
    /// (or rayon workers) consume it. An over-cap capture comes back as
    /// [`TraceStore::Spilled`]: on disk, replayed via mmap.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TraceCapExceeded`] (cap hit with spilling
    /// disabled) or [`Error::Spill`] (spill I/O failed); the outcome is
    /// memoized either way, so an unstorable workload is probed exactly
    /// once and every later requester immediately falls back to direct
    /// interpretation.
    pub fn packed_trace(
        &self,
        workload: &str,
        program: &Program,
        limit: u64,
    ) -> Result<Arc<TraceStore>, Error> {
        self.packed_trace_capped(workload, program, limit, trace_cap())
    }

    /// [`packed_trace`](WorkloadCache::packed_trace) with an explicit byte
    /// cap instead of the process-wide `PERFCLONE_TRACE_CAP`. The memo is
    /// keyed by `(workload, limit)` only, so callers must keep the cap
    /// constant per cache instance (the first capture's outcome wins).
    ///
    /// # Errors
    ///
    /// Same as [`packed_trace`](WorkloadCache::packed_trace).
    pub fn packed_trace_capped(
        &self,
        workload: &str,
        program: &Program,
        limit: u64,
        cap_bytes: usize,
    ) -> Result<Arc<TraceStore>, Error> {
        let key = PackedKey { workload: workload.to_string(), limit };
        self.packed_traces.get_or_compute(key, || capture_packed(program, limit, cap_bytes))
    }

    /// The interned per-pc [`InstrMetaTable`] of `program` — the flat
    /// static-resolution table the batched replay front end indexes per
    /// retired record — built on first request and shared across every
    /// cell (and rayon worker) replaying this workload.
    pub fn instr_meta(&self, workload: &str, program: &Program) -> Arc<InstrMetaTable> {
        let key = MetaKey { workload: workload.to_string(), program_len: program.len() };
        self.metas
            .get_or_compute(key, || Ok(InstrMetaTable::new(program)))
            // Interning is infallible, so the Err arm is unreachable;
            // recomputing (uncached) keeps this API infallible too.
            .unwrap_or_else(|_| Arc::new(InstrMetaTable::new(program)))
    }

    /// A point-in-time copy of all lookup/compute counters, read once
    /// each with `Ordering::Relaxed`.
    ///
    /// Torn-read semantics: the eight loads are not a single atomic
    /// transaction, so a snapshot taken while workers are mid-flight may
    /// pair a `lookups` value with a `computes` value from a slightly
    /// later instant (e.g. `computes > lookups − hits` transiently).
    /// This is benign — each individual counter is exact, and snapshots
    /// taken at a quiescent point (after a sweep joins, as the CLI and
    /// tests do) are globally consistent. The same counters are mirrored
    /// into the telemetry registry as `cache.<memo>.lookups` /
    /// `cache.<memo>.computes` for run reports.
    pub fn snapshot(&self) -> WorkloadCacheStats {
        WorkloadCacheStats {
            profile_lookups: self.profiles.lookups.load(Ordering::Relaxed),
            profile_computes: self.profiles.computes.load(Ordering::Relaxed),
            clone_lookups: self.clones.lookups.load(Ordering::Relaxed),
            clone_computes: self.clones.computes.load(Ordering::Relaxed),
            trace_lookups: self.traces.lookups.load(Ordering::Relaxed),
            trace_computes: self.traces.computes.load(Ordering::Relaxed),
            addr_trace_lookups: self.addr_traces.lookups.load(Ordering::Relaxed),
            addr_trace_computes: self.addr_traces.computes.load(Ordering::Relaxed),
            packed_trace_lookups: self.packed_traces.lookups.load(Ordering::Relaxed),
            packed_trace_computes: self.packed_traces.computes.load(Ordering::Relaxed),
            meta_lookups: self.metas.lookups.load(Ordering::Relaxed),
            meta_computes: self.metas.computes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfclone_kernels::{by_name, Scale};

    fn program(name: &str) -> Program {
        by_name(name).expect("kernel exists").build(Scale::Tiny).program
    }

    #[test]
    fn profile_hits_return_the_same_arc() {
        let cache = WorkloadCache::new();
        let p = program("crc32");
        let a = cache.profile("crc32", &p, 100_000).unwrap();
        let b = cache.profile("crc32", &p, 100_000).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.snapshot();
        assert_eq!(stats.profile_lookups, 2);
        assert_eq!(stats.profile_computes, 1);
    }

    #[test]
    fn different_workloads_and_limits_miss() {
        let cache = WorkloadCache::new();
        let crc = program("crc32");
        let bit = program("bitcount");
        let a = cache.profile("crc32", &crc, 100_000).unwrap();
        let b = cache.profile("bitcount", &bit, 100_000).unwrap();
        let c = cache.profile("crc32", &crc, 50_000).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.snapshot().profile_computes, 3);
    }

    #[test]
    fn cached_profile_equals_direct_profile() {
        let cache = WorkloadCache::new();
        let p = program("crc32");
        let cached = cache.profile("crc32", &p, 100_000).unwrap();
        let direct = profile_program(&p, 100_000).unwrap();
        assert_eq!(
            cached.to_json().unwrap(),
            direct.to_json().unwrap(),
            "cache must be transparent"
        );
    }

    #[test]
    fn clone_keyed_by_params() {
        let cache = WorkloadCache::new();
        let p = program("crc32");
        let params = SynthesisParams { target_dynamic: 50_000, ..SynthesisParams::default() };
        let a = cache.clone_program("crc32", &p, u64::MAX, &params).unwrap();
        let b = cache.clone_program("crc32", &p, u64::MAX, &params).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let reseeded = SynthesisParams { seed: 99, ..params };
        let c = cache.clone_program("crc32", &p, u64::MAX, &reseeded).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        // Both clones share one underlying profile.
        assert_eq!(cache.snapshot().profile_computes, 1);
        assert_eq!(cache.snapshot().clone_computes, 2);
    }

    #[test]
    fn trace_keyed_by_length_and_seed() {
        let cache = WorkloadCache::new();
        let p = program("crc32");
        let tp = TraceParams { length: 20_000, seed: 7 };
        let a = cache.statsim_trace("crc32", &p, u64::MAX, &tp).unwrap();
        let b = cache.statsim_trace("crc32", &p, u64::MAX, &tp).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len() as u64, tp.length);
        let c = cache.statsim_trace("crc32", &p, u64::MAX, &TraceParams { seed: 8, ..tp }).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn address_trace_entry_is_shared_transparent_and_keyed_by_limit() {
        let cache = WorkloadCache::new();
        let p = program("crc32");
        let a = cache.address_trace("crc32", &p, 100_000);
        let b = cache.address_trace("crc32", &p, 100_000);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.snapshot();
        assert_eq!(stats.addr_trace_lookups, 2);
        assert_eq!(stats.addr_trace_computes, 1);
        assert_eq!(*a, AddressTrace::extract(&p, 100_000), "cache must be transparent");
        let c = cache.address_trace("crc32", &p, 50_000);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.snapshot().addr_trace_computes, 2);
    }

    #[test]
    fn concurrent_requests_compute_once() {
        let cache = WorkloadCache::new();
        let p = program("crc32");
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| cache.profile("crc32", &p, 100_000).unwrap()))
                .collect();
            let arcs: Vec<_> = handles.into_iter().map(|h| h.join().expect("no panic")).collect();
            for pair in arcs.windows(2) {
                assert!(Arc::ptr_eq(&pair[0], &pair[1]));
            }
        });
        assert_eq!(cache.snapshot().profile_computes, 1);
    }
}
