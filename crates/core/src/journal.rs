//! Append-only on-disk journal for sharded sweeps.
//!
//! A journal is a directory holding one `spec.json` (the grid's identity:
//! spec hash, cell count, shard size) plus one `shard-NNNNNN.json` per
//! completed shard, each carrying that shard's metric rows, plus one
//! `quarantine-NNNNNN.json` per cell a `--keep-going` sweep gave up on. A
//! killed sweep resumes by reloading the directory: shards with a record
//! on disk are *skipped* and their journaled rows merged verbatim, which
//! is what makes resume bit-identical — the resumed run never recomputes
//! (and so can never perturb) a completed shard.
//!
//! # Crash safety
//!
//! Every file is written to a `<name>.tmp-<pid>` sibling and `rename`d
//! into place, so a record either exists whole or not at all; a `SIGKILL`
//! mid-write leaves only a stray temp file, which [`Journal::open`] reaps
//! on the next resume. Records are additionally validated on load (spec
//! hash, shard range, row order, metric finiteness). A record that fails
//! *structural* validation — truncated by a torn rename, corrupted by bit
//! rot, or short-written by a failing disk — is **demoted, not fatal**:
//! the bad file is set aside (renamed `*.corrupt`), a stderr warning and
//! the `grid.journal.truncated_recovered` counter record the recovery,
//! and the shard is treated as pending and re-executed. Only genuine
//! identity conflicts (a parseable `spec.json` for a *different* grid, or
//! a newer journal version) and live I/O failures remain hard errors,
//! because silently re-executing over a different sweep's data would be
//! worse than stopping. All file writes route through
//! [`perfclone_sim::faultfs`], so the chaos harness can drive every one
//! of these recovery paths deterministically.
//!
//! # Bit-identical resume and floats
//!
//! Metric rows hold `f64`s, serialized with the shortest representation
//! that round-trips exactly for finite values. Non-finite metrics would
//! *not* round-trip (JSON has no NaN/Inf), so
//! [`Journal::record_shard`] refuses them with
//! [`JournalError::NonFinite`] instead of silently breaking the
//! resume-equals-rerun contract.
//!
//! # Quarantine records
//!
//! Under `--keep-going`, a cell whose execution fails permanently (after
//! transient retries are exhausted) is quarantined:
//! `quarantine-NNNNNN.json` records the cell, its stable ID, a typed
//! failure kind, the human-readable reason, and how many attempts were
//! made. The owning shard's record then legitimately *omits* that cell's
//! row — load validation accepts a gap exactly when a quarantine record
//! covers it. A journaled row always wins over a stale quarantine record
//! (the record is dropped and its file removed), so a cell that later
//! succeeds is never reported as lost.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::grid::{CellRow, GridSpec};

/// Current journal format version (recorded in `spec.json`).
pub const JOURNAL_VERSION: u32 = 1;

/// Typed error for journal I/O and validation.
#[derive(Clone, Debug, PartialEq)]
pub enum JournalError {
    /// A filesystem operation failed.
    Io {
        /// The path the operation targeted.
        path: PathBuf,
        /// The OS error text.
        detail: String,
    },
    /// The journal directory belongs to a different grid spec — resuming
    /// would merge rows from a different design space.
    SpecMismatch {
        /// The journal's `spec.json`.
        path: PathBuf,
        /// The running sweep's spec hash.
        expected: u64,
        /// The spec hash found on disk.
        found: u64,
    },
    /// A journal file failed structural validation.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What failed to validate.
        detail: String,
    },
    /// A metric row holds a non-finite value, which cannot round-trip
    /// through the journal bit-identically.
    NonFinite {
        /// The cell whose row was rejected.
        cell: u64,
        /// The offending metric.
        metric: &'static str,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, detail } => {
                write!(f, "journal I/O on '{}' failed: {detail}", path.display())
            }
            JournalError::SpecMismatch { path, expected, found } => write!(
                f,
                "journal '{}' was written for grid spec {found:#018x}, \
                 but this sweep is grid spec {expected:#018x}",
                path.display()
            ),
            JournalError::Corrupt { path, detail } => {
                write!(f, "journal file '{}' is corrupt: {detail}", path.display())
            }
            JournalError::NonFinite { cell, metric } => {
                write!(f, "cell {cell} produced a non-finite {metric}; refusing to journal it")
            }
        }
    }
}

impl std::error::Error for JournalError {}

fn io_err(path: &Path, e: &io::Error) -> JournalError {
    JournalError::Io { path: path.to_path_buf(), detail: e.to_string() }
}

fn corrupt(path: &Path, detail: impl Into<String>) -> JournalError {
    JournalError::Corrupt { path: path.to_path_buf(), detail: detail.into() }
}

/// `spec.json`: the journal directory's identity record.
#[derive(Serialize, Deserialize)]
struct SpecDoc {
    version: u32,
    spec_hash: u64,
    workload: String,
    scale: String,
    limit: u64,
    cells: u64,
    shard_size: u64,
    axes: String,
}

/// One completed shard's on-disk record.
#[derive(Serialize, Deserialize)]
struct ShardRecord {
    spec_hash: u64,
    shard: u64,
    start: u64,
    end: u64,
    rows: Vec<CellRow>,
}

/// One quarantined cell, as surfaced to callers and the run report: the
/// payload of a `quarantine-NNNNNN.json` record (which additionally pins
/// the owning spec hash on disk).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuarantineRecord {
    /// Linear cell index.
    pub cell: u64,
    /// The cell's stable ID (`g<spec-hash>-c<index>`).
    pub id: String,
    /// Typed failure kind ([`Error::kind`](crate::Error::kind)).
    pub kind: String,
    /// Human-readable failure description.
    pub reason: String,
    /// Execution attempts made before giving up (1 = no retries).
    pub attempts: u32,
}

/// `quarantine-NNNNNN.json` on-disk form: the record plus the spec hash.
#[derive(Serialize, Deserialize)]
struct QuarantineDoc {
    spec_hash: u64,
    cell: u64,
    id: String,
    kind: String,
    reason: String,
    attempts: u32,
}

/// Everything [`Journal::open`] recovered from the directory.
#[derive(Debug, Default)]
pub struct JournalLoad {
    /// Completed shards' rows, keyed by shard index (rows may omit
    /// quarantined cells).
    pub shards: BTreeMap<u64, Vec<CellRow>>,
    /// Quarantined cells, keyed by cell index.
    pub quarantined: BTreeMap<u64, QuarantineRecord>,
    /// Records demoted to pending because they failed structural
    /// validation (truncated, corrupted, or inconsistent); their shards
    /// will be re-executed.
    pub recovered: u64,
}

/// Removes `path` on drop unless disarmed.
struct TempGuard {
    path: PathBuf,
    armed: bool,
}

impl TempGuard {
    fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for TempGuard {
    fn drop(&mut self) {
        if self.armed {
            let _ = fs::remove_file(&self.path);
        }
    }
}

/// Atomically writes `text` to `path` (temp sibling + rename); the temp
/// file is removed if anything fails before the rename. Routed through
/// [`perfclone_sim::faultfs`] so the chaos harness can inject ENOSPC,
/// short writes, torn renames, and corruption here.
fn write_atomic(path: &Path, text: &str) -> Result<(), JournalError> {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(format!(".tmp-{}", std::process::id()));
    let tmp = path.with_file_name(name);
    perfclone_sim::faultfs::write_file(&tmp, text.as_bytes()).map_err(|e| io_err(&tmp, &e))?;
    let guard = TempGuard { path: tmp.clone(), armed: true };
    perfclone_sim::faultfs::rename(&tmp, path).map_err(|e| io_err(path, &e))?;
    guard.disarm();
    Ok(())
}

fn check_finite(rows: &[CellRow]) -> Result<(), JournalError> {
    for row in rows {
        for (metric, value) in [("ipc", row.ipc), ("power", row.power), ("l1d_mpi", row.l1d_mpi)] {
            if !value.is_finite() {
                return Err(JournalError::NonFinite { cell: row.cell, metric });
            }
        }
    }
    Ok(())
}

/// Demotes a structurally invalid record: warns, sets the file aside as
/// `<name>.corrupt` (preserved as evidence, never reparsed), and counts
/// the recovery. The caller then treats the shard/cell as pending.
fn demote(path: &Path, why: &JournalError) {
    eprintln!(
        "perfclone: journal record '{}' failed validation ({why}); \
         demoting to pending — that work will be re-executed",
        path.display()
    );
    let mut bad = path.as_os_str().to_os_string();
    bad.push(".corrupt");
    let _ = fs::rename(path, &bad);
    perfclone_obs::count!("grid.journal.truncated_recovered", 1);
}

/// An open journal directory bound to one grid spec. Created by
/// [`Journal::open`], which also returns everything already journaled.
pub struct Journal {
    dir: PathBuf,
    spec_hash: u64,
}

impl Journal {
    /// Opens (creating if necessary) the journal at `dir` for `spec`,
    /// reaping stray temp files and loading every shard and quarantine
    /// record.
    ///
    /// Structurally invalid records (truncated final shard from a torn
    /// rename, flipped bytes, inconsistent geometry) are demoted to
    /// pending — see the module docs — rather than refusing the whole
    /// journal.
    ///
    /// # Errors
    ///
    /// [`JournalError::SpecMismatch`] when the directory's parseable
    /// `spec.json` belongs to a different grid, [`JournalError::Corrupt`]
    /// when it claims a newer journal version, [`JournalError::Io`] on
    /// filesystem failure.
    pub fn open(dir: &Path, spec: &GridSpec) -> Result<(Journal, JournalLoad), JournalError> {
        fs::create_dir_all(dir).map_err(|e| io_err(dir, &e))?;
        let spec_hash = spec.spec_hash();
        let spec_path = dir.join("spec.json");
        let mut load = JournalLoad::default();
        let mut need_spec = true;
        if spec_path.exists() {
            let text = fs::read_to_string(&spec_path).map_err(|e| io_err(&spec_path, &e))?;
            match serde_json::from_str::<SpecDoc>(&text) {
                Ok(doc) => {
                    if doc.version > JOURNAL_VERSION {
                        // A newer tool's journal: refusing is the only
                        // safe answer (we cannot judge its records).
                        return Err(corrupt(
                            &spec_path,
                            format!("journal version {} (expected {JOURNAL_VERSION})", doc.version),
                        ));
                    }
                    if doc.spec_hash != spec_hash
                        || doc.cells != spec.cells()
                        || doc.shard_size != spec.shard_size
                    {
                        return Err(JournalError::SpecMismatch {
                            path: spec_path,
                            expected: spec_hash,
                            found: doc.spec_hash,
                        });
                    }
                    need_spec = false;
                }
                Err(e) => {
                    // An unparsable identity record (torn or corrupted).
                    // Each shard record still pins the spec hash it was
                    // written for, so identity is re-checked per record;
                    // demote and rewrite the identity.
                    demote(&spec_path, &corrupt(&spec_path, e.to_string()));
                    load.recovered += 1;
                }
            }
        }
        if need_spec {
            let doc = SpecDoc {
                version: JOURNAL_VERSION,
                spec_hash,
                workload: spec.workload.clone(),
                scale: spec.scale.clone(),
                limit: spec.limit,
                cells: spec.cells(),
                shard_size: spec.shard_size,
                axes: spec.axes.canonical(),
            };
            let text =
                serde_json::to_string(&doc).map_err(|e| corrupt(&spec_path, e.to_string()))?;
            write_atomic(&spec_path, &text)?;
        }

        // Pass 1: inventory the directory, reaping unpublished temps.
        let mut shard_files: Vec<(u64, PathBuf)> = Vec::new();
        let mut quarantine_files: Vec<(u64, PathBuf)> = Vec::new();
        let entries = fs::read_dir(dir).map_err(|e| io_err(dir, &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(dir, &e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.contains(".tmp-") {
                // A writer died mid-write (or pre-rename); the record was
                // never published, so the stray is safe to reap.
                let _ = fs::remove_file(entry.path());
                continue;
            }
            let numbered = |prefix: &str| {
                name.strip_prefix(prefix)
                    .and_then(|s| s.strip_suffix(".json"))
                    .and_then(|num| num.parse::<u64>().ok())
            };
            if let Some(shard) = numbered("shard-") {
                shard_files.push((shard, entry.path()));
            } else if let Some(cell) = numbered("quarantine-") {
                quarantine_files.push((cell, entry.path()));
            }
        }

        // Pass 2: quarantine records first — shard validation needs them
        // to judge row gaps.
        for (cell, path) in quarantine_files {
            match Self::load_quarantine(&path, spec, spec_hash, cell) {
                Ok(rec) => {
                    load.quarantined.insert(cell, rec);
                }
                Err(e @ JournalError::Io { .. }) => return Err(e),
                Err(e) => {
                    demote(&path, &e);
                    load.recovered += 1;
                }
            }
        }

        // Pass 3: shard records, validated against the quarantine set.
        for (shard, path) in shard_files {
            match Self::load_shard(&path, spec, spec_hash, shard, &load.quarantined) {
                Ok(rows) => {
                    load.shards.insert(shard, rows);
                }
                Err(e @ JournalError::Io { .. }) => return Err(e),
                Err(e) => {
                    demote(&path, &e);
                    load.recovered += 1;
                }
            }
        }

        // A journaled row wins over a stale quarantine record: drop the
        // record (and its file) so a cell that later succeeded is never
        // reported as lost coverage.
        for rows in load.shards.values() {
            for row in rows {
                if load.quarantined.remove(&row.cell).is_some() {
                    let _ = fs::remove_file(Self::quarantine_path(dir, row.cell));
                }
            }
        }
        Ok((Journal { dir: dir.to_path_buf(), spec_hash }, load))
    }

    fn quarantine_path(dir: &Path, cell: u64) -> PathBuf {
        dir.join(format!("quarantine-{cell:06}.json"))
    }

    /// Loads and validates one quarantine record.
    fn load_quarantine(
        path: &Path,
        spec: &GridSpec,
        spec_hash: u64,
        cell: u64,
    ) -> Result<QuarantineRecord, JournalError> {
        let text = fs::read_to_string(path).map_err(|e| io_err(path, &e))?;
        let doc: QuarantineDoc =
            serde_json::from_str(&text).map_err(|e| corrupt(path, e.to_string()))?;
        if doc.spec_hash != spec_hash {
            return Err(JournalError::SpecMismatch {
                path: path.to_path_buf(),
                expected: spec_hash,
                found: doc.spec_hash,
            });
        }
        if doc.cell != cell {
            return Err(corrupt(
                path,
                format!("file names cell {cell} but records cell {}", doc.cell),
            ));
        }
        if cell >= spec.cells() {
            return Err(corrupt(path, format!("quarantined cell {cell} out of range")));
        }
        Ok(QuarantineRecord {
            cell: doc.cell,
            id: doc.id,
            kind: doc.kind,
            reason: doc.reason,
            attempts: doc.attempts,
        })
    }

    /// Loads and validates one shard record. Rows must be strictly
    /// increasing within the shard's cell range; a missing cell is
    /// accepted exactly when `quarantined` covers it.
    fn load_shard(
        path: &Path,
        spec: &GridSpec,
        spec_hash: u64,
        shard: u64,
        quarantined: &BTreeMap<u64, QuarantineRecord>,
    ) -> Result<Vec<CellRow>, JournalError> {
        let text = fs::read_to_string(path).map_err(|e| io_err(path, &e))?;
        let rec: ShardRecord =
            serde_json::from_str(&text).map_err(|e| corrupt(path, e.to_string()))?;
        if rec.spec_hash != spec_hash {
            return Err(JournalError::SpecMismatch {
                path: path.to_path_buf(),
                expected: spec_hash,
                found: rec.spec_hash,
            });
        }
        if rec.shard != shard {
            return Err(corrupt(
                path,
                format!("file names shard {shard} but records shard {}", rec.shard),
            ));
        }
        let Some((start, end)) = spec.shard_range(shard) else {
            return Err(corrupt(path, format!("shard {shard} out of range")));
        };
        if (rec.start, rec.end) != (start, end) {
            return Err(corrupt(
                path,
                format!(
                    "shard {shard} covers cells {}..{} but the spec says {start}..{end}",
                    rec.start, rec.end
                ),
            ));
        }
        let mut expect = start;
        for row in &rec.rows {
            if row.cell < expect || row.cell >= end {
                return Err(corrupt(
                    path,
                    format!(
                        "row for cell {} is out of order or range (expected ≥ {expect}, < {end})",
                        row.cell
                    ),
                ));
            }
            for missing in expect..row.cell {
                if !quarantined.contains_key(&missing) {
                    return Err(corrupt(
                        path,
                        format!(
                            "shard {shard} has no row for cell {missing} \
                             and no quarantine record covers it"
                        ),
                    ));
                }
            }
            expect = row.cell + 1;
        }
        for missing in expect..end {
            if !quarantined.contains_key(&missing) {
                return Err(corrupt(
                    path,
                    format!(
                        "shard {shard} has no row for cell {missing} \
                         and no quarantine record covers it"
                    ),
                ));
            }
        }
        check_finite(&rec.rows)
            .map_err(|e| corrupt(path, format!("journaled row is non-finite: {e}")))?;
        Ok(rec.rows)
    }

    /// Atomically publishes one completed shard's rows. Rows may omit
    /// quarantined cells; [`Journal::open`] validates gaps against the
    /// quarantine records published alongside.
    ///
    /// # Errors
    ///
    /// [`JournalError::NonFinite`] when a row cannot round-trip,
    /// [`JournalError::Io`] on filesystem failure.
    pub fn record_shard(
        &self,
        shard: u64,
        start: u64,
        end: u64,
        rows: &[CellRow],
    ) -> Result<(), JournalError> {
        check_finite(rows)?;
        let rec = ShardRecord { spec_hash: self.spec_hash, shard, start, end, rows: rows.to_vec() };
        let path = self.dir.join(format!("shard-{shard:06}.json"));
        let text = serde_json::to_string(&rec).map_err(|e| corrupt(&path, e.to_string()))?;
        perfclone_obs::instant!("journal.write.shard");
        write_atomic(&path, &text)
    }

    /// Atomically publishes one quarantined cell's record.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on filesystem failure.
    pub fn record_quarantine(&self, rec: &QuarantineRecord) -> Result<(), JournalError> {
        let doc = QuarantineDoc {
            spec_hash: self.spec_hash,
            cell: rec.cell,
            id: rec.id.clone(),
            kind: rec.kind.clone(),
            reason: rec.reason.clone(),
            attempts: rec.attempts,
        };
        let path = Self::quarantine_path(&self.dir, rec.cell);
        let text = serde_json::to_string(&doc).map_err(|e| corrupt(&path, e.to_string()))?;
        perfclone_obs::instant!("journal.write.quarantine");
        write_atomic(&path, &text)
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}
