//! Append-only on-disk journal for sharded sweeps.
//!
//! A journal is a directory holding one `spec.json` (the grid's identity:
//! spec hash, cell count, shard size) plus one `shard-NNNNNN.json` per
//! completed shard, each carrying that shard's metric rows. A killed
//! sweep resumes by reloading the directory: shards with a record on disk
//! are *skipped* and their journaled rows merged verbatim, which is what
//! makes resume bit-identical — the resumed run never recomputes (and so
//! can never perturb) a completed shard.
//!
//! # Crash safety
//!
//! Every file is written to a `<name>.tmp-<pid>` sibling and `rename`d
//! into place, so a shard record either exists whole or not at all; a
//! `SIGKILL` mid-write leaves only a stray temp file, which
//! [`Journal::open`] reaps on the next resume. Records are additionally
//! validated on load (spec hash, shard range, row count and order, metric
//! finiteness) and rejected with a typed [`JournalError`] rather than
//! poisoning the merged result set.
//!
//! # Bit-identical resume and floats
//!
//! Metric rows hold `f64`s, serialized with the shortest representation
//! that round-trips exactly for finite values. Non-finite metrics would
//! *not* round-trip (JSON has no NaN/Inf), so
//! [`Journal::record_shard`] refuses them with
//! [`JournalError::NonFinite`] instead of silently breaking the
//! resume-equals-rerun contract.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::grid::{CellRow, GridSpec};

/// Current journal format version (recorded in `spec.json`).
pub const JOURNAL_VERSION: u32 = 1;

/// Typed error for journal I/O and validation.
#[derive(Clone, Debug, PartialEq)]
pub enum JournalError {
    /// A filesystem operation failed.
    Io {
        /// The path the operation targeted.
        path: PathBuf,
        /// The OS error text.
        detail: String,
    },
    /// The journal directory belongs to a different grid spec — resuming
    /// would merge rows from a different design space.
    SpecMismatch {
        /// The journal's `spec.json`.
        path: PathBuf,
        /// The running sweep's spec hash.
        expected: u64,
        /// The spec hash found on disk.
        found: u64,
    },
    /// A journal file failed structural validation.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What failed to validate.
        detail: String,
    },
    /// A metric row holds a non-finite value, which cannot round-trip
    /// through the journal bit-identically.
    NonFinite {
        /// The cell whose row was rejected.
        cell: u64,
        /// The offending metric.
        metric: &'static str,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, detail } => {
                write!(f, "journal I/O on '{}' failed: {detail}", path.display())
            }
            JournalError::SpecMismatch { path, expected, found } => write!(
                f,
                "journal '{}' was written for grid spec {found:#018x}, \
                 but this sweep is grid spec {expected:#018x}",
                path.display()
            ),
            JournalError::Corrupt { path, detail } => {
                write!(f, "journal file '{}' is corrupt: {detail}", path.display())
            }
            JournalError::NonFinite { cell, metric } => {
                write!(f, "cell {cell} produced a non-finite {metric}; refusing to journal it")
            }
        }
    }
}

impl std::error::Error for JournalError {}

fn io_err(path: &Path, e: &io::Error) -> JournalError {
    JournalError::Io { path: path.to_path_buf(), detail: e.to_string() }
}

fn corrupt(path: &Path, detail: impl Into<String>) -> JournalError {
    JournalError::Corrupt { path: path.to_path_buf(), detail: detail.into() }
}

/// `spec.json`: the journal directory's identity record.
#[derive(Serialize, Deserialize)]
struct SpecDoc {
    version: u32,
    spec_hash: u64,
    workload: String,
    scale: String,
    limit: u64,
    cells: u64,
    shard_size: u64,
    axes: String,
}

/// One completed shard's on-disk record.
#[derive(Serialize, Deserialize)]
struct ShardRecord {
    spec_hash: u64,
    shard: u64,
    start: u64,
    end: u64,
    rows: Vec<CellRow>,
}

/// Removes `path` on drop unless disarmed.
struct TempGuard {
    path: PathBuf,
    armed: bool,
}

impl TempGuard {
    fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for TempGuard {
    fn drop(&mut self) {
        if self.armed {
            let _ = fs::remove_file(&self.path);
        }
    }
}

/// Atomically writes `text` to `path` (temp sibling + rename); the temp
/// file is removed if anything fails before the rename.
fn write_atomic(path: &Path, text: &str) -> Result<(), JournalError> {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(format!(".tmp-{}", std::process::id()));
    let tmp = path.with_file_name(name);
    fs::write(&tmp, text).map_err(|e| io_err(&tmp, &e))?;
    let guard = TempGuard { path: tmp.clone(), armed: true };
    fs::rename(&tmp, path).map_err(|e| io_err(path, &e))?;
    guard.disarm();
    Ok(())
}

fn check_finite(rows: &[CellRow]) -> Result<(), JournalError> {
    for row in rows {
        for (metric, value) in [("ipc", row.ipc), ("power", row.power), ("l1d_mpi", row.l1d_mpi)] {
            if !value.is_finite() {
                return Err(JournalError::NonFinite { cell: row.cell, metric });
            }
        }
    }
    Ok(())
}

/// An open journal directory bound to one grid spec. Created by
/// [`Journal::open`], which also returns the rows already journaled.
pub struct Journal {
    dir: PathBuf,
    spec_hash: u64,
}

impl Journal {
    /// Opens (creating if necessary) the journal at `dir` for `spec`,
    /// reaping stray temp files and loading every valid shard record.
    ///
    /// Returns the journal handle plus the completed shards' rows, keyed
    /// by shard index.
    ///
    /// # Errors
    ///
    /// [`JournalError::SpecMismatch`] when the directory belongs to a
    /// different grid, [`JournalError::Corrupt`] when a record fails
    /// validation, [`JournalError::Io`] on filesystem failure.
    pub fn open(
        dir: &Path,
        spec: &GridSpec,
    ) -> Result<(Journal, BTreeMap<u64, Vec<CellRow>>), JournalError> {
        fs::create_dir_all(dir).map_err(|e| io_err(dir, &e))?;
        let spec_hash = spec.spec_hash();
        let spec_path = dir.join("spec.json");
        if spec_path.exists() {
            let text = fs::read_to_string(&spec_path).map_err(|e| io_err(&spec_path, &e))?;
            let doc: SpecDoc =
                serde_json::from_str(&text).map_err(|e| corrupt(&spec_path, e.to_string()))?;
            if doc.version != JOURNAL_VERSION {
                return Err(corrupt(
                    &spec_path,
                    format!("journal version {} (expected {JOURNAL_VERSION})", doc.version),
                ));
            }
            if doc.spec_hash != spec_hash
                || doc.cells != spec.cells()
                || doc.shard_size != spec.shard_size
            {
                return Err(JournalError::SpecMismatch {
                    path: spec_path,
                    expected: spec_hash,
                    found: doc.spec_hash,
                });
            }
        } else {
            let doc = SpecDoc {
                version: JOURNAL_VERSION,
                spec_hash,
                workload: spec.workload.clone(),
                scale: spec.scale.clone(),
                limit: spec.limit,
                cells: spec.cells(),
                shard_size: spec.shard_size,
                axes: spec.axes.canonical(),
            };
            let text =
                serde_json::to_string(&doc).map_err(|e| corrupt(&spec_path, e.to_string()))?;
            write_atomic(&spec_path, &text)?;
        }

        let mut done = BTreeMap::new();
        let entries = fs::read_dir(dir).map_err(|e| io_err(dir, &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(dir, &e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.contains(".tmp-") {
                // A writer died mid-write (or pre-rename); the record was
                // never published, so the stray is safe to reap.
                let _ = fs::remove_file(entry.path());
                continue;
            }
            let Some(num) = name.strip_prefix("shard-").and_then(|s| s.strip_suffix(".json"))
            else {
                continue;
            };
            let path = entry.path();
            let shard: u64 = num
                .parse()
                .map_err(|_| corrupt(&path, format!("unparsable shard number '{num}'")))?;
            let rows = Self::load_shard(&path, spec, spec_hash, shard)?;
            done.insert(shard, rows);
        }
        Ok((Journal { dir: dir.to_path_buf(), spec_hash }, done))
    }

    /// Loads and validates one shard record.
    fn load_shard(
        path: &Path,
        spec: &GridSpec,
        spec_hash: u64,
        shard: u64,
    ) -> Result<Vec<CellRow>, JournalError> {
        let text = fs::read_to_string(path).map_err(|e| io_err(path, &e))?;
        let rec: ShardRecord =
            serde_json::from_str(&text).map_err(|e| corrupt(path, e.to_string()))?;
        if rec.spec_hash != spec_hash {
            return Err(JournalError::SpecMismatch {
                path: path.to_path_buf(),
                expected: spec_hash,
                found: rec.spec_hash,
            });
        }
        if rec.shard != shard {
            return Err(corrupt(
                path,
                format!("file names shard {shard} but records shard {}", rec.shard),
            ));
        }
        let Some((start, end)) = spec.shard_range(shard) else {
            return Err(corrupt(path, format!("shard {shard} out of range")));
        };
        if (rec.start, rec.end) != (start, end) {
            return Err(corrupt(
                path,
                format!(
                    "shard {shard} covers cells {}..{} but the spec says {start}..{end}",
                    rec.start, rec.end
                ),
            ));
        }
        if rec.rows.len() as u64 != end - start {
            return Err(corrupt(
                path,
                format!("shard {shard} has {} rows, expected {}", rec.rows.len(), end - start),
            ));
        }
        for (i, row) in rec.rows.iter().enumerate() {
            if row.cell != start + i as u64 {
                return Err(corrupt(
                    path,
                    format!(
                        "row {i} of shard {shard} is cell {}, expected {}",
                        row.cell,
                        start + i as u64
                    ),
                ));
            }
        }
        check_finite(&rec.rows)
            .map_err(|e| corrupt(path, format!("journaled row is non-finite: {e}")))?;
        Ok(rec.rows)
    }

    /// Atomically publishes one completed shard's rows.
    ///
    /// # Errors
    ///
    /// [`JournalError::NonFinite`] when a row cannot round-trip,
    /// [`JournalError::Io`] on filesystem failure.
    pub fn record_shard(
        &self,
        shard: u64,
        start: u64,
        end: u64,
        rows: &[CellRow],
    ) -> Result<(), JournalError> {
        check_finite(rows)?;
        let rec = ShardRecord { spec_hash: self.spec_hash, shard, start, end, rows: rows.to_vec() };
        let path = self.dir.join(format!("shard-{shard:06}.json"));
        let text = serde_json::to_string(&rec).map_err(|e| corrupt(&path, e.to_string()))?;
        write_atomic(&path, &text)
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}
