//! Workload suites: EEMBC-style aggregation of per-benchmark results into
//! a single mark, for both real programs and their clones.
//!
//! The paper's motivation (§1) is exactly this setting: embedded vendors
//! benchmark processors with suite-level marks (EEMBC's AutoMark,
//! TeleMark, …), but want the marks to reflect *their* applications. A
//! [`Suite`] bundles programs with weights; [`suite_mark`] computes the
//! geometric-mean IPC mark of a suite on a machine, so a cloned suite can
//! stand in for a proprietary one.

use perfclone_isa::Program;
use perfclone_uarch::MachineConfig;
use rayon::prelude::*;

use crate::{derive_cell_seed, run_timing, Cloner, SynthesisParams};

/// A named, weighted collection of programs.
#[derive(Debug)]
pub struct Suite {
    name: String,
    entries: Vec<(Program, f64)>,
}

impl Suite {
    /// Creates an empty suite.
    pub fn new(name: impl Into<String>) -> Suite {
        Suite { name: name.into(), entries: Vec::new() }
    }

    /// The suite's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a program with the given weight (weights need not sum to 1).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not positive.
    pub fn push(&mut self, program: Program, weight: f64) {
        assert!(weight > 0.0, "suite weights must be positive");
        self.entries.push((program, weight));
    }

    /// Number of programs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the suite is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The programs and weights.
    pub fn entries(&self) -> impl Iterator<Item = (&Program, f64)> {
        self.entries.iter().map(|(p, w)| (p, *w))
    }

    /// Builds the suite of clones: every member profiled and synthesized
    /// with `cloner`, weights preserved.
    pub fn clone_suite(&self, cloner: &Cloner) -> Suite {
        let mut out = Suite::new(format!("{}-clone", self.name));
        for (program, weight) in self.entries() {
            let outcome = cloner.clone_program(program, u64::MAX);
            out.push(outcome.clone, weight);
        }
        out
    }

    /// Parallel suite cloning: members fan over the ambient thread pool,
    /// each synthesized with a per-member seed derived from `root_seed`
    /// and the member's (name, index) cell via
    /// [`derive_cell_seed`]. Because the seed depends only on the cell —
    /// never on which thread ran it — the cloned suite is identical at
    /// any thread count, and two runs with the same root seed produce the
    /// same clones.
    pub fn clone_suite_par(&self, cloner: &Cloner, root_seed: u64) -> Suite {
        let cells: Vec<(usize, &Program, f64)> =
            self.entries.iter().enumerate().map(|(i, (p, w))| (i, p, *w)).collect();
        let cloned: Vec<(Program, f64)> = cells
            .par_iter()
            .map(|&(i, program, weight)| {
                let params = SynthesisParams {
                    seed: derive_cell_seed(root_seed, program.name(), i as u64),
                    ..*cloner.params()
                };
                let outcome = Cloner::with_params(params).clone_program(program, u64::MAX);
                (outcome.clone, weight)
            })
            .collect();
        let mut out = Suite::new(format!("{}-clone", self.name));
        for (program, weight) in cloned {
            out.push(program, weight);
        }
        out
    }
}

/// A suite mark: weighted geometric mean of per-program IPC (the EEMBC
/// aggregation), plus the weighted arithmetic mean power.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SuiteMark {
    /// Weighted geometric-mean IPC.
    pub ipc_mark: f64,
    /// Weighted arithmetic-mean power.
    pub power_mark: f64,
}

/// Computes the suite mark of `suite` on `config`.
///
/// # Panics
///
/// Panics if the suite is empty.
pub fn suite_mark(suite: &Suite, config: &MachineConfig, limit: u64) -> SuiteMark {
    assert!(!suite.is_empty(), "cannot mark an empty suite");
    let mut log_sum = 0.0;
    let mut weight_sum = 0.0;
    let mut power_sum = 0.0;
    for (program, weight) in suite.entries() {
        let t = run_timing(program, config, limit);
        log_sum += weight * t.report.ipc().ln();
        power_sum += weight * t.power.average_power;
        weight_sum += weight;
    }
    SuiteMark { ipc_mark: (log_sum / weight_sum).exp(), power_mark: power_sum / weight_sum }
}

/// Parallel [`suite_mark`]: per-member timing runs fan over the ambient
/// thread pool; the weighted reduction happens serially in member order,
/// so the mark is bit-identical to the serial one at any thread count.
///
/// # Panics
///
/// Panics if the suite is empty.
pub fn suite_mark_par(suite: &Suite, config: &MachineConfig, limit: u64) -> SuiteMark {
    assert!(!suite.is_empty(), "cannot mark an empty suite");
    let cells: Vec<(&Program, f64)> = suite.entries().collect();
    let timed: Vec<(f64, f64)> = cells
        .par_iter()
        .map(|&(program, weight)| {
            let t = run_timing(program, config, limit);
            (weight * t.report.ipc().ln(), weight * t.power.average_power)
        })
        .collect();
    let mut log_sum = 0.0;
    let mut power_sum = 0.0;
    let mut weight_sum = 0.0;
    for ((log_w, power_w), (_, weight)) in timed.iter().zip(&cells) {
        log_sum += log_w;
        power_sum += power_w;
        weight_sum += weight;
    }
    SuiteMark { ipc_mark: (log_sum / weight_sum).exp(), power_mark: power_sum / weight_sum }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{base_config, SynthesisParams};
    use perfclone_kernels::{by_name, Scale};

    fn program(name: &str) -> Program {
        by_name(name).expect("kernel exists").build(Scale::Tiny).program
    }

    #[test]
    fn suite_mark_is_between_member_ipcs() {
        let mut s = Suite::new("auto");
        s.push(program("bitcount"), 1.0);
        s.push(program("qsort"), 1.0);
        let mark = suite_mark(&s, &base_config(), u64::MAX);
        assert!(mark.ipc_mark > 0.3 && mark.ipc_mark <= 1.0);
        assert!(mark.power_mark > 0.0);
    }

    #[test]
    fn cloned_suite_mark_tracks_real_mark() {
        let mut s = Suite::new("telecom");
        s.push(program("crc32"), 2.0);
        s.push(program("adpcm_enc"), 1.0);
        let cloner = Cloner::with_params(SynthesisParams {
            target_dynamic: 60_000,
            ..SynthesisParams::default()
        });
        let clones = s.clone_suite(&cloner);
        assert_eq!(clones.len(), s.len());
        assert_eq!(clones.name(), "telecom-clone");
        let real = suite_mark(&s, &base_config(), u64::MAX);
        let synth = suite_mark(&clones, &base_config(), u64::MAX);
        let err = ((synth.ipc_mark - real.ipc_mark) / real.ipc_mark).abs();
        assert!(err < 0.3, "suite mark error {err:.3}");
    }

    #[test]
    fn parallel_mark_is_bit_identical_to_serial() {
        let mut s = Suite::new("auto");
        s.push(program("bitcount"), 1.0);
        s.push(program("qsort"), 2.5);
        s.push(program("crc32"), 0.5);
        let serial = suite_mark(&s, &base_config(), 60_000);
        for jobs in [1usize, 4] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(jobs).build().expect("pool");
            let par = pool.install(|| suite_mark_par(&s, &base_config(), 60_000));
            assert_eq!(serial.ipc_mark.to_bits(), par.ipc_mark.to_bits(), "jobs = {jobs}");
            assert_eq!(serial.power_mark.to_bits(), par.power_mark.to_bits(), "jobs = {jobs}");
        }
    }

    #[test]
    fn parallel_cloning_is_deterministic_across_thread_counts() {
        let mut s = Suite::new("telecom");
        s.push(program("crc32"), 2.0);
        s.push(program("adpcm_enc"), 1.0);
        let cloner = Cloner::with_params(SynthesisParams {
            target_dynamic: 40_000,
            ..SynthesisParams::default()
        });
        let root = 0xFEED_F00D;
        let render = |suite: &Suite| -> Vec<String> {
            suite.entries().map(|(p, w)| format!("{w} {p:?}")).collect()
        };
        let narrow = rayon::ThreadPoolBuilder::new().num_threads(1).build().expect("pool");
        let wide = rayon::ThreadPoolBuilder::new().num_threads(4).build().expect("pool");
        let a = narrow.install(|| s.clone_suite_par(&cloner, root));
        let b = wide.install(|| s.clone_suite_par(&cloner, root));
        let c = wide.install(|| s.clone_suite_par(&cloner, root));
        assert_eq!(render(&a), render(&b), "1 thread vs 4 threads");
        assert_eq!(render(&b), render(&c), "same root seed, two runs");
        // A different root seed must produce different clones.
        let d = wide.install(|| s.clone_suite_par(&cloner, root + 1));
        assert_ne!(render(&a), render(&d));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        let mut s = Suite::new("bad");
        s.push(program("crc32"), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_suite_rejected() {
        let s = Suite::new("none");
        let _ = suite_mark(&s, &base_config(), 1000);
    }
}
