//! Workload suites: EEMBC-style aggregation of per-benchmark results into
//! a single mark, for both real programs and their clones.
//!
//! The paper's motivation (§1) is exactly this setting: embedded vendors
//! benchmark processors with suite-level marks (EEMBC's AutoMark,
//! TeleMark, …), but want the marks to reflect *their* applications. A
//! [`Suite`] bundles programs with weights; [`suite_mark`] computes the
//! geometric-mean IPC mark of a suite on a machine, so a cloned suite can
//! stand in for a proprietary one.

use perfclone_isa::Program;
use perfclone_uarch::MachineConfig;
use perfclone_validate::Gate;
use rayon::prelude::*;

use crate::{derive_cell_seed, run_timing, Cloner, Error, SynthesisParams};

/// A named, weighted collection of programs.
#[derive(Debug)]
pub struct Suite {
    name: String,
    entries: Vec<(Program, f64)>,
}

impl Suite {
    /// Creates an empty suite.
    pub fn new(name: impl Into<String>) -> Suite {
        Suite { name: name.into(), entries: Vec::new() }
    }

    /// The suite's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a program with the given weight (weights need not sum to 1).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NonPositiveWeight`] if `weight` is zero, negative,
    /// or NaN; the suite is left unchanged.
    pub fn push(&mut self, program: Program, weight: f64) -> Result<(), Error> {
        // partial_cmp: NaN is incomparable (None), so it is rejected too.
        if !matches!(weight.partial_cmp(&0.0), Some(std::cmp::Ordering::Greater)) {
            return Err(Error::NonPositiveWeight { name: program.name().to_string(), weight });
        }
        self.entries.push((program, weight));
        Ok(())
    }

    /// Number of programs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the suite is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The programs and weights.
    pub fn entries(&self) -> impl Iterator<Item = (&Program, f64)> {
        self.entries.iter().map(|(p, w)| (p, *w))
    }

    /// Builds the suite of clones: every member profiled and synthesized
    /// with `cloner`, weights preserved. Each clone must pass the default
    /// fidelity [`Gate`] before it is admitted to the cloned suite.
    ///
    /// # Errors
    ///
    /// Everything [`Cloner::clone_program`] returns, plus
    /// [`Error::Validate`] when a member's clone fails the gate (the
    /// wrapped report names every violated attribute).
    pub fn clone_suite(&self, cloner: &Cloner) -> Result<Suite, Error> {
        self.clone_suite_with(cloner, &Gate::default())
    }

    /// [`clone_suite`](Suite::clone_suite) under an explicit fidelity
    /// gate (e.g. loosened tolerances for deliberately degraded clones).
    pub fn clone_suite_with(&self, cloner: &Cloner, gate: &Gate) -> Result<Suite, Error> {
        let mut out = Suite::new(format!("{}-clone", self.name));
        for (program, weight) in self.entries() {
            let (outcome, _report) = cloner.clone_validated(program, u64::MAX, gate)?;
            out.push(outcome.clone, weight)?;
        }
        Ok(out)
    }

    /// Parallel suite cloning: members fan over the ambient thread pool,
    /// each synthesized with a per-member seed derived from `root_seed`
    /// and the member's (name, index) cell via
    /// [`derive_cell_seed`]. Because the seed depends only on the cell —
    /// never on which thread ran it — the cloned suite is identical at
    /// any thread count, and two runs with the same root seed produce the
    /// same clones. Every clone must pass `gate`.
    ///
    /// # Errors
    ///
    /// Same as [`clone_suite`](Suite::clone_suite); when several members
    /// fail, the reported error is the first in member order (independent
    /// of thread schedule).
    pub fn clone_suite_par(
        &self,
        cloner: &Cloner,
        root_seed: u64,
        gate: &Gate,
    ) -> Result<Suite, Error> {
        let cells: Vec<(usize, &Program, f64)> =
            self.entries.iter().enumerate().map(|(i, (p, w))| (i, p, *w)).collect();
        let cloned: Vec<Result<(Program, f64), Error>> = cells
            .par_iter()
            .map(|&(i, program, weight)| {
                let params = SynthesisParams {
                    seed: derive_cell_seed(root_seed, program.name(), i as u64),
                    ..*cloner.params()
                };
                let (outcome, _report) =
                    Cloner::with_params(params).clone_validated(program, u64::MAX, gate)?;
                Ok((outcome.clone, weight))
            })
            .collect();
        let mut out = Suite::new(format!("{}-clone", self.name));
        for entry in cloned {
            let (program, weight) = entry?;
            out.push(program, weight)?;
        }
        Ok(out)
    }
}

/// A suite mark: weighted geometric mean of per-program IPC (the EEMBC
/// aggregation), plus the weighted arithmetic mean power.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SuiteMark {
    /// Weighted geometric-mean IPC.
    pub ipc_mark: f64,
    /// Weighted arithmetic-mean power.
    pub power_mark: f64,
}

/// Computes the suite mark of `suite` on `config`.
///
/// # Errors
///
/// Returns [`Error::EmptySuite`] for an empty suite and [`Error::Sim`] if
/// a member faults during its timing run.
pub fn suite_mark(suite: &Suite, config: &MachineConfig, limit: u64) -> Result<SuiteMark, Error> {
    if suite.is_empty() {
        return Err(Error::EmptySuite { name: suite.name().to_string() });
    }
    let mut log_sum = 0.0;
    let mut weight_sum = 0.0;
    let mut power_sum = 0.0;
    for (program, weight) in suite.entries() {
        let t = run_timing(program, config, limit)?;
        log_sum += weight * t.report.ipc().ln();
        power_sum += weight * t.power.average_power;
        weight_sum += weight;
    }
    Ok(SuiteMark { ipc_mark: (log_sum / weight_sum).exp(), power_mark: power_sum / weight_sum })
}

/// Parallel [`suite_mark`]: per-member timing runs fan over the ambient
/// thread pool; the weighted reduction happens serially in member order,
/// so the mark is bit-identical to the serial one at any thread count.
///
/// # Errors
///
/// Same as [`suite_mark`]; when several members fault, the reported error
/// is the first in member order (independent of thread schedule).
pub fn suite_mark_par(
    suite: &Suite,
    config: &MachineConfig,
    limit: u64,
) -> Result<SuiteMark, Error> {
    if suite.is_empty() {
        return Err(Error::EmptySuite { name: suite.name().to_string() });
    }
    let cells: Vec<(&Program, f64)> = suite.entries().collect();
    let timed: Vec<Result<(f64, f64), Error>> = cells
        .par_iter()
        .map(|&(program, weight)| {
            let t = run_timing(program, config, limit)?;
            Ok((weight * t.report.ipc().ln(), weight * t.power.average_power))
        })
        .collect();
    let mut log_sum = 0.0;
    let mut power_sum = 0.0;
    let mut weight_sum = 0.0;
    for (cell, (_, weight)) in timed.into_iter().zip(&cells) {
        let (log_w, power_w) = cell?;
        log_sum += log_w;
        power_sum += power_w;
        weight_sum += weight;
    }
    Ok(SuiteMark { ipc_mark: (log_sum / weight_sum).exp(), power_mark: power_sum / weight_sum })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{base_config, SynthesisParams};
    use perfclone_kernels::{by_name, Scale};

    fn program(name: &str) -> Program {
        by_name(name).expect("kernel exists").build(Scale::Tiny).program
    }

    #[test]
    fn suite_mark_is_between_member_ipcs() {
        let mut s = Suite::new("auto");
        s.push(program("bitcount"), 1.0).unwrap();
        s.push(program("qsort"), 1.0).unwrap();
        let mark = suite_mark(&s, &base_config(), u64::MAX).unwrap();
        assert!(mark.ipc_mark > 0.3 && mark.ipc_mark <= 1.0);
        assert!(mark.power_mark > 0.0);
    }

    #[test]
    fn cloned_suite_mark_tracks_real_mark() {
        let mut s = Suite::new("telecom");
        s.push(program("crc32"), 2.0).unwrap();
        s.push(program("adpcm_enc"), 1.0).unwrap();
        let cloner = Cloner::with_params(SynthesisParams {
            target_dynamic: 60_000,
            ..SynthesisParams::default()
        });
        let clones = s.clone_suite(&cloner).unwrap();
        assert_eq!(clones.len(), s.len());
        assert_eq!(clones.name(), "telecom-clone");
        let real = suite_mark(&s, &base_config(), u64::MAX).unwrap();
        let synth = suite_mark(&clones, &base_config(), u64::MAX).unwrap();
        let err = ((synth.ipc_mark - real.ipc_mark) / real.ipc_mark).abs();
        assert!(err < 0.3, "suite mark error {err:.3}");
    }

    #[test]
    fn parallel_mark_is_bit_identical_to_serial() {
        let mut s = Suite::new("auto");
        s.push(program("bitcount"), 1.0).unwrap();
        s.push(program("qsort"), 2.5).unwrap();
        s.push(program("crc32"), 0.5).unwrap();
        let serial = suite_mark(&s, &base_config(), 60_000).unwrap();
        for jobs in [1usize, 4] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(jobs).build().expect("pool");
            let par = pool.install(|| suite_mark_par(&s, &base_config(), 60_000)).unwrap();
            assert_eq!(serial.ipc_mark.to_bits(), par.ipc_mark.to_bits(), "jobs = {jobs}");
            assert_eq!(serial.power_mark.to_bits(), par.power_mark.to_bits(), "jobs = {jobs}");
        }
    }

    #[test]
    fn parallel_cloning_is_deterministic_across_thread_counts() {
        let mut s = Suite::new("telecom");
        s.push(program("crc32"), 2.0).unwrap();
        s.push(program("adpcm_enc"), 1.0).unwrap();
        let cloner = Cloner::with_params(SynthesisParams {
            target_dynamic: 40_000,
            ..SynthesisParams::default()
        });
        let gate = Gate::default();
        let root = 0xFEED_F00D;
        let render = |suite: &Suite| -> Vec<String> {
            suite.entries().map(|(p, w)| format!("{w} {p:?}")).collect()
        };
        let narrow = rayon::ThreadPoolBuilder::new().num_threads(1).build().expect("pool");
        let wide = rayon::ThreadPoolBuilder::new().num_threads(4).build().expect("pool");
        let a = narrow.install(|| s.clone_suite_par(&cloner, root, &gate)).unwrap();
        let b = wide.install(|| s.clone_suite_par(&cloner, root, &gate)).unwrap();
        let c = wide.install(|| s.clone_suite_par(&cloner, root, &gate)).unwrap();
        assert_eq!(render(&a), render(&b), "1 thread vs 4 threads");
        assert_eq!(render(&b), render(&c), "same root seed, two runs");
        // A different root seed must produce different clones.
        let d = wide.install(|| s.clone_suite_par(&cloner, root + 1, &gate)).unwrap();
        assert_ne!(render(&a), render(&d));
    }

    #[test]
    fn zero_weight_rejected() {
        let mut s = Suite::new("bad");
        let err = s.push(program("crc32"), 0.0).unwrap_err();
        assert!(
            matches!(err, Error::NonPositiveWeight { ref name, weight } if name == "crc32" && weight == 0.0)
        );
        assert!(s.is_empty(), "rejected member must not be added");
        assert!(s.push(program("crc32"), -1.0).is_err());
        assert!(s.push(program("crc32"), f64::NAN).is_err());
    }

    #[test]
    fn empty_suite_rejected() {
        let s = Suite::new("none");
        let err = suite_mark(&s, &base_config(), 1000).unwrap_err();
        assert!(matches!(err, Error::EmptySuite { ref name } if name == "none"));
        assert!(suite_mark_par(&s, &base_config(), 1000).is_err());
    }
}
