//! # perfclone
//!
//! Performance cloning: profile a (proprietary) application's
//! microarchitecture-independent characteristics and synthesize a benchmark
//! clone with the same performance and power behaviour but entirely
//! different code — a full reproduction of Joshi, Eeckhout, Bell & John,
//! *Performance Cloning: A Technique for Disseminating Proprietary
//! Applications as Benchmarks* (IISWC 2006).
//!
//! This crate is the facade over the workspace: it wires the functional
//! simulator, the workload profiler, the clone synthesizer, the timing
//! pipeline, and the power model into the two flows the paper's Figure 1
//! shows — *clone generation* and *clone validation* — plus the experiment
//! drivers that regenerate every table and figure of the evaluation.
//!
//! ```text
//! proprietary workload ─▶ Profiler ─▶ WorkloadProfile ─▶ Synthesizer ─▶ clone
//!                                                                        │
//!        real hardware / execution-driven simulator  ◀──────────────────┘
//! ```
//!
//! # Quick start
//!
//! ```
//! use perfclone::{Cloner, validate_pair, base_config};
//! use perfclone_kernels::{by_name, Scale};
//!
//! // The "proprietary" application: one of the embedded kernels.
//! let app = by_name("crc32").unwrap().build(Scale::Tiny).program;
//!
//! // Clone it: profile + synthesize. Only microarchitecture-independent
//! // attributes flow into the clone.
//! let cloner = Cloner::new();
//! let outcome = cloner.clone_program(&app, 1_000_000)?;
//!
//! // Validate: run both through the same machine; IPCs should be close.
//! let cmp = validate_pair(&app, &outcome.clone, &base_config(), 1_000_000)?;
//! assert!(cmp.ipc_error() < 0.5);
//! # Ok::<(), perfclone::Error>(())
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
mod error;
pub mod experiments;
pub mod grid;
pub mod journal;
pub mod suite;

pub use cache::{trace_cap, WorkloadCache, WorkloadCacheStats, DEFAULT_TRACE_CAP};
pub use error::{Error, ErrorClass};
pub use grid::{
    env_fault_injector, pareto_frontier, parse_fault_injector, run_grid, run_grid_with, CellId,
    CellRow, FaultInjector, GridOutcome, GridPolicy, GridSpec, ParetoPoint, ShardEvent,
};
pub use journal::{Journal, JournalError, JournalLoad, QuarantineRecord};
pub use perfclone_sim::faultfs;
pub use perfclone_validate::seeds;
pub use seeds::derive_cell_seed;

pub use perfclone_metrics::{mean_abs_pct_error, pearson, rank, relative_error, spearman, Table};
pub use perfclone_power::{estimate_power, PowerReport};
pub use perfclone_profile::{profile_program, ProfileError, WorkloadProfile};
pub use perfclone_sim::{
    reap_stray_spills, PackedRecorder, PackedReplay, PackedTrace, SimError, SpilledTrace,
    TraceError as SpillTraceError, TraceStore,
};
pub use perfclone_synth::{
    emit_c, synthesize, BranchModel, MemoryModel, SynthError, SynthesisParams,
};
pub use perfclone_uarch::{
    base_config, cache_sweep, design_changes, sweep_trace, AddressTrace, CacheConfig, GridAxes,
    MachineConfig, Pipeline, PipelineError, PipelineReport,
};
pub use perfclone_validate::{
    Attribute, AttributeCheck, Fault, FaultPlan, Gate, Tolerance, Tolerances, ValidateError,
    ValidationReport, Verdict,
};

pub use perfclone_isa::{InstrMeta, InstrMetaTable};

use perfclone_isa::Program;
use perfclone_sim::Simulator;

/// The performance-cloning pipeline: profiling plus synthesis under one
/// set of [`SynthesisParams`].
///
/// See the [crate-level example](crate) for the end-to-end flow.
#[derive(Clone, Debug, Default)]
pub struct Cloner {
    params: SynthesisParams,
}

/// The output of [`Cloner::clone_program`]: the disseminable profile and
/// the synthesized clone built from it.
#[derive(Clone, Debug)]
pub struct CloneOutcome {
    /// The microarchitecture-independent workload profile (the only data
    /// that leaves the vendor).
    pub profile: WorkloadProfile,
    /// The synthetic benchmark clone.
    pub clone: Program,
}

impl Cloner {
    /// Creates a cloner with default synthesis parameters.
    pub fn new() -> Cloner {
        Cloner::default()
    }

    /// Creates a cloner with explicit synthesis parameters.
    pub fn with_params(params: SynthesisParams) -> Cloner {
        Cloner { params }
    }

    /// The active synthesis parameters.
    pub fn params(&self) -> &SynthesisParams {
        &self.params
    }

    /// Profiles `program` for up to `limit` instructions and synthesizes
    /// its clone — the full Figure-1 flow.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Profile`] / [`Error::Sim`] if profiling fails and
    /// [`Error::Synth`] if the profile cannot be synthesized from.
    pub fn clone_program(&self, program: &Program, limit: u64) -> Result<CloneOutcome, Error> {
        let profile = profile_program(program, limit)?;
        let clone = synthesize(&profile, &self.params)?;
        Ok(CloneOutcome { profile, clone })
    }

    /// Synthesizes a clone from an already-collected profile — the step a
    /// third party performs after receiving the disseminated profile.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Synth`] when the profile fails structural
    /// validation (a corrupted or truncated dissemination artifact).
    pub fn clone_program_from(&self, profile: &WorkloadProfile) -> Result<Program, Error> {
        Ok(synthesize(profile, &self.params)?)
    }

    /// [`clone_program`](Cloner::clone_program) followed by the fidelity
    /// gate: the clone is re-profiled and compared against the source
    /// profile attribute by attribute, and only a clone whose report has
    /// no failing attribute is returned.
    ///
    /// # Errors
    ///
    /// Everything [`clone_program`](Cloner::clone_program) returns, plus
    /// [`Error::Validate`] with
    /// [`ValidateError::GateFailed`] (carrying the report that names every
    /// violated attribute) when the clone drifts past `gate`'s failure
    /// tolerances.
    pub fn clone_validated(
        &self,
        program: &Program,
        limit: u64,
        gate: &Gate,
    ) -> Result<(CloneOutcome, ValidationReport), Error> {
        let outcome = self.clone_program(program, limit)?;
        let report = gate.accept(&outcome.profile, &outcome.clone)?;
        Ok((outcome, report))
    }
}

/// IPC and power of one program on one machine configuration.
#[derive(Clone, Debug)]
pub struct TimingResult {
    /// The pipeline report (cycles, IPC, cache and predictor statistics).
    pub report: PipelineReport,
    /// The Wattch-style power estimate.
    pub power: PowerReport,
}

/// Runs `program` (up to `limit` instructions) through the timing pipeline
/// under `config` and estimates power.
///
/// # Errors
///
/// Returns [`Error::Sim`] if the program faults while the pipeline is
/// consuming its dynamic trace (the fault is captured mid-stream by
/// [`Simulator::trace`] and surfaced here instead of silently truncating
/// the run).
pub fn run_timing(
    program: &Program,
    config: &MachineConfig,
    limit: u64,
) -> Result<TimingResult, Error> {
    let _span = perfclone_obs::span!("uarch.pipeline.run");
    let mut trace = Simulator::trace(program, limit);
    let report = Pipeline::new(*config).run(&mut trace);
    if let Some(f) = trace.fault() {
        return Err(Error::Sim(f.clone()));
    }
    perfclone_obs::count!("uarch.pipeline.runs", 1);
    perfclone_obs::count!("uarch.pipeline.instrs", report.instrs);
    let power = estimate_power(config, &report);
    Ok(TimingResult { report, power })
}

/// [`run_timing`] with a pipeline cycle budget — the per-cell deadline of
/// supervised sweeps ([`GridPolicy`](grid::GridPolicy)`::cell_deadline`).
///
/// # Errors
///
/// As [`run_timing`], plus [`Error::BudgetExhausted`] (stage
/// `"pipeline"`) when the trace has not drained within `max_cycles` — a
/// permanent failure under the supervisor's
/// [classification](Error::classify), since re-running the same cell
/// re-derives the same cycle count.
pub fn run_timing_budgeted(
    program: &Program,
    config: &MachineConfig,
    limit: u64,
    max_cycles: u64,
) -> Result<TimingResult, Error> {
    let _span = perfclone_obs::span!("uarch.pipeline.run");
    let mut trace = Simulator::trace(program, limit);
    let report = Pipeline::new(*config).run_budgeted(&mut trace, max_cycles)?;
    if let Some(f) = trace.fault() {
        return Err(Error::Sim(f.clone()));
    }
    perfclone_obs::count!("uarch.pipeline.runs", 1);
    perfclone_obs::count!("uarch.pipeline.instrs", report.instrs);
    let power = estimate_power(config, &report);
    Ok(TimingResult { report, power })
}

/// Runs a previously captured [`TraceStore`] — in-memory or spilled to
/// disk and mmapped back — through the timing pipeline under `config`.
/// Both storage classes decode through the same replay machinery, so the
/// result is bit-identical to [`run_timing_replay`] on the in-memory
/// trace (and to [`run_timing`] at the capture limit).
///
/// # Errors
///
/// Returns [`Error::Sim`] carrying the fault recorded at capture time,
/// if any.
///
/// # Panics
///
/// Panics if `program` is not the program the trace was captured from
/// (see [`PackedTrace::replay`]).
pub fn run_timing_store(
    program: &Program,
    store: &TraceStore,
    config: &MachineConfig,
) -> Result<TimingResult, Error> {
    let meta = InstrMetaTable::new(program);
    run_timing_store_interned(program, store, &meta, config)
}

/// [`run_timing_store`] with a caller-supplied interned metadata table —
/// the amortized entry point for sweeps, where the same `meta` (built
/// once per program, e.g. via [`WorkloadCache::instr_meta`]) serves every
/// configuration instead of being rebuilt per replay. Drives the batched
/// SoA decode path ([`TraceStore::replay_batched`] →
/// [`Pipeline::run_batched`]), which is property-tested bit-identical to
/// the record-at-a-time oracle.
///
/// # Errors
///
/// As [`run_timing_store`].
///
/// # Panics
///
/// Panics if `program` is not the captured program or `meta` was built
/// from a different program (see [`PackedTrace::replay_batched`]).
pub fn run_timing_store_interned(
    program: &Program,
    store: &TraceStore,
    meta: &InstrMetaTable,
    config: &MachineConfig,
) -> Result<TimingResult, Error> {
    let _span = perfclone_obs::span!("uarch.pipeline.run");
    let replay = store.replay_batched(program, meta);
    let report = Pipeline::new(*config).run_batched(replay);
    if let Some(f) = store.fault() {
        return Err(Error::Sim(f.clone()));
    }
    perfclone_obs::count!("uarch.pipeline.runs", 1);
    perfclone_obs::count!("uarch.pipeline.instrs", report.instrs);
    perfclone_obs::count!("trace.replays", 1);
    perfclone_obs::count!("replay.batch.runs", 1);
    let power = estimate_power(config, &report);
    Ok(TimingResult { report, power })
}

/// [`run_timing_store`] with a pipeline cycle budget — the per-cell
/// deadline of supervised sweeps
/// ([`GridPolicy`](grid::GridPolicy)`::cell_deadline`).
///
/// # Errors
///
/// As [`run_timing_store`], plus [`Error::BudgetExhausted`] (stage
/// `"pipeline"`) when the replay has not drained within `max_cycles`.
///
/// # Panics
///
/// Panics if `program` is not the program the trace was captured from
/// (see [`PackedTrace::replay`]).
pub fn run_timing_store_budgeted(
    program: &Program,
    store: &TraceStore,
    config: &MachineConfig,
    max_cycles: u64,
) -> Result<TimingResult, Error> {
    let meta = InstrMetaTable::new(program);
    run_timing_store_interned_budgeted(program, store, &meta, config, max_cycles)
}

/// [`run_timing_store_interned`] with a pipeline cycle budget — the
/// amortized form of [`run_timing_store_budgeted`].
///
/// # Errors
///
/// As [`run_timing_store_budgeted`].
///
/// # Panics
///
/// As [`run_timing_store_interned`].
pub fn run_timing_store_interned_budgeted(
    program: &Program,
    store: &TraceStore,
    meta: &InstrMetaTable,
    config: &MachineConfig,
    max_cycles: u64,
) -> Result<TimingResult, Error> {
    let _span = perfclone_obs::span!("uarch.pipeline.run");
    let replay = store.replay_batched(program, meta);
    let report = Pipeline::new(*config).run_batched_budgeted(replay, max_cycles)?;
    if let Some(f) = store.fault() {
        return Err(Error::Sim(f.clone()));
    }
    perfclone_obs::count!("uarch.pipeline.runs", 1);
    perfclone_obs::count!("uarch.pipeline.instrs", report.instrs);
    perfclone_obs::count!("trace.replays", 1);
    perfclone_obs::count!("replay.batch.runs", 1);
    let power = estimate_power(config, &report);
    Ok(TimingResult { report, power })
}

/// Runs a previously captured [`PackedTrace`] through the timing pipeline
/// under `config` — the replay half of record-once/replay-many. The
/// pipeline consumes the reconstructed [`DynInstr`](perfclone_sim::DynInstr)
/// stream exactly as it would the live interpreter's, so the result is
/// bit-identical to [`run_timing`] at the trace's capture limit.
///
/// # Errors
///
/// Returns [`Error::Sim`] carrying the fault recorded at capture time, if
/// any — a fault replays as the same typed error the interpreter path
/// surfaces.
///
/// # Panics
///
/// Panics if `program` is not the program the trace was captured from
/// (see [`PackedTrace::replay`]).
pub fn run_timing_replay(
    program: &Program,
    trace: &PackedTrace,
    config: &MachineConfig,
) -> Result<TimingResult, Error> {
    let _span = perfclone_obs::span!("uarch.pipeline.run");
    let meta = InstrMetaTable::new(program);
    let replay = trace.replay_batched(program, &meta);
    let report = Pipeline::new(*config).run_batched(replay);
    if let Some(f) = trace.fault() {
        return Err(Error::Sim(f.clone()));
    }
    perfclone_obs::count!("uarch.pipeline.runs", 1);
    perfclone_obs::count!("uarch.pipeline.instrs", report.instrs);
    perfclone_obs::count!("trace.replays", 1);
    perfclone_obs::count!("replay.batch.runs", 1);
    let power = estimate_power(config, &report);
    Ok(TimingResult { report, power })
}

/// [`run_timing`] through the shared [`WorkloadCache`]: the workload's
/// dynamic trace is captured once per `(workload, limit)` and replayed for
/// this and every subsequent configuration, so an N-configuration sweep
/// pays one functional execution instead of N. A capture that outgrows
/// `PERFCLONE_TRACE_CAP` (see [`trace_cap`]) spills to disk and replays
/// via mmap; only when spilling is disabled (`PERFCLONE_SPILL=0`) or the
/// spill itself fails does this fall back to the direct interpreter path
/// — logged and counted, never silently truncated — and either way it
/// returns the identical result.
///
/// # Errors
///
/// Same as [`run_timing`]: the interpreter path's errors, or the capture
/// fault replayed as [`Error::Sim`].
pub fn run_timing_trace(
    workload: &str,
    program: &Program,
    config: &MachineConfig,
    limit: u64,
    cache: &WorkloadCache,
) -> Result<TimingResult, Error> {
    match cache.packed_trace(workload, program, limit) {
        Ok(store) => {
            let meta = cache.instr_meta(workload, program);
            run_timing_store_interned(program, &store, &meta, config)
        }
        Err(e) if e.is_trace_fallback() => run_timing(program, config, limit),
        Err(e) => Err(e),
    }
}

/// Side-by-side comparison of a real program and its clone on one machine.
#[derive(Clone, Debug)]
pub struct PairComparison {
    /// The real benchmark's result.
    pub real: TimingResult,
    /// The clone's result.
    pub synth: TimingResult,
}

/// Relative absolute error `|s − r| / r`, guarded: `None` when the real
/// baseline `r` is zero or either value is non-finite — the degenerate
/// cases where the ratio would be `NaN`/`inf` and silently poison a sweep
/// summary.
fn guarded_rel_error(r: f64, s: f64) -> Option<f64> {
    if r == 0.0 || !r.is_finite() || !s.is_finite() {
        return None;
    }
    Some(((s - r) / r).abs())
}

impl PairComparison {
    /// `|IPC_synth − IPC_real| / IPC_real` — Figure 6's metric.
    ///
    /// Returns the documented sentinel [`f64::INFINITY`] when the real
    /// baseline is zero or non-finite (e.g. a zero-instruction run), so a
    /// degenerate baseline fails loudly against any tolerance instead of
    /// propagating `NaN` (which passes *no* comparison and vanishes from
    /// summaries). Use [`ipc_error_checked`](PairComparison::ipc_error_checked)
    /// to branch on the degenerate case instead.
    pub fn ipc_error(&self) -> f64 {
        self.ipc_error_checked().unwrap_or(f64::INFINITY)
    }

    /// [`ipc_error`](PairComparison::ipc_error) as a typed outcome: `None`
    /// when the real baseline is zero/non-finite instead of the sentinel.
    pub fn ipc_error_checked(&self) -> Option<f64> {
        guarded_rel_error(self.real.report.ipc(), self.synth.report.ipc())
    }

    /// `|P_synth − P_real| / P_real` — Figure 7's metric.
    ///
    /// Guarded like [`ipc_error`](PairComparison::ipc_error): a zero or
    /// non-finite real power baseline yields [`f64::INFINITY`], never
    /// `NaN`.
    pub fn power_error(&self) -> f64 {
        self.power_error_checked().unwrap_or(f64::INFINITY)
    }

    /// [`power_error`](PairComparison::power_error) as a typed outcome:
    /// `None` when the real baseline is zero/non-finite.
    pub fn power_error_checked(&self) -> Option<f64> {
        guarded_rel_error(self.real.power.average_power, self.synth.power.average_power)
    }
}

/// Runs the real program and its clone through the same machine and
/// returns the side-by-side result (the validation half of Figure 1).
///
/// # Errors
///
/// Returns [`Error::Sim`] if either program faults during its timing run.
pub fn validate_pair(
    real: &Program,
    clone: &Program,
    config: &MachineConfig,
    limit: u64,
) -> Result<PairComparison, Error> {
    Ok(PairComparison {
        real: run_timing(real, config, limit)?,
        synth: run_timing(clone, config, limit)?,
    })
}

/// [`validate_pair`] through the shared [`WorkloadCache`]: both programs'
/// dynamic traces are captured once per `(workload, limit)` and replayed
/// here and by every other configuration that validates the same pair.
/// `real_key`/`clone_key` are the cache's workload names — callers must
/// keep them distinct per program, as with every cache entry.
///
/// # Errors
///
/// Same as [`validate_pair`].
pub fn validate_pair_trace(
    real_key: &str,
    clone_key: &str,
    real: &Program,
    clone: &Program,
    config: &MachineConfig,
    limit: u64,
    cache: &WorkloadCache,
) -> Result<PairComparison, Error> {
    Ok(PairComparison {
        real: run_timing_trace(real_key, real, config, limit, cache)?,
        synth: run_timing_trace(clone_key, clone, config, limit, cache)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfclone_kernels::{by_name, Scale};

    #[test]
    fn cloner_produces_runnable_clone() {
        let app = by_name("crc32").unwrap().build(Scale::Tiny).program;
        let outcome = Cloner::new().clone_program(&app, 200_000).unwrap();
        let mut sim = Simulator::new(&outcome.clone);
        assert!(sim.run(20_000_000).unwrap().halted);
        assert!(outcome.profile.total_instrs > 0);
    }

    #[test]
    fn validate_pair_reports_errors() {
        let params =
            SynthesisParams { target_blocks: 100, target_dynamic: 150_000, ..Default::default() };
        let app = by_name("crc32").unwrap().build(Scale::Tiny).program;
        let outcome = Cloner::with_params(params).clone_program(&app, u64::MAX).unwrap();
        let cmp = validate_pair(&app, &outcome.clone, &base_config(), u64::MAX).unwrap();
        assert!(cmp.real.report.ipc() > 0.0);
        assert!(cmp.synth.report.ipc() > 0.0);
        // Tight loops clone very well; allow generous slack in the unit
        // test (the benches measure the real numbers).
        assert!(cmp.ipc_error() < 0.5, "ipc error {}", cmp.ipc_error());
        assert!(cmp.power_error() < 0.5, "power error {}", cmp.power_error());
    }
}
