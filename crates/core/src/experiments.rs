//! Experiment drivers for the paper's evaluation (§5): the 28-configuration
//! cache sweep (Figures 4 and 5), base-configuration comparison (Figures 6
//! and 7), and the five design changes (Table 3, Figures 8 and 9).
//!
//! Every driver has a `_par` twin that fans its (program × configuration)
//! cells over the ambient rayon parallelism. Each cell builds its own
//! pipeline, caches, and predictor state, and results are collected in
//! input order, so the parallel drivers return values bit-identical to
//! their serial twins at any thread count.

use perfclone_isa::Program;
use perfclone_metrics::{pearson, rank, relative_error};
use perfclone_sim::TraceStore;
use perfclone_uarch::{design_changes, sweep_trace, AddressTrace, CacheConfig, MachineConfig};
use rayon::prelude::*;

use crate::cache::{capture_packed, trace_cap};
use crate::{run_timing, run_timing_store, Error, TimingResult};

/// Captures a packed trace for a sweep-local replay — possibly spilled to
/// disk when over-cap — or `None` when the capture fell back (already
/// logged and counted by the capture choke point) and the sweep must
/// re-interpret per cell.
fn packed_or_fallback(program: &Program, limit: u64) -> Option<TraceStore> {
    capture_packed(program, limit, trace_cap()).ok()
}

/// One timing cell: replay the shared capture when there is one, fall
/// back to the direct interpreter path otherwise. Both produce
/// bit-identical results.
fn timed(
    program: &Program,
    trace: Option<&TraceStore>,
    config: &MachineConfig,
    limit: u64,
) -> Result<TimingResult, Error> {
    match trace {
        Some(t) => run_timing_store(program, t, config),
        None => run_timing(program, config, limit),
    }
}

/// Result of sweeping real program and clone over the same cache
/// configurations.
#[derive(Clone, Debug)]
pub struct CacheSweepComparison {
    /// The configurations swept.
    pub configs: Vec<CacheConfig>,
    /// Real program misses-per-instruction, per configuration.
    pub real_mpi: Vec<f64>,
    /// Clone misses-per-instruction, per configuration.
    pub synth_mpi: Vec<f64>,
}

impl CacheSweepComparison {
    /// Pearson correlation between real and clone MPI over the
    /// configurations other than the first (the paper correlates the 27
    /// points relative to the 256 B direct-mapped baseline; Pearson is
    /// invariant to the affine normalization, so raw MPIs are used).
    pub fn correlation(&self) -> f64 {
        pearson(&self.real_mpi[1..], &self.synth_mpi[1..])
    }

    /// Cache-configuration rankings by MPI (rank 1 = fewest misses) for
    /// real and clone — the Figure-5 scatter data.
    pub fn rankings(&self) -> (Vec<f64>, Vec<f64>) {
        (rank(&self.real_mpi), rank(&self.synth_mpi))
    }
}

fn sweep_mpi(trace: &AddressTrace, configs: &[CacheConfig]) -> Vec<f64> {
    sweep_trace(trace, configs).iter().map(|pt| pt.mpi()).collect()
}

/// Sweeps a (real, clone) pair over `configs` (Figure 4 / 5 experiment).
///
/// Each program's data-reference trace is extracted once and evaluated
/// for all configurations by the single-pass stack-distance engine
/// ([`sweep_trace`]) — two functional simulations total instead of
/// 2 × `configs.len()`.
pub fn cache_sweep_pair(
    real: &Program,
    clone: &Program,
    configs: &[CacheConfig],
    limit: u64,
) -> CacheSweepComparison {
    let real_mpi = sweep_mpi(&AddressTrace::extract(real, limit), configs);
    let synth_mpi = sweep_mpi(&AddressTrace::extract(clone, limit), configs);
    CacheSweepComparison { configs: configs.to_vec(), real_mpi, synth_mpi }
}

/// Parallel [`cache_sweep_pair`]: the two trace extractions (the dominant
/// cost) fan over the ambient thread pool, and each trace then runs
/// through the stack-distance engine. Miss counts are exact integers, so
/// the result is bit-identical to the serial driver's at any thread
/// count.
pub fn cache_sweep_pair_par(
    real: &Program,
    clone: &Program,
    configs: &[CacheConfig],
    limit: u64,
) -> CacheSweepComparison {
    let programs = [real, clone];
    let mut mpi: Vec<Vec<f64>> =
        programs.par_iter().map(|p| sweep_mpi(&AddressTrace::extract(p, limit), configs)).collect();
    // Two inputs in, two sweeps out; the defaults are unreachable.
    let synth_mpi = mpi.pop().unwrap_or_default();
    let real_mpi = mpi.pop().unwrap_or_default();
    CacheSweepComparison { configs: configs.to_vec(), real_mpi, synth_mpi }
}

/// Results of one design-change experiment for one benchmark pair.
#[derive(Clone, Debug)]
pub struct DesignChangeResult {
    /// The changed configuration.
    pub config: MachineConfig,
    /// Real program on the changed configuration.
    pub real: TimingResult,
    /// Clone on the changed configuration.
    pub synth: TimingResult,
}

/// A benchmark pair evaluated on the base configuration and all five
/// design changes — the Table-3 experiment.
#[derive(Clone, Debug)]
pub struct DesignChangeSweep {
    /// Base-configuration results (real, clone).
    pub base_real: TimingResult,
    /// Base-configuration clone result.
    pub base_synth: TimingResult,
    /// Per-design-change results, in Table-3 order.
    pub changes: Vec<DesignChangeResult>,
}

impl DesignChangeSweep {
    /// The paper's §5.2 relative IPC error for design change `i`.
    pub fn ipc_relative_error(&self, i: usize) -> f64 {
        relative_error(
            self.changes[i].synth.report.ipc(),
            self.base_synth.report.ipc(),
            self.changes[i].real.report.ipc(),
            self.base_real.report.ipc(),
        )
    }

    /// The paper's §5.2 relative power error for design change `i`.
    pub fn power_relative_error(&self, i: usize) -> f64 {
        relative_error(
            self.changes[i].synth.power.average_power,
            self.base_synth.power.average_power,
            self.changes[i].real.power.average_power,
            self.base_real.power.average_power,
        )
    }

    /// Real IPC speedup of design change `i` over base (Figure 8's bars).
    pub fn real_speedup(&self, i: usize) -> f64 {
        self.changes[i].real.report.ipc() / self.base_real.report.ipc()
    }

    /// Clone IPC speedup of design change `i` over base.
    pub fn synth_speedup(&self, i: usize) -> f64 {
        self.changes[i].synth.report.ipc() / self.base_synth.report.ipc()
    }

    /// Real power ratio of design change `i` over base (Figure 9's bars).
    pub fn real_power_ratio(&self, i: usize) -> f64 {
        self.changes[i].real.power.average_power / self.base_real.power.average_power
    }

    /// Clone power ratio of design change `i` over base.
    pub fn synth_power_ratio(&self, i: usize) -> f64 {
        self.changes[i].synth.power.average_power / self.base_synth.power.average_power
    }
}

/// Runs the full Table-3 sweep for one (real, clone) pair: base plus the
/// five design changes.
///
/// Each program's dynamic trace is captured once ([`PackedTrace`]) and
/// replayed through every configuration — two functional executions total
/// instead of 2 × (1 + 5) — falling back to per-cell interpretation when
/// a capture exceeds `PERFCLONE_TRACE_CAP`. Either path yields
/// bit-identical results.
///
/// # Errors
///
/// Returns [`Error::Sim`] if either program faults on any configuration.
pub fn design_change_sweep(
    real: &Program,
    clone: &Program,
    base: &MachineConfig,
    limit: u64,
) -> Result<DesignChangeSweep, Error> {
    let real_trace = packed_or_fallback(real, limit);
    let synth_trace = packed_or_fallback(clone, limit);
    let base_real = timed(real, real_trace.as_ref(), base, limit)?;
    let base_synth = timed(clone, synth_trace.as_ref(), base, limit)?;
    let mut changes = Vec::new();
    for config in design_changes() {
        changes.push(DesignChangeResult {
            config,
            real: timed(real, real_trace.as_ref(), &config, limit)?,
            synth: timed(clone, synth_trace.as_ref(), &config, limit)?,
        });
    }
    Ok(DesignChangeSweep { base_real, base_synth, changes })
}

/// Parallel [`design_change_sweep`]: the two trace captures and then the
/// 2 × (1 + 5) (program × configuration) timing cells fan over the
/// ambient thread pool. Every cell constructs its own
/// [`Pipeline`](crate::Pipeline) — caches, predictor, window state and
/// all — and replays its program's shared immutable [`PackedTrace`], so
/// cells share nothing mutable, and the reassembled sweep is
/// bit-identical to the serial driver's.
///
/// # Errors
///
/// Same as [`design_change_sweep`]; when several cells fault, the
/// reported error is the first in cell order (independent of thread
/// schedule).
pub fn design_change_sweep_par(
    real: &Program,
    clone: &Program,
    base: &MachineConfig,
    limit: u64,
) -> Result<DesignChangeSweep, Error> {
    let mut configs = vec![*base];
    configs.extend(design_changes());
    let programs = [real, clone];
    // Two captures fan over the pool first, then every (program × config)
    // cell replays its program's shared capture — the workers share the
    // immutable packed traces by reference, nothing else.
    let traces: Vec<Option<TraceStore>> =
        programs.par_iter().map(|p| packed_or_fallback(p, limit)).collect();
    let cells: Vec<(usize, usize)> = configs
        .iter()
        .enumerate()
        .flat_map(|(ci, _)| (0..programs.len()).map(move |p| (ci, p)))
        .collect();
    let results: Vec<Result<TimingResult, Error>> = cells
        .par_iter()
        .map(|&(ci, p)| timed(programs[p], traces[p].as_ref(), &configs[ci], limit))
        .collect();
    let results: Vec<TimingResult> = results.into_iter().collect::<Result<_, _>>()?;
    // Cells were laid out [base×real, base×clone, change1×real, ...] and
    // collect preserves cell order, so results.len() == 2 × configs.len()
    // and index arithmetic recovers the layout.
    let changes = configs[1..]
        .iter()
        .enumerate()
        .map(|(i, config)| DesignChangeResult {
            config: *config,
            real: results[2 + 2 * i].clone(),
            synth: results[3 + 2 * i].clone(),
        })
        .collect();
    let base_real = results[0].clone();
    let base_synth = results[1].clone();
    Ok(DesignChangeSweep { base_real, base_synth, changes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cloner, SynthesisParams};
    use perfclone_kernels::{by_name, Scale};
    use perfclone_uarch::{base_config, cache_sweep};

    fn small_pair() -> (Program, Program) {
        let app = by_name("susan").unwrap().build(Scale::Tiny).program;
        let params =
            SynthesisParams { target_blocks: 120, target_dynamic: 120_000, ..Default::default() };
        let clone = Cloner::with_params(params).clone_program(&app, u64::MAX).unwrap().clone;
        (app, clone)
    }

    #[test]
    fn cache_sweep_correlates() {
        let (app, clone) = small_pair();
        let sweep = cache_sweep_pair(&app, &clone, &cache_sweep(), u64::MAX);
        assert_eq!(sweep.real_mpi.len(), 28);
        let r = sweep.correlation();
        assert!(r > 0.5, "correlation {r}");
        let (rr, rs) = sweep.rankings();
        assert_eq!(rr.len(), 28);
        assert_eq!(rs.len(), 28);
    }

    /// Acceptance: the single-pass engine behind the sweep drivers must
    /// reproduce per-configuration `simulate_dcache` replay exactly, for
    /// every configuration of the Figure-4/5 sweep set.
    #[test]
    fn engine_sweep_matches_per_config_replay_on_fig04_set() {
        use perfclone_uarch::simulate_dcache;
        let (app, clone) = small_pair();
        let configs = cache_sweep();
        let sweep = cache_sweep_pair(&app, &clone, &configs, u64::MAX);
        for (i, config) in configs.iter().enumerate() {
            let real = simulate_dcache(&app, *config, u64::MAX);
            let synth = simulate_dcache(&clone, *config, u64::MAX);
            assert_eq!(sweep.real_mpi[i].to_bits(), real.mpi().to_bits(), "{config}");
            assert_eq!(sweep.synth_mpi[i].to_bits(), synth.mpi().to_bits(), "{config}");
        }
    }

    #[test]
    fn parallel_cache_sweep_is_bit_identical_to_serial() {
        let (app, clone) = small_pair();
        let configs = cache_sweep();
        let serial = cache_sweep_pair(&app, &clone, &configs, u64::MAX);
        for jobs in [1usize, 4] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(jobs).build().expect("pool");
            let par = pool.install(|| cache_sweep_pair_par(&app, &clone, &configs, u64::MAX));
            assert_eq!(serial.real_mpi, par.real_mpi, "jobs = {jobs}");
            assert_eq!(serial.synth_mpi, par.synth_mpi, "jobs = {jobs}");
            assert_eq!(serial.configs, par.configs, "jobs = {jobs}");
        }
    }

    #[test]
    fn parallel_design_change_sweep_is_bit_identical_to_serial() {
        let (app, clone) = small_pair();
        let serial = design_change_sweep(&app, &clone, &base_config(), 150_000).unwrap();
        let par = design_change_sweep_par(&app, &clone, &base_config(), 150_000).unwrap();
        assert_eq!(serial.base_real.report.cycles, par.base_real.report.cycles);
        assert_eq!(
            serial.base_synth.power.average_power.to_bits(),
            par.base_synth.power.average_power.to_bits()
        );
        assert_eq!(serial.changes.len(), par.changes.len());
        for (s, p) in serial.changes.iter().zip(&par.changes) {
            assert_eq!(s.config.name, p.config.name);
            assert_eq!(s.real.report.cycles, p.real.report.cycles);
            assert_eq!(s.synth.report.cycles, p.synth.report.cycles);
            assert_eq!(s.real.report.ipc().to_bits(), p.real.report.ipc().to_bits());
            assert_eq!(
                s.synth.power.average_power.to_bits(),
                p.synth.power.average_power.to_bits()
            );
        }
    }

    #[test]
    fn design_change_sweep_produces_all_points() {
        let (app, clone) = small_pair();
        let sweep = design_change_sweep(&app, &clone, &base_config(), 150_000).unwrap();
        assert_eq!(sweep.changes.len(), 5);
        for i in 0..5 {
            assert!(sweep.ipc_relative_error(i).is_finite());
            assert!(sweep.power_relative_error(i).is_finite());
            assert!(sweep.real_speedup(i) > 0.0);
            assert!(sweep.synth_power_ratio(i) > 0.0);
        }
    }
}
