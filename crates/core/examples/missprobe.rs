//! Developer diagnostic: per-static-op cache miss attribution for a
//! kernel and its clone on the reference cache. Usage:
//! `cargo run --release -p perfclone --example missprobe [kernel]`
use perfclone::*;
use perfclone_kernels::{by_name, Scale};
use perfclone_sim::Simulator;
use perfclone_uarch::{Assoc, Cache, CacheConfig};
use std::collections::HashMap;

fn main() {
    let which = std::env::args().nth(1).unwrap_or("rijndael".into());
    let app = by_name(&which).unwrap().build(Scale::Small).program;
    let profile = profile_program(&app, u64::MAX).expect("profile");
    let params = SynthesisParams {
        target_dynamic: profile.total_instrs.clamp(100_000, 2_500_000),
        ..Default::default()
    };
    let clone = Cloner::with_params(params).clone_program_from(&profile).expect("synthesize");

    for (name, prog) in [("orig", &app), ("clone", &clone)] {
        let mut cache = Cache::new(CacheConfig::new(16 * 1024, Assoc::Ways(2), 32));
        let mut by_pc: HashMap<u32, (u64, u64)> = HashMap::new();
        for d in Simulator::trace(prog, u64::MAX) {
            if let Some(m) = d.mem {
                let r = cache.access(m.addr, m.is_store);
                let e = by_pc.entry(d.pc).or_default();
                e.0 += 1;
                if !r.hit {
                    e.1 += 1;
                }
            }
        }
        let mut v: Vec<_> = by_pc.into_iter().collect();
        v.sort_by_key(|(_, (_, m))| std::cmp::Reverse(*m));
        println!("== {name}: top missing static ops ==");
        let total: u64 = v.iter().map(|(_, (_, m))| m).sum();
        println!("  total misses {total}");
        for (pc, (acc, miss)) in v.iter().take(30) {
            println!(
                "  pc{:6} acc{:9} miss{:8} ({:.3}) instr={:?}",
                pc,
                acc,
                miss,
                *miss as f64 / *acc as f64,
                prog.fetch(*pc)
            );
        }
    }
}
