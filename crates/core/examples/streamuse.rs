//! Developer diagnostic: stream-walker usage of a clone — static
//! references vs dynamic accesses per stream id. Usage:
//! `cargo run --release -p perfclone --example streamuse [kernel]`
use perfclone::*;
use perfclone_kernels::{by_name, Scale};
use perfclone_sim::Simulator;
use std::collections::HashMap;

fn main() {
    let which = std::env::args().nth(1).unwrap_or("sha".into());
    let app = by_name(&which).unwrap().build(Scale::Small).program;
    let profile = profile_program(&app, u64::MAX).expect("profile");
    let params = SynthesisParams {
        target_dynamic: profile.total_instrs.clamp(100_000, 2_500_000),
        ..Default::default()
    };
    let clone = Cloner::with_params(params).clone_program_from(&profile).expect("synthesize");
    // count accesses per stream id
    let mut per_stream: HashMap<u32, u64> = HashMap::new();
    for d in Simulator::trace(&clone, u64::MAX) {
        if let (
            Some(_),
            perfclone_isa::Instr::Load { mem: perfclone_isa::MemRef::Stream(id), .. },
        ) = (d.mem, d.instr)
        {
            *per_stream.entry(id.index()).or_default() += 1;
        } else if let (
            Some(_),
            perfclone_isa::Instr::Store { mem: perfclone_isa::MemRef::Stream(id), .. },
        ) = (d.mem, d.instr)
        {
            *per_stream.entry(id.index()).or_default() += 1;
        }
    }
    // static stream references in the clone text
    let mut static_refs: HashMap<u32, u64> = HashMap::new();
    for i in clone.instrs() {
        if let Some((perfclone_isa::MemRef::Stream(id), _, _)) = i.mem_ref() {
            *static_refs.entry(id.index()).or_default() += 1;
        }
    }
    let mut sr: Vec<_> = static_refs.into_iter().collect();
    sr.sort();
    println!("static refs: {:?}", sr);
    println!(
        "clone stream table: {} entries; static instrs {}",
        clone.streams().len(),
        clone.len()
    );
    let mut v: Vec<_> = per_stream.into_iter().collect();
    v.sort();
    for (id, n) in v {
        let d = clone.stream(perfclone_isa::StreamId::new(id));
        println!(
            "stream {id}: {n} accesses, stride {}, len {}, base {:#x}",
            d.stride, d.length, d.base
        );
    }
}
// (appended)
