//! Developer diagnostic: full side-by-side characterization of one
//! kernel and its clone (mix, streams, branches, sweep). Usage:
//! `cargo run --release -p perfclone --example diag [kernel] [blocks]`
//! (`DIAG_SMALL=1` for Small scale).
use perfclone::*;
use perfclone_kernels::{by_name, Scale};
use perfclone_profile::profile_program;
use perfclone_uarch::{cache_sweep, simulate_dcache};

fn main() {
    let which = std::env::args().nth(1).unwrap_or("crc32".into());
    let scale = if std::env::var("DIAG_SMALL").is_ok() { Scale::Small } else { Scale::Tiny };
    let app = by_name(&which).unwrap().build(scale).program;
    let blocks: u32 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(0);
    let profile0 = profile_program(&app, u64::MAX).expect("profile");
    let params = SynthesisParams {
        target_blocks: blocks,
        target_dynamic: profile0.total_instrs.clamp(100_000, 2_500_000),
        ..Default::default()
    };
    let out = Cloner::with_params(params).clone_program(&app, u64::MAX).expect("clone");
    let clone = &out.clone;
    let op = &out.profile;
    let cp = profile_program(clone, u64::MAX).expect("profile clone");

    println!("== {} ==", which);
    println!("orig instrs {} clone instrs {}", op.total_instrs, cp.total_instrs);
    println!("static: orig {} clone {}", app.len(), clone.len());
    println!("orig mean bb {:.2} clone mean bb {:.2}", op.mean_block_size(), cp.mean_block_size());
    println!("mix (orig vs clone):");
    let om = op.global_mix();
    let cm = cp.global_mix();
    for c in perfclone_isa::InstrClass::ALL {
        println!("  {:8} {:.3} {:.3}", c.label(), om[c.index()], cm[c.index()]);
    }
    let wt = |p: &WorkloadProfile| {
        let e: u64 = p.branches.iter().map(|b| b.execs).sum();
        let t: u64 = p.branches.iter().map(|b| b.taken).sum();
        let tr: u64 = p.branches.iter().map(|b| b.transitions).sum();
        (t as f64 / e as f64, tr as f64 / e as f64)
    };
    println!("branch taken/trans: orig {:?} clone {:?}", wt(op), wt(&cp));
    println!("streams: orig {} clone {}", op.streams.len(), cp.streams.len());
    println!("stride cov: orig {:.3} clone {:.3}", op.stride_coverage(), cp.stride_coverage());

    let cfg = base_config();
    let r = run_timing(&app, &cfg, u64::MAX).expect("timing orig");
    let s = run_timing(clone, &cfg, u64::MAX).expect("timing clone");
    println!("IPC: orig {:.3} clone {:.3}", r.report.ipc(), s.report.ipc());
    println!("L1D mpi: orig {:.4} clone {:.4}", r.report.l1d_mpi(), s.report.l1d_mpi());
    println!(
        "bpred mr: orig {:.4} clone {:.4}",
        r.report.bpred.mispredict_rate(),
        s.report.bpred.mispredict_rate()
    );
    println!("L1I mr: orig {:.4} clone {:.4}", r.report.l1i.miss_rate(), s.report.l1i.miss_rate());
    println!("power: orig {:.2} clone {:.2}", r.power.average_power, s.power.average_power);

    println!("orig stream profiles (pc stride runlen execs cov span):");
    for s in &op.streams {
        let cov = if s.execs > 1 { s.dominant_count as f64 / (s.execs - 1) as f64 } else { 1.0 };
        println!(
            "  pc{:4} st{:6} rl{:8.1} ex{:7} cov{:.2} span{} fwd{} back{} bj{:.0}",
            s.pc,
            s.dominant_stride,
            s.mean_run_len,
            s.execs,
            cov,
            s.max_addr - s.min_addr,
            s.fwd_breaks,
            s.back_breaks,
            s.mean_back_jump
        );
    }
    println!("orig branch profiles (pc execs taken trans pred):");
    for br in &op.branches {
        println!(
            "  pc{:4} ex{:8} t{:.2} r{:.3} p{:.3}",
            br.pc,
            br.execs,
            br.taken_rate(),
            br.transition_rate(),
            br.predictability()
        );
    }
    println!("clone stream descs (stride length footprint):");
    let mut fp = 0u64;
    for d in clone.streams() {
        fp += d.footprint_bytes();
        println!("  st{:6} len{:8} fp{}", d.stride, d.length, d.footprint_bytes());
    }
    println!("total clone stream footprint {}", fp);
    println!("sweep mpi pairs:");
    for c in cache_sweep() {
        let a = simulate_dcache(&app, c, u64::MAX).mpi();
        let b = simulate_dcache(clone, c, u64::MAX).mpi();
        println!("  {:18} {:.5} {:.5}", c.to_string(), a, b);
    }
}
// appended: stream descriptor dump (invoked with second arg "streams")
