//! Developer diagnostic: run every bundled kernel through the fidelity
//! gate at Tiny scale and print the per-attribute verdicts, plus what the
//! gate sees for a zero-stride-corrupted clone of the same kernel. Usage:
//! `cargo run --release -p perfclone --example gatescan`
use perfclone::*;
use perfclone_kernels::{catalog, Scale};
use perfclone_validate::{Fault, FaultPlan, Gate};

fn main() {
    let gate = Gate::default();
    for k in catalog() {
        let program = k.build(Scale::Tiny).program;
        let profile = profile_program(&program, u64::MAX).expect("profile");
        let clone = Cloner::new().clone_program_from(&profile).expect("synthesize");
        let report = gate.report(&profile, &clone).expect("gate");
        let deltas = report
            .attributes
            .iter()
            .map(|a| format!("{:?}={:.2}", a.attribute, a.delta))
            .collect::<Vec<_>>()
            .join(" ");
        println!("{:14} {:4} {}", k.name(), report.verdict().label(), deltas);

        let perturbed = FaultPlan::single(1, Fault::ZeroStrideStreams).apply(&profile);
        match Cloner::new().clone_program_from(&perturbed) {
            Ok(fclone) => {
                let freport = gate.report(&profile, &fclone).expect("gate");
                println!("{:14} zero-stride clone gates as {}", "", freport.verdict().label());
            }
            Err(e) => println!("{:14} zero-stride clone rejected: {e}", ""),
        }
    }
}
