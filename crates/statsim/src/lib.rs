//! # perfclone-statsim
//!
//! Statistical simulation — the technique the paper builds on (its §2:
//! Oskin et al., Eeckhout et al., Nussbaum et al.): generate a short
//! **synthetic trace** directly from a statistical workload profile and run
//! it through a timing simulator, with no program in between.
//!
//! Performance cloning and statistical simulation share the profile; they
//! differ in the artifact. A synthetic *trace* is cheap and useful for
//! culling a design space early (1 M instructions is typically enough), but
//! it cannot be compiled, shipped, or run on real hardware. The synthetic
//! *clone* (see `perfclone-synth`) is an executable program. This crate
//! provides the trace path so the repository covers both points of the
//! design space — and so the two can be compared (the
//! `ablation_statsim` bench).
//!
//! The generated trace is a stream of [`DynInstr`] records, directly
//! consumable by `perfclone_uarch::Pipeline::run`. Unlike interpreter
//! traces, statistical traces **cannot** be stored as a
//! `perfclone_sim::PackedTrace`: the packed format resolves each record's
//! static [`Instr`] from its pc at replay time, but statsim shuffles every
//! block body per dynamic execution, so the same synthetic pc maps to
//! different instructions across visits. Sharing across configurations
//! happens through the `statsim` memo of `perfclone::WorkloadCache`
//! instead, and the resident footprint is reported by the
//! `statsim.trace.bytes` gauge.
//!
//! # Example
//!
//! ```
//! use perfclone_profile::profile_program;
//! use perfclone_statsim::{synth_trace, TraceParams};
//! use perfclone_isa::{ProgramBuilder, Reg};
//!
//! let mut b = ProgramBuilder::new("loop");
//! b.li(Reg::new(1), 0);
//! b.li(Reg::new(2), 500);
//! let top = b.label();
//! b.bind(top);
//! b.addi(Reg::new(1), Reg::new(1), 1);
//! b.blt(Reg::new(1), Reg::new(2), top);
//! b.halt();
//! let profile = profile_program(&b.build(), u64::MAX)?;
//!
//! let trace = synth_trace(&profile, &TraceParams { length: 10_000, seed: 7 })?;
//! assert_eq!(trace.len(), 10_000);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::error::Error as StdError;
use std::fmt;

use perfclone_isa::{AluOp, Cond, FReg, FpOp, Instr, InstrClass, MemRef, MemWidth, Reg};
use perfclone_profile::{ProfileError, StreamProfile, WorkloadProfile};
use perfclone_sim::{DynInstr, MemAccess};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Errors surfaced by synthetic trace generation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// The profile failed structural validation
    /// ([`WorkloadProfile::check`]); generating from it would index out of
    /// bounds.
    InvalidProfile(ProfileError),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::InvalidProfile(e) => {
                write!(f, "cannot generate a trace from profile: {e}")
            }
        }
    }
}

impl StdError for TraceError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            TraceError::InvalidProfile(e) => Some(e),
        }
    }
}

impl From<ProfileError> for TraceError {
    fn from(e: ProfileError) -> TraceError {
        TraceError::InvalidProfile(e)
    }
}

/// Parameters of synthetic trace generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceParams {
    /// Number of dynamic instructions to generate (statistical simulation
    /// practice: ~1 M).
    pub length: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceParams {
    fn default() -> TraceParams {
        TraceParams { length: 1_000_000, seed: 0x57A7 }
    }
}

/// Per-static-op stream walker state for address generation.
#[derive(Clone, Debug)]
struct Walker {
    base: u64,
    stride: i64,
    length: u64,
    pos: u64,
    width: u8,
    is_store: bool,
}

impl Walker {
    fn from_profile(s: &StreamProfile, base: u64) -> Walker {
        let stride = if s.dominant_stride != 0 { s.dominant_stride } else { 0 };
        let length = (s.mean_run_len.round() as u64).clamp(1, 1 << 20);
        Walker { base, stride, length, pos: 0, width: s.width.max(1), is_store: s.is_store }
    }

    fn next_addr(&mut self) -> u64 {
        let k = self.pos % self.length;
        self.pos += 1;
        (self.base as i64).wrapping_add(k as i64 * self.stride) as u64
    }
}

/// Generates a synthetic trace from the profile's statistical flow graph,
/// instruction mixes, stream statistics, and branch statistics.
///
/// The trace is *correct-path by construction*: every record carries a pc
/// (synthetic layout, one block after another), a branch outcome sampled
/// from the block's transition statistics, and an effective address from
/// the per-op stream walkers.
///
/// # Errors
///
/// Returns [`TraceError::InvalidProfile`] when the profile fails
/// structural validation ([`WorkloadProfile::check`]) — empty, dangling
/// cross-references, inconsistent counts.
pub fn synth_trace(
    profile: &WorkloadProfile,
    params: &TraceParams,
) -> Result<Vec<DynInstr>, TraceError> {
    let _span = perfclone_obs::span!("statsim.gen");
    // All indexing below (branches, mem_ops into walkers) relies on the
    // cross-references this validates.
    profile.check()?;
    let mut rng = StdRng::seed_from_u64(params.seed);

    // Synthetic code layout: each node gets a pc range in discovery order.
    let mut pc_base = Vec::with_capacity(profile.nodes.len());
    let mut next_pc = 0u32;
    for n in &profile.nodes {
        pc_base.push(next_pc);
        next_pc += n.size.max(1);
    }

    // Address walkers per profiled static op; disjoint synthetic regions.
    let mut walkers: Vec<Walker> = Vec::with_capacity(profile.streams.len());
    let mut next_base = 0x4000_0000u64;
    for s in &profile.streams {
        let w = Walker::from_profile(s, next_base);
        next_base += (w.length * w.stride.unsigned_abs().max(1) + 4096) & !4095;
        walkers.push(w);
    }

    // Branch direction state per static branch: iteration-counter modulo
    // realization of the taken/transition rates.
    let mut branch_counters: Vec<u64> = profile.branches.iter().map(|_| 0).collect();

    let total_execs: f64 = profile.nodes.iter().map(|n| n.execs as f64).sum();
    let weights: Vec<f64> = profile.nodes.iter().map(|n| n.execs as f64 / total_execs).collect();

    let mut out = Vec::with_capacity(params.length as usize);
    let mut cur: Option<u32> = None;
    'outer: loop {
        let node_idx = match cur.take() {
            Some(n) => n,
            None => sample_weighted(&weights, &mut rng),
        };
        let node = &profile.nodes[node_idx as usize];
        let base = pc_base[node_idx as usize];

        // Expand the node's class counts into a body; the terminating
        // branch (if any) goes last.
        let mut counts = node.class_counts;
        let term_branch = if counts[InstrClass::Branch.index()] > 0 { node.branch } else { None };
        if term_branch.is_some() {
            counts[InstrClass::Branch.index()] -= 1;
        }
        let mut body: Vec<InstrClass> = Vec::with_capacity(node.size as usize);
        for class in InstrClass::ALL {
            for _ in 0..counts[class.index()] {
                body.push(class);
            }
        }
        for i in (1..body.len()).rev() {
            body.swap(i, rng.gen_range(0..=i));
        }

        let mut mem_idx = 0usize;
        for (slot, class) in body.iter().enumerate() {
            let pc = base + slot as u32;
            let (instr, mem) = synth_instr(*class, node, &mut mem_idx, &mut walkers, &mut rng);
            out.push(DynInstr { pc, instr, next_pc: pc + 1, taken: false, mem });
            if out.len() as u64 >= params.length {
                break 'outer;
            }
        }

        // Successor choice and the terminating control transfer.
        let succs = profile.successors(node_idx);
        let next_node = if succs.is_empty() {
            sample_weighted(&weights, &mut rng)
        } else {
            sample_succ(&succs, &mut rng)
        };
        let next_node_pc = pc_base[next_node as usize];
        let term_pc = base + body.len() as u32;
        if let Some(bi) = term_branch {
            let bidx = bi as usize;
            let stats = &profile.branches[bidx];
            let taken = realize_direction(stats, &mut branch_counters[bidx], &mut rng);
            let next = if taken { next_node_pc } else { term_pc + 1 };
            // Fall-through also proceeds to the successor in SFG terms; the
            // pc fiction only matters to the I-cache and predictor.
            out.push(DynInstr {
                pc: term_pc,
                instr: Instr::Branch {
                    cond: Cond::Eq,
                    rs1: Reg::ZERO,
                    rs2: Reg::ZERO,
                    target: next_node_pc,
                },
                next_pc: next,
                taken,
                mem: None,
            });
        } else {
            out.push(DynInstr {
                pc: term_pc,
                instr: Instr::Jump { target: next_node_pc },
                next_pc: next_node_pc,
                taken: false,
                mem: None,
            });
        }
        if out.len() as u64 >= params.length {
            break;
        }
        cur = Some(next_node);
    }
    out.truncate(params.length as usize);
    perfclone_obs::count!("statsim.traces", 1);
    perfclone_obs::count!("statsim.instrs", out.len() as u64);
    // Statistical traces stay as full `DynInstr` records: the block bodies
    // are RNG-shuffled per dynamic execution, so the same pc maps to
    // different instructions across visits and the pc→instr indirection a
    // `PackedTrace` (and the flat pc-indexed `InstrMetaTable` the batched
    // replay interns) relies on does not hold. These records still share
    // the interned static resolution: the pipeline's iterator front end
    // derives the same `InstrMeta::of` per record that the batched path
    // reads from the table, so both feeds are bit-identical currencies.
    // Memoization (the `statsim` cache memo) is the sharing mechanism
    // here; this gauge makes the resident cost visible next to
    // `trace.bytes` in run reports.
    perfclone_obs::gauge!(
        "statsim.trace.bytes",
        (out.len() * core::mem::size_of::<DynInstr>()) as u64
    );
    Ok(out)
}

fn sample_weighted(weights: &[f64], rng: &mut StdRng) -> u32 {
    let mut x = rng.gen::<f64>();
    for (i, w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i as u32;
        }
    }
    weights.len() as u32 - 1
}

fn sample_succ(succs: &[(u32, f64)], rng: &mut StdRng) -> u32 {
    let mut x = rng.gen::<f64>();
    for (to, p) in succs {
        x -= p;
        if x <= 0.0 {
            return *to;
        }
    }
    // Callers only reach here with a non-empty successor list; node 0 is
    // the harmless reseed target should that ever change.
    succs.last().map(|s| s.0).unwrap_or(0)
}

/// Realizes a branch direction from taken/transition statistics with a
/// per-branch execution counter (periodic for structured sequences, random
/// for patternless ones).
fn realize_direction(
    stats: &perfclone_profile::BranchProfile,
    counter: &mut u64,
    rng: &mut StdRng,
) -> bool {
    let t = stats.taken_rate();
    let r = stats.transition_rate();
    let k = *counter;
    *counter += 1;
    if r <= 0.05 {
        return t >= 0.5;
    }
    if stats.predictability() < 0.8 {
        return rng.gen::<f64>() < t;
    }
    let p = (2.0 / r).round().clamp(2.0, 64.0) as u64;
    let t_run = ((t * p as f64).round() as u64).clamp(1, p - 1);
    (k % p) < t_run
}

fn width_of(w: u8) -> MemWidth {
    match w {
        1 => MemWidth::B1,
        4 => MemWidth::B4,
        _ => MemWidth::B8,
    }
}

/// Synthesizes one non-control instruction record of the given class.
fn synth_instr(
    class: InstrClass,
    node: &perfclone_profile::BlockProfile,
    mem_idx: &mut usize,
    walkers: &mut [Walker],
    rng: &mut StdRng,
) -> (Instr, Option<MemAccess>) {
    // Registers rotate through a small pool; the trace consumer only looks
    // at defs/uses for dependence tracking, so rotation approximates the
    // profiled dependency distances at pool-size granularity.
    let rd = Reg::new(6 + (rng.gen::<u8>() % 20));
    let rs1 = Reg::new(6 + (rng.gen::<u8>() % 20));
    let rs2 = Reg::new(6 + (rng.gen::<u8>() % 20));
    let fd = FReg::new(rng.gen::<u8>() % 30);
    let fs1 = FReg::new(rng.gen::<u8>() % 30);
    let fs2 = FReg::new(rng.gen::<u8>() % 30);
    match class {
        InstrClass::IntAlu | InstrClass::Branch | InstrClass::Jump => {
            (Instr::Alu { op: AluOp::Add, rd, rs1, rs2 }, None)
        }
        InstrClass::IntMul => (Instr::Mul { rd, rs1, rs2 }, None),
        InstrClass::IntDiv => (Instr::Div { rd, rs1, rs2 }, None),
        InstrClass::FpAlu => (Instr::Fp { op: FpOp::Add, fd, fs1, fs2 }, None),
        InstrClass::FpMul => (Instr::Fp { op: FpOp::Mul, fd, fs1, fs2 }, None),
        InstrClass::FpDiv => (Instr::Fp { op: FpOp::Div, fd, fs1, fs2 }, None),
        InstrClass::Load | InstrClass::Store => {
            let fallback_needed = node.mem_ops.is_empty();
            let (addr, width, is_store) = if fallback_needed {
                (0x7000_0000, MemWidth::B8, class == InstrClass::Store)
            } else {
                let sid = node.mem_ops[*mem_idx % node.mem_ops.len()] as usize;
                *mem_idx += 1;
                let w = &mut walkers[sid];
                (w.next_addr(), width_of(w.width), w.is_store)
            };
            let mem = MemRef::Base { base: Reg::new(5), offset: 0 };
            let instr = if is_store || class == InstrClass::Store {
                Instr::Store { rs: rs1, mem, width }
            } else {
                Instr::Load { rd, mem, width }
            };
            (
                instr,
                Some(MemAccess {
                    addr,
                    bytes: width.bytes() as u8,
                    is_store: is_store || class == InstrClass::Store,
                }),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfclone_kernels::{by_name, Scale};
    use perfclone_profile::profile_program;
    use perfclone_sim::Simulator;
    use perfclone_uarch::{base_config, Pipeline};

    fn profile_of(name: &str) -> WorkloadProfile {
        let p = by_name(name).expect("kernel exists").build(Scale::Tiny).program;
        profile_program(&p, u64::MAX).expect("kernel profiles cleanly")
    }

    #[test]
    fn trace_has_requested_length_and_mix() {
        let profile = profile_of("crc32");
        let trace = synth_trace(&profile, &TraceParams { length: 50_000, seed: 1 }).unwrap();
        assert_eq!(trace.len(), 50_000);
        let loads = trace.iter().filter(|d| d.instr.class() == InstrClass::Load).count() as f64;
        let expected = profile.global_mix()[InstrClass::Load.index()];
        assert!(
            (loads / 50_000.0 - expected).abs() < 0.05,
            "load mix {} vs {}",
            loads / 50_000.0,
            expected
        );
    }

    #[test]
    fn trace_runs_through_the_pipeline() {
        let profile = profile_of("susan");
        let trace = synth_trace(&profile, &TraceParams { length: 30_000, seed: 2 }).unwrap();
        let report = Pipeline::new(base_config()).run(trace);
        assert_eq!(report.instrs, 30_000);
        assert!(report.ipc() > 0.1 && report.ipc() <= 1.0);
    }

    #[test]
    fn trace_ipc_approximates_program_ipc() {
        let name = "adpcm_dec";
        let program = by_name(name).expect("kernel exists").build(Scale::Tiny).program;
        let profile = profile_program(&program, u64::MAX).unwrap();
        let real = Pipeline::new(base_config()).run(Simulator::trace(&program, u64::MAX));
        let trace = synth_trace(&profile, &TraceParams { length: 100_000, seed: 3 }).unwrap();
        let synth = Pipeline::new(base_config()).run(trace);
        let err = (synth.ipc() - real.ipc()).abs() / real.ipc();
        assert!(err < 0.35, "statsim IPC err {err:.3} (real {} synth {})", real.ipc(), synth.ipc());
    }

    #[test]
    fn trace_is_deterministic() {
        let profile = profile_of("bitcount");
        let a = synth_trace(&profile, &TraceParams { length: 5_000, seed: 9 }).unwrap();
        let b = synth_trace(&profile, &TraceParams { length: 5_000, seed: 9 }).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn corrupted_profile_yields_typed_error() {
        let mut profile = profile_of("crc32");
        profile.nodes.truncate(1);
        let err = synth_trace(&profile, &TraceParams::default()).unwrap_err();
        assert!(matches!(err, TraceError::InvalidProfile(_)), "got {err:?}");

        profile.nodes.clear();
        profile.edges.clear();
        profile.contexts.clear();
        let err = synth_trace(&profile, &TraceParams::default()).unwrap_err();
        assert!(matches!(err, TraceError::InvalidProfile(ProfileError::Empty { .. })));
    }

    #[test]
    fn branch_outcomes_follow_taken_rate() {
        let profile = profile_of("crc32");
        let trace = synth_trace(&profile, &TraceParams { length: 80_000, seed: 4 }).unwrap();
        let (mut taken, mut total) = (0u64, 0u64);
        for d in &trace {
            if d.instr.is_cond_branch() {
                total += 1;
                taken += u64::from(d.taken);
            }
        }
        let t_trace = taken as f64 / total as f64;
        let t_prof: f64 = {
            let e: u64 = profile.branches.iter().map(|b| b.execs).sum();
            let t: u64 = profile.branches.iter().map(|b| b.taken).sum();
            t as f64 / e as f64
        };
        assert!((t_trace - t_prof).abs() < 0.1, "taken {t_trace:.3} vs {t_prof:.3}");
    }
}
