//! RAII wall-time spans with explicit parent propagation across thread
//! pools.

use std::cell::Cell;

use crate::registry::{registry, SpanRecord};

thread_local! {
    /// Id of the innermost open span on this thread (0 = none). Worker
    /// threads spawned by the rayon shim are fresh std threads and start
    /// at 0 — parallel stages must carry the parent id explicitly via
    /// [`Span::child_of`].
    static CURRENT: Cell<u64> = const { Cell::new(0) };
}

/// Opaque identifier of an open span, used to parent spans across thread
/// pools. Ids are unique within a process run and never 0.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// The raw id, as it appears in [`SpanEntry::id`] and
    /// [`SpanEntry::parent`] (where 0 marks a root span).
    ///
    /// [`SpanEntry::id`]: crate::SpanEntry::id
    /// [`SpanEntry::parent`]: crate::SpanEntry::parent
    pub fn get(self) -> u64 {
        self.0
    }
}

/// Id of the calling thread's innermost open span. Capture this on the
/// driving thread before fanning work out to a pool, then open workers'
/// spans with [`Span::child_of`].
pub fn current() -> Option<SpanId> {
    let id = CURRENT.with(Cell::get);
    (id != 0).then_some(SpanId(id))
}

/// An open span. Created by [`Span::enter`] (or the
/// [`span!`](crate::span) macro); the elapsed wall time is recorded when
/// the guard drops, both as a `SpanEntry` in the snapshot's span log and
/// as a sample in the `span.<name>.ns` histogram.
///
/// While telemetry is disabled ([`enabled()`](crate::enabled) is false)
/// spans are inert: nothing is allocated or recorded and [`Span::id`]
/// returns `None`.
#[derive(Debug)]
pub struct Span {
    /// 0 when the span was opened while telemetry was disabled.
    id: u64,
    parent: u64,
    name: &'static str,
    start_ns: u64,
    /// What `CURRENT` held when this span opened; restored on drop. Only
    /// meaningful on the opening thread — spans must drop on the thread
    /// that opened them (RAII guarantees this for guards held on the
    /// stack).
    prev_current: u64,
}

impl Span {
    /// Opens a span nested under the calling thread's current span (a
    /// root span if there is none).
    pub fn enter(name: &'static str) -> Span {
        let parent = CURRENT.with(Cell::get);
        Span::open(parent, name)
    }

    /// Opens a span under an explicitly provided parent, ignoring the
    /// thread-local context. This is how spans nest across the rayon
    /// shim's worker threads, which start with no current span:
    /// capture [`current()`] before the `par_iter`, pass it into the
    /// closure, and open each worker's span with `child_of`.
    pub fn child_of(parent: Option<SpanId>, name: &'static str) -> Span {
        Span::open(parent.map_or(0, SpanId::get), name)
    }

    fn open(parent: u64, name: &'static str) -> Span {
        if !crate::enabled() {
            return Span { id: 0, parent: 0, name, start_ns: 0, prev_current: 0 };
        }
        let r = registry();
        let id = r.next_span_id();
        let prev_current = CURRENT.with(|c| c.replace(id));
        let start_ns = r.elapsed_ns();
        crate::trace::span_begin(name, id, parent, start_ns);
        Span { id, parent, name, start_ns, prev_current }
    }

    /// This span's id, for parenting child spans on other threads.
    /// `None` when the span was opened while telemetry was disabled.
    pub fn id(&self) -> Option<SpanId> {
        (self.id != 0).then_some(SpanId(self.id))
    }

    /// Wall time since the span opened, in nanoseconds (0 when inert).
    pub fn elapsed_ns(&self) -> u64 {
        if self.id == 0 {
            0
        } else {
            registry().elapsed_ns().saturating_sub(self.start_ns)
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        CURRENT.with(|c| c.set(self.prev_current));
        crate::trace::span_end(self.name, self.id, self.parent);
        let r = registry();
        let duration_ns = r.elapsed_ns().saturating_sub(self.start_ns);
        r.push_span(SpanRecord {
            id: self.id,
            parent: self.parent,
            name: self.name,
            start_ns: self.start_ns,
            duration_ns,
        });
        // Feed the latency histogram so per-stage distributions survive
        // even if a consumer only keeps aggregate instruments.
        let hist_name = format!("span.{}.ns", self.name);
        crate::histogram(&hist_name).record(duration_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::registry_lock;

    #[test]
    fn sibling_spans_share_a_parent() {
        let _g = registry_lock();
        crate::reset();
        let outer = Span::enter("test.span.outer");
        let outer_id = outer.id().map(SpanId::get).unwrap_or(0);
        {
            let _a = Span::enter("test.span.a");
        }
        {
            let _b = Span::enter("test.span.b");
        }
        drop(outer);
        let snap = crate::snapshot();
        for name in ["test.span.a", "test.span.b"] {
            let s = snap.spans.iter().find(|s| s.name == name);
            assert_eq!(s.map(|s| s.parent), Some(outer_id), "{name}");
        }
        assert!(current().is_none(), "context restored after drops");
    }

    #[test]
    fn disabled_spans_are_inert_and_restore_nothing() {
        let _g = registry_lock();
        crate::reset();
        let outer = Span::enter("test.span.live");
        crate::set_enabled(false);
        let dead = Span::enter("test.span.dead");
        assert!(dead.id().is_none());
        assert_eq!(dead.elapsed_ns(), 0);
        drop(dead);
        crate::set_enabled(true);
        // The disabled span must not have clobbered the live context.
        assert_eq!(current(), outer.id());
        drop(outer);
    }
}
