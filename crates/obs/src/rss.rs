//! Self-sampled process memory from `/proc/self/status`, so sweeps and
//! benches can report current and peak RSS without external tooling
//! (`/usr/bin/time`, cgroup accounting, ...).
//!
//! Both readings are `None` on platforms without procfs; callers treat a
//! missing reading as "unknown", never as zero.

/// Current resident set size in KiB (`VmRSS`), or `None` if procfs is
/// unavailable.
pub fn current_rss_kib() -> Option<u64> {
    status_field("VmRSS:")
}

/// Peak resident set size in KiB (`VmHWM` — the high-water mark over the
/// process lifetime), or `None` if procfs is unavailable.
pub fn peak_rss_kib() -> Option<u64> {
    status_field("VmHWM:")
}

/// Parses one `Key:   <n> kB` line out of `/proc/self/status`.
fn status_field(key: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_status_field(&status, key)
}

fn parse_status_field(status: &str, key: &str) -> Option<u64> {
    let rest = status.lines().find_map(|line| line.strip_prefix(key))?;
    rest.trim().trim_end_matches("kB").trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_proc_status_lines() {
        let status = "Name:\tperfclone\nVmHWM:\t  204800 kB\nVmRSS:\t   51200 kB\n";
        assert_eq!(parse_status_field(status, "VmRSS:"), Some(51200));
        assert_eq!(parse_status_field(status, "VmHWM:"), Some(204800));
        assert_eq!(parse_status_field(status, "VmPMD:"), None);
        assert_eq!(parse_status_field("VmRSS: not-a-number kB\n", "VmRSS:"), None);
    }

    #[test]
    fn live_readings_are_sane_on_linux() {
        if !cfg!(target_os = "linux") {
            return;
        }
        let rss = current_rss_kib().expect("procfs available on linux");
        let peak = peak_rss_kib().expect("procfs available on linux");
        assert!(rss > 0);
        assert!(peak >= rss / 2, "peak {peak} KiB should not be far below current {rss} KiB");
    }
}
