//! Snapshot and run-report types: the machine-readable schema shared by
//! the CLI's `--report` flag and the bench binaries.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

/// Version of the [`RunReport`] JSON schema. Bumped whenever a field is
/// added, removed, or changes meaning; consumers should check it before
/// interpreting the rest of the document.
///
/// v2 adds the optional [`RunReport::timeline`] and [`RunReport::trace`]
/// sections. Every v1 field kept its name and meaning, so v1 readers can
/// treat a v2 document as v1 plus ignorable extra keys, and this build
/// still parses v1 documents (the new fields deserialize as absent).
pub const REPORT_VERSION: u32 = 2;

/// A named counter total.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Dotted counter name, e.g. `synth.walk.steps`.
    pub name: String,
    /// Total at snapshot time.
    pub value: u64,
}

/// A named gauge value.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeEntry {
    /// Dotted gauge name, e.g. `synth.walk.budget`.
    pub name: String,
    /// Last value written.
    pub value: u64,
}

/// One non-empty log2 bucket of a histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Inclusive lower bound of the bucket.
    pub lo: u64,
    /// Inclusive upper bound of the bucket.
    pub hi: u64,
    /// Samples that landed in `[lo, hi]`.
    pub count: u64,
}

/// A named histogram: total sample count plus its non-empty buckets.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramEntry {
    /// Dotted histogram name, e.g. `profile.block_size`.
    pub name: String,
    /// Total samples across all buckets.
    pub count: u64,
    /// Non-empty buckets in ascending order.
    pub buckets: Vec<HistogramBucket>,
}

/// One completed span.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanEntry {
    /// Unique id within the run (never 0).
    pub id: u64,
    /// Id of the enclosing span, or 0 for a root span.
    pub parent: u64,
    /// Stage name, e.g. `synth.gen`.
    pub name: String,
    /// Open time in nanoseconds since the registry epoch.
    pub start_ns: u64,
    /// Wall time from open to drop, in nanoseconds.
    pub duration_ns: u64,
}

/// A point-in-time copy of the whole registry.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterEntry>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeEntry>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramEntry>,
    /// All completed spans, in completion order.
    pub spans: Vec<SpanEntry>,
}

impl TelemetrySnapshot {
    /// The schedule-independent view: drops spans and the `span.*.ns`
    /// latency histograms they feed. What remains is a pure function of
    /// the work performed — identical across `PERFCLONE_JOBS` settings
    /// for the same seed (the contract `tests/observability.rs` checks).
    #[must_use]
    pub fn deterministic(mut self) -> TelemetrySnapshot {
        self.spans.clear();
        self.histograms.retain(|h| !h.name.starts_with("span."));
        self
    }
}

/// Aggregate wall time of one pipeline stage (all spans sharing a name).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageSummary {
    /// Span name, e.g. `profile.collect`.
    pub name: String,
    /// Number of spans recorded under this name.
    pub calls: u64,
    /// Summed wall time across those spans, in nanoseconds. Nested spans
    /// each count their own wall time; sibling stages do not sum to the
    /// parent.
    pub total_ns: u64,
}

/// Hit statistics of one [`WorkloadCache`] memo, derived from its
/// `cache.<name>.lookups` / `cache.<name>.computes` counters.
///
/// [`WorkloadCache`]: https://docs.rs/perfclone
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CacheRates {
    /// Memo name, e.g. `profile` or `addr_trace`.
    pub name: String,
    /// Total lookups.
    pub lookups: u64,
    /// Lookups that had to run the compute closure.
    pub computes: u64,
    /// Lookups served from an already-computed slot.
    pub hits: u64,
    /// `hits / lookups`, or 0 when there were no lookups.
    pub hit_rate: f64,
}

/// One fidelity-gate attribute judgement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GateAttribute {
    /// Attribute family label, e.g. `instruction mix`.
    pub attribute: String,
    /// Measured distance between original and clone.
    pub delta: f64,
    /// Warn threshold the gate applied.
    pub warn_at: f64,
    /// Fail threshold the gate applied.
    pub fail_at: f64,
    /// `pass`, `warn`, or `fail`.
    pub verdict: String,
}

/// Throughput of a design-space sweep.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepStats {
    /// Cache configurations simulated.
    pub configs: u64,
    /// Wall time of the sweep stage, in nanoseconds.
    pub wall_ns: u64,
    /// `configs / wall seconds`.
    pub configs_per_sec: f64,
    /// Instructions represented across all simulated configs.
    pub instrs: u64,
    /// `instrs / wall seconds`.
    pub instrs_per_sec: f64,
}

/// One quarantined sweep cell: a cell whose execution failed permanently
/// under `--keep-going` and whose row the sweep therefore omits.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuarantinedCell {
    /// Linear cell index within the grid.
    pub cell: u64,
    /// Stable cell ID (`g<spec-hash>-c<index>`).
    pub id: String,
    /// Typed failure kind (the error variant's stable tag, e.g. `sim` or
    /// `budget-exhausted`).
    pub kind: String,
    /// Human-readable failure description.
    pub reason: String,
    /// Execution attempts made before quarantining (1 = no retries).
    pub attempts: u32,
}

/// Degraded-coverage summary of a `--keep-going` sweep: how much of the
/// grid has rows, what was retried, and which cells were quarantined.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DegradedCoverage {
    /// Cells the sweep enumerated.
    pub total_cells: u64,
    /// Cells with a metrics row (`total_cells` minus quarantined).
    pub covered_cells: u64,
    /// Transient-failure retries the supervisor performed.
    pub retries: u64,
    /// The quarantined cells, in cell order.
    pub quarantined: Vec<QuarantinedCell>,
}

/// One sample of the run's time-series telemetry, produced by the
/// [`Sampler`](crate::Sampler) at a fixed cadence while a sweep runs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimelinePoint {
    /// Milliseconds since the registry epoch.
    pub t_ms: u64,
    /// Grid cells completed so far (`grid.cells.done`, including cells
    /// restored from the resume journal).
    pub cells_done: u64,
    /// Cells the sweep enumerates (`grid.cells` gauge; 0 outside sweeps).
    pub cells_total: u64,
    /// Instantaneous throughput since the previous point.
    pub cells_per_s: f64,
    /// Self-sampled resident set size in KiB (0 when procfs is absent).
    pub rss_kib: u64,
    /// Aggregate hit rate across every `cache.*` memo, in `[0, 1]`.
    pub cache_hit_rate: f64,
    /// Transient-failure retries so far (`grid.retries`).
    pub retries: u64,
    /// Cells quarantined so far (`grid.quarantined`).
    pub quarantined: u64,
}

/// The down-sampled time-series a sampler accumulated over a run: the
/// RunReport v2 `timeline` section.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// Effective spacing between points in milliseconds (the base
    /// sampling interval times the final down-sampling stride).
    pub interval_ms: u64,
    /// The thinned series, oldest first.
    pub points: Vec<TimelinePoint>,
}

impl Timeline {
    /// An empty timeline (no points recorded).
    #[must_use]
    pub fn empty() -> Timeline {
        Timeline { interval_ms: 0, points: Vec::new() }
    }
}

/// Event-trace accounting: the RunReport v2 `trace` section, present when
/// the run recorded events for a `--trace-out` export.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Events written over the run (retained + dropped).
    pub events: u64,
    /// Events lost to per-thread ring wrap; 0 means the exported trace is
    /// complete.
    pub dropped: u64,
    /// Threads that recorded at least one event.
    pub threads: u64,
}

/// A named scalar result (bench errors, IPC deltas, miss rates).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Metric {
    /// Dotted metric name, e.g. `fig06.ipc.err.crc32`.
    pub name: String,
    /// The value.
    pub value: f64,
}

/// The versioned, machine-readable record of one pipeline run: what the
/// CLI writes for `--report out.json` and the bench binaries emit so both
/// share one schema. Derived summaries (stages, cache rates) ride next to
/// the raw snapshot so consumers can recompute anything.
/// `Deserialize` is hand-written (not derived) so the v2-only optional
/// fields parse as absent from v1 documents instead of erroring.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct RunReport {
    /// Schema version; see [`REPORT_VERSION`].
    pub report_version: u32,
    /// The command that produced the report, e.g. `clone` or `bench.fig06`.
    pub command: String,
    /// Workload (kernel) name, or a comma list / `suite` for multi-kernel
    /// runs.
    pub workload: String,
    /// Per-stage wall-time aggregates, sorted by name.
    pub stages: Vec<StageSummary>,
    /// Per-memo cache hit rates, sorted by name.
    pub caches: Vec<CacheRates>,
    /// Fidelity-gate attribute distances (empty when no gate ran).
    pub gate: Vec<GateAttribute>,
    /// Sweep throughput (null when no sweep ran).
    pub sweep: Option<SweepStats>,
    /// Degraded-coverage summary (null when the sweep was healthy or no
    /// sweep ran): present exactly when a `--keep-going` grid sweep
    /// quarantined cells.
    pub degraded: Option<DegradedCoverage>,
    /// Free-form scalar results.
    pub metrics: Vec<Metric>,
    /// Down-sampled time-series of throughput, RSS, and cache hit rates
    /// (null when no sampler ran). Added in schema v2.
    pub timeline: Option<Timeline>,
    /// Event-trace accounting (null when tracing was off). Added in
    /// schema v2.
    pub trace: Option<TraceSummary>,
    /// Raw counter totals. Notable names: `cache.trace.lookups` /
    /// `cache.trace.computes` (packed-trace memo traffic, also surfaced in
    /// [`RunReport::caches`]), `trace.captures` / `trace.replays` (packed
    /// captures and zero-allocation replays), `trace.spills` (over-cap
    /// captures spilled to disk and replayed via mmap), `trace.fallbacks`
    /// (captures abandoned — spill disabled or failed — each
    /// re-interpreted instead, never silently truncated),
    /// `trace.spill.reaped` (stray spill files of dead processes removed
    /// on startup), `grid.shards.executed` / `grid.shards.skipped`
    /// (sharded-sweep progress: fresh work vs. journal resume),
    /// `grid.retries` (transient cell failures retried by the
    /// supervisor), `grid.quarantined` (cells given up on under
    /// `--keep-going`), `grid.journal.retries` (transient journal-write
    /// failures retried), and `grid.journal.truncated_recovered`
    /// (truncated/corrupt journal records demoted to pending and
    /// re-executed).
    pub counters: Vec<CounterEntry>,
    /// Raw gauge values. Notable names: `trace.bytes` (total packed-trace
    /// bytes resident in the process), `trace.spill.bytes` (total bytes of
    /// spilled trace files), `grid.cells` (cells the latest grid sweep
    /// enumerates), and `statsim.trace.bytes` (resident footprint of the
    /// latest statistical trace, which cannot be packed).
    pub gauges: Vec<GaugeEntry>,
    /// Raw histograms.
    pub histograms: Vec<HistogramEntry>,
    /// Raw span log.
    pub spans: Vec<SpanEntry>,
}

impl serde::Deserialize for RunReport {
    fn from_value(v: &serde::Value) -> Result<RunReport, serde::Error> {
        Ok(RunReport {
            report_version: serde::get_field(v, "report_version")?,
            command: serde::get_field(v, "command")?,
            workload: serde::get_field(v, "workload")?,
            stages: serde::get_field(v, "stages")?,
            caches: serde::get_field(v, "caches")?,
            gate: serde::get_field(v, "gate")?,
            sweep: serde::opt_field(v, "sweep")?,
            degraded: serde::opt_field(v, "degraded")?,
            metrics: serde::get_field(v, "metrics")?,
            // v2 additions: absent from v1 documents, so optional lookups.
            timeline: serde::opt_field(v, "timeline")?,
            trace: serde::opt_field(v, "trace")?,
            counters: serde::get_field(v, "counters")?,
            gauges: serde::get_field(v, "gauges")?,
            histograms: serde::get_field(v, "histograms")?,
            spans: serde::get_field(v, "spans")?,
        })
    }
}

/// Derives [`StageSummary`] rows by aggregating spans that share a name.
fn stages_from(spans: &[SpanEntry]) -> Vec<StageSummary> {
    let mut agg: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for s in spans {
        let e = agg.entry(s.name.as_str()).or_insert((0, 0));
        e.0 += 1;
        e.1 += s.duration_ns;
    }
    agg.into_iter()
        .map(|(name, (calls, total_ns))| StageSummary { name: name.to_string(), calls, total_ns })
        .collect()
}

/// Derives [`CacheRates`] rows from `cache.<name>.lookups` /
/// `cache.<name>.computes` counter pairs.
fn caches_from(counters: &[CounterEntry]) -> Vec<CacheRates> {
    let mut lookups: BTreeMap<&str, u64> = BTreeMap::new();
    let mut computes: BTreeMap<&str, u64> = BTreeMap::new();
    for c in counters {
        if let Some(rest) = c.name.strip_prefix("cache.") {
            if let Some(memo) = rest.strip_suffix(".lookups") {
                lookups.insert(memo, c.value);
            } else if let Some(memo) = rest.strip_suffix(".computes") {
                computes.insert(memo, c.value);
            }
        }
    }
    lookups
        .into_iter()
        .map(|(name, l)| {
            let c = computes.get(name).copied().unwrap_or(0);
            let hits = l.saturating_sub(c);
            let hit_rate = if l == 0 { 0.0 } else { hits as f64 / l as f64 };
            CacheRates { name: name.to_string(), lookups: l, computes: c, hits, hit_rate }
        })
        .collect()
}

impl RunReport {
    /// Builds a report from a snapshot, deriving the stage and cache-rate
    /// summaries. Gate, sweep, and metric rows start empty; the caller
    /// fills them from stage results it holds.
    pub fn from_snapshot(command: &str, workload: &str, snap: TelemetrySnapshot) -> RunReport {
        RunReport {
            report_version: REPORT_VERSION,
            command: command.to_string(),
            workload: workload.to_string(),
            stages: stages_from(&snap.spans),
            caches: caches_from(&snap.counters),
            gate: Vec::new(),
            sweep: None,
            degraded: None,
            metrics: Vec::new(),
            timeline: None,
            trace: None,
            counters: snap.counters,
            gauges: snap.gauges,
            histograms: snap.histograms,
            spans: snap.spans,
        }
    }

    /// Serializes to compact JSON.
    ///
    /// # Errors
    ///
    /// Never fails for reports this crate builds; the `Result` mirrors
    /// the serializer API.
    pub fn to_json(&self) -> Result<String, serde::Error> {
        serde_json::to_string(self)
    }

    /// Parses a report back from JSON, checking the schema version.
    ///
    /// # Errors
    ///
    /// Returns the first syntax or shape mismatch, or a version error
    /// when `report_version` is newer than this build understands.
    pub fn from_json(s: &str) -> Result<RunReport, serde::Error> {
        let report: RunReport = serde_json::from_str(s)?;
        if report.report_version > REPORT_VERSION {
            return Err(serde::Error::msg(format!(
                "report_version {} is newer than supported version {REPORT_VERSION}",
                report.report_version
            )));
        }
        Ok(report)
    }

    /// Renders the human-readable summary `perfclone report` prints.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "run report v{} · command: {} · workload: {}",
            self.report_version, self.command, self.workload
        );
        if !self.stages.is_empty() {
            let _ = writeln!(out, "\nstages:");
            let width = self.stages.iter().map(|s| s.name.len()).max().unwrap_or(0);
            for s in &self.stages {
                let _ = writeln!(
                    out,
                    "  {:width$}  {:>5} call{}  {:>12}",
                    s.name,
                    s.calls,
                    if s.calls == 1 { " " } else { "s" },
                    fmt_ns(s.total_ns),
                );
            }
        }
        if !self.caches.is_empty() {
            let _ = writeln!(out, "\ncaches:");
            for c in &self.caches {
                let _ = writeln!(
                    out,
                    "  {:12}  {} lookups, {} computes, {} hits ({:.1}%)",
                    c.name,
                    c.lookups,
                    c.computes,
                    c.hits,
                    c.hit_rate * 100.0
                );
            }
        }
        if !self.gate.is_empty() {
            let _ = writeln!(out, "\ngate:");
            for a in &self.gate {
                let _ = writeln!(
                    out,
                    "  {:24}  delta {:.4}  (warn {:.4} / fail {:.4})  {}",
                    a.attribute, a.delta, a.warn_at, a.fail_at, a.verdict
                );
            }
        }
        if let Some(sw) = &self.sweep {
            let _ = writeln!(out, "\nsweep:");
            let _ = writeln!(
                out,
                "  {} configs in {} · {:.1} configs/s · {:.3e} instrs/s",
                sw.configs,
                fmt_ns(sw.wall_ns),
                sw.configs_per_sec,
                sw.instrs_per_sec
            );
        }
        if !self.metrics.is_empty() {
            let _ = writeln!(out, "\nmetrics:");
            for m in &self.metrics {
                let _ = writeln!(out, "  {:32}  {:.6}", m.name, m.value);
            }
        }
        let counter = |name: &str| {
            self.counters.iter().find(|c| c.name == name).map(|c| c.value).unwrap_or(0)
        };
        let gauge =
            |name: &str| self.gauges.iter().find(|g| g.name == name).map(|g| g.value).unwrap_or(0);
        if counter("trace.captures") > 0 {
            let _ = writeln!(
                out,
                "\ntrace storage:\n  {} captures · {} in-memory bytes · {} spills \
                 ({} spilled bytes) · {} fallbacks",
                counter("trace.captures"),
                gauge("trace.bytes"),
                counter("trace.spills"),
                gauge("trace.spill.bytes"),
                counter("trace.fallbacks"),
            );
        }
        if counter("grid.shards.executed") + counter("grid.shards.skipped") > 0 {
            let _ = writeln!(
                out,
                "\ngrid:\n  {} cells · {} shards executed · {} shards resumed from journal",
                gauge("grid.cells"),
                counter("grid.shards.executed"),
                counter("grid.shards.skipped"),
            );
        }
        if let Some(deg) = &self.degraded {
            let _ = writeln!(
                out,
                "\ndegraded coverage:\n  {}/{} cells covered · {} retried transient failure(s) \
                 · {} quarantined",
                deg.covered_cells,
                deg.total_cells,
                deg.retries,
                deg.quarantined.len(),
            );
            const SHOWN: usize = 10;
            for q in deg.quarantined.iter().take(SHOWN) {
                let _ = writeln!(
                    out,
                    "  cell {:>6}  {}  [{}] after {} attempt(s): {}",
                    q.cell, q.id, q.kind, q.attempts, q.reason
                );
            }
            if deg.quarantined.len() > SHOWN {
                let _ = writeln!(out, "  … and {} more", deg.quarantined.len() - SHOWN);
            }
        }
        if let Some(tl) = &self.timeline {
            let peak_rss = tl.points.iter().map(|p| p.rss_kib).max().unwrap_or(0);
            let peak_rate = tl.points.iter().map(|p| p.cells_per_s).fold(0.0f64, f64::max);
            let _ = writeln!(
                out,
                "\ntimeline:\n  {} points every {} ms · peak {:.1} cells/s · peak rss {} KiB",
                tl.points.len(),
                tl.interval_ms,
                peak_rate,
                peak_rss,
            );
        }
        if let Some(tr) = &self.trace {
            let _ = writeln!(
                out,
                "\ntrace:\n  {} events across {} thread(s) · {} dropped to ring wrap",
                tr.events, tr.threads, tr.dropped,
            );
        }
        let _ = writeln!(
            out,
            "\n{} counters · {} gauges · {} histograms · {} spans",
            self.counters.len(),
            self.gauges.len(),
            self.histograms.len(),
            self.spans.len()
        );
        out
    }
}

/// Formats nanoseconds with a readable unit (`1.234 ms`, `2.5 s`, …).
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: vec![
                CounterEntry { name: "cache.profile.computes".into(), value: 1 },
                CounterEntry { name: "cache.profile.lookups".into(), value: 4 },
                CounterEntry { name: "synth.walk.steps".into(), value: 123 },
            ],
            gauges: vec![GaugeEntry { name: "synth.walk.budget".into(), value: 9000 }],
            histograms: vec![
                HistogramEntry {
                    name: "profile.block_size".into(),
                    count: 2,
                    buckets: vec![HistogramBucket { lo: 4, hi: 7, count: 2 }],
                },
                HistogramEntry {
                    name: "span.profile.collect.ns".into(),
                    count: 1,
                    buckets: vec![HistogramBucket { lo: 1024, hi: 2047, count: 1 }],
                },
            ],
            spans: vec![
                SpanEntry {
                    id: 1,
                    parent: 0,
                    name: "profile.collect".into(),
                    start_ns: 10,
                    duration_ns: 1500,
                },
                SpanEntry {
                    id: 2,
                    parent: 1,
                    name: "synth.gen".into(),
                    start_ns: 200,
                    duration_ns: 700,
                },
                SpanEntry {
                    id: 3,
                    parent: 0,
                    name: "synth.gen".into(),
                    start_ns: 2000,
                    duration_ns: 300,
                },
            ],
        }
    }

    #[test]
    fn from_snapshot_derives_stages_and_caches() {
        let report = RunReport::from_snapshot("clone", "crc32", sample_snapshot());
        assert_eq!(report.report_version, REPORT_VERSION);
        assert_eq!(
            report.stages,
            vec![
                StageSummary { name: "profile.collect".into(), calls: 1, total_ns: 1500 },
                StageSummary { name: "synth.gen".into(), calls: 2, total_ns: 1000 },
            ]
        );
        assert_eq!(report.caches.len(), 1);
        let c = &report.caches[0];
        assert_eq!((c.name.as_str(), c.lookups, c.computes, c.hits), ("profile", 4, 1, 3));
        assert!((c.hit_rate - 0.75).abs() < 1e-12);
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let mut report = RunReport::from_snapshot("clone", "crc32", sample_snapshot());
        report.gate.push(GateAttribute {
            attribute: "instruction mix".into(),
            delta: 0.013,
            warn_at: 0.05,
            fail_at: 0.1,
            verdict: "pass".into(),
        });
        report.sweep = Some(SweepStats {
            configs: 28,
            wall_ns: 2_000_000,
            configs_per_sec: 14_000.0,
            instrs: 1_000_000,
            instrs_per_sec: 5e8,
        });
        report.degraded = Some(DegradedCoverage {
            total_cells: 32,
            covered_cells: 30,
            retries: 3,
            quarantined: vec![QuarantinedCell {
                cell: 5,
                id: "gdeadbeefdeadbeef-c5".into(),
                kind: "injected".into(),
                reason: "injected permanent fault at cell 5 (attempt 0)".into(),
                attempts: 1,
            }],
        });
        report.metrics.push(Metric { name: "gate.worst_delta".into(), value: 0.013 });
        report.timeline = Some(Timeline {
            interval_ms: 1000,
            points: vec![TimelinePoint {
                t_ms: 1000,
                cells_done: 16,
                cells_total: 32,
                cells_per_s: 16.0,
                rss_kib: 51200,
                cache_hit_rate: 0.75,
                retries: 1,
                quarantined: 0,
            }],
        });
        report.trace = Some(TraceSummary { events: 4096, dropped: 0, threads: 8 });
        let json = report.to_json().unwrap();
        let back = RunReport::from_json(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn v1_documents_without_the_v2_sections_still_parse() {
        let report = RunReport::from_snapshot("clone", "crc32", sample_snapshot());
        let json = report.to_json().unwrap();
        // Rewrite the document the way a v1 writer produced it: version 1
        // and no timeline/trace keys at all.
        let serde::Value::Obj(fields) = serde_json::from_str::<serde::Value>(&json).unwrap() else {
            panic!("report is not a JSON object")
        };
        let v1_fields: Vec<(String, serde::Value)> = fields
            .into_iter()
            .filter(|(k, _)| k != "timeline" && k != "trace")
            .map(|(k, v)| if k == "report_version" { (k, serde::Value::U64(1)) } else { (k, v) })
            .collect();
        let v1_json = serde_json::to_string(&serde::Value::Obj(v1_fields)).unwrap();
        let back = RunReport::from_json(&v1_json).unwrap();
        assert_eq!(back.report_version, 1);
        assert_eq!(back.timeline, None);
        assert_eq!(back.trace, None);
        assert_eq!(back.stages, report.stages);
    }

    #[test]
    fn newer_schema_versions_are_rejected() {
        let mut report = RunReport::from_snapshot("clone", "crc32", sample_snapshot());
        report.report_version = REPORT_VERSION + 1;
        let json = report.to_json().unwrap();
        let err = RunReport::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("newer"), "{err}");
    }

    #[test]
    fn render_mentions_the_major_sections() {
        let report = RunReport::from_snapshot("clone", "crc32", sample_snapshot());
        let text = report.render();
        assert!(text.contains("run report v2"));
        assert!(text.contains("stages:"));
        assert!(text.contains("profile.collect"));
        assert!(text.contains("caches:"));
        assert!(text.contains("profile"));
        assert!(!text.contains("degraded coverage:"), "healthy runs have no degraded section");
    }

    #[test]
    fn render_lists_quarantined_cells_capped() {
        let mut report = RunReport::from_snapshot("grid", "crc32", sample_snapshot());
        let quarantined: Vec<QuarantinedCell> = (0..12)
            .map(|cell| QuarantinedCell {
                cell,
                id: format!("gdeadbeefdeadbeef-c{cell}"),
                kind: "injected".into(),
                reason: format!("injected permanent fault at cell {cell} (attempt 0)"),
                attempts: 1,
            })
            .collect();
        report.degraded =
            Some(DegradedCoverage { total_cells: 32, covered_cells: 20, retries: 4, quarantined });
        let text = report.render();
        assert!(text.contains("degraded coverage:"));
        assert!(text.contains("20/32 cells covered"));
        assert!(text.contains("[injected]"));
        assert!(text.contains("… and 2 more"), "per-cell listing is capped:\n{text}");
    }
}
