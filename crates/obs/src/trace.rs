//! Per-thread lock-free event rings with Chrome Trace Format export.
//!
//! Every thread that emits a trace event owns a fixed-capacity ring of
//! slots; the owning thread is the only writer, so writes are plain
//! atomic stores guarded by a per-slot sequence counter (a seqlock). The
//! exporter — and nothing else — reads rings, possibly while their owners
//! are still writing: a slot whose sequence is odd or changes across the
//! read is simply counted as dropped, never torn into a half-written
//! event. When a ring wraps, the oldest events are overwritten and the
//! difference between the monotonic write count (`head`) and the ring
//! capacity is reported as the dropped-event count.
//!
//! Tracing is **off** by default and costs two relaxed atomic loads per
//! call site while off; `--trace-out` (or [`set_trace_enabled`], or
//! `PERFCLONE_TRACE=1`) turns it on. Events additionally honour the
//! global [`enabled()`](crate::enabled) switch, so `PERFCLONE_OBS=0`
//! silences tracing along with every other instrument.
//!
//! [`chrome_trace`] renders the retained events as Chrome Trace Format
//! JSON (`{"traceEvents": [...]}`), loadable in Perfetto or
//! `chrome://tracing`. Span begin/end pairs become `"B"`/`"E"` duration
//! events carrying the span id and parent id in `args` (parent edges
//! survive rayon pool hops because [`Span::child_of`](crate::Span) feeds
//! the explicit parent through), and [`trace_instant`] events become
//! thread-scoped `"i"` instants. Export re-balances each thread's stream:
//! `E` events whose `B` was overwritten by a wrap are dropped, and spans
//! still open at export time are closed at the last timestamp seen, so
//! every exported tid has balanced, LIFO-nested `B`/`E` pairs.

use std::cell::OnceCell;
use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use serde::Value;

pub(crate) const KIND_BEGIN: u32 = 1;
pub(crate) const KIND_END: u32 = 2;
pub(crate) const KIND_INSTANT: u32 = 3;

/// Default ring capacity (events per thread); override with
/// `PERFCLONE_TRACE_RING` or [`set_trace_ring_capacity`].
const DEFAULT_RING_CAPACITY: usize = 1 << 14;
const MIN_RING_CAPACITY: usize = 8;
const MAX_RING_CAPACITY: usize = 1 << 22;

/// Open-addressed name-interning probe table size (power of two). The
/// workspace has a few dozen distinct event names; collisions past the
/// table fall back to a mutex-guarded content scan.
const NAME_SLOTS: usize = 1024;

/// One event slot. The sequence counter is even when the slot is stable
/// and odd while the owning thread is overwriting it.
struct Slot {
    seq: AtomicU32,
    kind: AtomicU32,
    name: AtomicU32,
    ts_ns: AtomicU64,
    id: AtomicU64,
    parent: AtomicU64,
}

impl Slot {
    const fn new() -> Slot {
        Slot {
            seq: AtomicU32::new(0),
            kind: AtomicU32::new(0),
            name: AtomicU32::new(0),
            ts_ns: AtomicU64::new(0),
            id: AtomicU64::new(0),
            parent: AtomicU64::new(0),
        }
    }
}

/// A decoded, consistent event read out of a ring.
#[derive(Clone, Copy, Debug)]
struct RawEvent {
    kind: u32,
    name: u32,
    ts_ns: u64,
    id: u64,
    parent: u64,
}

/// One thread's event ring. `head` counts every event ever written (the
/// write cursor is `head % capacity`), so `head - capacity` events have
/// been overwritten once the ring wraps.
struct Ring {
    tid: u64,
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    fn new(tid: u64, capacity: usize) -> Ring {
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, Slot::new);
        Ring { tid, head: AtomicU64::new(0), slots: slots.into_boxed_slice() }
    }

    /// Writes one event. Only ever called from the ring's owning thread.
    fn push(&self, kind: u32, name: u32, ts_ns: u64, id: u64, parent: u64) {
        let head = self.head.load(Ordering::Relaxed);
        let mask = self.slots.len() - 1;
        let Some(slot) = self.slots.get(head as usize & mask) else { return };
        // Seqlock write: odd sequence marks the slot in flux. Release
        // fences order the field stores between the two seq updates for
        // a concurrent exporter.
        slot.seq.fetch_add(1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.kind.store(kind, Ordering::Relaxed);
        slot.name.store(name, Ordering::Relaxed);
        slot.ts_ns.store(ts_ns, Ordering::Relaxed);
        slot.id.store(id, Ordering::Relaxed);
        slot.parent.store(parent, Ordering::Relaxed);
        slot.seq.fetch_add(1, Ordering::Release);
        self.head.store(head + 1, Ordering::Release);
    }

    /// Reads every retained event in write order, skipping (and counting
    /// as dropped) slots that are mid-write or overwritten during the
    /// read. The first element of the return is the events; the second is
    /// the dropped count (wrap overwrites plus torn reads).
    fn collect(&self) -> (Vec<RawEvent>, u64) {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut dropped = start;
        let mut out = Vec::with_capacity((head - start) as usize);
        let mask = self.slots.len() - 1;
        for i in start..head {
            let Some(slot) = self.slots.get(i as usize & mask) else { continue };
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                dropped += 1;
                continue;
            }
            let ev = RawEvent {
                kind: slot.kind.load(Ordering::Relaxed),
                name: slot.name.load(Ordering::Relaxed),
                ts_ns: slot.ts_ns.load(Ordering::Relaxed),
                id: slot.id.load(Ordering::Relaxed),
                parent: slot.parent.load(Ordering::Relaxed),
            };
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != s1 {
                dropped += 1;
                continue;
            }
            out.push(ev);
        }
        (out, dropped)
    }
}

struct NameSlot {
    /// Thin pointer of the interned `&'static str` (0 = empty). Published
    /// with `Release` *after* `idx`, so a `key` hit implies `idx` is set.
    key: AtomicUsize,
    idx: AtomicU32,
}

impl NameSlot {
    const fn new() -> NameSlot {
        NameSlot { key: AtomicUsize::new(0), idx: AtomicU32::new(0) }
    }
}

struct TraceState {
    enabled: AtomicBool,
    capacity: AtomicUsize,
    next_tid: AtomicU64,
    rings: Mutex<Vec<Arc<Ring>>>,
    /// Interned event names; `RawEvent::name` indexes this table.
    names: Mutex<Vec<String>>,
    name_slots: Box<[NameSlot]>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn state() -> &'static TraceState {
    static STATE: OnceLock<TraceState> = OnceLock::new();
    STATE.get_or_init(|| {
        let on =
            matches!(std::env::var("PERFCLONE_TRACE").as_deref(), Ok("1") | Ok("on") | Ok("true"));
        let capacity = std::env::var("PERFCLONE_TRACE_RING")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .map_or(DEFAULT_RING_CAPACITY, clamp_capacity);
        let mut name_slots = Vec::with_capacity(NAME_SLOTS);
        name_slots.resize_with(NAME_SLOTS, NameSlot::new);
        TraceState {
            enabled: AtomicBool::new(on),
            capacity: AtomicUsize::new(capacity),
            next_tid: AtomicU64::new(1),
            rings: Mutex::new(Vec::new()),
            names: Mutex::new(Vec::new()),
            name_slots: name_slots.into_boxed_slice(),
        }
    })
}

fn clamp_capacity(cap: usize) -> usize {
    cap.clamp(MIN_RING_CAPACITY, MAX_RING_CAPACITY).next_power_of_two()
}

/// Whether event tracing is currently recording (requires both the trace
/// switch and the global [`enabled()`](crate::enabled) switch).
#[inline]
pub fn trace_enabled() -> bool {
    crate::enabled() && state().enabled.load(Ordering::Relaxed)
}

/// Turns event tracing on or off. Off by default; the CLI enables it for
/// the duration of a `--trace-out` run. `PERFCLONE_TRACE=1` starts the
/// process with tracing on.
pub fn set_trace_enabled(on: bool) {
    state().enabled.store(on, Ordering::Relaxed);
}

/// Sets the per-thread ring capacity (rounded up to a power of two) for
/// rings created *after* the call; existing rings keep their size. Also
/// settable at process start with `PERFCLONE_TRACE_RING`.
pub fn set_trace_ring_capacity(capacity: usize) {
    state().capacity.store(clamp_capacity(capacity), Ordering::Relaxed);
}

thread_local! {
    static LOCAL_RING: OnceCell<Arc<Ring>> = const { OnceCell::new() };
}

/// Runs `f` on the calling thread's ring, creating and registering it on
/// first use. Quietly does nothing during thread-local teardown.
fn with_ring(f: impl FnOnce(&Ring)) {
    let _ = LOCAL_RING.try_with(|cell| {
        let ring = cell.get_or_init(|| {
            let s = state();
            let tid = s.next_tid.fetch_add(1, Ordering::Relaxed);
            let ring = Arc::new(Ring::new(tid, s.capacity.load(Ordering::Relaxed)));
            lock(&s.rings).push(Arc::clone(&ring));
            ring
        });
        f(ring);
    });
}

/// Interns `name` and returns its index in the export name table. The
/// fast path is one probe of a lock-free open-addressed table keyed by
/// the string's address (event names are `&'static str` literals, so the
/// address is stable per call site).
fn name_id(name: &'static str) -> u32 {
    let s = state();
    let key = name.as_ptr() as usize;
    let mask = NAME_SLOTS - 1;
    let mut h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 29;
    for step in 0..NAME_SLOTS {
        let Some(slot) = s.name_slots.get((h + step) & mask) else { break };
        let k = slot.key.load(Ordering::Acquire);
        if k == key {
            return slot.idx.load(Ordering::Relaxed);
        }
        if k == 0 {
            // Claim under the names mutex so idx allocation and slot
            // publication are atomic with respect to other claimers.
            let mut names = lock(&s.names);
            let k = slot.key.load(Ordering::Acquire);
            if k == key {
                return slot.idx.load(Ordering::Relaxed);
            }
            if k != 0 {
                continue; // lost the slot to a different name; keep probing
            }
            let idx = names.len() as u32;
            names.push(name.to_string());
            slot.idx.store(idx, Ordering::Relaxed);
            slot.key.store(key, Ordering::Release);
            return idx;
        }
    }
    // Probe table exhausted (hundreds of distinct names): fall back to a
    // content scan under the mutex. Correct, just slower.
    let mut names = lock(&s.names);
    if let Some(idx) = names.iter().position(|n| n == name) {
        return idx as u32;
    }
    let idx = names.len() as u32;
    names.push(name.to_string());
    idx
}

/// Records a thread-scoped instant event (rendered as `"i"` in the
/// exported trace). Near-free while tracing is off.
#[inline]
pub fn trace_instant(name: &'static str) {
    if !trace_enabled() {
        return;
    }
    let id = name_id(name);
    let ts = crate::registry::registry().elapsed_ns();
    with_ring(|r| r.push(KIND_INSTANT, id, ts, 0, 0));
}

/// Records a span-begin event. Called by [`Span::open`](crate::Span) with
/// the span's id, parent id, and start timestamp.
#[inline]
pub(crate) fn span_begin(name: &'static str, span_id: u64, parent: u64, ts_ns: u64) {
    if !trace_enabled() {
        return;
    }
    let id = name_id(name);
    with_ring(|r| r.push(KIND_BEGIN, id, ts_ns, span_id, parent));
}

/// Records a span-end event. Called by `Span::drop`.
#[inline]
pub(crate) fn span_end(name: &'static str, span_id: u64, parent: u64) {
    if !trace_enabled() {
        return;
    }
    let id = name_id(name);
    let ts = crate::registry::registry().elapsed_ns();
    with_ring(|r| r.push(KIND_END, id, ts, span_id, parent));
}

/// Rewinds every ring (and so the event and dropped counts) to empty.
/// Registered rings, interned names, and thread ids survive. Intended for
/// quiescent points, like [`reset()`](crate::reset) — which calls this.
pub(crate) fn trace_reset() {
    for ring in lock(&state().rings).iter() {
        ring.head.store(0, Ordering::Release);
    }
}

/// Aggregate event accounting across every ring, for the RunReport v2
/// `trace` summary and the CLI's post-export one-liner.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Events written over the rings' lifetime (retained + dropped).
    pub events: u64,
    /// Events lost to ring wrap (oldest-first overwrite).
    pub dropped: u64,
    /// Threads that wrote at least one event.
    pub threads: u64,
}

/// Returns the current event accounting. Exact when writers are
/// quiescent; while a sweep is still running the totals may trail the
/// writers by in-flight events.
pub fn trace_stats() -> TraceStats {
    let s = state();
    let mut stats = TraceStats::default();
    for ring in lock(&s.rings).iter() {
        let head = ring.head.load(Ordering::Acquire);
        if head == 0 {
            continue;
        }
        let cap = ring.slots.len() as u64;
        stats.events += head;
        stats.dropped += head.saturating_sub(cap);
        stats.threads += 1;
    }
    stats
}

/// Renders every retained event as Chrome Trace Format JSON — an object
/// with a `traceEvents` array — loadable in Perfetto. Timestamps are
/// microseconds (fractional, nanosecond precision) since the registry
/// epoch. Each ring becomes one `tid`; per tid the stream is re-balanced
/// so `B`/`E` pairs always match (see module docs).
pub fn chrome_trace() -> String {
    let s = state();
    let names: Vec<String> = lock(&s.names).clone();
    let mut rings: Vec<Arc<Ring>> = lock(&s.rings).iter().map(Arc::clone).collect();
    rings.sort_by_key(|r| r.tid);
    let pid = u64::from(std::process::id());

    let mut events: Vec<Value> = Vec::new();
    events.push(meta_event("process_name", pid, 0, "perfclone"));
    for ring in &rings {
        let (raw, _dropped) = ring.collect();
        if raw.is_empty() {
            continue;
        }
        events.push(meta_event("thread_name", pid, ring.tid, &format!("worker-{}", ring.tid)));
        // Track open B events so the exported stream is balanced even if
        // a wrap ate a B (skip its orphaned E) or a span is still open
        // (synthesize its E at the last timestamp seen).
        let mut open: Vec<u32> = Vec::new();
        let mut last_ts = 0u64;
        for ev in &raw {
            last_ts = last_ts.max(ev.ts_ns);
            let name = names.get(ev.name as usize).map_or("?", String::as_str);
            match ev.kind {
                KIND_BEGIN => {
                    open.push(ev.name);
                    events.push(begin_event(name, pid, ring.tid, ev.ts_ns, ev.id, ev.parent));
                }
                KIND_END => {
                    if open.pop().is_none() {
                        continue; // B lost to wrap; dropping E keeps the tid balanced
                    }
                    events.push(end_event(name, pid, ring.tid, ev.ts_ns));
                }
                _ => events.push(instant_event(name, pid, ring.tid, ev.ts_ns)),
            }
        }
        while let Some(name_idx) = open.pop() {
            let name = names.get(name_idx as usize).map_or("?", String::as_str);
            events.push(end_event(name, pid, ring.tid, last_ts));
        }
    }

    let doc = Value::Obj(vec![
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
        ("traceEvents".to_string(), Value::Arr(events)),
    ]);
    serde_json::to_string(&doc).unwrap_or_else(|_| "{\"traceEvents\":[]}".to_string())
}

fn ts_us(ts_ns: u64) -> Value {
    Value::F64(ts_ns as f64 / 1000.0)
}

fn event_base(name: &str, ph: &str, pid: u64, tid: u64) -> Vec<(String, Value)> {
    vec![
        ("name".to_string(), Value::Str(name.to_string())),
        ("ph".to_string(), Value::Str(ph.to_string())),
        ("pid".to_string(), Value::U64(pid)),
        ("tid".to_string(), Value::U64(tid)),
    ]
}

fn meta_event(name: &str, pid: u64, tid: u64, arg_name: &str) -> Value {
    let mut fields = event_base(name, "M", pid, tid);
    fields.push((
        "args".to_string(),
        Value::Obj(vec![("name".to_string(), Value::Str(arg_name.to_string()))]),
    ));
    Value::Obj(fields)
}

fn begin_event(name: &str, pid: u64, tid: u64, ts_ns: u64, id: u64, parent: u64) -> Value {
    let mut fields = event_base(name, "B", pid, tid);
    fields.push(("cat".to_string(), Value::Str("span".to_string())));
    fields.push(("ts".to_string(), ts_us(ts_ns)));
    fields.push((
        "args".to_string(),
        Value::Obj(vec![
            ("id".to_string(), Value::U64(id)),
            ("parent".to_string(), Value::U64(parent)),
        ]),
    ));
    Value::Obj(fields)
}

fn end_event(name: &str, pid: u64, tid: u64, ts_ns: u64) -> Value {
    let mut fields = event_base(name, "E", pid, tid);
    fields.push(("cat".to_string(), Value::Str("span".to_string())));
    fields.push(("ts".to_string(), ts_us(ts_ns)));
    Value::Obj(fields)
}

fn instant_event(name: &str, pid: u64, tid: u64, ts_ns: u64) -> Value {
    let mut fields = event_base(name, "i", pid, tid);
    fields.push(("cat".to_string(), Value::Str("instant".to_string())));
    fields.push(("ts".to_string(), ts_us(ts_ns)));
    fields.push(("s".to_string(), Value::Str("t".to_string())));
    Value::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::registry_lock;

    #[test]
    fn ring_records_in_order_and_wraps_with_accurate_drop_count() {
        let ring = Ring::new(1, 8);
        for i in 0..5u64 {
            ring.push(KIND_INSTANT, 0, i * 10, 0, 0);
        }
        let (events, dropped) = ring.collect();
        assert_eq!(dropped, 0);
        assert_eq!(events.iter().map(|e| e.ts_ns).collect::<Vec<_>>(), [0, 10, 20, 30, 40]);
        for i in 5..20u64 {
            ring.push(KIND_INSTANT, 0, i * 10, 0, 0);
        }
        let (events, dropped) = ring.collect();
        assert_eq!(dropped, 12, "20 written, 8 retained");
        assert_eq!(events.len(), 8);
        assert_eq!(events.first().map(|e| e.ts_ns), Some(120), "oldest retained is #12");
        assert_eq!(events.last().map(|e| e.ts_ns), Some(190));
    }

    #[test]
    fn torn_slots_are_skipped_not_misread() {
        let ring = Ring::new(1, 8);
        ring.push(KIND_INSTANT, 7, 100, 0, 0);
        // Simulate a write caught mid-flight: odd sequence.
        if let Some(slot) = ring.slots.get(1) {
            slot.seq.fetch_add(1, Ordering::Release);
        }
        ring.head.store(2, Ordering::Release);
        let (events, dropped) = ring.collect();
        assert_eq!(events.len(), 1);
        assert_eq!(events.first().map(|e| e.name), Some(7));
        assert_eq!(dropped, 1);
    }

    #[test]
    fn name_interning_is_stable_and_content_addressed() {
        let a = name_id("test.trace.name.a");
        let b = name_id("test.trace.name.b");
        assert_ne!(a, b);
        assert_eq!(name_id("test.trace.name.a"), a);
        let names = lock(&state().names);
        assert_eq!(names.get(a as usize).map(String::as_str), Some("test.trace.name.a"));
        assert_eq!(names.get(b as usize).map(String::as_str), Some("test.trace.name.b"));
    }

    #[test]
    fn export_balances_wrapped_and_unclosed_streams() {
        let _g = registry_lock();
        crate::reset();
        set_trace_enabled(true);
        // Thread with its own small ring: B, E, then an unclosed B.
        std::thread::scope(|scope| {
            scope.spawn(|| {
                with_ring(|r| {
                    let n = name_id("test.trace.balance");
                    r.push(KIND_END, n, 5, 1, 0); // orphaned E (B lost to "wrap")
                    r.push(KIND_BEGIN, n, 10, 2, 0);
                    r.push(KIND_END, n, 20, 2, 0);
                    r.push(KIND_BEGIN, n, 30, 3, 0); // left open
                    r.push(KIND_INSTANT, n, 40, 0, 0);
                });
            });
        });
        set_trace_enabled(false);
        let json = chrome_trace();
        let v: Value = serde_json::from_str(&json).unwrap();
        let Value::Obj(fields) = &v else { panic!("not an object") };
        let events = fields.iter().find(|(k, _)| k == "traceEvents").map(|(_, v)| v).unwrap();
        let Value::Arr(events) = events else { panic!("traceEvents not an array") };
        let mut depth = 0i64;
        for ev in events {
            let Value::Obj(f) = ev else { panic!("event not an object") };
            let ph = f.iter().find(|(k, _)| k == "ph").map(|(_, v)| v).unwrap();
            match ph {
                Value::Str(s) if s == "B" => depth += 1,
                Value::Str(s) if s == "E" => {
                    depth -= 1;
                    assert!(depth >= 0, "E without matching B in export");
                }
                _ => {}
            }
        }
        assert_eq!(depth, 0, "every B closed in export");
    }
}
