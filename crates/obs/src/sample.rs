//! The timeline sampler: a background thread that periodically reads the
//! registry (via [`snapshot()`](crate::snapshot) — see its torn-read
//! contract), self-samples RSS, and produces both live JSONL heartbeat
//! records on stderr and a down-sampled [`Timeline`] for the RunReport v2
//! `timeline` section.
//!
//! ## Torn reads and monotonicity
//!
//! The sampler runs *while stages are running*, which is exactly the
//! regime where [`snapshot()`](crate::snapshot) may return values mixed
//! from slightly different instants. That is safe here by construction:
//! every rate and remainder is computed with saturating arithmetic, and
//! monotonic quantities (`cells_done`, `retries`, `quarantined`) are
//! clamped to never move backwards across successive points, so a torn
//! read can at worst delay an increment to the next tick — it can never
//! panic, divide by zero, or produce a decreasing series.
//!
//! ## Down-sampling
//!
//! The timeline is bounded: when the point buffer reaches
//! [`SamplerConfig::max_points`], every other point is discarded and the
//! recording stride doubles, so an arbitrarily long sweep yields a
//! bounded, evenly thinned series whose effective interval is reported in
//! [`Timeline::interval_ms`]. Heartbeats keep firing at the base interval
//! regardless of the recording stride.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::report::{TelemetrySnapshot, Timeline, TimelinePoint};

/// How the sampler thread runs.
#[derive(Clone, Copy, Debug)]
pub struct SamplerConfig {
    /// Base sampling interval (also the heartbeat cadence).
    pub interval: Duration,
    /// Emit one JSONL heartbeat record to **stderr** per tick. Stdout is
    /// never touched — it stays reserved for result rows.
    pub emit_heartbeats: bool,
    /// Timeline length bound; reaching it halves the series and doubles
    /// the recording stride.
    pub max_points: usize,
}

impl Default for SamplerConfig {
    fn default() -> SamplerConfig {
        SamplerConfig {
            interval: Duration::from_millis(1000),
            emit_heartbeats: false,
            max_points: 256,
        }
    }
}

/// Handle to a running sampler thread; [`Sampler::stop`] joins it and
/// returns the accumulated [`Timeline`].
#[derive(Debug)]
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<Timeline>>,
}

impl Sampler {
    /// Spawns the sampler thread. If the thread cannot be spawned the
    /// sampler is inert and [`Sampler::stop`] returns an empty timeline.
    pub fn start(config: SamplerConfig) -> Sampler {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("obs-sampler".to_string())
            .spawn(move || run(config, &thread_stop))
            .ok();
        Sampler { stop, handle }
    }

    /// Signals the thread, takes one final sample, joins, and returns the
    /// timeline.
    pub fn stop(mut self) -> Timeline {
        self.stop.store(true, Ordering::Relaxed);
        match self.handle.take() {
            Some(h) => h.join().unwrap_or_else(|_| Timeline::empty()),
            None => Timeline::empty(),
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Everything carried tick-to-tick to rate and clamp the series.
struct TickState {
    prev: Option<TimelinePoint>,
    prev_wall: Instant,
}

fn run(config: SamplerConfig, stop: &AtomicBool) -> Timeline {
    let base_interval = config.interval.max(Duration::from_millis(1));
    let max_points = config.max_points.max(2);
    let mut points: Vec<TimelinePoint> = Vec::new();
    let mut stride: u64 = 1;
    let mut tick: u64 = 0;
    let mut state = TickState { prev: None, prev_wall: Instant::now() };
    let mut last_tick = Instant::now();
    loop {
        let stopping = stop.load(Ordering::Relaxed);
        if stopping || last_tick.elapsed() >= base_interval {
            last_tick = Instant::now();
            let (point, eta_s) = sample(&mut state);
            if config.emit_heartbeats {
                eprintln!("{}", heartbeat_line(&point, eta_s));
            }
            if stopping || tick.is_multiple_of(stride) {
                points.push(point);
                if points.len() >= max_points {
                    decimate(&mut points);
                    stride = stride.saturating_mul(2);
                }
            }
            tick += 1;
        }
        if stopping {
            break;
        }
        // Sleep in short slices so stop() returns promptly even with a
        // long heartbeat interval.
        let remaining = base_interval.saturating_sub(last_tick.elapsed());
        std::thread::sleep(remaining.min(Duration::from_millis(20)));
    }
    let interval_ms =
        u64::try_from(base_interval.as_millis()).unwrap_or(u64::MAX).saturating_mul(stride);
    Timeline { interval_ms, points }
}

/// Drops every other point, oldest-first, keeping the series evenly
/// thinned.
fn decimate(points: &mut Vec<TimelinePoint>) {
    let mut keep = false;
    points.retain(|_| {
        keep = !keep;
        keep
    });
}

/// Takes one sample. Returns the timeline point plus the ETA (`None`
/// until a rate is observable) for the heartbeat record.
fn sample(state: &mut TickState) -> (TimelinePoint, Option<f64>) {
    let snap = crate::snapshot();
    let now = Instant::now();
    let raw = point_from_snapshot(&snap);
    let dt_s = now.duration_since(state.prev_wall).as_secs_f64();
    let point = clamp_and_rate(raw, state.prev.as_ref(), dt_s);
    let eta_s = eta_seconds(&point);
    state.prev_wall = now;
    state.prev = Some(point.clone());
    (point, eta_s)
}

/// Builds the raw (unclamped, rate-free) point from a snapshot plus a
/// fresh RSS reading.
fn point_from_snapshot(snap: &TelemetrySnapshot) -> TimelinePoint {
    let counter = |name: &str| snap.counters.iter().find(|c| c.name == name).map_or(0, |c| c.value);
    let gauge = |name: &str| snap.gauges.iter().find(|g| g.name == name).map_or(0, |g| g.value);
    let (mut lookups, mut computes) = (0u64, 0u64);
    for c in &snap.counters {
        if let Some(stem) = c.name.strip_prefix("cache.") {
            if stem.ends_with(".lookups") {
                lookups = lookups.saturating_add(c.value);
            } else if stem.ends_with(".computes") {
                computes = computes.saturating_add(c.value);
            }
        }
    }
    // A torn read can observe `computes` ahead of `lookups`; saturate so
    // the hit rate stays in [0, 1].
    let hits = lookups.saturating_sub(computes);
    let cache_hit_rate = if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 };
    TimelinePoint {
        t_ms: crate::registry::registry().elapsed_ns() / 1_000_000,
        cells_done: counter("grid.cells.done"),
        cells_total: gauge("grid.cells"),
        cells_per_s: 0.0,
        rss_kib: crate::rss::current_rss_kib().unwrap_or(0),
        cache_hit_rate,
        retries: counter("grid.retries"),
        quarantined: counter("grid.quarantined"),
    }
}

/// Clamps monotonic series against the previous point and computes the
/// instantaneous throughput from the wall-clock delta.
fn clamp_and_rate(mut p: TimelinePoint, prev: Option<&TimelinePoint>, dt_s: f64) -> TimelinePoint {
    if let Some(prev) = prev {
        p.t_ms = p.t_ms.max(prev.t_ms);
        p.cells_done = p.cells_done.max(prev.cells_done);
        p.cells_total = p.cells_total.max(prev.cells_total);
        p.retries = p.retries.max(prev.retries);
        p.quarantined = p.quarantined.max(prev.quarantined);
        if dt_s > 0.0 {
            let delta = p.cells_done.saturating_sub(prev.cells_done);
            p.cells_per_s = delta as f64 / dt_s;
        }
    }
    if !p.cells_per_s.is_finite() {
        p.cells_per_s = 0.0;
    }
    p
}

/// Remaining cells over the current rate; `None` while the rate is zero
/// (no progress observed yet) or the total is unknown.
fn eta_seconds(p: &TimelinePoint) -> Option<f64> {
    let remaining = p.cells_total.checked_sub(p.cells_done)?;
    if p.cells_per_s <= 0.0 || p.cells_total == 0 {
        return None;
    }
    Some(remaining as f64 / p.cells_per_s)
}

/// One heartbeat as a single-line JSON record. Hand-formatted from
/// already-validated finite numbers so the line is always valid JSON.
fn heartbeat_line(p: &TimelinePoint, eta_s: Option<f64>) -> String {
    let eta = eta_s.map_or("null".to_string(), |e| format!("{e:.1}"));
    format!(
        concat!(
            "{{\"type\":\"heartbeat\",\"t_ms\":{},\"cells_done\":{},\"cells_total\":{},",
            "\"cells_per_s\":{:.2},\"eta_s\":{},\"retries\":{},\"quarantined\":{},",
            "\"rss_kib\":{},\"cache_hit_rate\":{:.4}}}"
        ),
        p.t_ms,
        p.cells_done,
        p.cells_total,
        p.cells_per_s,
        eta,
        p.retries,
        p.quarantined,
        p.rss_kib,
        p.cache_hit_rate,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::registry_lock;

    #[test]
    fn sampler_tolerates_concurrent_updates_and_never_goes_backwards() {
        let _g = registry_lock();
        crate::reset();
        crate::gauge("grid.cells").set(100_000);
        let sampler = Sampler::start(SamplerConfig {
            interval: Duration::from_millis(1),
            emit_heartbeats: false,
            max_points: 1024,
        });
        let done = crate::counter("grid.cells.done");
        let retries = crate::counter("grid.retries");
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..20_000 {
                        done.incr();
                        retries.incr();
                    }
                });
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let timeline = sampler.stop();
        assert!(!timeline.points.is_empty());
        for pair in timeline.points.windows(2) {
            assert!(pair[1].t_ms >= pair[0].t_ms, "t_ms went backwards");
            assert!(pair[1].cells_done >= pair[0].cells_done, "cells_done went backwards");
            assert!(pair[1].retries >= pair[0].retries, "retries went backwards");
        }
        let last = timeline.points.last().unwrap();
        assert_eq!(last.cells_done, 80_000, "final sample sees the quiesced total");
        assert!(last.cells_per_s.is_finite());
    }

    #[test]
    fn timeline_is_down_sampled_to_the_point_bound() {
        let _g = registry_lock();
        crate::reset();
        let sampler = Sampler::start(SamplerConfig {
            interval: Duration::from_millis(1),
            emit_heartbeats: false,
            max_points: 8,
        });
        std::thread::sleep(Duration::from_millis(60));
        let timeline = sampler.stop();
        assert!(timeline.points.len() <= 8, "got {} points", timeline.points.len());
        assert!(timeline.interval_ms >= 2, "stride doubled at least once");
    }

    #[test]
    fn heartbeat_lines_are_valid_json() {
        let p = TimelinePoint {
            t_ms: 1500,
            cells_done: 40,
            cells_total: 100,
            cells_per_s: 12.5,
            rss_kib: 51200,
            cache_hit_rate: 0.75,
            retries: 1,
            quarantined: 0,
        };
        for eta in [Some(4.8), None] {
            let line = heartbeat_line(&p, eta);
            let v: serde::Value = serde_json::from_str(&line).unwrap();
            let serde::Value::Obj(fields) = v else { panic!("heartbeat not an object") };
            assert!(
                fields
                    .iter()
                    .any(|(k, v)| k == "type"
                        && matches!(v, serde::Value::Str(s) if s == "heartbeat"))
            );
            assert!(fields.iter().any(|(k, _)| k == "eta_s"));
        }
    }

    #[test]
    fn eta_needs_progress_and_a_total() {
        let mut p = TimelinePoint {
            t_ms: 0,
            cells_done: 10,
            cells_total: 0,
            cells_per_s: 5.0,
            rss_kib: 0,
            cache_hit_rate: 0.0,
            retries: 0,
            quarantined: 0,
        };
        assert_eq!(eta_seconds(&p), None, "done > total: no ETA");
        p.cells_total = 100;
        assert_eq!(eta_seconds(&p), Some(18.0));
        p.cells_per_s = 0.0;
        assert_eq!(eta_seconds(&p), None, "no observed rate: no ETA");
    }
}
