//! # perfclone-obs
//!
//! Zero-dependency pipeline telemetry for the performance-cloning
//! toolchain: a global registry of named [`Counter`]s, [`Gauge`]s, and
//! log2-bucketed [`Histogram`]s, lightweight RAII [`Span`]s that record
//! wall time per pipeline stage, and a versioned, machine-readable
//! [`RunReport`] serialized through the vendored serde shims.
//!
//! Every pipeline stage — profile collection, SFG walk and clone
//! emission, stack-distance cache sweeps, statistical simulation, the
//! fidelity gate, and the shared [`WorkloadCache`] — publishes into one
//! registry, so a single snapshot describes where a run's time and work
//! went. The CLI's `--report` flag and the bench binaries serialize that
//! snapshot as a [`RunReport`]; `perfclone report` pretty-prints a saved
//! one.
//!
//! [`WorkloadCache`]: https://docs.rs/perfclone
//!
//! ## Hot-path contract
//!
//! The update path is lock-free: handles are `&'static` atomics interned
//! once per name (the [`count!`]/[`record!`]/[`gauge!`] macros cache the
//! handle in a local `OnceLock`, so the name→handle map is consulted once
//! per call *site*, not per call), and every update is one `Relaxed`
//! atomic RMW behind one `Relaxed` enabled-flag load. Instrumented code
//! batches: hot loops accumulate locally and publish once per stage, so
//! enabling telemetry costs well under 1 % on the sweep benches (see
//! EXPERIMENTS.md "Telemetry overhead").
//!
//! Telemetry is on by default; `PERFCLONE_OBS=0` (or `off`/`false`) or
//! [`set_enabled`]`(false)` turns every update into a near-free branch.
//!
//! ## Determinism contract
//!
//! Counter totals, gauge values, and the bucket totals of histograms not
//! derived from wall time are functions of the work performed, never of
//! the thread schedule — the same seed yields the same snapshot at any
//! `PERFCLONE_JOBS`. Wall-clock data (span durations and the `span.*.ns`
//! histograms they feed) is the explicit exception; filter it with
//! [`TelemetrySnapshot::deterministic`]. `tests/observability.rs` holds
//! the pipeline to this contract by property test.
//!
//! ## Spans under rayon
//!
//! [`Span::enter`] nests under the calling thread's current span via a
//! thread-local. Worker threads spawned by the rayon shim start with no
//! current span, so parallel stages capture [`current`] *before* fanning
//! out and open children with [`Span::child_of`], carrying the parent id
//! across the pool explicitly:
//!
//! ```
//! use perfclone_obs::{current, Span};
//! let sweep = Span::enter("sweep");
//! let parent = current(); // capture on the driving thread
//! // inside each rayon closure:
//! let _cell = Span::child_of(parent, "sweep.cell");
//! ```
//!
//! ## Event tracing and live telemetry
//!
//! Beyond aggregates, the crate records individual events: span
//! begin/end pairs and [`instant!`] markers land in per-thread lock-free
//! ring buffers (see the `trace` module docs) and export as Chrome Trace
//! Format JSON via [`chrome_trace`], loadable in Perfetto. Tracing is off
//! by default; the CLI's `--trace-out FILE` flag enables it for one run.
//! A [`Sampler`] thread turns the same registry into live JSONL
//! heartbeats on stderr and a down-sampled [`Timeline`] for the
//! [`RunReport`] v2 `timeline` section, with RSS self-sampled through
//! [`rss`].

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod registry;
mod report;
pub mod rss;
mod sample;
mod span;
mod trace;

pub use registry::{
    counter, enabled, gauge, histogram, reset, set_enabled, snapshot, Counter, Gauge, Histogram,
};
pub use report::{
    fmt_ns, CacheRates, CounterEntry, DegradedCoverage, GateAttribute, GaugeEntry, HistogramBucket,
    HistogramEntry, Metric, QuarantinedCell, RunReport, SpanEntry, StageSummary, SweepStats,
    TelemetrySnapshot, Timeline, TimelinePoint, TraceSummary, REPORT_VERSION,
};
pub use sample::{Sampler, SamplerConfig};
pub use span::{current, Span, SpanId};
pub use trace::{
    chrome_trace, set_trace_enabled, set_trace_ring_capacity, trace_enabled, trace_instant,
    trace_stats, TraceStats,
};

/// Opens an RAII span: `let _s = span!("synth.gen");`. The span closes
/// (and records) when the guard drops. Nested under the thread's current
/// span; see [`Span::child_of`] for crossing rayon pools.
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::Span::enter($name)
    };
}

/// Adds to a named counter: `count!("synth.walk.steps", n)`; with one
/// argument, increments by 1. The handle is interned on first use per
/// call site, so steady-state cost is one atomic add.
#[macro_export]
macro_rules! count {
    ($name:literal) => {
        $crate::count!($name, 1u64)
    };
    ($name:literal, $n:expr) => {{
        static __HANDLE: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        __HANDLE.get_or_init(|| $crate::counter($name)).add(($n) as u64);
    }};
}

/// Sets a named gauge to a value: `gauge!("synth.walk.budget", b)`.
#[macro_export]
macro_rules! gauge {
    ($name:literal, $v:expr) => {{
        static __HANDLE: ::std::sync::OnceLock<&'static $crate::Gauge> =
            ::std::sync::OnceLock::new();
        __HANDLE.get_or_init(|| $crate::gauge($name)).set(($v) as u64);
    }};
}

/// Records a thread-scoped instant event into the trace ring:
/// `instant!("grid.cell.finish")`. Near-free while tracing is off (the
/// default); see [`set_trace_enabled`] and the `--trace-out` CLI flag.
#[macro_export]
macro_rules! instant {
    ($name:literal) => {
        $crate::trace_instant($name)
    };
}

/// Records a value into a named log2-bucketed histogram:
/// `record!("profile.block_size", size)`.
#[macro_export]
macro_rules! record {
    ($name:literal, $v:expr) => {{
        static __HANDLE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        __HANDLE.get_or_init(|| $crate::histogram($name)).record(($v) as u64);
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// The registry is process-global; tests that read snapshots
    /// serialize on this lock and reset first.
    pub(crate) fn registry_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        match LOCK.get_or_init(|| Mutex::new(())).lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn macros_update_the_registry() {
        let _g = registry_lock();
        reset();
        count!("test.macro.counter");
        count!("test.macro.counter", 4);
        gauge!("test.macro.gauge", 17);
        record!("test.macro.hist", 9);
        let snap = snapshot();
        let c = snap.counters.iter().find(|c| c.name == "test.macro.counter");
        assert_eq!(c.map(|c| c.value), Some(5));
        let g = snap.gauges.iter().find(|g| g.name == "test.macro.gauge");
        assert_eq!(g.map(|g| g.value), Some(17));
        let h = snap.histograms.iter().find(|h| h.name == "test.macro.hist").unwrap();
        assert_eq!(h.count, 1);
        // 9 lands in the [8, 15] bucket.
        assert_eq!(h.buckets, vec![HistogramBucket { lo: 8, hi: 15, count: 1 }]);
    }

    #[test]
    fn disabled_registry_drops_updates() {
        let _g = registry_lock();
        reset();
        set_enabled(false);
        count!("test.disabled.counter", 10);
        record!("test.disabled.hist", 10);
        let _s = span!("test.disabled.span");
        drop(_s);
        set_enabled(true);
        let snap = snapshot();
        assert!(snap.counters.iter().all(|c| c.name != "test.disabled.counter" || c.value == 0));
        assert!(snap.histograms.iter().all(|h| h.name != "test.disabled.hist" || h.count == 0));
        assert!(snap.spans.iter().all(|s| s.name != "test.disabled.span"));
    }

    #[test]
    fn spans_nest_and_carry_explicit_parents() {
        let _g = registry_lock();
        reset();
        let outer = Span::enter("test.outer");
        let outer_id = outer.id().map(SpanId::get).unwrap_or(0);
        {
            let _inner = Span::enter("test.inner");
        }
        // Simulate a rayon worker: no thread-local context, explicit id.
        let captured = outer.id();
        std::thread::scope(|s| {
            s.spawn(|| {
                assert!(current().is_none(), "workers start span-free");
                let _cell = Span::child_of(captured, "test.cell");
            });
        });
        drop(outer);
        let snap = snapshot();
        let find = |name: &str| snap.spans.iter().find(|s| s.name == name).unwrap();
        assert_eq!(find("test.inner").parent, outer_id);
        assert_eq!(find("test.cell").parent, outer_id);
        assert_eq!(find("test.outer").parent, 0);
        // Span durations feed the span.*.ns latency histograms.
        assert!(snap.histograms.iter().any(|h| h.name == "span.test.outer.ns" && h.count == 1));
    }

    #[test]
    fn deterministic_view_excludes_wall_time() {
        let _g = registry_lock();
        reset();
        count!("test.det.counter", 3);
        record!("test.det.hist", 2);
        {
            let _s = span!("test.det.span");
        }
        let det = snapshot().deterministic();
        assert!(det.spans.is_empty());
        assert!(det.histograms.iter().all(|h| !h.name.starts_with("span.")));
        assert!(det.counters.iter().any(|c| c.name == "test.det.counter"));
        assert!(det.histograms.iter().any(|h| h.name == "test.det.hist"));
    }
}
