//! The global telemetry registry: named atomic instruments plus the span
//! log, interned once and updated lock-free.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::report::{
    CounterEntry, GaugeEntry, HistogramBucket, HistogramEntry, SpanEntry, TelemetrySnapshot,
};

/// `HIST_BUCKETS` log2 buckets: bucket 0 holds the value 0, bucket `i ≥ 1`
/// holds `[2^(i-1), 2^i − 1]`, and the last bucket tops out at `u64::MAX`.
const HIST_BUCKETS: usize = 65;

/// A monotonically increasing named counter. Updates are `Relaxed` atomic
/// adds; totals are exact because every increment lands (there is no
/// sampling), but a concurrent reader may observe mid-stage values — see
/// [`snapshot`] for the torn-read semantics.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`; a no-op while telemetry is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1; a no-op while telemetry is disabled.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named last-write-wins value (budgets, configured sizes).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the value; a no-op while telemetry is disabled.
    #[inline]
    pub fn set(&self, v: u64) {
        if enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log2-bucketed histogram of `u64` samples (latencies in nanoseconds,
/// sizes in bytes or instructions). Bucket totals of histograms fed by
/// deterministic quantities are thread-schedule independent; the
/// `span.*.ns` latency histograms are not.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram { buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS] }
    }
}

/// Bucket index of a sample: 0 for 0, else `floor(log2 v) + 1`.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive `[lo, hi]` range of bucket `i`.
fn bucket_range(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 0)
    } else if i >= 64 {
        (1u64 << 63, u64::MAX)
    } else {
        (1u64 << (i - 1), (1u64 << i) - 1)
    }
}

impl Histogram {
    /// Records one sample; a no-op while telemetry is disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    fn entry(&self, name: &str) -> HistogramEntry {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                let (lo, hi) = bucket_range(i);
                buckets.push(HistogramBucket { lo, hi, count: c });
                count += c;
            }
        }
        HistogramEntry { name: name.to_string(), count, buckets }
    }
}

/// One finished span, recorded at guard drop.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SpanRecord {
    pub id: u64,
    pub parent: u64,
    pub name: &'static str,
    pub start_ns: u64,
    pub duration_ns: u64,
}

pub(crate) struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
    spans: Mutex<Vec<SpanRecord>>,
    next_span_id: AtomicU64,
    epoch: Instant,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Instrument maps are only mutated by `BTreeMap::insert`, which
    // cannot be observed half-done through a poisoned lock: recover.
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

pub(crate) fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
        spans: Mutex::new(Vec::new()),
        next_span_id: AtomicU64::new(1),
        epoch: Instant::now(),
    })
}

impl Registry {
    pub(crate) fn next_span_id(&self) -> u64 {
        self.next_span_id.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    pub(crate) fn push_span(&self, record: SpanRecord) {
        lock(&self.spans).push(record);
    }
}

fn intern<T: Default>(map: &Mutex<BTreeMap<&'static str, &'static T>>, name: &str) -> &'static T {
    let mut map = lock(map);
    if let Some(handle) = map.get(name) {
        return handle;
    }
    let leaked_name: &'static str = Box::leak(name.to_string().into_boxed_str());
    let handle: &'static T = Box::leak(Box::new(T::default()));
    map.insert(leaked_name, handle);
    handle
}

/// Interns (or finds) the counter named `name`. The handle is `'static`;
/// cache it (the [`count!`](crate::count) macro does) so the name map is
/// consulted once per call site.
pub fn counter(name: &str) -> &'static Counter {
    intern(&registry().counters, name)
}

/// Interns (or finds) the gauge named `name`.
pub fn gauge(name: &str) -> &'static Gauge {
    intern(&registry().gauges, name)
}

/// Interns (or finds) the histogram named `name`.
pub fn histogram(name: &str) -> &'static Histogram {
    intern(&registry().histograms, name)
}

fn enabled_flag() -> &'static AtomicBool {
    static ENABLED: OnceLock<AtomicBool> = OnceLock::new();
    ENABLED.get_or_init(|| {
        let off =
            matches!(std::env::var("PERFCLONE_OBS").as_deref(), Ok("0") | Ok("off") | Ok("false"));
        AtomicBool::new(!off)
    })
}

/// Whether telemetry updates are being recorded. Defaults to `true`;
/// `PERFCLONE_OBS=0` (or `off`/`false`) starts the process disabled.
#[inline]
pub fn enabled() -> bool {
    enabled_flag().load(Ordering::Relaxed)
}

/// Enables or disables all telemetry recording at runtime (instrument
/// reads, [`snapshot`], and [`reset`] keep working either way).
pub fn set_enabled(on: bool) {
    enabled_flag().store(on, Ordering::Relaxed);
}

/// Takes a full snapshot of the registry: every instrument, sorted by
/// name, plus the recorded spans in completion order.
///
/// Torn-read semantics: each atomic is read once with `Relaxed` ordering
/// and no global lock is held across instruments, so a snapshot taken
/// *while stages are running* may mix values from slightly different
/// instants (e.g. `lookups` observed before a racing `computes`
/// increment). Between stages — where every report in this workspace is
/// taken — all updates have completed and the snapshot is exact.
///
/// Two guarantees hold even mid-run, and the timeline
/// [`Sampler`](crate::Sampler) depends on both: snapshotting never
/// panics or blocks writers, and each *individual* counter is monotonic
/// across successive snapshots (every `add` lands exactly once, so a
/// later snapshot can only observe an equal or larger total). What a
/// torn read can do is skew *relationships between* instruments — a
/// derived quantity like `lookups − computes` may be transiently off by
/// in-flight updates — which is why the sampler computes all derived
/// values with saturating arithmetic and clamps its monotonic series.
pub fn snapshot() -> TelemetrySnapshot {
    let r = registry();
    let counters = lock(&r.counters)
        .iter()
        .map(|(name, c)| CounterEntry { name: (*name).to_string(), value: c.get() })
        .collect();
    let gauges = lock(&r.gauges)
        .iter()
        .map(|(name, g)| GaugeEntry { name: (*name).to_string(), value: g.get() })
        .collect();
    let histograms = lock(&r.histograms).iter().map(|(name, h)| h.entry(name)).collect();
    let spans = lock(&r.spans)
        .iter()
        .map(|s| SpanEntry {
            id: s.id,
            parent: s.parent,
            name: s.name.to_string(),
            start_ns: s.start_ns,
            duration_ns: s.duration_ns,
        })
        .collect();
    TelemetrySnapshot { counters, gauges, histograms, spans }
}

/// Zeroes every instrument, clears the span log, and rewinds the trace
/// event rings. Registrations (and cached handles) stay valid. Intended
/// for tests and for the CLI, which resets before a `--report` run so
/// the report covers exactly one command.
pub fn reset() {
    crate::trace::trace_reset();
    let r = registry();
    for c in lock(&r.counters).values() {
        c.0.store(0, Ordering::Relaxed);
    }
    for g in lock(&r.gauges).values() {
        g.0.store(0, Ordering::Relaxed);
    }
    for h in lock(&r.histograms).values() {
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
    lock(&r.spans).clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::registry_lock;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = bucket_range(i);
            assert!(lo <= hi);
            assert_eq!(bucket_index(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_index(hi), i, "hi of bucket {i}");
        }
    }

    #[test]
    fn interning_returns_the_same_handle() {
        let a = counter("test.intern.same") as *const Counter;
        let b = counter("test.intern.same") as *const Counter;
        assert_eq!(a, b);
        let h1 = histogram("test.intern.hist") as *const Histogram;
        let h2 = histogram("test.intern.hist") as *const Histogram;
        assert_eq!(h1, h2);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let _g = registry_lock();
        let c = counter("test.reset.counter");
        c.add(7);
        let h = histogram("test.reset.hist");
        h.record(100);
        reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        c.incr();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn concurrent_snapshots_never_observe_a_counter_going_backwards() {
        let _g = registry_lock();
        reset();
        let c = counter("test.torn.counter");
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    // Add before checking stop: even a writer first
                    // scheduled after the reader finished lands at least
                    // one increment, keeping the final assert meaningful.
                    loop {
                        c.add(3);
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                });
            }
            let mut prev = 0u64;
            for _ in 0..2_000 {
                let snap = snapshot();
                let v = snap
                    .counters
                    .iter()
                    .find(|e| e.name == "test.torn.counter")
                    .map_or(0, |e| e.value);
                assert!(v >= prev, "counter went backwards: {v} < {prev}");
                prev = v;
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert!(c.get() > 0);
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let _g = registry_lock();
        reset();
        counter("test.sort.b").incr();
        counter("test.sort.a").incr();
        let snap = snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }
}
