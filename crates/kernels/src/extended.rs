//! Extended benchmark population: five additional embedded kernels beyond
//! the paper's Table-1 set, used to test the cloning models on algorithm
//! shapes the 23-kernel population under-represents (sorting networks,
//! trellis decoding, bit packing, dynamic programming).
//!
//! `catalog()` remains the paper's population;
//! [`catalog_extended`](crate::catalog_extended) appends these.

use perfclone_isa::{ProgramBuilder, Reg};

use crate::util::regs::*;
use crate::util::{loop_head, loop_tail_lt, SplitMix64};
use crate::{KernelBuild, Scale};

/// `sobel`: 3×3 Sobel gradient magnitude with thresholding over a
/// grayscale image — the classic automotive edge-detection front end.
pub(crate) fn sobel(scale: Scale) -> KernelBuild {
    let (w, h) = match scale {
        Scale::Tiny => (28usize, 28usize),
        Scale::Small => (120, 120),
    };
    let mut rng = SplitMix64::new(0x50BE1);
    let img = rng.byte_vec(w * h);

    // Host reference.
    let mut expected = 0i64;
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let p = |dx: i64, dy: i64| {
                i64::from(img[((y as i64 + dy) * w as i64 + x as i64 + dx) as usize])
            };
            let gx = p(1, -1) + 2 * p(1, 0) + p(1, 1) - p(-1, -1) - 2 * p(-1, 0) - p(-1, 1);
            let gy = p(-1, 1) + 2 * p(0, 1) + p(1, 1) - p(-1, -1) - 2 * p(0, -1) - p(1, -1);
            let mag = gx.abs() + gy.abs();
            if mag > 200 {
                expected = expected.wrapping_add(1);
            }
            expected = expected.wrapping_add(mag);
        }
    }

    let mut b = ProgramBuilder::new("sobel");
    let timg = b.data_bytes(&img);
    let (px, py) = (I, J);
    let (gx, gy, wl, hl, rowp) = (S0, S1, S2, S3, S4);

    b.li(CHK, 0);
    b.li(B0, timg as i64);
    b.li(wl, w as i64 - 1);
    b.li(hl, h as i64 - 1);
    b.li(S5, 200);

    let wi = w as i32;
    let y_top = loop_head(&mut b, py, 1);
    {
        b.li(T0, w as i64);
        b.mul(rowp, py, T0);
        b.add(rowp, rowp, B0);
        let x_top = loop_head(&mut b, px, 1);
        {
            b.add(T0, rowp, px); // &img[y*w+x]
                                 // gx = (r - l) column sums with Sobel weights.
            b.lb(T1, T0, 1 - wi);
            b.lb(T2, T0, 1);
            b.slli(T2, T2, 1);
            b.add(T1, T1, T2);
            b.lb(T2, T0, 1 + wi);
            b.add(gx, T1, T2);
            b.lb(T1, T0, -1 - wi);
            b.sub(gx, gx, T1);
            b.lb(T1, T0, -1);
            b.slli(T1, T1, 1);
            b.sub(gx, gx, T1);
            b.lb(T1, T0, -1 + wi);
            b.sub(gx, gx, T1);
            // gy
            b.lb(T1, T0, wi - 1);
            b.lb(T2, T0, wi);
            b.slli(T2, T2, 1);
            b.add(T1, T1, T2);
            b.lb(T2, T0, wi + 1);
            b.add(gy, T1, T2);
            b.lb(T1, T0, -wi - 1);
            b.sub(gy, gy, T1);
            b.lb(T1, T0, -wi);
            b.slli(T1, T1, 1);
            b.sub(gy, gy, T1);
            b.lb(T1, T0, -wi + 1);
            b.sub(gy, gy, T1);
            // mag = |gx| + |gy|
            let gx_pos = b.label();
            b.bge(gx, Reg::ZERO, gx_pos);
            b.sub(gx, Reg::ZERO, gx);
            b.bind(gx_pos);
            let gy_pos = b.label();
            b.bge(gy, Reg::ZERO, gy_pos);
            b.sub(gy, Reg::ZERO, gy);
            b.bind(gy_pos);
            b.add(T3, gx, gy);
            let no_edge = b.label();
            b.ble(T3, S5, no_edge);
            b.addi(CHK, CHK, 1);
            b.bind(no_edge);
            b.add(CHK, CHK, T3);
        }
        loop_tail_lt(&mut b, x_top, px, 1, wl);
    }
    loop_tail_lt(&mut b, y_top, py, 1, hl);
    b.halt();

    KernelBuild { program: b.build(), expected }
}

/// `viterbi`: 4-state (K=3) Viterbi decoder — per-symbol branch metrics
/// and add-compare-select over the trellis, the heart of every telecom
/// baseband.
pub(crate) fn viterbi(scale: Scale) -> KernelBuild {
    let n = match scale {
        Scale::Tiny => 1_500,
        Scale::Small => 18_000,
    };
    let mut rng = SplitMix64::new(0x17EB);
    // Received soft symbols: two 3-bit confidences per step.
    let rx: Vec<i64> = (0..2 * n).map(|_| rng.below(8) as i64).collect();
    // Expected (code) outputs per state transition for generator (7,5):
    // out[state][input] packed as 2 bits.
    const OUT: [[i64; 2]; 4] = [[0b00, 0b11], [0b11, 0b00], [0b10, 0b01], [0b01, 0b10]];
    const NEXT: [[usize; 2]; 4] = [[0, 2], [0, 2], [1, 3], [1, 3]];

    // Host reference.
    let mut pm = [0i64, 1 << 20, 1 << 20, 1 << 20];
    let mut expected = 0i64;
    for step in 0..n {
        let (r0, r1) = (rx[2 * step], rx[2 * step + 1]);
        let mut npm = [i64::MAX; 4];
        let mut dec = 0i64;
        for s in 0..4 {
            for input in 0..2 {
                let o = OUT[s][input];
                let b0 = (o >> 1) & 1;
                let b1 = o & 1;
                // Soft metric: distance of confidence from expected bit.
                let m = (r0 - b0 * 7).abs() + (r1 - b1 * 7).abs();
                let cand = pm[s] + m;
                let ns = NEXT[s][input];
                if cand < npm[ns] {
                    npm[ns] = cand;
                    if ns == 0 {
                        dec = input as i64;
                    }
                }
            }
        }
        // Normalize to avoid unbounded growth.
        let min = npm.iter().min().copied().unwrap_or(0);
        for (p, v) in pm.iter_mut().zip(npm.iter()) {
            *p = v - min;
        }
        expected = expected.wrapping_add(dec).wrapping_add(min);
    }
    for p in pm {
        expected = expected.wrapping_add(p);
    }

    let mut b = ProgramBuilder::new("viterbi");
    let trx = b.data_i64(&rx);
    let tout: Vec<i64> = OUT.iter().flatten().copied().collect();
    let tnext: Vec<i64> = NEXT.iter().flatten().map(|&x| x as i64).collect();
    let tout = b.data_i64(&tout);
    let tnext = b.data_i64(&tnext);
    let tpm = b.data_i64(&[0, 1 << 20, 1 << 20, 1 << 20]);
    let tnpm = b.alloc(4 * 8);

    let (rx_r, out_r, next_r, pm_r, npm_r) = (B0, B1, B2, B3, S8);
    let (r0, r1, dec, minv) = (S0, S1, S2, S3);
    let (s, input) = (J, K);

    b.li(CHK, 0);
    b.li(rx_r, trx as i64);
    b.li(out_r, tout as i64);
    b.li(next_r, tnext as i64);
    b.li(pm_r, tpm as i64);
    b.li(npm_r, tnpm as i64);
    b.li(N, n as i64);

    let step = loop_head(&mut b, I, 0);
    {
        b.slli(T0, I, 4);
        b.add(T1, rx_r, T0);
        b.ld(r0, T1, 0);
        b.ld(r1, T1, 8);
        // npm = MAX
        b.li(T2, i64::MAX);
        for k in 0..4i32 {
            b.sd(T2, npm_r, k * 8);
        }
        b.li(dec, 0);
        b.li(T7, 4);
        let s_top = loop_head(&mut b, s, 0);
        {
            b.li(T6, 2);
            let in_top = loop_head(&mut b, input, 0);
            {
                // o = OUT[s][input]
                b.slli(T0, s, 1);
                b.add(T0, T0, input);
                b.slli(T0, T0, 3);
                b.add(T1, out_r, T0);
                b.ld(T2, T1, 0); // o
                b.add(T1, next_r, T0);
                b.ld(T3, T1, 0); // ns
                                 // m = |r0 - b0*7| + |r1 - b1*7|
                b.srli(T4, T2, 1);
                b.andi(T4, T4, 1);
                b.li(T5, 7);
                b.mul(T4, T4, T5);
                b.sub(T4, r0, T4);
                let p0 = b.label();
                b.bge(T4, Reg::ZERO, p0);
                b.sub(T4, Reg::ZERO, T4);
                b.bind(p0);
                b.andi(T2, T2, 1);
                b.mul(T2, T2, T5);
                b.sub(T2, r1, T2);
                let p1 = b.label();
                b.bge(T2, Reg::ZERO, p1);
                b.sub(T2, Reg::ZERO, T2);
                b.bind(p1);
                b.add(T4, T4, T2); // m
                                   // cand = pm[s] + m
                b.slli(T0, s, 3);
                b.add(T1, pm_r, T0);
                b.ld(T2, T1, 0);
                b.add(T4, T4, T2);
                // if cand < npm[ns]: npm[ns] = cand; if ns==0: dec = input
                b.slli(T0, T3, 3);
                b.add(T1, npm_r, T0);
                b.ld(T2, T1, 0);
                let no_update = b.label();
                b.bge(T4, T2, no_update);
                b.sd(T4, T1, 0);
                let not_zero = b.label();
                b.bnez(T3, not_zero);
                b.mv(dec, input);
                b.bind(not_zero);
                b.bind(no_update);
            }
            loop_tail_lt(&mut b, in_top, input, 1, T6);
        }
        loop_tail_lt(&mut b, s_top, s, 1, T7);
        // min over npm; pm = npm - min
        b.ld(minv, npm_r, 0);
        for k in 1..4i32 {
            let skip = b.label();
            b.ld(T0, npm_r, k * 8);
            b.bge(T0, minv, skip);
            b.mv(minv, T0);
            b.bind(skip);
        }
        for k in 0..4i32 {
            b.ld(T0, npm_r, k * 8);
            b.sub(T0, T0, minv);
            b.sd(T0, pm_r, k * 8);
        }
        b.add(CHK, CHK, dec);
        b.add(CHK, CHK, minv);
    }
    loop_tail_lt(&mut b, step, I, 1, N);
    for k in 0..4i32 {
        b.ld(T0, pm_r, k * 8);
        b.add(CHK, CHK, T0);
    }
    b.halt();

    KernelBuild { program: b.build(), expected }
}

/// `huffman`: canonical-Huffman bit packing — table-driven encoding with
/// shift/or accumulation into 64-bit words, the consumer-codec staple.
pub(crate) fn huffman(scale: Scale) -> KernelBuild {
    let n = match scale {
        Scale::Tiny => 6_000,
        Scale::Small => 90_000,
    };
    let mut rng = SplitMix64::new(0x48FF);
    // Skewed source: geometric-ish symbol distribution over 16 symbols.
    let data: Vec<u8> = (0..n)
        .map(|_| {
            let mut s = 0u8;
            while s < 15 && rng.below(2) == 0 {
                s += 1;
            }
            s
        })
        .collect();
    // Fixed canonical code: symbol s gets length min(s+1, 15), code =
    // canonical assignment (host-computed).
    let lengths: Vec<u32> = (0..16u32).map(|s| (s + 1).min(15)).collect();
    let mut codes = vec![0u64; 16];
    {
        let mut code = 0u64;
        let mut last_len = 0u32;
        let mut order: Vec<usize> = (0..16).collect();
        order.sort_by_key(|&i| lengths[i]);
        for &sym in &order {
            code <<= lengths[sym] - last_len;
            codes[sym] = code;
            code += 1;
            last_len = lengths[sym];
        }
    }

    // Host reference: pack codes MSB-first into 64-bit words.
    let mut expected = 0i64;
    let mut acc = 0u64;
    let mut bits = 0u32;
    let mut total_bits = 0u64;
    for &sym in &data {
        let (c, l) = (codes[sym as usize], lengths[sym as usize]);
        total_bits += u64::from(l);
        if bits + l <= 64 {
            acc = (acc << l) | c;
            bits += l;
        } else {
            let hi = 64 - bits;
            let lo = l - hi;
            acc = (acc << hi) | (c >> lo);
            expected ^= acc as i64;
            acc = c & ((1 << lo) - 1);
            bits = lo;
        }
    }
    expected ^= acc as i64;
    expected = expected.wrapping_add(total_bits as i64);

    let mut b = ProgramBuilder::new("huffman");
    let tdata = b.data_bytes(&data);
    let tcodes = b.data_u64(&codes);
    let tlens: Vec<i64> = lengths.iter().map(|&l| i64::from(l)).collect();
    let tlens = b.data_i64(&tlens);

    let (acc_r, bits_r, tot_r) = (S0, S1, S2);
    let (c, l) = (S3, S4);

    b.li(CHK, 0);
    b.li(B0, tdata as i64);
    b.li(B1, tcodes as i64);
    b.li(B2, tlens as i64);
    b.li(acc_r, 0);
    b.li(bits_r, 0);
    b.li(tot_r, 0);
    b.li(S5, 64);
    b.li(N, n as i64);

    let top = loop_head(&mut b, I, 0);
    {
        b.add(T0, B0, I);
        b.lb(T1, T0, 0); // sym
        b.slli(T2, T1, 3);
        b.add(T3, B1, T2);
        b.ld(c, T3, 0);
        b.add(T3, B2, T2);
        b.ld(l, T3, 0);
        b.add(tot_r, tot_r, l);
        b.add(T4, bits_r, l);
        let spill = b.label();
        let done = b.label();
        b.bgt(T4, S5, spill);
        // acc = (acc << l) | c; bits += l
        b.sll(acc_r, acc_r, l);
        b.or(acc_r, acc_r, c);
        b.mv(bits_r, T4);
        b.j(done);
        b.bind(spill);
        // hi = 64 - bits; lo = l - hi
        b.sub(T5, S5, bits_r); // hi
        b.sub(T6, l, T5); // lo
        b.sll(acc_r, acc_r, T5);
        b.srl(T7, c, T6);
        b.or(acc_r, acc_r, T7);
        b.xor(CHK, CHK, acc_r);
        // acc = c & ((1 << lo) - 1); bits = lo
        b.li(T7, 1);
        b.sll(T7, T7, T6);
        b.addi(T7, T7, -1);
        b.and(acc_r, c, T7);
        b.mv(bits_r, T6);
        b.bind(done);
    }
    loop_tail_lt(&mut b, top, I, 1, N);
    b.xor(CHK, CHK, acc_r);
    b.add(CHK, CHK, tot_r);
    b.halt();

    KernelBuild { program: b.build(), expected }
}

/// `typeset`: optimal line breaking by dynamic programming (Knuth-Plass
/// style squared-badness), the office text-formatting workload.
pub(crate) fn typeset(scale: Scale) -> KernelBuild {
    let n = match scale {
        Scale::Tiny => 900,
        Scale::Small => 9_000,
    };
    let line_width = 60i64;
    let mut rng = SplitMix64::new(0x7E57);
    let words: Vec<i64> = (0..n).map(|_| 1 + rng.below(12) as i64).collect();

    // Host reference: dp[i] = best badness for words[i..]; dp[n] = 0.
    let big = 1i64 << 40;
    let mut dp = vec![0i64; n + 1];
    let mut expected = 0i64;
    for i in (0..n).rev() {
        let mut best = big;
        let mut width = -1i64; // running width incl. single spaces
        let mut j = i;
        while j < n {
            width += words[j] + 1;
            if width > line_width {
                break;
            }
            let slack = line_width - width;
            let badness = if j == n - 1 { 0 } else { slack * slack };
            let cand = badness + dp[j + 1];
            if cand < best {
                best = cand;
            }
            j += 1;
        }
        dp[i] = best.min(big);
        expected = expected.wrapping_add(dp[i] & 0xffff);
    }

    let mut b = ProgramBuilder::new("typeset");
    let twords = b.data_i64(&words);
    let tdp = b.alloc((n as u64 + 1) * 8);

    let (w_r, dp_r) = (B0, B1);
    let (best, width, jj, slack) = (S0, S1, S2, S3);

    b.li(CHK, 0);
    b.li(w_r, twords as i64);
    b.li(dp_r, tdp as i64);
    b.li(S4, line_width);
    b.li(S5, big);
    b.li(N, n as i64);
    // dp[n] = 0 is already zero-initialized memory.

    // i from n-1 down to 0.
    b.li(I, n as i64 - 1);
    let i_top = b.label();
    let i_done = b.label();
    b.bind(i_top);
    b.blt(I, Reg::ZERO, i_done);
    {
        b.mv(best, S5);
        b.li(width, -1);
        b.mv(jj, I);
        let j_top = b.label();
        let j_done = b.label();
        b.bind(j_top);
        b.bge(jj, N, j_done);
        b.slli(T0, jj, 3);
        b.add(T1, w_r, T0);
        b.ld(T2, T1, 0);
        b.add(width, width, T2);
        b.addi(width, width, 1);
        b.bgt(width, S4, j_done);
        b.sub(slack, S4, width);
        // badness = (j == n-1) ? 0 : slack^2
        b.mul(T3, slack, slack);
        b.addi(T4, N, -1);
        let not_last = b.label();
        b.bne(jj, T4, not_last);
        b.li(T3, 0);
        b.bind(not_last);
        // cand = badness + dp[j+1]
        b.addi(T5, jj, 1);
        b.slli(T5, T5, 3);
        b.add(T5, dp_r, T5);
        b.ld(T6, T5, 0);
        b.add(T3, T3, T6);
        let no_best = b.label();
        b.bge(T3, best, no_best);
        b.mv(best, T3);
        b.bind(no_best);
        b.addi(jj, jj, 1);
        b.j(j_top);
        b.bind(j_done);
        b.slli(T0, I, 3);
        b.add(T1, dp_r, T0);
        b.sd(best, T1, 0);
        b.li(T2, 0xffff);
        b.and(T3, best, T2);
        b.add(CHK, CHK, T3);
    }
    b.addi(I, I, -1);
    b.j(i_top);
    b.bind(i_done);
    b.halt();

    KernelBuild { program: b.build(), expected }
}

/// `tiff_median`: 3×3 median filter with an insertion-sort network —
/// branch-heavy image denoising (the MiBench `tiffmedian` shape).
pub(crate) fn tiff_median(scale: Scale) -> KernelBuild {
    let (w, h) = match scale {
        Scale::Tiny => (26usize, 26usize),
        Scale::Small => (90, 90),
    };
    let mut rng = SplitMix64::new(0x71FF);
    let img = rng.byte_vec(w * h);

    // Host reference.
    let mut expected = 0i64;
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let mut v = [0i64; 9];
            let mut k = 0;
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    v[k] = i64::from(img[((y as i64 + dy) * w as i64 + x as i64 + dx) as usize]);
                    k += 1;
                }
            }
            // Insertion sort, mirroring the kernel's compare/shift loop.
            for i in 1..9 {
                let key = v[i];
                let mut j = i;
                while j > 0 && v[j - 1] > key {
                    v[j] = v[j - 1];
                    j -= 1;
                }
                v[j] = key;
            }
            expected = expected.wrapping_add(v[4]);
        }
    }

    let mut b = ProgramBuilder::new("tiff_median");
    let timg = b.data_bytes(&img);
    let tv = b.alloc(9 * 8);

    let (px, py) = (I, J);
    let (wl, hl, rowp, v_r) = (S0, S1, S2, S3);
    let (ii, jj, key) = (S4, S5, S6);

    b.li(CHK, 0);
    b.li(B0, timg as i64);
    b.li(v_r, tv as i64);
    b.li(wl, w as i64 - 1);
    b.li(hl, h as i64 - 1);
    b.li(S7, 9);

    let wi = w as i32;
    let y_top = loop_head(&mut b, py, 1);
    {
        b.li(T0, w as i64);
        b.mul(rowp, py, T0);
        b.add(rowp, rowp, B0);
        let x_top = loop_head(&mut b, px, 1);
        {
            b.add(T0, rowp, px);
            // Gather the 3x3 window into v[0..9].
            for (k, off) in [-wi - 1, -wi, -wi + 1, -1, 0, 1, wi - 1, wi, wi + 1].iter().enumerate()
            {
                b.lb(T1, T0, *off);
                b.sd(T1, v_r, (k as i32) * 8);
            }
            // Insertion sort.
            let srt = loop_head(&mut b, ii, 1);
            {
                b.slli(T1, ii, 3);
                b.add(T2, v_r, T1);
                b.ld(key, T2, 0);
                b.mv(jj, ii);
                let shift = b.label();
                let placed = b.label();
                b.bind(shift);
                b.beqz(jj, placed);
                b.slli(T1, jj, 3);
                b.add(T2, v_r, T1);
                b.ld(T3, T2, -8);
                b.ble(T3, key, placed);
                b.sd(T3, T2, 0);
                b.addi(jj, jj, -1);
                b.j(shift);
                b.bind(placed);
                b.slli(T1, jj, 3);
                b.add(T2, v_r, T1);
                b.sd(key, T2, 0);
            }
            loop_tail_lt(&mut b, srt, ii, 1, S7);
            b.ld(T1, v_r, 4 * 8);
            b.add(CHK, CHK, T1);
        }
        loop_tail_lt(&mut b, x_top, px, 1, wl);
    }
    loop_tail_lt(&mut b, y_top, py, 1, hl);
    b.halt();

    KernelBuild { program: b.build(), expected }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::check_kernel;

    #[test]
    fn sobel_checksum() {
        check_kernel(sobel(Scale::Tiny));
    }

    #[test]
    fn viterbi_checksum() {
        check_kernel(viterbi(Scale::Tiny));
    }

    #[test]
    fn huffman_checksum() {
        check_kernel(huffman(Scale::Tiny));
    }

    #[test]
    fn typeset_checksum() {
        check_kernel(typeset(Scale::Tiny));
    }

    #[test]
    fn tiff_median_checksum() {
        check_kernel(tiff_median(Scale::Tiny));
    }
}
