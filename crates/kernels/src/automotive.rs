//! Automotive-domain kernels: `basicmath`, `bitcount`, `qsort`, `susan`.

use perfclone_isa::{FReg, ProgramBuilder};

use crate::util::regs::*;
use crate::util::{loop_head, loop_tail_lt, SplitMix64};
use crate::{KernelBuild, Scale};

/// `basicmath`: Newton iteration on cubic polynomials, bitwise integer
/// square roots, and degree→radian conversion — the MiBench `basicmath`
/// workload structure.
pub(crate) fn basicmath(scale: Scale) -> KernelBuild {
    let n = match scale {
        Scale::Tiny => 150,
        Scale::Small => 2500,
    };
    let mut rng = SplitMix64::new(0xBA51C);
    // Coefficient ranges chosen so the derivative 3x^2+2ax+b stays positive.
    let a: Vec<f64> = (0..n).map(|_| 0.5 + rng.f64()).collect();
    let b: Vec<f64> = (0..n).map(|_| 1.0 + rng.f64()).collect();
    let c: Vec<f64> = (0..n).map(|_| -2.0 + 4.0 * rng.f64()).collect();
    let ints: Vec<u64> = (0..n).map(|_| rng.below(1 << 31)).collect();
    let degs: Vec<f64> = (0..n).map(|_| 360.0 * rng.f64()).collect();

    // Host reference, mirroring the kernel's arithmetic exactly.
    let mut acc_f = 0.0f64;
    for i in 0..n {
        let mut x = 1.0f64;
        for _ in 0..12 {
            let f = ((x + a[i]) * x + b[i]) * x + c[i];
            let fp = (3.0 * x + 2.0 * a[i]) * x + b[i];
            x -= f / fp;
        }
        acc_f += x;
    }
    let mut acc_i = 0i64;
    for &v in &ints {
        let mut v = v;
        let mut res: u64 = 0;
        let mut bit: u64 = 1 << 30;
        while bit > v {
            bit >>= 2;
        }
        while bit != 0 {
            if v >= res + bit {
                v -= res + bit;
                res = (res >> 1) + bit;
            } else {
                res >>= 1;
            }
            bit >>= 2;
        }
        acc_i = acc_i.wrapping_add(res as i64);
    }
    let deg2rad = std::f64::consts::PI / 180.0;
    for &d in &degs {
        acc_f += d * deg2rad;
    }
    let expected = acc_i.wrapping_add((acc_f * 4096.0) as i64);

    let mut bld = ProgramBuilder::new("basicmath");
    let ta = bld.data_f64(&a);
    let tb = bld.data_f64(&b);
    let tc = bld.data_f64(&c);
    let ti = bld.data_u64(&ints);
    let td = bld.data_f64(&degs);
    let (fx, ff, ffp, facc, f3, f2, fa, fb2, fc2, fdr) = (
        FReg::new(0),
        FReg::new(1),
        FReg::new(2),
        FReg::new(3),
        FReg::new(4),
        FReg::new(5),
        FReg::new(6),
        FReg::new(7),
        FReg::new(8),
        FReg::new(9),
    );
    let ft = FReg::new(10);

    bld.li(CHK, 0);
    bld.fli(facc, 0.0);
    bld.fli(f3, 3.0);
    bld.fli(f2, 2.0);
    bld.fli(fdr, deg2rad);
    bld.li(N, n as i64);

    // Part A: Newton on cubics.
    bld.li(B0, ta as i64);
    bld.li(B1, tb as i64);
    bld.li(B2, tc as i64);
    let top_a = loop_head(&mut bld, I, 0);
    {
        bld.slli(T0, I, 3);
        bld.add(P, B0, T0);
        bld.fld(fa, P, 0);
        bld.add(P, B1, T0);
        bld.fld(fb2, P, 0);
        bld.add(P, B2, T0);
        bld.fld(fc2, P, 0);
        bld.fli(fx, 1.0);
        let newt = loop_head(&mut bld, J, 0);
        {
            // f = ((x + a) * x + b) * x + c
            bld.fadd(ff, fx, fa);
            bld.fmul(ff, ff, fx);
            bld.fadd(ff, ff, fb2);
            bld.fmul(ff, ff, fx);
            bld.fadd(ff, ff, fc2);
            // fp = (3x + 2a) * x + b
            bld.fmul(ffp, f3, fx);
            bld.fmul(ft, f2, fa);
            bld.fadd(ffp, ffp, ft);
            bld.fmul(ffp, ffp, fx);
            bld.fadd(ffp, ffp, fb2);
            // x -= f / fp
            bld.fdiv(ff, ff, ffp);
            bld.fsub(fx, fx, ff);
        }
        bld.li(T1, 12);
        loop_tail_lt(&mut bld, newt, J, 1, T1);
        bld.fadd(facc, facc, fx);
    }
    loop_tail_lt(&mut bld, top_a, I, 1, N);

    // Part B: bitwise integer square roots.
    bld.li(B0, ti as i64);
    let top_b = loop_head(&mut bld, I, 0);
    {
        bld.slli(T0, I, 3);
        bld.add(P, B0, T0);
        bld.ld(T1, P, 0); // v
        bld.li(T2, 0); // res
        bld.li(T3, 1 << 30); // bit
        let shrink = bld.label();
        let shrunk = bld.label();
        bld.bind(shrink);
        bld.ble(T3, T1, shrunk); // while bit > v
        bld.srli(T3, T3, 2);
        bld.j(shrink);
        bld.bind(shrunk);
        let sq_top = bld.label();
        let sq_done = bld.label();
        let no_sub = bld.label();
        let next = bld.label();
        bld.bind(sq_top);
        bld.beqz(T3, sq_done);
        bld.add(T4, T2, T3); // res + bit
        bld.blt(T1, T4, no_sub);
        bld.sub(T1, T1, T4);
        bld.srli(T2, T2, 1);
        bld.add(T2, T2, T3);
        bld.j(next);
        bld.bind(no_sub);
        bld.srli(T2, T2, 1);
        bld.bind(next);
        bld.srli(T3, T3, 2);
        bld.j(sq_top);
        bld.bind(sq_done);
        bld.add(CHK, CHK, T2);
    }
    loop_tail_lt(&mut bld, top_b, I, 1, N);

    // Part C: degree→radian conversions.
    bld.li(B0, td as i64);
    let top_c = loop_head(&mut bld, I, 0);
    {
        bld.slli(T0, I, 3);
        bld.add(P, B0, T0);
        bld.fld(ft, P, 0);
        bld.fmul(ft, ft, fdr);
        bld.fadd(facc, facc, ft);
    }
    loop_tail_lt(&mut bld, top_c, I, 1, N);

    // checksum = acc_i + (acc_f * 4096) as i64
    bld.fli(ft, 4096.0);
    bld.fmul(facc, facc, ft);
    bld.cvt_f_i(T0, facc);
    bld.add(CHK, CHK, T0);
    bld.halt();

    KernelBuild { program: bld.build(), expected }
}

/// `bitcount`: three bit-population-count methods (Kernighan loop, byte
/// table lookup, SWAR reduction) over a vector of words.
pub(crate) fn bitcount(scale: Scale) -> KernelBuild {
    let n = match scale {
        Scale::Tiny => 300,
        Scale::Small => 4500,
    };
    let mut rng = SplitMix64::new(0xB17C0);
    let data = rng.u64_vec(n);
    let expected: i64 = data.iter().map(|&x| 3 * i64::from(x.count_ones())).sum();

    let lut: Vec<u8> = (0u32..256).map(|v| v.count_ones() as u8).collect();

    let mut b = ProgramBuilder::new("bitcount");
    let tdata = b.data_u64(&data);
    let tlut = b.data_bytes(&lut);

    b.li(CHK, 0);
    b.li(B0, tdata as i64);
    b.li(B1, tlut as i64);
    b.li(N, n as i64);
    b.li(S0, 8); // inner table-loop bound
    b.li(S6, 0x5555_5555_5555_5555u64 as i64);
    b.li(S7, 0x3333_3333_3333_3333u64 as i64);
    b.li(S8, 0x0f0f_0f0f_0f0f_0f0fu64 as i64);
    b.li(S9, 0x0101_0101_0101_0101u64 as i64);

    let top = loop_head(&mut b, I, 0);
    {
        b.slli(T0, I, 3);
        b.add(P, B0, T0);
        b.ld(S1, P, 0); // x

        // Method 1: Kernighan.
        b.mv(T0, S1);
        b.li(T1, 0);
        let k_top = b.label();
        let k_done = b.label();
        b.bind(k_top);
        b.beqz(T0, k_done);
        b.addi(T2, T0, -1);
        b.and(T0, T0, T2);
        b.addi(T1, T1, 1);
        b.j(k_top);
        b.bind(k_done);
        b.add(CHK, CHK, T1);

        // Method 2: byte-table lookups.
        b.mv(T3, S1);
        b.li(T2, 0);
        let t_top = loop_head(&mut b, K, 0);
        {
            b.andi(T4, T3, 255);
            b.add(T5, B1, T4);
            b.lb(T6, T5, 0);
            b.add(T2, T2, T6);
            b.srli(T3, T3, 8);
        }
        loop_tail_lt(&mut b, t_top, K, 1, S0);
        b.add(CHK, CHK, T2);

        // Method 3: SWAR.
        b.srli(T0, S1, 1);
        b.and(T0, T0, S6);
        b.sub(T0, S1, T0);
        b.srli(T1, T0, 2);
        b.and(T1, T1, S7);
        b.and(T0, T0, S7);
        b.add(T0, T0, T1);
        b.srli(T1, T0, 4);
        b.add(T0, T0, T1);
        b.and(T0, T0, S8);
        b.mul(T0, T0, S9);
        b.srli(T0, T0, 56);
        b.add(CHK, CHK, T0);
    }
    loop_tail_lt(&mut b, top, I, 1, N);
    b.halt();

    KernelBuild { program: b.build(), expected }
}

/// `qsort`: iterative quicksort (Lomuto partition, explicit stack) over a
/// vector of signed words, checksummed order-sensitively.
pub(crate) fn qsort(scale: Scale) -> KernelBuild {
    let n = match scale {
        Scale::Tiny => 400,
        Scale::Small => 9000,
    };
    let mut rng = SplitMix64::new(0x50F7);
    let data: Vec<i64> = (0..n).map(|_| (rng.next_u64() & 0xfff_ffff) as i64).collect();

    let mut sorted = data.clone();
    sorted.sort_unstable();
    let expected = sorted
        .iter()
        .enumerate()
        .fold(0i64, |acc, (i, &v)| acc.wrapping_add(v.wrapping_mul(i as i64 + 1)));

    let mut b = ProgramBuilder::new("qsort");
    let tdata = b.data_i64(&data);
    let tstack = b.alloc(4 * n as u64 * 16 + 64);

    let (arr, stk, sp) = (B0, B1, S0);
    let (lo, hi, piv) = (S1, S2, S3);
    let (pi, pj) = (S4, S5);

    b.li(arr, tdata as i64);
    b.li(stk, tstack as i64);
    // push (0, n-1)
    b.li(T0, 0);
    b.sd(T0, stk, 0);
    b.li(T0, n as i64 - 1);
    b.sd(T0, stk, 8);
    b.li(sp, 1);

    let main_top = b.label();
    let main_done = b.label();
    let skip = b.label();
    b.bind(main_top);
    b.beqz(sp, main_done);
    // pop
    b.addi(sp, sp, -1);
    b.slli(T0, sp, 4);
    b.add(T1, stk, T0);
    b.ld(lo, T1, 0);
    b.ld(hi, T1, 8);
    b.bge(lo, hi, skip);
    {
        // partition: pivot = a[hi]
        b.slli(T0, hi, 3);
        b.add(T1, arr, T0);
        b.ld(piv, T1, 0);
        b.addi(pi, lo, -1);
        b.mv(pj, lo);
        let p_top = b.label();
        let p_done = b.label();
        let no_swap = b.label();
        b.bind(p_top);
        b.bge(pj, hi, p_done);
        b.slli(T0, pj, 3);
        b.add(T1, arr, T0);
        b.ld(T2, T1, 0); // a[j]
        b.bgt(T2, piv, no_swap);
        b.addi(pi, pi, 1);
        b.slli(T3, pi, 3);
        b.add(T4, arr, T3);
        b.ld(T5, T4, 0); // a[i]
        b.sd(T2, T4, 0); // a[i] = a[j]
        b.sd(T5, T1, 0); // a[j] = old a[i]
        b.bind(no_swap);
        b.addi(pj, pj, 1);
        b.j(p_top);
        b.bind(p_done);
        // swap a[i+1], a[hi]
        b.addi(pi, pi, 1);
        b.slli(T0, pi, 3);
        b.add(T1, arr, T0);
        b.ld(T2, T1, 0);
        b.slli(T0, hi, 3);
        b.add(T3, arr, T0);
        b.ld(T4, T3, 0);
        b.sd(T4, T1, 0);
        b.sd(T2, T3, 0);
        // push (lo, i-1)
        b.slli(T0, sp, 4);
        b.add(T1, stk, T0);
        b.sd(lo, T1, 0);
        b.addi(T2, pi, -1);
        b.sd(T2, T1, 8);
        b.addi(sp, sp, 1);
        // push (i+1, hi)
        b.slli(T0, sp, 4);
        b.add(T1, stk, T0);
        b.addi(T2, pi, 1);
        b.sd(T2, T1, 0);
        b.sd(hi, T1, 8);
        b.addi(sp, sp, 1);
    }
    b.bind(skip);
    b.j(main_top);
    b.bind(main_done);

    // checksum: sum a[k] * (k+1)
    b.li(CHK, 0);
    b.li(N, n as i64);
    let c_top = loop_head(&mut b, I, 0);
    {
        b.slli(T0, I, 3);
        b.add(T1, arr, T0);
        b.ld(T2, T1, 0);
        b.addi(T3, I, 1);
        b.mul(T2, T2, T3);
        b.add(CHK, CHK, T2);
    }
    loop_tail_lt(&mut b, c_top, I, 1, N);
    b.halt();

    KernelBuild { program: b.build(), expected }
}

/// `susan`: image-processing kernel — USAN area computation over a 3×3
/// neighbourhood with a brightness-similarity lookup table, as in the
/// MiBench `susan` corner/edge detector.
pub(crate) fn susan(scale: Scale) -> KernelBuild {
    let (w, h) = match scale {
        Scale::Tiny => (28, 28),
        Scale::Small => (110, 110),
    };
    let mut rng = SplitMix64::new(0x5005A);
    let img = rng.byte_vec(w * h);

    // Brightness-similarity LUT over signed differences -255..=255.
    let lut: Vec<u8> = (-255i32..=255)
        .map(|d| {
            let r = f64::from(d) / 20.0;
            (100.0 * (-r.powi(6)).exp()).round() as u8
        })
        .collect();
    let thresh: i64 = 620;

    // Host reference.
    let idx = |x: usize, y: usize| y * w + x;
    let mut expected = 0i64;
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let c = i64::from(img[idx(x, y)]);
            let mut usan = 0i64;
            for (dx, dy) in
                [(-1i64, -1i64), (0, -1), (1, -1), (-1, 0), (1, 0), (-1, 1), (0, 1), (1, 1)]
            {
                let nb = i64::from(img[idx((x as i64 + dx) as usize, (y as i64 + dy) as usize)]);
                usan += i64::from(lut[(255 + c - nb) as usize]);
            }
            if usan < thresh {
                expected = expected.wrapping_add(usan);
            } else {
                expected = expected.wrapping_add(1);
            }
        }
    }

    let mut b = ProgramBuilder::new("susan");
    let timg = b.data_bytes(&img);
    let tlut = b.data_bytes(&lut);

    let (ximg, xlut) = (B0, B1);
    let (px, py) = (I, J);
    let (c, usan) = (S0, S1);
    let (wl, hl) = (S2, S3);
    let row = S4;

    b.li(CHK, 0);
    b.li(ximg, timg as i64);
    b.li(xlut, tlut as i64 + 255); // bias so lut[c - nb] works directly
    b.li(wl, w as i64 - 1);
    b.li(hl, h as i64 - 1);
    b.li(S5, thresh);

    let y_top = loop_head(&mut b, py, 1);
    {
        b.li(T0, w as i64);
        b.mul(row, py, T0);
        b.add(row, row, ximg); // &img[y*w]
        let x_top = loop_head(&mut b, px, 1);
        {
            b.add(T0, row, px);
            b.lb(c, T0, 0);
            b.li(usan, 0);
            // 8 neighbours, unrolled with static offsets from &img[y*w + x].
            for off in [
                -(w as i32) - 1,
                -(w as i32),
                -(w as i32) + 1,
                -1,
                1,
                w as i32 - 1,
                w as i32,
                w as i32 + 1,
            ] {
                b.lb(T1, T0, off);
                b.sub(T2, c, T1);
                b.add(T3, xlut, T2);
                b.lb(T4, T3, 0);
                b.add(usan, usan, T4);
            }
            let not_edge = b.label();
            let done = b.label();
            b.bge(usan, S5, not_edge);
            b.add(CHK, CHK, usan);
            b.j(done);
            b.bind(not_edge);
            b.addi(CHK, CHK, 1);
            b.bind(done);
        }
        loop_tail_lt(&mut b, x_top, px, 1, wl);
    }
    loop_tail_lt(&mut b, y_top, py, 1, hl);
    b.halt();

    KernelBuild { program: b.build(), expected }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::check_kernel;

    #[test]
    fn basicmath_checksum() {
        check_kernel(basicmath(Scale::Tiny));
    }

    #[test]
    fn bitcount_checksum() {
        check_kernel(bitcount(Scale::Tiny));
    }

    #[test]
    fn qsort_checksum() {
        check_kernel(qsort(Scale::Tiny));
    }

    #[test]
    fn susan_checksum() {
        check_kernel(susan(Scale::Tiny));
    }
}
