//! Security-domain kernels: `blowfish`, `rijndael`, `sha`.

use perfclone_isa::{ProgramBuilder, Reg};

use crate::util::regs::*;
use crate::util::{loop_head, loop_tail_lt, SplitMix64};
use crate::{KernelBuild, Scale};

const M32: i64 = 0xffff_ffff;

/// `blowfish`: 16-round Feistel cipher with four S-box lookups per round —
/// the MiBench `blowfish` structure (schedule tables are PRNG-filled; the
/// dataflow, not the key schedule, is what the workload exercises).
pub(crate) fn blowfish(scale: Scale) -> KernelBuild {
    let blocks = match scale {
        Scale::Tiny => 220,
        Scale::Small => 3000,
    };
    let mut rng = SplitMix64::new(0xB10F);
    let p_tab: Vec<u64> = (0..18).map(|_| rng.next_u64() & 0xffff_ffff).collect();
    let s_tab: Vec<u64> = (0..4 * 256).map(|_| rng.next_u64() & 0xffff_ffff).collect();
    let plain: Vec<u64> = (0..2 * blocks).map(|_| rng.next_u64() & 0xffff_ffff).collect();

    let f = |x: u64| -> u64 {
        let a = s_tab[(x >> 24) as usize & 255];
        let b = s_tab[256 + ((x >> 16) as usize & 255)];
        let c = s_tab[512 + ((x >> 8) as usize & 255)];
        let d = s_tab[768 + (x as usize & 255)];
        ((a.wrapping_add(b) & 0xffff_ffff) ^ c).wrapping_add(d) & 0xffff_ffff
    };

    // Host reference.
    let mut check = 0u64;
    for blk in 0..blocks {
        let mut l = plain[2 * blk];
        let mut r = plain[2 * blk + 1];
        for &p in &p_tab[..16] {
            l ^= p;
            r ^= f(l);
            std::mem::swap(&mut l, &mut r);
        }
        std::mem::swap(&mut l, &mut r);
        r ^= p_tab[16];
        l ^= p_tab[17];
        check ^= l.wrapping_add(r) & 0xffff_ffff;
    }
    let expected = check as i64;

    let mut b = ProgramBuilder::new("blowfish");
    let tp = b.data_u64(&p_tab);
    let ts = b.data_u64(&s_tab);
    let tplain = b.data_u64(&plain);

    let (l, r, tmp) = (S0, S1, S2);

    b.li(CHK, 0);
    b.li(B0, tp as i64);
    b.li(B1, ts as i64);
    b.li(B2, tplain as i64);
    b.li(MASK, M32);
    b.li(N, blocks as i64);

    // Emits tmp = F(x): four S-box lookups combined.
    let emit_f = |b: &mut ProgramBuilder, x: Reg, out: Reg| {
        b.srli(T0, x, 24);
        b.andi(T0, T0, 255);
        b.slli(T0, T0, 3);
        b.add(T0, B1, T0);
        b.ld(T1, T0, 0); // a
        b.srli(T0, x, 16);
        b.andi(T0, T0, 255);
        b.slli(T0, T0, 3);
        b.add(T0, B1, T0);
        b.ld(T2, T0, 256 * 8); // b
        b.add(T1, T1, T2);
        b.and(T1, T1, MASK);
        b.srli(T0, x, 8);
        b.andi(T0, T0, 255);
        b.slli(T0, T0, 3);
        b.add(T0, B1, T0);
        b.ld(T2, T0, 512 * 8); // c
        b.xor(T1, T1, T2);
        b.andi(T0, x, 255);
        b.slli(T0, T0, 3);
        b.add(T0, B1, T0);
        b.ld(T2, T0, 768 * 8); // d
        b.add(T1, T1, T2);
        b.and(out, T1, MASK);
    };

    let top = loop_head(&mut b, I, 0);
    {
        b.slli(T3, I, 4);
        b.add(T4, B2, T3);
        b.ld(l, T4, 0);
        b.ld(r, T4, 8);
        // 16 unrolled Feistel rounds.
        for round in 0..16i32 {
            b.ld(T5, B0, round * 8);
            b.xor(l, l, T5);
            emit_f(&mut b, l, tmp);
            b.xor(r, r, tmp);
            // swap l, r
            b.mv(T6, l);
            b.mv(l, r);
            b.mv(r, T6);
        }
        // undo last swap
        b.mv(T6, l);
        b.mv(l, r);
        b.mv(r, T6);
        b.ld(T5, B0, 16 * 8);
        b.xor(r, r, T5);
        b.ld(T5, B0, 17 * 8);
        b.xor(l, l, T5);
        b.add(T5, l, r);
        b.and(T5, T5, MASK);
        b.xor(CHK, CHK, T5);
    }
    loop_tail_lt(&mut b, top, I, 1, N);
    b.halt();

    KernelBuild { program: b.build(), expected }
}

/// The AES S-box, generated from the GF(2^8) multiplicative structure.
fn aes_sbox() -> [u8; 256] {
    let mut sbox = [0u8; 256];
    sbox[0] = 0x63;
    let (mut p, mut q) = (1u8, 1u8);
    loop {
        // p *= 3 in GF(2^8)
        p = p ^ (p << 1) ^ if p & 0x80 != 0 { 0x1b } else { 0 };
        // q /= 3
        q ^= q << 1;
        q ^= q << 2;
        q ^= q << 4;
        if q & 0x80 != 0 {
            q ^= 0x09;
        }
        let x = q ^ q.rotate_left(1) ^ q.rotate_left(2) ^ q.rotate_left(3) ^ q.rotate_left(4);
        sbox[p as usize] = x ^ 0x63;
        if p == 1 {
            break;
        }
    }
    sbox
}

fn xtime(x: u8) -> u8 {
    (x << 1) ^ if x & 0x80 != 0 { 0x1b } else { 0 }
}

/// `rijndael`: AES-128 T-table encryption (9 table rounds + S-box final
/// round) over counter-mode-style plaintext blocks.
pub(crate) fn rijndael(scale: Scale) -> KernelBuild {
    let blocks = match scale {
        Scale::Tiny => 130,
        Scale::Small => 1700,
    };
    let sbox = aes_sbox();
    // Te0[x] = (s2, s, s, s3) packed big-endian style into a u32.
    let te0: Vec<u64> = (0..256)
        .map(|i| {
            let s = sbox[i];
            let s2 = xtime(s);
            let s3 = s2 ^ s;
            (u32::from_be_bytes([s2, s, s, s3])) as u64
        })
        .collect();
    let rot = |t: &[u64], r: u32| -> Vec<u64> {
        t.iter().map(|&v| ((v as u32).rotate_right(8 * r)) as u64).collect()
    };
    let te1 = rot(&te0, 1);
    let te2 = rot(&te0, 2);
    let te3 = rot(&te0, 3);

    // AES-128 key schedule.
    let mut rng = SplitMix64::new(0xAE5);
    let key: [u32; 4] = [
        rng.next_u64() as u32,
        rng.next_u64() as u32,
        rng.next_u64() as u32,
        rng.next_u64() as u32,
    ];
    let mut rk = [0u32; 44];
    rk[..4].copy_from_slice(&key);
    let mut rcon = 1u8;
    for i in 4..44 {
        let mut t = rk[i - 1];
        if i % 4 == 0 {
            t = t.rotate_left(8);
            let b = t.to_be_bytes();
            t = u32::from_be_bytes([
                sbox[b[0] as usize],
                sbox[b[1] as usize],
                sbox[b[2] as usize],
                sbox[b[3] as usize],
            ]);
            t ^= u32::from(rcon) << 24;
            rcon = xtime(rcon);
        }
        rk[i] = rk[i - 4] ^ t;
    }
    let rk64: Vec<u64> = rk.iter().map(|&v| u64::from(v)).collect();
    let plain: Vec<u64> = (0..4 * blocks).map(|_| rng.next_u64() & 0xffff_ffff).collect();

    // Host reference encryption.
    let lookup = |t: &[u64], v: u32, sh: u32| -> u32 { t[((v >> sh) & 0xff) as usize] as u32 };
    let mut check = 0u64;
    for blk in 0..blocks {
        let mut a = [0u32; 4];
        for j in 0..4 {
            a[j] = plain[4 * blk + j] as u32 ^ rk[j];
        }
        for r in 1..10 {
            let mut n = [0u32; 4];
            for j in 0..4 {
                n[j] = lookup(&te0, a[j], 24)
                    ^ lookup(&te1, a[(j + 1) % 4], 16)
                    ^ lookup(&te2, a[(j + 2) % 4], 8)
                    ^ lookup(&te3, a[(j + 3) % 4], 0)
                    ^ rk[4 * r + j];
            }
            a = n;
        }
        let mut c = [0u32; 4];
        for j in 0..4 {
            let b0 = sbox[((a[j] >> 24) & 0xff) as usize];
            let b1 = sbox[((a[(j + 1) % 4] >> 16) & 0xff) as usize];
            let b2 = sbox[((a[(j + 2) % 4] >> 8) & 0xff) as usize];
            let b3 = sbox[(a[(j + 3) % 4] & 0xff) as usize];
            c[j] = u32::from_be_bytes([b0, b1, b2, b3]) ^ rk[40 + j];
            check ^= u64::from(c[j]);
        }
    }
    let expected = check as i64;

    let mut b = ProgramBuilder::new("rijndael");
    let t0a = b.data_u64(&te0);
    let t1a = b.data_u64(&te1);
    let t2a = b.data_u64(&te2);
    let t3a = b.data_u64(&te3);
    let tsbox = b.data_bytes(&sbox);
    let trk = b.data_u64(&rk64);
    let tplain = b.data_u64(&plain);

    let st = [S0, S1, S2, S3]; // state words a0..a3
    let nw = [S4, S5, S6, S7]; // next state
    let (rk_r, sb_r, pl_r) = (S8, S9, B0);

    b.li(CHK, 0);
    b.li(B0, tplain as i64);
    b.li(B1, t0a as i64);
    b.li(B2, t1a as i64);
    b.li(B3, t2a as i64);
    b.li(T7, t3a as i64); // careful: T7 reserved as te3 base inside block loop
    b.li(rk_r, trk as i64);
    b.li(sb_r, tsbox as i64);
    b.li(MASK, M32);
    b.li(N, blocks as i64);

    // Emits out ^= table[(word >> sh) & 0xff] with table base register.
    let emit_lookup =
        |b: &mut ProgramBuilder, table: Reg, word: Reg, sh: i32, out: Reg, first: bool| {
            if sh == 0 {
                b.andi(T0, word, 255);
            } else {
                b.srli(T0, word, sh);
                b.andi(T0, T0, 255);
            }
            b.slli(T0, T0, 3);
            b.add(T0, table, T0);
            b.ld(T1, T0, 0);
            if first {
                b.mv(out, T1);
            } else {
                b.xor(out, out, T1);
            }
        };

    let top = loop_head(&mut b, I, 0);
    {
        // Load plaintext block, xor rk[0..4].
        b.slli(T2, I, 5);
        b.add(T3, pl_r, T2);
        for (j, &s) in st.iter().enumerate() {
            b.ld(s, T3, (j as i32) * 8);
            b.ld(T4, rk_r, (j as i32) * 8);
            b.xor(s, s, T4);
        }
        // 9 T-table rounds, fully unrolled.
        for r in 1..10i32 {
            for j in 0..4usize {
                emit_lookup(&mut b, B1, st[j], 24, nw[j], true);
                emit_lookup(&mut b, B2, st[(j + 1) % 4], 16, nw[j], false);
                emit_lookup(&mut b, B3, st[(j + 2) % 4], 8, nw[j], false);
                emit_lookup(&mut b, T7, st[(j + 3) % 4], 0, nw[j], false);
                b.ld(T4, rk_r, (4 * r + j as i32) * 8);
                b.xor(nw[j], nw[j], T4);
            }
            for j in 0..4usize {
                b.mv(st[j], nw[j]);
            }
        }
        // Final round with the byte S-box.
        for j in 0..4usize {
            // b0..b3 assembled into nw[j]
            b.srli(T0, st[j], 24);
            b.andi(T0, T0, 255);
            b.add(T0, sb_r, T0);
            b.lb(T1, T0, 0);
            b.slli(nw[j], T1, 24);
            b.srli(T0, st[(j + 1) % 4], 16);
            b.andi(T0, T0, 255);
            b.add(T0, sb_r, T0);
            b.lb(T1, T0, 0);
            b.slli(T1, T1, 16);
            b.or(nw[j], nw[j], T1);
            b.srli(T0, st[(j + 2) % 4], 8);
            b.andi(T0, T0, 255);
            b.add(T0, sb_r, T0);
            b.lb(T1, T0, 0);
            b.slli(T1, T1, 8);
            b.or(nw[j], nw[j], T1);
            b.andi(T0, st[(j + 3) % 4], 255);
            b.add(T0, sb_r, T0);
            b.lb(T1, T0, 0);
            b.or(nw[j], nw[j], T1);
            b.ld(T4, rk_r, (40 + j as i32) * 8);
            b.xor(nw[j], nw[j], T4);
            b.xor(CHK, CHK, nw[j]);
        }
    }
    loop_tail_lt(&mut b, top, I, 1, N);
    b.halt();

    KernelBuild { program: b.build(), expected }
}

/// `sha`: SHA-1 compression over a stream of 512-bit message blocks —
/// shift/rotate/XOR dominated with a serial dependence chain.
pub(crate) fn sha(scale: Scale) -> KernelBuild {
    let blocks = match scale {
        Scale::Tiny => 30,
        Scale::Small => 420,
    };
    let mut rng = SplitMix64::new(0x5AA1);
    let msg: Vec<u64> = (0..16 * blocks).map(|_| rng.next_u64() & 0xffff_ffff).collect();

    // Host reference.
    let mut h = [0x6745_2301u32, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476, 0xc3d2_e1f0];
    for blk in 0..blocks {
        let mut w = [0u32; 80];
        for t in 0..16 {
            w[t] = msg[16 * blk + t] as u32;
        }
        #[allow(clippy::needless_range_loop)] // w[t] depends on earlier w entries
        for t in 16..80 {
            w[t] = (w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]).rotate_left(1);
        }
        let (mut a, mut b2, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (t, &wt) in w.iter().enumerate() {
            let (f, k) = match t {
                0..=19 => ((b2 & c) | (!b2 & d), 0x5a82_7999u32),
                20..=39 => (b2 ^ c ^ d, 0x6ed9_eba1),
                40..=59 => ((b2 & c) | (b2 & d) | (c & d), 0x8f1b_bcdc),
                _ => (b2 ^ c ^ d, 0xca62_c1d6),
            };
            let tmp =
                a.rotate_left(5).wrapping_add(f).wrapping_add(e).wrapping_add(k).wrapping_add(wt);
            e = d;
            d = c;
            c = b2.rotate_left(30);
            b2 = a;
            a = tmp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b2);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }
    let expected = (h[0] ^ h[1] ^ h[2] ^ h[3] ^ h[4]) as i64;

    let mut b = ProgramBuilder::new("sha");
    let tmsg = b.data_u64(&msg);
    let tw = b.alloc(80 * 8);
    let th = b.data_u64(&[0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476, 0xc3d2_e1f0]);

    let (va, vb, vc, vd, ve) = (S0, S1, S2, S3, S4);
    let (w_r, h_r, msg_r) = (B1, B2, B0);
    let fk = S5;
    let ff = S6;

    b.li(msg_r, tmsg as i64);
    b.li(w_r, tw as i64);
    b.li(h_r, th as i64);
    b.li(MASK, M32);
    b.li(N, blocks as i64);

    // rotate-left helper on 32-bit values in 64-bit registers.
    let emit_rotl = |b: &mut ProgramBuilder, dst: Reg, src: Reg, amt: i32| {
        b.slli(T0, src, amt);
        b.srli(T1, src, 32 - amt);
        b.or(T0, T0, T1);
        b.and(dst, T0, MASK);
    };

    let top = loop_head(&mut b, K, 0);
    {
        // w[0..16] = msg block
        b.slli(T2, K, 7); // 16 words * 8 bytes
        b.add(T3, msg_r, T2);
        b.li(S7, 16);
        let fill = loop_head(&mut b, I, 0);
        {
            b.slli(T0, I, 3);
            b.add(T1, T3, T0);
            b.ld(T2, T1, 0);
            b.add(T1, w_r, T0);
            b.sd(T2, T1, 0);
        }
        loop_tail_lt(&mut b, fill, I, 1, S7);
        // expand w[16..80]
        b.li(S7, 80);
        let exp = loop_head(&mut b, I, 16);
        {
            b.slli(T2, I, 3);
            b.add(T3, w_r, T2);
            b.ld(T4, T3, -3 * 8);
            b.ld(T5, T3, -8 * 8);
            b.xor(T4, T4, T5);
            b.ld(T5, T3, -14 * 8);
            b.xor(T4, T4, T5);
            b.ld(T5, T3, -16 * 8);
            b.xor(T4, T4, T5);
            emit_rotl(&mut b, T4, T4, 1);
            b.sd(T4, T3, 0);
        }
        loop_tail_lt(&mut b, exp, I, 1, S7);
        // load working vars
        b.ld(va, h_r, 0);
        b.ld(vb, h_r, 8);
        b.ld(vc, h_r, 16);
        b.ld(vd, h_r, 24);
        b.ld(ve, h_r, 32);
        // 80 rounds as 4 phase loops
        for phase in 0..4 {
            let (start, end, k): (i64, i64, i64) = match phase {
                0 => (0, 20, 0x5a82_7999),
                1 => (20, 40, 0x6ed9_eba1),
                2 => (40, 60, 0x8f1b_bcdc),
                _ => (60, 80, 0xca62_c1d6),
            };
            b.li(fk, k);
            b.li(S7, end);
            let round = loop_head(&mut b, I, start);
            {
                match phase {
                    0 => {
                        // f = (b & c) | (!b & d)
                        b.and(T2, vb, vc);
                        b.xor(T3, vb, MASK); // !b within 32 bits
                        b.and(T3, T3, vd);
                        b.or(ff, T2, T3);
                    }
                    2 => {
                        // f = (b&c) | (b&d) | (c&d)
                        b.and(T2, vb, vc);
                        b.and(T3, vb, vd);
                        b.or(T2, T2, T3);
                        b.and(T3, vc, vd);
                        b.or(ff, T2, T3);
                    }
                    _ => {
                        b.xor(T2, vb, vc);
                        b.xor(ff, T2, vd);
                    }
                }
                // tmp = rotl(a,5) + f + e + k + w[t]
                emit_rotl(&mut b, T4, va, 5);
                b.add(T4, T4, ff);
                b.add(T4, T4, ve);
                b.add(T4, T4, fk);
                b.slli(T5, I, 3);
                b.add(T5, w_r, T5);
                b.ld(T6, T5, 0);
                b.add(T4, T4, T6);
                b.and(T4, T4, MASK);
                // rotate variables
                b.mv(ve, vd);
                b.mv(vd, vc);
                emit_rotl(&mut b, vc, vb, 30);
                b.mv(vb, va);
                b.mv(va, T4);
            }
            loop_tail_lt(&mut b, round, I, 1, S7);
        }
        // h += working vars
        for (i, v) in [va, vb, vc, vd, ve].iter().enumerate() {
            b.ld(T2, h_r, (i as i32) * 8);
            b.add(T2, T2, *v);
            b.and(T2, T2, MASK);
            b.sd(T2, h_r, (i as i32) * 8);
        }
    }
    loop_tail_lt(&mut b, top, K, 1, N);

    b.ld(CHK, h_r, 0);
    b.ld(T2, h_r, 8);
    b.xor(CHK, CHK, T2);
    b.ld(T2, h_r, 16);
    b.xor(CHK, CHK, T2);
    b.ld(T2, h_r, 24);
    b.xor(CHK, CHK, T2);
    b.ld(T2, h_r, 32);
    b.xor(CHK, CHK, T2);
    b.halt();

    KernelBuild { program: b.build(), expected }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::check_kernel;

    #[test]
    fn aes_sbox_matches_known_values() {
        let s = aes_sbox();
        assert_eq!(s[0x00], 0x63);
        assert_eq!(s[0x01], 0x7c);
        assert_eq!(s[0x53], 0xed);
        assert_eq!(s[0xff], 0x16);
    }

    #[test]
    fn blowfish_checksum() {
        check_kernel(blowfish(Scale::Tiny));
    }

    #[test]
    fn rijndael_checksum() {
        check_kernel(rijndael(Scale::Tiny));
    }

    #[test]
    fn sha_checksum() {
        check_kernel(sha(Scale::Tiny));
    }
}
