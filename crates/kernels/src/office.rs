//! Office-domain kernels: `stringsearch`, `ispell`, `ghostscript`.

use perfclone_isa::{ProgramBuilder, Reg};

use crate::util::regs::*;
use crate::util::{loop_head, loop_tail_lt, SplitMix64};
use crate::{KernelBuild, Scale};

/// `stringsearch`: Boyer–Moore–Horspool multi-pattern search over lowercase
/// text, including per-pattern shift-table construction.
pub(crate) fn stringsearch(scale: Scale) -> KernelBuild {
    let (text_len, npat) = match scale {
        Scale::Tiny => (4_000, 6),
        Scale::Small => (42_000, 14),
    };
    let mut rng = SplitMix64::new(0x57A6);
    let text: Vec<u8> = (0..text_len).map(|_| b'a' + (rng.below(26) as u8)).collect();
    // Half the patterns are substrings of the text (guaranteed hits).
    let mut pats: Vec<Vec<u8>> = Vec::new();
    for i in 0..npat {
        let m = 4 + rng.below(7) as usize;
        if i % 2 == 0 {
            let at = rng.below((text_len - m) as u64) as usize;
            pats.push(text[at..at + m].to_vec());
        } else {
            pats.push((0..m).map(|_| b'a' + (rng.below(26) as u8)).collect());
        }
    }

    // Host reference.
    let mut expected = 0i64;
    for pat in &pats {
        let m = pat.len();
        let mut shift = [m as i64; 256];
        for j in 0..m - 1 {
            shift[pat[j] as usize] = (m - 1 - j) as i64;
        }
        let mut i = m - 1;
        while i < text_len {
            let c = text[i];
            let mut k = 0usize;
            while k < m && pat[m - 1 - k] == text[i - k] {
                k += 1;
            }
            if k == m {
                expected = expected.wrapping_add(1).wrapping_add(i as i64);
            }
            i += shift[c as usize] as usize;
        }
    }

    // Pattern buffer layout: concatenated bytes; per-pattern (offset, len).
    let mut pat_buf = Vec::new();
    let mut pat_meta = Vec::new();
    for pat in &pats {
        pat_meta.push(pat_buf.len() as i64);
        pat_meta.push(pat.len() as i64);
        pat_buf.extend_from_slice(pat);
    }

    let mut b = ProgramBuilder::new("stringsearch");
    let ttext = b.data_bytes(&text);
    let tpbuf = b.data_bytes(&pat_buf);
    let tmeta = b.data_i64(&pat_meta);
    let tshift = b.alloc(256 * 8);

    let (text_r, shift_r, pat_r) = (B0, B1, B2);
    let (m, pos, k) = (S0, S1, S2);
    let (tlen, p) = (S3, S4);
    let mlast = S5;

    b.li(CHK, 0);
    b.li(text_r, ttext as i64);
    b.li(shift_r, tshift as i64);
    b.li(tlen, text_len as i64);
    b.li(S9, npat as i64);

    let pat_top = loop_head(&mut b, p, 0);
    {
        // Load pattern meta.
        b.slli(T0, p, 4);
        b.li(T1, tmeta as i64);
        b.add(T1, T1, T0);
        b.ld(T2, T1, 0); // offset
        b.ld(m, T1, 8); // length
        b.li(T3, tpbuf as i64);
        b.add(pat_r, T3, T2);
        b.addi(mlast, m, -1);

        // Build shift table: all = m, then shift[pat[j]] = m-1-j for j<m-1.
        b.li(T7, 256);
        let init = loop_head(&mut b, I, 0);
        {
            b.slli(T0, I, 3);
            b.add(T1, shift_r, T0);
            b.sd(m, T1, 0);
        }
        loop_tail_lt(&mut b, init, I, 1, T7);
        let fillt = loop_head(&mut b, I, 0);
        {
            b.add(T0, pat_r, I);
            b.lb(T1, T0, 0);
            b.slli(T1, T1, 3);
            b.add(T1, shift_r, T1);
            b.sub(T2, mlast, I);
            b.sd(T2, T1, 0);
        }
        loop_tail_lt(&mut b, fillt, I, 1, mlast);

        // Scan.
        b.mv(pos, mlast);
        let scan = b.label();
        let scan_done = b.label();
        b.bind(scan);
        b.bge(pos, tlen, scan_done);
        {
            b.add(T0, text_r, pos);
            b.lb(T6, T0, 0); // c = text[pos]
            b.li(k, 0);
            let cmp = b.label();
            let cmp_done = b.label();
            b.bind(cmp);
            b.bge(k, m, cmp_done);
            // pat[m-1-k] vs text[pos-k]
            b.sub(T1, mlast, k);
            b.add(T1, pat_r, T1);
            b.lb(T2, T1, 0);
            b.sub(T3, pos, k);
            b.add(T3, text_r, T3);
            b.lb(T4, T3, 0);
            b.bne(T2, T4, cmp_done);
            b.addi(k, k, 1);
            b.j(cmp);
            b.bind(cmp_done);
            let no_match = b.label();
            b.blt(k, m, no_match);
            b.addi(CHK, CHK, 1);
            b.add(CHK, CHK, pos);
            b.bind(no_match);
            b.slli(T1, T6, 3);
            b.add(T1, shift_r, T1);
            b.ld(T2, T1, 0);
            b.add(pos, pos, T2);
        }
        b.j(scan);
        b.bind(scan_done);
    }
    loop_tail_lt(&mut b, pat_top, p, 1, S9);
    b.halt();

    KernelBuild { program: b.build(), expected }
}

/// FNV-1a over a byte slice, the hash both the host and the kernel use.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &c in bytes {
        h ^= u64::from(c);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// `ispell`: dictionary spell-check — open-addressing hash table with
/// linear probing and byte-wise key comparison.
pub(crate) fn ispell(scale: Scale) -> KernelBuild {
    let (nwords, nqueries, table_bits) = match scale {
        Scale::Tiny => (400usize, 800usize, 11u32),
        Scale::Small => (4_000, 9_000, 14),
    };
    let table_size = 1usize << table_bits;
    let mut rng = SplitMix64::new(0x15BE);
    let words: Vec<Vec<u8>> = (0..nwords)
        .map(|_| {
            let m = 4 + rng.below(9) as usize;
            (0..m).map(|_| b'a' + (rng.below(26) as u8)).collect()
        })
        .collect();
    let queries: Vec<Vec<u8>> = (0..nqueries)
        .map(|i| {
            if i % 2 == 0 {
                words[rng.below(nwords as u64) as usize].clone()
            } else {
                let m = 4 + rng.below(9) as usize;
                (0..m).map(|_| b'a' + (rng.below(26) as u8)).collect()
            }
        })
        .collect();

    // Word buffer layout: concatenated; per-word meta (offset, len).
    let mut wbuf = Vec::new();
    let mut wmeta = Vec::new();
    for w in &words {
        wmeta.push(wbuf.len() as i64);
        wmeta.push(w.len() as i64);
        wbuf.extend_from_slice(w);
    }
    let mut qbuf = Vec::new();
    let mut qmeta = Vec::new();
    for q in &queries {
        qmeta.push(qbuf.len() as i64);
        qmeta.push(q.len() as i64);
        qbuf.extend_from_slice(q);
    }

    // Host reference: insert phase then query phase.
    // Table entry: (word_offset << 8) | len, 0 = empty (offset+1 stored so
    // offset 0 with len 0 cannot alias empty — we store offset+1 in the
    // high bits).
    let mask = (table_size - 1) as u64;
    let mut table = vec![0i64; table_size];
    for (wi, w) in words.iter().enumerate() {
        let mut slot = (fnv1a(w) & mask) as usize;
        while table[slot] != 0 {
            slot = (slot + 1) & mask as usize;
        }
        table[slot] = ((wmeta[2 * wi] + 1) << 8) | wmeta[2 * wi + 1];
    }
    let mut found = 0i64;
    let mut probes = 0i64;
    for q in &queries {
        let mut slot = (fnv1a(q) & mask) as usize;
        loop {
            probes += 1;
            let e = table[slot];
            if e == 0 {
                break;
            }
            let len = (e & 0xff) as usize;
            let off = ((e >> 8) - 1) as usize;
            if len == q.len() && &wbuf[off..off + len] == q.as_slice() {
                found += 1;
                break;
            }
            slot = (slot + 1) & mask as usize;
        }
    }
    let expected = found.wrapping_add(probes);

    let mut bld = ProgramBuilder::new("ispell");
    let twbuf = bld.data_bytes(&wbuf);
    let twmeta = bld.data_i64(&wmeta);
    let tqbuf = bld.data_bytes(&qbuf);
    let tqmeta = bld.data_i64(&qmeta);
    let ttab = bld.alloc(table_size as u64 * 8);

    let (tab_r, wbuf_r, meta_r) = (B0, B1, B2);
    let (hash, slot, len, off) = (S0, S1, S2, S3);
    let (maskr, fnvp) = (S4, S5);
    let (found_r, probes_r) = (S6, S7);

    bld.li(tab_r, ttab as i64);
    bld.li(maskr, mask as i64);
    bld.li(fnvp, 0x0000_0100_0000_01b3);
    bld.li(found_r, 0);
    bld.li(probes_r, 0);

    // Emits: hash = fnv1a(bytes at `ptr` for `len` bytes). Clobbers T0-T2, J.
    let emit_hash = |b: &mut ProgramBuilder, ptr: Reg, len: Reg, hash: Reg| {
        b.li(hash, 0xcbf2_9ce4_8422_2325u64 as i64);
        let h_top = b.label();
        let h_done = b.label();
        b.li(J, 0);
        b.bind(h_top);
        b.bge(J, len, h_done);
        b.add(T0, ptr, J);
        b.lb(T1, T0, 0);
        b.xor(hash, hash, T1);
        b.mul(hash, hash, fnvp);
        b.addi(J, J, 1);
        b.j(h_top);
        b.bind(h_done);
    };

    // Insert phase.
    bld.li(wbuf_r, twbuf as i64);
    bld.li(meta_r, twmeta as i64);
    bld.li(S9, nwords as i64);
    let ins = loop_head(&mut bld, K, 0);
    {
        bld.slli(T3, K, 4);
        bld.add(T4, meta_r, T3);
        bld.ld(off, T4, 0);
        bld.ld(len, T4, 8);
        bld.add(T5, wbuf_r, off);
        emit_hash(&mut bld, T5, len, hash);
        bld.and(slot, hash, maskr);
        let probe = bld.label();
        let empty = bld.label();
        bld.bind(probe);
        bld.slli(T0, slot, 3);
        bld.add(T1, tab_r, T0);
        bld.ld(T2, T1, 0);
        bld.beqz(T2, empty);
        bld.addi(slot, slot, 1);
        bld.and(slot, slot, maskr);
        bld.j(probe);
        bld.bind(empty);
        bld.addi(T2, off, 1);
        bld.slli(T2, T2, 8);
        bld.or(T2, T2, len);
        bld.sd(T2, T1, 0);
    }
    loop_tail_lt(&mut bld, ins, K, 1, S9);

    // Query phase.
    bld.li(B3, tqbuf as i64);
    bld.li(meta_r, tqmeta as i64);
    bld.li(S9, nqueries as i64);
    let qr = loop_head(&mut bld, K, 0);
    {
        bld.slli(T3, K, 4);
        bld.add(T4, meta_r, T3);
        bld.ld(off, T4, 0);
        bld.ld(len, T4, 8);
        bld.add(S8, B3, off); // query ptr
        emit_hash(&mut bld, S8, len, hash);
        bld.and(slot, hash, maskr);
        let probe = bld.label();
        let miss = bld.label();
        let hit = bld.label();
        let next_slot = bld.label();
        let done = bld.label();
        bld.bind(probe);
        bld.addi(probes_r, probes_r, 1);
        bld.slli(T0, slot, 3);
        bld.add(T1, tab_r, T0);
        bld.ld(T2, T1, 0);
        bld.beqz(T2, miss);
        // length check
        bld.andi(T3, T2, 255);
        bld.bne(T3, len, next_slot);
        // byte compare: entry offset vs query bytes
        bld.srli(T4, T2, 8);
        bld.addi(T4, T4, -1);
        bld.add(T4, wbuf_r, T4); // entry word ptr
        bld.li(J, 0);
        let ctop = bld.label();
        bld.bind(ctop);
        bld.bge(J, len, hit);
        bld.add(T5, T4, J);
        bld.lb(T6, T5, 0);
        bld.add(T5, S8, J);
        bld.lb(T7, T5, 0);
        bld.bne(T6, T7, next_slot);
        bld.addi(J, J, 1);
        bld.j(ctop);
        bld.bind(next_slot);
        bld.addi(slot, slot, 1);
        bld.and(slot, slot, maskr);
        bld.j(probe);
        bld.bind(hit);
        bld.addi(found_r, found_r, 1);
        bld.j(done);
        bld.bind(miss);
        bld.bind(done);
    }
    loop_tail_lt(&mut bld, qr, K, 1, S9);

    bld.add(CHK, found_r, probes_r);
    bld.halt();

    KernelBuild { program: bld.build(), expected }
}

/// `ghostscript`: page-rendering stand-in — gradient span fills of many
/// rectangles into a framebuffer followed by a checksum sweep; store-heavy
/// with many distinct access streams (the paper's hardest locality case).
pub(crate) fn ghostscript(scale: Scale) -> KernelBuild {
    let (fb_w, fb_h, rects) = match scale {
        Scale::Tiny => (128usize, 64usize, 12usize),
        Scale::Small => (320, 200, 48),
    };
    let mut rng = SplitMix64::new(0x6057);
    // Rect list: x0, y0, w, h, color.
    let mut rect_data = Vec::new();
    for _ in 0..rects {
        let w = 8 + rng.below((fb_w / 2) as u64) as i64;
        let h = 4 + rng.below((fb_h / 2) as u64) as i64;
        let x0 = rng.below((fb_w as i64 - w) as u64 + 1) as i64;
        let y0 = rng.below((fb_h as i64 - h) as u64 + 1) as i64;
        let color = rng.below(256) as i64;
        rect_data.extend_from_slice(&[x0, y0, w, h, color]);
    }

    // Host reference.
    let mut fb = vec![0u8; fb_w * fb_h];
    for r in rect_data.chunks(5) {
        let (x0, y0, w, h, color) = (r[0], r[1], r[2], r[3], r[4]);
        for y in y0..y0 + h {
            for x in x0..x0 + w {
                fb[(y * fb_w as i64 + x) as usize] = ((color + x - x0) & 255) as u8;
            }
        }
    }
    let mut expected = 0i64;
    for &px in &fb {
        expected = expected.wrapping_add(i64::from(px));
    }

    let mut b = ProgramBuilder::new("ghostscript");
    let trects = b.data_i64(&rect_data);
    let tfb = b.alloc((fb_w * fb_h) as u64);

    let (fb_r, rect_r) = (B0, B1);
    let (x0, y0, w, h, color) = (S0, S1, S2, S3, S4);
    let (y, x, rowp) = (S5, S6, S7);

    b.li(CHK, 0);
    b.li(fb_r, tfb as i64);
    b.li(rect_r, trects as i64);
    b.li(S9, rects as i64);

    let r_top = loop_head(&mut b, K, 0);
    {
        b.slli(T0, K, 3);
        b.li(T1, 5);
        b.mul(T0, K, T1);
        b.slli(T0, T0, 3);
        b.add(T1, rect_r, T0);
        b.ld(x0, T1, 0);
        b.ld(y0, T1, 8);
        b.ld(w, T1, 16);
        b.ld(h, T1, 24);
        b.ld(color, T1, 32);
        b.add(S8, y0, h); // y limit
        b.mv(y, y0);
        let y_top = b.label();
        let y_done = b.label();
        b.bind(y_top);
        b.bge(y, S8, y_done);
        {
            b.li(T0, fb_w as i64);
            b.mul(rowp, y, T0);
            b.add(rowp, fb_r, rowp);
            b.add(rowp, rowp, x0); // &fb[y*W + x0]
            b.li(x, 0);
            let x_top = b.label();
            let x_done = b.label();
            b.bind(x_top);
            b.bge(x, w, x_done);
            b.add(T1, color, x);
            b.andi(T1, T1, 255);
            b.add(T2, rowp, x);
            b.sb(T1, T2, 0);
            b.addi(x, x, 1);
            b.j(x_top);
            b.bind(x_done);
            b.addi(y, y, 1);
        }
        b.j(y_top);
        b.bind(y_done);
    }
    loop_tail_lt(&mut b, r_top, K, 1, S9);

    // Checksum sweep.
    b.li(N, (fb_w * fb_h) as i64);
    let sweep = loop_head(&mut b, I, 0);
    {
        b.add(T0, fb_r, I);
        b.lb(T1, T0, 0);
        b.add(CHK, CHK, T1);
    }
    loop_tail_lt(&mut b, sweep, I, 1, N);
    b.halt();

    KernelBuild { program: b.build(), expected }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::check_kernel;

    #[test]
    fn stringsearch_checksum() {
        check_kernel(stringsearch(Scale::Tiny));
    }

    #[test]
    fn ispell_checksum() {
        check_kernel(ispell(Scale::Tiny));
    }

    #[test]
    fn ghostscript_checksum() {
        check_kernel(ghostscript(Scale::Tiny));
    }

    #[test]
    fn fnv_distinguishes_words() {
        assert_ne!(fnv1a(b"hello"), fnv1a(b"world"));
    }
}
