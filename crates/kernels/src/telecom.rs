//! Telecom-domain kernels: `adpcm_enc`, `adpcm_dec`, `crc32`, `fft`, `gsm`.

use perfclone_isa::{FReg, ProgramBuilder, Reg};

use crate::util::regs::*;
use crate::util::{loop_head, loop_tail_lt, SplitMix64};
use crate::{KernelBuild, Scale};

/// IMA ADPCM step-size table.
const STEP_TABLE: [i64; 89] = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66,
    73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449,
    494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
    2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493,
    10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
];

/// IMA ADPCM index-adjustment table.
const INDEX_TABLE: [i64; 16] = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8];

fn pcm_samples(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = SplitMix64::new(seed);
    let mut s = 0i64;
    (0..n)
        .map(|_| {
            s += rng.below(801) as i64 - 400;
            s = s.clamp(-32768, 32767);
            s
        })
        .collect()
}

/// Host-side IMA ADPCM encoder, the reference for both ADPCM kernels.
fn adpcm_encode_host(samples: &[i64]) -> (Vec<i64>, i64) {
    let mut pred = 0i64;
    let mut index = 0i64;
    let mut codes = Vec::with_capacity(samples.len());
    let mut check = 0i64;
    for &s in samples {
        let step = STEP_TABLE[index as usize];
        let mut diff = s - pred;
        let sign = if diff < 0 {
            diff = -diff;
            8i64
        } else {
            0
        };
        let mut delta = 0i64;
        let mut tempstep = step;
        if diff >= tempstep {
            delta = 4;
            diff -= tempstep;
        }
        tempstep >>= 1;
        if diff >= tempstep {
            delta |= 2;
            diff -= tempstep;
        }
        tempstep >>= 1;
        if diff >= tempstep {
            delta |= 1;
        }
        let code = delta | sign;
        // Reconstruct.
        let mut diffq = step >> 3;
        if delta & 4 != 0 {
            diffq += step;
        }
        if delta & 2 != 0 {
            diffq += step >> 1;
        }
        if delta & 1 != 0 {
            diffq += step >> 2;
        }
        if sign != 0 {
            pred -= diffq;
        } else {
            pred += diffq;
        }
        pred = pred.clamp(-32768, 32767);
        index = (index + INDEX_TABLE[code as usize]).clamp(0, 88);
        codes.push(code);
        check = check.wrapping_add(code);
    }
    check = check.wrapping_add(pred);
    (codes, check)
}

/// Host-side IMA ADPCM decoder.
fn adpcm_decode_host(codes: &[i64]) -> i64 {
    let mut pred = 0i64;
    let mut index = 0i64;
    let mut check = 0i64;
    for &code in codes {
        let step = STEP_TABLE[index as usize];
        let delta = code & 7;
        let sign = code & 8;
        let mut diffq = step >> 3;
        if delta & 4 != 0 {
            diffq += step;
        }
        if delta & 2 != 0 {
            diffq += step >> 1;
        }
        if delta & 1 != 0 {
            diffq += step >> 2;
        }
        if sign != 0 {
            pred -= diffq;
        } else {
            pred += diffq;
        }
        pred = pred.clamp(-32768, 32767);
        index = (index + INDEX_TABLE[code as usize]).clamp(0, 88);
        check = check.wrapping_add(pred);
    }
    check
}

/// Emits the shared ADPCM reconstruction + clamp + index-update sequence.
///
/// Inputs: `code` (4-bit), `step`; state registers `pred` (S0), `index`
/// (S1). Uses T4-T7 as scratch.
fn emit_adpcm_update(b: &mut ProgramBuilder, code: Reg, step: Reg, pred: Reg, index: Reg) {
    // diffq = step >> 3 (+ step if bit2, + step>>1 if bit1, + step>>2 if bit0)
    b.srai(T4, step, 3);
    let no4 = b.label();
    b.andi(T5, code, 4);
    b.beqz(T5, no4);
    b.add(T4, T4, step);
    b.bind(no4);
    let no2 = b.label();
    b.andi(T5, code, 2);
    b.beqz(T5, no2);
    b.srai(T6, step, 1);
    b.add(T4, T4, T6);
    b.bind(no2);
    let no1 = b.label();
    b.andi(T5, code, 1);
    b.beqz(T5, no1);
    b.srai(T6, step, 2);
    b.add(T4, T4, T6);
    b.bind(no1);
    // pred +/- diffq
    let minus = b.label();
    let merged = b.label();
    b.andi(T5, code, 8);
    b.bnez(T5, minus);
    b.add(pred, pred, T4);
    b.j(merged);
    b.bind(minus);
    b.sub(pred, pred, T4);
    b.bind(merged);
    // clamp pred to [-32768, 32767]
    let nolo = b.label();
    let nohi = b.label();
    b.li(T5, -32768);
    b.bge(pred, T5, nolo);
    b.mv(pred, T5);
    b.bind(nolo);
    b.li(T5, 32767);
    b.ble(pred, T5, nohi);
    b.mv(pred, T5);
    b.bind(nohi);
    // index += INDEX_TABLE[code]; clamp 0..88
    b.slli(T5, code, 3);
    b.add(T5, B1, T5);
    b.ld(T6, T5, 0);
    b.add(index, index, T6);
    let inolo = b.label();
    let inohi = b.label();
    b.bge(index, Reg::ZERO, inolo);
    b.li(index, 0);
    b.bind(inolo);
    b.li(T5, 88);
    b.ble(index, T5, inohi);
    b.li(index, 88);
    b.bind(inohi);
}

/// `adpcm_enc`: IMA ADPCM speech encoder over a synthetic PCM random walk —
/// heavily biased short branches and table lookups.
pub(crate) fn adpcm_enc(scale: Scale) -> KernelBuild {
    let n = match scale {
        Scale::Tiny => 2500,
        Scale::Small => 36_000,
    };
    let samples = pcm_samples(n, 0xADCE);
    let (_, expected) = adpcm_encode_host(&samples);

    let mut b = ProgramBuilder::new("adpcm_enc");
    let tsamples = b.data_i64(&samples);
    let tstep = b.data_i64(&STEP_TABLE);
    let tindex = b.data_i64(&INDEX_TABLE);

    let (pred, index) = (S0, S1);
    let (step, diff, sign, delta, tempstep) = (S2, S3, S4, S5, S6);
    let code = S7;

    b.li(CHK, 0);
    b.li(pred, 0);
    b.li(index, 0);
    b.li(B0, tstep as i64);
    b.li(B1, tindex as i64);
    b.li(B2, tsamples as i64);
    b.li(N, n as i64);

    let top = loop_head(&mut b, I, 0);
    {
        // step = STEP_TABLE[index]
        b.slli(T0, index, 3);
        b.add(T0, B0, T0);
        b.ld(step, T0, 0);
        // diff = sample - pred; extract sign
        b.slli(T0, I, 3);
        b.add(T0, B2, T0);
        b.ld(T1, T0, 0);
        b.sub(diff, T1, pred);
        b.li(sign, 0);
        let pos = b.label();
        b.bge(diff, Reg::ZERO, pos);
        b.li(sign, 8);
        b.sub(diff, Reg::ZERO, diff);
        b.bind(pos);
        // quantize
        b.li(delta, 0);
        b.mv(tempstep, step);
        let lt4 = b.label();
        b.blt(diff, tempstep, lt4);
        b.li(delta, 4);
        b.sub(diff, diff, tempstep);
        b.bind(lt4);
        b.srai(tempstep, tempstep, 1);
        let lt2 = b.label();
        b.blt(diff, tempstep, lt2);
        b.ori(delta, delta, 2);
        b.sub(diff, diff, tempstep);
        b.bind(lt2);
        b.srai(tempstep, tempstep, 1);
        let lt1 = b.label();
        b.blt(diff, tempstep, lt1);
        b.ori(delta, delta, 1);
        b.bind(lt1);
        b.or(code, delta, sign);
        b.add(CHK, CHK, code);
        emit_adpcm_update(&mut b, code, step, pred, index);
    }
    loop_tail_lt(&mut b, top, I, 1, N);
    b.add(CHK, CHK, pred);
    b.halt();

    KernelBuild { program: b.build(), expected }
}

/// `adpcm_dec`: IMA ADPCM decoder over a code stream produced by the host
/// encoder.
pub(crate) fn adpcm_dec(scale: Scale) -> KernelBuild {
    let n = match scale {
        Scale::Tiny => 3000,
        Scale::Small => 48_000,
    };
    let samples = pcm_samples(n, 0xADCD);
    let (codes, _) = adpcm_encode_host(&samples);
    let expected = adpcm_decode_host(&codes);

    let mut b = ProgramBuilder::new("adpcm_dec");
    let tcodes = b.data_i64(&codes);
    let tstep = b.data_i64(&STEP_TABLE);
    let tindex = b.data_i64(&INDEX_TABLE);

    let (pred, index, step, code) = (S0, S1, S2, S7);

    b.li(CHK, 0);
    b.li(pred, 0);
    b.li(index, 0);
    b.li(B0, tstep as i64);
    b.li(B1, tindex as i64);
    b.li(B2, tcodes as i64);
    b.li(N, n as i64);

    let top = loop_head(&mut b, I, 0);
    {
        b.slli(T0, index, 3);
        b.add(T0, B0, T0);
        b.ld(step, T0, 0);
        b.slli(T0, I, 3);
        b.add(T0, B2, T0);
        b.ld(code, T0, 0);
        emit_adpcm_update(&mut b, code, step, pred, index);
        b.add(CHK, CHK, pred);
    }
    loop_tail_lt(&mut b, top, I, 1, N);
    b.halt();

    KernelBuild { program: b.build(), expected }
}

/// `crc32`: table-driven CRC-32 (poly `0xEDB88320`) over a byte buffer —
/// the archetypal tight streaming loop.
pub(crate) fn crc32(scale: Scale) -> KernelBuild {
    let n = match scale {
        Scale::Tiny => 7_000,
        Scale::Small => 140_000,
    };
    let mut rng = SplitMix64::new(0xC3C);
    let buf = rng.byte_vec(n);

    let mut lut = [0u32; 256];
    for (i, e) in lut.iter_mut().enumerate() {
        let mut c = i as u32;
        for _ in 0..8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
        }
        *e = c;
    }
    let mut crc = 0xffff_ffffu32;
    for &byte in &buf {
        crc = (crc >> 8) ^ lut[((crc ^ u32::from(byte)) & 0xff) as usize];
    }
    let expected = (crc ^ 0xffff_ffff) as i64;

    let mut b = ProgramBuilder::new("crc32");
    let tbuf = b.data_bytes(&buf);
    let tlut = b.data_u32(&lut);

    let crc_r = S0;
    b.li(B0, tbuf as i64);
    b.li(B1, tlut as i64);
    b.li(crc_r, 0xffff_ffff);
    b.li(N, n as i64);
    b.li(MASK, 0xffff_ffff);

    let top = loop_head(&mut b, I, 0);
    {
        b.add(T0, B0, I);
        b.lb(T1, T0, 0);
        b.xor(T2, crc_r, T1);
        b.andi(T2, T2, 255);
        b.slli(T2, T2, 2);
        b.add(T2, B1, T2);
        b.lw(T3, T2, 0);
        b.and(T3, T3, MASK); // lw sign-extends; keep 32-bit domain
        b.srli(crc_r, crc_r, 8);
        b.xor(crc_r, crc_r, T3);
    }
    loop_tail_lt(&mut b, top, I, 1, N);
    b.xor(CHK, crc_r, MASK);
    b.halt();

    KernelBuild { program: b.build(), expected }
}

/// `fft`: iterative radix-2 decimation-in-time complex FFT with a twiddle
/// LUT, repeated over fresh copies of the signal — FP multiply/add bound
/// with a bit-reversal shuffle.
pub(crate) fn fft(scale: Scale) -> KernelBuild {
    let (n, reps) = match scale {
        Scale::Tiny => (256usize, 2usize),
        Scale::Small => (1024, 7),
    };
    let bits = n.trailing_zeros();
    let mut rng = SplitMix64::new(0xFF7);
    let sig_re: Vec<f64> = (0..n).map(|_| 2.0 * rng.f64() - 1.0).collect();
    let sig_im: Vec<f64> = (0..n).map(|_| 2.0 * rng.f64() - 1.0).collect();
    let twid_re: Vec<f64> =
        (0..n / 2).map(|k| (-2.0 * std::f64::consts::PI * k as f64 / n as f64).cos()).collect();
    let twid_im: Vec<f64> =
        (0..n / 2).map(|k| (-2.0 * std::f64::consts::PI * k as f64 / n as f64).sin()).collect();
    let bitrev: Vec<u64> =
        (0..n as u64).map(|i| u64::from((i as u32).reverse_bits() >> (32 - bits))).collect();

    // Host reference (op order mirrors the kernel exactly).
    let mut acc = 0.0f64;
    for _ in 0..reps {
        let mut re: Vec<f64> = (0..n).map(|i| sig_re[bitrev[i] as usize]).collect();
        let mut im: Vec<f64> = (0..n).map(|i| sig_im[bitrev[i] as usize]).collect();
        let mut len = 2usize;
        while len <= n {
            let step = n / len;
            let half = len / 2;
            let mut base = 0usize;
            while base < n {
                for j in 0..half {
                    let (wr, wi) = (twid_re[j * step], twid_im[j * step]);
                    let (ur, ui) = (re[base + j], im[base + j]);
                    let (vr, vi) = (re[base + j + half], im[base + j + half]);
                    let tr = vr * wr - vi * wi;
                    let ti = vr * wi + vi * wr;
                    re[base + j] = ur + tr;
                    im[base + j] = ui + ti;
                    re[base + j + half] = ur - tr;
                    im[base + j + half] = ui - ti;
                }
                base += len;
            }
            len <<= 1;
        }
        for i in 0..n {
            acc += re[i] + im[i];
        }
    }
    let expected = (acc * 4096.0) as i64;

    let mut b = ProgramBuilder::new("fft");
    let tsig_re = b.data_f64(&sig_re);
    let tsig_im = b.data_f64(&sig_im);
    let ttw_re = b.data_f64(&twid_re);
    let ttw_im = b.data_f64(&twid_im);
    let trev = b.data_u64(&bitrev);
    let twork_re = b.alloc(n as u64 * 8);
    let twork_im = b.alloc(n as u64 * 8);

    let (len, half, step, base) = (S0, S1, S2, S3);
    let (wre, wim) = (B2, B3);
    let nn = N;
    let (facc, fwr, fwi, fur, fui, fvr, fvi, ftr, fti, ft) = (
        FReg::new(0),
        FReg::new(1),
        FReg::new(2),
        FReg::new(3),
        FReg::new(4),
        FReg::new(5),
        FReg::new(6),
        FReg::new(7),
        FReg::new(8),
        FReg::new(9),
    );

    b.fli(facc, 0.0);
    b.li(nn, n as i64);
    b.li(S9, reps as i64);

    let rep_top = loop_head(&mut b, K, 0);
    {
        // Bit-reversed copy into work arrays.
        b.li(B0, trev as i64);
        b.li(S4, tsig_re as i64);
        b.li(S5, tsig_im as i64);
        b.li(S6, twork_re as i64);
        b.li(S7, twork_im as i64);
        let cp = loop_head(&mut b, I, 0);
        {
            b.slli(T0, I, 3);
            b.add(T1, B0, T0);
            b.ld(T2, T1, 0); // rev index
            b.slli(T2, T2, 3);
            b.add(T3, S4, T2);
            b.fld(ft, T3, 0);
            b.add(T3, S6, T0);
            b.fsd(ft, T3, 0);
            b.add(T3, S5, T2);
            b.fld(ft, T3, 0);
            b.add(T3, S7, T0);
            b.fsd(ft, T3, 0);
        }
        loop_tail_lt(&mut b, cp, I, 1, nn);

        b.li(wre, ttw_re as i64);
        b.li(wim, ttw_im as i64);
        b.li(len, 2);
        let stage = b.label();
        let stages_done = b.label();
        b.bind(stage);
        b.bgt(len, nn, stages_done);
        {
            b.div(step, nn, len);
            b.srai(half, len, 1);
            b.li(base, 0);
            let blk = b.label();
            let blk_done = b.label();
            b.bind(blk);
            b.bge(base, nn, blk_done);
            {
                let bfly = loop_head(&mut b, J, 0);
                {
                    // twiddle = tw[j * step]
                    b.mul(T0, J, step);
                    b.slli(T0, T0, 3);
                    b.add(T1, wre, T0);
                    b.fld(fwr, T1, 0);
                    b.add(T1, wim, T0);
                    b.fld(fwi, T1, 0);
                    // u = work[base+j]; v = work[base+j+half]
                    b.add(T2, base, J);
                    b.slli(T2, T2, 3);
                    b.add(T3, S6, T2);
                    b.fld(fur, T3, 0);
                    b.add(T4, S7, T2);
                    b.fld(fui, T4, 0);
                    b.slli(T5, half, 3);
                    b.add(T6, T3, T5);
                    b.fld(fvr, T6, 0);
                    b.add(T7, T4, T5);
                    b.fld(fvi, T7, 0);
                    // t = v * w
                    b.fmul(ftr, fvr, fwr);
                    b.fmul(ft, fvi, fwi);
                    b.fsub(ftr, ftr, ft);
                    b.fmul(fti, fvr, fwi);
                    b.fmul(ft, fvi, fwr);
                    b.fadd(fti, fti, ft);
                    // butterflies
                    b.fadd(ft, fur, ftr);
                    b.fsd(ft, T3, 0);
                    b.fadd(ft, fui, fti);
                    b.fsd(ft, T4, 0);
                    b.fsub(ft, fur, ftr);
                    b.fsd(ft, T6, 0);
                    b.fsub(ft, fui, fti);
                    b.fsd(ft, T7, 0);
                }
                loop_tail_lt(&mut b, bfly, J, 1, half);
                b.add(base, base, len);
            }
            b.j(blk);
            b.bind(blk_done);
            b.slli(len, len, 1);
        }
        b.j(stage);
        b.bind(stages_done);

        // acc += sum(re + im)
        let sum = loop_head(&mut b, I, 0);
        {
            b.slli(T0, I, 3);
            b.add(T1, S6, T0);
            b.fld(ftr, T1, 0);
            b.fadd(facc, facc, ftr);
            b.add(T1, S7, T0);
            b.fld(ftr, T1, 0);
            b.fadd(facc, facc, ftr);
        }
        loop_tail_lt(&mut b, sum, I, 1, nn);
    }
    loop_tail_lt(&mut b, rep_top, K, 1, S9);

    b.fli(ft, 4096.0);
    b.fmul(facc, facc, ft);
    b.cvt_f_i(CHK, facc);
    b.halt();

    KernelBuild { program: b.build(), expected }
}

/// `gsm`: fixed-point LPC front end — frame autocorrelation followed by a
/// Schur-style reflection-coefficient recursion with saturation, as in the
/// GSM 06.10 full-rate encoder.
pub(crate) fn gsm(scale: Scale) -> KernelBuild {
    let frames = match scale {
        Scale::Tiny => 8,
        Scale::Small => 72,
    };
    let frame_len = 160usize;
    let samples = pcm_samples(frames * frame_len, 0x65A);

    // Host reference.
    let mut expected = 0i64;
    for f in 0..frames {
        let s = &samples[f * frame_len..(f + 1) * frame_len];
        let mut acf = [0i64; 9];
        for (k, a) in acf.iter_mut().enumerate() {
            for i in k..frame_len {
                *a += (s[i] >> 3) * (s[i - k] >> 3);
            }
        }
        let mut rc = [0i64; 8];
        if acf[0] != 0 {
            let mut p = acf;
            let mut kk = [0i64; 8];
            kk.copy_from_slice(&acf[1..9]);
            #[allow(clippy::needless_range_loop)] // j bounds the inner recurrence too
            for j in 0..8usize {
                if p[0] == 0 {
                    break;
                }
                let mut r = -kk[0].wrapping_mul(32768).wrapping_div(p[0]);
                r = r.clamp(-32767, 32767);
                rc[j] = r;
                for i in 0..7 - j {
                    p[i] = p[i].wrapping_add((kk[i].wrapping_mul(r)) >> 15);
                    kk[i] = kk[i + 1].wrapping_add((p[i + 1].wrapping_mul(r)) >> 15);
                }
            }
        }
        for r in rc {
            expected = expected.wrapping_add(r);
        }
    }

    let mut b = ProgramBuilder::new("gsm");
    let tsamples = b.data_i64(&samples);
    let tacf = b.alloc(9 * 8);
    let tp = b.alloc(9 * 8);
    let tk = b.alloc(8 * 8);

    let (sframe, acf_r, p_r, k_r) = (B0, B1, B2, B3);
    let (flen, lag) = (S0, S1);

    b.li(CHK, 0);
    b.li(acf_r, tacf as i64);
    b.li(p_r, tp as i64);
    b.li(k_r, tk as i64);
    b.li(flen, frame_len as i64);
    b.li(S9, frames as i64);

    let f_top = loop_head(&mut b, K, 0);
    {
        // sframe = &samples[f * frame_len]
        b.mul(T0, K, flen);
        b.slli(T0, T0, 3);
        b.li(T1, tsamples as i64);
        b.add(sframe, T1, T0);

        // Autocorrelation, 9 lags.
        b.li(T7, 9);
        let lag_top = loop_head(&mut b, lag, 0);
        {
            b.li(S2, 0); // acc
            b.mv(I, lag);
            let inner = b.label();
            let inner_done = b.label();
            b.bind(inner);
            b.bge(I, flen, inner_done);
            b.slli(T0, I, 3);
            b.add(T1, sframe, T0);
            b.ld(T2, T1, 0);
            b.srai(T2, T2, 3);
            b.sub(T3, I, lag);
            b.slli(T3, T3, 3);
            b.add(T4, sframe, T3);
            b.ld(T5, T4, 0);
            b.srai(T5, T5, 3);
            b.mul(T2, T2, T5);
            b.add(S2, S2, T2);
            b.addi(I, I, 1);
            b.j(inner);
            b.bind(inner_done);
            b.slli(T0, lag, 3);
            b.add(T1, acf_r, T0);
            b.sd(S2, T1, 0);
        }
        loop_tail_lt(&mut b, lag_top, lag, 1, T7);

        // Schur recursion: rc summed straight into CHK.
        let skip_frame = b.label();
        b.ld(T0, acf_r, 0);
        b.beqz(T0, skip_frame);
        // p = acf (9), k = acf[1..9] (8)
        b.li(T7, 9);
        let cp = loop_head(&mut b, I, 0);
        {
            b.slli(T0, I, 3);
            b.add(T1, acf_r, T0);
            b.ld(T2, T1, 0);
            b.add(T3, p_r, T0);
            b.sd(T2, T3, 0);
            let no_k = b.label();
            b.beqz(I, no_k);
            b.addi(T3, T0, -8);
            b.add(T3, k_r, T3);
            b.sd(T2, T3, 0);
            b.bind(no_k);
        }
        loop_tail_lt(&mut b, cp, I, 1, T7);

        b.li(T7, 8);
        let j_top = loop_head(&mut b, J, 0);
        {
            let j_next = b.label();
            b.ld(T0, p_r, 0);
            b.beqz(T0, j_next);
            // r = clamp(-(k[0] * 32768) / p[0], -32767, 32767)
            b.ld(T1, k_r, 0);
            b.slli(T1, T1, 15);
            b.div(T1, T1, T0);
            b.sub(S3, Reg::ZERO, T1); // r
            let nolo = b.label();
            let nohi = b.label();
            b.li(T2, -32767);
            b.bge(S3, T2, nolo);
            b.mv(S3, T2);
            b.bind(nolo);
            b.li(T2, 32767);
            b.ble(S3, T2, nohi);
            b.mv(S3, T2);
            b.bind(nohi);
            b.add(CHK, CHK, S3);
            // inner update: for i in 0 .. 7-j (skipped entirely when empty,
            // since the loop helpers are do-while shaped)
            b.li(T2, 7);
            b.sub(S4, T2, J); // bound
            b.ble(S4, Reg::ZERO, j_next);
            let upd = loop_head(&mut b, I, 0);
            {
                b.slli(T0, I, 3);
                // p[i] += (k[i] * r) >> 15
                b.add(T1, k_r, T0);
                b.ld(T2, T1, 0);
                b.mul(T2, T2, S3);
                b.srai(T2, T2, 15);
                b.add(T3, p_r, T0);
                b.ld(T4, T3, 0);
                b.add(T4, T4, T2);
                b.sd(T4, T3, 0);
                // k[i] = k[i+1] + (p[i+1] * r) >> 15
                b.add(T3, p_r, T0);
                b.ld(T4, T3, 8);
                b.mul(T4, T4, S3);
                b.srai(T4, T4, 15);
                b.add(T5, k_r, T0);
                b.ld(T6, T5, 8);
                b.add(T6, T6, T4);
                b.sd(T6, T5, 0);
            }
            loop_tail_lt(&mut b, upd, I, 1, S4);
            b.bind(j_next);
        }
        loop_tail_lt(&mut b, j_top, J, 1, T7);
        b.bind(skip_frame);
    }
    loop_tail_lt(&mut b, f_top, K, 1, S9);
    b.halt();

    KernelBuild { program: b.build(), expected }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::check_kernel;

    #[test]
    fn adpcm_enc_checksum() {
        check_kernel(adpcm_enc(Scale::Tiny));
    }

    #[test]
    fn adpcm_dec_checksum() {
        check_kernel(adpcm_dec(Scale::Tiny));
    }

    #[test]
    fn crc32_checksum() {
        check_kernel(crc32(Scale::Tiny));
    }

    #[test]
    fn fft_checksum() {
        check_kernel(fft(Scale::Tiny));
    }

    #[test]
    fn gsm_checksum() {
        check_kernel(gsm(Scale::Tiny));
    }
}
