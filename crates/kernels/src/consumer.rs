//! Consumer-domain kernels: `jpeg_enc`, `jpeg_dec`, `lame`.

use perfclone_isa::{FReg, ProgramBuilder};

use crate::util::regs::*;
use crate::util::{loop_head, loop_tail_lt, SplitMix64};
use crate::{KernelBuild, Scale};

/// Fixed-point DCT basis: `C[u][x] = round(c(u) * cos((2x+1)u*pi/16) * 4096)`.
fn dct_table() -> Vec<i64> {
    let mut t = vec![0i64; 64];
    for u in 0..8 {
        for x in 0..8 {
            let cu = if u == 0 { (0.5f64).sqrt() } else { 1.0 };
            let v =
                0.5 * cu * ((2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0).cos();
            t[u * 8 + x] = (v * 4096.0).round() as i64;
        }
    }
    t
}

/// JPEG luminance quantization table (Annex K).
const QTAB: [i64; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, 12, 12, 14, 19, 26, 58, 60, 55, 14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62, 18, 22, 37, 56, 68, 109, 103, 77, 24, 35, 55, 64, 81, 104, 113,
    92, 49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99,
];

/// Host-side forward DCT + quantization of one 8×8 block (level-shifted
/// integer arithmetic mirroring the kernel exactly).
fn fdct_quant_host(pix: &[i64], dct: &[i64]) -> [i64; 64] {
    let mut tmp = [0i64; 64];
    // Rows: tmp[u][y] = sum_x (pix[y*8+x] - 128) * C[u][x]  >> 9
    for u in 0..8 {
        for y in 0..8 {
            let mut s = 0i64;
            for x in 0..8 {
                s += (pix[y * 8 + x] - 128) * dct[u * 8 + x];
            }
            tmp[u * 8 + y] = s >> 9;
        }
    }
    // Cols: out[u][v] = (sum_y tmp[u][y] * C[v][y]) >> 15, then quantize.
    let mut out = [0i64; 64];
    for u in 0..8 {
        for v in 0..8 {
            let mut s = 0i64;
            for y in 0..8 {
                s += tmp[u * 8 + y] * dct[v * 8 + y];
            }
            out[u * 8 + v] = (s >> 15).wrapping_div(QTAB[u * 8 + v]);
        }
    }
    out
}

/// `jpeg_enc`: forward 8×8 integer DCT + quantization over image blocks —
/// multiply/accumulate loops with an integer-divide quantizer, as in cjpeg.
pub(crate) fn jpeg_enc(scale: Scale) -> KernelBuild {
    let blocks = match scale {
        Scale::Tiny => 40,
        Scale::Small => 130,
    };
    let mut rng = SplitMix64::new(0x17E6);
    let pixels: Vec<i64> = (0..64 * blocks).map(|_| rng.below(256) as i64).collect();
    let dct = dct_table();

    let mut expected = 0i64;
    for blk in 0..blocks {
        let out = fdct_quant_host(&pixels[64 * blk..64 * (blk + 1)], &dct);
        for c in out {
            expected = expected.wrapping_add(c);
            if c != 0 {
                expected = expected.wrapping_add(1);
            }
        }
    }

    let mut b = ProgramBuilder::new("jpeg_enc");
    let tpix = b.data_i64(&pixels);
    let tdct = b.data_i64(&dct);
    let tq = b.data_i64(&QTAB);
    let ttmp = b.alloc(64 * 8);

    let (pix_r, dct_r, q_r, tmp_r) = (B0, B1, B2, B3);
    let (u, v, x) = (I, J, K);
    let (blk_r, acc, eight) = (S0, S1, S2);
    let base = S3;

    b.li(CHK, 0);
    b.li(dct_r, tdct as i64);
    b.li(q_r, tq as i64);
    b.li(tmp_r, ttmp as i64);
    b.li(eight, 8);
    b.li(S9, blocks as i64);

    let blk_top = loop_head(&mut b, blk_r, 0);
    {
        b.slli(T0, blk_r, 9); // 64 * 8 bytes
        b.li(T1, tpix as i64);
        b.add(base, T1, T0);
        b.mv(pix_r, base);

        // Row pass.
        let u_top = loop_head(&mut b, u, 0);
        {
            let y_top = loop_head(&mut b, v, 0); // v plays "y" here
            {
                b.li(acc, 0);
                let x_top = loop_head(&mut b, x, 0);
                {
                    // (pix[y*8+x] - 128) * dct[u*8+x]
                    b.slli(T0, v, 3);
                    b.add(T0, T0, x);
                    b.slli(T0, T0, 3);
                    b.add(T1, pix_r, T0);
                    b.ld(T2, T1, 0);
                    b.addi(T2, T2, -128);
                    b.slli(T3, u, 3);
                    b.add(T3, T3, x);
                    b.slli(T3, T3, 3);
                    b.add(T4, dct_r, T3);
                    b.ld(T5, T4, 0);
                    b.mul(T2, T2, T5);
                    b.add(acc, acc, T2);
                }
                loop_tail_lt(&mut b, x_top, x, 1, eight);
                b.srai(acc, acc, 9);
                b.slli(T0, u, 3);
                b.add(T0, T0, v);
                b.slli(T0, T0, 3);
                b.add(T1, tmp_r, T0);
                b.sd(acc, T1, 0);
            }
            loop_tail_lt(&mut b, y_top, v, 1, eight);
        }
        loop_tail_lt(&mut b, u_top, u, 1, eight);

        // Column pass + quantize + checksum.
        let u2_top = loop_head(&mut b, u, 0);
        {
            let v2_top = loop_head(&mut b, v, 0);
            {
                b.li(acc, 0);
                let y2_top = loop_head(&mut b, x, 0); // x plays "y"
                {
                    b.slli(T0, u, 3);
                    b.add(T0, T0, x);
                    b.slli(T0, T0, 3);
                    b.add(T1, tmp_r, T0);
                    b.ld(T2, T1, 0);
                    b.slli(T3, v, 3);
                    b.add(T3, T3, x);
                    b.slli(T3, T3, 3);
                    b.add(T4, dct_r, T3);
                    b.ld(T5, T4, 0);
                    b.mul(T2, T2, T5);
                    b.add(acc, acc, T2);
                }
                loop_tail_lt(&mut b, y2_top, x, 1, eight);
                b.srai(acc, acc, 15);
                b.slli(T0, u, 3);
                b.add(T0, T0, v);
                b.slli(T0, T0, 3);
                b.add(T1, q_r, T0);
                b.ld(T2, T1, 0);
                b.div(acc, acc, T2);
                b.add(CHK, CHK, acc);
                let zero = b.label();
                b.beqz(acc, zero);
                b.addi(CHK, CHK, 1);
                b.bind(zero);
            }
            loop_tail_lt(&mut b, v2_top, v, 1, eight);
        }
        loop_tail_lt(&mut b, u2_top, u, 1, eight);
    }
    loop_tail_lt(&mut b, blk_top, blk_r, 1, S9);
    b.halt();

    KernelBuild { program: b.build(), expected }
}

/// `jpeg_dec`: dequantization + inverse 8×8 integer DCT with output
/// clamping over host-encoded coefficient blocks, as in djpeg.
pub(crate) fn jpeg_dec(scale: Scale) -> KernelBuild {
    let blocks = match scale {
        Scale::Tiny => 40,
        Scale::Small => 130,
    };
    let mut rng = SplitMix64::new(0x17E7);
    let pixels: Vec<i64> = (0..64 * blocks).map(|_| rng.below(256) as i64).collect();
    let dct = dct_table();
    let coeffs: Vec<i64> = (0..blocks)
        .flat_map(|blk| fdct_quant_host(&pixels[64 * blk..64 * (blk + 1)], &dct))
        .collect();

    // Host IDCT reference: pix[x][y] = clamp(sum_u sum_v deq[u][v] * C[u][x] * C[v][y] terms)
    let mut expected = 0i64;
    let mut tmp = [0i64; 64];
    for blk in 0..blocks {
        let c = &coeffs[64 * blk..64 * (blk + 1)];
        // dequantize into tmp2, then rows then cols
        let mut deq = [0i64; 64];
        for i in 0..64 {
            deq[i] = c[i] * QTAB[i];
        }
        // Rows over u: tmp[x][v] = sum_u deq[u*8+v] * C[u][x] >> 12
        for x in 0..8 {
            for v in 0..8 {
                let mut s = 0i64;
                for u in 0..8 {
                    s += deq[u * 8 + v] * dct[u * 8 + x];
                }
                tmp[x * 8 + v] = s >> 12;
            }
        }
        // Cols over v: pix[x][y] = clamp((sum_v tmp[x*8+v] * C[v][y] >> 12) + 128)
        for x in 0..8 {
            for y in 0..8 {
                let mut s = 0i64;
                for v in 0..8 {
                    s += tmp[x * 8 + v] * dct[v * 8 + y];
                }
                let p = ((s >> 12) + 128).clamp(0, 255);
                expected = expected.wrapping_add(p);
            }
        }
    }

    let mut b = ProgramBuilder::new("jpeg_dec");
    let tcoef = b.data_i64(&coeffs);
    let tdct = b.data_i64(&dct);
    let tq = b.data_i64(&QTAB);
    let tdeq = b.alloc(64 * 8);
    let ttmp = b.alloc(64 * 8);

    let (dct_r, q_r, deq_r, tmp_r) = (B1, B2, B3, S8);
    let (u, v, x) = (I, J, K);
    let (blk_r, acc, eight, base) = (S0, S1, S2, S3);

    b.li(CHK, 0);
    b.li(dct_r, tdct as i64);
    b.li(q_r, tq as i64);
    b.li(deq_r, tdeq as i64);
    b.li(tmp_r, ttmp as i64);
    b.li(eight, 8);
    b.li(S9, blocks as i64);

    let blk_top = loop_head(&mut b, blk_r, 0);
    {
        b.slli(T0, blk_r, 9);
        b.li(T1, tcoef as i64);
        b.add(base, T1, T0);

        // Dequantize 64 coefficients.
        b.li(T7, 64);
        let dq = loop_head(&mut b, u, 0);
        {
            b.slli(T0, u, 3);
            b.add(T1, base, T0);
            b.ld(T2, T1, 0);
            b.add(T1, q_r, T0);
            b.ld(T3, T1, 0);
            b.mul(T2, T2, T3);
            b.add(T1, deq_r, T0);
            b.sd(T2, T1, 0);
        }
        loop_tail_lt(&mut b, dq, u, 1, T7);

        // Row pass: tmp[x][v] = sum_u deq[u*8+v] * dct[u*8+x] >> 12
        let x_top = loop_head(&mut b, x, 0);
        {
            let v_top = loop_head(&mut b, v, 0);
            {
                b.li(acc, 0);
                let u_top = loop_head(&mut b, u, 0);
                {
                    b.slli(T0, u, 3);
                    b.add(T1, T0, v);
                    b.slli(T1, T1, 3);
                    b.add(T2, deq_r, T1);
                    b.ld(T3, T2, 0);
                    b.add(T1, T0, x);
                    b.slli(T1, T1, 3);
                    b.add(T2, dct_r, T1);
                    b.ld(T4, T2, 0);
                    b.mul(T3, T3, T4);
                    b.add(acc, acc, T3);
                }
                loop_tail_lt(&mut b, u_top, u, 1, eight);
                b.srai(acc, acc, 12);
                b.slli(T0, x, 3);
                b.add(T0, T0, v);
                b.slli(T0, T0, 3);
                b.add(T1, tmp_r, T0);
                b.sd(acc, T1, 0);
            }
            loop_tail_lt(&mut b, v_top, v, 1, eight);
        }
        loop_tail_lt(&mut b, x_top, x, 1, eight);

        // Column pass + clamp + checksum.
        let x2 = loop_head(&mut b, x, 0);
        {
            let y2 = loop_head(&mut b, u, 0); // u plays "y"
            {
                b.li(acc, 0);
                let v2 = loop_head(&mut b, v, 0);
                {
                    b.slli(T0, x, 3);
                    b.add(T0, T0, v);
                    b.slli(T0, T0, 3);
                    b.add(T1, tmp_r, T0);
                    b.ld(T2, T1, 0);
                    b.slli(T3, v, 3);
                    b.add(T3, T3, u);
                    b.slli(T3, T3, 3);
                    b.add(T4, dct_r, T3);
                    b.ld(T5, T4, 0);
                    b.mul(T2, T2, T5);
                    b.add(acc, acc, T2);
                }
                loop_tail_lt(&mut b, v2, v, 1, eight);
                b.srai(acc, acc, 12);
                b.addi(acc, acc, 128);
                let nolo = b.label();
                let nohi = b.label();
                b.bge(acc, perfclone_isa::Reg::ZERO, nolo);
                b.li(acc, 0);
                b.bind(nolo);
                b.li(T0, 255);
                b.ble(acc, T0, nohi);
                b.li(acc, 255);
                b.bind(nohi);
                b.add(CHK, CHK, acc);
            }
            loop_tail_lt(&mut b, y2, u, 1, eight);
        }
        loop_tail_lt(&mut b, x2, x, 1, eight);
    }
    loop_tail_lt(&mut b, blk_top, blk_r, 1, S9);
    b.halt();

    KernelBuild { program: b.build(), expected }
}

/// `lame`: MP3 polyphase subband analysis — 512-tap windowing, partial-sum
/// folding and a 32×64 cosine matrixing stage per granule. FP MAC bound.
pub(crate) fn lame(scale: Scale) -> KernelBuild {
    let granules = match scale {
        Scale::Tiny => 10,
        Scale::Small => 65,
    };
    let mut rng = SplitMix64::new(0x1A3E);
    let nsamples = granules * 32 + 512;
    let samples: Vec<f64> = (0..nsamples).map(|_| 2.0 * rng.f64() - 1.0).collect();
    let window: Vec<f64> = (0..512)
        .map(|i| {
            let x = i as f64 / 512.0;
            (std::f64::consts::PI * x).sin() * (1.0 - x)
        })
        .collect();
    let matrix: Vec<f64> = (0..32)
        .flat_map(|sb| {
            (0..64).map(move |k| {
                ((2.0 * sb as f64 + 1.0) * (k as f64 - 16.0) * std::f64::consts::PI / 64.0).cos()
            })
        })
        .collect();

    // Host reference mirroring the kernel op order.
    let mut acc = 0.0f64;
    let mut z = [0.0f64; 512];
    let mut y = [0.0f64; 64];
    for g in 0..granules {
        let base = g * 32;
        for k in 0..512 {
            z[k] = samples[base + k] * window[k];
        }
        for (k, yk) in y.iter_mut().enumerate() {
            let mut s = 0.0f64;
            for j in 0..8 {
                s += z[k + 64 * j];
            }
            *yk = s;
        }
        for sb in 0..32 {
            let mut s = 0.0f64;
            for (k, yk) in y.iter().enumerate() {
                s += matrix[sb * 64 + k] * yk;
            }
            acc += s;
        }
    }
    let expected = (acc * 4096.0) as i64;

    let mut b = ProgramBuilder::new("lame");
    let tsamp = b.data_f64(&samples);
    let twin = b.data_f64(&window);
    let tmat = b.data_f64(&matrix);
    let tz = b.alloc(512 * 8);
    let ty = b.alloc(64 * 8);

    let (samp_r, win_r, mat_r, z_r, y_r) = (B0, B1, B2, B3, S8);
    let (g, base) = (S0, S1);
    let (facc, fs, ft) = (FReg::new(0), FReg::new(1), FReg::new(2));

    b.li(samp_r, tsamp as i64);
    b.li(win_r, twin as i64);
    b.li(mat_r, tmat as i64);
    b.li(z_r, tz as i64);
    b.li(y_r, ty as i64);
    b.fli(facc, 0.0);
    b.li(S9, granules as i64);

    let g_top = loop_head(&mut b, g, 0);
    {
        b.slli(base, g, 5); // *32
        b.slli(base, base, 3); // *8 bytes
        b.add(base, samp_r, base);

        // Windowing: z[k] = x[base+k] * win[k]
        b.li(T7, 512);
        let wk = loop_head(&mut b, I, 0);
        {
            b.slli(T0, I, 3);
            b.add(T1, base, T0);
            b.fld(fs, T1, 0);
            b.add(T1, win_r, T0);
            b.fld(ft, T1, 0);
            b.fmul(fs, fs, ft);
            b.add(T1, z_r, T0);
            b.fsd(fs, T1, 0);
        }
        loop_tail_lt(&mut b, wk, I, 1, T7);

        // Partial-sum folding: y[k] = sum_j z[k + 64j]
        b.li(T7, 64);
        let fold = loop_head(&mut b, I, 0);
        {
            b.fli(fs, 0.0);
            b.slli(T0, I, 3);
            b.add(T1, z_r, T0);
            for j in 0..8i32 {
                b.fld(ft, T1, j * 64 * 8);
                b.fadd(fs, fs, ft);
            }
            b.add(T2, y_r, T0);
            b.fsd(fs, T2, 0);
        }
        loop_tail_lt(&mut b, fold, I, 1, T7);

        // Matrixing: acc += sum_sb sum_k m[sb][k] * y[k]
        b.li(T7, 32);
        let sb_top = loop_head(&mut b, J, 0);
        {
            b.fli(fs, 0.0);
            b.slli(T0, J, 6); // *64
            b.slli(T0, T0, 3);
            b.add(T1, mat_r, T0); // &m[sb*64]
            b.li(T6, 64);
            let k_top = loop_head(&mut b, K, 0);
            {
                b.slli(T2, K, 3);
                b.add(T3, T1, T2);
                b.fld(ft, T3, 0);
                b.add(T3, y_r, T2);
                b.fld(FReg::new(3), T3, 0);
                b.fmul(ft, ft, FReg::new(3));
                b.fadd(fs, fs, ft);
            }
            loop_tail_lt(&mut b, k_top, K, 1, T6);
            b.fadd(facc, facc, fs);
        }
        loop_tail_lt(&mut b, sb_top, J, 1, T7);
    }
    loop_tail_lt(&mut b, g_top, g, 1, S9);

    b.fli(ft, 4096.0);
    b.fmul(facc, facc, ft);
    b.cvt_f_i(CHK, facc);
    b.halt();

    KernelBuild { program: b.build(), expected }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::check_kernel;

    #[test]
    fn jpeg_enc_checksum() {
        check_kernel(jpeg_enc(Scale::Tiny));
    }

    #[test]
    fn jpeg_dec_checksum() {
        check_kernel(jpeg_dec(Scale::Tiny));
    }

    #[test]
    fn lame_checksum() {
        check_kernel(lame(Scale::Tiny));
    }

    #[test]
    fn dct_table_dc_row_is_constant() {
        let t = dct_table();
        for x in 1..8 {
            assert_eq!(t[0], t[x]);
        }
    }
}
