//! Network-domain kernels: `dijkstra`, `patricia`.

use perfclone_isa::ProgramBuilder;

use crate::util::regs::*;
use crate::util::{loop_head, loop_tail_lt, SplitMix64};
use crate::{KernelBuild, Scale};

const INF: i64 = 1 << 40;

/// `dijkstra`: repeated single-source shortest paths over a dense adjacency
/// matrix with linear min-scans — the MiBench `dijkstra` structure.
pub(crate) fn dijkstra(scale: Scale) -> KernelBuild {
    let (n, sources) = match scale {
        Scale::Tiny => (20, 4),
        Scale::Small => (64, 18),
    };
    let mut rng = SplitMix64::new(0xD1157);
    let mut mat = vec![0i64; n * n];
    for u in 0..n {
        for v in 0..n {
            mat[u * n + v] = if u == v {
                0
            } else if rng.below(10) < 3 {
                INF
            } else {
                1 + rng.below(99) as i64
            };
        }
    }

    // Host reference.
    let mut expected = 0i64;
    for s in 0..sources {
        let src = s % n;
        let mut dist = vec![INF; n];
        let mut visited = vec![false; n];
        dist[src] = 0;
        for _ in 0..n {
            let mut best = 1i64 << 60;
            let mut u = 0usize;
            for i in 0..n {
                if !visited[i] && dist[i] < best {
                    best = dist[i];
                    u = i;
                }
            }
            visited[u] = true;
            for v in 0..n {
                let nd = dist[u] + mat[u * n + v];
                if nd < dist[v] {
                    dist[v] = nd;
                }
            }
        }
        for d in &dist {
            expected = expected.wrapping_add(*d);
        }
    }

    let mut b = ProgramBuilder::new("dijkstra");
    let tmat = b.data_i64(&mat);
    let tdist = b.alloc(n as u64 * 8);
    let tvis = b.alloc(n as u64 * 8);

    let (mat_r, dist_r, vis_r) = (B0, B1, B2);
    let (nn, src, best, u) = (S0, S1, S2, S3);
    let iter = S4;

    b.li(CHK, 0);
    b.li(mat_r, tmat as i64);
    b.li(dist_r, tdist as i64);
    b.li(vis_r, tvis as i64);
    b.li(nn, n as i64);
    b.li(S5, INF);
    b.li(MASK, 1 << 60);

    let s_top = loop_head(&mut b, K, 0);
    {
        // src = K % n
        b.li(T0, n as i64);
        b.rem(src, K, T0);
        // init dist/vis
        let init = loop_head(&mut b, I, 0);
        {
            b.slli(T0, I, 3);
            b.add(T1, dist_r, T0);
            b.sd(S5, T1, 0);
            b.add(T1, vis_r, T0);
            b.sd(perfclone_isa::Reg::ZERO, T1, 0);
        }
        loop_tail_lt(&mut b, init, I, 1, nn);
        b.slli(T0, src, 3);
        b.add(T1, dist_r, T0);
        b.sd(perfclone_isa::Reg::ZERO, T1, 0);

        let step = loop_head(&mut b, iter, 0);
        {
            // argmin scan
            b.mv(best, MASK);
            b.li(u, 0);
            let scan = loop_head(&mut b, I, 0);
            {
                let next = b.label();
                b.slli(T0, I, 3);
                b.add(T1, vis_r, T0);
                b.ld(T2, T1, 0);
                b.bnez(T2, next);
                b.add(T1, dist_r, T0);
                b.ld(T2, T1, 0);
                b.bge(T2, best, next);
                b.mv(best, T2);
                b.mv(u, I);
                b.bind(next);
            }
            loop_tail_lt(&mut b, scan, I, 1, nn);
            // visited[u] = 1
            b.slli(T0, u, 3);
            b.add(T1, vis_r, T0);
            b.li(T2, 1);
            b.sd(T2, T1, 0);
            // relax row u
            b.add(T3, dist_r, T0);
            b.ld(T4, T3, 0); // dist[u]
            b.mul(T5, u, nn);
            b.slli(T5, T5, 3);
            b.add(T5, mat_r, T5); // &mat[u*n]
            let relax = loop_head(&mut b, J, 0);
            {
                let no = b.label();
                b.slli(T0, J, 3);
                b.add(T1, T5, T0);
                b.ld(T2, T1, 0); // w
                b.add(T2, T2, T4); // nd
                b.add(T1, dist_r, T0);
                b.ld(T6, T1, 0); // dist[v]
                b.bge(T2, T6, no);
                b.sd(T2, T1, 0);
                b.bind(no);
            }
            loop_tail_lt(&mut b, relax, J, 1, nn);
        }
        loop_tail_lt(&mut b, step, iter, 1, nn);

        // checksum += sum dist
        let acc = loop_head(&mut b, I, 0);
        {
            b.slli(T0, I, 3);
            b.add(T1, dist_r, T0);
            b.ld(T2, T1, 0);
            b.add(CHK, CHK, T2);
        }
        loop_tail_lt(&mut b, acc, I, 1, nn);
    }
    b.li(T0, sources as i64);
    loop_tail_lt(&mut b, s_top, K, 1, T0);
    b.halt();

    KernelBuild { program: b.build(), expected }
}

/// `patricia`: digital search trie over 32-bit keys (array-of-indices
/// representation), insert phase followed by a lookup phase — the pointer-
/// chasing access pattern of the MiBench `patricia` routing-table kernel.
pub(crate) fn patricia(scale: Scale) -> KernelBuild {
    let (inserts, lookups) = match scale {
        Scale::Tiny => (300, 300),
        Scale::Small => (4200, 4200),
    };
    let mut rng = SplitMix64::new(0xAA7);
    let keys: Vec<i64> = (0..inserts).map(|_| rng.below(1 << 32) as i64).collect();
    let probes: Vec<i64> = (0..lookups)
        .map(|i| {
            if i % 2 == 0 {
                keys[rng.below(inserts as u64) as usize]
            } else {
                rng.below(1 << 32) as i64
            }
        })
        .collect();

    // Host reference trie.
    let cap = inserts + 1;
    let mut nkey = vec![0i64; cap];
    let mut left = vec![-1i64; cap];
    let mut right = vec![-1i64; cap];
    nkey[0] = keys[0];
    let mut next_free = 1i64;
    for &k in &keys[1..] {
        let mut cur = 0usize;
        let mut d = 0u32;
        loop {
            if nkey[cur] == k {
                break;
            }
            let dir = (k >> (31 - (d % 32))) & 1;
            let child = if dir == 0 { left[cur] } else { right[cur] };
            if child < 0 {
                let nf = next_free as usize;
                nkey[nf] = k;
                if dir == 0 {
                    left[cur] = next_free;
                } else {
                    right[cur] = next_free;
                }
                next_free += 1;
                break;
            }
            cur = child as usize;
            d += 1;
        }
    }
    let mut found = 0i64;
    for &k in &probes {
        let mut cur = 0i64;
        let mut d = 0u32;
        loop {
            if nkey[cur as usize] == k {
                found += 1;
                break;
            }
            let dir = (k >> (31 - (d % 32))) & 1;
            let child = if dir == 0 { left[cur as usize] } else { right[cur as usize] };
            if child < 0 {
                break;
            }
            cur = child;
            d += 1;
        }
    }
    let expected = next_free.wrapping_add(found);

    let mut b = ProgramBuilder::new("patricia");
    let tkeys = b.data_i64(&keys);
    let tprobes = b.data_i64(&probes);
    let tnkey = b.alloc(cap as u64 * 8);
    let tleft = b.alloc(cap as u64 * 8);
    let tright = b.alloc(cap as u64 * 8);

    let (xkey, xleft, xright) = (B0, B1, B2);
    let (cur, key, d, nf) = (S0, S1, S2, S3);
    let (neg1, c31) = (S4, S5);

    b.li(xkey, tnkey as i64);
    b.li(xleft, tleft as i64);
    b.li(xright, tright as i64);
    b.li(neg1, -1);
    b.li(c31, 31);
    b.li(MASK, 31); // depth mask for (d % 32)

    // Initialize left/right arrays to -1.
    b.li(N, cap as i64);
    let init = loop_head(&mut b, I, 0);
    {
        b.slli(T0, I, 3);
        b.add(T1, xleft, T0);
        b.sd(neg1, T1, 0);
        b.add(T1, xright, T0);
        b.sd(neg1, T1, 0);
    }
    loop_tail_lt(&mut b, init, I, 1, N);

    // nkey[0] = keys[0]; next_free = 1
    b.li(B3, tkeys as i64);
    b.ld(T0, B3, 0);
    b.sd(T0, xkey, 0);
    b.li(nf, 1);

    // Insert phase.
    b.li(N, inserts as i64);
    let ins = loop_head(&mut b, I, 1);
    {
        b.slli(T0, I, 3);
        b.add(T1, B3, T0);
        b.ld(key, T1, 0);
        b.li(cur, 0);
        b.li(d, 0);
        let walk = b.label();
        let done = b.label();
        let go_right = b.label();
        let have_child = b.label();
        b.bind(walk);
        b.slli(T0, cur, 3);
        b.add(T1, xkey, T0);
        b.ld(T2, T1, 0);
        b.beq(T2, key, done);
        // dir = (key >> (31 - d%32)) & 1
        b.and(T3, d, MASK);
        b.sub(T3, c31, T3);
        b.srl(T4, key, T3);
        b.andi(T4, T4, 1);
        b.bnez(T4, go_right);
        b.add(T5, xleft, T0);
        b.j(have_child);
        b.bind(go_right);
        b.add(T5, xright, T0);
        b.bind(have_child);
        b.ld(T6, T5, 0); // child
        let descend = b.label();
        b.bge(T6, perfclone_isa::Reg::ZERO, descend);
        // allocate node nf
        b.slli(T7, nf, 3);
        b.add(T2, xkey, T7);
        b.sd(key, T2, 0);
        b.sd(nf, T5, 0);
        b.addi(nf, nf, 1);
        b.j(done);
        b.bind(descend);
        b.mv(cur, T6);
        b.addi(d, d, 1);
        b.j(walk);
        b.bind(done);
    }
    loop_tail_lt(&mut b, ins, I, 1, N);

    // Lookup phase; found count in S6.
    b.li(S6, 0);
    b.li(B3, tprobes as i64);
    b.li(N, lookups as i64);
    let lk = loop_head(&mut b, I, 0);
    {
        b.slli(T0, I, 3);
        b.add(T1, B3, T0);
        b.ld(key, T1, 0);
        b.li(cur, 0);
        b.li(d, 0);
        let walk = b.label();
        let hit = b.label();
        let done = b.label();
        let go_right = b.label();
        let have_child = b.label();
        b.bind(walk);
        b.slli(T0, cur, 3);
        b.add(T1, xkey, T0);
        b.ld(T2, T1, 0);
        b.beq(T2, key, hit);
        b.and(T3, d, MASK);
        b.sub(T3, c31, T3);
        b.srl(T4, key, T3);
        b.andi(T4, T4, 1);
        b.bnez(T4, go_right);
        b.add(T5, xleft, T0);
        b.j(have_child);
        b.bind(go_right);
        b.add(T5, xright, T0);
        b.bind(have_child);
        b.ld(T6, T5, 0);
        b.blt(T6, perfclone_isa::Reg::ZERO, done); // miss
        b.mv(cur, T6);
        b.addi(d, d, 1);
        b.j(walk);
        b.bind(hit);
        b.addi(S6, S6, 1);
        b.bind(done);
    }
    loop_tail_lt(&mut b, lk, I, 1, N);

    b.add(CHK, nf, S6);
    b.halt();

    KernelBuild { program: b.build(), expected }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::check_kernel;

    #[test]
    fn dijkstra_checksum() {
        check_kernel(dijkstra(Scale::Tiny));
    }

    #[test]
    fn patricia_checksum() {
        check_kernel(patricia(Scale::Tiny));
    }
}
